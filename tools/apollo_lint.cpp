// apollo-lint — repo-invariant static analysis for the APOLLO codebase.
//
// A self-contained C++20 tool (no external dependencies, per the repo rule)
// that scans src/, tools/, bench/ and tests/ and enforces the invariants the
// test suite cannot see — determinism hazards, hygiene, and API-contract
// rules. Low-rank-state optimizers are exactly where silent numeric
// corruption hides (projected-moment drift surfaces thousands of steps in),
// so these are machine-checked rather than left to reviewer vigilance.
//
// Rules run over the shared token stream from tools/analyze/source_model.*
// (the same lexer apollo-analyze uses), so string/comment/raw-string
// contents can never false-positive and every match is word-boundary exact.
//
// Rules (each suppressible with `// lint:allow(rule-id)` on the offending
// line or the line directly above, or `// lint:allow-file(rule-id)` anywhere
// in the file):
//
//   raw-thread                std::thread / std::jthread / std::async /
//                             OpenMP outside core/threadpool.* — all
//                             parallelism must go through the deterministic
//                             fixed-partition pool.
//   raw-rng                   rand()/srand()/std::random_device/unseeded
//                             std::mt19937 outside tensor/rng.* — all
//                             randomness must be explicitly seeded.
//   raw-simd-intrinsic        `_mm*` intrinsic calls, `__m128/__m256/__m512/
//                             __mmask` vector types, or immintrin.h includes
//                             outside src/tensor/simd/ — all SIMD goes
//                             through the dispatched simd::KernelTable so
//                             the scalar fallback stays complete.
//   unordered-float-accum     float/double accumulation inside a range-for
//                             over a std::unordered_{map,set} — iteration
//                             order is unspecified, so the reduction is not
//                             reproducible.
//   pragma-once               every header carries #pragma once.
//   using-namespace-header    no `using namespace` in headers.
//   raw-new-delete            no raw new/delete (use containers or
//                             unique_ptr; `= delete` and placement-free
//                             code stay clean).
//   printf-float-precision    printf-family float conversions in src/ must
//                             pin an explicit precision (e.g. %.6g) so logs
//                             and CSV output are stable across libcs.
//   check-shape-preconditions function definitions in src/optim/ and
//                             src/core/ taking Matrix/ParamList/Parameter
//                             arguments must APOLLO_CHECK their
//                             preconditions (a per-function heuristic;
//                             constructors with init-lists, static helpers,
//                             anonymous namespaces, and bodies delegating to
//                             Optimizer::begin_step/end_step are exempt).
//
// Exit status: 0 when clean, 1 with `file:line: rule-id: message`
// diagnostics otherwise, 2 on usage/IO errors.
#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "analyze/source_model.h"

namespace fs = std::filesystem;
using srcmodel::SourceFile;
using srcmodel::TokKind;
using srcmodel::Token;

namespace {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

class Linter {
 public:
  explicit Linter(std::vector<Diagnostic>* out) : out_(out) {}

  void lint(const SourceFile& ft) {
    rule_raw_thread(ft);
    rule_raw_rng(ft);
    rule_raw_simd_intrinsic(ft);
    rule_unordered_float_accum(ft);
    rule_pragma_once(ft);
    rule_using_namespace_header(ft);
    rule_raw_new_delete(ft);
    rule_printf_float_precision(ft);
    rule_check_shape_preconditions(ft);
  }

 private:
  void emit(const SourceFile& ft, int line, const std::string& rule,
            const std::string& message) {
    if (ft.allowed(line, rule)) return;
    out_->push_back({ft.display_path, line, rule, message});
  }

  // --- determinism ---------------------------------------------------------

  void rule_raw_thread(const SourceFile& ft) {
    if (ft.path_contains("core/threadpool.")) return;
    const std::vector<Token>& t = ft.tokens;
    int last_line = 0;
    auto hit = [&](size_t i, std::string_view what) {
      if (t[i].line == last_line) return;  // one diagnostic per line
      last_line = t[i].line;
      emit(ft, t[i].line, "raw-thread",
           "raw threading primitive (" + std::string(what) +
               "); route parallel work through core/threadpool.* so the "
               "determinism contract holds for any APOLLO_THREADS");
    };
    for (size_t i = 0; i < t.size(); ++i) {
      for (std::string_view name : {"thread", "jthread", "async"})
        if (srcmodel::match_seq(t, i, {"std", "::", name})) hit(i, "std::" + std::string(name));
      if (t[i].kind == TokKind::kHeaderName && t[i].text == "omp.h")
        hit(i, "omp.h");
      if (srcmodel::match_seq(t, i, {"#", "pragma", "omp"}))
        hit(i, "#pragma omp");
    }
  }

  void rule_raw_rng(const SourceFile& ft) {
    if (ft.path_contains("tensor/rng.")) return;
    const std::vector<Token>& t = ft.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const std::string& name = t[i].text;
      // `rand` / `srand` / `drand48` only count as the C library call.
      const bool c_call = (name == "rand" || name == "srand" ||
                           name == "drand48") &&
                          i + 1 < t.size() && srcmodel::is_punct(t[i + 1], "(");
      if (c_call || name == "random_device") {
        emit(ft, t[i].line, "raw-rng",
             "non-reproducible randomness (" + name +
                 "); all randomness must flow through the seeded "
                 "apollo::Rng (tensor/rng.*)");
        continue;
      }
      // Unseeded std::mt19937 / mt19937_64: engine declared with no ctor
      // argument draws an implementation-defined default seed.
      if (name == "mt19937" || name == "mt19937_64") {
        size_t j = i + 1;
        if (j < t.size() && t[j].kind == TokKind::kIdent) ++j;  // var name
        bool seeded = false;
        if (j < t.size() &&
            (srcmodel::is_punct(t[j], "(") || srcmodel::is_punct(t[j], "{"))) {
          const size_t close = srcmodel::match_forward(t, j);
          seeded = close != t.size() && close > j + 1;
        }
        if (!seeded) {
          emit(ft, t[i].line, "raw-rng",
               "unseeded std::" + name +
                   "; seed explicitly, or better use apollo::Rng "
                   "(tensor/rng.*)");
        }
      }
    }
  }

  // Raw x86 intrinsics are confined to src/tensor/simd/: every other caller
  // must go through the dispatched KernelTable (tensor/simd/simd.h) so the
  // scalar fallback stays complete and the conformance harness covers every
  // code path that touches vector lanes.
  void rule_raw_simd_intrinsic(const SourceFile& ft) {
    if (ft.path_contains("tensor/simd/")) return;
    const std::vector<Token>& t = ft.tokens;
    int last_line = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      std::string hit;
      if (t[i].kind == TokKind::kHeaderName &&
          (t[i].text == "immintrin.h" || t[i].text == "x86intrin.h"))
        hit = t[i].text;
      if (t[i].kind == TokKind::kIdent)
        for (std::string_view pre :
             {"__m128", "__m256", "__m512", "__mmask", "_mm"})
          if (t[i].text.rfind(pre, 0) == 0) hit = std::string(pre) + "*";
      if (hit.empty() || t[i].line == last_line) continue;
      last_line = t[i].line;
      emit(ft, t[i].line, "raw-simd-intrinsic",
           "raw SIMD intrinsic (" + hit +
               ") outside src/tensor/simd/; call through the dispatched "
               "simd::KernelTable (tensor/simd/simd.h) so the scalar "
               "reference and conformance harness cover this path");
    }
  }

  void rule_unordered_float_accum(const SourceFile& ft) {
    const std::vector<Token>& t = ft.tokens;
    // Names of variables declared as unordered containers in this file.
    std::set<std::string> unordered_vars;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!srcmodel::is_ident(t[i], "unordered_map") &&
          !srcmodel::is_ident(t[i], "unordered_set"))
        continue;
      if (i + 1 >= t.size() || !srcmodel::is_punct(t[i + 1], "<")) continue;
      const size_t gt = srcmodel::match_angle(t, i + 1);
      if (gt == t.size()) continue;
      // Declared name: first identifier after the closing `>` (skipping
      // reference qualifiers).
      size_t j = gt + 1;
      while (j < t.size() && srcmodel::is_punct(t[j], "&")) ++j;
      if (j < t.size() && t[j].kind == TokKind::kIdent)
        unordered_vars.insert(t[j].text);
    }
    if (unordered_vars.empty()) return;

    // Range-fors over one of those variables whose body accumulates into a
    // float/double: the reduction order is the container's (unspecified)
    // iteration order.
    for (size_t i = 0; i < t.size(); ++i) {
      if (!srcmodel::is_ident(t[i], "for") || i + 1 >= t.size() ||
          !srcmodel::is_punct(t[i + 1], "("))
        continue;
      const size_t head_open = i + 1;
      const size_t head_close = srcmodel::match_forward(t, head_open);
      if (head_close == t.size()) continue;
      // A range-for head has a top-level `:` and no `;`.
      size_t colon = t.size();
      bool classic = false;
      int depth = 0;
      for (size_t k = head_open + 1; k < head_close; ++k) {
        if (t[k].kind != TokKind::kPunct) continue;
        const std::string& p = t[k].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        if (p == ")" || p == "]" || p == "}") --depth;
        if (depth != 0) continue;
        if (p == ";") classic = true;
        if (p == ":" && colon == t.size()) colon = k;
      }
      if (classic || colon == t.size()) continue;
      if (colon + 1 >= head_close || t[colon + 1].kind != TokKind::kIdent)
        continue;
      const std::string range_var = t[colon + 1].text;
      if (!unordered_vars.count(range_var)) continue;
      // Loop body: either a braced block or a single statement.
      size_t body_begin = head_close + 1;
      if (body_begin >= t.size()) continue;
      size_t body_end;
      if (srcmodel::is_punct(t[body_begin], "{")) {
        body_end = srcmodel::match_forward(t, body_begin);
        if (body_end == t.size()) continue;
      } else {
        body_end = body_begin;
        while (body_end < t.size() && !srcmodel::is_punct(t[body_end], ";"))
          ++body_end;
      }
      // Accumulation targets: identifiers on the left of += / -= / *=.
      for (size_t k = body_begin; k < body_end; ++k) {
        if (t[k].kind != TokKind::kPunct ||
            (t[k].text != "+=" && t[k].text != "-=" && t[k].text != "*="))
          continue;
        if (k == 0 || t[k - 1].kind != TokKind::kIdent) continue;
        const std::string& target = t[k - 1].text;
        if (is_float_var(t, target)) {
          emit(ft, t[k].line, "unordered-float-accum",
               "float accumulation into '" + target +
                   "' while iterating std::unordered container '" +
                   range_var +
                   "'; iteration order is unspecified, making the "
                   "reduction non-reproducible — iterate a sorted key "
                   "list instead");
        }
      }
    }
  }

  // `name` declared as float/double somewhere in the file?
  static bool is_float_var(const std::vector<Token>& t,
                           const std::string& name) {
    for (size_t i = 0; i + 1 < t.size(); ++i)
      if ((srcmodel::is_ident(t[i], "float") ||
           srcmodel::is_ident(t[i], "double")) &&
          srcmodel::is_ident(t[i + 1], name))
        return true;
    return false;
  }

  // --- hygiene -------------------------------------------------------------

  void rule_pragma_once(const SourceFile& ft) {
    if (!ft.is_header) return;
    for (size_t i = 0; i < ft.tokens.size(); ++i)
      if (srcmodel::match_seq(ft.tokens, i, {"#", "pragma", "once"})) return;
    emit(ft, 1, "pragma-once", "header is missing #pragma once");
  }

  void rule_using_namespace_header(const SourceFile& ft) {
    if (!ft.is_header) return;
    const std::vector<Token>& t = ft.tokens;
    for (size_t i = 0; i + 1 < t.size(); ++i)
      if (srcmodel::is_ident(t[i], "using") &&
          srcmodel::is_ident(t[i + 1], "namespace"))
        emit(ft, t[i].line, "using-namespace-header",
             "`using namespace` in a header leaks into every includer");
  }

  void rule_raw_new_delete(const SourceFile& ft) {
    const std::vector<Token>& t = ft.tokens;
    // An `operator` token earlier on the same line means we are looking at
    // an operator new/delete declaration, not an allocation.
    auto operator_on_line = [&](size_t i) {
      for (size_t k = i; k-- > 0 && t[k].line == t[i].line;)
        if (srcmodel::is_ident(t[k], "operator")) return true;
      return false;
    };
    int last_new_line = 0, last_delete_line = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      if (srcmodel::is_ident(t[i], "new") && i + 1 < t.size()) {
        const Token& nxt = t[i + 1];
        const bool allocates =
            nxt.kind == TokKind::kIdent || srcmodel::is_punct(nxt, "(") ||
            srcmodel::is_punct(nxt, "[") || srcmodel::is_punct(nxt, "::");
        if (allocates && !operator_on_line(i) &&
            t[i].line != last_new_line) {
          last_new_line = t[i].line;
          emit(ft, t[i].line, "raw-new-delete",
               "raw `new`; use std::vector / std::make_unique so ownership "
               "is explicit");
        }
      }
      if (srcmodel::is_ident(t[i], "delete")) {
        const bool deleted_fn = i > 0 && srcmodel::is_punct(t[i - 1], "=");
        if (!deleted_fn && !operator_on_line(i) &&
            t[i].line != last_delete_line) {
          last_delete_line = t[i].line;
          emit(ft, t[i].line, "raw-new-delete",
               "raw `delete`; use owning containers / smart pointers");
        }
      }
    }
  }

  void rule_printf_float_precision(const SourceFile& ft) {
    if (!ft.path_starts_with("src/")) return;
    const std::vector<Token>& t = ft.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const std::string& fn = t[i].text;
      if (fn != "printf" && fn != "fprintf" && fn != "snprintf" &&
          fn != "sprintf")
        continue;
      if (i + 1 >= t.size() || !srcmodel::is_punct(t[i + 1], "(")) continue;
      const size_t close = srcmodel::match_forward(t, i + 1);
      if (close == t.size()) continue;
      // Scan the call's string-literal arguments for %-conversions. The
      // token carries the raw literal body, so escapes are intact and
      // multi-line format strings are covered.
      for (size_t k = i + 2; k < close; ++k) {
        if (t[k].kind != TokKind::kString) continue;
        scan_format(ft, t[k]);
      }
      i = close;
    }
  }

  void scan_format(const SourceFile& ft, const Token& str) {
    const std::string& s = str.text;
    for (size_t j = 0; j < s.size(); ++j) {
      if (s[j] != '%') continue;
      size_t k = j + 1;
      if (k < s.size() && s[k] == '%') {  // literal %%
        j = k;
        continue;
      }
      bool has_dot = false;
      while (k < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[k])) != 0 ||
              s[k] == '.' || s[k] == '-' || s[k] == '+' || s[k] == ' ' ||
              s[k] == '#' || s[k] == '*' || s[k] == 'l' || s[k] == 'L' ||
              s[k] == 'h')) {
        if (s[k] == '.') has_dot = true;
        ++k;
      }
      if (k < s.size() && std::strchr("fFeEgG", s[k]) != nullptr && !has_dot) {
        emit(ft, str.line, "printf-float-precision",
             std::string("float conversion %") + s[k] +
                 " without explicit precision; pin it (e.g. %.6g) so "
                 "output is byte-stable across platforms");
      }
      j = k;
    }
  }

  // --- API contract --------------------------------------------------------

  void rule_check_shape_preconditions(const SourceFile& ft) {
    if (!ft.path_starts_with("src/optim/") &&
        !ft.path_starts_with("src/core/"))
      return;
    const std::vector<Token>& t = ft.tokens;

    // Anonymous-namespace extents (internal helpers are exempt).
    std::vector<std::pair<size_t, size_t>> anon;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (!srcmodel::is_ident(t[i], "namespace") ||
          !srcmodel::is_punct(t[i + 1], "{"))
        continue;
      const size_t close = srcmodel::match_forward(t, i + 1);
      if (close != t.size()) anon.emplace_back(i + 1, close);
    }
    const auto in_anon = [&](size_t idx) {
      for (const auto& [b, e] : anon)
        if (idx > b && idx < e) return true;
      return false;
    };

    // Find `name(params) [qualifiers] {` definitions.
    for (size_t i = 1; i < t.size(); ++i) {
      if (!srcmodel::is_punct(t[i], "(")) continue;
      if (t[i - 1].kind != TokKind::kIdent) continue;
      const std::string& name = t[i - 1].text;
      static constexpr std::string_view kKeywords[] = {
          "if", "for", "while", "switch", "catch", "return", "sizeof",
          "defined", "do", "assert"};
      bool is_kw = false;
      for (std::string_view k : kKeywords) is_kw |= name == k;
      if (is_kw || name.rfind("APOLLO_", 0) == 0) continue;
      const size_t close = srcmodel::match_forward(t, i);
      if (close == t.size()) continue;
      // Qualifiers between `)` and `{`: const/noexcept/override/final only.
      size_t q = close + 1;
      while (q < t.size() &&
             (srcmodel::is_ident(t[q], "const") ||
              srcmodel::is_ident(t[q], "noexcept") ||
              srcmodel::is_ident(t[q], "override") ||
              srcmodel::is_ident(t[q], "final")))
        ++q;
      if (q >= t.size() || !srcmodel::is_punct(t[q], "{")) continue;
      bool has_param_type = false;
      for (size_t k = i + 1; k < close; ++k)
        if (srcmodel::is_ident(t[k], "Matrix") ||
            srcmodel::is_ident(t[k], "ParamList") ||
            srcmodel::is_ident(t[k], "Parameter"))
          has_param_type = true;
      if (!has_param_type) continue;
      if (in_anon(i)) continue;
      // `static` helpers are internal; skip (statement start = after the
      // previous ; { or }).
      bool is_static = false;
      for (size_t k = i - 1; k-- > 0;) {
        if (srcmodel::is_punct(t[k], ";") || srcmodel::is_punct(t[k], "{") ||
            srcmodel::is_punct(t[k], "}"))
          break;
        if (srcmodel::is_ident(t[k], "static")) is_static = true;
      }
      if (is_static) continue;
      const size_t body_end = srcmodel::match_forward(t, q);
      if (body_end == t.size()) continue;
      // Delegating to the base begin_step/end_step counts: those perform
      // the APOLLO_CHECKs shared by every optimizer.
      bool checked = false;
      for (size_t k = q; k < body_end; ++k) {
        if (t[k].kind == TokKind::kIdent &&
            t[k].text.rfind("APOLLO_CHECK", 0) == 0)
          checked = true;
        if (srcmodel::match_seq(t, k, {"Optimizer", "::", "begin_step", "("}) ||
            srcmodel::match_seq(t, k, {"Optimizer", "::", "end_step", "("}))
          checked = true;
      }
      if (checked) continue;
      emit(ft, t[i - 1].line, "check-shape-preconditions",
           "'" + name +
               "' takes Matrix/ParamList arguments but never "
               "APOLLO_CHECKs its preconditions; add a shape/size check "
               "or annotate why none is needed");
    }
  }

  std::vector<Diagnostic>* out_;
};

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

void print_rules() {
  std::cout <<
      "raw-thread                determinism: no std::thread/std::async/"
      "OpenMP outside core/threadpool.*\n"
      "raw-rng                   determinism: no rand()/random_device/"
      "unseeded mt19937 outside tensor/rng.*\n"
      "raw-simd-intrinsic        isolation: no _mm*/__m256/__m512 "
      "intrinsics outside src/tensor/simd/\n"
      "unordered-float-accum     determinism: no float accumulation over "
      "unordered containers\n"
      "pragma-once               hygiene: headers carry #pragma once\n"
      "using-namespace-header    hygiene: no `using namespace` in headers\n"
      "raw-new-delete            hygiene: no raw new/delete\n"
      "printf-float-precision    hygiene: float printf in src/ pins "
      "precision\n"
      "check-shape-preconditions contract: optim/core entry points "
      "APOLLO_CHECK their Matrix/ParamList/Parameter inputs\n"
      "Suppress with // lint:allow(rule-id) on or above the line, or "
      "// lint:allow-file(rule-id).\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: apollo-lint [--root DIR] [--list-rules] "
                   "[subdir...]\n       (default subdirs: src tools bench "
                   "tests)\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "apollo-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      dirs.emplace_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "tools", "bench", "tests"};

  const std::vector<fs::path> files = srcmodel::collect_sources(root, dirs);

  std::vector<Diagnostic> diags;
  Linter linter(&diags);
  int scanned = 0;
  for (const fs::path& f : files) {
    SourceFile ft;
    if (!srcmodel::load_file(f, fs::relative(f, root).generic_string(), ft)) {
      std::cerr << "apollo-lint: cannot read " << f << "\n";
      return 2;
    }
    linter.lint(ft);
    ++scanned;
  }

  std::sort(diags.begin(), diags.end(), [](const auto& a, const auto& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  for (const Diagnostic& d : diags)
    std::cout << d.file << ":" << d.line << ": " << d.rule << ": "
              << d.message << "\n";
  if (diags.empty()) {
    std::cout << "apollo-lint: " << scanned << " files clean\n";
    return 0;
  }
  std::cerr << "apollo-lint: " << diags.size() << " finding(s) in "
            << scanned << " files\n";
  return 1;
}
