// apollo-lint — repo-invariant static analysis for the APOLLO codebase.
//
// A self-contained C++20 tool (no external dependencies, per the repo rule)
// that scans src/, tools/, bench/ and tests/ and enforces the invariants the
// test suite cannot see — determinism hazards, hygiene, and API-contract
// rules. Low-rank-state optimizers are exactly where silent numeric
// corruption hides (projected-moment drift surfaces thousands of steps in),
// so these are machine-checked rather than left to reviewer vigilance.
//
// Rules (each suppressible with `// lint:allow(rule-id)` on the offending
// line or the line directly above, or `// lint:allow-file(rule-id)` anywhere
// in the file):
//
//   raw-thread                std::thread / std::jthread / std::async /
//                             OpenMP outside core/threadpool.* — all
//                             parallelism must go through the deterministic
//                             fixed-partition pool.
//   raw-rng                   rand()/srand()/std::random_device/unseeded
//                             std::mt19937 outside tensor/rng.* — all
//                             randomness must be explicitly seeded.
//   raw-simd-intrinsic        `_mm*` intrinsic calls, `__m128/__m256/__m512/
//                             __mmask` vector types, or immintrin.h includes
//                             outside src/tensor/simd/ — all SIMD goes
//                             through the dispatched simd::KernelTable so
//                             the scalar fallback stays complete.
//   unordered-float-accum     float/double accumulation inside a range-for
//                             over a std::unordered_{map,set} — iteration
//                             order is unspecified, so the reduction is not
//                             reproducible.
//   pragma-once               every header carries #pragma once.
//   using-namespace-header    no `using namespace` in headers.
//   raw-new-delete            no raw new/delete (use containers or
//                             unique_ptr; `= delete` and placement-free
//                             code stay clean).
//   printf-float-precision    printf-family float conversions in src/ must
//                             pin an explicit precision (e.g. %.6g) so logs
//                             and CSV output are stable across libcs.
//   check-shape-preconditions function definitions in src/optim/ and
//                             src/core/ taking Matrix/ParamList/Parameter
//                             arguments must APOLLO_CHECK their
//                             preconditions (a per-function heuristic;
//                             constructors with init-lists, static helpers,
//                             anonymous namespaces, and bodies delegating to
//                             Optimizer::begin_step/end_step are exempt).
//
// Exit status: 0 when clean, 1 with `file:line: rule-id: message`
// diagnostics otherwise, 2 on usage/IO errors.
#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// File model
// ---------------------------------------------------------------------------

struct FileText {
  std::string display_path;  // root-relative, forward slashes
  std::vector<std::string> raw;   // original lines
  std::vector<std::string> code;  // comments + string/char literals blanked
  // (line, rule) pairs that suppress a diagnostic on that line.
  std::set<std::pair<int, std::string>> line_allows;
  std::set<std::string> file_allows;
  bool is_header = false;
};

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// Records the `lint:allow(...)`/`lint:allow-file(...)` directives found in a
// comment. Rules may be comma-separated.
void collect_allows(const std::string& comment, int line, FileText& ft) {
  for (const char* kind : {"lint:allow-file(", "lint:allow("}) {
    const bool file_scope = std::string_view(kind).find("file") !=
                            std::string_view::npos;
    size_t pos = 0;
    while ((pos = comment.find(kind, pos)) != std::string::npos) {
      const size_t open = pos + std::string_view(kind).size();
      const size_t close = comment.find(')', open);
      if (close == std::string::npos) break;
      std::stringstream rules(comment.substr(open, close - open));
      std::string rule;
      while (std::getline(rules, rule, ',')) {
        const size_t b = rule.find_first_not_of(" \t");
        const size_t e = rule.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        rule = rule.substr(b, e - b + 1);
        if (file_scope) {
          ft.file_allows.insert(rule);
        } else {
          // Applies to its own line and the next (trailing or preceding
          // comment style both work).
          ft.line_allows.insert({line, rule});
          ft.line_allows.insert({line + 1, rule});
        }
      }
      pos = close;
    }
    // Guard against `lint:allow-file` also matching the `lint:allow` pass:
    if (!file_scope) break;
  }
}

// Splits `text` into lines, producing both the raw view and a "code" view
// with comments and string/char literals replaced by spaces (newlines kept,
// so line/column positions survive). Raw-string literals are handled.
void strip_comments_and_strings(const std::string& text, FileText& ft) {
  enum class S { kCode, kLine, kBlock, kStr, kChar, kRaw };
  S st = S::kCode;
  std::string raw_line, code_line, comment, raw_delim;
  int line = 1;
  const size_t n = text.size();
  auto flush_line = [&] {
    ft.raw.push_back(raw_line);
    ft.code.push_back(code_line);
    raw_line.clear();
    code_line.clear();
  };
  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      if (st == S::kLine) {
        collect_allows(comment, line, ft);
        comment.clear();
        st = S::kCode;
      }
      flush_line();
      ++line;
      continue;
    }
    raw_line.push_back(c);
    switch (st) {
      case S::kCode:
        if (c == '/' && next == '/') {
          st = S::kLine;
          code_line.push_back(' ');
        } else if (c == '/' && next == '*') {
          st = S::kBlock;
          code_line.push_back(' ');
        } else if (c == '"') {
          // R"delim( ... )delim" raw strings.
          size_t back = code_line.size();
          if (back > 0 && code_line[back - 1] == 'R' &&
              (back < 2 || !(std::isalnum(static_cast<unsigned char>(
                                 code_line[back - 2])) ||
                             code_line[back - 2] == '_'))) {
            st = S::kRaw;
            raw_delim.clear();
            size_t j = i + 1;
            while (j < n && text[j] != '(') raw_delim.push_back(text[j++]);
            code_line.push_back('"');
          } else {
            st = S::kStr;
            code_line.push_back('"');
          }
        } else if (c == '\'') {
          // Digit separators (1'000) are not char literals.
          const bool sep =
              !code_line.empty() &&
              std::isdigit(static_cast<unsigned char>(code_line.back())) &&
              std::isdigit(static_cast<unsigned char>(next));
          if (sep) {
            code_line.push_back(c);
          } else {
            st = S::kChar;
            code_line.push_back('\'');
          }
        } else {
          code_line.push_back(c);
        }
        break;
      case S::kLine:
        comment.push_back(c);
        code_line.push_back(' ');
        break;
      case S::kBlock:
        code_line.push_back(' ');
        if (c == '*' && next == '/') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
          st = S::kCode;
        }
        break;
      case S::kStr:
        code_line.push_back(' ');
        if (c == '\\' && i + 1 < n && next != '\n') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '"') {
          code_line.back() = '"';
          st = S::kCode;
        }
        break;
      case S::kChar:
        code_line.push_back(' ');
        if (c == '\\' && i + 1 < n && next != '\n') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '\'') {
          code_line.back() = '\'';
          st = S::kCode;
        }
        break;
      case S::kRaw: {
        code_line.push_back(' ');
        const std::string closer = ")" + raw_delim + "\"";
        if (c == ')' && text.compare(i, closer.size(), closer) == 0) {
          for (size_t k = 1; k < closer.size() && i + 1 < n; ++k) {
            ++i;
            raw_line.push_back(text[i]);
            code_line.push_back(' ');
          }
          code_line.back() = '"';
          st = S::kCode;
        }
        break;
      }
    }
  }
  if (st == S::kLine) collect_allows(comment, line, ft);
  flush_line();
}

// ---------------------------------------------------------------------------
// Token helpers (operate on the blanked "code" view)
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Finds `token` in `s` at a word boundary, starting at `from`.
size_t find_token(const std::string& s, std::string_view token,
                  size_t from = 0) {
  size_t pos = from;
  while ((pos = s.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const size_t end = pos + token.size();
    const char last = token.back();
    const bool right_ok =
        !ident_char(last) || end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return pos;
    pos += 1;
  }
  return std::string::npos;
}

// Whole-file code text with '\n' separators, plus per-line offsets, for the
// rules that need to match across line boundaries.
struct FlatCode {
  std::string text;
  std::vector<size_t> line_start;  // offset of each line in `text`
  explicit FlatCode(const FileText& ft) {
    for (const std::string& l : ft.code) {
      line_start.push_back(text.size());
      text += l;
      text += '\n';
    }
  }
  int line_of(size_t off) const {
    const auto it =
        std::upper_bound(line_start.begin(), line_start.end(), off);
    return static_cast<int>(it - line_start.begin());
  }
};

// Matching close brace/paren for the opener at `open`; npos if unbalanced.
size_t match_forward(const std::string& s, size_t open) {
  const char oc = s[open];
  const char cc = oc == '(' ? ')' : oc == '{' ? '}' : oc == '[' ? ']' : '\0';
  if (cc == '\0') return std::string::npos;
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == oc) ++depth;
    if (s[i] == cc && --depth == 0) return i;
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

class Linter {
 public:
  explicit Linter(std::vector<Diagnostic>* out) : out_(out) {}

  void lint(FileText& ft) {
    rule_raw_thread(ft);
    rule_raw_rng(ft);
    rule_raw_simd_intrinsic(ft);
    rule_unordered_float_accum(ft);
    rule_pragma_once(ft);
    rule_using_namespace_header(ft);
    rule_raw_new_delete(ft);
    rule_printf_float_precision(ft);
    rule_check_shape_preconditions(ft);
  }

 private:
  void emit(const FileText& ft, int line, const std::string& rule,
            const std::string& message) {
    if (ft.file_allows.count(rule)) return;
    if (ft.line_allows.count({line, rule})) return;
    out_->push_back({ft.display_path, line, rule, message});
  }

  static bool path_is(const FileText& ft, std::string_view prefix) {
    return ft.display_path.rfind(prefix, 0) == 0;
  }
  static bool path_in(const FileText& ft, std::string_view needle) {
    return ft.display_path.find(needle) != std::string::npos;
  }

  // --- determinism ---------------------------------------------------------

  void rule_raw_thread(FileText& ft) {
    if (path_in(ft, "core/threadpool.")) return;
    static constexpr std::string_view kTokens[] = {
        "std::thread", "std::jthread", "std::async", "omp.h", "#pragma omp"};
    for (size_t i = 0; i < ft.code.size(); ++i) {
      for (std::string_view tok : kTokens) {
        if (ft.code[i].find(tok) != std::string::npos) {
          emit(ft, static_cast<int>(i + 1), "raw-thread",
               "raw threading primitive (" + std::string(tok) +
                   "); route parallel work through core/threadpool.* so the "
                   "determinism contract holds for any APOLLO_THREADS");
          break;
        }
      }
    }
  }

  void rule_raw_rng(FileText& ft) {
    if (path_in(ft, "tensor/rng.")) return;
    static constexpr std::string_view kTokens[] = {
        "rand", "srand", "drand48", "random_device"};
    for (size_t i = 0; i < ft.code.size(); ++i) {
      const std::string& l = ft.code[i];
      for (std::string_view tok : kTokens) {
        size_t pos = find_token(l, tok);
        // `rand` / `srand` only count as the C library call: `rand(`.
        while (pos != std::string::npos && tok != "random_device") {
          const size_t after = l.find_first_not_of(' ', pos + tok.size());
          if (after != std::string::npos && l[after] == '(') break;
          pos = find_token(l, tok, pos + 1);
        }
        if (pos != std::string::npos) {
          emit(ft, static_cast<int>(i + 1), "raw-rng",
               "non-reproducible randomness (" + std::string(tok) +
                   "); all randomness must flow through the seeded "
                   "apollo::Rng (tensor/rng.*)");
          break;
        }
      }
      // Unseeded std::mt19937 / mt19937_64: engine declared with no ctor
      // argument draws an implementation-defined default seed.
      for (std::string_view eng : {"mt19937_64", "mt19937"}) {
        const size_t pos = find_token(l, eng);
        if (pos == std::string::npos) continue;
        size_t j = pos + eng.size();
        while (j < l.size() && (l[j] == ' ' || ident_char(l[j]))) ++j;
        bool seeded = false;
        if (j < l.size() && (l[j] == '(' || l[j] == '{')) {
          const size_t close = match_forward(l, j);
          if (close != std::string::npos &&
              l.find_first_not_of(' ', j + 1) < close)
            seeded = true;
        }
        if (!seeded) {
          emit(ft, static_cast<int>(i + 1), "raw-rng",
               "unseeded std::" + std::string(eng) +
                   "; seed explicitly, or better use apollo::Rng "
                   "(tensor/rng.*)");
        }
        break;
      }
    }
  }

  // Raw x86 intrinsics are confined to src/tensor/simd/: every other caller
  // must go through the dispatched KernelTable (tensor/simd/simd.h) so the
  // scalar fallback stays complete and the conformance harness covers every
  // code path that touches vector lanes.
  void rule_raw_simd_intrinsic(FileText& ft) {
    if (path_in(ft, "tensor/simd/")) return;
    // Left-boundary prefix match: `__m256` must also catch `__m256d` /
    // `__m256i`, and `_mm` catches every `_mm_*`/`_mm256_*`/`_mm512_*` call,
    // so a word-boundary token search on the right is too strict.
    auto has_prefix = [](const std::string& l, std::string_view pre) {
      size_t pos = l.find(pre);
      while (pos != std::string::npos) {
        if (pos == 0 || !ident_char(l[pos - 1])) return true;
        pos = l.find(pre, pos + 1);
      }
      return false;
    };
    static constexpr std::string_view kHeaders[] = {"immintrin.h",
                                                    "x86intrin.h"};
    static constexpr std::string_view kPrefixes[] = {"__m128", "__m256",
                                                     "__m512", "__mmask",
                                                     "_mm"};
    for (size_t i = 0; i < ft.code.size(); ++i) {
      const std::string& l = ft.code[i];
      std::string hit;
      for (std::string_view tok : kHeaders)
        if (l.find(tok) != std::string::npos) hit = std::string(tok);
      if (hit.empty())
        for (std::string_view pre : kPrefixes)
          if (has_prefix(l, pre)) hit = std::string(pre) + "*";
      if (!hit.empty()) {
        emit(ft, static_cast<int>(i + 1), "raw-simd-intrinsic",
             "raw SIMD intrinsic (" + hit +
                 ") outside src/tensor/simd/; call through the dispatched "
                 "simd::KernelTable (tensor/simd/simd.h) so the scalar "
                 "reference and conformance harness cover this path");
      }
    }
  }

  void rule_unordered_float_accum(FileText& ft) {
    const FlatCode flat(ft);
    // Names of variables declared as unordered containers in this file.
    std::set<std::string> unordered_vars;
    for (std::string_view kind : {"unordered_map", "unordered_set"}) {
      size_t pos = 0;
      while ((pos = find_token(flat.text, kind, pos)) != std::string::npos) {
        const size_t lt = flat.text.find('<', pos);
        pos += kind.size();
        if (lt == std::string::npos) continue;
        const size_t gt = match_angle(flat.text, lt);
        if (gt == std::string::npos) continue;
        // Declared name: first identifier after the closing `>`.
        size_t j = gt + 1;
        while (j < flat.text.size() &&
               (flat.text[j] == ' ' || flat.text[j] == '&' ||
                flat.text[j] == '\n'))
          ++j;
        std::string name;
        while (j < flat.text.size() && ident_char(flat.text[j]))
          name.push_back(flat.text[j++]);
        if (!name.empty()) unordered_vars.insert(name);
      }
    }
    if (unordered_vars.empty()) return;

    // Range-fors over one of those variables whose body accumulates into a
    // float/double: the reduction order is the container's (unspecified)
    // iteration order.
    size_t pos = 0;
    while ((pos = find_token(flat.text, "for", pos)) != std::string::npos) {
      const size_t head_open = flat.text.find_first_not_of(" \n", pos + 3);
      pos += 3;
      if (head_open == std::string::npos || flat.text[head_open] != '(')
        continue;
      const size_t head_close = match_forward(flat.text, head_open);
      if (head_close == std::string::npos) continue;
      const std::string head =
          flat.text.substr(head_open + 1, head_close - head_open - 1);
      const size_t colon = head.find(':');
      if (colon == std::string::npos || head.find(';') != std::string::npos)
        continue;  // not a range-for
      std::string range = head.substr(colon + 1);
      // Strip whitespace and trailing member access (states_.foo → states_).
      std::string range_var;
      for (char c : range) {
        if (c == ' ' || c == '\n') continue;
        if (!ident_char(c)) break;
        range_var.push_back(c);
      }
      if (!unordered_vars.count(range_var)) continue;
      // Loop body: either a braced block or a single statement.
      size_t body_begin = flat.text.find_first_not_of(" \n", head_close + 1);
      if (body_begin == std::string::npos) continue;
      size_t body_end;
      if (flat.text[body_begin] == '{') {
        body_end = match_forward(flat.text, body_begin);
        if (body_end == std::string::npos) continue;
      } else {
        body_end = flat.text.find(';', body_begin);
        if (body_end == std::string::npos) continue;
      }
      const std::string body =
          flat.text.substr(body_begin, body_end - body_begin);
      // Accumulation targets: identifiers on the left of += / -= / *=.
      for (std::string_view acc_op : {"+=", "-=", "*="}) {
        size_t p = 0;
        while ((p = body.find(acc_op, p)) != std::string::npos) {
          // Identifier to the left.
          size_t e = p;
          while (e > 0 && body[e - 1] == ' ') --e;
          size_t b = e;
          while (b > 0 && ident_char(body[b - 1])) --b;
          const std::string target = body.substr(b, e - b);
          p += acc_op.size();
          if (target.empty()) continue;
          if (is_float_var(flat.text, target)) {
            emit(ft, flat.line_of(body_begin + p - acc_op.size()),
                 "unordered-float-accum",
                 "float accumulation into '" + target +
                     "' while iterating std::unordered container '" +
                     range_var +
                     "'; iteration order is unspecified, making the "
                     "reduction non-reproducible — iterate a sorted key "
                     "list instead");
          }
        }
      }
    }
  }

  // `name` declared as float/double somewhere in the file?
  static bool is_float_var(const std::string& code, const std::string& name) {
    for (std::string_view ty : {"float", "double"}) {
      size_t pos = 0;
      while ((pos = find_token(code, ty, pos)) != std::string::npos) {
        size_t j = pos + ty.size();
        pos = j;
        while (j < code.size() && (code[j] == ' ' || code[j] == '\n')) ++j;
        size_t e = j;
        while (e < code.size() && ident_char(code[e])) ++e;
        if (code.substr(j, e - j) == name) return true;
      }
    }
    return false;
  }

  // Matches template angle brackets (no operator< inside a container type).
  static size_t match_angle(const std::string& s, size_t open) {
    int depth = 0;
    for (size_t i = open; i < s.size(); ++i) {
      if (s[i] == '<') ++depth;
      if (s[i] == '>' && --depth == 0) return i;
      if (s[i] == ';') return std::string::npos;
    }
    return std::string::npos;
  }

  // --- hygiene -------------------------------------------------------------

  void rule_pragma_once(FileText& ft) {
    if (!ft.is_header) return;
    for (const std::string& l : ft.code)
      if (l.find("#pragma once") != std::string::npos) return;
    emit(ft, 1, "pragma-once", "header is missing #pragma once");
  }

  void rule_using_namespace_header(FileText& ft) {
    if (!ft.is_header) return;
    for (size_t i = 0; i < ft.code.size(); ++i) {
      const size_t pos = find_token(ft.code[i], "using");
      if (pos == std::string::npos) continue;
      if (find_token(ft.code[i], "namespace", pos) != std::string::npos) {
        emit(ft, static_cast<int>(i + 1), "using-namespace-header",
             "`using namespace` in a header leaks into every includer");
      }
    }
  }

  void rule_raw_new_delete(FileText& ft) {
    // Files allowed to manage raw memory (none today; extend deliberately).
    static constexpr std::string_view kAllowlist[] = {""};
    for (std::string_view a : kAllowlist)
      if (!a.empty() && path_in(ft, a)) return;
    for (size_t i = 0; i < ft.code.size(); ++i) {
      const std::string& l = ft.code[i];
      size_t pos = find_token(l, "new");
      while (pos != std::string::npos) {
        // `operator new` overloads are declarations, not allocations.
        const std::string before = l.substr(0, pos);
        const bool is_operator =
            before.find("operator") != std::string::npos;
        const size_t after = l.find_first_not_of(' ', pos + 3);
        const bool allocates =
            after != std::string::npos &&
            (ident_char(l[after]) || l[after] == '(' || l[after] == '[');
        if (!is_operator && allocates) {
          emit(ft, static_cast<int>(i + 1), "raw-new-delete",
               "raw `new`; use std::vector / std::make_unique so ownership "
               "is explicit");
          break;
        }
        pos = find_token(l, "new", pos + 3);
      }
      pos = find_token(l, "delete");
      while (pos != std::string::npos) {
        size_t b = pos;
        while (b > 0 && l[b - 1] == ' ') --b;
        const bool deleted_fn = b > 0 && l[b - 1] == '=';
        const bool is_operator =
            l.substr(0, pos).find("operator") != std::string::npos;
        if (!deleted_fn && !is_operator) {
          emit(ft, static_cast<int>(i + 1), "raw-new-delete",
               "raw `delete`; use owning containers / smart pointers");
          break;
        }
        pos = find_token(l, "delete", pos + 6);
      }
    }
  }

  void rule_printf_float_precision(FileText& ft) {
    if (!path_is(ft, "src/")) return;
    static constexpr std::string_view kFns[] = {"printf", "fprintf",
                                                "snprintf", "sprintf"};
    for (size_t i = 0; i < ft.raw.size(); ++i) {
      bool has_call = false;
      for (std::string_view fn : kFns)
        if (find_token(ft.code[i], fn) != std::string::npos) has_call = true;
      if (!has_call) continue;
      // Scan the raw line's string literals for %-conversions.
      const std::string& raw = ft.raw[i];
      bool in_str = false;
      for (size_t j = 0; j < raw.size(); ++j) {
        if (raw[j] == '"' && (j == 0 || raw[j - 1] != '\\')) {
          in_str = !in_str;
          continue;
        }
        if (!in_str || raw[j] != '%') continue;
        size_t k = j + 1;
        if (k < raw.size() && raw[k] == '%') {  // literal %%
          j = k;
          continue;
        }
        bool has_dot = false;
        while (k < raw.size() &&
               (std::isdigit(static_cast<unsigned char>(raw[k])) ||
                raw[k] == '.' || raw[k] == '-' || raw[k] == '+' ||
                raw[k] == ' ' || raw[k] == '#' || raw[k] == '*' ||
                raw[k] == 'l' || raw[k] == 'L' || raw[k] == 'h')) {
          if (raw[k] == '.') has_dot = true;
          ++k;
        }
        if (k < raw.size() && std::strchr("fFeEgG", raw[k]) != nullptr &&
            !has_dot) {
          emit(ft, static_cast<int>(i + 1), "printf-float-precision",
               std::string("float conversion %") + raw[k] +
                   " without explicit precision; pin it (e.g. %.6g) so "
                   "output is byte-stable across platforms");
        }
        j = k;
      }
    }
  }

  // --- API contract --------------------------------------------------------

  void rule_check_shape_preconditions(FileText& ft) {
    if (!path_is(ft, "src/optim/") && !path_is(ft, "src/core/")) return;
    const FlatCode flat(ft);
    const std::string& s = flat.text;

    // Anonymous-namespace extents (internal helpers are exempt).
    std::vector<std::pair<size_t, size_t>> anon;
    size_t pos = 0;
    while ((pos = find_token(s, "namespace", pos)) != std::string::npos) {
      size_t j = s.find_first_not_of(" \n", pos + 9);
      pos += 9;
      if (j == std::string::npos || s[j] != '{') continue;
      const size_t close = match_forward(s, j);
      if (close != std::string::npos) anon.emplace_back(j, close);
    }
    const auto in_anon = [&](size_t off) {
      for (const auto& [b, e] : anon)
        if (off > b && off < e) return true;
      return false;
    };

    // Find `name(params) [qualifiers] {` definitions.
    pos = 0;
    while ((pos = s.find('(', pos)) != std::string::npos) {
      const size_t open = pos++;
      // Identifier directly before the `(`.
      size_t e = open;
      while (e > 0 && (s[e - 1] == ' ' || s[e - 1] == '\n')) --e;
      size_t b = e;
      while (b > 0 && ident_char(s[b - 1])) --b;
      const std::string name = s.substr(b, e - b);
      if (name.empty()) continue;
      static constexpr std::string_view kKeywords[] = {
          "if", "for", "while", "switch", "catch", "return", "sizeof",
          "defined", "do", "assert"};
      bool is_kw = false;
      for (std::string_view k : kKeywords) is_kw |= name == k;
      if (is_kw || name.rfind("APOLLO_", 0) == 0) continue;
      const size_t close = match_forward(s, open);
      if (close == std::string::npos) continue;
      // Qualifiers between `)` and `{`: const/noexcept/override/final only.
      size_t q = close + 1;
      while (q < s.size()) {
        const size_t t = s.find_first_not_of(" \n", q);
        if (t == std::string::npos) break;
        bool advanced = false;
        for (std::string_view w : {"const", "noexcept", "override", "final"}) {
          if (s.compare(t, w.size(), w) == 0) {
            q = t + w.size();
            advanced = true;
            break;
          }
        }
        if (!advanced) {
          q = t;
          break;
        }
      }
      if (q >= s.size() || s[q] != '{') continue;
      const std::string params = s.substr(open + 1, close - open - 1);
      if (find_token(params, "Matrix") == std::string::npos &&
          find_token(params, "ParamList") == std::string::npos &&
          find_token(params, "Parameter") == std::string::npos)
        continue;
      if (in_anon(open)) continue;
      // `static` helpers are internal; skip (statement start = after the
      // previous ; { or }).
      size_t stmt = b;
      while (stmt > 0 && s[stmt - 1] != ';' && s[stmt - 1] != '{' &&
             s[stmt - 1] != '}')
        --stmt;
      if (find_token(s.substr(stmt, b - stmt), "static") !=
          std::string::npos)
        continue;
      const size_t body_end = match_forward(s, q);
      if (body_end == std::string::npos) continue;
      const std::string body = s.substr(q, body_end - q);
      // Delegating to the base begin_step/end_step counts: those perform
      // the APOLLO_CHECKs shared by every optimizer.
      if (body.find("APOLLO_CHECK") != std::string::npos ||
          body.find("Optimizer::begin_step(") != std::string::npos ||
          body.find("Optimizer::end_step(") != std::string::npos) {
        pos = q;
        continue;
      }
      emit(ft, flat.line_of(b), "check-shape-preconditions",
           "'" + name +
               "' takes Matrix/ParamList arguments but never "
               "APOLLO_CHECKs its preconditions; add a shape/size check "
               "or annotate why none is needed");
      pos = q;
    }
  }

  std::vector<Diagnostic>* out_;
};

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

void print_rules() {
  std::cout <<
      "raw-thread                determinism: no std::thread/std::async/"
      "OpenMP outside core/threadpool.*\n"
      "raw-rng                   determinism: no rand()/random_device/"
      "unseeded mt19937 outside tensor/rng.*\n"
      "raw-simd-intrinsic        isolation: no _mm*/__m256/__m512 "
      "intrinsics outside src/tensor/simd/\n"
      "unordered-float-accum     determinism: no float accumulation over "
      "unordered containers\n"
      "pragma-once               hygiene: headers carry #pragma once\n"
      "using-namespace-header    hygiene: no `using namespace` in headers\n"
      "raw-new-delete            hygiene: no raw new/delete\n"
      "printf-float-precision    hygiene: float printf in src/ pins "
      "precision\n"
      "check-shape-preconditions contract: optim/core entry points "
      "APOLLO_CHECK their Matrix/ParamList/Parameter inputs\n"
      "Suppress with // lint:allow(rule-id) on or above the line, or "
      "// lint:allow-file(rule-id).\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: apollo-lint [--root DIR] [--list-rules] "
                   "[subdir...]\n       (default subdirs: src tools bench "
                   "tests)\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "apollo-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      dirs.emplace_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "tools", "bench", "tests"};

  std::vector<fs::path> files;
  for (const std::string& d : dirs) {
    const fs::path base = root / d;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp" && ext != ".cc" && ext != ".hpp")
        continue;
      if (entry.path().string().find("build") != std::string::npos &&
          entry.path().string().find("/build") != std::string::npos)
        continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Diagnostic> diags;
  Linter linter(&diags);
  int scanned = 0;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "apollo-lint: cannot read " << f << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    FileText ft;
    ft.display_path = fs::relative(f, root).generic_string();
    ft.is_header = f.extension() == ".h" || f.extension() == ".hpp";
    strip_comments_and_strings(buf.str(), ft);
    linter.lint(ft);
    ++scanned;
  }

  std::sort(diags.begin(), diags.end(), [](const auto& a, const auto& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  for (const Diagnostic& d : diags)
    std::cout << d.file << ":" << d.line << ": " << d.rule << ": "
              << d.message << "\n";
  if (diags.empty()) {
    std::cout << "apollo-lint: " << scanned << " files clean\n";
    return 0;
  }
  std::cerr << "apollo-lint: " << diags.size() << " finding(s) in "
            << scanned << " files\n";
  return 1;
}
