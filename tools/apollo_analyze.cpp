// apollo-analyze — whole-program static analysis for the APOLLO repo.
//
// Four passes over a shared source model (tools/analyze/):
//   layering     module DAG vs tools/analyze/layers.toml, include cycles,
//                transitively-included-but-used headers
//   concurrency  discipline inside core::parallel_for lambda bodies
//   hotpath      allocation reachable from hot roots (step_param, SIMD
//                kernels, autograd backward closures)
//   docdrift     getenv("APOLLO_*") ⇆ docs/ENVVARS.md, both directions
//
// Findings are diffed against a checked-in baseline
// (tools/analyze/baseline.json) by line-independent fingerprint, so CI fails
// only on NEW findings. `// lint:allow(rule)` comments suppress, same as
// apollo-lint.
//
// Exit codes: 0 = clean (no new findings), 1 = new findings, 2 = usage or
// I/O error. Deliberately dependency-free: standard library only, no link
// against the apollo libraries.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/findings.h"
#include "analyze/include_graph.h"
#include "analyze/passes.h"
#include "analyze/policy.h"
#include "analyze/source_model.h"

namespace fs = std::filesystem;

namespace {

struct PassInfo {
  std::string name;
  std::string summary;
  void (*run)(const analyze::AnalysisContext&, std::vector<analyze::Finding>&);
};

const std::vector<PassInfo>& passes() {
  static const std::vector<PassInfo> kPasses = {
      {"layering",
       "module layering vs layers.toml, include cycles, transitive includes",
       analyze::pass_layering},
      {"concurrency",
       "no mutex/I-O/getenv/nesting/shared accumulation in parallel_for",
       analyze::pass_concurrency},
      {"hotpath",
       "no new/malloc/container growth reachable from hot roots",
       analyze::pass_hotpath},
      {"docdrift", "getenv(\"APOLLO_*\") <-> docs/ENVVARS.md, both directions",
       analyze::pass_docdrift},
  };
  return kPasses;
}

void print_usage() {
  std::cout
      << "usage: apollo-analyze [options] [subdir...]\n"
         "       (default subdirs: src tools bench tests)\n\n"
         "options:\n"
         "  --root DIR        repo root (default: .)\n"
         "  --policy FILE     layering policy "
         "(default: <root>/tools/analyze/layers.toml)\n"
         "  --baseline FILE   baseline fingerprints "
         "(default: <root>/tools/analyze/baseline.json;\n"
         "                    a missing file means an empty baseline)\n"
         "  --write-baseline  rewrite the baseline from current findings, "
         "exit 0\n"
         "  --pass NAME       run only this pass (repeatable)\n"
         "  --json            emit new findings as JSON on stdout\n"
         "  --sarif FILE      also write new findings as SARIF 2.1.0\n"
         "  --list-passes     list passes and exit\n"
         "  --help            this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path policy_file, baseline_file, sarif_file;
  std::vector<std::string> dirs;
  std::set<std::string> selected;
  bool want_json = false, write_base = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--policy" && i + 1 < argc) {
      policy_file = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_file = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_file = argv[++i];
    } else if (arg == "--pass" && i + 1 < argc) {
      const std::string name = argv[++i];
      bool known = false;
      for (const PassInfo& p : passes()) known |= (p.name == name);
      if (!known) {
        std::cerr << "apollo-analyze: unknown pass '" << name
                  << "' (see --list-passes)\n";
        return 2;
      }
      selected.insert(name);
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg == "--write-baseline") {
      write_base = true;
    } else if (arg == "--list-passes") {
      for (const PassInfo& p : passes())
        std::cout << p.name << ": " << p.summary << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "apollo-analyze: unknown option " << arg << "\n";
      return 2;
    } else {
      dirs.emplace_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "tools", "bench", "tests"};
  if (policy_file.empty()) policy_file = root / "tools/analyze/layers.toml";
  if (baseline_file.empty())
    baseline_file = root / "tools/analyze/baseline.json";
  auto pass_on = [&](const std::string& name) {
    return selected.empty() || selected.count(name) != 0;
  };

  // --- load the source model -------------------------------------------------
  analyze::AnalysisContext ctx;
  ctx.root = root;
  for (const fs::path& f : srcmodel::collect_sources(root, dirs)) {
    srcmodel::SourceFile sf;
    const std::string display = fs::relative(f, root).generic_string();
    if (!srcmodel::load_file(f, display, sf)) {
      std::cerr << "apollo-analyze: cannot read " << f << "\n";
      return 2;
    }
    ctx.files.emplace(display, std::move(sf));
  }
  ctx.graph = analyze::build_include_graph(root, ctx.files);

  if (pass_on("layering")) {
    std::string err;
    if (!analyze::load_policy(policy_file, ctx.policy, err)) {
      std::cerr << "apollo-analyze: " << err << "\n";
      return 2;
    }
  }

  {
    const fs::path envdoc = root / "docs/ENVVARS.md";
    ctx.envdoc_path = "docs/ENVVARS.md";
    std::ifstream in(envdoc);
    std::string line;
    while (in && std::getline(in, line)) ctx.envdoc_lines.push_back(line);
  }

  // --- run ---------------------------------------------------------------------
  std::vector<analyze::Finding> findings;
  for (const PassInfo& p : passes())
    if (pass_on(p.name)) p.run(ctx, findings);
  analyze::sort_findings(findings);

  if (write_base) {
    if (!analyze::write_baseline(baseline_file, findings)) {
      std::cerr << "apollo-analyze: cannot write " << baseline_file << "\n";
      return 2;
    }
    std::cout << "apollo-analyze: baseline written (" << findings.size()
              << " finding(s)) to " << baseline_file.generic_string() << "\n";
    return 0;
  }

  std::set<std::string> baseline;
  if (fs::exists(baseline_file)) {
    std::string err;
    if (!analyze::load_baseline(baseline_file, baseline, err)) {
      std::cerr << "apollo-analyze: " << err << "\n";
      return 2;
    }
  }
  std::vector<analyze::Finding> fresh;
  for (analyze::Finding& f : findings)
    if (!baseline.count(f.fingerprint())) fresh.push_back(std::move(f));
  const size_t baselined = findings.size() - fresh.size();

  if (!sarif_file.empty()) {
    std::ofstream out(sarif_file, std::ios::binary);
    if (!out) {
      std::cerr << "apollo-analyze: cannot write " << sarif_file << "\n";
      return 2;
    }
    out << analyze::to_sarif(fresh);
  }

  if (want_json) {
    std::cout << analyze::to_json(fresh, baselined);
  } else {
    for (const analyze::Finding& f : fresh)
      std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
                << f.message << "\n";
    if (fresh.empty()) {
      std::cout << "apollo-analyze: " << ctx.files.size() << " files clean";
      if (baselined) std::cout << " (" << baselined << " baselined)";
      std::cout << "\n";
    } else {
      std::cerr << "apollo-analyze: " << fresh.size() << " new finding(s) in "
                << ctx.files.size() << " files";
      if (baselined) std::cerr << " (" << baselined << " baselined)";
      std::cerr << "\n";
    }
  }
  return fresh.empty() ? 0 : 1;
}
