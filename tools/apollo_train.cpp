// apollo_train — the end-to-end training CLI.
//
// Pre-trains a LLaMA-proxy (or custom-shaped) model on the synthetic corpus
// or any text file, with any optimizer in the registry, optional INT8
// weight quantization, checkpoint save/load and CSV curve logging.
//
//   $ apollo_train --optimizer apollo-mini --model 130m --steps 500
//   $ apollo_train --optimizer apollo --rank 16 --data book.txt
//         --steps 2000 --csv curve.csv --save model.ckpt
//   $ apollo_train --list-optimizers
#include <cstdio>
#include <memory>

#include "core/factory.h"
#include "core/quantized_weights.h"
#include "data/corpus.h"
#include "data/text_corpus.h"
#include "nn/llama.h"
#include "train/checkpoint.h"
#include "obs/csv_sink.h"
#include "train/schedule.h"
#include "train/trainer.h"

#include "args.h"

using namespace apollo;

namespace {

void usage() {
  std::printf(
      "apollo_train — memory-efficient LLM pre-training\n\n"
      "  --optimizer NAME    (default apollo; --list-optimizers for all)\n"
      "  --model SIZE        60m|130m|350m|1b|7b proxy (default 130m)\n"
      "  --hidden/--layers/--heads/--inter/--vocab/--seq  custom shape\n"
      "  --rank N            projection rank (default hidden/4)\n"
      "  --scale F           APOLLO/GaLore alpha (default per method)\n"
      "  --update-freq N     projector refresh period T (default 200)\n"
      "  --lr F              (default per method)\n"
      "  --steps N --batch N --grad-accum N   (default 400 / 4 / 1)\n"
      "  --weight-decay F    decoupled weight decay (default 0)\n"
      "  --data PATH         byte-level text file (default: synthetic C4)\n"
      "  --quantize-weights  INT8 weight store (Q- variants)\n"
      "  --fused-update      apply optimizer updates inside backward and\n"
      "                      free each gradient immediately (bit-identical\n"
      "                      trajectory; also via APOLLO_FUSED_UPDATE=1)\n"
      "  --eval-every N      validation cadence (default steps/10)\n"
      "  --csv PATH          write the eval curve as CSV\n"
      "  --save PATH         write a checkpoint after training\n"
      "  --load PATH         initialize weights from a checkpoint\n"
      "  --seed N            master seed (default 42)\n"
      "\nFault tolerance (docs/RESILIENCE.md):\n"
      "  --ckpt-dir DIR      rotating crash-consistent checkpoints +\n"
      "                      auto-resume from the newest good one\n"
      "  --ckpt-every N      checkpoint period in steps (default 50)\n"
      "  --ckpt-keep K       checkpoints retained (default 3)\n"
      "  --no-resume         disable auto-resume scanning of --ckpt-dir\n"
      "  --watchdog          divergence watchdog: rollback + LR backoff on\n"
      "                      NaN/Inf or loss spikes (needs --ckpt-dir)\n"
      "  --spike-factor F    spike threshold vs running median (default 10)\n"
      "  --max-retries N     rollback budget before escalation (default 3)\n"
      "  --lr-backoff F      LR multiplier per rollback (default 0.5)\n"
      "\n  APOLLO_FAULTS=\"nan_grad@40;crash@120\" plants deterministic\n"
      "  faults for recovery testing (see docs/RESILIENCE.md).\n");
}

nn::LlamaConfig model_config(const tools::Args& args) {
  const std::string size = args.get("model", "130m");
  nn::LlamaConfig cfg = nn::llama_130m_proxy();
  if (size == "60m") cfg = nn::llama_60m_proxy();
  else if (size == "350m") cfg = nn::llama_350m_proxy();
  else if (size == "1b") cfg = nn::llama_1b_proxy();
  else if (size == "7b") cfg = nn::llama_7b_proxy();
  cfg.hidden = static_cast<int>(args.get_int("hidden", cfg.hidden));
  cfg.n_layers = static_cast<int>(args.get_int("layers", cfg.n_layers));
  cfg.n_heads = static_cast<int>(args.get_int("heads", cfg.n_heads));
  cfg.intermediate = static_cast<int>(args.get_int("inter", cfg.intermediate));
  cfg.vocab = static_cast<int>(args.get_int("vocab", cfg.vocab));
  cfg.seq_len = static_cast<int>(args.get_int("seq", cfg.seq_len));
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Args args(argc, argv);
  if (args.has("help")) {
    usage();
    return 0;
  }
  if (args.has("list-optimizers")) {
    for (const auto& n : core::known_optimizers()) std::printf("%s\n", n.c_str());
    return 0;
  }

  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 42));
  nn::LlamaConfig cfg = model_config(args);

  // Data source.
  std::unique_ptr<data::TokenSource> source;
  const std::string data_path = args.get("data", "");
  if (!data_path.empty()) {
    std::string err;
    auto text = data::TextCorpus::from_file(data_path, &err);
    if (!text) {
      std::fprintf(stderr, "error: --data %s: %s\n", data_path.c_str(),
                   err.c_str());
      return 1;
    }
    std::printf("data: %s (%zu bytes, byte-level vocab 256)\n",
                data_path.c_str(), text->size_bytes());
    cfg.vocab = 256;
    source = std::make_unique<data::TextCorpus>(std::move(*text));
  } else {
    data::CorpusConfig ccfg;
    ccfg.vocab = cfg.vocab;
    source = std::make_unique<data::SyntheticCorpus>(ccfg);
    std::printf("data: synthetic corpus (vocab %d)\n", cfg.vocab);
  }

  // Optimizer.
  const std::string opt_name = args.get("optimizer", "apollo");
  core::FactoryOptions fo;
  fo.rank = args.get_int("rank", std::max(1, cfg.hidden / 4));
  fo.scale = static_cast<float>(args.get_double("scale", -1.0));
  fo.update_freq = static_cast<int>(args.get_int("update-freq", 200));
  fo.seed = seed * 7919 + 13;
  fo.weight_decay =
      static_cast<float>(args.get_double("weight-decay", 0.0));
  auto opt = core::make_optimizer(opt_name, fo);
  if (!opt) {
    std::fprintf(stderr, "error: unknown optimizer '%s' "
                 "(--list-optimizers)\n", opt_name.c_str());
    return 1;
  }

  train::TrainConfig tc;
  tc.steps = static_cast<int>(args.get_int("steps", 400));
  tc.batch = static_cast<int>(args.get_int("batch", 4));
  tc.grad_accum = static_cast<int>(args.get_int("grad-accum", 1));
  tc.fused_update = args.has("fused-update");
  tc.lr = static_cast<float>(
      args.get_double("lr", core::default_lr(opt_name)));
  tc.eval_every =
      static_cast<int>(args.get_int("eval-every", tc.steps / 10));
  tc.data_seed = seed;
  tc.resilience.ckpt_dir = args.get("ckpt-dir", "");
  tc.resilience.ckpt_every =
      static_cast<int>(args.get_int("ckpt-every", 50));
  tc.resilience.ckpt_keep = static_cast<int>(args.get_int("ckpt-keep", 3));
  tc.resilience.auto_resume = !args.has("no-resume");
  tc.resilience.watchdog = args.has("watchdog");
  tc.resilience.wd.spike_factor = args.get_double("spike-factor", 10.0);
  tc.resilience.wd.max_retries =
      static_cast<int>(args.get_int("max-retries", 3));
  tc.resilience.wd.lr_backoff =
      static_cast<float>(args.get_double("lr-backoff", 0.5));
  if (tc.resilience.watchdog && tc.resilience.ckpt_dir.empty()) {
    std::fprintf(stderr,
                 "error: --watchdog needs --ckpt-dir (rollback target)\n");
    return 1;
  }

  nn::LlamaModel model(cfg, seed);
  std::printf("model: hidden %d, layers %d, heads %d, seq %d — %lld params\n",
              cfg.hidden, cfg.n_layers, cfg.n_heads, cfg.seq_len,
              static_cast<long long>(model.param_count()));

  const std::string load_path = args.get("load", "");
  const std::string save_path = args.get("save", "");
  const std::string csv_path = args.get("csv", "");
  const bool quantize = args.has("quantize-weights");
  for (const auto& flag : args.unknown())
    std::fprintf(stderr, "warning: unrecognized flag %s\n", flag.c_str());
  if (!load_path.empty()) {
    auto r = train::load_checkpoint(load_path, model, opt.get());
    if (!r.ok) {
      std::fprintf(stderr, "error: %s\n", r.error.c_str());
      return 1;
    }
    std::printf("loaded checkpoint %s (step %lld)%s\n", load_path.c_str(),
                static_cast<long long>(r.step),
                r.optimizer_state_restored ? " with optimizer state" : "");
  }

  std::unique_ptr<core::QuantizedWeightStore> qstore;
  if (quantize) {
    qstore = std::make_unique<core::QuantizedWeightStore>(model.parameters(),
                                                          seed ^ 0x51u);
    std::printf("weights: INT8 group-128 store (%lld bytes persistent)\n",
                static_cast<long long>(qstore->weight_bytes()));
  }

  std::printf("training: %s, lr %g, %d steps x (batch %d x accum %d)\n\n",
              opt->name().c_str(), tc.lr, tc.steps, tc.batch, tc.grad_accum);

  train::Trainer trainer(model, *opt, *source, tc);
  if (qstore) trainer.set_quantized_weights(qstore.get());
  auto result = trainer.run();

  obs::CsvSink csv(csv_path, {"step", "val_loss", "ppl"});
  for (const auto& pt : result.curve) {
    std::printf("step %6d   val loss %.4f   ppl %8.2f\n", pt.step,
                pt.val_loss, pt.perplexity);
    csv.row({static_cast<double>(pt.step), pt.val_loss, pt.perplexity});
  }
  if (result.resumed_from_step > 0)
    std::printf("resumed from step %lld\n",
                static_cast<long long>(result.resumed_from_step));
  if (result.corrupt_checkpoints_skipped > 0)
    std::printf("corrupt checkpoints skipped: %d\n",
                result.corrupt_checkpoints_skipped);
  if (result.rollbacks > 0)
    std::printf("watchdog rollbacks: %d\n", result.rollbacks);
  if (result.diverged) {
    std::fprintf(stderr, "error: training diverged — %s\n",
                 result.divergence_diagnostics.c_str());
    return 3;
  }
  std::printf("\nfinal perplexity: %.2f\n", result.final_perplexity);
  std::printf("optimizer state:  %.1f KiB (%s)\n",
              static_cast<double>(result.optimizer_state_bytes) / 1024.0,
              opt->name().c_str());
  std::printf("peak activations: %.1f MiB\n",
              static_cast<double>(result.peak_activation_bytes) /
                  (1024.0 * 1024.0));

  if (!save_path.empty()) {
    auto r = train::save_checkpoint(save_path, model, tc.steps, opt.get());
    if (!r.ok) {
      std::fprintf(stderr, "error: %s\n", r.error.c_str());
      return 1;
    }
    std::printf("saved checkpoint to %s%s\n", save_path.c_str(),
                r.optimizer_state_restored ? " (with optimizer state)" : "");
  }
  return 0;
}
