// Tiny flag parser for the command-line tools: --name value and --flag
// forms, with typed getters and an unknown-flag check.
#pragma once

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace apollo::tools {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        positional_.push_back(a);
        continue;
      }
      a = a.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[a] = argv[++i];
      } else {
        values_[a] = "";  // bare flag
      }
    }
  }

  bool has(const std::string& name) const {
    used_.insert(name);
    return values_.count(name) > 0;
  }
  std::string get(const std::string& name, const std::string& dflt) const {
    used_.insert(name);
    auto it = values_.find(name);
    return it == values_.end() ? dflt : it->second;
  }
  long get_int(const std::string& name, long dflt) const {
    auto it = values_.find(name);
    used_.insert(name);
    return it == values_.end() ? dflt : std::strtol(it->second.c_str(),
                                                    nullptr, 10);
  }
  double get_double(const std::string& name, double dflt) const {
    auto it = values_.find(name);
    used_.insert(name);
    return it == values_.end() ? dflt
                               : std::strtod(it->second.c_str(), nullptr);
  }

  // Flags that were passed but never queried — typo detection.
  std::vector<std::string> unknown() const {
    std::vector<std::string> out;
    for (const auto& [k, v] : values_)
      if (used_.count(k) == 0) out.push_back("--" + k);
    return out;
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> used_;
};

}  // namespace apollo::tools
