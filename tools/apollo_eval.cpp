// apollo_eval — evaluate and sample from a trained checkpoint.
//
//   $ apollo-eval --load model.ckpt --model 60m --data book.txt
//   $ apollo-eval --load model.ckpt --model 60m --generate 200
//         --prompt "The " --temperature 0.8
//
// Reports held-out perplexity (on the same data kind the model was trained
// with) and, for byte-level models, prints a sampled continuation.
#include <cmath>
#include <cstdio>
#include <memory>

#include "data/corpus.h"
#include "data/text_corpus.h"
#include "nn/llama.h"
#include "nn/sampler.h"
#include "train/checkpoint.h"
#include "train/trainer.h"

#include "args.h"

using namespace apollo;

namespace {

nn::LlamaConfig model_config(const tools::Args& args) {
  const std::string size = args.get("model", "130m");
  nn::LlamaConfig cfg = nn::llama_130m_proxy();
  if (size == "60m") cfg = nn::llama_60m_proxy();
  else if (size == "350m") cfg = nn::llama_350m_proxy();
  else if (size == "1b") cfg = nn::llama_1b_proxy();
  else if (size == "7b") cfg = nn::llama_7b_proxy();
  cfg.hidden = static_cast<int>(args.get_int("hidden", cfg.hidden));
  cfg.n_layers = static_cast<int>(args.get_int("layers", cfg.n_layers));
  cfg.n_heads = static_cast<int>(args.get_int("heads", cfg.n_heads));
  cfg.intermediate = static_cast<int>(args.get_int("inter", cfg.intermediate));
  cfg.vocab = static_cast<int>(args.get_int("vocab", cfg.vocab));
  cfg.seq_len = static_cast<int>(args.get_int("seq", cfg.seq_len));
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Args args(argc, argv);
  const std::string load_path = args.get("load", "");
  if (args.has("help") || load_path.empty()) {
    std::printf(
        "apollo_eval — evaluate / sample a trained checkpoint\n\n"
        "  --load PATH         checkpoint (required)\n"
        "  --model SIZE        matching architecture (default 130m)\n"
        "  --hidden/--layers/--heads/--inter/--vocab/--seq  custom shape\n"
        "  --data PATH         text file for byte-level evaluation\n"
        "  --eval-batches N    validation batches (default 16)\n"
        "  --generate N        sample N tokens (byte-level models print "
        "text)\n"
        "  --prompt STR        generation prompt (default empty)\n"
        "  --temperature F     0 = greedy (default 0.8)\n"
        "  --top-k N           restrict sampling (default 40)\n");
    return load_path.empty() && !args.has("help") ? 1 : 0;
  }

  nn::LlamaConfig cfg = model_config(args);
  const std::string data_path = args.get("data", "");
  if (!data_path.empty()) cfg.vocab = 256;

  nn::LlamaModel model(cfg, 0);
  auto r = train::load_checkpoint(load_path, model);
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("loaded %s (step %lld, %lld params)\n", load_path.c_str(),
              static_cast<long long>(r.step),
              static_cast<long long>(model.param_count()));

  // Perplexity on held-out data.
  std::unique_ptr<data::TokenSource> source;
  std::unique_ptr<data::TextCorpus> text_keeper;
  if (!data_path.empty()) {
    std::string err;
    auto text = data::TextCorpus::from_file(data_path, &err);
    if (!text) {
      std::fprintf(stderr, "error: --data: %s\n", err.c_str());
      return 1;
    }
    text_keeper = std::make_unique<data::TextCorpus>(std::move(*text));
    source = std::make_unique<data::TextCorpus::Holdout>(
        text_keeper->holdout());
  } else {
    data::CorpusConfig ccfg;
    ccfg.vocab = cfg.vocab;
    source = std::make_unique<data::SyntheticCorpus>(ccfg);
  }
  const int eval_batches =
      static_cast<int>(args.get_int("eval-batches", 16));
  auto vs = data::make_validation_set(*source, eval_batches, 4, cfg.seq_len,
                                      991);
  const double loss = train::validation_loss(model, vs);
  std::printf("held-out loss %.4f   perplexity %.2f\n", loss,
              std::exp(loss));

  // Optional sampling.
  const int n_generate = static_cast<int>(args.get_int("generate", 0));
  const std::string prompt_str = args.get("prompt", "");
  for (const auto& flag : args.unknown())
    std::fprintf(stderr, "warning: unrecognized flag %s\n", flag.c_str());
  if (n_generate > 0) {
    nn::SamplerConfig sc;
    sc.temperature = static_cast<float>(args.get_double("temperature", 0.8));
    sc.top_k = static_cast<int>(args.get_int("top-k", 40));
    std::vector<int32_t> prompt;
    for (char c : prompt_str)
      prompt.push_back(static_cast<int32_t>(static_cast<unsigned char>(c)) %
                       cfg.vocab);
    auto tokens = nn::generate(model, prompt, n_generate, sc);
    if (cfg.vocab == 256) {
      std::printf("\n--- sample ---\n%s", prompt_str.c_str());
      for (int32_t t : tokens) {
        const char c = static_cast<char>(t);
        std::putchar((c >= 32 && c < 127) || c == '\n' ? c : '.');
      }
      std::printf("\n--- end ---\n");
    } else {
      std::printf("\nsampled token ids:");
      for (int32_t t : tokens) std::printf(" %d", t);
      std::printf("\n");
    }
  }
  return 0;
}
