#include "analyze/policy.h"

#include <fstream>

namespace analyze {

namespace {

std::string trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return std::string();
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Extracts the double-quoted strings from a bracketed TOML array body.
std::vector<std::string> parse_strings(const std::string& body) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = body.find('"', pos)) != std::string::npos) {
    const size_t close = body.find('"', pos + 1);
    if (close == std::string::npos) break;
    out.push_back(body.substr(pos + 1, close - pos - 1));
    pos = close + 1;
  }
  return out;
}

}  // namespace

std::string Policy::module_of(const std::string& display_path) const {
  for (const auto& [mod, paths] : module_overrides)
    for (const std::string& p : paths)
      if (p == display_path) return mod;
  const size_t slash = display_path.find('/');
  std::string top =
      slash == std::string::npos ? display_path : display_path.substr(0, slash);
  if (top != "src") return top;
  const size_t second = display_path.find('/', slash + 1);
  if (second == std::string::npos) return "src";
  return display_path.substr(slash + 1, second - slash - 1);
}

bool Policy::edge_allowed(const std::string& from_module,
                          const std::string& to_module) const {
  if (from_module == to_module) return true;
  auto it = allowed.find(from_module);
  if (it == allowed.end()) return false;
  return it->second.count("*") != 0 || it->second.count(to_module) != 0;
}

bool load_policy(const std::filesystem::path& file, Policy& out,
                 std::string& error) {
  std::ifstream in(file);
  if (!in) {
    error = "cannot read policy file " + file.string();
    return false;
  }
  out = Policy{};
  std::string line, section, key, pending;
  bool in_array = false;
  int lineno = 0;
  auto commit = [&](const std::string& k, const std::string& body) {
    const std::vector<std::string> items = parse_strings(body);
    if (section == "modules") {
      out.module_overrides[k] =
          std::vector<std::string>(items.begin(), items.end());
    } else if (section == "layers") {
      out.allowed[k] = std::set<std::string>(items.begin(), items.end());
    }  // unknown sections are ignored (forward compatibility)
  };
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos && !in_array) line = line.substr(0, hash);
    std::string t = trim(line);
    if (t.empty()) continue;
    if (in_array) {
      pending += t;
      if (t.find(']') != std::string::npos) {
        in_array = false;
        commit(key, pending);
      }
      continue;
    }
    if (t.front() == '[' && t.back() == ']' &&
        t.find('"') == std::string::npos && t.find('=') == std::string::npos) {
      section = trim(t.substr(1, t.size() - 2));
      continue;
    }
    const size_t eq = t.find('=');
    if (eq == std::string::npos) {
      error = file.string() + ":" + std::to_string(lineno) +
              ": expected `key = [...]`";
      return false;
    }
    key = trim(t.substr(0, eq));
    const std::string rest = trim(t.substr(eq + 1));
    if (rest.find('[') == std::string::npos) {
      error = file.string() + ":" + std::to_string(lineno) +
              ": value must be a [\"...\"] array";
      return false;
    }
    if (rest.find(']') != std::string::npos) {
      commit(key, rest);
    } else {
      pending = rest;
      in_array = true;
    }
  }
  if (in_array) {
    error = file.string() + ": unterminated array for key '" + key + "'";
    return false;
  }
  out.loaded = true;
  return true;
}

}  // namespace analyze
