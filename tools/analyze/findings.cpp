#include "analyze/findings.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

namespace analyze {

namespace {

// Minimal JSON string escaping (the analyzer is dependency-free; findings
// contain paths, C++ identifiers, and prose only).
std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (const unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.detail) <
                     std::tie(b.file, b.line, b.rule, b.detail);
            });
  findings.erase(
      std::unique(findings.begin(), findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.fingerprint() == b.fingerprint() &&
                           a.line == b.line;
                  }),
      findings.end());
}

bool load_baseline(const std::filesystem::path& file,
                   std::set<std::string>& out, std::string& error) {
  std::ifstream in(file);
  if (!in) {
    error = "cannot read baseline " + file.string();
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  // Fingerprints never contain quotes or backslashes, so pulling every
  // string out of the "findings" array needs no full JSON parser.
  const size_t key = text.find("\"findings\"");
  if (key == std::string::npos) {
    error = file.string() + ": no \"findings\" array";
    return false;
  }
  const size_t open = text.find('[', key);
  const size_t close = text.find(']', open);
  if (open == std::string::npos || close == std::string::npos) {
    error = file.string() + ": malformed \"findings\" array";
    return false;
  }
  size_t pos = open;
  while ((pos = text.find('"', pos + 1)) != std::string::npos && pos < close) {
    const size_t end = text.find('"', pos + 1);
    if (end == std::string::npos || end > close) break;
    out.insert(text.substr(pos + 1, end - pos - 1));
    pos = end;
  }
  return true;
}

bool write_baseline(const std::filesystem::path& file,
                    const std::vector<Finding>& findings) {
  std::set<std::string> fps;
  for (const Finding& f : findings) fps.insert(f.fingerprint());
  std::ofstream out(file, std::ios::binary);
  if (!out) return false;
  out << "{\n  \"findings\": [";
  bool first = true;
  for (const std::string& fp : fps) {
    out << (first ? "\n    " : ",\n    ") << jstr(fp);
    first = false;
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
  return out.good();
}

std::string to_json(const std::vector<Finding>& findings,
                    size_t baselined_count) {
  std::string out = "{\n  \"tool\": \"apollo-analyze\",\n  \"baselined\": " +
                    std::to_string(baselined_count) + ",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rule\": " + jstr(f.rule) + ", \"file\": " + jstr(f.file) +
           ", \"line\": " + std::to_string(f.line) +
           ", \"fingerprint\": " + jstr(f.fingerprint()) +
           ", \"message\": " + jstr(f.message) + "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  std::string out =
      "{\n"
      "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\"name\": \"apollo-analyze\", "
      "\"rules\": [";
  bool first = true;
  for (const std::string& r : rules) {
    out += first ? "" : ", ";
    first = false;
    out += "{\"id\": " + jstr(r) + "}";
  }
  out += "]}},\n    \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "      {\"ruleId\": " + jstr(f.rule) +
           ", \"level\": \"error\", \"message\": {\"text\": " +
           jstr(f.message) +
           "}, \"fingerprints\": {\"apolloAnalyze/v1\": " +
           jstr(f.fingerprint()) +
           "}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": " +
           jstr(f.file) + "}, \"region\": {\"startLine\": " +
           std::to_string(f.line > 0 ? f.line : 1) + "}}}]}";
  }
  out += first ? "]\n" : "\n    ]\n";
  out += "  }]\n}\n";
  return out;
}

}  // namespace analyze
