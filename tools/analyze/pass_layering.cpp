// Layering pass: module-DAG conformance against the checked-in policy,
// include-cycle detection, and "used but only transitively included"
// header hygiene.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/passes.h"

namespace analyze {

namespace {

using srcmodel::SourceFile;
using srcmodel::TokKind;
using srcmodel::Token;

// A "marker" is a symbol a header exports whose use implies a direct
// include: class/struct/enum-class definitions, object-like/function-like
// macros, and top-level alias declarations. Heuristic gates keep it sound
// in practice: names shorter than 4 chars are skipped, and a name declared
// by more than one header resolves to no marker at all.
struct Marker {
  std::string header;  // display path of the declaring header
};

std::map<std::string, Marker> collect_markers(
    const std::map<std::string, SourceFile>& files) {
  std::map<std::string, int> def_count;
  std::map<std::string, Marker> markers;
  for (const auto& [path, sf] : files) {
    if (!sf.is_header || path.rfind("src/", 0) != 0) continue;
    const std::vector<Token>& t = sf.tokens;
    auto add = [&](const std::string& name) {
      if (name.size() < 4) return;
      if (++def_count[name] == 1) markers[name] = {path};
    };
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      // class/struct/enum-class definitions (not forward declarations).
      if ((srcmodel::is_ident(t[i], "class") ||
           srcmodel::is_ident(t[i], "struct")) &&
          t[i + 1].kind == TokKind::kIdent) {
        size_t j = i + 2;
        if (j < t.size() && srcmodel::is_ident(t[j], "final")) ++j;
        if (j < t.size() && (srcmodel::is_punct(t[j], "{") ||
                             srcmodel::is_punct(t[j], ":")))
          add(t[i + 1].text);
      }
      if (srcmodel::match_seq(t, i, {"enum", "class"}) && i + 2 < t.size() &&
          t[i + 2].kind == TokKind::kIdent)
        add(t[i + 2].text);
      // Macros.
      if (srcmodel::match_seq(t, i, {"#", "define"}) && i + 2 < t.size() &&
          t[i + 2].kind == TokKind::kIdent)
        add(t[i + 2].text);
      // Top-level aliases: `using Name = ...`.
      if (srcmodel::is_ident(t[i], "using") && i + 2 < t.size() &&
          t[i + 1].kind == TokKind::kIdent && srcmodel::is_punct(t[i + 2], "="))
        add(t[i + 1].text);
    }
  }
  // Ambiguous names carry no marker.
  for (auto it = markers.begin(); it != markers.end();) {
    if (def_count[it->first] > 1)
      it = markers.erase(it);
    else
      ++it;
  }
  return markers;
}

// Does `sf` itself declare `name` (definition, forward declaration, macro,
// or alias)? Then a use of `name` needs no include at all.
bool declares_locally(const SourceFile& sf, const std::string& name) {
  const std::vector<Token>& t = sf.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if ((srcmodel::is_ident(t[i], "class") ||
         srcmodel::is_ident(t[i], "struct") ||
         srcmodel::is_ident(t[i], "enum") ||
         srcmodel::is_ident(t[i], "using")) &&
        srcmodel::is_ident(t[i + 1], name))
      return true;
    if (srcmodel::match_seq(t, i, {"#", "define"}) && i + 2 < t.size() &&
        srcmodel::is_ident(t[i + 2], name))
      return true;
  }
  return false;
}

// The sibling header a .cpp may rely on: same stem, .h, same directory.
std::string own_header(const std::string& path,
                       const std::map<std::string, SourceFile>& files) {
  const size_t dot = path.rfind('.');
  if (dot == std::string::npos) return std::string();
  const std::string h = path.substr(0, dot) + ".h";
  return files.count(h) ? h : std::string();
}

}  // namespace

void pass_layering(const AnalysisContext& ctx, std::vector<Finding>& out) {
  // --- declared-DAG conformance -------------------------------------------
  if (ctx.policy.loaded) {
    std::set<std::string> undeclared_reported;
    for (const auto& [path, sf] : ctx.files) {
      const std::string from_mod = ctx.policy.module_of(path);
      if (!ctx.policy.declared(from_mod)) {
        if (undeclared_reported.insert(from_mod).second &&
            !sf.allowed(0, "layer-undeclared")) {
          out.push_back({"layer-undeclared", path, 1, from_mod,
                         "module '" + from_mod +
                             "' is not declared in the layering policy; add "
                             "it to [layers] with its allowed dependencies"});
        }
        continue;
      }
      auto it = ctx.graph.direct.find(path);
      if (it == ctx.graph.direct.end()) continue;
      for (const IncludeEdge& e : it->second) {
        const std::string to_mod = ctx.policy.module_of(e.target);
        if (ctx.policy.edge_allowed(from_mod, to_mod)) continue;
        if (sf.allowed(e.line, "layer-violation")) continue;
        out.push_back(
            {"layer-violation", path, e.line, from_mod + "->" + to_mod,
             "include of " + e.target + " creates a forbidden layer edge " +
                 from_mod + " -> " + to_mod +
                 "; the policy (tools/analyze/layers.toml) does not allow "
                 "module '" + from_mod + "' to depend on '" + to_mod + "'"});
      }
    }
  }

  // --- include cycles -------------------------------------------------------
  for (const std::vector<std::string>& cycle : ctx.graph.cycles) {
    std::string members;
    for (const std::string& f : cycle)
      members += (members.empty() ? "" : " <-> ") + f;
    const auto sf = ctx.files.find(cycle.front());
    if (sf != ctx.files.end() && sf->second.allowed(0, "include-cycle"))
      continue;
    out.push_back({"include-cycle", cycle.front(), 1, members,
                   "include cycle: " + members +
                       "; break it with a forward declaration or by moving "
                       "the shared piece down a layer"});
  }

  // --- transitive-include hygiene -------------------------------------------
  // Scoped to src/: library files must spell out what they use so refactors
  // lower in the stack cannot break them. Harness trees (tests/bench/tools/
  // examples) lean on umbrella headers like bench/exp_common.h on purpose.
  const std::map<std::string, Marker> markers = collect_markers(ctx.files);
  for (const auto& [path, sf] : ctx.files) {
    if (path.rfind("src/", 0) != 0) continue;
    auto reach_it = ctx.graph.reachable.find(path);
    if (reach_it == ctx.graph.reachable.end()) continue;
    const std::set<std::string>& reach = reach_it->second;
    const std::string own = own_header(path, ctx.files);
    std::set<std::string> reported;  // one finding per (file, symbol)
    for (const Token& tok : sf.tokens) {
      if (tok.kind != TokKind::kIdent) continue;
      const auto m = markers.find(tok.text);
      if (m == markers.end()) continue;
      const std::string& hdr = m->second.header;
      if (hdr == path || hdr == own) continue;
      if (!reach.count(hdr)) continue;  // not ours / truly missing: not this
                                        // pass's business
      if (ctx.graph.includes_directly(path, hdr)) continue;
      // A .cpp may rely on its own header's direct includes.
      if (!own.empty() && ctx.graph.includes_directly(own, hdr)) continue;
      if (declares_locally(sf, tok.text)) continue;
      if (!reported.insert(tok.text).second) continue;
      if (sf.allowed(tok.line, "transitive-include")) continue;
      out.push_back(
          {"transitive-include", path, tok.line, tok.text + "<-" + hdr,
           "uses '" + tok.text + "' from " + hdr +
               ", which is only included transitively; include it directly "
               "(#include \"" + hdr.substr(hdr.rfind("src/", 0) == 0 ? 4 : 0) +
               "\") so refactors lower in the stack cannot break this file"});
    }
  }
}

}  // namespace analyze
