// Concurrency-discipline pass. The repo's contract (src/core/threadpool.h)
// is a deterministic fixed-partition pool: lambda bodies handed to
// core::parallel_for must be pure element-range work. This pass walks every
// parallel_for call, extracts the lambda body's token range, and flags the
// things that break determinism or scale: blocking synchronization, I/O,
// getenv, nested parallel_for, and compound-assign accumulation into
// variables shared across lanes (whose result depends on lane interleaving).
#include <set>
#include <string>
#include <vector>

#include "analyze/passes.h"

namespace analyze {

namespace {

using srcmodel::SourceFile;
using srcmodel::TokKind;
using srcmodel::Token;

const std::set<std::string>& mutex_idents() {
  static const std::set<std::string> kSet = {
      "mutex",        "timed_mutex",       "recursive_mutex",
      "shared_mutex", "lock_guard",        "unique_lock",
      "scoped_lock",  "shared_lock",       "condition_variable",
      "condition_variable_any"};
  return kSet;
}

const std::set<std::string>& io_idents() {
  static const std::set<std::string> kSet = {
      "cout",  "cerr",   "clog",     "printf",   "fprintf", "fputs",
      "puts",  "putchar", "fopen",   "fwrite",   "fread",   "fflush",
      "fclose", "ofstream", "ifstream", "fstream", "getline"};
  return kSet;
}

// Token range (exclusive of the braces) of the first lambda body inside the
// parallel_for call's argument list [open, close]. Returns false when the
// call has no lambda literal argument (e.g. a named functor).
bool lambda_body(const std::vector<Token>& t, size_t open, size_t close,
                 size_t& body_begin, size_t& body_end) {
  for (size_t i = open + 1; i < close; ++i) {
    if (!srcmodel::is_punct(t[i], "[")) continue;
    const size_t rb = srcmodel::match_forward(t, i);
    if (rb >= close) return false;
    // Skip the parameter list / specifiers up to the body's `{`.
    size_t j = rb + 1;
    while (j < close && !srcmodel::is_punct(t[j], "{")) {
      if (srcmodel::is_punct(t[j], "(")) {
        j = srcmodel::match_forward(t, j);
        if (j >= close) return false;
      }
      ++j;
    }
    if (j >= close) return false;
    const size_t end = srcmodel::match_forward(t, j);
    if (end >= t.size()) return false;
    body_begin = j + 1;
    body_end = end;
    return true;
  }
  return false;
}

// Is the identifier at `j` declared inside [begin, end)? A declaration is a
// prior occurrence whose preceding token is a type-ish identifier or a
// `*`/`&` declarator — covers `double acc`, `const float* gr`, `auto x`.
bool declared_in_body(const std::vector<Token>& t, size_t begin, size_t end,
                      const std::string& name) {
  for (size_t k = begin; k < end; ++k) {
    if (!srcmodel::is_ident(t[k], name) || k == 0) continue;
    const Token& prev = t[k - 1];
    if (prev.kind == TokKind::kIdent || srcmodel::is_punct(prev, "*") ||
        srcmodel::is_punct(prev, "&"))
      return true;
  }
  return false;
}

}  // namespace

void pass_concurrency(const AnalysisContext& ctx, std::vector<Finding>& out) {
  for (const auto& [path, sf] : ctx.files) {
    const std::vector<Token>& t = sf.tokens;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (!(t[i].kind == TokKind::kIdent && t[i].text == "parallel_for" &&
            srcmodel::is_punct(t[i + 1], "(")))
        continue;
      const size_t close = srcmodel::match_forward(t, i + 1);
      if (close >= t.size()) continue;
      size_t begin = 0, end = 0;
      if (!lambda_body(t, i + 1, close, begin, end)) continue;

      auto emit = [&](const std::string& rule, int line,
                      const std::string& detail, const std::string& msg) {
        if (sf.allowed(line, rule)) return;
        out.push_back({rule, path, line, detail, msg});
      };

      for (size_t j = begin; j < end; ++j) {
        const Token& tok = t[j];
        if (tok.kind != TokKind::kIdent) continue;
        if (mutex_idents().count(tok.text)) {
          emit("parallel-mutex", tok.line, tok.text,
               "'" + tok.text +
                   "' inside a parallel_for body: the pool is a deterministic "
                   "fixed-partition runtime; blocking synchronization "
                   "serializes lanes and can deadlock under nesting. "
                   "Restructure so each lane owns a disjoint range");
        } else if (io_idents().count(tok.text)) {
          emit("parallel-io", tok.line, tok.text,
               "I/O ('" + tok.text +
                   "') inside a parallel_for body interleaves "
                   "nondeterministically across lanes; buffer per lane and "
                   "emit after the join instead");
        } else if (tok.text == "getenv" || tok.text == "secure_getenv") {
          emit("parallel-getenv", tok.line, tok.text,
               "getenv inside a parallel_for body: getenv is not guaranteed "
               "thread-safe against setenv and is a hidden global read on "
               "the hot path; read the variable once outside the region");
        } else if (tok.text == "parallel_for" && j + 1 < end &&
                   srcmodel::is_punct(t[j + 1], "(")) {
          emit("parallel-nested", tok.line, "nested",
               "nested parallel_for: the inner call degrades to sequential "
               "by design (see threadpool.h); hoist the nesting or flatten "
               "the iteration space");
        } else if (j + 1 < end &&
                   (srcmodel::is_punct(t[j + 1], "+=") ||
                    srcmodel::is_punct(t[j + 1], "-="))) {
          // Plain-identifier compound assignment: skip member/indexed/deref
          // targets (lane-disjoint by construction) and body-locals.
          const Token& prev = t[j - 1];
          if (srcmodel::is_punct(prev, ".") || srcmodel::is_punct(prev, "->") ||
              srcmodel::is_punct(prev, "::") || srcmodel::is_punct(prev, "*") ||
              srcmodel::is_punct(prev, "]"))
            continue;
          if (declared_in_body(t, begin, end, tok.text)) continue;
          emit("parallel-unordered-accum", tok.line, tok.text,
               "'" + tok.text + " " + t[j + 1].text +
                   "' accumulates into a variable shared across parallel_for "
                   "lanes: a data race, and even with atomics the float "
                   "result depends on lane order. Accumulate per lane and "
                   "reduce deterministically after the join");
        }
      }
      i = close;  // resume after this call; inner calls were handled above
    }
  }
}

}  // namespace analyze
