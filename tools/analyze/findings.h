// Finding model shared by the apollo-analyze passes: a diagnostic with a
// stable fingerprint (no line numbers, so findings survive unrelated edits),
// plus the output sinks — human text, JSON, SARIF 2.1.0 — and the
// baseline-diff machinery that makes CI fail only on *new* findings.
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace analyze {

struct Finding {
  std::string rule;     // e.g. "layer-violation"
  std::string file;     // display path the finding anchors to
  int line = 0;         // 1-based; 0 when the finding is file-scoped
  std::string detail;   // stable identity payload (edge, symbol, env var)
  std::string message;  // human diagnostic

  // Line-independent identity: rule|file|detail. Two findings with the same
  // fingerprint are the same problem even if the code around them moved.
  std::string fingerprint() const { return rule + "|" + file + "|" + detail; }
};

void sort_findings(std::vector<Finding>& findings);

// --- baseline --------------------------------------------------------------

// Loads the fingerprints from a baseline JSON file
// ({"findings": ["fp", ...]}); returns false and sets `error` on I/O or
// parse failure. A missing file is NOT an error here — callers decide.
bool load_baseline(const std::filesystem::path& file,
                   std::set<std::string>& out, std::string& error);

// Writes the given findings' fingerprints as a baseline file.
bool write_baseline(const std::filesystem::path& file,
                    const std::vector<Finding>& findings);

// --- sinks -------------------------------------------------------------

std::string to_json(const std::vector<Finding>& findings,
                    size_t baselined_count);
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace analyze
