// Layering policy: which module each file belongs to and which module →
// module include edges are legal. Loaded from a checked-in TOML-subset file
// (tools/analyze/layers.toml in this repo); see docs/STATIC_ANALYSIS.md for
// the format.
//
// Module assignment: explicit [modules] overrides win (exact display-path
// match), then the default — `src/<module>/...` maps to `<module>`, any
// other top-level directory (tools, tests, bench, examples) maps to itself.
//
// The [layers] table declares the DAG: `mod = ["dep1", "dep2"]` lists the
// modules `mod` may include from (self-edges are always legal); the single
// entry `["*"]` allows everything (used for tools/tests/bench).
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace analyze {

struct Policy {
  // module → exact file paths assigned to it (overrides the path rule).
  std::map<std::string, std::vector<std::string>> module_overrides;
  // module → allowed direct dependencies ("*" = anything).
  std::map<std::string, std::set<std::string>> allowed;

  bool loaded = false;

  // Module for a display path, honoring overrides.
  std::string module_of(const std::string& display_path) const;

  // Is the edge `from_module → to_module` declared legal?
  bool edge_allowed(const std::string& from_module,
                    const std::string& to_module) const;

  bool declared(const std::string& module) const {
    return allowed.count(module) != 0;
  }
};

// Parses the policy file. Returns false (and sets `error`) on I/O or syntax
// errors; an analyzer run without a policy skips the layering-DAG checks
// but still reports include cycles.
bool load_policy(const std::filesystem::path& file, Policy& out,
                 std::string& error);

}  // namespace analyze
