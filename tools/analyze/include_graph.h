// Preprocessor-lite include graph over the repo's C++ sources.
//
// Quoted includes are resolved the way the build resolves them: relative to
// the including file's directory first, then against the repo include roots
// (src/ — the single global include directory — and tools/, which adds
// itself for args.h / analyze/*). System includes and unresolvable paths
// are recorded but carry no graph edge.
//
// On top of the file-level graph this computes, for every file: the direct
// include set, the transitive closure, and the strongly-connected components
// (any SCC with more than one file, or a self-loop, is an include cycle).
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/source_model.h"

namespace analyze {

struct IncludeEdge {
  std::string target;  // resolved display path of the included repo file
  int line = 0;        // line of the #include directive
};

struct IncludeGraph {
  // Keyed by display path (root-relative, forward slashes).
  std::map<std::string, std::vector<IncludeEdge>> direct;
  // Transitive closure (does not contain the file itself unless cyclic).
  std::map<std::string, std::set<std::string>> reachable;
  // Include cycles: each entry is one SCC of size > 1 (or a self-loop),
  // sorted; the member files are sorted too.
  std::vector<std::vector<std::string>> cycles;

  bool includes_directly(const std::string& from,
                         const std::string& target) const {
    auto it = direct.find(from);
    if (it == direct.end()) return false;
    for (const IncludeEdge& e : it->second)
      if (e.target == target) return true;
    return false;
  }
};

// Builds the graph for `files` (display path → lexed source). `root` is the
// repo root used to resolve include paths against the include roots.
IncludeGraph build_include_graph(
    const std::filesystem::path& root,
    const std::map<std::string, srcmodel::SourceFile>& files);

}  // namespace analyze
