#include "analyze/include_graph.h"

#include <algorithm>
#include <functional>

namespace analyze {

namespace {

namespace fs = std::filesystem;

// Lexically normalizes `p` and returns it with forward slashes, or an empty
// string if it escapes the root ("../..").
std::string normalize(const fs::path& p) {
  const fs::path norm = p.lexically_normal();
  const std::string s = norm.generic_string();
  if (s.rfind("../", 0) == 0 || s == "..") return std::string();
  return s;
}

}  // namespace

IncludeGraph build_include_graph(
    const fs::path& root,
    const std::map<std::string, srcmodel::SourceFile>& files) {
  (void)root;  // resolution is purely lexical against the known file set
  IncludeGraph g;

  // Include roots, in resolution order. "" means repo-root-relative (covers
  // includes already written as "tensor/..." resolved via -Isrc, and the
  // tools' own "analyze/..." resolved via -Itools).
  const std::vector<std::string> include_roots = {"src/", "tools/"};

  for (const auto& [path, sf] : files) {
    std::vector<IncludeEdge>& out = g.direct[path];
    const std::vector<srcmodel::Token>& t = sf.tokens;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (!srcmodel::is_punct(t[i], "#") ||
          !srcmodel::is_ident(t[i + 1], "include"))
        continue;
      const srcmodel::Token& target = t[i + 2];
      if (target.kind == srcmodel::TokKind::kHeaderName) continue;  // <...>
      if (target.kind != srcmodel::TokKind::kString) continue;
      const std::string& inc = target.text;
      // Relative to the including file's directory first (the way the
      // preprocessor resolves quoted includes), then the include roots.
      std::string resolved;
      const std::string sibling =
          normalize(fs::path(path).parent_path() / inc);
      if (!sibling.empty() && files.count(sibling)) {
        resolved = sibling;
      } else {
        for (const std::string& r : include_roots) {
          const std::string candidate = normalize(fs::path(r) / inc);
          if (!candidate.empty() && files.count(candidate)) {
            resolved = candidate;
            break;
          }
        }
      }
      if (!resolved.empty() && resolved != path)
        out.push_back({resolved, target.line});
    }
  }

  // Transitive closure by DFS with memoization over the (possibly cyclic)
  // graph: iterative, cycle-safe, O(V·E) worst case — trivial at repo scale.
  for (const auto& [path, edges] : g.direct) {
    (void)edges;
    std::set<std::string>& seen = g.reachable[path];
    std::vector<std::string> stack;
    for (const IncludeEdge& e : g.direct[path]) stack.push_back(e.target);
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      if (!seen.insert(cur).second) continue;
      auto it = g.direct.find(cur);
      if (it == g.direct.end()) continue;
      for (const IncludeEdge& e : it->second)
        if (!seen.count(e.target)) stack.push_back(e.target);
    }
  }

  // Tarjan SCC for cycle reporting.
  std::map<std::string, int> index, low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int counter = 0;
  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack[v] = true;
        auto it = g.direct.find(v);
        if (it != g.direct.end()) {
          for (const IncludeEdge& e : it->second) {
            const std::string& w = e.target;
            if (!index.count(w)) {
              strongconnect(w);
              low[v] = std::min(low[v], low[w]);
            } else if (on_stack[w]) {
              low[v] = std::min(low[v], index[w]);
            }
          }
        }
        if (low[v] == index[v]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == v) break;
          }
          const bool self_loop =
              scc.size() == 1 && g.includes_directly(scc[0], scc[0]);
          if (scc.size() > 1 || self_loop) {
            std::sort(scc.begin(), scc.end());
            g.cycles.push_back(std::move(scc));
          }
        }
      };
  for (const auto& [path, edges] : g.direct) {
    (void)edges;
    if (!index.count(path)) strongconnect(path);
  }
  std::sort(g.cycles.begin(), g.cycles.end());
  return g;
}

}  // namespace analyze
