// Shared source model for the repo's static-analysis tools (apollo-lint,
// apollo-analyze): a dependency-free, string/comment/raw-string aware C++
// tokenizer plus the `// lint:allow(rule)` suppression machinery.
//
// Both tools are deliberately self-contained (no link against the apollo
// libraries — they must build and run even when the library is broken), so
// this layer depends on the standard library only.
//
// A SourceFile carries three synchronized views of one file:
//   raw    — the original lines, untouched;
//   code   — the same lines with comments and string/char literal *contents*
//            blanked to spaces (quotes kept), so naive substring scans never
//            match inside a literal;
//   tokens — a lexed stream over the code view: identifiers, numbers,
//            punctuation (maximal-munch C++ operators), string/char literals
//            (carrying their raw literal text), and `#include` header names
//            as a single token. Every token knows its 1-based line.
//
// Rules written against `tokens` get word-boundary and literal awareness for
// free; the line views stay available for the few checks that are genuinely
// line-shaped (e.g. "does this header contain #pragma once").
#pragma once

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace srcmodel {

enum class TokKind {
  kIdent,       // identifiers and keywords
  kNumber,      // numeric literals (incl. digit separators)
  kString,      // string literal; text = raw body between the quotes
  kChar,        // char literal; text = raw body between the quotes
  kPunct,       // operator / punctuator, maximal munch ("::", "+=", ...)
  kHeaderName,  // the target of an #include; text = path without delimiters
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;             // 1-based
  bool system_header = false;  // kHeaderName only: <...> vs "..."
};

struct SourceFile {
  std::string display_path;  // root-relative, forward slashes
  bool is_header = false;

  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<Token> tokens;

  // Suppressions: (line, rule) pairs and file-wide rules collected from
  // `lint:allow(rule[,rule...])` / `lint:allow-file(...)` comments. A line
  // directive covers its own line and the next.
  std::set<std::pair<int, std::string>> line_allows;
  std::set<std::string> file_allows;

  bool allowed(int line, const std::string& rule) const {
    return file_allows.count(rule) != 0 ||
           line_allows.count({line, rule}) != 0;
  }
  bool path_starts_with(std::string_view prefix) const {
    return display_path.rfind(prefix, 0) == 0;
  }
  bool path_contains(std::string_view needle) const {
    return display_path.find(needle) != std::string::npos;
  }
};

// Lexes `text` into `out` (display_path/is_header are the caller's job).
void lex(const std::string& text, SourceFile& out);

// Loads and lexes one file; returns false (and leaves `out` empty) on I/O
// error. `display_path` is stored as given.
bool load_file(const std::filesystem::path& file,
               const std::string& display_path, SourceFile& out);

// Collects the C++ sources (.h/.hpp/.cpp/.cc) under `root/<dir>` for each
// dir, skipping any path with a `build` component, sorted by display path.
std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& root, const std::vector<std::string>& dirs);

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

// Index of the next token with the given kind+text at or after `from`;
// npos (= tokens.size()) when absent.
size_t find_token(const std::vector<Token>& toks, TokKind kind,
                  std::string_view text, size_t from = 0);

// True when tokens [i, i+n) are identifiers/puncts matching `seq` exactly
// (each element matched against the token's text, any kind).
bool match_seq(const std::vector<Token>& toks, size_t i,
               std::initializer_list<std::string_view> seq);

// Matching closer for the opener at index `open` (one of ( { [ );
// tokens.size() when unbalanced.
size_t match_forward(const std::vector<Token>& toks, size_t open);

// Matching `>` for the `<` at index `open`, treating ">>" as two closers and
// giving up at a top-level `;`. tokens.size() when unmatched.
size_t match_angle(const std::vector<Token>& toks, size_t open);

bool is_ident(const Token& t, std::string_view text);
bool is_punct(const Token& t, std::string_view text);

}  // namespace srcmodel
