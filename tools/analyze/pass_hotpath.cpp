// Hot-path allocation pass: a name-matched call-graph-lite.
//
// Hot roots are the places the training loop hits every step:
//   - every `step_param` definition (the per-parameter optimizer update),
//   - every function defined under src/tensor/simd/ (the kernel layer),
//   - every autograd backward closure (`n.backward = [...](Tape&) {...}`
//     bodies in src/autograd/ — extracted as synthetic functions so the
//     enclosing forward op is NOT implicitly hot).
//
// From those roots we BFS over name-matched call edges (identifier followed
// by `(` that resolves to a function *defined* in the scanned tree) and flag
// allocation sites in every reachable body: `new`, the malloc family,
// make_unique/make_shared, and container-growth member calls (push_back,
// resize, reserve, ...). Constructor temporaries are deliberately NOT
// flagged — `Matrix tmp(r, c)` is visible in the signature of the code and
// is the optimizer's documented working set; the rule targets the quieter
// ways steady-state work acquires memory.
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/passes.h"

namespace analyze {

namespace {

using srcmodel::SourceFile;
using srcmodel::TokKind;
using srcmodel::Token;

struct Func {
  std::string name;
  std::string file;   // display path
  int line = 0;       // definition line
  size_t body_begin = 0, body_end = 0;  // token range, braces excluded
  bool hot_root = false;
  std::string root_why;  // e.g. "step_param", "simd kernel", "backward closure"
};

const std::set<std::string>& keyword_names() {
  static const std::set<std::string> kSet = {
      "if",     "for",    "while", "switch", "catch",  "return",
      "sizeof", "alignof", "do",   "else",   "new",    "delete",
      "static_assert", "decltype", "noexcept"};
  return kSet;
}

const std::set<std::string>& growth_members() {
  static const std::set<std::string> kSet = {
      "push_back", "emplace_back", "emplace",       "insert",
      "resize",    "reserve",      "assign",        "append",
      "push_front", "emplace_front"};
  return kSet;
}

const std::set<std::string>& alloc_calls() {
  static const std::set<std::string> kSet = {
      "malloc", "calloc",      "realloc",    "aligned_alloc",
      "posix_memalign", "strdup", "make_unique", "make_shared"};
  return kSet;
}

// Extracts `name(params) [const|noexcept|override|final]* {` definitions.
void extract_functions(const std::string& path, const SourceFile& sf,
                       std::vector<Func>& out) {
  const std::vector<Token>& t = sf.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !srcmodel::is_punct(t[i + 1], "("))
      continue;
    if (keyword_names().count(t[i].text)) continue;
    if (i > 0 && (srcmodel::is_punct(t[i - 1], ".") ||
                  srcmodel::is_punct(t[i - 1], "->") ||
                  srcmodel::is_ident(t[i - 1], "new")))
      continue;
    const size_t close = srcmodel::match_forward(t, i + 1);
    if (close >= t.size()) continue;
    size_t j = close + 1;
    while (j < t.size()) {
      if (srcmodel::is_ident(t[j], "const") ||
          srcmodel::is_ident(t[j], "override") ||
          srcmodel::is_ident(t[j], "final")) {
        ++j;
      } else if (srcmodel::is_ident(t[j], "noexcept")) {
        ++j;
        if (j < t.size() && srcmodel::is_punct(t[j], "(")) {
          j = srcmodel::match_forward(t, j);
          if (j >= t.size()) break;
          ++j;
        }
      } else {
        break;
      }
    }
    if (j >= t.size() || !srcmodel::is_punct(t[j], "{")) continue;
    const size_t end = srcmodel::match_forward(t, j);
    if (end >= t.size()) continue;
    Func f;
    f.name = t[i].text;
    f.file = path;
    f.line = t[i].line;
    f.body_begin = j + 1;
    f.body_end = end;
    out.push_back(std::move(f));
  }
}

// Extracts `backward = [caps](params) { ... }` closure bodies (autograd op
// registration) as synthetic hot functions.
void extract_backward_closures(const std::string& path, const SourceFile& sf,
                               std::vector<Func>& out) {
  const std::vector<Token>& t = sf.tokens;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(srcmodel::is_ident(t[i], "backward") &&
          srcmodel::is_punct(t[i + 1], "=") &&
          srcmodel::is_punct(t[i + 2], "[")))
      continue;
    const size_t rb = srcmodel::match_forward(t, i + 2);
    if (rb >= t.size()) continue;
    size_t j = rb + 1;
    while (j < t.size() && !srcmodel::is_punct(t[j], "{")) {
      if (srcmodel::is_punct(t[j], "(")) {
        j = srcmodel::match_forward(t, j);
        if (j >= t.size()) break;
      }
      if (srcmodel::is_punct(t[j], ";")) { j = t.size(); break; }
      ++j;
    }
    if (j >= t.size()) continue;
    const size_t end = srcmodel::match_forward(t, j);
    if (end >= t.size()) continue;
    Func f;
    f.name = "backward closure at " + path + ":" + std::to_string(t[i].line);
    f.file = path;
    f.line = t[i].line;
    f.body_begin = j + 1;
    f.body_end = end;
    f.hot_root = true;
    f.root_why = "autograd backward closure";
    out.push_back(std::move(f));
  }
}

}  // namespace

void pass_hotpath(const AnalysisContext& ctx, std::vector<Finding>& out) {
  // --- build the function set ------------------------------------------------
  std::vector<Func> funcs;
  for (const auto& [path, sf] : ctx.files) {
    extract_functions(path, sf, funcs);
    if (path.rfind("src/autograd/", 0) == 0)
      extract_backward_closures(path, sf, funcs);
  }
  for (Func& f : funcs) {
    if (f.hot_root) continue;
    if (f.name == "step_param") {
      f.hot_root = true;
      f.root_why = "step_param (per-parameter optimizer update)";
    } else if (f.file.rfind("src/tensor/simd/", 0) == 0) {
      f.hot_root = true;
      f.root_why = "SIMD kernel (src/tensor/simd/)";
    }
  }

  // Backward-closure token ranges per file: excluded when scanning an
  // enclosing function, so forward-op bodies are not implicitly hot.
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> closure_ranges;
  for (const Func& f : funcs)
    if (f.root_why == "autograd backward closure")
      closure_ranges[f.file].push_back({f.body_begin, f.body_end});

  std::map<std::string, std::vector<size_t>> by_name;
  for (size_t i = 0; i < funcs.size(); ++i)
    by_name[funcs[i].name].push_back(i);

  auto in_excluded = [&](const Func& f, size_t tok) {
    if (f.root_why == "autograd backward closure") return false;
    auto it = closure_ranges.find(f.file);
    if (it == closure_ranges.end()) return false;
    for (const auto& [b, e] : it->second)
      // Only ranges strictly inside this function are exclusions.
      if (b > f.body_begin && e < f.body_end && tok >= b && tok < e)
        return true;
    return false;
  };

  // --- name-matched call edges ------------------------------------------------
  std::vector<std::vector<size_t>> edges(funcs.size());
  for (size_t fi = 0; fi < funcs.size(); ++fi) {
    const Func& f = funcs[fi];
    const std::vector<Token>& t = ctx.files.at(f.file).tokens;
    for (size_t j = f.body_begin; j < f.body_end; ++j) {
      if (in_excluded(f, j)) continue;
      const Token& tok = t[j];
      if (tok.kind != TokKind::kIdent || tok.text.size() < 3) continue;
      if (!(tok.text[0] >= 'a' && tok.text[0] <= 'z')) continue;
      if (j + 1 >= f.body_end || !srcmodel::is_punct(t[j + 1], "(")) continue;
      // No edge through parallel_for: the lambda body is already scanned
      // inline as part of this function, and traversing into the pool
      // implementation would leak its dispatch machinery into every chain.
      if (tok.text == "parallel_for") continue;
      auto it = by_name.find(tok.text);
      if (it == by_name.end()) continue;
      // Only unambiguous names carry an edge — a name defined more than
      // once (e.g. `run`, defined by both the pool and the Trainer) would
      // fuse unrelated call graphs and mark the whole program hot.
      if (it->second.size() != 1) continue;
      const size_t callee = it->second.front();
      if (callee != fi) edges[fi].push_back(callee);
    }
  }

  // --- BFS from hot roots, keeping a representative chain for the message ----
  std::vector<std::string> chain(funcs.size());
  std::deque<size_t> queue;
  for (size_t i = 0; i < funcs.size(); ++i) {
    if (funcs[i].hot_root) {
      chain[i] = funcs[i].name;
      queue.push_back(i);
    }
  }
  std::set<size_t> visited(queue.begin(), queue.end());
  while (!queue.empty()) {
    const size_t cur = queue.front();
    queue.pop_front();
    for (size_t next : edges[cur]) {
      if (!visited.insert(next).second) continue;
      chain[next] = chain[cur] + " -> " + funcs[next].name;
      queue.push_back(next);
    }
  }

  // --- allocation scan over every hot-reachable body ---------------------------
  for (size_t fi : visited) {
    const Func& f = funcs[fi];
    const SourceFile& sf = ctx.files.at(f.file);
    const std::vector<Token>& t = sf.tokens;
    const std::string why =
        f.hot_root ? "a hot root (" + f.root_why + ")"
                   : "reachable from a hot root via " + chain[fi];
    for (size_t j = f.body_begin; j < f.body_end; ++j) {
      if (in_excluded(f, j)) continue;
      const Token& tok = t[j];
      if (tok.kind != TokKind::kIdent) continue;
      std::string what;
      if (tok.text == "new" &&
          !(j > 0 && srcmodel::is_punct(t[j - 1], "::"))) {
        what = "operator new";
      } else if (alloc_calls().count(tok.text) && j + 1 < f.body_end &&
                 (srcmodel::is_punct(t[j + 1], "(") ||
                  srcmodel::is_punct(t[j + 1], "<"))) {
        what = tok.text + "()";
      } else if (growth_members().count(tok.text) && j > 0 &&
                 (srcmodel::is_punct(t[j - 1], ".") ||
                  srcmodel::is_punct(t[j - 1], "->")) &&
                 j + 1 < f.body_end && srcmodel::is_punct(t[j + 1], "(")) {
        what = "container growth (." + tok.text + ")";
      }
      if (what.empty()) continue;
      if (sf.allowed(tok.line, "hot-path-alloc")) continue;
      out.push_back(
          {"hot-path-alloc", f.file, tok.line, f.name + "|" + tok.text,
           what + " in '" + f.name + "', which is " + why +
               " — steady-state training work should not allocate; "
               "preallocate in begin_step/setup or annotate the intentional "
               "lazy-init with lint:allow(hot-path-alloc)"});
    }
  }
}

}  // namespace analyze
