// The four apollo-analyze passes. Each pass reads the shared
// AnalysisContext (lexed sources + include graph + layering policy) and
// appends findings; it must honor `// lint:allow(rule)` suppressions via
// SourceFile::allowed() before emitting.
//
// Rule ids (stable — they key baselines and suppressions):
//   layering      layer-violation, layer-undeclared, include-cycle,
//                 transitive-include
//   concurrency   parallel-mutex, parallel-io, parallel-getenv,
//                 parallel-nested, parallel-unordered-accum
//   hotpath       hot-path-alloc
//   docdrift      env-undocumented, env-stale-doc
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "analyze/findings.h"
#include "analyze/include_graph.h"
#include "analyze/policy.h"
#include "analyze/source_model.h"

namespace analyze {

struct AnalysisContext {
  std::filesystem::path root;
  // Display path → lexed source, for every scanned C++ file.
  std::map<std::string, srcmodel::SourceFile> files;
  IncludeGraph graph;
  Policy policy;
  // docs/ENVVARS.md (empty when absent) for the doc-drift pass.
  std::string envdoc_path;  // display path, e.g. "docs/ENVVARS.md"
  std::vector<std::string> envdoc_lines;
};

// (1) Module layering: policy DAG conformance, include cycles, and headers
// used while only reachable transitively.
void pass_layering(const AnalysisContext& ctx, std::vector<Finding>& out);

// (2) Concurrency discipline inside parallel_for lambda bodies: no mutexes,
// no I/O, no getenv, no nested parallel_for, no unordered-container
// float accumulation.
void pass_concurrency(const AnalysisContext& ctx, std::vector<Finding>& out);

// (3) Hot-path allocation: new/malloc/container growth reachable from hot
// roots (src/tensor/simd/ kernels, every step_param, autograd backward
// closures) via a name-matched call-graph-lite.
void pass_hotpath(const AnalysisContext& ctx, std::vector<Finding>& out);

// (4) Doc drift: every getenv("APOLLO_*") in src/tools/bench must have a
// row in docs/ENVVARS.md and vice versa.
void pass_docdrift(const AnalysisContext& ctx, std::vector<Finding>& out);

}  // namespace analyze
