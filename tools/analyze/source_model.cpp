#include "analyze/source_model.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace srcmodel {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Records `lint:allow(...)` / `lint:allow-file(...)` directives found in a
// comment. Rules may be comma-separated.
void collect_allows(const std::string& comment, int line, SourceFile& sf) {
  for (const char* kind : {"lint:allow-file(", "lint:allow("}) {
    const bool file_scope =
        std::string_view(kind).find("file") != std::string_view::npos;
    size_t pos = 0;
    while ((pos = comment.find(kind, pos)) != std::string::npos) {
      const size_t open = pos + std::string_view(kind).size();
      const size_t close = comment.find(')', open);
      if (close == std::string::npos) break;
      std::stringstream rules(comment.substr(open, close - open));
      std::string rule;
      while (std::getline(rules, rule, ',')) {
        const size_t b = rule.find_first_not_of(" \t");
        const size_t e = rule.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        rule = rule.substr(b, e - b + 1);
        if (file_scope) {
          sf.file_allows.insert(rule);
        } else {
          // Applies to its own line and the next (trailing or preceding
          // comment style both work).
          sf.line_allows.insert({line, rule});
          sf.line_allows.insert({line + 1, rule});
        }
      }
      pos = close;
    }
    // Guard against `lint:allow-file` also matching the `lint:allow` pass:
    if (!file_scope) break;
  }
}

// Maximal-munch C++ punctuators, longest first so e.g. "<<=" wins over "<<".
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  ".*"};

}  // namespace

void lex(const std::string& text, SourceFile& sf) {
  enum class S { kCode, kLine, kBlock, kStr, kChar, kRaw };
  S st = S::kCode;
  std::string raw_line, code_line, comment, raw_delim, literal;
  int line = 1;
  int literal_line = 1;
  const size_t n = text.size();

  // Lexer state for the code view: tokens are cut from `code_line` as it is
  // produced, but literals are emitted whole (they may span lines).
  auto emit = [&](TokKind kind, std::string tok_text, int tok_line,
                  bool system = false) {
    sf.tokens.push_back({kind, std::move(tok_text), tok_line, system});
  };

  std::string pending;  // current ident/number, not yet emitted
  bool pending_number = false;

  // After `# include`, the next `<...>` sequence is a header-name, which
  // does not lex as ordinary tokens. The `include` identifier may still be
  // sitting in `pending` when the `<` arrives (`#include<x>`).
  auto expecting_header = [&]() {
    const size_t sz = sf.tokens.size();
    if (pending == "include")
      return sz >= 1 && is_punct(sf.tokens[sz - 1], "#") &&
             sf.tokens[sz - 1].line == line;
    return sz >= 2 && is_punct(sf.tokens[sz - 2], "#") &&
           is_ident(sf.tokens[sz - 1], "include") &&
           sf.tokens[sz - 1].line == line;
  };

  // Identifiers and numbers are accumulated in `pending`; punctuation uses
  // maximal munch over the upcoming raw text.
  auto flush_pending = [&] {
    if (pending.empty()) return;
    emit(pending_number ? TokKind::kNumber : TokKind::kIdent, pending, line);
    pending.clear();
    pending_number = false;
  };

  auto flush_line = [&] {
    flush_pending();
    sf.raw.push_back(raw_line);
    sf.code.push_back(code_line);
    raw_line.clear();
    code_line.clear();
  };

  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      if (st == S::kLine) {
        collect_allows(comment, line, sf);
        comment.clear();
        st = S::kCode;
      }
      flush_line();
      ++line;
      continue;
    }
    raw_line.push_back(c);
    switch (st) {
      case S::kCode:
        if (c == '/' && next == '/') {
          flush_pending();
          st = S::kLine;
          code_line.push_back(' ');
        } else if (c == '/' && next == '*') {
          flush_pending();
          st = S::kBlock;
          code_line.push_back(' ');
        } else if (c == '"') {
          // R"delim( ... )delim" raw strings.
          const bool raw_prefix =
              pending == "R" || (pending.size() >= 2 &&
                                 pending[pending.size() - 1] == 'R' &&
                                 !ident_char(pending[pending.size() - 2]));
          if (raw_prefix) pending.clear();  // the R prefix is literal syntax
          flush_pending();
          literal.clear();
          literal_line = line;
          if (raw_prefix) {
            st = S::kRaw;
            raw_delim.clear();
            size_t j = i + 1;
            while (j < n && text[j] != '(') raw_delim.push_back(text[j++]);
            code_line.push_back('"');
          } else {
            st = S::kStr;
            code_line.push_back('"');
          }
        } else if (c == '\'') {
          // Digit separators (1'000) are not char literals.
          if (pending_number && std::isdigit(static_cast<unsigned char>(next))) {
            pending.push_back(c);
            code_line.push_back(c);
          } else {
            flush_pending();
            literal.clear();
            literal_line = line;
            st = S::kChar;
            code_line.push_back('\'');
          }
        } else if (ident_char(c)) {
          if (pending.empty()) pending_number = std::isdigit(
              static_cast<unsigned char>(c)) != 0;
          // An identifier cannot start with a digit; `1e5` stays a number.
          if (pending.empty() && !pending_number && !ident_start(c)) {
            code_line.push_back(c);
            break;
          }
          pending.push_back(c);
          code_line.push_back(c);
        } else if (c == '.' && pending_number) {
          pending.push_back(c);  // 1.5 stays one number token
          code_line.push_back(c);
        } else if ((c == '+' || c == '-') && pending_number &&
                   !pending.empty() &&
                   (pending.back() == 'e' || pending.back() == 'E')) {
          pending.push_back(c);  // 1e-5 exponent sign
          code_line.push_back(c);
        } else if (c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
                   c == '\v') {
          flush_pending();
          code_line.push_back(c == '\t' ? '\t' : ' ');
        } else if (c == '<' && expecting_header()) {
          flush_pending();
          code_line.push_back(c);
          std::string hdr;
          while (i + 1 < n && text[i + 1] != '>' && text[i + 1] != '\n') {
            ++i;
            hdr.push_back(text[i]);
            raw_line.push_back(text[i]);
            code_line.push_back(text[i]);
          }
          if (i + 1 < n && text[i + 1] == '>') {
            ++i;
            raw_line.push_back('>');
            code_line.push_back('>');
          }
          emit(TokKind::kHeaderName, hdr, line, /*system=*/true);
        } else if (c == '\\') {
          flush_pending();  // line continuation / stray backslash
          code_line.push_back(' ');
        } else {
          flush_pending();
          code_line.push_back(c);
          // Maximal-munch punctuator over the raw upcoming text.
          std::string_view best(&text[i], 1);
          for (std::string_view p : kPuncts) {
            if (p.size() > best.size() && i + p.size() <= n &&
                text.compare(i, p.size(), p) == 0) {
              // Never munch into a comment opener: "/=" vs "//".
              if (p[0] == '/' && (next == '/' || next == '*')) continue;
              best = p;
            }
          }
          for (size_t k = 1; k < best.size(); ++k) {
            ++i;
            raw_line.push_back(text[i]);
            code_line.push_back(text[i]);
          }
          emit(TokKind::kPunct, std::string(best), line);
        }
        break;
      case S::kLine:
        comment.push_back(c);
        code_line.push_back(' ');
        break;
      case S::kBlock:
        code_line.push_back(' ');
        if (c == '*' && next == '/') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
          st = S::kCode;
        }
        break;
      case S::kStr:
        code_line.push_back(' ');
        if (c == '\\' && i + 1 < n && next != '\n') {
          literal.push_back(c);
          literal.push_back(next);
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '"') {
          code_line.back() = '"';
          emit(TokKind::kString, literal, literal_line);
          st = S::kCode;
        } else {
          literal.push_back(c);
        }
        break;
      case S::kChar:
        code_line.push_back(' ');
        if (c == '\\' && i + 1 < n && next != '\n') {
          literal.push_back(c);
          literal.push_back(next);
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '\'') {
          code_line.back() = '\'';
          emit(TokKind::kChar, literal, literal_line);
          st = S::kCode;
        } else {
          literal.push_back(c);
        }
        break;
      case S::kRaw: {
        code_line.push_back(' ');
        const std::string closer = ")" + raw_delim + "\"";
        if (c == ')' && text.compare(i, closer.size(), closer) == 0) {
          for (size_t k = 1; k < closer.size() && i + 1 < n; ++k) {
            ++i;
            raw_line.push_back(text[i]);
            code_line.push_back(' ');
          }
          code_line.back() = '"';
          emit(TokKind::kString, literal, literal_line);
          st = S::kCode;
        } else {
          literal.push_back(c);
        }
        break;
      }
    }
  }
  if (st == S::kLine) collect_allows(comment, line, sf);
  flush_line();
}

bool load_file(const std::filesystem::path& file,
               const std::string& display_path, SourceFile& out) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = SourceFile{};
  out.display_path = display_path;
  const std::string ext = file.extension().string();
  out.is_header = ext == ".h" || ext == ".hpp";
  lex(buf.str(), out);
  return true;
}

std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& root, const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const std::string& d : dirs) {
    const fs::path base = root / d;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp" && ext != ".cc" && ext != ".hpp")
        continue;
      bool in_build = false;
      for (const auto& part : fs::relative(entry.path(), root))
        if (part == "build" || part.string().rfind("build-", 0) == 0)
          in_build = true;
      if (in_build) continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

size_t find_token(const std::vector<Token>& toks, TokKind kind,
                  std::string_view text, size_t from) {
  for (size_t i = from; i < toks.size(); ++i)
    if (toks[i].kind == kind && toks[i].text == text) return i;
  return toks.size();
}

bool match_seq(const std::vector<Token>& toks, size_t i,
               std::initializer_list<std::string_view> seq) {
  if (i + seq.size() > toks.size()) return false;
  size_t k = i;
  for (std::string_view s : seq) {
    const Token& t = toks[k++];
    // Only code tokens participate: adjacent string literals must never
    // reassemble into a match.
    if (t.kind != TokKind::kIdent && t.kind != TokKind::kPunct &&
        t.kind != TokKind::kNumber)
      return false;
    if (t.text != s) return false;
  }
  return true;
}

size_t match_forward(const std::vector<Token>& toks, size_t open) {
  if (open >= toks.size() || toks[open].kind != TokKind::kPunct)
    return toks.size();
  const std::string& oc = toks[open].text;
  const char* cc = oc == "(" ? ")" : oc == "{" ? "}" : oc == "[" ? "]" : "";
  if (cc[0] == '\0') return toks.size();
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == oc) ++depth;
    if (toks[i].text == cc && --depth == 0) return i;
  }
  return toks.size();
}

size_t match_angle(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    if (t == "<<") depth += 2;
    if (t == ">") {
      if (--depth == 0) return i;
    }
    if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return i;
    }
    if (t == ";") return toks.size();
  }
  return toks.size();
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

}  // namespace srcmodel
