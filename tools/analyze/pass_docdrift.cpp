// Doc-drift pass: the APOLLO_* environment surface must match its
// documentation exactly, both directions.
//
//   env-undocumented — getenv("APOLLO_X") in src/, tools/, or bench/ with no
//                      row in docs/ENVVARS.md. (tests/ is exempt: test
//                      harness variables like APOLLO_LINT_BIN are plumbing,
//                      not user surface.)
//   env-stale-doc    — a docs/ENVVARS.md row whose variable no longer has a
//                      getenv site anywhere in the tree.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/passes.h"

namespace analyze {

namespace {

using srcmodel::SourceFile;
using srcmodel::TokKind;
using srcmodel::Token;

bool is_env_name(const std::string& s) {
  if (s.rfind("APOLLO_", 0) != 0) return false;
  for (char c : s)
    if (!((c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_'))
      return false;
  return true;
}

// First backticked APOLLO_* name in a markdown table row, or empty.
std::string row_var(const std::string& line) {
  if (line.empty() || line[0] != '|') return std::string();
  size_t tick = line.find('`');
  while (tick != std::string::npos) {
    const size_t close = line.find('`', tick + 1);
    if (close == std::string::npos) return std::string();
    const std::string name = line.substr(tick + 1, close - tick - 1);
    if (is_env_name(name)) return name;
    tick = line.find('`', close + 1);
  }
  return std::string();
}

}  // namespace

void pass_docdrift(const AnalysisContext& ctx, std::vector<Finding>& out) {
  // Documented variables: name → doc line (first row wins).
  std::map<std::string, int> documented;
  for (size_t i = 0; i < ctx.envdoc_lines.size(); ++i) {
    const std::string name = row_var(ctx.envdoc_lines[i]);
    if (!name.empty() && !documented.count(name))
      documented[name] = static_cast<int>(i) + 1;
  }

  // getenv sites. User surface (src/tools/bench) drives env-undocumented;
  // all sites (tests included) count as "still used" for env-stale-doc so a
  // variable exercised only by tests is not declared dead.
  std::set<std::string> used_anywhere;
  for (const auto& [path, sf] : ctx.files) {
    const std::vector<Token>& t = sf.tokens;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (!(t[i].kind == TokKind::kIdent &&
            (t[i].text == "getenv" || t[i].text == "secure_getenv") &&
            srcmodel::is_punct(t[i + 1], "(") &&
            t[i + 2].kind == TokKind::kString))
        continue;
      const std::string name = t[i + 2].text;
      if (!is_env_name(name)) continue;
      used_anywhere.insert(name);
      if (sf.path_starts_with("tests/")) continue;
      if (documented.count(name)) continue;
      if (sf.allowed(t[i].line, "env-undocumented")) continue;
      out.push_back(
          {"env-undocumented", path, t[i].line, name,
           "getenv(\"" + name + "\") has no row in " +
               (ctx.envdoc_path.empty() ? std::string("docs/ENVVARS.md")
                                        : ctx.envdoc_path) +
               "; every APOLLO_* knob must be documented (name, default, "
               "effect) or removed"});
    }
  }

  for (const auto& [name, line] : documented) {
    if (used_anywhere.count(name)) continue;
    out.push_back(
        {"env-stale-doc", ctx.envdoc_path, line, name,
         "documented variable `" + name +
             "` has no getenv site left in the tree; delete the row or "
             "restore the knob"});
  }
}

}  // namespace analyze
