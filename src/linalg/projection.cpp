#include "linalg/projection.h"

#include <cmath>

#include "tensor/check.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace apollo {

// Projector generation is sequential by construction (the Rng stream must
// replay bit-exactly from the stored 8-byte seed); project/project_back
// below inherit multi-threading — and the runtime-dispatched SIMD GEMM
// (tensor/simd/simd.h) — from the matmul kernels.
Matrix gaussian_projection(int64_t r, int64_t m, uint64_t seed) {
  APOLLO_CHECK(r >= 1 && m >= 1);
  Matrix p(r, m);
  Rng rng(seed);
  const float stddev = 1.f / std::sqrt(static_cast<float>(r));
  p.fill_gaussian(rng, 0.f, stddev);
  return p;
}

ProjectionSide natural_side(int64_t rows, int64_t cols) {
  return rows <= cols ? ProjectionSide::kLeft : ProjectionSide::kRight;
}

Matrix project(const Matrix& g, const Matrix& p, ProjectionSide side) {
  if (side == ProjectionSide::kLeft) {
    APOLLO_CHECK(p.cols() == g.rows());
    return matmul(p, g);  // r×n
  }
  APOLLO_CHECK(p.cols() == g.cols());
  return matmul_bt(g, p);  // m×r
}

Matrix project_back(const Matrix& r, const Matrix& p, ProjectionSide side) {
  if (side == ProjectionSide::kLeft) {
    APOLLO_CHECK(r.rows() == p.rows());
    return matmul_at(p, r);  // m×n
  }
  APOLLO_CHECK(r.cols() == p.rows());
  return matmul(r, p);  // m×n
}

int64_t channel_count(int64_t rows, int64_t cols, ProjectionSide side) {
  return side == ProjectionSide::kLeft ? cols : rows;
}

}  // namespace apollo
