// Singular value decomposition via one-sided Jacobi rotations.
//
// GaLore/Fira (and the "APOLLO w. SVD" ablation) need the top-r left or
// right singular vectors of each gradient matrix every T steps. The paper's
// central systems complaint is that this SVD is expensive (O(mn²), ~10 min
// for LLaMA-7B); we reproduce both the functionality (here) and the cost
// asymmetry (bench_fig9_svd_spikes measures this kernel vs. the seeded
// random projection that APOLLO uses instead).
#pragma once

#include "tensor/matrix.h"

namespace apollo {

struct SvdResult {
  Matrix u;                    // m×k, orthonormal columns
  std::vector<float> sigma;    // k singular values, descending
  Matrix v;                    // n×k, orthonormal columns (A = U·diag(σ)·Vᵀ)
};

// Full thin SVD (k = min(m, n)) by one-sided Jacobi. Deterministic.
// `max_sweeps` bounds work; convergence tolerance is relative to the
// largest column norm.
SvdResult svd(const Matrix& a, int max_sweeps = 30, float tol = 1e-7f);

// Top-r left singular vectors, returned as a projection matrix P ∈ R^{r×m}
// with orthonormal rows (rows = uᵢᵀ). This is GaLore's projector for
// matrices with m ≤ n.
Matrix svd_left_projector(const Matrix& a, int64_t r);

// Top-r right singular vectors as P ∈ R^{r×n} (rows = vᵢᵀ); GaLore's
// projector when m > n.
Matrix svd_right_projector(const Matrix& a, int64_t r);

}  // namespace apollo
