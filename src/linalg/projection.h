// Seeded Gaussian random projections (the heart of APOLLO's SVD-free design)
// and helpers shared by all projected optimizers.
//
// A projection is never *stored* by APOLLO — only its 8-byte seed is kept in
// the optimizer state, and the matrix is regenerated on demand. This is why
// the optimizer-state memory in Table 1 carries only the "+2" constant for
// the APOLLO series (seed + previous gradient norm for the norm-growth
// limiter) instead of GaLore's m·r projector term.
#pragma once

#include <cstdint>

#include "tensor/matrix.h"

namespace apollo {

// P ∈ R^{r×m}, entries i.i.d. N(0, 1/r), fully determined by `seed`.
// With this variance, E[‖P·x‖²] = ‖x‖² (Theorem A.1 / JL lemma), so channel
// norms survive projection up to (1 ± ε).
Matrix gaussian_projection(int64_t r, int64_t m, uint64_t seed);

// Which side of G gets compressed. The paper's convention is W ∈ R^{m×n}
// with m ≤ n: the *smaller* dimension is projected down to r and channels
// run along the larger one. Our weights may be stored either way, so the
// projector picks the side at construction from the concrete shape.
enum class ProjectionSide {
  kLeft,   // R = P·G   (compresses rows;   channels = columns)
  kRight,  // R = G·Pᵀ  (compresses cols;   channels = rows)
};

// Pick the side that compresses the smaller dimension of an m×n gradient.
ProjectionSide natural_side(int64_t rows, int64_t cols);

// Apply a projector on the chosen side: kLeft → P(r×rows)·G, kRight →
// G·P(r×cols)ᵀ.
Matrix project(const Matrix& g, const Matrix& p, ProjectionSide side);

// Back-projection used by GaLore-style optimizers to return a low-rank
// update to the full space: kLeft → Pᵀ·R, kRight → R·P.
Matrix project_back(const Matrix& r, const Matrix& p, ProjectionSide side);

// Number of channels (size of the uncompressed dimension) for a given shape
// and side.
int64_t channel_count(int64_t rows, int64_t cols, ProjectionSide side);

}  // namespace apollo
