#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/ops.h"

namespace apollo {

namespace {

// One-sided Jacobi on the columns of `a` (m×n, m ≥ n preferred but not
// required). On exit the columns of `a` are U·diag(σ) and `v` accumulates
// the right rotations.
void jacobi_sweeps(Matrix& a, Matrix& v, int max_sweeps, float tol) {
  const int64_t m = a.rows(), n = a.cols();
  v.reshape_discard(n, n);
  for (int64_t i = 0; i < n; ++i) v.at(i, i) = 1.f;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        // Gram 2×2 block for columns p, q.
        double app = 0, aqq = 0, apq = 0;
        for (int64_t i = 0; i < m; ++i) {
          const double x = a.at(i, p), y = a.at(i, q);
          app += x * x;
          aqq += y * y;
          apq += x * y;
        }
        if (std::fabs(apq) <=
            static_cast<double>(tol) * std::sqrt(app * aqq) + 1e-30)
          continue;
        rotated = true;
        // Jacobi rotation zeroing the off-diagonal of the 2×2 Gram block.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int64_t i = 0; i < m; ++i) {
          const float x = a.at(i, p), y = a.at(i, q);
          a.at(i, p) = static_cast<float>(c * x - s * y);
          a.at(i, q) = static_cast<float>(s * x + c * y);
        }
        for (int64_t i = 0; i < n; ++i) {
          const float x = v.at(i, p), y = v.at(i, q);
          v.at(i, p) = static_cast<float>(c * x - s * y);
          v.at(i, q) = static_cast<float>(s * x + c * y);
        }
      }
    }
    if (!rotated) break;
  }
}

SvdResult svd_tall(const Matrix& a, int max_sweeps, float tol) {
  Matrix work = a;
  Matrix v;
  jacobi_sweeps(work, v, max_sweeps, tol);

  const int64_t m = work.rows(), n = work.cols();
  std::vector<float> sigma(static_cast<size_t>(n));
  auto norms = col_norms(work);
  // Sort singular values descending, permuting U and V columns alike.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int64_t x, int64_t y) { return norms[x] > norms[y]; });

  SvdResult out;
  out.u.reshape_discard(m, n);
  out.v.reshape_discard(n, n);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    const float s = norms[static_cast<size_t>(src)];
    sigma[static_cast<size_t>(j)] = s;
    const float inv = s > 1e-30f ? 1.f / s : 0.f;
    for (int64_t i = 0; i < m; ++i) out.u.at(i, j) = work.at(i, src) * inv;
    for (int64_t i = 0; i < n; ++i) out.v.at(i, j) = v.at(i, src);
  }
  out.sigma = std::move(sigma);
  return out;
}

}  // namespace

SvdResult svd(const Matrix& a, int max_sweeps, float tol) {
  APOLLO_CHECK(!a.empty());
  // The Fig. 9 story in one slice: SVD refreshes are the throughput spikes.
  APOLLO_TRACE_SCOPE("svd", "linalg");
  if (a.rows() >= a.cols()) return svd_tall(a, max_sweeps, tol);
  // A = U Σ Vᵀ  ⇔  Aᵀ = V Σ Uᵀ: run on the transpose and swap factors.
  SvdResult t = svd_tall(a.transposed(), max_sweeps, tol);
  SvdResult out;
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  out.sigma = std::move(t.sigma);
  return out;
}

Matrix svd_left_projector(const Matrix& a, int64_t r) {
  APOLLO_CHECK(r >= 1 && r <= a.rows());
  SvdResult d = svd(a);
  Matrix p(r, a.rows());
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = 0; j < a.rows(); ++j) p.at(i, j) = d.u.at(j, i);
  return p;
}

Matrix svd_right_projector(const Matrix& a, int64_t r) {
  APOLLO_CHECK(r >= 1 && r <= a.cols());
  SvdResult d = svd(a);
  Matrix p(r, a.cols());
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = 0; j < a.cols(); ++j) p.at(i, j) = d.v.at(j, i);
  return p;
}

}  // namespace apollo
