// Named trainable parameters. A Parameter owns its value and gradient
// matrices; the autograd Tape references them as leaves and optimizers
// mutate them in place. Addresses are stable for the lifetime of the model
// (parameters are held by unique_ptr).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace apollo::nn {

struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;  // same shape as value; zeroed by Model::zero_grads()

  // 1-D gains (RMSNorm weights) are too small for low-rank projection;
  // projected optimizers fall back to dense AdamW on them, exactly as
  // GaLore/APOLLO apply low-rank treatment only to 2-D weights.
  bool matrix_shaped = true;

  Parameter(std::string n, int64_t rows, int64_t cols, bool matrix = true)
      : name(std::move(n)), value(rows, cols), grad(rows, cols),
        matrix_shaped(matrix) {}
};

using ParamList = std::vector<Parameter*>;

inline int64_t total_params(const ParamList& ps) {
  int64_t n = 0;
  for (const auto* p : ps) n += p->value.size();
  return n;
}

}  // namespace apollo::nn
