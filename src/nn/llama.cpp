#include "nn/llama.h"
#include "tensor/check.h"
#include "tensor/matrix.h"

#include <cmath>

namespace apollo::nn {

namespace {
int64_t per_layer_params(const LlamaConfig& c) {
  const int64_t h = c.hidden, it = c.intermediate;
  return 2 * h                    // two norms
         + 4 * h * h              // wq wk wv wo
         + 3 * h * it;            // gate, up, down
}
}  // namespace

int64_t LlamaConfig::param_count() const {
  return 2ll * vocab * hidden      // embedding + lm head
         + hidden                  // final norm
         + n_layers * per_layer_params(*this);
}

// The proxy ladder: hidden sizes shrink but relative proportions follow the
// paper's Table 8 (depth grows with size; intermediate ≈ 8/3·hidden).
LlamaConfig llama_60m_proxy() {
  LlamaConfig c;
  c.vocab = 256; c.hidden = 32; c.intermediate = 88;
  c.n_heads = 4; c.n_layers = 2; c.seq_len = 32;
  return c;
}
LlamaConfig llama_130m_proxy() {
  LlamaConfig c;
  c.vocab = 256; c.hidden = 48; c.intermediate = 128;
  c.n_heads = 4; c.n_layers = 3; c.seq_len = 32;
  return c;
}
LlamaConfig llama_350m_proxy() {
  LlamaConfig c;
  c.vocab = 256; c.hidden = 64; c.intermediate = 176;
  c.n_heads = 4; c.n_layers = 4; c.seq_len = 32;
  return c;
}
LlamaConfig llama_1b_proxy() {
  LlamaConfig c;
  c.vocab = 256; c.hidden = 96; c.intermediate = 256;
  c.n_heads = 6; c.n_layers = 5; c.seq_len = 32;
  return c;
}
LlamaConfig llama_7b_proxy() {
  LlamaConfig c;
  c.vocab = 256; c.hidden = 128; c.intermediate = 344;
  c.n_heads = 8; c.n_layers = 6; c.seq_len = 32;
  return c;
}

LlamaModel::LlamaModel(const LlamaConfig& cfg, uint64_t seed) : cfg_(cfg) {
  APOLLO_CHECK(cfg.hidden % cfg.n_heads == 0);
  APOLLO_CHECK((cfg.hidden / cfg.n_heads) % 2 == 0);  // RoPE needs even pairs

  Rng rng(seed);
  const int64_t h = cfg.hidden, v = cfg.vocab, it = cfg.intermediate;

  tok_embed_ = add_param("tok_embed", v, h);
  tok_embed_->value.fill_gaussian(rng, 0.f, cfg.init_std);

  layers_.reserve(static_cast<size_t>(cfg.n_layers));
  for (int l = 0; l < cfg.n_layers; ++l) {
    const std::string pfx = "layer" + std::to_string(l) + ".";
    Layer lay{};
    lay.attn_norm = add_param(pfx + "attn_norm", 1, h, /*matrix=*/false);
    lay.attn_norm->value.fill(1.f);
    lay.wq = add_param(pfx + "wq", h, h);
    lay.wk = add_param(pfx + "wk", h, h);
    lay.wv = add_param(pfx + "wv", h, h);
    lay.wo = add_param(pfx + "wo", h, h);
    lay.mlp_norm = add_param(pfx + "mlp_norm", 1, h, /*matrix=*/false);
    lay.mlp_norm->value.fill(1.f);
    lay.w_gate = add_param(pfx + "w_gate", it, h);
    lay.w_up = add_param(pfx + "w_up", it, h);
    lay.w_down = add_param(pfx + "w_down", h, it);
    // Scaled init: residual-branch outputs get 1/sqrt(2·n_layers) damping
    // (GPT-2 style) for stable early training.
    const float res_std =
        cfg.init_std / std::sqrt(2.f * static_cast<float>(cfg.n_layers));
    for (Parameter* p : {lay.wq, lay.wk, lay.wv, lay.w_gate, lay.w_up})
      p->value.fill_gaussian(rng, 0.f, cfg.init_std);
    for (Parameter* p : {lay.wo, lay.w_down})
      p->value.fill_gaussian(rng, 0.f, res_std);
    layers_.push_back(lay);
  }

  final_norm_ = add_param("final_norm", 1, h, /*matrix=*/false);
  final_norm_->value.fill(1.f);
  lm_head_ = add_param("lm_head", v, h);
  lm_head_->value.fill_gaussian(rng, 0.f, cfg.init_std);
}

Parameter* LlamaModel::add_param(const std::string& name, int64_t rows,
                                 int64_t cols, bool matrix) {
  storage_.push_back(std::make_unique<Parameter>(name, rows, cols, matrix));
  return storage_.back().get();
}

ParamList LlamaModel::parameters() {
  ParamList out;
  out.reserve(storage_.size());
  for (auto& p : storage_) out.push_back(p.get());
  return out;
}

int64_t LlamaModel::param_count() const {
  int64_t n = 0;
  for (const auto& p : storage_) n += p->value.size();
  return n;
}

void LlamaModel::zero_grads() {
  for (auto& p : storage_) p->grad.zero();
}

ag::Var LlamaModel::forward(ag::Tape& tape, const std::vector<int32_t>& ids) {
  APOLLO_CHECK(ids.size() % static_cast<size_t>(cfg_.seq_len) == 0);
  auto leaf = [&](Parameter* p) { return tape.leaf(&p->value, &p->grad); };

  ag::Var x = tape.embedding(leaf(tok_embed_), ids);
  for (const Layer& lay : layers_) {
    // Attention block.
    ag::Var a = tape.rmsnorm(x, leaf(lay.attn_norm));
    ag::Var q = tape.rope(tape.matmul_bt(a, leaf(lay.wq)), cfg_.n_heads,
                          cfg_.seq_len, cfg_.rope_base);
    ag::Var k = tape.rope(tape.matmul_bt(a, leaf(lay.wk)), cfg_.n_heads,
                          cfg_.seq_len, cfg_.rope_base);
    ag::Var v = tape.matmul_bt(a, leaf(lay.wv));
    ag::Var att = tape.causal_attention(q, k, v, cfg_.n_heads, cfg_.seq_len);
    x = tape.add(x, tape.matmul_bt(att, leaf(lay.wo)));

    // SwiGLU MLP block.
    ag::Var m = tape.rmsnorm(x, leaf(lay.mlp_norm));
    ag::Var g = tape.silu(tape.matmul_bt(m, leaf(lay.w_gate)));
    ag::Var u = tape.matmul_bt(m, leaf(lay.w_up));
    x = tape.add(x, tape.matmul_bt(tape.mul(g, u), leaf(lay.w_down)));
  }
  ag::Var xf = tape.rmsnorm(x, leaf(final_norm_));
  return tape.matmul_bt(xf, leaf(lm_head_));
}

ag::Var LlamaModel::loss(ag::Tape& tape, const std::vector<int32_t>& ids,
                         const std::vector<int32_t>& targets) {
  return tape.cross_entropy(forward(tape, ids), targets);
}

std::vector<Matrix> LlamaModel::snapshot() const {
  std::vector<Matrix> out;
  out.reserve(storage_.size());
  for (const auto& p : storage_) out.push_back(p->value);
  return out;
}

void LlamaModel::restore(const std::vector<Matrix>& snap) {
  APOLLO_CHECK(snap.size() == storage_.size());
  for (size_t i = 0; i < snap.size(); ++i) storage_[i]->value = snap[i];
}

}  // namespace apollo::nn
