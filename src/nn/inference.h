// Incremental decoding with per-layer KV caches — the inference-side
// substrate. Where the training stack re-runs a full window per generated
// token (O(T²) per token through the tape), an InferenceSession feeds one
// token at a time, caching each layer's rotary-encoded K and V rows, so a
// decode step is O(context) matvecs with no autograd overhead.
//
// The session is validated against the tape forward: feeding the same
// window token-by-token must reproduce the training-path logits bit-close
// (tests/inference_test.cpp), which pins the two implementations of the
// architecture to each other.
#pragma once

#include <vector>

#include "nn/llama.h"
#include "tensor/matrix.h"

namespace apollo::nn {

class InferenceSession {
 public:
  // The session snapshots nothing: it reads the model's current weights on
  // every step, so it always reflects the latest training state.
  explicit InferenceSession(LlamaModel& model);

  // Feed one token; returns the logits row (vocab) for predicting the
  // *next* token. Within the model's trained window (≤ seq_len tokens) this
  // exactly matches the training-path forward. Past the window, attention
  // truncates to the last seq_len cache entries and RoPE positions wrap to
  // stay inside the trained range — a sliding-window approximation.
  const std::vector<float>& step(int32_t token);

  // Convenience: feed a whole prompt, return logits after its last token.
  const std::vector<float>& prompt(const std::vector<int32_t>& tokens);

  // Restart from position 0 with empty caches.
  void reset();

  int position() const { return position_; }

 private:
  struct LayerCache {
    // Rows of rotary-encoded K and raw V, one per cached position.
    std::vector<std::vector<float>> k;
    std::vector<std::vector<float>> v;
  };

  void rmsnorm_vec(const float* x, const Matrix& gain,
                   std::vector<float>& out) const;
  // y = W·x for W stored (out, in) — the matvec twin of tape matmul_bt.
  static void matvec(const Matrix& w, const std::vector<float>& x,
                     std::vector<float>& y);
  void rope_vec(std::vector<float>& x, int pos) const;

  LlamaModel& model_;
  std::vector<LayerCache> caches_;
  int position_ = 0;
  std::vector<float> logits_;
  // Scratch buffers reused across steps.
  std::vector<float> h_, norm_, q_, k_, v_, att_out_, gate_, up_, mlp_;
};

}  // namespace apollo::nn
