#include "nn/inference.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"
#include "tensor/matrix.h"
#include "tensor/simd/simd.h"

namespace apollo::nn {

InferenceSession::InferenceSession(LlamaModel& model) : model_(model) {
  const auto& cfg = model.config();
  caches_.resize(static_cast<size_t>(cfg.n_layers));
  logits_.resize(static_cast<size_t>(cfg.vocab));
  const size_t h = static_cast<size_t>(cfg.hidden);
  h_.resize(h);
  norm_.resize(h);
  q_.resize(h);
  k_.resize(h);
  v_.resize(h);
  att_out_.resize(h);
  gate_.resize(static_cast<size_t>(cfg.intermediate));
  up_.resize(static_cast<size_t>(cfg.intermediate));
  mlp_.resize(h);
}

void InferenceSession::reset() {
  for (auto& c : caches_) {
    c.k.clear();
    c.v.clear();
  }
  position_ = 0;
}

void InferenceSession::rmsnorm_vec(const float* x, const Matrix& gain,
                                   std::vector<float>& out) const {
  simd::table().rmsnorm_row(out.data(), x, gain.row(0), gain.cols(), 1e-6f);
}

// Decode is one token at a time, so the projections are matrix-vector: a
// row-dot per output through the dispatched dot kernel.
void InferenceSession::matvec(const Matrix& w, const std::vector<float>& x,
                              std::vector<float>& y) {
  const int64_t out = w.rows(), in = w.cols();
  const simd::KernelTable& kt = simd::table();
  y.resize(static_cast<size_t>(out));
  for (int64_t o = 0; o < out; ++o)
    y[static_cast<size_t>(o)] = kt.dot(w.row(o), x.data(), in);
}

void InferenceSession::rope_vec(std::vector<float>& x, int pos) const {
  const auto& cfg = model_.config();
  const int64_t head_dim = cfg.hidden / cfg.n_heads;
  const int64_t half = head_dim / 2;
  for (int hd = 0; hd < cfg.n_heads; ++hd) {
    float* hp = x.data() + static_cast<int64_t>(hd) * head_dim;
    for (int64_t i = 0; i < half; ++i) {
      const double freq = std::pow(
          static_cast<double>(cfg.rope_base),
          -2.0 * static_cast<double>(i) / static_cast<double>(head_dim));
      const double angle = static_cast<double>(pos) * freq;
      const float c = static_cast<float>(std::cos(angle));
      const float s = static_cast<float>(std::sin(angle));
      const float x0 = hp[2 * i], x1 = hp[2 * i + 1];
      hp[2 * i] = x0 * c - x1 * s;
      hp[2 * i + 1] = x0 * s + x1 * c;
    }
  }
}

const std::vector<float>& InferenceSession::step(int32_t token) {
  const auto& cfg = model_.config();
  APOLLO_CHECK(token >= 0 && token < cfg.vocab);
  const int64_t hidden = cfg.hidden;
  const int64_t head_dim = hidden / cfg.n_heads;
  const float scale = 1.f / std::sqrt(static_cast<float>(head_dim));

  // Embedding lookup.
  const float* emb = model_.tok_embed().value.row(token);
  for (int64_t i = 0; i < hidden; ++i) h_[static_cast<size_t>(i)] = emb[i];

  // The RoPE position matches the tape path, whose positions restart every
  // seq_len rows; for pure decode we keep monotone positions and instead
  // bound the attention window to the last seq_len cache entries.
  const int pos = position_ % cfg.seq_len;

  for (size_t l = 0; l < caches_.size(); ++l) {
    const auto& lay = model_.layers()[l];
    LayerCache& cache = caches_[l];

    // Attention block.
    rmsnorm_vec(h_.data(), lay.attn_norm->value, norm_);
    matvec(lay.wq->value, norm_, q_);
    matvec(lay.wk->value, norm_, k_);
    matvec(lay.wv->value, norm_, v_);
    rope_vec(q_, pos);
    rope_vec(k_, pos);
    cache.k.push_back(k_);
    cache.v.push_back(v_);
    // Slide the window: keep at most seq_len cached positions.
    if (static_cast<int>(cache.k.size()) > cfg.seq_len) {
      cache.k.erase(cache.k.begin());
      cache.v.erase(cache.v.begin());
    }

    const int ctx = static_cast<int>(cache.k.size());
    std::fill(att_out_.begin(), att_out_.end(), 0.f);
    std::vector<float> scores(static_cast<size_t>(ctx));
    const simd::KernelTable& skt = simd::table();
    for (int hd = 0; hd < cfg.n_heads; ++hd) {
      const int64_t c0 = static_cast<int64_t>(hd) * head_dim;
      for (int t = 0; t < ctx; ++t)
        scores[static_cast<size_t>(t)] =
            skt.dot(q_.data() + c0,
                    cache.k[static_cast<size_t>(t)].data() + c0, head_dim) *
            scale;
      skt.softmax(scores.data(), scores.data(), ctx);
      for (int t = 0; t < ctx; ++t)
        skt.axpy(att_out_.data() + c0,
                 cache.v[static_cast<size_t>(t)].data() + c0,
                 scores[static_cast<size_t>(t)], head_dim);
    }
    matvec(lay.wo->value, att_out_, mlp_);  // reuse mlp_ as scratch
    for (int64_t i = 0; i < hidden; ++i)
      h_[static_cast<size_t>(i)] += mlp_[static_cast<size_t>(i)];

    // SwiGLU MLP block.
    rmsnorm_vec(h_.data(), lay.mlp_norm->value, norm_);
    matvec(lay.w_gate->value, norm_, gate_);
    matvec(lay.w_up->value, norm_, up_);
    {
      // SiLU via the dispatched kernel, then the SwiGLU gate product.
      // norm_ is dead until the next rmsnorm_vec, so it holds σ.
      std::vector<float>& sig = norm_;
      sig.resize(gate_.size());
      simd::table().silu(gate_.data(), sig.data(), gate_.data(),
                         static_cast<int64_t>(gate_.size()));
      simd::table().hadamard(gate_.data(), up_.data(),
                             static_cast<int64_t>(gate_.size()));
    }
    matvec(lay.w_down->value, gate_, mlp_);
    for (int64_t i = 0; i < hidden; ++i)
      h_[static_cast<size_t>(i)] += mlp_[static_cast<size_t>(i)];
  }

  rmsnorm_vec(h_.data(), model_.final_norm().value, norm_);
  matvec(model_.lm_head().value, norm_, logits_);
  ++position_;
  return logits_;
}

const std::vector<float>& InferenceSession::prompt(
    const std::vector<int32_t>& tokens) {
  APOLLO_CHECK(!tokens.empty());
  for (size_t i = 0; i + 1 < tokens.size(); ++i) step(tokens[i]);
  return step(tokens.back());
}

}  // namespace apollo::nn
