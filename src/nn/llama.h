// LLaMA-family decoder-only transformer: RMSNorm (pre-norm), rotary position
// embeddings, multi-head causal attention, SwiGLU MLP, no biases — the same
// architecture family the paper pre-trains at 60M…7B scale. Model sizes here
// are scaled down (see DESIGN.md §2) but the per-weight shapes keep the
// paper's m×n matrix structure that all optimizers operate on.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/tape.h"
#include "nn/parameter.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace apollo::nn {

struct LlamaConfig {
  int vocab = 256;
  int hidden = 64;
  int intermediate = 176;  // ~2.75× hidden, LLaMA's SwiGLU sizing
  int n_heads = 4;
  int n_layers = 2;
  int seq_len = 32;
  float rope_base = 10000.f;
  float init_std = 0.02f;

  int64_t param_count() const;
};

// Proxy configurations standing in for the paper's model ladder. Hidden
// sizes shrink ~32× but layer-count ratios and SwiGLU sizing follow Table 8.
LlamaConfig llama_60m_proxy();
LlamaConfig llama_130m_proxy();
LlamaConfig llama_350m_proxy();
LlamaConfig llama_1b_proxy();
LlamaConfig llama_7b_proxy();

class LlamaModel {
 public:
  LlamaModel(const LlamaConfig& cfg, uint64_t seed);

  const LlamaConfig& config() const { return cfg_; }

  // All trainable parameters (stable pointers).
  ParamList parameters();
  int64_t param_count() const;

  void zero_grads();

  // Builds the forward graph on `tape` for a flattened (batch·seq_len) token
  // stream and returns the logits var (T×vocab).
  ag::Var forward(ag::Tape& tape, const std::vector<int32_t>& ids);

  // forward + mean cross-entropy against `targets` (−1 entries ignored).
  ag::Var loss(ag::Tape& tape, const std::vector<int32_t>& ids,
               const std::vector<int32_t>& targets);

  // Copies of weights for checkpoint/restore in experiments.
  std::vector<Matrix> snapshot() const;
  void restore(const std::vector<Matrix>& snap);

  // Read-only structural access for the inference path (nn/inference.h).
  struct Layer {
    Parameter* attn_norm;
    Parameter* wq;
    Parameter* wk;
    Parameter* wv;
    Parameter* wo;
    Parameter* mlp_norm;
    Parameter* w_gate;
    Parameter* w_up;
    Parameter* w_down;
  };
  const std::vector<Layer>& layers() const { return layers_; }
  const Parameter& tok_embed() const { return *tok_embed_; }
  const Parameter& final_norm() const { return *final_norm_; }
  const Parameter& lm_head() const { return *lm_head_; }

 private:

  Parameter* add_param(const std::string& name, int64_t rows, int64_t cols,
                       bool matrix = true);

  LlamaConfig cfg_;
  std::vector<std::unique_ptr<Parameter>> storage_;
  Parameter* tok_embed_ = nullptr;  // vocab × hidden
  std::vector<Layer> layers_;
  Parameter* final_norm_ = nullptr;
  Parameter* lm_head_ = nullptr;  // vocab × hidden
};

}  // namespace apollo::nn
