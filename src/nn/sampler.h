// Autoregressive sampling from a trained LlamaModel — greedy or
// temperature/top-k sampling over a sliding context window. Used by the
// apollo-eval tool to show qualitative output of byte-level models and by
// tests to check that a trained model emits higher-likelihood continuations
// than an untrained one.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/llama.h"

namespace apollo::nn {

struct SamplerConfig {
  float temperature = 1.f;  // 0 ⇒ greedy argmax
  int top_k = 0;            // 0 ⇒ full distribution
  float top_p = 1.f;        // nucleus sampling: keep the smallest set of
                            // tokens with cumulative probability ≥ top_p
  uint64_t seed = 1234;
};

// Continues `prompt` by `n_tokens`. The model sees a sliding window of its
// configured seq_len (prompts shorter than the window are left-padded with
// token 0, whose positions are ignored by causality for later positions).
// Returns only the newly generated tokens.
std::vector<int32_t> generate(LlamaModel& model,
                              const std::vector<int32_t>& prompt,
                              int n_tokens, const SamplerConfig& cfg = {});

// Mean log-likelihood (nats/token) the model assigns to `tokens` under
// teacher forcing — the sampler-side twin of validation_loss.
double sequence_log_likelihood(LlamaModel& model,
                               const std::vector<int32_t>& tokens);

}  // namespace apollo::nn
