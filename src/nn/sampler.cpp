#include "nn/sampler.h"

#include <algorithm>
#include <cmath>

#include "autograd/tape.h"
#include "nn/inference.h"
#include "tensor/check.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace apollo::nn {

namespace {

int32_t pick(const std::vector<float>& logits, const SamplerConfig& cfg,
             Rng& rng) {
  const int64_t v = static_cast<int64_t>(logits.size());
  if (cfg.temperature <= 0.f) {
    return static_cast<int32_t>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  }
  // Optionally restrict to the top-k logits.
  std::vector<int32_t> candidates(static_cast<size_t>(v));
  for (int64_t i = 0; i < v; ++i)
    candidates[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  if (cfg.top_k > 0 && cfg.top_k < v) {
    std::partial_sort(candidates.begin(), candidates.begin() + cfg.top_k,
                      candidates.end(), [&](int32_t a, int32_t b) {
                        return logits[static_cast<size_t>(a)] >
                               logits[static_cast<size_t>(b)];
                      });
    candidates.resize(static_cast<size_t>(cfg.top_k));
  }
  // Nucleus (top-p) filter: keep the smallest prefix of the sorted
  // distribution whose cumulative (temperature-scaled) mass reaches top_p.
  if (cfg.top_p < 1.f && candidates.size() > 1) {
    std::sort(candidates.begin(), candidates.end(),
              [&](int32_t a, int32_t b) {
                return logits[static_cast<size_t>(a)] >
                       logits[static_cast<size_t>(b)];
              });
    float mx2 = logits[static_cast<size_t>(candidates[0])];
    double total = 0;
    std::vector<double> mass(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      mass[i] = std::exp(
          (logits[static_cast<size_t>(candidates[i])] - mx2) /
          cfg.temperature);
      total += mass[i];
    }
    double acc = 0;
    size_t keep = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      acc += mass[i] / total;
      if (acc >= cfg.top_p) {
        keep = i + 1;
        break;
      }
    }
    candidates.resize(keep);
  }
  // Softmax over candidates at the given temperature.
  float mx = -1e30f;
  for (int32_t c : candidates)
    mx = std::max(mx, logits[static_cast<size_t>(c)]);
  double denom = 0;
  std::vector<double> probs(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    probs[i] = std::exp((logits[static_cast<size_t>(candidates[i])] - mx) /
                        cfg.temperature);
    denom += probs[i];
  }
  double u = rng.next_double() * denom;
  for (size_t i = 0; i < candidates.size(); ++i) {
    u -= probs[i];
    if (u <= 0) return candidates[i];
  }
  return candidates.back();
}

}  // namespace

std::vector<int32_t> generate(LlamaModel& model,
                              const std::vector<int32_t>& prompt,
                              int n_tokens, const SamplerConfig& cfg) {
  Rng rng(cfg.seed);
  // Incremental decode through the KV-cached inference path: O(context)
  // per token instead of a full-window forward.
  InferenceSession session(model);
  std::vector<float> logits;
  if (prompt.empty()) {
    logits = session.step(0);  // BOS-like: condition on token 0
  } else {
    logits = session.prompt(prompt);
  }

  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(n_tokens));
  for (int t = 0; t < n_tokens; ++t) {
    const int32_t tok = pick(logits, cfg, rng);
    out.push_back(tok);
    if (t + 1 < n_tokens) logits = session.step(tok);
  }
  return out;
}

double sequence_log_likelihood(LlamaModel& model,
                               const std::vector<int32_t>& tokens) {
  const int seq = model.config().seq_len;
  APOLLO_CHECK(static_cast<int>(tokens.size()) >= 2);
  double total = 0;
  int64_t count = 0;
  // Slide non-overlapping windows; score within-window transitions.
  for (size_t start = 0; start + 2 <= tokens.size();
       start += static_cast<size_t>(seq)) {
    const size_t len = std::min<size_t>(static_cast<size_t>(seq),
                                        tokens.size() - start);
    if (len < 2) break;
    std::vector<int32_t> window(static_cast<size_t>(seq), 0);
    for (size_t i = 0; i < len; ++i) window[i] = tokens[start + i];
    ag::Tape tape;
    ag::Var logits = model.forward(tape, window);
    const Matrix& lm = tape.value(logits);
    for (size_t i = 0; i + 1 < len; ++i) {
      const float* row = lm.row(static_cast<int64_t>(i));
      float mx = row[0];
      for (int64_t v = 1; v < lm.cols(); ++v) mx = std::max(mx, row[v]);
      double denom = 0;
      for (int64_t v = 0; v < lm.cols(); ++v)
        denom += std::exp(static_cast<double>(row[v]) - mx);
      total += static_cast<double>(row[tokens[start + i + 1]]) - mx -
               std::log(denom);
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace apollo::nn
