// Tape-based reverse-mode automatic differentiation over Matrix.
//
// A Tape is rebuilt every training step: parameters enter as *leaf* vars that
// reference external value/grad storage (owned by the nn::Model), ops append
// nodes that own their forward values and a backward closure, and
// backward(loss) runs the closures in reverse topological (= insertion)
// order. The op set is exactly what a LLaMA-style decoder needs; every op's
// backward is validated against central finite differences in
// tests/autograd_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/matrix.h"

namespace apollo::ag {

// Opaque handle to a tape node.
struct Var {
  int32_t id = -1;
  bool valid() const { return id >= 0; }
};

class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- graph construction -------------------------------------------------

  // Trainable leaf: `value` is read during forward, gradients are
  // *accumulated* into `grad`. The caller either pre-sizes and zeroes
  // `grad` (legacy path) or leaves it empty — an empty grad is sized and
  // zero-filled on first touch during backward (streaming path), so
  // parameter-gradient memory is only allocated while a gradient is live.
  Var leaf(const Matrix* value, Matrix* grad);

  // Non-trainable input (owned copy, no gradient).
  Var constant(Matrix value);

  // C = A·B
  Var matmul(Var a, Var b);
  // C = A·Bᵀ — the Linear-layer product for weights stored (out, in).
  Var matmul_bt(Var a, Var b);
  // C = A + B (same shape)
  Var add(Var a, Var b);
  // C = A ⊙ B (same shape)
  Var mul(Var a, Var b);
  // C = s·A
  Var scale(Var a, float s);
  // SiLU activation x·σ(x) (LLaMA MLP nonlinearity).
  Var silu(Var a);
  // Row-wise RMSNorm with learned gain: y_i = x_i / rms(x_i) ⊙ w, w is 1×n.
  Var rmsnorm(Var x, Var weight, float eps = 1e-6f);
  // Gather rows of `table` (vocab×dim) by token id → (T×dim).
  Var embedding(Var table, std::vector<int32_t> ids);
  // Rotary position embedding applied per head; positions restart every
  // `seq_len` rows (inputs are (batch·seq_len)×dim).
  Var rope(Var x, int n_heads, int seq_len, float base = 10000.f);
  // Causal multi-head self-attention over flattened (batch·seq_len)×dim
  // Q, K, V. Softmax probabilities are saved for backward.
  Var causal_attention(Var q, Var k, Var v, int n_heads, int seq_len);
  // Mean token cross-entropy of logits (T×V) against targets (−1 = ignore).
  // Returns a 1×1 var.
  Var cross_entropy(Var logits, std::vector<int32_t> targets);
  // Scalar ⟨a, w⟩ with a fixed weight matrix — the reduce-to-scalar used by
  // gradient-checking tests and diagnostic probes.
  Var dot(Var a, Matrix weights);

  // --- execution -----------------------------------------------------------

  // Seed d(loss) = `seed` and run all backward closures. `loss` must be
  // 1×1. A seed of 1/k implements mean-reduction over k gradient-
  // accumulation micro-batches.
  void backward(Var loss, float seed = 1.f);

  const Matrix& value(Var v) const;
  // Gradient of a node (lazily allocated, zero-initialized). For leaves this
  // is the external grad matrix.
  Matrix& grad(Var v);
  // Inspection-only gradient access: nullptr when nothing has been
  // accumulated for `v`. Unlike grad(), never allocates — probing a dead
  // branch does not inflate activation memory.
  const Matrix* grad_if_ready(Var v) const;
  bool requires_grad(Var v) const;

  size_t node_count() const { return nodes_.size(); }
  // Total bytes held by forward values + saved attention probabilities —
  // feeds the activation-memory sanity checks. Under gradient release this
  // is the *current* footprint (it shrinks during backward); use
  // peak_activation_bytes() for the high-water mark.
  int64_t activation_bytes() const;

  // --- streaming / fused-update support ------------------------------------

  // Gradient-release mode: after backward() is done with a node — its
  // closure has run, or it was skipped — the node's owned forward value,
  // interior gradient, and saved tensors are freed immediately. Safe
  // because a closure only ever reads the values/gradients of nodes with
  // ids it can still reach: its own (processed right before the release)
  // and its inputs' (strictly lower ids, processed later).
  void set_gradient_release(bool on) { gradient_release_ = on; }

  // Callback fired during backward() at the point where a leaf's external
  // gradient is final: every consumer of the leaf has a higher id than the
  // leaf itself, so when the reverse sweep reaches the leaf no remaining
  // closure can read its value or gradient — the caller may consume the
  // gradient, update the value in place, and free the gradient without
  // perturbing the rest of the pass. Untouched (dead) leaves do not fire.
  void set_leaf_callback(std::function<void(const Matrix*, Matrix*)> cb) {
    leaf_cb_ = std::move(cb);
  }

  // Frees a leaf's external gradient (typically from inside the leaf
  // callback, after the optimizer consumed it) and keeps the gradient-byte
  // accounting consistent.
  void release_leaf_grad(Matrix* grad);

  // High-water marks over this tape's lifetime (bytes):
  //   peak_grad_bytes        leaf (parameter) gradients
  //   peak_activation_bytes  owned forward values + saved tensors
  //   peak_total_bytes       both of the above + interior gradients
  int64_t peak_grad_bytes() const { return peak_grad_bytes_; }
  int64_t peak_activation_bytes() const { return peak_act_bytes_; }
  int64_t peak_total_bytes() const { return peak_total_bytes_; }

 private:
  struct Node {
    Matrix value;                   // owned forward value (unused for leaves)
    const Matrix* ext_value = nullptr;
    Matrix* ext_grad = nullptr;     // leaf gradient sink
    Matrix grad;                    // interior gradient (lazy)
    bool grad_ready = false;        // interior grad allocated+zeroed?
    bool requires_grad = false;
    const char* op = "leaf";        // op name, for diagnostics
    int64_t extra_bytes = 0;        // saved tensors beyond `value`
    std::function<void(Tape&)> backward;
  };

  Var push(Node n);
  void bump_peaks();
  void release_node(Node& n);
  Node& node(Var v) {
    APOLLO_DCHECK(v.valid() && v.id < static_cast<int32_t>(nodes_.size()));
    return nodes_[static_cast<size_t>(v.id)];
  }
  const Node& node(Var v) const {
    APOLLO_DCHECK(v.valid() && v.id < static_cast<int32_t>(nodes_.size()));
    return nodes_[static_cast<size_t>(v.id)];
  }

  std::vector<Node> nodes_;

  bool gradient_release_ = false;
  std::function<void(const Matrix*, Matrix*)> leaf_cb_;
  // Lowest leaf id per external grad sink — the point in the reverse sweep
  // where that gradient is final (a parameter may be registered as a leaf
  // more than once). Built incrementally by leaf().
  std::unordered_map<const Matrix*, int32_t> first_leaf_of_;
  // Live byte counters and their high-water marks (see peak_* accessors).
  int64_t live_act_bytes_ = 0;
  int64_t live_leaf_grad_bytes_ = 0;
  int64_t live_interior_grad_bytes_ = 0;
  int64_t peak_act_bytes_ = 0;
  int64_t peak_grad_bytes_ = 0;
  int64_t peak_total_bytes_ = 0;
};

}  // namespace apollo::ag
