// Neural-network ops: SiLU, RMSNorm, embedding gather, cross-entropy.
//
// Forward passes route their dense row loops through the dispatched SIMD
// kernels (tensor/simd/simd.h) under the deterministic pool: rows are
// independent, so the partition never changes the bits. Backward loops stay
// scalar — they are gather/accumulate-bound, not vector-bound.
#include <algorithm>
#include <cmath>

#include "autograd/tape.h"
#include "core/threadpool.h"
#include "tensor/check.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/simd/simd.h"

namespace apollo::ag {

Var Tape::silu(Var a) {
  const Matrix& x = value(a);
  Node n;
  n.op = "silu";
  n.value = Matrix(x.rows(), x.cols());
  // Save σ(x) for backward: d/dx [x·σ(x)] = σ(x)·(1 + x·(1 − σ(x))).
  auto sig = std::make_shared<Matrix>(x.rows(), x.cols());
  {
    const simd::KernelTable& kt = simd::table();
    float* yd = n.value.data();
    float* sd = sig->data();
    const float* xd = x.data();
    core::parallel_for(
        x.size(),
        [&](int64_t i0, int64_t i1) {
          kt.silu(yd + i0, sd + i0, xd + i0, i1 - i0);
        },
        /*grain=*/1 << 12);
  }
  n.extra_bytes = sig->size() * static_cast<int64_t>(sizeof(float));
  n.requires_grad = requires_grad(a);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (n.requires_grad) {
    n.backward = [a, out, sig](Tape& t) {
      const Matrix& dy = t.grad(out);
      const Matrix& x = t.value(a);
      Matrix& dx = t.grad(a);
      for (int64_t i = 0; i < x.size(); ++i) {
        const float s = (*sig)[i];
        dx[i] += dy[i] * s * (1.f + x[i] * (1.f - s));
      }
    };
  }
  return push(std::move(n));
}

Var Tape::rmsnorm(Var xv, Var wv, float eps) {
  const Matrix& x = value(xv);
  const Matrix& w = value(wv);
  APOLLO_CHECK(w.rows() == 1 && w.cols() == x.cols());
  const int64_t rows = x.rows(), n = x.cols();

  Node nd;
  nd.op = "rmsnorm";
  nd.value = Matrix(rows, n);
  auto inv_rms = std::make_shared<std::vector<float>>(
      static_cast<size_t>(rows));
  {
    const simd::KernelTable& kt = simd::table();
    core::parallel_for(
        rows,
        [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r)
            (*inv_rms)[static_cast<size_t>(r)] =
                kt.rmsnorm_row(nd.value.row(r), x.row(r), w.row(0), n, eps);
        },
        /*grain=*/std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, n)));
  }
  nd.extra_bytes = rows * static_cast<int64_t>(sizeof(float));
  nd.requires_grad = requires_grad(xv) || requires_grad(wv);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (nd.requires_grad) {
    nd.backward = [xv, wv, out, inv_rms, eps](Tape& t) {
      (void)eps;
      const Matrix& dy = t.grad(out);
      const Matrix& x = t.value(xv);
      const Matrix& w = t.value(wv);
      const int64_t rows = x.rows(), n = x.cols();
      const bool need_dx = t.requires_grad(xv);
      const bool need_dw = t.requires_grad(wv);
      Matrix* dx = need_dx ? &t.grad(xv) : nullptr;
      Matrix* dw = need_dw ? &t.grad(wv) : nullptr;
      for (int64_t r = 0; r < rows; ++r) {
        const float ir = (*inv_rms)[static_cast<size_t>(r)];
        const float* xr = x.row(r);
        const float* dyr = dy.row(r);
        if (need_dw) {
          float* dwp = dw->row(0);
          for (int64_t c = 0; c < n; ++c) dwp[c] += dyr[c] * xr[c] * ir;
        }
        if (need_dx) {
          // y = x̂ ⊙ w with x̂ = x·ir, ir = (mean(x²)+eps)^{-1/2}.
          // dx = ir·(w⊙dy) − x·ir³·(Σ_c w_c dy_c x_c)/n
          double dot = 0;
          for (int64_t c = 0; c < n; ++c)
            dot += static_cast<double>(w[c]) * dyr[c] * xr[c];
          const float coef =
              static_cast<float>(dot) * ir * ir * ir / static_cast<float>(n);
          float* dxr = dx->row(r);
          for (int64_t c = 0; c < n; ++c)
            dxr[c] += w[c] * dyr[c] * ir - xr[c] * coef;
        }
      }
    };
  }
  return push(std::move(nd));
}

Var Tape::embedding(Var table, std::vector<int32_t> ids) {
  const Matrix& tab = value(table);
  const int64_t T = static_cast<int64_t>(ids.size()), d = tab.cols();
  Node n;
  n.op = "embedding";
  n.value = Matrix(T, d);
  for (int64_t t = 0; t < T; ++t) {
    const int32_t id = ids[static_cast<size_t>(t)];
    APOLLO_CHECK(id >= 0 && id < tab.rows());
    const float* src = tab.row(id);
    float* dst = n.value.row(t);
    for (int64_t c = 0; c < d; ++c) dst[c] = src[c];
  }
  n.requires_grad = requires_grad(table);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (n.requires_grad) {
    auto ids_sp = std::make_shared<std::vector<int32_t>>(std::move(ids));
    n.backward = [table, out, ids_sp](Tape& t) {
      const Matrix& dy = t.grad(out);
      Matrix& dtab = t.grad(table);
      const int64_t d = dtab.cols();
      for (int64_t r = 0; r < dy.rows(); ++r) {
        float* dst = dtab.row((*ids_sp)[static_cast<size_t>(r)]);
        const float* src = dy.row(r);
        for (int64_t c = 0; c < d; ++c) dst[c] += src[c];
      }
    };
  }
  return push(std::move(n));
}

Var Tape::cross_entropy(Var logits, std::vector<int32_t> targets) {
  const Matrix& z = value(logits);
  APOLLO_CHECK(static_cast<int64_t>(targets.size()) == z.rows());
  const int64_t T = z.rows(), V = z.cols();

  Node n;
  n.op = "cross_entropy";
  n.value = Matrix(1, 1);
  // Save softmax probabilities for backward.
  auto probs = std::make_shared<Matrix>(T, V);
  {
    // Softmax rows are independent → parallel; the loss accumulation below
    // stays sequential so its order never depends on the partition.
    const simd::KernelTable& kt = simd::table();
    core::parallel_for(
        T,
        [&](int64_t t0, int64_t t1) {
          for (int64_t t = t0; t < t1; ++t)
            kt.softmax(probs->row(t), z.row(t), V);
        },
        /*grain=*/std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, V)));
  }
  double loss = 0;
  int64_t count = 0;
  for (int64_t t = 0; t < T; ++t) {
    const float* pr = probs->row(t);
    const int32_t tgt = targets[static_cast<size_t>(t)];
    if (tgt < 0) continue;
    APOLLO_CHECK(tgt < V);
    loss += -std::log(std::max(1e-30, static_cast<double>(pr[tgt])));
    ++count;
  }
  APOLLO_CHECK_MSG(count > 0, "cross_entropy: all targets ignored");
  n.value[0] = static_cast<float>(loss / static_cast<double>(count));
  n.extra_bytes = probs->size() * static_cast<int64_t>(sizeof(float));
  n.requires_grad = requires_grad(logits);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (n.requires_grad) {
    auto tgt_sp = std::make_shared<std::vector<int32_t>>(std::move(targets));
    n.backward = [logits, out, probs, tgt_sp, count](Tape& t) {
      const float dloss = t.grad(out)[0];
      Matrix& dz = t.grad(logits);
      const int64_t T = dz.rows(), V = dz.cols();
      const float scale = dloss / static_cast<float>(count);
      for (int64_t r = 0; r < T; ++r) {
        const int32_t tgt = (*tgt_sp)[static_cast<size_t>(r)];
        if (tgt < 0) continue;
        const float* pr = probs->row(r);
        float* dzr = dz.row(r);
        for (int64_t v = 0; v < V; ++v) dzr[v] += scale * pr[v];
        dzr[tgt] -= scale;
      }
    };
  }
  return push(std::move(n));
}

}  // namespace apollo::ag
