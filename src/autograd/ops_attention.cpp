// Rotary position embedding and fused causal multi-head self-attention.
//
// Activations are flattened (batch·seq_len)×dim; the batch structure is
// recovered from seq_len. Attention saves the per-(sequence, head) softmax
// probability matrices for backward, which is the dominant activation cost —
// mirrored by the activation term of the sysmodel memory accounting.
#include <cmath>

#include "autograd/tape.h"
#include "tensor/check.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/simd/simd.h"

namespace apollo::ag {

namespace {

// Precomputed rotation table: cos/sin for every (position, pair) of one
// head (all heads share it).
struct RopeTable {
  int64_t half;  // head_dim / 2
  std::vector<float> cosv, sinv;  // seq_len × half
};

RopeTable make_rope_table(int seq_len, int64_t head_dim, float base) {
  RopeTable t;
  t.half = head_dim / 2;
  t.cosv.resize(static_cast<size_t>(seq_len) * t.half);
  t.sinv.resize(static_cast<size_t>(seq_len) * t.half);
  for (int64_t pos = 0; pos < seq_len; ++pos) {
    for (int64_t i = 0; i < t.half; ++i) {
      const double freq =
          std::pow(static_cast<double>(base),
                   -2.0 * static_cast<double>(i) / static_cast<double>(head_dim));
      const double angle = static_cast<double>(pos) * freq;
      t.cosv[static_cast<size_t>(pos * t.half + i)] =
          static_cast<float>(std::cos(angle));
      t.sinv[static_cast<size_t>(pos * t.half + i)] =
          static_cast<float>(std::sin(angle));
    }
  }
  return t;
}

// Rotate rows of x in place; sign=+1 forward, −1 for the adjoint.
void apply_rope(Matrix& x, const RopeTable& tab, int n_heads, int seq_len,
                float sign) {
  const int64_t d = x.cols();
  const int64_t head_dim = d / n_heads;
  for (int64_t r = 0; r < x.rows(); ++r) {
    const int64_t pos = r % seq_len;
    float* row = x.row(r);
    for (int h = 0; h < n_heads; ++h) {
      float* hp = row + static_cast<int64_t>(h) * head_dim;
      for (int64_t i = 0; i < tab.half; ++i) {
        const float c = tab.cosv[static_cast<size_t>(pos * tab.half + i)];
        const float s =
            sign * tab.sinv[static_cast<size_t>(pos * tab.half + i)];
        const float x0 = hp[2 * i], x1 = hp[2 * i + 1];
        hp[2 * i] = x0 * c - x1 * s;
        hp[2 * i + 1] = x0 * s + x1 * c;
      }
    }
  }
}

}  // namespace

Var Tape::rope(Var xv, int n_heads, int seq_len, float base) {
  const Matrix& x = value(xv);
  const int64_t d = x.cols();
  APOLLO_CHECK(d % n_heads == 0);
  const int64_t head_dim = d / n_heads;
  APOLLO_CHECK(head_dim % 2 == 0);
  APOLLO_CHECK(x.rows() % seq_len == 0);

  auto tab = std::make_shared<RopeTable>(
      make_rope_table(seq_len, head_dim, base));
  Node n;
  n.op = "rope";
  n.value = x;
  apply_rope(n.value, *tab, n_heads, seq_len, +1.f);
  n.requires_grad = requires_grad(xv);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (n.requires_grad) {
    n.backward = [xv, out, tab, n_heads, seq_len](Tape& t) {
      // The rotation is orthogonal: the adjoint is the inverse rotation.
      Matrix dy = t.grad(out);
      apply_rope(dy, *tab, n_heads, seq_len, -1.f);
      add_inplace(t.grad(xv), dy);
    };
  }
  return push(std::move(n));
}

Var Tape::causal_attention(Var qv, Var kv, Var vv, int n_heads, int seq_len) {
  const Matrix& q = value(qv);
  const Matrix& k = value(kv);
  const Matrix& v = value(vv);
  APOLLO_CHECK(q.same_shape(k) && q.same_shape(v));
  const int64_t T = q.rows(), d = q.cols();
  APOLLO_CHECK(d % n_heads == 0 && T % seq_len == 0);
  const int64_t head_dim = d / n_heads;
  const int64_t batch = T / seq_len;
  const float scale = 1.f / std::sqrt(static_cast<float>(head_dim));

  Node n;
  n.op = "causal_attention";
  n.value = Matrix(T, d);
  // probs[b·n_heads + h] is the seq_len×seq_len lower-triangular softmax.
  auto probs = std::make_shared<std::vector<Matrix>>();
  probs->reserve(static_cast<size_t>(batch * n_heads));

  // Scores, causal-prefix softmax, and the Σ_j p_ij·V_j accumulation all go
  // through the dispatched kernels; the (b, h, i, j) loop structure — and
  // therefore every accumulation order — is unchanged.
  const simd::KernelTable& kt = simd::table();
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t row0 = b * seq_len;
    for (int h = 0; h < n_heads; ++h) {
      const int64_t c0 = static_cast<int64_t>(h) * head_dim;
      Matrix p(seq_len, seq_len);
      for (int64_t i = 0; i < seq_len; ++i) {
        const float* qi = q.row(row0 + i) + c0;
        float* pi = p.row(i);
        for (int64_t j = 0; j <= i; ++j)
          pi[j] = kt.dot(qi, k.row(row0 + j) + c0, head_dim) * scale;
        kt.softmax(pi, pi, i + 1);
        // Output row = Σ_j p_ij · V_j
        float* oi = n.value.row(row0 + i) + c0;
        for (int64_t j = 0; j <= i; ++j)
          kt.axpy(oi, v.row(row0 + j) + c0, pi[j], head_dim);
      }
      n.extra_bytes += p.size() * static_cast<int64_t>(sizeof(float));
      probs->push_back(std::move(p));
    }
  }

  n.requires_grad = requires_grad(qv) || requires_grad(kv) || requires_grad(vv);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (n.requires_grad) {
    n.backward = [qv, kv, vv, out, probs, n_heads, seq_len, head_dim, batch,
                  scale](Tape& t) {
      const Matrix& dy = t.grad(out);
      const Matrix& q = t.value(qv);
      const Matrix& k = t.value(kv);
      const Matrix& v = t.value(vv);
      Matrix& dq = t.grad(qv);
      Matrix& dk = t.grad(kv);
      Matrix& dv = t.grad(vv);
      std::vector<float> dp(static_cast<size_t>(seq_len));
      for (int64_t b = 0; b < batch; ++b) {
        const int64_t row0 = b * seq_len;
        for (int h = 0; h < n_heads; ++h) {
          const int64_t c0 = static_cast<int64_t>(h) * head_dim;
          const Matrix& p = (*probs)[static_cast<size_t>(b * n_heads + h)];
          for (int64_t i = 0; i < seq_len; ++i) {
            const float* dyi = dy.row(row0 + i) + c0;
            const float* pi = p.row(i);
            // dV_j += p_ij · dy_i ;  dp_ij = dy_i · V_j
            for (int64_t j = 0; j <= i; ++j) {
              const float* vj = v.row(row0 + j) + c0;
              float* dvj = dv.row(row0 + j) + c0;
              float acc = 0.f;
              const float pij = pi[j];
              for (int64_t c = 0; c < head_dim; ++c) {
                dvj[c] += pij * dyi[c];
                acc += dyi[c] * vj[c];
              }
              dp[static_cast<size_t>(j)] = acc;
            }
            // Softmax backward: ds_ij = p_ij (dp_ij − Σ_l p_il dp_il)
            double inner = 0;
            for (int64_t j = 0; j <= i; ++j)
              inner += static_cast<double>(pi[j]) * dp[static_cast<size_t>(j)];
            const float* qi = q.row(row0 + i) + c0;
            float* dqi = dq.row(row0 + i) + c0;
            for (int64_t j = 0; j <= i; ++j) {
              const float ds =
                  pi[j] * (dp[static_cast<size_t>(j)] -
                           static_cast<float>(inner)) *
                  scale;
              const float* kj = k.row(row0 + j) + c0;
              float* dkj = dk.row(row0 + j) + c0;
              for (int64_t c = 0; c < head_dim; ++c) {
                dqi[c] += ds * kj[c];
                dkj[c] += ds * qi[c];
              }
            }
          }
        }
      }
    };
  }
  return push(std::move(n));
}

}  // namespace apollo::ag
