// Core tape mechanics + linear-algebra ops. Neural-network specific ops live
// in ops_nn.cpp and ops_attention.cpp.
#include "autograd/tape.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/finite.h"
#include "tensor/ops.h"

namespace apollo::ag {

Var Tape::push(Node n) {
  live_act_bytes_ +=
      n.value.size() * static_cast<int64_t>(sizeof(float)) + n.extra_bytes;
  nodes_.push_back(std::move(n));
  bump_peaks();
  return Var{static_cast<int32_t>(nodes_.size() - 1)};
}

void Tape::bump_peaks() {
  peak_act_bytes_ = std::max(peak_act_bytes_, live_act_bytes_);
  peak_grad_bytes_ = std::max(peak_grad_bytes_, live_leaf_grad_bytes_);
  peak_total_bytes_ =
      std::max(peak_total_bytes_, live_act_bytes_ + live_leaf_grad_bytes_ +
                                      live_interior_grad_bytes_);
}

void Tape::release_node(Node& n) {
  live_act_bytes_ -=
      n.value.size() * static_cast<int64_t>(sizeof(float)) + n.extra_bytes;
  live_interior_grad_bytes_ -=
      n.grad.size() * static_cast<int64_t>(sizeof(float));
  n.value = Matrix();
  n.extra_bytes = 0;
  n.grad = Matrix();
  n.grad_ready = false;
  n.backward = nullptr;  // drops saved tensors captured by the closure
}

void Tape::release_leaf_grad(Matrix* grad) {
  APOLLO_CHECK(grad != nullptr);
  live_leaf_grad_bytes_ -=
      grad->size() * static_cast<int64_t>(sizeof(float));
  *grad = Matrix();
}

Var Tape::leaf(const Matrix* value, Matrix* grad) {
  APOLLO_CHECK(value != nullptr);
  Node n;
  n.ext_value = value;
  n.ext_grad = grad;
  n.requires_grad = grad != nullptr;
  if (grad != nullptr) {
    APOLLO_CHECK_MSG(grad->empty() || (grad->rows() == value->rows() &&
                                       grad->cols() == value->cols()),
                     "leaf grad must be empty or sized to match value");
    // First registration of this gradient sink: remember the id (the point
    // in the reverse sweep where the gradient is final) and count its bytes
    // once even if the parameter appears as a leaf again.
    if (first_leaf_of_
            .emplace(grad, static_cast<int32_t>(nodes_.size()))
            .second)
      live_leaf_grad_bytes_ +=
          grad->size() * static_cast<int64_t>(sizeof(float));
  }
  return push(std::move(n));
}

Var Tape::constant(Matrix value) {
  Node n;
  n.op = "constant";
  n.value = std::move(value);
  n.requires_grad = false;
  return push(std::move(n));
}

const Matrix& Tape::value(Var v) const {
  const Node& n = node(v);
  return n.ext_value != nullptr ? *n.ext_value : n.value;
}

bool Tape::requires_grad(Var v) const { return node(v).requires_grad; }

Matrix& Tape::grad(Var v) {
  Node& n = node(v);
  if (n.ext_grad != nullptr) {
    if (n.ext_grad->empty()) {
      // Streaming path: size and zero the parameter gradient on first
      // touch (reshape_discard zero-initializes, preserving accumulate
      // semantics).
      const Matrix& val = value(v);
      n.ext_grad->reshape_discard(val.rows(), val.cols());
      live_leaf_grad_bytes_ +=
          n.ext_grad->size() * static_cast<int64_t>(sizeof(float));
      bump_peaks();
    }
    return *n.ext_grad;
  }
  if (!n.grad_ready) {
    const Matrix& val = value(v);
    n.grad.reshape_discard(val.rows(), val.cols());
    n.grad_ready = true;
    live_interior_grad_bytes_ +=
        n.grad.size() * static_cast<int64_t>(sizeof(float));
    bump_peaks();
  }
  return n.grad;
}

const Matrix* Tape::grad_if_ready(Var v) const {
  const Node& n = node(v);
  if (n.ext_grad != nullptr)
    return n.ext_grad->empty() ? nullptr : n.ext_grad;
  return n.grad_ready ? &n.grad : nullptr;
}

int64_t Tape::activation_bytes() const {
  int64_t total = 0;
  for (const Node& n : nodes_)
    total += n.value.size() * static_cast<int64_t>(sizeof(float)) +
             n.extra_bytes;
  return total;
}

void Tape::backward(Var loss, float seed) {
  APOLLO_CHECK_MSG(value(loss).size() == 1, "loss must be a scalar");
  APOLLO_TRACE_SCOPE("Tape::backward", "autograd");
  const bool finite_mode = finite_checks_enabled();
  const bool trace_mode = obs::trace_enabled();
  if (obs::telemetry_enabled()) {
    static obs::Counter& ops =
        obs::Registry::instance().counter("autograd.backward.ops");
    static obs::Counter& passes =
        obs::Registry::instance().counter("autograd.backward.passes");
    ops.add(static_cast<int64_t>(nodes_.size()));
    passes.add(1);
  }
  grad(loss).fill(seed);
  for (int32_t id = loss.id; id >= 0; --id) {
    Node& n = nodes_[static_cast<size_t>(id)];
    // Skip nodes whose gradient was never touched (dead branches) —
    // including leaves whose external grad was left empty by the streaming
    // path.
    const bool untouched =
        (n.ext_grad == nullptr && !n.grad_ready) ||
        (n.ext_grad != nullptr && n.ext_grad->empty());
    if (n.requires_grad && !untouched) {
      // Every consumer of node `id` has already run, so its gradient is
      // fully accumulated here — the per-op checkpoint of the
      // numeric-safety mode.
      if (finite_mode)
        check_finite_or_die(*grad_if_ready(Var{id}), n.op,
                            "autograd backward");
      if (n.backward) {
        // Per-op slice: node op names are string literals, safe to store.
        if (trace_mode) obs::trace_begin(n.op, "autograd");
        n.backward(*this);
        if (trace_mode) obs::trace_end(n.op, "autograd");
      }
      if (n.ext_grad != nullptr && leaf_cb_) {
        auto it = first_leaf_of_.find(n.ext_grad);
        if (it != first_leaf_of_.end() && it->second == id)
          leaf_cb_(n.ext_value, n.ext_grad);
      }
    }
    // With gradient release on, nothing below `id` can read this node's
    // value or gradient anymore (inputs of later-processed closures all
    // have ids < their own index < id) — free it now.
    if (gradient_release_) release_node(n);
  }
  bump_peaks();
}

Var Tape::matmul(Var a, Var b) {
  Node n;
  n.op = "matmul";
  n.value = apollo::matmul(value(a), value(b));
  n.requires_grad = requires_grad(a) || requires_grad(b);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (n.requires_grad) {
    n.backward = [a, b, out](Tape& t) {
      const Matrix& dc = t.grad(out);
      if (t.requires_grad(a)) apollo::matmul_bt(t.grad(a), dc, t.value(b), true);
      if (t.requires_grad(b)) apollo::matmul_at(t.grad(b), t.value(a), dc, true);
    };
  }
  return push(std::move(n));
}

Var Tape::matmul_bt(Var a, Var b) {
  Node n;
  n.op = "matmul_bt";
  n.value = apollo::matmul_bt(value(a), value(b));
  n.requires_grad = requires_grad(a) || requires_grad(b);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (n.requires_grad) {
    n.backward = [a, b, out](Tape& t) {
      const Matrix& dc = t.grad(out);  // m×n where C = A(m×k)·Bᵀ(k×n)
      if (t.requires_grad(a)) apollo::matmul(t.grad(a), dc, t.value(b), true);
      if (t.requires_grad(b)) apollo::matmul_at(t.grad(b), dc, t.value(a), true);
    };
  }
  return push(std::move(n));
}

Var Tape::add(Var a, Var b) {
  APOLLO_CHECK(value(a).same_shape(value(b)));
  Node n;
  n.op = "add";
  n.value = value(a);
  add_inplace(n.value, value(b));
  n.requires_grad = requires_grad(a) || requires_grad(b);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (n.requires_grad) {
    n.backward = [a, b, out](Tape& t) {
      const Matrix& dc = t.grad(out);
      if (t.requires_grad(a)) add_inplace(t.grad(a), dc);
      if (t.requires_grad(b)) add_inplace(t.grad(b), dc);
    };
  }
  return push(std::move(n));
}

Var Tape::mul(Var a, Var b) {
  APOLLO_CHECK(value(a).same_shape(value(b)));
  Node n;
  n.op = "mul";
  n.value = value(a);
  hadamard_inplace(n.value, value(b));
  n.requires_grad = requires_grad(a) || requires_grad(b);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (n.requires_grad) {
    n.backward = [a, b, out](Tape& t) {
      const Matrix& dc = t.grad(out);
      if (t.requires_grad(a)) {
        Matrix tmp = dc;
        hadamard_inplace(tmp, t.value(b));
        add_inplace(t.grad(a), tmp);
      }
      if (t.requires_grad(b)) {
        Matrix tmp = dc;
        hadamard_inplace(tmp, t.value(a));
        add_inplace(t.grad(b), tmp);
      }
    };
  }
  return push(std::move(n));
}

Var Tape::scale(Var a, float s) {
  Node n;
  n.op = "scale";
  n.value = value(a);
  scale_inplace(n.value, s);
  n.requires_grad = requires_grad(a);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (n.requires_grad) {
    n.backward = [a, s, out](Tape& t) { axpy(t.grad(a), s, t.grad(out)); };
  }
  return push(std::move(n));
}

Var Tape::dot(Var a, Matrix weights) {
  const Matrix& x = value(a);
  APOLLO_CHECK(x.same_shape(weights));
  Node n;
  n.op = "dot";
  n.value = Matrix(1, 1);
  double acc = 0;
  for (int64_t i = 0; i < x.size(); ++i)
    acc += static_cast<double>(x[i]) * weights[i];
  n.value[0] = static_cast<float>(acc);
  n.requires_grad = requires_grad(a);
  Var out{static_cast<int32_t>(nodes_.size())};
  if (n.requires_grad) {
    auto w = std::make_shared<Matrix>(std::move(weights));
    n.backward = [a, out, w](Tape& t) {
      axpy(t.grad(a), t.grad(out)[0], *w);
    };
  }
  return push(std::move(n));
}

}  // namespace apollo::ag
