#include "tensor/rng.h"

#include <cmath>

namespace apollo {

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

inline uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_ = false;
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::next_below(uint64_t n) {
  // Lemire's nearly-divisionless bounded generation (simple rejection form).
  if (n == 0) return 0;
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::next_gaussian() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box–Muller on (0,1] uniforms to avoid log(0).
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

}  // namespace apollo
