// AVX-512 backend: 16-lane f32 vectors, 8×32 GEMM register tile (16 of 32
// zmm accumulators). Compiled with -mavx512{f,dq,bw,vl} (src/CMakeLists.txt);
// only reached after the cpuid gate in dispatch.cpp.
#include <immintrin.h>

#include <cstdint>

#include "tensor/simd/kernels_decl.h"
#include "tensor/simd/kernels_tmpl.h"

namespace apollo::simd::detail {
namespace {

struct VecAvx512 {
  static constexpr int64_t kWidth = 16;
  static constexpr int64_t kGemmMr = 8;
  using F = __m512;
  struct DAcc {
    __m512d lo;  // lanes 0..7
    __m512d hi;  // lanes 8..15
  };

  static __mmask16 mask(int64_t m) {
    return static_cast<__mmask16>((1u << m) - 1u);
  }

  static F zero() { return _mm512_setzero_ps(); }
  static F bcast(float x) { return _mm512_set1_ps(x); }
  static F load(const float* p) { return _mm512_loadu_ps(p); }
  static void store(float* p, F v) { _mm512_storeu_ps(p, v); }
  static F load_partial(const float* p, int64_t m) {
    return _mm512_maskz_loadu_ps(mask(m), p);
  }
  static void store_partial(float* p, F v, int64_t m) {
    _mm512_mask_storeu_ps(p, mask(m), v);
  }

  static F add(F a, F b) { return _mm512_add_ps(a, b); }
  static F sub(F a, F b) { return _mm512_sub_ps(a, b); }
  static F mul(F a, F b) { return _mm512_mul_ps(a, b); }
  static F div(F a, F b) { return _mm512_div_ps(a, b); }
  static F min(F a, F b) { return _mm512_min_ps(a, b); }
  static F max(F a, F b) { return _mm512_max_ps(a, b); }
  static F fmadd(F a, F b, F c) { return _mm512_fmadd_ps(a, b, c); }
  static F abs(F v) { return _mm512_abs_ps(v); }
  static F round_nearest(F v) {
    return _mm512_roundscale_ps(v, _MM_FROUND_TO_NEAREST_INT |
                                       _MM_FROUND_NO_EXC);
  }
  // 2^n for integral-valued n in [-126, 127], via the exponent field.
  static F pow2i(F n) {
    const __m512i e =
        _mm512_add_epi32(_mm512_cvtps_epi32(n), _mm512_set1_epi32(127));
    return _mm512_castsi512_ps(_mm512_slli_epi32(e, 23));
  }

  static DAcc dzero() {
    return {_mm512_setzero_pd(), _mm512_setzero_pd()};
  }
  static void dadd_f(DAcc& acc, F v) {
    acc.lo = _mm512_add_pd(acc.lo,
                           _mm512_cvtps_pd(_mm512_castps512_ps256(v)));
    acc.hi = _mm512_add_pd(
        acc.hi, _mm512_cvtps_pd(_mm512_extractf32x8_ps(v, 1)));
  }
  static void dfma_f(DAcc& acc, F a, F b) {
    const __m512d alo = _mm512_cvtps_pd(_mm512_castps512_ps256(a));
    const __m512d ahi = _mm512_cvtps_pd(_mm512_extractf32x8_ps(a, 1));
    const __m512d blo = _mm512_cvtps_pd(_mm512_castps512_ps256(b));
    const __m512d bhi = _mm512_cvtps_pd(_mm512_extractf32x8_ps(b, 1));
    acc.lo = _mm512_fmadd_pd(alo, blo, acc.lo);
    acc.hi = _mm512_fmadd_pd(ahi, bhi, acc.hi);
  }
  // Lane-ascending (0→15) summation: part of the fixed contraction order.
  static double dreduce_ordered(const DAcc& acc) {
    alignas(64) double lanes[16];
    _mm512_store_pd(lanes, acc.lo);
    _mm512_store_pd(lanes + 8, acc.hi);
    double s = 0;
    for (int j = 0; j < 16; ++j) s += lanes[j];
    return s;
  }
  static float reduce_add_ordered(F v) {
    alignas(64) float lanes[16];
    _mm512_store_ps(lanes, v);
    float s = 0.f;
    for (int j = 0; j < 16; ++j) s += lanes[j];
    return s;
  }
  static float reduce_max(F v) {
    alignas(64) float lanes[16];
    _mm512_store_ps(lanes, v);
    float m = lanes[0];
    for (int j = 1; j < 16; ++j) m = lanes[j] > m ? lanes[j] : m;
    return m;
  }
};

using K = Kern<VecAvx512>;

}  // namespace

void gemm_avx512(float* c, int64_t ldc, const float* a, int64_t lda,
                 bool a_trans, const float* b, int64_t ldb, int64_t i0,
                 int64_t i1, int64_t n, int64_t k) {
  K::gemm(c, ldc, a, lda, a_trans, b, ldb, i0, i1, n, k);
}
void axpy_avx512(float* y, const float* x, float alpha, int64_t n) {
  K::axpy(y, x, alpha, n);
}
void scale_avx512(float* y, float alpha, int64_t n) {
  K::scale(y, alpha, n);
}
void hadamard_avx512(float* y, const float* x, int64_t n) {
  K::hadamard(y, x, n);
}
double sum_avx512(const float* x, int64_t n) { return K::sum(x, n); }
double sumsq_avx512(const float* x, int64_t n) { return K::sumsq(x, n); }
float dot_avx512(const float* a, const float* b, int64_t n) {
  return K::dot(a, b, n);
}
float abs_max_avx512(const float* x, int64_t n) { return K::abs_max(x, n); }
void exp_avx512(float* dst, const float* src, int64_t n) {
  K::vexp_buf(dst, src, n);
}
void softmax_avx512(float* dst, const float* src, int64_t n) {
  K::softmax(dst, src, n);
}
float rmsnorm_row_avx512(float* dst, const float* src, const float* w,
                         int64_t n, float eps) {
  return K::rmsnorm_row(dst, src, w, n, eps);
}
void silu_avx512(float* y, float* sig, const float* x, int64_t n) {
  K::silu(y, sig, x, n);
}

}  // namespace apollo::simd::detail
