// Level resolution and kernel-table dispatch. cpuid is probed once; the
// active level is max_supported unless overridden by APOLLO_SIMD or
// set_level(). Tables are immutable per-level constants, so table(level) is
// safe to call concurrently from pool workers.
#include "tensor/simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "tensor/check.h"
#include "tensor/simd/kernels_decl.h"

namespace apollo::simd {
namespace {

constexpr int kLevelNone = -1;

Level probe_max_level() {
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return Level::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

Level max_level_cached() {
  static const Level level = probe_max_level();
  return level;
}

bool parse_level(const char* s, Level* out) {
  if (std::strcmp(s, "scalar") == 0) {
    *out = Level::kScalar;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    *out = Level::kAvx2;
    return true;
  }
  if (std::strcmp(s, "avx512") == 0) {
    *out = Level::kAvx512;
    return true;
  }
  return false;
}

// Resolve APOLLO_SIMD once; unsupported or unknown values warn and fall
// back so a pinned-scalar script still runs on any machine.
Level env_or_cpuid_level() {
  static std::once_flag once;
  static Level resolved = Level::kScalar;
  std::call_once(once, [] {
    resolved = max_level_cached();
    const char* env = std::getenv("APOLLO_SIMD");
    if (env == nullptr || env[0] == '\0') return;
    Level req;
    if (!parse_level(env, &req)) {
      std::fprintf(stderr,
                   "[apollo] APOLLO_SIMD=%s is not scalar|avx2|avx512; "
                   "using %s\n",
                   env, level_name(resolved));
      return;
    }
    if (req > max_level_cached()) {
      std::fprintf(stderr,
                   "[apollo] APOLLO_SIMD=%s unsupported on this CPU; "
                   "using %s\n",
                   env, level_name(resolved));
      return;
    }
    resolved = req;
  });
  return resolved;
}

// set_level() override; kLevelNone means "no override".
std::atomic<int> g_override{kLevelNone};

KernelTable make_table(Level level) {
  using namespace detail;
  KernelTable t;
  t.level = level;
  switch (level) {
#if defined(__x86_64__) || defined(_M_X64)
    case Level::kAvx512:
      t.gemm_row_align = 8;
      t.gemm = gemm_avx512;
      t.axpy = axpy_avx512;
      t.scale = scale_avx512;
      t.hadamard = hadamard_avx512;
      t.sum = sum_avx512;
      t.sumsq = sumsq_avx512;
      t.dot = dot_avx512;
      t.abs_max = abs_max_avx512;
      t.exp = exp_avx512;
      t.softmax = softmax_avx512;
      t.rmsnorm_row = rmsnorm_row_avx512;
      t.silu = silu_avx512;
      return t;
    case Level::kAvx2:
      t.gemm_row_align = 6;
      t.gemm = gemm_avx2;
      t.axpy = axpy_avx2;
      t.scale = scale_avx2;
      t.hadamard = hadamard_avx2;
      t.sum = sum_avx2;
      t.sumsq = sumsq_avx2;
      t.dot = dot_avx2;
      t.abs_max = abs_max_avx2;
      t.exp = exp_avx2;
      t.softmax = softmax_avx2;
      t.rmsnorm_row = rmsnorm_row_avx2;
      t.silu = silu_avx2;
      return t;
#endif
    default:
      t.level = Level::kScalar;
      t.gemm_row_align = 1;
      t.gemm = gemm_scalar;
      t.axpy = axpy_scalar;
      t.scale = scale_scalar;
      t.hadamard = hadamard_scalar;
      t.sum = sum_scalar;
      t.sumsq = sumsq_scalar;
      t.dot = dot_scalar;
      t.abs_max = abs_max_scalar;
      t.exp = exp_scalar;
      t.softmax = softmax_scalar;
      t.rmsnorm_row = rmsnorm_row_scalar;
      t.silu = silu_scalar;
      return t;
  }
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx512: return "avx512";
    case Level::kAvx2: return "avx2";
    default: return "scalar";
  }
}

Level max_supported_level() { return max_level_cached(); }

// Diagnostic enumeration (lives in the simd/ hot-root directory but is only
// called from tests and startup banners, never per element).
std::vector<Level> available_levels() {
  std::vector<Level> out{Level::kScalar};
  if (max_level_cached() >= Level::kAvx2)
    out.push_back(Level::kAvx2);  // lint:allow(hot-path-alloc)
  if (max_level_cached() >= Level::kAvx512)
    out.push_back(Level::kAvx512);  // lint:allow(hot-path-alloc)
  return out;
}

Level active_level() {
  const int ov = g_override.load(std::memory_order_acquire);
  if (ov != kLevelNone) return static_cast<Level>(ov);
  return env_or_cpuid_level();
}

bool set_level(Level level) {
  if (level > max_level_cached()) return false;
  g_override.store(static_cast<int>(level), std::memory_order_release);
  return true;
}

void clear_level_override() {
  g_override.store(kLevelNone, std::memory_order_release);
}

const KernelTable& table(Level level) {
  APOLLO_CHECK_MSG(level <= max_level_cached(),
                   "requested SIMD level unsupported on this CPU");
  static const KernelTable kScalarTable = make_table(Level::kScalar);
#if defined(__x86_64__) || defined(_M_X64)
  static const KernelTable kAvx2Table =
      make_table(max_level_cached() >= Level::kAvx2 ? Level::kAvx2
                                                    : Level::kScalar);
  static const KernelTable kAvx512Table =
      make_table(max_level_cached() >= Level::kAvx512 ? Level::kAvx512
                                                      : Level::kScalar);
  switch (level) {
    case Level::kAvx512: return kAvx512Table;
    case Level::kAvx2: return kAvx2Table;
    default: return kScalarTable;
  }
#else
  return kScalarTable;
#endif
}

const KernelTable& table() { return table(active_level()); }

}  // namespace apollo::simd
