// Internal: the vector backend engine, templated over a per-ISA vector
// wrapper V (defined with intrinsics inside kernels_avx2.cpp /
// kernels_avx512.cpp). One implementation, two instantiations — the AVX2
// and AVX-512 backends differ only in lane width and register budget.
//
// V must provide:
//   kWidth                      f32 lanes per vector
//   kGemmMr                     GEMM micro-kernel row-tile height
//   F                           the f32 vector type
//   DAcc                        a double accumulator covering kWidth lanes
//   zero() load(p) store(p,v) load_partial(p,m) store_partial(p,v,m)
//   bcast(x) add sub mul div min max fmadd(a,b,c)  abs(v)
//   round_nearest(v) pow2i(v)   (v integral, in [-127, 127])
//   dzero() dadd_f(acc,v) dfma_f(acc,a,b) dreduce_ordered(acc)
//   reduce_add_ordered(v) reduce_max(v)
//
// Determinism: every loop structure here is a pure function of the input
// shape. Reductions use the fixed lane tree (lane j accumulates indices
// ≡ j mod kWidth), reduce lanes in ascending order, then append a
// sequential scalar tail — so a fixed dispatch level is bit-identical
// run-to-run and across any threadpool partition of the caller.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace apollo::simd::detail {

template <class V>
struct Kern {
  using F = typename V::F;
  using DAcc = typename V::DAcc;
  static constexpr int64_t W = V::kWidth;
  static constexpr int64_t MR = V::kGemmMr;
  static constexpr int64_t NR = 2 * W;  // micro-kernel column width
  static constexpr int64_t KC = 256;    // k-blocking: B panel depth
  static constexpr int64_t NC = 1024;   // n-blocking: B panel width cap

  // ---- elementwise (bit-exact vs the fma-pinned scalar reference) --------

  static void axpy(float* y, const float* x, float alpha, int64_t n) {
    const F va = V::bcast(alpha);
    int64_t i = 0;
    for (; i + W <= n; i += W)
      V::store(y + i, V::fmadd(va, V::load(x + i), V::load(y + i)));
    for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
  }

  static void scale(float* y, float alpha, int64_t n) {
    const F va = V::bcast(alpha);
    int64_t i = 0;
    for (; i + W <= n; i += W) V::store(y + i, V::mul(V::load(y + i), va));
    for (; i < n; ++i) y[i] *= alpha;
  }

  static void hadamard(float* y, const float* x, int64_t n) {
    int64_t i = 0;
    for (; i + W <= n; i += W)
      V::store(y + i, V::mul(V::load(y + i), V::load(x + i)));
    for (; i < n; ++i) y[i] *= x[i];
  }

  // ---- reductions (fixed lane tree + sequential tail) --------------------

  static double sum(const float* x, int64_t n) {
    DAcc acc = V::dzero();
    int64_t i = 0;
    for (; i + W <= n; i += W) V::dadd_f(acc, V::load(x + i));
    double s = V::dreduce_ordered(acc);
    for (; i < n; ++i) s += x[i];
    return s;
  }

  static double sumsq(const float* x, int64_t n) {
    DAcc acc = V::dzero();
    int64_t i = 0;
    for (; i + W <= n; i += W) {
      const F v = V::load(x + i);
      V::dfma_f(acc, v, v);
    }
    double s = V::dreduce_ordered(acc);
    for (; i < n; ++i) s += static_cast<double>(x[i]) * x[i];
    return s;
  }

  static float dot(const float* a, const float* b, int64_t n) {
    F acc = V::zero();
    int64_t i = 0;
    for (; i + W <= n; i += W)
      acc = V::fmadd(V::load(a + i), V::load(b + i), acc);
    float s = V::reduce_add_ordered(acc);
    for (; i < n; ++i) s = std::fma(a[i], b[i], s);
    return s;
  }

  static float abs_max(const float* x, int64_t n) {
    float mx = 0.f;
    int64_t i = 0;
    if (n >= W) {
      F vm = V::abs(V::load(x));
      for (i = W; i + W <= n; i += W)
        vm = V::max(vm, V::abs(V::load(x + i)));
      mx = V::reduce_max(vm);
    }
    for (; i < n; ++i) mx = std::max(mx, std::fabs(x[i]));
    return mx;
  }

  // ---- transcendental ----------------------------------------------------

  // Cephes-style expf: Cody–Waite range reduction, degree-6 polynomial,
  // 2^n by exponent-field construction. ≤ ~2 ulp over the clamped domain;
  // every operation is an fma/mul, so the result is a pure function of the
  // input — reproducible at a fixed level.
  static F vexp(F x) {
    x = V::min(x, V::bcast(88.3762626647949f));
    x = V::max(x, V::bcast(-87.3365478515625f));
    const F n = V::round_nearest(V::mul(x, V::bcast(1.44269504088896341f)));
    F r = V::fmadd(n, V::bcast(-0.693359375f), x);
    r = V::fmadd(n, V::bcast(2.12194440e-4f), r);
    F p = V::bcast(1.9875691500e-4f);
    p = V::fmadd(p, r, V::bcast(1.3981999507e-3f));
    p = V::fmadd(p, r, V::bcast(8.3334519073e-3f));
    p = V::fmadd(p, r, V::bcast(4.1665795894e-2f));
    p = V::fmadd(p, r, V::bcast(1.6666665459e-1f));
    p = V::fmadd(p, r, V::bcast(5.0000001201e-1f));
    const F r2 = V::mul(r, r);
    const F y = V::fmadd(p, r2, V::add(r, V::bcast(1.f)));
    return V::mul(y, V::pow2i(n));
  }

  static void vexp_buf(float* dst, const float* src, int64_t n) {
    int64_t i = 0;
    for (; i + W <= n; i += W) V::store(dst + i, vexp(V::load(src + i)));
    if (i < n) {
      const int64_t m = n - i;
      // Masked lanes load as 0; their exp is discarded by the partial store.
      V::store_partial(dst + i, vexp(V::load_partial(src + i, m)), m);
    }
  }

  static void softmax(float* dst, const float* src, int64_t n) {
    // Row max (fp max is associative — exact at every level).
    float mx = src[0];
    int64_t i = 0;
    if (n >= W) {
      F vm = V::load(src);
      for (i = W; i + W <= n; i += W) vm = V::max(vm, V::load(src + i));
      mx = V::reduce_max(vm);
    }
    for (; i < n; ++i) mx = std::max(mx, src[i]);

    const F vmx = V::bcast(mx);
    i = 0;
    for (; i + W <= n; i += W)
      V::store(dst + i, vexp(V::sub(V::load(src + i), vmx)));
    if (i < n) {
      const int64_t m = n - i;
      V::store_partial(dst + i,
                       vexp(V::sub(V::load_partial(src + i, m), vmx)), m);
    }

    const double denom = sum(dst, n);
    scale(dst, static_cast<float>(1.0 / denom), n);
  }

  static float rmsnorm_row(float* dst, const float* src, const float* w,
                           int64_t n, float eps) {
    const double ss = sumsq(src, n);
    const float ir = 1.f / std::sqrt(
                               static_cast<float>(ss / static_cast<double>(n)) +
                               eps);
    const F vir = V::bcast(ir);
    int64_t i = 0;
    for (; i + W <= n; i += W)
      V::store(dst + i, V::mul(V::mul(V::load(src + i), vir), V::load(w + i)));
    for (; i < n; ++i) dst[i] = src[i] * ir * w[i];
    return ir;
  }

  static void silu(float* y, float* sig, const float* x, int64_t n) {
    const F one = V::bcast(1.f);
    int64_t i = 0;
    for (; i + W <= n; i += W) {
      const F v = V::load(x + i);
      const F s = V::div(one, V::add(one, vexp(V::sub(V::zero(), v))));
      V::store(sig + i, s);
      V::store(y + i, V::mul(v, s));
    }
    for (; i < n; ++i) {
      // Same polynomial as the vector body so the tail is level-consistent.
      const float s = 1.f / (1.f + scalar_poly_exp(-x[i]));
      sig[i] = s;
      y[i] = x[i] * s;
    }
  }

  // Scalar mirror of vexp (same constants, same operation order via fma) so
  // per-element tails match the vector body bit-for-bit.
  static float scalar_poly_exp(float x) {
    x = std::min(x, 88.3762626647949f);
    x = std::max(x, -87.3365478515625f);
    const float n = std::nearbyint(x * 1.44269504088896341f);
    float r = std::fma(n, -0.693359375f, x);
    r = std::fma(n, 2.12194440e-4f, r);
    float p = 1.9875691500e-4f;
    p = std::fma(p, r, 1.3981999507e-3f);
    p = std::fma(p, r, 8.3334519073e-3f);
    p = std::fma(p, r, 4.1665795894e-2f);
    p = std::fma(p, r, 1.6666665459e-1f);
    p = std::fma(p, r, 5.0000001201e-1f);
    const float y = std::fma(p, r * r, r + 1.f);
    return std::ldexp(y, static_cast<int>(n));
  }

  // ---- GEMM --------------------------------------------------------------

  // Register-tiled micro-kernel: kMr rows × NR columns of C accumulate in
  // registers over the whole kc depth, then flow to memory once. `a` is
  // either kMr row pointers' base (row-major, stride lda) or a packed
  // p-major tile (stride kMr) for the transposed case.
  template <int kMr, bool kPackedA>
  static void micro(float* c, int64_t ldc, const float* a, int64_t lda,
                    const float* bp, int64_t kc, int64_t nr) {
    F acc0[kMr], acc1[kMr];
    for (int r = 0; r < kMr; ++r) {
      acc0[r] = V::zero();
      acc1[r] = V::zero();
    }
    const float* arow[kMr];
    for (int r = 0; r < kMr; ++r)
      arow[r] = kPackedA ? nullptr : a + r * lda;
    for (int64_t p = 0; p < kc; ++p) {
      const F b0 = V::load(bp + p * NR);
      const F b1 = V::load(bp + p * NR + W);
      for (int r = 0; r < kMr; ++r) {
        const F av = V::bcast(kPackedA ? a[p * kMr + r] : arow[r][p]);
        acc0[r] = V::fmadd(av, b0, acc0[r]);
        acc1[r] = V::fmadd(av, b1, acc1[r]);
      }
    }
    for (int r = 0; r < kMr; ++r) {
      float* crow = c + r * ldc;
      if (nr >= W) {
        V::store(crow, V::add(V::load(crow), acc0[r]));
        const int64_t rest = nr - W;
        if (rest >= W) {
          V::store(crow + W, V::add(V::load(crow + W), acc1[r]));
        } else if (rest > 0) {
          // Padded B lanes are zero, so the extra acc lanes are exact zeros
          // and the masked add/store is safe and deterministic.
          V::store_partial(crow + W,
                           V::add(V::load_partial(crow + W, rest), acc1[r]),
                           rest);
        }
      } else {
        V::store_partial(crow, V::add(V::load_partial(crow, nr), acc0[r]),
                         nr);
      }
    }
  }

  template <bool kPackedA>
  static void micro_dispatch(int64_t mr, float* c, int64_t ldc,
                             const float* a, int64_t lda, const float* bp,
                             int64_t kc, int64_t nr) {
    switch (mr) {
      case 1: micro<1, kPackedA>(c, ldc, a, lda, bp, kc, nr); break;
      case 2: micro<2, kPackedA>(c, ldc, a, lda, bp, kc, nr); break;
      case 3: micro<3, kPackedA>(c, ldc, a, lda, bp, kc, nr); break;
      case 4: micro<4, kPackedA>(c, ldc, a, lda, bp, kc, nr); break;
      case 5: micro<5, kPackedA>(c, ldc, a, lda, bp, kc, nr); break;
      case 6: micro<6, kPackedA>(c, ldc, a, lda, bp, kc, nr); break;
      case 7: micro<7, kPackedA>(c, ldc, a, lda, bp, kc, nr); break;
      default: micro<8, kPackedA>(c, ldc, a, lda, bp, kc, nr); break;
    }
  }

  // Pack a kc×nc block of B (row stride ldb) into NR-wide column panels,
  // zero-padding the last panel so micro-kernel loads are always full-width.
  static void pack_b(std::vector<float>& buf, const float* b, int64_t ldb,
                     int64_t kc, int64_t nc) {
    const int64_t panels = (nc + NR - 1) / NR;
    // `buf` is a caller-owned thread-local scratch buffer: resize only grows
    // it to the largest panel seen, after which this is a no-op.
    buf.resize(static_cast<size_t>(panels * kc * NR));  // lint:allow(hot-path-alloc)
    for (int64_t pan = 0; pan < panels; ++pan) {
      const int64_t j0 = pan * NR;
      const int64_t w = std::min<int64_t>(NR, nc - j0);
      float* dst = buf.data() + pan * kc * NR;
      for (int64_t p = 0; p < kc; ++p) {
        const float* src = b + p * ldb + j0;
        int64_t j = 0;
        for (; j < w; ++j) dst[j] = src[j];
        for (; j < NR; ++j) dst[j] = 0.f;
        dst += NR;
      }
    }
  }

  // Pack mr rows of the transposed-A operand (element (i+r, p) at
  // a[p*lda + r]) into a p-major tile with stride mr, so the micro-kernel
  // broadcasts from contiguous memory instead of striding by lda.
  static void pack_at(std::vector<float>& buf, const float* a, int64_t lda,
                      int64_t kc, int64_t mr) {
    // Caller-owned thread-local scratch, grown once then reused (see pack_b).
    buf.resize(static_cast<size_t>(kc * mr));  // lint:allow(hot-path-alloc)
    for (int64_t p = 0; p < kc; ++p) {
      const float* src = a + p * lda;
      float* dst = buf.data() + p * mr;
      for (int64_t r = 0; r < mr; ++r) dst[r] = src[r];
    }
  }

  static void gemm(float* c, int64_t ldc, const float* a, int64_t lda,
                   bool a_trans, const float* b, int64_t ldb, int64_t i0,
                   int64_t i1, int64_t n, int64_t k) {
    if (i0 >= i1 || n <= 0 || k <= 0) return;
    // Per-thread pack scratch: contents are fully rewritten per block, so
    // results never depend on which worker ran which band.
    thread_local std::vector<float> bpack;
    thread_local std::vector<float> apack;
    for (int64_t jc = 0; jc < n; jc += NC) {
      const int64_t nc = std::min(NC, n - jc);
      for (int64_t kb = 0; kb < k; kb += KC) {
        const int64_t kc = std::min(KC, k - kb);
        pack_b(bpack, b + kb * ldb + jc, ldb, kc, nc);
        for (int64_t i = i0; i < i1; i += MR) {
          const int64_t mr = std::min<int64_t>(MR, i1 - i);
          const float* abase;
          if (a_trans) {
            pack_at(apack, a + kb * lda + i, lda, kc, mr);
            abase = apack.data();
          } else {
            abase = a + i * lda + kb;
          }
          for (int64_t pan = 0; pan * NR < nc; ++pan) {
            const int64_t nr = std::min<int64_t>(NR, nc - pan * NR);
            float* ctile = c + i * ldc + jc + pan * NR;
            const float* bpanel = bpack.data() + pan * kc * NR;
            if (a_trans) {
              micro_dispatch<true>(mr, ctile, ldc, abase, lda, bpanel, kc,
                                   nr);
            } else {
              micro_dispatch<false>(mr, ctile, ldc, abase, lda, bpanel, kc,
                                    nr);
            }
          }
        }
      }
    }
  }
};

}  // namespace apollo::simd::detail
