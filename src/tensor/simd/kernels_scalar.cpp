// Scalar reference backend — the conformance baseline every vector backend
// is pinned against (tests/simd_conformance_test.cpp) and the portable
// fallback for CPUs without AVX2.
//
// The GEMM and reduction bodies are the repo's historical streaming-scalar
// kernels, moved here verbatim so APOLLO_SIMD=scalar reproduces the
// pre-dispatch trajectories. The elementwise kernels pin their accumulate
// to a single rounding with std::fma: that makes them bit-exact against the
// fused-multiply-add vector backends at every level (the cross-level
// exactness contract in simd.h).
#include <algorithm>
#include <cmath>

#include "tensor/simd/kernels_decl.h"

namespace apollo::simd::detail {

void gemm_scalar(float* c, int64_t ldc, const float* a, int64_t lda,
                 bool a_trans, const float* b, int64_t ldb, int64_t i0,
                 int64_t i1, int64_t n, int64_t k) {
  if (i0 >= i1 || n <= 0) return;
  if (!a_trans) {
    // i-k-j ordering: the inner loop streams rows of B and C; each c[i][j]
    // accumulates over p in ascending order.
    for (int64_t i = i0; i < i1; ++i) {
      float* __restrict crow = c + i * ldc;
      const float* __restrict arow = a + i * lda;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.f) continue;
        const float* __restrict brow = b + p * ldb;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return;
  }
  // C = Aᵀ·B: p-outer streaming restricted to the band — every c[i][j]
  // still accumulates over p ascending, independent of the band split.
  for (int64_t p = 0; p < k; ++p) {
    const float* __restrict arow = a + p * lda;
    const float* __restrict brow = b + p * ldb;
    for (int64_t i = i0; i < i1; ++i) {
      const float av = arow[i];
      if (av == 0.f) continue;
      float* __restrict crow = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void axpy_scalar(float* y, const float* x, float alpha, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void scale_scalar(float* y, float alpha, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] *= alpha;
}

void hadamard_scalar(float* y, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] *= x[i];
}

double sum_scalar(const float* x, int64_t n) {
  double acc = 0;
  for (int64_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

double sumsq_scalar(const float* x, int64_t n) {
  double acc = 0;
  for (int64_t i = 0; i < n; ++i)
    acc += static_cast<double>(x[i]) * x[i];
  return acc;
}

float dot_scalar(const float* a, const float* b, int64_t n) {
  float acc = 0.f;
  for (int64_t i = 0; i < n; ++i) acc = std::fma(a[i], b[i], acc);
  return acc;
}

float abs_max_scalar(const float* x, int64_t n) {
  float mx = 0.f;
  for (int64_t i = 0; i < n; ++i) mx = std::max(mx, std::fabs(x[i]));
  return mx;
}

void exp_scalar(float* dst, const float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = std::exp(src[i]);
}

void softmax_scalar(float* dst, const float* src, int64_t n) {
  float mx = src[0];
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, src[i]);
  double denom = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float e = std::exp(src[i] - mx);
    dst[i] = e;
    denom += e;
  }
  const float inv = static_cast<float>(1.0 / denom);
  for (int64_t i = 0; i < n; ++i) dst[i] *= inv;
}

float rmsnorm_row_scalar(float* dst, const float* src, const float* w,
                         int64_t n, float eps) {
  const double ss = sumsq_scalar(src, n);
  const float ir =
      1.f / std::sqrt(static_cast<float>(ss / static_cast<double>(n)) + eps);
  for (int64_t i = 0; i < n; ++i) dst[i] = src[i] * ir * w[i];
  return ir;
}

void silu_scalar(float* y, float* sig, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float s = 1.f / (1.f + std::exp(-x[i]));
    sig[i] = s;
    y[i] = x[i] * s;
  }
}

}  // namespace apollo::simd::detail
