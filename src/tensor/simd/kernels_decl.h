// Internal: per-backend kernel entry points wired into the KernelTables by
// dispatch.cpp. One set of symbols per dispatch level; the AVX2/AVX-512
// definitions live in translation units compiled with the matching -m flags
// and are only ever *called* after a cpuid check.
#pragma once

#include <cstdint>

namespace apollo::simd::detail {

#define APOLLO_SIMD_DECLARE_BACKEND(SUFFIX)                                  \
  void gemm_##SUFFIX(float* c, int64_t ldc, const float* a, int64_t lda,     \
                     bool a_trans, const float* b, int64_t ldb, int64_t i0,  \
                     int64_t i1, int64_t n, int64_t k);                      \
  void axpy_##SUFFIX(float* y, const float* x, float alpha, int64_t n);      \
  void scale_##SUFFIX(float* y, float alpha, int64_t n);                     \
  void hadamard_##SUFFIX(float* y, const float* x, int64_t n);               \
  double sum_##SUFFIX(const float* x, int64_t n);                            \
  double sumsq_##SUFFIX(const float* x, int64_t n);                          \
  float dot_##SUFFIX(const float* a, const float* b, int64_t n);             \
  float abs_max_##SUFFIX(const float* x, int64_t n);                         \
  void exp_##SUFFIX(float* dst, const float* src, int64_t n);                \
  void softmax_##SUFFIX(float* dst, const float* src, int64_t n);            \
  float rmsnorm_row_##SUFFIX(float* dst, const float* src, const float* w,   \
                             int64_t n, float eps);                          \
  void silu_##SUFFIX(float* y, float* sig, const float* x, int64_t n)

APOLLO_SIMD_DECLARE_BACKEND(scalar);
#if defined(__x86_64__) || defined(_M_X64)
APOLLO_SIMD_DECLARE_BACKEND(avx2);
APOLLO_SIMD_DECLARE_BACKEND(avx512);
#endif

#undef APOLLO_SIMD_DECLARE_BACKEND

}  // namespace apollo::simd::detail
