// Runtime-dispatched SIMD kernel layer (DESIGN.md §12).
//
// Every dense hot-loop primitive in the repo — GEMM, elementwise updates,
// whole-tensor reductions, softmax, RMSNorm, SiLU — is reachable through a
// per-level KernelTable: a portable scalar reference, an AVX2+FMA backend,
// and an AVX-512 backend. The level is chosen once at startup from cpuid,
// overridable with APOLLO_SIMD=scalar|avx2|avx512 (docs/ENVVARS.md) and, for
// tests and benches, with set_level().
//
// Determinism contract:
//   * For a FIXED level, every kernel is bit-identical run-to-run and for
//     any APOLLO_THREADS value: callers partition work over the
//     deterministic fixed-partition pool (core/threadpool.h) and each
//     output element's accumulation order is a pure function of the shape,
//     never of the partition. Vectorized reductions use a fixed-width lane
//     tree (lane j accumulates indices ≡ j mod width) reduced in ascending
//     lane order, then a sequential scalar tail.
//   * ACROSS levels, elementwise kernels (axpy/scale/hadamard/add/sub) are
//     bit-exact — both sides pin the accumulate to a single rounding via
//     fma. GEMM, reductions, softmax, RMSNorm and SiLU reorder their
//     contractions per level (and use a polynomial exp), so cross-level
//     agreement is bounded-ULP, asserted by tests/simd_conformance_test.cpp.
//
// Raw intrinsics are confined to src/tensor/simd/ — enforced by the
// apollo-lint `raw-simd-intrinsic` rule.
#pragma once

#include <cstdint>
#include <vector>

namespace apollo::simd {

enum class Level : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

// "scalar" / "avx2" / "avx512".
const char* level_name(Level level);

// Highest level this CPU supports (cpuid), independent of any override.
Level max_supported_level();

// Every level available on this CPU, ascending (always includes kScalar).
std::vector<Level> available_levels();

// The level kernels dispatch to: set_level() override if any, else
// APOLLO_SIMD if set (unsupported values fall back with a one-line stderr
// warning), else max_supported_level().
Level active_level();

// Test/bench hook: force a level for the current process. Returns false
// (and changes nothing) when the CPU does not support `level`.
bool set_level(Level level);

// Drop the set_level() override, restoring env/cpuid resolution.
void clear_level_override();

// One dispatch level's kernel set. All pointers are non-null. Row strides
// (ld*) are in floats and may exceed the logical width (padded / strided
// views); buffers need no particular alignment.
struct KernelTable {
  Level level;

  // GEMM micro-kernel row-tile height; callers align threadpool partition
  // boundaries to it so every lane starts on a fresh register tile.
  int64_t gemm_row_align;

  // C[i0..i1) += A(op)·B for the row band [i0, i1) of C (caller zeroes C
  // first for the non-accumulating case). A is m×k row-major when !a_trans
  // (element (i,p) at a[i*lda + p]) and k×m row-major when a_trans
  // (element (i,p) at a[p*lda + i]). B is k×n with row stride ldb.
  void (*gemm)(float* c, int64_t ldc, const float* a, int64_t lda,
               bool a_trans, const float* b, int64_t ldb, int64_t i0,
               int64_t i1, int64_t n, int64_t k);

  // y[i] = fma(alpha, x[i], y[i]) — single rounding, exact at every level.
  void (*axpy)(float* y, const float* x, float alpha, int64_t n);
  // y[i] *= alpha
  void (*scale)(float* y, float alpha, int64_t n);
  // y[i] *= x[i]
  void (*hadamard)(float* y, const float* x, int64_t n);

  // Σ x[i] accumulated in double.
  double (*sum)(const float* x, int64_t n);
  // Σ x[i]² accumulated in double.
  double (*sumsq)(const float* x, int64_t n);
  // Σ a[i]·b[i] accumulated in float (attention-score precision).
  float (*dot)(const float* a, const float* b, int64_t n);
  // max |x[i]| (0 for n == 0).
  float (*abs_max)(const float* x, int64_t n);

  // dst[i] = exp(src[i]) — libm at scalar level, ≤2-ulp polynomial at
  // vector levels. Vector levels clamp inputs to [-87.34, 88.38] (Cephes
  // MAXLOGF), saturating instead of overflowing to inf or underflowing to
  // denormals; ULP agreement with scalar holds inside that range. Softmax
  // shifts by the row max first, so its inputs are always ≤ 0 and the only
  // divergence is in probabilities below ~1e-38.
  void (*exp)(float* dst, const float* src, int64_t n);
  // Numerically-stable softmax of one row (n ≥ 1): dst = exp(src − max) /
  // Σ exp(src − max), denominator accumulated in double. In-place OK.
  void (*softmax)(float* dst, const float* src, int64_t n);
  // RMSNorm one row: returns ir = 1/√(mean(src²) + eps) and writes
  // dst[c] = src[c]·ir·w[c]. In-place OK.
  float (*rmsnorm_row)(float* dst, const float* src, const float* w,
                       int64_t n, float eps);
  // SiLU: sig[i] = σ(x[i]), y[i] = x[i]·sig[i].
  void (*silu)(float* y, float* sig, const float* x, int64_t n);
};

// Kernel table for the active level / an explicit level. Requesting an
// unsupported explicit level aborts (tests iterate available_levels()).
const KernelTable& table();
const KernelTable& table(Level level);

}  // namespace apollo::simd
