// AVX2+FMA backend: 8-lane f32 vectors, 6×16 GEMM register tile
// (12 of 16 ymm accumulators). Compiled with -mavx2 -mfma (see
// src/CMakeLists.txt); only reached after the cpuid gate in dispatch.cpp.
#include <immintrin.h>

#include <cstdint>

#include "tensor/simd/kernels_decl.h"
#include "tensor/simd/kernels_tmpl.h"

namespace apollo::simd::detail {
namespace {

// int32 lane masks for partial loads/stores: kMaskTable[8 - m] has the first
// m lanes set. (High bit of each int32 drives maskload/maskstore.)
alignas(32) constexpr int32_t kMaskTable[16] = {
    -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0,
};

struct VecAvx2 {
  static constexpr int64_t kWidth = 8;
  static constexpr int64_t kGemmMr = 6;
  using F = __m256;
  struct DAcc {
    __m256d lo;  // lanes 0..3
    __m256d hi;  // lanes 4..7
  };

  static __m256i mask(int64_t m) {
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kMaskTable + 8 - m));
  }

  static F zero() { return _mm256_setzero_ps(); }
  static F bcast(float x) { return _mm256_set1_ps(x); }
  static F load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, F v) { _mm256_storeu_ps(p, v); }
  static F load_partial(const float* p, int64_t m) {
    return _mm256_maskload_ps(p, mask(m));
  }
  static void store_partial(float* p, F v, int64_t m) {
    _mm256_maskstore_ps(p, mask(m), v);
  }

  static F add(F a, F b) { return _mm256_add_ps(a, b); }
  static F sub(F a, F b) { return _mm256_sub_ps(a, b); }
  static F mul(F a, F b) { return _mm256_mul_ps(a, b); }
  static F div(F a, F b) { return _mm256_div_ps(a, b); }
  static F min(F a, F b) { return _mm256_min_ps(a, b); }
  static F max(F a, F b) { return _mm256_max_ps(a, b); }
  static F fmadd(F a, F b, F c) { return _mm256_fmadd_ps(a, b, c); }
  static F abs(F v) {
    return _mm256_andnot_ps(_mm256_set1_ps(-0.f), v);
  }
  static F round_nearest(F v) {
    return _mm256_round_ps(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  // 2^n for integral-valued n in [-126, 127], via the exponent field.
  static F pow2i(F n) {
    const __m256i e = _mm256_add_epi32(_mm256_cvtps_epi32(n),
                                       _mm256_set1_epi32(127));
    return _mm256_castsi256_ps(_mm256_slli_epi32(e, 23));
  }

  static DAcc dzero() {
    return {_mm256_setzero_pd(), _mm256_setzero_pd()};
  }
  static void dadd_f(DAcc& acc, F v) {
    acc.lo = _mm256_add_pd(acc.lo,
                           _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc.hi = _mm256_add_pd(acc.hi,
                           _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  static void dfma_f(DAcc& acc, F a, F b) {
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(a));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(a, 1));
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(b));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(b, 1));
    acc.lo = _mm256_fmadd_pd(alo, blo, acc.lo);
    acc.hi = _mm256_fmadd_pd(ahi, bhi, acc.hi);
  }
  // Lane-ascending (0→7) summation: part of the fixed contraction order.
  static double dreduce_ordered(const DAcc& acc) {
    alignas(32) double lanes[8];
    _mm256_store_pd(lanes, acc.lo);
    _mm256_store_pd(lanes + 4, acc.hi);
    double s = 0;
    for (int j = 0; j < 8; ++j) s += lanes[j];
    return s;
  }
  static float reduce_add_ordered(F v) {
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, v);
    float s = 0.f;
    for (int j = 0; j < 8; ++j) s += lanes[j];
    return s;
  }
  static float reduce_max(F v) {
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, v);
    float m = lanes[0];
    for (int j = 1; j < 8; ++j) m = lanes[j] > m ? lanes[j] : m;
    return m;
  }
};

using K = Kern<VecAvx2>;

}  // namespace

void gemm_avx2(float* c, int64_t ldc, const float* a, int64_t lda,
               bool a_trans, const float* b, int64_t ldb, int64_t i0,
               int64_t i1, int64_t n, int64_t k) {
  K::gemm(c, ldc, a, lda, a_trans, b, ldb, i0, i1, n, k);
}
void axpy_avx2(float* y, const float* x, float alpha, int64_t n) {
  K::axpy(y, x, alpha, n);
}
void scale_avx2(float* y, float alpha, int64_t n) { K::scale(y, alpha, n); }
void hadamard_avx2(float* y, const float* x, int64_t n) {
  K::hadamard(y, x, n);
}
double sum_avx2(const float* x, int64_t n) { return K::sum(x, n); }
double sumsq_avx2(const float* x, int64_t n) { return K::sumsq(x, n); }
float dot_avx2(const float* a, const float* b, int64_t n) {
  return K::dot(a, b, n);
}
float abs_max_avx2(const float* x, int64_t n) { return K::abs_max(x, n); }
void exp_avx2(float* dst, const float* src, int64_t n) {
  K::vexp_buf(dst, src, n);
}
void softmax_avx2(float* dst, const float* src, int64_t n) {
  K::softmax(dst, src, n);
}
float rmsnorm_row_avx2(float* dst, const float* src, const float* w,
                       int64_t n, float eps) {
  return K::rmsnorm_row(dst, src, w, n, eps);
}
void silu_avx2(float* y, float* sig, const float* x, int64_t n) {
  K::silu(y, sig, x, n);
}

}  // namespace apollo::simd::detail
