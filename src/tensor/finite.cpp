#include "tensor/finite.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace apollo {

namespace {
std::atomic<int> g_override{-1};
}  // namespace

bool finite_checks_enabled() {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static const bool env_on = [] {
    const char* e = std::getenv("APOLLO_CHECK_FINITE");
    return e != nullptr && e[0] == '1';
  }();
  return env_on;
}

void finite_checks_override(int mode) {
  g_override.store(mode, std::memory_order_relaxed);
}

int64_t first_nonfinite(const Matrix& m) {
  const float* d = m.data();
  for (int64_t i = 0; i < m.size(); ++i)
    if (!std::isfinite(d[i])) return i;
  return -1;
}

void check_finite_or_die(const Matrix& m, const char* tensor,
                         const char* when) {
  if (!finite_checks_enabled()) return;
  const int64_t i = first_nonfinite(m);
  if (i < 0) return;
  const float v = m[i];
  std::fprintf(stderr,
               "APOLLO_CHECK_FINITE: non-finite value %s in tensor \"%s\" "
               "(%lldx%lld) at index %lld (row %lld, col %lld) after %s\n",
               std::isnan(v) ? "nan" : (v > 0 ? "+inf" : "-inf"), tensor,
               static_cast<long long>(m.rows()),
               static_cast<long long>(m.cols()), static_cast<long long>(i),
               static_cast<long long>(m.cols() ? i / m.cols() : 0),
               static_cast<long long>(m.cols() ? i % m.cols() : 0), when);
  std::abort();
}

}  // namespace apollo
