// Debug numeric-safety mode: NaN/Inf detection hooks.
//
// Low-rank-state optimizers are where silent numeric corruption hides —
// a single NaN in a projected moment poisons every later step but may not
// surface in the loss for thousands of iterations. With APOLLO_CHECK_FINITE=1
// in the environment, the library verifies that
//   * every gradient produced during autograd backward, and
//   * every parameter written by an optimizer step()
// is free of NaN/Inf, aborting at the *first* corrupt tensor with its name
// and the index of the first bad value. Off by default; when off the only
// cost at each hook site is one predictable branch on a cached flag.
#pragma once

#include <cstdint>

#include "tensor/matrix.h"

namespace apollo {

// True when APOLLO_CHECK_FINITE=1. The environment is read once and cached;
// finite_checks_override() takes precedence when set.
bool finite_checks_enabled();

// Force the mode on (1) / off (0), or defer to the environment again (-1).
// For tests and tooling; not part of the stable API.
void finite_checks_override(int mode);

// Index of the first non-finite element of `m`, or -1 if all finite.
int64_t first_nonfinite(const Matrix& m);

// Abort with a diagnostic naming `tensor` (e.g. a parameter name or autograd
// op) and `when` (e.g. "AdamW step") if `m` contains NaN/Inf. No-op when the
// mode is disabled.
void check_finite_or_die(const Matrix& m, const char* tensor, const char* when);

}  // namespace apollo
