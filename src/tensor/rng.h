// Deterministic random number generation.
//
// All randomness in the library flows through an explicitly seeded Rng so
// that every experiment is bit-reproducible. APOLLO's random projections
// additionally rely on the ability to *regenerate* a projection matrix from
// a stored 8-byte seed instead of storing the matrix itself — that property
// is what drives the optimizer-state memory accounting in Table 1.
#pragma once

#include <cstdint>

namespace apollo {

// xoshiro256** by Blackman & Vigna, seeded through SplitMix64.
// Small, fast, and high quality; passes BigCrush.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(uint64_t seed);

  // Uniform 64-bit integer.
  uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();
  float next_float() { return static_cast<float>(next_double()); }

  // Uniform integer in [0, n).
  uint64_t next_below(uint64_t n);

  // Standard normal via Box–Muller (caches the second deviate).
  double next_gaussian();

  // Derive an independent stream seed (for per-parameter projection seeds).
  uint64_t split() { return next_u64() ^ 0xd1b54a32d192ed03ull; }

  // Full generator state, exposed for exact-resume checkpointing.
  struct State {
    uint64_t s[4];
    bool has_cached;
    double cached;
  };
  State state() const { return {{s_[0], s_[1], s_[2], s_[3]}, has_cached_, cached_}; }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    has_cached_ = st.has_cached;
    cached_ = st.cached;
  }

 private:
  uint64_t s_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace apollo
