// Little-endian binary stream helpers shared by the checkpoint writer
// (train/checkpoint.cpp) and the optimizer-state serializers. All functions return false on short
// reads/writes so callers can surface errors without exceptions.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>

#include "tensor/matrix.h"

namespace apollo {

// n == 0 short-circuits: empty matrices/strings have a null data() pointer,
// and passing null to fwrite/fread is UB even for zero-length transfers.
inline bool write_bytes(std::FILE* f, const void* p, size_t n) {
  return n == 0 || std::fwrite(p, 1, n, f) == n;
}
inline bool read_bytes(std::FILE* f, void* p, size_t n) {
  return n == 0 || std::fread(p, 1, n, f) == n;
}

template <typename T>
bool write_pod(std::FILE* f, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return write_bytes(f, &v, sizeof v);
}
template <typename T>
bool read_pod(std::FILE* f, T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return read_bytes(f, &v, sizeof v);
}

inline bool write_string(std::FILE* f, const std::string& s) {
  const uint32_t n = static_cast<uint32_t>(s.size());
  return write_pod(f, n) && write_bytes(f, s.data(), n);
}
inline bool read_string(std::FILE* f, std::string& s, uint32_t max = 4096) {
  uint32_t n = 0;
  if (!read_pod(f, n) || n > max) return false;
  s.resize(n);
  return read_bytes(f, s.data(), n);
}

inline bool write_matrix(std::FILE* f, const Matrix& m) {
  const int64_t r = m.rows(), c = m.cols();
  return write_pod(f, r) && write_pod(f, c) &&
         write_bytes(f, m.data(),
                     static_cast<size_t>(m.size()) * sizeof(float));
}
inline bool read_matrix(std::FILE* f, Matrix& m) {
  int64_t r = 0, c = 0;
  if (!read_pod(f, r) || !read_pod(f, c) || r < 0 || c < 0 ||
      r * c > (1ll << 32))
    return false;
  m.reshape_discard(r, c);
  return read_bytes(f, m.data(),
                    static_cast<size_t>(m.size()) * sizeof(float));
}

}  // namespace apollo
