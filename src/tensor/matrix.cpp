#include "tensor/matrix.h"

namespace apollo {

void Matrix::fill_gaussian(Rng& rng, float mean, float stddev) {
  for (auto& v : data_)
    v = mean + stddev * static_cast<float>(rng.next_gaussian());
}

void Matrix::fill_uniform(Rng& rng, float lo, float hi) {
  for (auto& v : data_) v = lo + (hi - lo) * rng.next_float();
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (int64_t r = 0; r < rows_; ++r)
    for (int64_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

}  // namespace apollo
