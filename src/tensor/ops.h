// Dense kernels over Matrix. The O(mnk) kernels and row/column-wise
// primitives fan out over the deterministic fixed-partition pool in
// core/threadpool.h; whole-tensor reductions stay sequential. Every kernel
// produces bit-identical outputs for any APOLLO_THREADS value — the same
// result as the historical single-threaded code — which the reproducibility
// tests rely on.
#pragma once

#include <vector>

#include "tensor/matrix.h"

namespace apollo {

// C = A·B (+ C if accumulate). A: m×k, B: k×n, C: m×n.
void matmul(Matrix& c, const Matrix& a, const Matrix& b,
            bool accumulate = false);

// C = Aᵀ·B (+ C if accumulate). A: k×m, B: k×n, C: m×n.
void matmul_at(Matrix& c, const Matrix& a, const Matrix& b,
               bool accumulate = false);

// C = A·Bᵀ (+ C if accumulate). A: m×k, B: n×k, C: m×n.
void matmul_bt(Matrix& c, const Matrix& a, const Matrix& b,
               bool accumulate = false);

// Convenience allocating forms.
Matrix matmul(const Matrix& a, const Matrix& b);
Matrix matmul_at(const Matrix& a, const Matrix& b);
Matrix matmul_bt(const Matrix& a, const Matrix& b);

// y += alpha * x
void axpy(Matrix& y, float alpha, const Matrix& x);
// y = y * alpha
void scale_inplace(Matrix& y, float alpha);
// y = y + x
void add_inplace(Matrix& y, const Matrix& x);
// y = y - x
void sub_inplace(Matrix& y, const Matrix& x);
// y = y ⊙ x
void hadamard_inplace(Matrix& y, const Matrix& x);
// out = a - b
Matrix sub(const Matrix& a, const Matrix& b);

// ℓ2 norm of the whole matrix (Frobenius).
double frobenius_norm(const Matrix& m);
// Sum of all elements.
double sum(const Matrix& m);
// Mean of all elements.
double mean(const Matrix& m);
// Max |element|.
float abs_max(const Matrix& m);

// Per-column / per-row ℓ2 norms.
std::vector<float> col_norms(const Matrix& m);
std::vector<float> row_norms(const Matrix& m);

// Scale column j of m by s[j] (s.size() == cols), or row i by s[i].
void scale_cols_inplace(Matrix& m, const std::vector<float>& s);
void scale_rows_inplace(Matrix& m, const std::vector<float>& s);

// Max |a - b| — used by tests.
float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace apollo
