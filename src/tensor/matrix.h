// Dense row-major float32 matrix — the single tensor type of the library.
//
// Everything in this reproduction (gradients, optimizer states, activations)
// is matrix-shaped, matching the paper's formulation where each trainable
// weight is W ∈ R^{m×n}. Higher-rank activations (batch × seq × dim) are
// stored flattened as (batch·seq) × dim and re-interpreted by the ops that
// need sequence structure (attention).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/check.h"
#include "tensor/rng.h"

namespace apollo {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.f) {
    APOLLO_CHECK(rows >= 0 && cols >= 0);
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t r, int64_t c) {
    APOLLO_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    APOLLO_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  float* row(int64_t r) { return data() + r * cols_; }
  const float* row(int64_t r) const { return data() + r * cols_; }

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.f); }

  // Resize, discarding contents (zero-initialized). Explicitly an
  // allocate-and-discard API: hot-path callers use it for one-time lazy
  // state init (a no-op once the shape is stable).
  void reshape_discard(int64_t rows, int64_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<size_t>(rows * cols), 0.f);  // lint:allow(hot-path-alloc)
  }

  // In-place element access helpers used by samplers.
  void fill_gaussian(Rng& rng, float mean = 0.f, float stddev = 1.f);
  void fill_uniform(Rng& rng, float lo, float hi);

  Matrix transposed() const;

  // Deep equality (exact bit comparison) — used by determinism tests.
  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace apollo
