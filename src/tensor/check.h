// Lightweight invariant checking used across the library.
//
// CHECK() is always on (these guard API misuse, not hot inner loops);
// DCHECK() compiles out in release builds and is used inside kernels.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace apollo {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace apollo

#define APOLLO_CHECK(cond)                                         \
  do {                                                             \
    if (!(cond)) ::apollo::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define APOLLO_CHECK_MSG(cond, msg)                                  \
  do {                                                               \
    if (!(cond)) ::apollo::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define APOLLO_DCHECK(cond) ((void)0)
#else
#define APOLLO_DCHECK(cond) APOLLO_CHECK(cond)
#endif
