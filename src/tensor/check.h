// Lightweight invariant checking used across the library.
//
// CHECK() is always on (these guard API misuse, not hot inner loops);
// DCHECK() compiles out in release builds and is used inside kernels.
//
// The value-printing variants (CHECK_EQ/NE/LT/LE/GT/GE) stream both
// operands into the failure message, and the shape macros print full
// matrix shapes — use them at public entry points so a bad call site is
// diagnosable from the abort message alone.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace apollo {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

// Failure path of the binary comparison macros: prints both operand
// expressions and their runtime values.
template <class A, class B>
[[noreturn]] void check_binop_failed(const char* a_expr, const char* op,
                                     const char* b_expr, const A& a,
                                     const B& b, const char* file, int line) {
  std::ostringstream os;
  os << a_expr << ' ' << op << ' ' << b_expr;
  std::ostringstream vals;
  vals << "values: " << a << " vs " << b;
  const std::string expr = os.str(), v = vals.str();
  check_failed(expr.c_str(), file, line, v.c_str());
}

// Failure path of the shape macros. Works on anything with rows()/cols().
template <class M>
[[noreturn]] void check_shape_failed(const char* a_expr, const char* b_expr,
                                     const M& a, const M& b, const char* file,
                                     int line) {
  std::ostringstream os;
  os << "shapes: " << a.rows() << 'x' << a.cols() << " vs " << b.rows() << 'x'
     << b.cols();
  std::ostringstream expr;
  expr << a_expr << " same shape as " << b_expr;
  const std::string e = expr.str(), v = os.str();
  check_failed(e.c_str(), file, line, v.c_str());
}

}  // namespace apollo

#define APOLLO_CHECK(cond)                                         \
  do {                                                             \
    if (!(cond)) ::apollo::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define APOLLO_CHECK_MSG(cond, msg)                                  \
  do {                                                               \
    if (!(cond)) ::apollo::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

// Binary comparisons that print both values on failure. Operands are
// evaluated exactly once.
#define APOLLO_CHECK_OP_(a, op, b)                                          \
  do {                                                                      \
    const auto& a_ = (a);                                                   \
    const auto& b_ = (b);                                                   \
    if (!(a_ op b_))                                                        \
      ::apollo::check_binop_failed(#a, #op, #b, a_, b_, __FILE__, __LINE__); \
  } while (0)

#define APOLLO_CHECK_EQ(a, b) APOLLO_CHECK_OP_(a, ==, b)
#define APOLLO_CHECK_NE(a, b) APOLLO_CHECK_OP_(a, !=, b)
#define APOLLO_CHECK_LT(a, b) APOLLO_CHECK_OP_(a, <, b)
#define APOLLO_CHECK_LE(a, b) APOLLO_CHECK_OP_(a, <=, b)
#define APOLLO_CHECK_GT(a, b) APOLLO_CHECK_OP_(a, >, b)
#define APOLLO_CHECK_GE(a, b) APOLLO_CHECK_OP_(a, >=, b)

// Shape preconditions for matrix-shaped arguments.
#define APOLLO_CHECK_SAME_SHAPE(a, b)                                     \
  do {                                                                    \
    const auto& a_ = (a);                                                 \
    const auto& b_ = (b);                                                 \
    if (a_.rows() != b_.rows() || a_.cols() != b_.cols())                 \
      ::apollo::check_shape_failed(#a, #b, a_, b_, __FILE__, __LINE__);   \
  } while (0)

#define APOLLO_CHECK_SHAPE(m, r, c)     \
  do {                                  \
    APOLLO_CHECK_EQ((m).rows(), (r));   \
    APOLLO_CHECK_EQ((m).cols(), (c));   \
  } while (0)

#ifdef NDEBUG
#define APOLLO_DCHECK(cond) ((void)0)
#else
#define APOLLO_DCHECK(cond) APOLLO_CHECK(cond)
#endif
