#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "core/threadpool.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/simd/simd.h"

namespace apollo {

namespace {

// Metric hook for the matmul family: one cached-flag branch when
// APOLLO_METRICS is off; counters are looked up once and cached per site.
#define APOLLO_MATMUL_METRICS(kernel, flops)                             \
  do {                                                                   \
    if (obs::telemetry_enabled()) {                                      \
      static obs::Counter& calls_ =                                      \
          obs::Registry::instance().counter("tensor." kernel ".calls");  \
      static obs::Counter& flops_ =                                      \
          obs::Registry::instance().counter("tensor." kernel ".flops");  \
      calls_.add(1);                                                     \
      flops_.add(flops);                                                 \
    }                                                                    \
  } while (0)

// Minimum useful FLOPs per pool lane: below this, dispatch overhead beats
// the parallel win and the kernel stays on the calling thread. Expressed as
// a row grain so parallel_for can reason in row units.
constexpr int64_t kMinFlopsPerLane = 1 << 15;

int64_t row_grain(int64_t flops_per_row) {
  return std::max<int64_t>(
      1, kMinFlopsPerLane / std::max<int64_t>(1, flops_per_row));
}

// Element grain for memory-bound element-wise kernels.
constexpr int64_t kElementGrain = 1 << 14;

}  // namespace

void matmul(Matrix& c, const Matrix& a, const Matrix& b, bool accumulate) {
  APOLLO_CHECK(a.cols() == b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  APOLLO_TRACE_SCOPE("matmul", "tensor");
  APOLLO_MATMUL_METRICS("matmul", 2 * m * k * n);
  if (!accumulate) {
    if (c.rows() != m || c.cols() != n) c.reshape_discard(m, n);
    c.zero();
  } else {
    APOLLO_CHECK(c.rows() == m && c.cols() == n);
  }
  // Rows of C are independent, so the pool partitions over i (band
  // boundaries aligned to the level's register-tile height); inside a band
  // the dispatched kernel accumulates each c[i][j] in an order that is a
  // pure function of the shape — bit-identical for any thread count.
  const simd::KernelTable& kt = simd::table();
  core::parallel_for(
      m,
      [&](int64_t i0, int64_t i1) {
        kt.gemm(c.data(), c.cols(), a.data(), a.cols(), /*a_trans=*/false,
                b.data(), b.cols(), i0, i1, n, k);
      },
      row_grain(2 * k * n), kt.gemm_row_align);
}

void matmul_at(Matrix& c, const Matrix& a, const Matrix& b, bool accumulate) {
  APOLLO_CHECK(a.rows() == b.rows());
  const int64_t k = a.rows(), m = a.cols(), n = b.cols();
  APOLLO_TRACE_SCOPE("matmul_at", "tensor");
  APOLLO_MATMUL_METRICS("matmul_at", 2 * m * k * n);
  if (!accumulate) {
    if (c.rows() != m || c.cols() != n) c.reshape_discard(m, n);
    c.zero();
  } else {
    APOLLO_CHECK(c.rows() == m && c.cols() == n);
  }
  // C rows are indexed by A's columns. Each lane covers its own band of C
  // rows (a_trans packing transposes A's band on the fly): writes stay
  // disjoint and every c[i][j] accumulates in a shape-pure order, so the
  // result matches the sequential call exactly.
  const simd::KernelTable& kt = simd::table();
  core::parallel_for(
      m,
      [&](int64_t i0, int64_t i1) {
        kt.gemm(c.data(), c.cols(), a.data(), a.cols(), /*a_trans=*/true,
                b.data(), b.cols(), i0, i1, n, k);
      },
      row_grain(2 * k * n), kt.gemm_row_align);
}

void matmul_bt(Matrix& c, const Matrix& a, const Matrix& b, bool accumulate) {
  APOLLO_CHECK(a.cols() == b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  APOLLO_TRACE_SCOPE("matmul_bt", "tensor");
  APOLLO_MATMUL_METRICS("matmul_bt", 2 * m * k * n);
  // Per-(i,j) dot products serialize on the reduction chain (~6× slower
  // than the streaming kernel); materializing Bᵀ once and streaming is a
  // large net win whenever the O(nk) transpose amortizes over O(mnk) work.
  if (m >= 4 && k >= 16) {
    Matrix bt = b.transposed();
    matmul(c, a, bt, accumulate);
    return;
  }
  if (!accumulate) {
    if (c.rows() != m || c.cols() != n) c.reshape_discard(m, n);
    c.zero();
  } else {
    APOLLO_CHECK(c.rows() == m && c.cols() == n);
  }
  const simd::KernelTable& kt = simd::table();
  core::parallel_for(
      m,
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const float* __restrict arow = a.row(i);
          float* __restrict crow = c.row(i);
          for (int64_t j = 0; j < n; ++j)
            crow[j] += kt.dot(arow, b.row(j), k);
        }
      },
      row_grain(2 * k * n));
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul(c, a, b);
  return c;
}
Matrix matmul_at(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_at(c, a, b);
  return c;
}
Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_bt(c, a, b);
  return c;
}

// Elementwise kernels are per-element pure (a single fma/mul per output),
// so any partition of the range yields the same bits at every dispatch
// level; each chunk hands its subrange straight to the level's kernel.
void axpy(Matrix& y, float alpha, const Matrix& x) {
  APOLLO_CHECK(y.same_shape(x));
  const simd::KernelTable& kt = simd::table();
  float* yd = y.data();
  const float* xd = x.data();
  core::parallel_for(
      y.size(),
      [&](int64_t i0, int64_t i1) { kt.axpy(yd + i0, xd + i0, alpha, i1 - i0); },
      kElementGrain);
}

void scale_inplace(Matrix& y, float alpha) {
  const simd::KernelTable& kt = simd::table();
  float* yd = y.data();
  core::parallel_for(
      y.size(),
      [&](int64_t i0, int64_t i1) { kt.scale(yd + i0, alpha, i1 - i0); },
      kElementGrain);
}

void add_inplace(Matrix& y, const Matrix& x) { axpy(y, 1.f, x); }

void sub_inplace(Matrix& y, const Matrix& x) { axpy(y, -1.f, x); }

void hadamard_inplace(Matrix& y, const Matrix& x) {
  APOLLO_CHECK(y.same_shape(x));
  const simd::KernelTable& kt = simd::table();
  float* yd = y.data();
  const float* xd = x.data();
  core::parallel_for(
      y.size(),
      [&](int64_t i0, int64_t i1) { kt.hadamard(yd + i0, xd + i0, i1 - i0); },
      kElementGrain);
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  sub_inplace(out, b);
  return out;
}

// Whole-tensor reductions stay single-threaded on purpose: splitting the
// accumulation across lanes would change the summation order (and thus the
// float result) with the thread count, breaking the pool's bit-identity
// guarantee. They are O(n) against the O(mnk) kernels above. The dispatched
// kernels keep that guarantee per level: the vector backends use a fixed
// lane tree reduced in ascending lane order plus a sequential tail.
double frobenius_norm(const Matrix& m) {
  return std::sqrt(simd::table().sumsq(m.data(), m.size()));
}

double sum(const Matrix& m) { return simd::table().sum(m.data(), m.size()); }

double mean(const Matrix& m) {
  return m.size() == 0 ? 0.0 : sum(m) / static_cast<double>(m.size());
}

float abs_max(const Matrix& m) {
  return simd::table().abs_max(m.data(), m.size());
}

std::vector<float> col_norms(const Matrix& m) {
  const int64_t rows = m.rows(), cols = m.cols();
  std::vector<double> acc(static_cast<size_t>(cols), 0.0);
  // Partition over columns: each per-column reduction runs ascending over
  // rows inside one lane, matching the sequential accumulation order.
  core::parallel_for(
      cols,
      [&](int64_t c0, int64_t c1) {
        for (int64_t r = 0; r < rows; ++r) {
          const float* row = m.row(r);
          for (int64_t c = c0; c < c1; ++c)
            acc[static_cast<size_t>(c)] +=
                static_cast<double>(row[c]) * row[c];
        }
      },
      row_grain(2 * rows));
  std::vector<float> out(acc.size());
  for (size_t i = 0; i < acc.size(); ++i)
    out[i] = static_cast<float>(std::sqrt(acc[i]));
  return out;
}

std::vector<float> row_norms(const Matrix& m) {
  const int64_t rows = m.rows(), cols = m.cols();
  const simd::KernelTable& kt = simd::table();
  std::vector<float> out(static_cast<size_t>(rows));
  core::parallel_for(
      rows,
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r)
          out[static_cast<size_t>(r)] =
              static_cast<float>(std::sqrt(kt.sumsq(m.row(r), cols)));
      },
      row_grain(2 * cols));
  return out;
}

void scale_cols_inplace(Matrix& m, const std::vector<float>& s) {
  APOLLO_CHECK(static_cast<int64_t>(s.size()) == m.cols());
  const int64_t cols = m.cols();
  core::parallel_for(
      m.rows(),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          float* row = m.row(r);
          for (int64_t c = 0; c < cols; ++c)
            row[c] *= s[static_cast<size_t>(c)];
        }
      },
      row_grain(cols));
}

void scale_rows_inplace(Matrix& m, const std::vector<float>& s) {
  APOLLO_CHECK(static_cast<int64_t>(s.size()) == m.rows());
  const int64_t cols = m.cols();
  core::parallel_for(
      m.rows(),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          float* row = m.row(r);
          const float sv = s[static_cast<size_t>(r)];
          for (int64_t c = 0; c < cols; ++c) row[c] *= sv;
        }
      },
      row_grain(cols));
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  APOLLO_CHECK(a.same_shape(b));
  float mx = 0.f;
  for (int64_t i = 0; i < a.size(); ++i)
    mx = std::max(mx, std::fabs(a[i] - b[i]));
  return mx;
}

}  // namespace apollo
