#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace apollo {

void matmul(Matrix& c, const Matrix& a, const Matrix& b, bool accumulate) {
  APOLLO_CHECK(a.cols() == b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  if (!accumulate) {
    if (c.rows() != m || c.cols() != n) c.reshape_discard(m, n);
    c.zero();
  } else {
    APOLLO_CHECK(c.rows() == m && c.cols() == n);
  }
  // i-k-j ordering: the inner loop streams rows of B and C and vectorizes.
  for (int64_t i = 0; i < m; ++i) {
    float* __restrict crow = c.row(i);
    const float* __restrict arow = a.row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      const float* __restrict brow = b.row(p);
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_at(Matrix& c, const Matrix& a, const Matrix& b, bool accumulate) {
  APOLLO_CHECK(a.rows() == b.rows());
  const int64_t k = a.rows(), m = a.cols(), n = b.cols();
  if (!accumulate) {
    if (c.rows() != m || c.cols() != n) c.reshape_discard(m, n);
    c.zero();
  } else {
    APOLLO_CHECK(c.rows() == m && c.cols() == n);
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* __restrict arow = a.row(p);
    const float* __restrict brow = b.row(p);
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.f) continue;
      float* __restrict crow = c.row(i);
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_bt(Matrix& c, const Matrix& a, const Matrix& b, bool accumulate) {
  APOLLO_CHECK(a.cols() == b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  // Per-(i,j) dot products serialize on the reduction chain (~6× slower
  // than the streaming kernel); materializing Bᵀ once and streaming is a
  // large net win whenever the O(nk) transpose amortizes over O(mnk) work.
  if (m >= 4 && k >= 16) {
    Matrix bt = b.transposed();
    matmul(c, a, bt, accumulate);
    return;
  }
  if (!accumulate) {
    if (c.rows() != m || c.cols() != n) c.reshape_discard(m, n);
    c.zero();
  } else {
    APOLLO_CHECK(c.rows() == m && c.cols() == n);
  }
  for (int64_t i = 0; i < m; ++i) {
    const float* __restrict arow = a.row(i);
    float* __restrict crow = c.row(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* __restrict brow = b.row(j);
      float acc = 0.f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul(c, a, b);
  return c;
}
Matrix matmul_at(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_at(c, a, b);
  return c;
}
Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_bt(c, a, b);
  return c;
}

void axpy(Matrix& y, float alpha, const Matrix& x) {
  APOLLO_CHECK(y.same_shape(x));
  float* __restrict yd = y.data();
  const float* __restrict xd = x.data();
  const int64_t n = y.size();
  for (int64_t i = 0; i < n; ++i) yd[i] += alpha * xd[i];
}

void scale_inplace(Matrix& y, float alpha) {
  float* __restrict yd = y.data();
  const int64_t n = y.size();
  for (int64_t i = 0; i < n; ++i) yd[i] *= alpha;
}

void add_inplace(Matrix& y, const Matrix& x) { axpy(y, 1.f, x); }

void sub_inplace(Matrix& y, const Matrix& x) { axpy(y, -1.f, x); }

void hadamard_inplace(Matrix& y, const Matrix& x) {
  APOLLO_CHECK(y.same_shape(x));
  float* __restrict yd = y.data();
  const float* __restrict xd = x.data();
  const int64_t n = y.size();
  for (int64_t i = 0; i < n; ++i) yd[i] *= xd[i];
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  sub_inplace(out, b);
  return out;
}

double frobenius_norm(const Matrix& m) {
  double acc = 0;
  const float* d = m.data();
  for (int64_t i = 0; i < m.size(); ++i)
    acc += static_cast<double>(d[i]) * d[i];
  return std::sqrt(acc);
}

double sum(const Matrix& m) {
  double acc = 0;
  const float* d = m.data();
  for (int64_t i = 0; i < m.size(); ++i) acc += d[i];
  return acc;
}

double mean(const Matrix& m) {
  return m.size() == 0 ? 0.0 : sum(m) / static_cast<double>(m.size());
}

float abs_max(const Matrix& m) {
  float mx = 0.f;
  const float* d = m.data();
  for (int64_t i = 0; i < m.size(); ++i) mx = std::max(mx, std::fabs(d[i]));
  return mx;
}

std::vector<float> col_norms(const Matrix& m) {
  std::vector<double> acc(static_cast<size_t>(m.cols()), 0.0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r);
    for (int64_t c = 0; c < m.cols(); ++c)
      acc[static_cast<size_t>(c)] += static_cast<double>(row[c]) * row[c];
  }
  std::vector<float> out(acc.size());
  for (size_t i = 0; i < acc.size(); ++i)
    out[i] = static_cast<float>(std::sqrt(acc[i]));
  return out;
}

std::vector<float> row_norms(const Matrix& m) {
  std::vector<float> out(static_cast<size_t>(m.rows()));
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r);
    double acc = 0;
    for (int64_t c = 0; c < m.cols(); ++c)
      acc += static_cast<double>(row[c]) * row[c];
    out[static_cast<size_t>(r)] = static_cast<float>(std::sqrt(acc));
  }
  return out;
}

void scale_cols_inplace(Matrix& m, const std::vector<float>& s) {
  APOLLO_CHECK(static_cast<int64_t>(s.size()) == m.cols());
  for (int64_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    for (int64_t c = 0; c < m.cols(); ++c) row[c] *= s[static_cast<size_t>(c)];
  }
}

void scale_rows_inplace(Matrix& m, const std::vector<float>& s) {
  APOLLO_CHECK(static_cast<int64_t>(s.size()) == m.rows());
  for (int64_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    const float sv = s[static_cast<size_t>(r)];
    for (int64_t c = 0; c < m.cols(); ++c) row[c] *= sv;
  }
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  APOLLO_CHECK(a.same_shape(b));
  float mx = 0.f;
  for (int64_t i = 0; i < a.size(); ++i)
    mx = std::max(mx, std::fabs(a[i] - b[i]));
  return mx;
}

}  // namespace apollo
