#include "data/corpus.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace apollo::data {

SyntheticCorpus::SyntheticCorpus(const CorpusConfig& cfg) : cfg_(cfg) {
  APOLLO_CHECK(cfg.vocab >= 16 && cfg.n_topics >= 1 && cfg.branch >= 2);
  Rng rng(cfg.seed);

  // Zipf CDF over the vocabulary.
  zipf_cdf_.resize(static_cast<size_t>(cfg.vocab));
  double total = 0;
  for (int v = 0; v < cfg.vocab; ++v)
    total += 1.0 / std::pow(static_cast<double>(v + 1), cfg.zipf_s);
  double acc = 0;
  for (int v = 0; v < cfg.vocab; ++v) {
    acc += 1.0 / std::pow(static_cast<double>(v + 1), cfg.zipf_s) / total;
    zipf_cdf_[static_cast<size_t>(v)] = acc;
  }

  // Per-topic sparse Markov chains with randomly weighted successors.
  successors_.resize(static_cast<size_t>(cfg.n_topics));
  cum_weights_.resize(static_cast<size_t>(cfg.n_topics));
  for (int t = 0; t < cfg.n_topics; ++t) {
    auto& succ = successors_[static_cast<size_t>(t)];
    auto& cw = cum_weights_[static_cast<size_t>(t)];
    succ.resize(static_cast<size_t>(cfg.vocab) * cfg.branch);
    cw.resize(static_cast<size_t>(cfg.vocab) * cfg.branch);
    for (int v = 0; v < cfg.vocab; ++v) {
      float wacc = 0.f;
      std::vector<float> w(static_cast<size_t>(cfg.branch));
      for (int b = 0; b < cfg.branch; ++b) {
        // Successors are Zipf-drawn so the chain's stationary distribution
        // keeps natural-language-like skew (common words follow anything).
        succ[static_cast<size_t>(v * cfg.branch + b)] = sample_zipf(rng);
        // Exponential-ish weights give each state a clear favourite.
        w[static_cast<size_t>(b)] = std::exp(2.f * rng.next_float());
        wacc += w[static_cast<size_t>(b)];
      }
      float c = 0.f;
      for (int b = 0; b < cfg.branch; ++b) {
        c += w[static_cast<size_t>(b)] / wacc;
        cw[static_cast<size_t>(v * cfg.branch + b)] = c;
      }
    }
  }
}

int32_t SyntheticCorpus::sample_zipf(Rng& rng) const {
  const double u = rng.next_double();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<int32_t>(std::min<size_t>(
      static_cast<size_t>(it - zipf_cdf_.begin()), zipf_cdf_.size() - 1));
}

int32_t SyntheticCorpus::sample_successor(Rng& rng, int topic,
                                          int32_t token) const {
  const auto& cw = cum_weights_[static_cast<size_t>(topic)];
  const auto& succ = successors_[static_cast<size_t>(topic)];
  const float u = rng.next_float();
  const size_t base = static_cast<size_t>(token) * cfg_.branch;
  for (int b = 0; b < cfg_.branch; ++b)
    if (u <= cw[base + static_cast<size_t>(b)])
      return succ[base + static_cast<size_t>(b)];
  return succ[base + static_cast<size_t>(cfg_.branch - 1)];
}

int32_t SyntheticCorpus::top_successor(int topic, int32_t token) const {
  const auto& cw = cum_weights_[static_cast<size_t>(topic)];
  const auto& succ = successors_[static_cast<size_t>(topic)];
  const size_t base = static_cast<size_t>(token) * cfg_.branch;
  float best_w = 0.f;
  int best = 0;
  float prev = 0.f;
  for (int b = 0; b < cfg_.branch; ++b) {
    const float w = cw[base + static_cast<size_t>(b)] - prev;
    prev = cw[base + static_cast<size_t>(b)];
    if (w > best_w) {
      best_w = w;
      best = b;
    }
  }
  return succ[base + static_cast<size_t>(best)];
}

void SyntheticCorpus::sample_sequence(Rng& rng, int len,
                                      std::vector<int32_t>& out) const {
  // Delegate to the annotated generator so both paths share one stream:
  // identical rng consumption ⇒ identical tokens.
  std::vector<Mechanism> mech;
  sample_sequence_annotated(rng, len, out, mech);
}

void SyntheticCorpus::sample_sequence_annotated(
    Rng& rng, int len, std::vector<int32_t>& out,
    std::vector<Mechanism>& mech) const {
  out.resize(static_cast<size_t>(len));
  mech.resize(static_cast<size_t>(len));
  const int topic = static_cast<int>(rng.next_below(
      static_cast<uint64_t>(cfg_.n_topics)));
  int32_t state = sample_zipf(rng);
  for (int i = 0; i < len; ++i) {
    const double u = rng.next_double();
    int32_t tok;
    if (i >= cfg_.copy_distance && u < cfg_.p_copy) {
      tok = out[static_cast<size_t>(i - cfg_.copy_distance)];
      mech[static_cast<size_t>(i)] = Mechanism::kCopy;
    } else if (u < cfg_.p_copy + cfg_.p_markov) {
      tok = sample_successor(rng, topic, state);
      mech[static_cast<size_t>(i)] = Mechanism::kMarkov;
    } else {
      tok = sample_zipf(rng);
      mech[static_cast<size_t>(i)] = Mechanism::kUnigram;
    }
    out[static_cast<size_t>(i)] = tok;
    state = tok;
  }
}

BatchLoader::BatchLoader(const TokenSource& corpus, int batch, int seq_len,
                         uint64_t stream_seed)
    : corpus_(corpus), batch_(batch), seq_len_(seq_len), rng_(stream_seed) {}

void BatchLoader::next(std::vector<int32_t>& ids,
                       std::vector<int32_t>& targets) {
  const size_t total = static_cast<size_t>(batch_) * seq_len_;
  ids.resize(total);
  targets.resize(total);
  for (int b = 0; b < batch_; ++b) {
    corpus_.sample_sequence(rng_, seq_len_ + 1, scratch_);
    const size_t off = static_cast<size_t>(b) * seq_len_;
    for (int i = 0; i < seq_len_; ++i) {
      ids[off + static_cast<size_t>(i)] = scratch_[static_cast<size_t>(i)];
      targets[off + static_cast<size_t>(i)] =
          scratch_[static_cast<size_t>(i) + 1];
    }
  }
}

ValidationSet make_validation_set(const TokenSource& corpus, int batches,
                                  int batch, int seq_len, uint64_t seed) {
  BatchLoader loader(corpus, batch, seq_len, seed);
  ValidationSet vs;
  vs.ids.resize(static_cast<size_t>(batches));
  vs.targets.resize(static_cast<size_t>(batches));
  for (int i = 0; i < batches; ++i)
    loader.next(vs.ids[static_cast<size_t>(i)],
                vs.targets[static_cast<size_t>(i)]);
  return vs;
}

}  // namespace apollo::data
