// Synthetic pre-training corpus standing in for C4 (see DESIGN.md §2).
//
// Sequences are generated from a seeded mixture process with three kinds of
// structure a decoder transformer can exploit, at increasing difficulty:
//   1. Zipfian unigram statistics (easy — learned by the output bias-like
//      behaviour of the head),
//   2. per-topic first-order Markov transitions (learned by short-range
//      attention / embeddings),
//   3. long-range copy events that repeat the token seen `kCopyDistance`
//      positions earlier (rewards attention heads; separates real
//      optimization progress from unigram memorisation).
// Validation perplexity on a held-out stream therefore orders optimizers the
// same way a natural corpus would, which is all Table 2/3-style comparisons
// need.
#pragma once

#include <cstdint>
#include <vector>

#include "data/token_source.h"
#include "tensor/rng.h"

namespace apollo::data {

struct CorpusConfig {
  int vocab = 256;
  int n_topics = 8;
  int branch = 4;          // Markov successors per (topic, token)
  double p_markov = 0.85;  // follow topic chain
  double p_copy = 0.05;    // long-range copy event
  int copy_distance = 8;
  double zipf_s = 1.2;     // Zipf exponent of the unigram fallback
  uint64_t seed = 42;
};

class SyntheticCorpus : public TokenSource {
 public:
  explicit SyntheticCorpus(const CorpusConfig& cfg);

  const CorpusConfig& config() const { return cfg_; }
  int vocab_size() const override { return cfg_.vocab; }

  // Generate one sequence of `len` tokens into `out` using `rng` for the
  // sampling stream (the corpus *structure* is fixed by cfg.seed).
  void sample_sequence(Rng& rng, int len,
                       std::vector<int32_t>& out) const override;

  // Which generative mechanism emitted each token — enables
  // mechanism-resolved evaluation (bench_ablation_mechanism): Markov
  // transitions are learnable by short-range statistics, copies only by
  // attention, unigram draws bound the achievable loss.
  enum class Mechanism : uint8_t { kMarkov, kCopy, kUnigram };
  void sample_sequence_annotated(Rng& rng, int len, std::vector<int32_t>& out,
                                 std::vector<Mechanism>& mech) const;

  // Most likely successor of `token` under `topic`'s chain — used by the
  // fine-tuning "successor" task to tie downstream tasks to pre-training
  // knowledge.
  int32_t top_successor(int topic, int32_t token) const;

 private:
  int32_t sample_zipf(Rng& rng) const;
  int32_t sample_successor(Rng& rng, int topic, int32_t token) const;

  CorpusConfig cfg_;
  // successors_[topic][token*branch + i], weights_ parallel (cumulative).
  std::vector<std::vector<int32_t>> successors_;
  std::vector<std::vector<float>> cum_weights_;
  std::vector<double> zipf_cdf_;
};

// Streams shifted (input, target) batches. Each row of a batch is an
// independent sequence; inputs are seq[0..S), targets seq[1..S+1).
class BatchLoader {
 public:
  BatchLoader(const TokenSource& corpus, int batch, int seq_len,
              uint64_t stream_seed);

  // Fills flattened ids/targets of size batch·seq_len.
  void next(std::vector<int32_t>& ids, std::vector<int32_t>& targets);

  int batch() const { return batch_; }
  int seq_len() const { return seq_len_; }

 private:
  const TokenSource& corpus_;
  int batch_;
  int seq_len_;
  Rng rng_;
  std::vector<int32_t> scratch_;
};

// A fixed validation set (regenerated deterministically from its seed), with
// perplexity evaluation helpers in train/metrics.h.
struct ValidationSet {
  std::vector<std::vector<int32_t>> ids;      // per batch, flattened
  std::vector<std::vector<int32_t>> targets;  // per batch, flattened
};

ValidationSet make_validation_set(const TokenSource& corpus, int batches,
                                  int batch, int seq_len, uint64_t seed);

}  // namespace apollo::data
