#include "data/tasks.h"

#include <algorithm>
#include <map>

#include "tensor/check.h"

namespace apollo::data {

const char* task_name(CommonsenseTask t) {
  switch (t) {
    case CommonsenseTask::kCopyFirst: return "WG";
    case CommonsenseTask::kCopyLast: return "PIQA";
    case CommonsenseTask::kMaxToken: return "SIQA";
    case CommonsenseTask::kMajority: return "OBQA";
    case CommonsenseTask::kParity: return "HS";
    case CommonsenseTask::kSuccessor: return "BoolQ";
    case CommonsenseTask::kSecondToken: return "Arc-E";
    case CommonsenseTask::kAlternation: return "Arc-C";
  }
  return "?";
}

const char* domain_name(MmluDomain d) {
  switch (d) {
    case MmluDomain::kStem: return "STEM";
    case MmluDomain::kSocial: return "Social Sciences";
    case MmluDomain::kHumanities: return "Humanities";
    case MmluDomain::kOther: return "Other";
  }
  return "?";
}

TaskGenerator::TaskGenerator(const SyntheticCorpus& corpus, uint64_t seed)
    : corpus_(corpus), specials_(corpus.config().vocab), rng_(seed) {}

int32_t TaskGenerator::random_regular_token(int lo, int hi) {
  if (hi < 0) hi = corpus_.config().vocab - 3;  // below the specials
  return static_cast<int32_t>(
      lo + rng_.next_below(static_cast<uint64_t>(hi - lo + 1)));
}

TaskExample TaskGenerator::sample_commonsense(CommonsenseTask task,
                                              int prompt_len) {
  TaskExample ex;
  auto& p = ex.tokens;
  // Tasks use a restricted alphabet so answers stay inside the regular
  // vocabulary and the rules are learnable at nano scale.
  constexpr int kAlphaLo = 1, kAlphaHi = 40;
  const int32_t marker = 41;  // for the parity task

  switch (task) {
    case CommonsenseTask::kCopyFirst:
    case CommonsenseTask::kCopyLast:
    case CommonsenseTask::kSecondToken:
    case CommonsenseTask::kMaxToken: {
      for (int i = 0; i < prompt_len; ++i)
        p.push_back(random_regular_token(kAlphaLo, kAlphaHi));
      if (task == CommonsenseTask::kCopyFirst) ex.answer = p.front();
      else if (task == CommonsenseTask::kCopyLast) ex.answer = p.back();
      else if (task == CommonsenseTask::kSecondToken) ex.answer = p[1];
      else ex.answer = *std::max_element(p.begin(), p.end());
      break;
    }
    case CommonsenseTask::kMajority: {
      // Plant a clear majority token.
      const int32_t maj = random_regular_token(kAlphaLo, kAlphaHi);
      const int copies = prompt_len / 2 + 1;
      for (int i = 0; i < copies; ++i) p.push_back(maj);
      while (static_cast<int>(p.size()) < prompt_len) {
        int32_t t = random_regular_token(kAlphaLo, kAlphaHi);
        if (t != maj) p.push_back(t);
      }
      // Shuffle (Fisher–Yates with our rng).
      for (size_t i = p.size(); i > 1; --i)
        std::swap(p[i - 1], p[rng_.next_below(i)]);
      ex.answer = maj;
      break;
    }
    case CommonsenseTask::kParity: {
      const int markers = static_cast<int>(rng_.next_below(5));
      for (int i = 0; i < prompt_len; ++i)
        p.push_back(random_regular_token(kAlphaLo, kAlphaHi));
      for (int i = 0; i < markers; ++i)
        p[rng_.next_below(static_cast<uint64_t>(prompt_len))] = marker;
      int count = 0;
      for (int32_t t : p) count += (t == marker);
      ex.answer = (count % 2 == 0) ? 50 : 51;  // even/odd answer tokens
      ex.choices = {50, 51};
      break;
    }
    case CommonsenseTask::kSuccessor: {
      for (int i = 0; i < prompt_len; ++i)
        p.push_back(random_regular_token(kAlphaLo, kAlphaHi));
      ex.answer = corpus_.top_successor(0, p.back());
      break;
    }
    case CommonsenseTask::kAlternation: {
      const int32_t a = random_regular_token(kAlphaLo, kAlphaHi);
      int32_t b = a;
      while (b == a) b = random_regular_token(kAlphaLo, kAlphaHi);
      for (int i = 0; i < prompt_len; ++i) p.push_back(i % 2 == 0 ? a : b);
      ex.answer = (prompt_len % 2 == 0) ? a : b;
      ex.choices = {a, b};
      break;
    }
  }
  p.push_back(specials_.query);
  ex.answer_pos = static_cast<int>(p.size());
  p.push_back(ex.answer);
  return ex;
}

TaskExample TaskGenerator::sample_mmlu(MmluDomain domain, int context_len) {
  TaskExample ex;
  auto& p = ex.tokens;
  constexpr int kAlphaLo = 1, kAlphaHi = 40;
  std::vector<int32_t> ctx;
  for (int i = 0; i < context_len; ++i)
    ctx.push_back(random_regular_token(kAlphaLo, kAlphaHi));

  // Four distinct candidate options drawn from the context + distractors.
  std::vector<int32_t> options;
  auto push_unique = [&](int32_t t) {
    if (std::find(options.begin(), options.end(), t) == options.end())
      options.push_back(t);
  };
  push_unique(ctx.front());
  push_unique(ctx.back());
  push_unique(*std::max_element(ctx.begin(), ctx.end()));
  while (options.size() < 4) push_unique(random_regular_token(kAlphaLo, kAlphaHi));
  options.resize(4);
  // Shuffle option order so position carries no signal.
  for (size_t i = options.size(); i > 1; --i)
    std::swap(options[i - 1], options[rng_.next_below(i)]);

  int32_t correct;
  switch (domain) {
    case MmluDomain::kStem:
      correct = *std::max_element(ctx.begin(), ctx.end());
      break;
    case MmluDomain::kSocial: {
      // Most frequent token in the context (ties → smallest id).
      std::map<int32_t, int> freq;
      for (int32_t t : ctx) ++freq[t];
      correct = std::max_element(freq.begin(), freq.end(),
                                 [](const auto& a, const auto& b) {
                                   return a.second < b.second;
                                 })
                    ->first;
      break;
    }
    case MmluDomain::kHumanities:
      correct = ctx.front();
      break;
    case MmluDomain::kOther:
    default:
      correct = ctx.back();
      break;
  }
  // Guarantee the correct answer appears among the options.
  if (std::find(options.begin(), options.end(), correct) == options.end())
    options[rng_.next_below(4)] = correct;

  p = ctx;
  p.push_back(specials_.sep);
  for (int32_t o : options) p.push_back(o);
  p.push_back(specials_.query);
  ex.answer_pos = static_cast<int>(p.size());
  p.push_back(correct);
  ex.answer = correct;
  ex.choices = options;
  return ex;
}

TaskGenerator::Batch TaskGenerator::pack(const std::vector<TaskExample>& ex,
                                         int seq_len) {
  Batch b;
  const int n = static_cast<int>(ex.size());
  b.ids.assign(static_cast<size_t>(n) * seq_len, 0);
  b.targets.assign(static_cast<size_t>(n) * seq_len, -1);
  for (int i = 0; i < n; ++i) {
    const auto& e = ex[static_cast<size_t>(i)];
    APOLLO_CHECK(static_cast<int>(e.tokens.size()) <= seq_len);
    const size_t off = static_cast<size_t>(i) * seq_len;
    for (size_t j = 0; j < e.tokens.size(); ++j)
      b.ids[off + j] = e.tokens[j];
    // Predict the answer from the position *before* it (causal shift).
    b.targets[off + static_cast<size_t>(e.answer_pos - 1)] = e.answer;
    b.answer_rows.push_back(i * seq_len + e.answer_pos - 1);
    b.choices.push_back(e.choices);
  }
  return b;
}

TaskGenerator::Batch TaskGenerator::make_commonsense_batch(CommonsenseTask task,
                                                           int batch,
                                                           int seq_len) {
  std::vector<TaskExample> ex;
  ex.reserve(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i)
    ex.push_back(sample_commonsense(task, seq_len - 4));
  return pack(ex, seq_len);
}

TaskGenerator::Batch TaskGenerator::make_mmlu_batch(MmluDomain domain,
                                                    int batch, int seq_len) {
  std::vector<TaskExample> ex;
  ex.reserve(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i)
    ex.push_back(sample_mmlu(domain, seq_len - 8));
  return pack(ex, seq_len);
}

}  // namespace apollo::data
