#include "data/text_corpus.h"

#include <cstdio>
#include <memory>

#include "tensor/check.h"

namespace apollo::data {

namespace {
bool set_error(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
  return false;
}
}  // namespace

TextCorpus::TextCorpus(std::string text) : text_(std::move(text)) {
  train_end_ = text_.size() * 95 / 100;
}

std::optional<TextCorpus> TextCorpus::from_file(const std::string& path,
                                                std::string* error,
                                                size_t min_bytes) {
  struct Closer {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, Closer> f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    set_error(error, "cannot open file");
    return std::nullopt;
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0)
    text.append(buf, n);
  return from_string(std::move(text), error, min_bytes);
}

std::optional<TextCorpus> TextCorpus::from_string(std::string text,
                                                  std::string* error,
                                                  size_t min_bytes) {
  if (text.size() < min_bytes) {
    set_error(error, "text too short to train on");
    return std::nullopt;
  }
  return TextCorpus(std::move(text));
}

void TextCorpus::window(Rng& rng, size_t lo, size_t hi, int len,
                        std::vector<int32_t>& out) const {
  APOLLO_CHECK(hi > lo);
  out.resize(static_cast<size_t>(len));
  const size_t span = hi - lo;
  const size_t need = static_cast<size_t>(len);
  // If the span is shorter than the window, wrap around inside the span.
  const size_t start =
      lo + rng.next_below(span > need ? span - need : span);
  for (int i = 0; i < len; ++i) {
    size_t pos = start + static_cast<size_t>(i);
    if (pos >= hi) pos = lo + (pos - hi) % span;
    out[static_cast<size_t>(i)] =
        static_cast<int32_t>(static_cast<unsigned char>(text_[pos]));
  }
}

void TextCorpus::sample_sequence(Rng& rng, int len,
                                 std::vector<int32_t>& out) const {
  window(rng, 0, train_end_, len, out);
}

void TextCorpus::Holdout::sample_sequence(Rng& rng, int len,
                                          std::vector<int32_t>& out) const {
  owner_.window(rng, owner_.train_end_, owner_.text_.size(), len, out);
}

}  // namespace apollo::data
