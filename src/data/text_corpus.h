// Byte-level text corpus: train the same models on any real text file.
// Tokens are raw bytes (vocab 256); sequences are uniformly sampled windows
// with a held-out tail reserved for validation so train/val never overlap.
#pragma once

#include <optional>
#include <string>

#include "data/token_source.h"

namespace apollo::data {

class TextCorpus : public TokenSource {
 public:
  // Loads a file; returns nullopt (with the reason in *error, if given)
  // when the file is missing or shorter than `min_bytes`.
  static std::optional<TextCorpus> from_file(const std::string& path,
                                             std::string* error = nullptr,
                                             size_t min_bytes = 1024);
  // Builds directly from an in-memory string (tests, embedded corpora).
  static std::optional<TextCorpus> from_string(std::string text,
                                               std::string* error = nullptr,
                                               size_t min_bytes = 64);

  int vocab_size() const override { return 256; }

  // Samples a window from the training span (first 95% of the bytes).
  void sample_sequence(Rng& rng, int len,
                       std::vector<int32_t>& out) const override;

  // A view of the held-out tail as a TokenSource for validation sets.
  class Holdout : public TokenSource {
   public:
    explicit Holdout(const TextCorpus& owner) : owner_(owner) {}
    int vocab_size() const override { return 256; }
    void sample_sequence(Rng& rng, int len,
                         std::vector<int32_t>& out) const override;

   private:
    const TextCorpus& owner_;
  };
  Holdout holdout() const { return Holdout(*this); }

  size_t size_bytes() const { return text_.size(); }

 private:
  explicit TextCorpus(std::string text);
  void window(Rng& rng, size_t lo, size_t hi, int len,
              std::vector<int32_t>& out) const;

  std::string text_;
  size_t train_end_ = 0;  // [0, train_end) train, [train_end, size) holdout
};

}  // namespace apollo::data
