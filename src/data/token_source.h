// Abstract token stream consumed by BatchLoader / Trainer. Implemented by
// the synthetic corpus (the default C4 stand-in) and by TextCorpus
// (byte-level tokenization of a user-supplied file), so the same training
// loop runs on either.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"

namespace apollo::data {

class TokenSource {
 public:
  virtual ~TokenSource() = default;

  virtual int vocab_size() const = 0;

  // Fill `out` with `len` tokens drawn using `rng`'s stream. The source's
  // structure must be fixed at construction; only sampling may depend on
  // `rng`, keeping runs reproducible from (source seed, stream seed).
  virtual void sample_sequence(Rng& rng, int len,
                               std::vector<int32_t>& out) const = 0;
};

}  // namespace apollo::data
