// Synthetic downstream tasks standing in for the paper's fine-tuning suites
// (Table 4: eight commonsense-reasoning tasks; Table 5: four MMLU domains).
//
// Each example is a token sequence `prompt… QUERY answer`; the model is
// fine-tuned with loss only on the answer position and evaluated by
// answer-token accuracy (for multiple-choice, argmax restricted to the
// choice tokens). Tasks span pure-pattern rules (copy, majority, parity…)
// and one rule tied to pre-training knowledge (Markov successor), so the
// relative fine-tuning comparison exercises the same "adapt a pretrained
// backbone" regime as the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/corpus.h"

namespace apollo::data {

// Reserved token ids at the top of the vocabulary.
struct SpecialTokens {
  int32_t query;   // separates prompt from answer
  int32_t sep;     // separates multiple-choice options
  explicit SpecialTokens(int vocab)
      : query(vocab - 1), sep(vocab - 2) {}
};

struct TaskExample {
  std::vector<int32_t> tokens;  // prompt … QUERY answer
  int answer_pos = 0;           // index of the answer token
  int32_t answer = 0;
  std::vector<int32_t> choices;  // empty for open-vocabulary tasks
};

// The eight "commonsense" tasks (Table 4 stand-ins).
enum class CommonsenseTask {
  kCopyFirst,    // WG stand-in: recall the first token
  kCopyLast,     // PIQA: recall the most recent token
  kMaxToken,     // SIQA: largest token id seen
  kMajority,     // OBQA: most frequent token
  kParity,       // HS: odd/even count of a marker token
  kSuccessor,    // BoolQ: Markov successor from pre-training topic 0
  kSecondToken,  // ARC-E: recall the second token
  kAlternation,  // ARC-C: continue an a-b-a-b pattern
};
constexpr int kNumCommonsenseTasks = 8;
const char* task_name(CommonsenseTask t);

// MMLU-style domains (Table 5 stand-ins). All are 4-way multiple choice:
// the prompt lists four candidate tokens after a context; the correct one
// is selected by the domain's rule.
enum class MmluDomain { kStem, kSocial, kHumanities, kOther };
constexpr int kNumMmluDomains = 4;
const char* domain_name(MmluDomain d);

class TaskGenerator {
 public:
  TaskGenerator(const SyntheticCorpus& corpus, uint64_t seed);

  TaskExample sample_commonsense(CommonsenseTask task, int prompt_len = 12);
  TaskExample sample_mmlu(MmluDomain domain, int context_len = 8);

  // Batches of examples, padded to seq_len; targets are −1 except at the
  // answer position of each sequence.
  struct Batch {
    std::vector<int32_t> ids;      // batch·seq_len
    std::vector<int32_t> targets;  // batch·seq_len
    std::vector<int> answer_rows;  // flattened row of each answer
    std::vector<std::vector<int32_t>> choices;  // per example
  };
  Batch make_commonsense_batch(CommonsenseTask task, int batch, int seq_len);
  Batch make_mmlu_batch(MmluDomain domain, int batch, int seq_len);

 private:
  // Regular-token alphabet excludes the reserved specials.
  int32_t random_regular_token(int lo = 1, int hi = -1);
  Batch pack(const std::vector<TaskExample>& ex, int seq_len);

  const SyntheticCorpus& corpus_;
  SpecialTokens specials_;
  Rng rng_;
};

}  // namespace apollo::data
