// Versioned binary checkpointing for model weights and (optionally)
// optimizer state for exact training resume.
//
// Format v2 (little-endian):
//   magic "APLO" | u32 version | i64 step | u32 param_count |
//   per param: u32 name_len | name bytes | i64 rows | i64 cols | f32 data[]
//   u8 has_optimizer | [optimizer name string | opaque optimizer blob]
// Loading validates magic/version and that every parameter matches the
// model's name and shape, so a checkpoint from a different configuration is
// rejected with a readable error instead of silently mis-loading. v1 files
// (weights only) still load.
#pragma once

#include <string>

#include "nn/llama.h"
#include "optim/optimizer.h"

namespace apollo::train {

struct CheckpointResult {
  bool ok = false;
  int64_t step = 0;
  // True when the file carried optimizer state and it was restored.
  bool optimizer_state_restored = false;
  std::string error;
};

// Saves weights; when `opt` is non-null and supports serialization, its
// state is appended (AdamW and the APOLLO series do; others save weights
// only).
CheckpointResult save_checkpoint(const std::string& path,
                                 nn::LlamaModel& model, int64_t step,
                                 const optim::Optimizer* opt = nullptr);

// Loads weights; when `opt` is non-null and the file carries a matching
// optimizer section (same optimizer name), restores it too.
CheckpointResult load_checkpoint(const std::string& path,
                                 nn::LlamaModel& model,
                                 optim::Optimizer* opt = nullptr);

}  // namespace apollo::train
