// Versioned binary checkpointing for model weights and (optionally)
// optimizer state for exact training resume.
//
// Format v3 (little-endian), the first *crash-consistent* version:
//   magic "APLO" | u32 version | i64 step | u32 param_count | u32 crc
//   per param: u32 name_len | name bytes | i64 rows | i64 cols | f32 data[]
//              | u32 crc
//   u8 has_optimizer | [u32 name_len | name | u64 blob_len | blob] | u32 crc
//   end magic "OLPA"
// Every section carries a CRC-32 over its payload bytes (src/fault/crc32.h),
// so truncation, torn writes and bit rot are detected at load time with a
// section-precise error. Saves are atomic: payload goes to `path + ".tmp"`,
// is fsync'd, and is renamed over `path` only once fully durable — a crash
// mid-save leaves the previous checkpoint untouched. Transient I/O errors
// are retried with bounded backoff.
//
// Loading validates magic/version, every section CRC, and that every
// parameter matches the model's name and shape, so a checkpoint from a
// different configuration is rejected with a readable error instead of
// silently mis-loading. v1 (weights only) and v2 (no CRCs) files still load.
#pragma once

#include <string>

#include "nn/llama.h"
#include "optim/optimizer.h"

namespace apollo::train {

struct CheckpointResult {
  bool ok = false;
  int64_t step = 0;
  // True when the file carried optimizer state and it was restored.
  bool optimizer_state_restored = false;
  std::string error;
};

// Saves weights; when `opt` is non-null and supports serialization, its
// state is appended (AdamW and the APOLLO series do; others save weights
// only). Write-temp → fsync → atomic-rename, with bounded retry on
// transient I/O errors.
CheckpointResult save_checkpoint(const std::string& path,
                                 nn::LlamaModel& model, int64_t step,
                                 const optim::Optimizer* opt = nullptr);

// Loads weights; when `opt` is non-null and the file carries a matching
// optimizer section (same optimizer name), restores it too. Distinct
// error strings for: missing file, empty file, bad magic, truncation,
// per-section CRC mismatch, and shape/name mismatches.
CheckpointResult load_checkpoint(const std::string& path,
                                 nn::LlamaModel& model,
                                 optim::Optimizer* opt = nullptr);

}  // namespace apollo::train
