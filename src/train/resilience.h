// Resilience subsystem: rotating crash-consistent checkpoints, newest-first
// auto-resume that skips corrupt files, and the divergence watchdog that
// turns a NaN/Inf/spiking step into a rollback instead of a dead run.
//
// Recovery state machine (docs/RESILIENCE.md has the full picture):
//
//   HEALTHY --(NaN/Inf loss or grad, or loss > spike_factor x running
//              median)--> DIVERGED --> rollback to last good checkpoint,
//   re-seed the projection, multiply the LR by lr_backoff --> PROBATION
//   --(min_history healthy steps)--> HEALTHY (LR scale restored, retry
//   budget refilled). When the retry budget is exhausted the watchdog
//   tightens the optimizer's norm-growth limiter once and grants a final
//   budget; if that also diverges the run aborts with diagnostics.
//
// All components are deterministic: the watchdog's running median is over
// the exact loss sequence, rollback restores bit-identical weights and
// optimizer state (checkpoint v3 round-trips raw float bytes), and the
// projection re-seed is a pure function of the old seed and the retry
// count.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "nn/llama.h"
#include "optim/optimizer.h"
#include "train/checkpoint.h"

namespace apollo::train {

// --- divergence watchdog ---------------------------------------------------

struct WatchdogConfig {
  // A step diverges when loss or grad norm is non-finite, or when loss
  // exceeds spike_factor x the running median of recent healthy losses.
  double spike_factor = 10.0;
  // Sliding window of healthy losses feeding the median.
  int median_window = 11;
  // Spike detection stays off until this many healthy losses are recorded
  // (the first steps of a run legitimately move fast).
  int min_history = 5;
  // Rollbacks allowed before escalating. The limiter-tightening escalation
  // grants one extra budget, so the hard cap is 2*max_retries rollbacks.
  int max_retries = 3;
  // Multiplied into the scheduled LR after each rollback; restored to 1
  // after the probation window passes.
  float lr_backoff = 0.5f;
  // gamma -> 1 + (gamma - 1) * limiter_tighten on escalation.
  float limiter_tighten = 0.5f;
};

class DivergenceWatchdog {
 public:
  explicit DivergenceWatchdog(const WatchdogConfig& cfg) : cfg_(cfg) {}

  // Empty string when the step is healthy, else a human-readable reason.
  std::string check(double loss, double grad_norm) const;

  // Record a healthy step's loss into the median window.
  void observe(double loss);

  // Forget history after a rollback — post-rollback losses are compared
  // against the recovered trajectory, not the diverged one.
  void reset_history();

  // Median of the recorded window; 0 while empty.
  double running_median() const;
  int history_size() const { return static_cast<int>(window_.size()); }

 private:
  WatchdogConfig cfg_;
  std::deque<double> window_;
};

// Exponential LR backoff with probation-based restore: each rollback
// multiplies the scale by `factor`; once `probation` consecutive good steps
// pass, the scale snaps back to 1 (the diverged region is behind us, so the
// run finishes at full schedule strength).
class LrBackoff {
 public:
  LrBackoff(float factor, int probation)
      : factor_(factor), probation_(probation) {}

  void on_rollback() {
    scale_ *= factor_;
    good_streak_ = 0;
  }
  void on_good_step() {
    if (scale_ >= 1.f) return;
    if (++good_streak_ >= probation_) {
      scale_ = 1.f;
      good_streak_ = 0;
    }
  }
  float scale() const { return scale_; }
  bool in_probation() const { return scale_ < 1.f; }

 private:
  float factor_;
  int probation_;
  float scale_ = 1.f;
  int good_streak_ = 0;
};

// --- rotating checkpoints + auto-resume ------------------------------------

// Writes `ckpt_<step>.aplo` files into a directory through the atomic
// checkpoint path and prunes all but the newest `keep`. Stale `*.tmp`
// leftovers from crashed saves are removed on construction.
class CheckpointRotator {
 public:
  CheckpointRotator(std::string dir, int keep);

  CheckpointResult save(nn::LlamaModel& model, int64_t step,
                        const optim::Optimizer* opt);

  static std::string path_for(const std::string& dir, int64_t step);
  // Steps with an on-disk checkpoint file, ascending.
  static std::vector<int64_t> list_steps(const std::string& dir);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  int keep_;
};

struct ResumeResult {
  bool resumed = false;
  int64_t step = 0;
  bool optimizer_state_restored = false;
  // One "path: reason" entry per corrupt/unreadable checkpoint skipped.
  std::vector<std::string> skipped;
  std::string error;  // set when checkpoints existed but none loaded
};

// Scans `dir` newest-to-oldest and loads the first checkpoint that passes
// all CRC/shape validation, skipping corrupt ones with a readable reason
// (each skip increments the `ckpt.corrupt_skipped` registry counter).
// An empty or missing directory resumes nothing and is not an error.
ResumeResult auto_resume(const std::string& dir, nn::LlamaModel& model,
                         optim::Optimizer* opt);

// --- trainer-facing configuration ------------------------------------------

struct ResilienceConfig {
  // Enables rotating checkpoints (and rollback); empty = disabled.
  std::string ckpt_dir;
  int ckpt_every = 50;
  int ckpt_keep = 3;
  // Scan ckpt_dir before training and continue from the newest good
  // checkpoint (requires ckpt_dir).
  bool auto_resume = true;
  // Enables the divergence watchdog (requires ckpt_dir for rollback).
  bool watchdog = false;
  WatchdogConfig wd;
};

}  // namespace apollo::train
