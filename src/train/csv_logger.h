// Minimal CSV run logger: writes a header once, then one row per call.
// Used by benches/examples to emit plot-ready training curves.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "tensor/check.h"

namespace apollo::train {

class CsvLogger {
 public:
  // Opens (truncates) `path` and writes the header row. An empty path
  // disables logging (all calls become no-ops) so callers can thread an
  // optional logger without branching.
  CsvLogger(const std::string& path, const std::vector<std::string>& columns)
      : n_cols_(columns.size()) {
    if (path.empty()) return;
    file_.reset(std::fopen(path.c_str(), "w"));
    APOLLO_CHECK_MSG(file_ != nullptr, "CsvLogger: cannot open file");
    for (size_t i = 0; i < columns.size(); ++i)
      std::fprintf(file_.get(), "%s%s", columns[i].c_str(),
                   i + 1 < columns.size() ? "," : "\n");
  }

  bool enabled() const { return file_ != nullptr; }

  void row(const std::vector<double>& values) {
    if (!file_) return;
    APOLLO_CHECK(values.size() == n_cols_);
    for (size_t i = 0; i < values.size(); ++i)
      std::fprintf(file_.get(), "%.6g%s", values[i],
                   i + 1 < values.size() ? "," : "\n");
    std::fflush(file_.get());
  }

 private:
  struct Closer {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, Closer> file_;
  size_t n_cols_;
};

}  // namespace apollo::train
