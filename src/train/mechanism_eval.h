// Mechanism-resolved evaluation: split validation cross-entropy by the
// generative mechanism of each target token (Markov transition vs.
// long-range copy vs. unigram draw). Separates "learned the bigram table"
// from "learned to attend" — used by bench_ablation_mechanism to check that
// memory-efficient optimizers learn the *same structure* as AdamW, not just
// the same average loss.
#pragma once

#include "data/corpus.h"
#include "nn/llama.h"

namespace apollo::train {

struct MechanismLoss {
  double markov = 0;
  double copy = 0;
  double unigram = 0;
  int64_t markov_n = 0;
  int64_t copy_n = 0;
  int64_t unigram_n = 0;
};

// Evaluates `batches` freshly generated annotated batches (batch × the
// model's seq_len) and returns the mean CE per mechanism.
MechanismLoss mechanism_loss(nn::LlamaModel& model,
                             const data::SyntheticCorpus& corpus,
                             int batches, int batch, uint64_t seed);

}  // namespace apollo::train
