// Learning-rate schedule used in all pre-training runs, matching the paper
// (Appendix A.4): linear warm-up over the first 10% of steps, then cosine
// annealing down to 10% of the peak learning rate.
#pragma once

#include <cmath>

#include "tensor/check.h"

namespace apollo::train {

class CosineSchedule {
 public:
  CosineSchedule(float peak_lr, int total_steps, float warmup_frac = 0.1f,
                 float final_frac = 0.1f)
      : peak_(peak_lr), total_(total_steps),
        warmup_(std::max(1, static_cast<int>(warmup_frac *
                                             static_cast<float>(total_steps)))),
        final_frac_(final_frac) {
    APOLLO_CHECK(total_steps >= 1);
  }

  float lr_at(int step) const {
    if (step < warmup_)
      return peak_ * static_cast<float>(step + 1) /
             static_cast<float>(warmup_);
    const float progress =
        static_cast<float>(step - warmup_) /
        static_cast<float>(std::max(1, total_ - warmup_));
    const float cosine = 0.5f * (1.f + std::cos(
        3.14159265358979323846f * std::min(1.f, progress)));
    return peak_ * (final_frac_ + (1.f - final_frac_) * cosine);
  }

 private:
  float peak_;
  int total_;
  int warmup_;
  float final_frac_;
};

}  // namespace apollo::train
