#include "train/trainer.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <unordered_map>

#include "autograd/tape.h"
#include "data/token_source.h"
#include "fault/fault_injection.h"
#include "nn/parameter.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "train/checkpoint.h"
#include "train/schedule.h"

namespace apollo::train {

namespace {

// Global gradient norm across all parameters — per-tensor norms accumulate
// sequentially in doubles, matching the repo's reduction determinism rule.
// std::fma pins the accumulate to a single rounding so the fused path's
// slot-ordered reduction over the same norms is bit-identical (contraction
// of `acc += n * n` is otherwise at the compiler's discretion per site).
double global_grad_norm(const nn::ParamList& params) {
  double acc = 0;
  for (const nn::Parameter* p : params) {
    const double n = frobenius_norm(p->grad);
    acc = std::fma(n, n, acc);
  }
  return std::sqrt(acc);
}

// Fast-forwards a freshly (re)built loader so step `to_step` sees exactly
// the batches an uninterrupted run would have seen — resume and rollback
// replay the same deterministic data stream.
void skip_batches(data::BatchLoader& loader, int64_t n) {
  std::vector<int32_t> ids, targets;
  for (int64_t i = 0; i < n; ++i) loader.next(ids, targets);
}

bool fused_env_enabled() {
  const char* e = std::getenv("APOLLO_FUSED_UPDATE");
  return e != nullptr && e[0] != '\0' && e[0] != '0';
}

}  // namespace

double validation_loss(nn::LlamaModel& model, const data::ValidationSet& vs) {
  APOLLO_CHECK(!vs.ids.empty());
  APOLLO_TRACE_SCOPE("validation_loss", "train");
  double total = 0;
  for (size_t i = 0; i < vs.ids.size(); ++i) {
    ag::Tape tape;
    ag::Var loss = model.loss(tape, vs.ids[i], vs.targets[i]);
    total += tape.value(loss)[0];
  }
  return total / static_cast<double>(vs.ids.size());
}

Trainer::Trainer(nn::LlamaModel& model, optim::Optimizer& opt,
                 const data::TokenSource& corpus, const TrainConfig& cfg)
    : model_(model), opt_(opt), corpus_(corpus), cfg_(cfg) {}

TrainResult Trainer::run() {
  TrainResult res;
  const ResilienceConfig& rc = cfg_.resilience;
  const bool rotating = !rc.ckpt_dir.empty();
  APOLLO_CHECK(!rc.watchdog || rotating);  // rollback needs a ckpt target

  std::unique_ptr<CheckpointRotator> rotator;
  int start_step = 0;
  if (rotating) {
    rotator = std::make_unique<CheckpointRotator>(rc.ckpt_dir, rc.ckpt_keep);
    if (rc.auto_resume) {
      ResumeResult rr = auto_resume(rc.ckpt_dir, model_, &opt_);
      res.corrupt_checkpoints_skipped = static_cast<int>(rr.skipped.size());
      for (const std::string& s : rr.skipped)
        std::fprintf(stderr, "[resume] skipped corrupt checkpoint %s\n",
                     s.c_str());
      if (rr.resumed) {
        start_step = static_cast<int>(rr.step);
        res.resumed_from_step = rr.step;
        std::fprintf(stderr, "[resume] continuing from step %lld%s\n",
                     static_cast<long long>(rr.step),
                     rr.optimizer_state_restored ? " with optimizer state"
                                                 : " (weights only)");
      } else if (!rr.error.empty()) {
        // Checkpoints existed but none loaded: starting over silently would
        // discard the run the checkpoints were protecting.
        res.diverged = true;
        res.divergence_diagnostics = "auto-resume failed: " + rr.error;
        return res;
      }
    }
  }

  const data::ValidationSet val = data::make_validation_set(
      corpus_, cfg_.eval_batches, cfg_.batch, model_.config().seq_len,
      cfg_.val_seed);
  CosineSchedule sched(cfg_.lr, cfg_.steps, cfg_.warmup_frac,
                       cfg_.final_lr_frac);
  const int accum = std::max(1, cfg_.grad_accum);

  std::optional<data::BatchLoader> loader;
  loader.emplace(corpus_, cfg_.batch, model_.config().seq_len,
                 cfg_.data_seed);
  skip_batches(*loader, static_cast<int64_t>(start_step) * accum);

  DivergenceWatchdog watchdog(rc.wd);
  LrBackoff backoff(rc.wd.lr_backoff, rc.wd.min_history);
  int retries = 0;
  bool limiter_tightened = false;
  int64_t last_ckpt_step = -1;
  if (rotating) {
    const std::vector<int64_t> existing =
        CheckpointRotator::list_steps(rc.ckpt_dir);
    if (!existing.empty()) {
      last_ckpt_step = existing.back();
    } else if (rc.watchdog) {
      // Baseline rollback target: divergence before the first periodic
      // checkpoint rolls back to the initial weights.
      if (rotator->save(model_, start_step, &opt_).ok) {
        last_ckpt_step = start_step;
        ++res.checkpoints_saved;
      }
    }
  }

  std::vector<int32_t> ids, targets;
  // One cached-env branch when APOLLO_METRICS is unset — the telemetry path
  // (grad-norm reduction, timing, JSONL write) is never taken.
  const bool telemetry = obs::telemetry_enabled();
  const bool faults = fault::enabled();
  const bool fused_requested = cfg_.fused_update || fused_env_enabled();
  const bool fused = fused_requested && accum == 1 && !faults;
  if (fused_requested && !fused)
    std::fprintf(stderr,
                 "[train] fused update requested but unavailable (%s); "
                 "falling back to the unfused step\n",
                 accum > 1 ? "grad_accum > 1" : "fault injection active");

  // Shared watchdog rollback/abort handling (the unfused path calls it from
  // the pre-step check, the fused path also post-hoc on a non-finite
  // gradient norm). kRetry rewinds `step` to the rollback target.
  enum class WdAction { kRetry, kAbort };
  auto handle_divergence = [&](int& step, const std::string& why) {
    ++res.rollbacks;
    obs::Registry::instance().counter("watchdog.rollbacks").add(1);
    if (retries >= rc.wd.max_retries) {
      // Escalation ladder: tighten the norm-growth limiter once and
      // grant a final retry budget, then abort with diagnostics.
      if (!limiter_tightened &&
          opt_.tighten_norm_limiter(rc.wd.limiter_tighten)) {
        limiter_tightened = true;
        retries = 0;
        std::fprintf(stderr,
                     "[watchdog] retry budget exhausted; tightened "
                     "norm-growth limiter, granting a final budget\n");
      } else {
        res.diverged = true;
        res.divergence_diagnostics =
            "diverged at step " + std::to_string(step) + ": " + why + "; " +
            std::to_string(res.rollbacks) + " rollback(s), lr " + "scale " +
            std::to_string(backoff.scale()) +
            ", last good checkpoint at step " +
            std::to_string(last_ckpt_step);
        std::fprintf(stderr, "[watchdog] aborting: %s\n",
                     res.divergence_diagnostics.c_str());
        if (last_ckpt_step >= 0)
          load_checkpoint(
              CheckpointRotator::path_for(rc.ckpt_dir, last_ckpt_step),
              model_, &opt_);
        return WdAction::kAbort;
      }
    }
    ++retries;
    APOLLO_CHECK(last_ckpt_step >= 0);
    const std::string path =
        CheckpointRotator::path_for(rc.ckpt_dir, last_ckpt_step);
    CheckpointResult rolled = load_checkpoint(path, model_, &opt_);
    if (!rolled.ok) {
      res.diverged = true;
      res.divergence_diagnostics =
          "rollback target unloadable (" + path + "): " + rolled.error;
      std::fprintf(stderr, "[watchdog] aborting: %s\n",
                   res.divergence_diagnostics.c_str());
      return WdAction::kAbort;
    }
    opt_.reseed_projection(static_cast<uint64_t>(res.rollbacks));
    backoff.on_rollback();
    watchdog.reset_history();
    std::fprintf(stderr,
                 "[watchdog] step %d: %s — rolled back to step %lld "
                 "(retry %d/%d, lr scale %.6g)\n",
                 step, why.c_str(), static_cast<long long>(last_ckpt_step),
                 retries, rc.wd.max_retries,
                 static_cast<double>(backoff.scale()));
    // Replay the data stream from the rollback point.
    loader.emplace(corpus_, cfg_.batch, model_.config().seq_len,
                   cfg_.data_seed);
    skip_batches(*loader, last_ckpt_step * accum);
    if (qstore_ != nullptr) qstore_->requantize_from_params();
    step = static_cast<int>(last_ckpt_step) - 1;  // ++ re-enters there
    return WdAction::kRetry;
  };

  using Clock = std::chrono::steady_clock;
  for (int step = start_step; step < cfg_.steps; ++step) {
    APOLLO_TRACE_SCOPE("train.step", "train");
    if (faults && fault::take_at(fault::Kind::kCrash, step)) {
      // Simulated kill: no atexit flushing, no destructors — the next run
      // must recover from on-disk state alone.
      std::_Exit(fault::kCrashExitCode);
    }
    const Clock::time_point step_t0 = Clock::now();
    if (qstore_ != nullptr) qstore_->dequantize_into_params();
    float step_loss = 0.f;
    double grad_norm = 0.0;
    float lr = 0.f;
    if (fused) {
      APOLLO_TRACE_SCOPE("forward_backward", "train");
      nn::ParamList params = model_.parameters();
      // Free parameter gradients instead of zeroing them: backward lazily
      // re-creates each one zero-filled on first touch, so a gradient only
      // occupies memory between its first accumulation and its fused
      // optimizer update.
      for (nn::Parameter* p : params) p->grad = Matrix();
      loader->next(ids, targets);
      ag::Tape tape;
      ag::Var loss = model_.loss(tape, ids, targets);
      step_loss = tape.value(loss)[0];

      // The loss is known before any update is applied, so the watchdog's
      // loss-based checks run here exactly as in the unfused path. The
      // gradient norm only exists after backward; a non-finite one is
      // handled post-hoc below (the rollback discards the applied update).
      if (rc.watchdog) {
        const std::string why =
            watchdog.check(static_cast<double>(step_loss), 0.0);
        if (!why.empty()) {
          if (handle_divergence(step, why) == WdAction::kAbort) break;
          continue;
        }
        watchdog.observe(static_cast<double>(step_loss));
        backoff.on_good_step();
      }
      if (cfg_.record_step_losses) res.step_losses.push_back(step_loss);

      lr = sched.lr_at(step) * backoff.scale();
      opt_.set_lr(lr);

      const bool want_norm = telemetry || rc.watchdog;
      std::unordered_map<const Matrix*, size_t> slot_of;
      slot_of.reserve(params.size());
      for (size_t i = 0; i < params.size(); ++i)
        slot_of[&params[i]->grad] = i;
      std::vector<double> norms(params.size(), 0.0);
      std::vector<char> stepped(params.size(), 0);

      opt_.begin_step(params);
      tape.set_gradient_release(true);
      tape.set_leaf_callback([&](const Matrix*, Matrix* g) {
        const auto it = slot_of.find(g);
        APOLLO_CHECK_MSG(it != slot_of.end(),
                         "leaf gradient is not a model parameter");
        const size_t slot = it->second;
        if (want_norm) norms[slot] = frobenius_norm(*g);
        opt_.step_param(*params[slot], static_cast<int>(slot));
        tape.release_leaf_grad(g);
        stepped[slot] = 1;
      });
      tape.backward(loss, 1.f);
      // Dead leaves (parameters outside this step's graph) still get a
      // zero-gradient update so weight decay and per-slot step counters
      // match the unfused path bit for bit.
      for (size_t i = 0; i < params.size(); ++i) {
        if (stepped[i]) continue;
        nn::Parameter* p = params[i];
        p->grad.reshape_discard(p->value.rows(), p->value.cols());
        opt_.step_param(*p, static_cast<int>(i));
        p->grad = Matrix();
      }
      opt_.end_step(params);

      if (want_norm) {
        // Reduced in slot order with the same single-rounding std::fma as
        // global_grad_norm() — bit-identical to the unfused reduction.
        double acc = 0;
        for (const double n : norms) acc = std::fma(n, n, acc);
        grad_norm = std::sqrt(acc);
      }
      res.peak_activation_bytes =
          std::max(res.peak_activation_bytes, tape.peak_activation_bytes());
      res.peak_grad_bytes =
          std::max(res.peak_grad_bytes, tape.peak_grad_bytes());
      res.peak_total_bytes =
          std::max(res.peak_total_bytes, tape.peak_total_bytes());

      if (rc.watchdog && !std::isfinite(grad_norm)) {
        if (handle_divergence(step, "non-finite gradient norm") ==
            WdAction::kAbort)
          break;
        continue;
      }
      if (qstore_ != nullptr) qstore_->requantize_from_params();
    } else {
      model_.zero_grads();
      for (int micro = 0; micro < accum; ++micro) {
        APOLLO_TRACE_SCOPE("forward_backward", "train");
        loader->next(ids, targets);
        ag::Tape tape;
        ag::Var loss = model_.loss(tape, ids, targets);
        // Mean over micro-batches: seed the backward pass with 1/accum.
        tape.backward(loss, 1.f / static_cast<float>(accum));
        step_loss += tape.value(loss)[0] / static_cast<float>(accum);
        res.peak_activation_bytes =
            std::max(res.peak_activation_bytes, tape.activation_bytes());
        res.peak_grad_bytes =
            std::max(res.peak_grad_bytes, tape.peak_grad_bytes());
        res.peak_total_bytes =
            std::max(res.peak_total_bytes, tape.peak_total_bytes());
      }
      if (faults && fault::take_at(fault::Kind::kNanGrad, step)) {
        nn::ParamList params = model_.parameters();
        if (!params.empty() && params[0]->grad.size() > 0)
          params[0]->grad[0] = std::nanf("");
      }

      // Gradients are fully accumulated here; the optimizer consumes but
      // does not clear them, so measuring before step() sees the applied
      // update.
      grad_norm = (telemetry || rc.watchdog)
                      ? global_grad_norm(model_.parameters())
                      : 0.0;

      if (rc.watchdog) {
        const std::string why =
            watchdog.check(static_cast<double>(step_loss), grad_norm);
        if (!why.empty()) {
          if (handle_divergence(step, why) == WdAction::kAbort) break;
          continue;
        }
        watchdog.observe(static_cast<double>(step_loss));
        backoff.on_good_step();
      }

      if (cfg_.record_step_losses) res.step_losses.push_back(step_loss);

      lr = sched.lr_at(step) * backoff.scale();
      opt_.set_lr(lr);
      opt_.step(model_.parameters());
      if (qstore_ != nullptr) qstore_->requantize_from_params();
    }

    if (cfg_.eval_every > 0 && (step + 1) % cfg_.eval_every == 0 &&
        step + 1 < cfg_.steps) {
      const double vl = validation_loss(model_, val);
      res.curve.push_back({step + 1, vl, std::exp(vl)});
      if (telemetry) obs::telemetry().set("val_loss", vl);
    }

    if (rotating && (step + 1) % std::max(1, rc.ckpt_every) == 0) {
      const CheckpointResult saved = rotator->save(model_, step + 1, &opt_);
      if (saved.ok) {
        last_ckpt_step = step + 1;
        ++res.checkpoints_saved;
      } else {
        std::fprintf(stderr, "[ckpt] save failed at step %d: %s\n",
                     step + 1, saved.error.c_str());
      }
    }

    if (telemetry) {
      obs::Telemetry& tel = obs::telemetry();
      tel.set("loss", step_loss);
      tel.set("grad_norm", grad_norm);
      tel.set("lr", lr);
      tel.set_int("state_bytes", opt_.state_bytes());
      tel.set_int("activation_bytes", res.peak_activation_bytes);
      tel.set_int("mem.peak_grad_bytes", res.peak_grad_bytes);
      tel.set_int("mem.peak_total_bytes", res.peak_total_bytes);
      if (res.rollbacks > 0) tel.set_int("rollbacks", res.rollbacks);
      tel.set("step_ms",
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        step_t0)
                  .count());
      tel.commit(step + 1);
    }
  }
  const double vl = validation_loss(model_, val);
  res.curve.push_back({cfg_.steps, vl, std::exp(vl)});
  res.final_perplexity = std::exp(vl);
  res.optimizer_state_bytes = opt_.state_bytes();
  return res;
}

}  // namespace apollo::train
