#include "train/trainer.h"

#include <chrono>
#include <cmath>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "train/schedule.h"

namespace apollo::train {

namespace {

// Global gradient norm across all parameters — per-tensor norms accumulate
// sequentially in doubles, matching the repo's reduction determinism rule.
double global_grad_norm(const nn::ParamList& params) {
  double acc = 0;
  for (const nn::Parameter* p : params) {
    const double n = frobenius_norm(p->grad);
    acc += n * n;
  }
  return std::sqrt(acc);
}

}  // namespace

double validation_loss(nn::LlamaModel& model, const data::ValidationSet& vs) {
  APOLLO_CHECK(!vs.ids.empty());
  APOLLO_TRACE_SCOPE("validation_loss", "train");
  double total = 0;
  for (size_t i = 0; i < vs.ids.size(); ++i) {
    ag::Tape tape;
    ag::Var loss = model.loss(tape, vs.ids[i], vs.targets[i]);
    total += tape.value(loss)[0];
  }
  return total / static_cast<double>(vs.ids.size());
}

Trainer::Trainer(nn::LlamaModel& model, optim::Optimizer& opt,
                 const data::TokenSource& corpus, const TrainConfig& cfg)
    : model_(model), opt_(opt), corpus_(corpus), cfg_(cfg) {}

TrainResult Trainer::run() {
  TrainResult res;
  data::BatchLoader loader(corpus_, cfg_.batch, model_.config().seq_len,
                           cfg_.data_seed);
  const data::ValidationSet val = data::make_validation_set(
      corpus_, cfg_.eval_batches, cfg_.batch, model_.config().seq_len,
      cfg_.val_seed);
  CosineSchedule sched(cfg_.lr, cfg_.steps, cfg_.warmup_frac,
                       cfg_.final_lr_frac);

  std::vector<int32_t> ids, targets;
  const int accum = std::max(1, cfg_.grad_accum);
  // One cached-env branch when APOLLO_METRICS is unset — the telemetry path
  // (grad-norm reduction, timing, JSONL write) is never taken.
  const bool telemetry = obs::telemetry_enabled();
  using Clock = std::chrono::steady_clock;
  for (int step = 0; step < cfg_.steps; ++step) {
    APOLLO_TRACE_SCOPE("train.step", "train");
    const Clock::time_point step_t0 = Clock::now();
    if (qstore_ != nullptr) qstore_->dequantize_into_params();
    model_.zero_grads();
    float step_loss = 0.f;
    for (int micro = 0; micro < accum; ++micro) {
      APOLLO_TRACE_SCOPE("forward_backward", "train");
      loader.next(ids, targets);
      ag::Tape tape;
      ag::Var loss = model_.loss(tape, ids, targets);
      // Mean over micro-batches: seed the backward pass with 1/accum.
      tape.backward(loss, 1.f / static_cast<float>(accum));
      step_loss += tape.value(loss)[0] / static_cast<float>(accum);
      res.peak_activation_bytes =
          std::max(res.peak_activation_bytes, tape.activation_bytes());
    }
    if (cfg_.record_step_losses) res.step_losses.push_back(step_loss);

    const float lr = sched.lr_at(step);
    opt_.set_lr(lr);
    // Gradients are fully accumulated here; the optimizer consumes but does
    // not clear them, so measuring before step() sees the applied update.
    const double grad_norm =
        telemetry ? global_grad_norm(model_.parameters()) : 0.0;
    opt_.step(model_.parameters());
    if (qstore_ != nullptr) qstore_->requantize_from_params();

    if (cfg_.eval_every > 0 && (step + 1) % cfg_.eval_every == 0 &&
        step + 1 < cfg_.steps) {
      const double vl = validation_loss(model_, val);
      res.curve.push_back({step + 1, vl, std::exp(vl)});
      if (telemetry) obs::telemetry().set("val_loss", vl);
    }

    if (telemetry) {
      obs::Telemetry& tel = obs::telemetry();
      tel.set("loss", step_loss);
      tel.set("grad_norm", grad_norm);
      tel.set("lr", lr);
      tel.set_int("state_bytes", opt_.state_bytes());
      tel.set_int("activation_bytes", res.peak_activation_bytes);
      tel.set("step_ms",
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        step_t0)
                  .count());
      tel.commit(step + 1);
    }
  }
  const double vl = validation_loss(model_, val);
  res.curve.push_back({cfg_.steps, vl, std::exp(vl)});
  res.final_perplexity = std::exp(vl);
  res.optimizer_state_bytes = opt_.state_bytes();
  return res;
}

}  // namespace apollo::train
