// Fine-tuning harness for the Table 4 / Table 5 reproductions: train a
// pre-trained backbone on a synthetic downstream task (loss only at the
// answer position) and evaluate answer-token accuracy, restricted to the
// choice tokens for multiple-choice tasks.
#pragma once

#include <functional>

#include "data/tasks.h"
#include "nn/llama.h"
#include "optim/optimizer.h"

namespace apollo::train {

struct FinetuneConfig {
  int steps = 60;
  int batch = 8;
  float lr = 3e-4f;   // the paper's fine-tuning LR (Table 9)
  bool linear_decay = true;
  int eval_examples = 128;
};

// Produces one training batch per call.
using BatchFn = std::function<data::TaskGenerator::Batch(int batch)>;

struct FinetuneResult {
  double accuracy = 0;       // after fine-tuning
  double zero_shot = 0;      // before fine-tuning (sanity reference)
  int64_t optimizer_state_bytes = 0;
};

// Accuracy of the current model on a batch of task examples: argmax of the
// answer-position logits over the example's choice set (whole vocabulary if
// the task is open-ended).
double task_accuracy(nn::LlamaModel& model,
                     const data::TaskGenerator::Batch& batch);

FinetuneResult finetune(nn::LlamaModel& model, optim::Optimizer& opt,
                        const BatchFn& train_batches,
                        const BatchFn& eval_batches,
                        const FinetuneConfig& cfg);

}  // namespace apollo::train
