#include "train/finetune.h"

#include <algorithm>

#include "autograd/tape.h"
#include "tensor/matrix.h"

namespace apollo::train {

double task_accuracy(nn::LlamaModel& model,
                     const data::TaskGenerator::Batch& batch) {
  ag::Tape tape;
  ag::Var logits_var = model.forward(tape, batch.ids);
  const Matrix& logits = tape.value(logits_var);
  int correct = 0;
  const int n = static_cast<int>(batch.answer_rows.size());
  for (int i = 0; i < n; ++i) {
    const int row = batch.answer_rows[static_cast<size_t>(i)];
    const float* lr = logits.row(row);
    const auto& choices = batch.choices[static_cast<size_t>(i)];
    int32_t pred;
    if (choices.empty()) {
      pred = 0;
      for (int64_t v = 1; v < logits.cols(); ++v)
        if (lr[v] > lr[pred]) pred = static_cast<int32_t>(v);
    } else {
      pred = choices[0];
      for (int32_t c : choices)
        if (lr[c] > lr[pred]) pred = c;
    }
    // The target token sits in `targets` at the answer row.
    const int32_t truth = batch.targets[static_cast<size_t>(row)];
    correct += (pred == truth);
  }
  return static_cast<double>(correct) / std::max(1, n);
}

FinetuneResult finetune(nn::LlamaModel& model, optim::Optimizer& opt,
                        const BatchFn& train_batches,
                        const BatchFn& eval_batches,
                        const FinetuneConfig& cfg) {
  FinetuneResult res;
  const auto eval_batch = eval_batches(cfg.eval_examples);
  res.zero_shot = task_accuracy(model, eval_batch);

  for (int step = 0; step < cfg.steps; ++step) {
    const auto batch = train_batches(cfg.batch);
    model.zero_grads();
    ag::Tape tape;
    ag::Var loss = model.loss(tape, batch.ids, batch.targets);
    tape.backward(loss);
    const float frac =
        cfg.linear_decay
            ? 1.f - static_cast<float>(step) / static_cast<float>(cfg.steps)
            : 1.f;
    opt.set_lr(cfg.lr * frac);
    opt.step(model.parameters());
  }

  res.accuracy = task_accuracy(model, eval_batch);
  res.optimizer_state_bytes = opt.state_bytes();
  return res;
}

}  // namespace apollo::train
