#include "train/resilience.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "nn/llama.h"
#include "nn/parameter.h"
#include "obs/metrics.h"
#include "optim/optimizer.h"
#include "tensor/matrix.h"

namespace apollo::train {

namespace fs = std::filesystem;

// --- divergence watchdog ---------------------------------------------------

std::string DivergenceWatchdog::check(double loss, double grad_norm) const {
  if (!std::isfinite(loss))
    return "non-finite loss (" + std::to_string(loss) + ")";
  if (!std::isfinite(grad_norm))
    return "non-finite gradient norm (" + std::to_string(grad_norm) + ")";
  if (history_size() >= cfg_.min_history) {
    const double med = running_median();
    if (med > 0.0 && loss > cfg_.spike_factor * med)
      return "loss spike: " + std::to_string(loss) + " > " +
             std::to_string(cfg_.spike_factor) + " x running median " +
             std::to_string(med);
  }
  return std::string();
}

void DivergenceWatchdog::observe(double loss) {
  window_.push_back(loss);
  while (static_cast<int>(window_.size()) > cfg_.median_window)
    window_.pop_front();
}

void DivergenceWatchdog::reset_history() { window_.clear(); }

double DivergenceWatchdog::running_median() const {
  if (window_.empty()) return 0.0;
  std::vector<double> v(window_.begin(), window_.end());
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

// --- rotating checkpoints + auto-resume ------------------------------------

namespace {

// Parses `ckpt_<step>.aplo` filenames; returns -1 for anything else.
int64_t step_of_filename(const std::string& name) {
  constexpr const char* kPrefix = "ckpt_";
  constexpr const char* kSuffix = ".aplo";
  if (name.rfind(kPrefix, 0) != 0) return -1;
  const size_t suffix_at = name.size() >= 5 ? name.size() - 5 : 0;
  if (name.compare(suffix_at, 5, kSuffix) != 0) return -1;
  int64_t step = 0;
  const size_t digits_begin = 5;  // strlen("ckpt_")
  if (suffix_at <= digits_begin) return -1;
  for (size_t i = digits_begin; i < suffix_at; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    step = step * 10 + (name[i] - '0');
  }
  return step;
}

}  // namespace

CheckpointRotator::CheckpointRotator(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(std::max(1, keep)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // A crash mid-save leaves a `.tmp` behind; it is not a checkpoint and
  // must never shadow one, so sweep stale temps on startup.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0)
      fs::remove(entry.path(), ec);
  }
}

std::string CheckpointRotator::path_for(const std::string& dir,
                                        int64_t step) {
  return dir + "/ckpt_" + std::to_string(step) + ".aplo";
}

std::vector<int64_t> CheckpointRotator::list_steps(const std::string& dir) {
  std::vector<int64_t> steps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const int64_t s = step_of_filename(entry.path().filename().string());
    if (s >= 0) steps.push_back(s);
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

CheckpointResult CheckpointRotator::save(nn::LlamaModel& model, int64_t step,
                                         const optim::Optimizer* opt) {
  CheckpointResult r = save_checkpoint(path_for(dir_, step), model, step, opt);
  if (!r.ok) return r;
  std::vector<int64_t> steps = list_steps(dir_);
  std::error_code ec;
  while (static_cast<int>(steps.size()) > keep_) {
    fs::remove(path_for(dir_, steps.front()), ec);
    steps.erase(steps.begin());
  }
  return r;
}

ResumeResult auto_resume(const std::string& dir, nn::LlamaModel& model,
                         optim::Optimizer* opt) {
  ResumeResult rr;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return rr;
  std::vector<int64_t> steps = CheckpointRotator::list_steps(dir);
  if (steps.empty()) return rr;
  obs::Counter& skipped = obs::Registry::instance().counter(
      "ckpt.corrupt_skipped");
  // A corrupt file can be rejected halfway through loading, after some
  // parameters were already overwritten; snapshot the weights so a fully
  // failed scan hands back the model untouched.
  auto params = model.parameters();
  std::vector<Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const nn::Parameter* p : params) snapshot.push_back(p->value);
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    const std::string path = CheckpointRotator::path_for(dir, *it);
    CheckpointResult r = load_checkpoint(path, model, opt);
    if (r.ok) {
      rr.resumed = true;
      rr.step = r.step;
      rr.optimizer_state_restored = r.optimizer_state_restored;
      return rr;
    }
    skipped.add(1);
    rr.skipped.push_back(path + ": " + r.error);
  }
  for (size_t i = 0; i < params.size(); ++i)
    params[i]->value = snapshot[i];
  rr.error = "no loadable checkpoint among " + std::to_string(steps.size()) +
             " candidate(s) in " + dir;
  return rr;
}

}  // namespace apollo::train
