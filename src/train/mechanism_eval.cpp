#include "train/mechanism_eval.h"

#include <cmath>

#include "autograd/tape.h"
#include "tensor/matrix.h"

namespace apollo::train {

MechanismLoss mechanism_loss(nn::LlamaModel& model,
                             const data::SyntheticCorpus& corpus,
                             int batches, int batch, uint64_t seed) {
  const int seq = model.config().seq_len;
  Rng rng(seed);
  MechanismLoss out;

  std::vector<int32_t> tokens;
  std::vector<data::SyntheticCorpus::Mechanism> mech;
  std::vector<int32_t> ids(static_cast<size_t>(batch) * seq);
  std::vector<int32_t> targets(static_cast<size_t>(batch) * seq);
  std::vector<data::SyntheticCorpus::Mechanism> target_mech(
      static_cast<size_t>(batch) * seq);

  for (int b = 0; b < batches; ++b) {
    for (int s = 0; s < batch; ++s) {
      corpus.sample_sequence_annotated(rng, seq + 1, tokens, mech);
      const size_t off = static_cast<size_t>(s) * seq;
      for (int i = 0; i < seq; ++i) {
        ids[off + static_cast<size_t>(i)] = tokens[static_cast<size_t>(i)];
        targets[off + static_cast<size_t>(i)] =
            tokens[static_cast<size_t>(i) + 1];
        target_mech[off + static_cast<size_t>(i)] =
            mech[static_cast<size_t>(i) + 1];
      }
    }
    ag::Tape tape;
    const Matrix& logits = tape.value(model.forward(tape, ids));
    for (int64_t r = 0; r < logits.rows(); ++r) {
      const float* row = logits.row(r);
      float mx = row[0];
      for (int64_t v = 1; v < logits.cols(); ++v) mx = std::max(mx, row[v]);
      double denom = 0;
      for (int64_t v = 0; v < logits.cols(); ++v)
        denom += std::exp(static_cast<double>(row[v]) - mx);
      const int32_t tgt = targets[static_cast<size_t>(r)];
      const double ce =
          -(static_cast<double>(row[tgt]) - mx - std::log(denom));
      switch (target_mech[static_cast<size_t>(r)]) {
        case data::SyntheticCorpus::Mechanism::kMarkov:
          out.markov += ce;
          ++out.markov_n;
          break;
        case data::SyntheticCorpus::Mechanism::kCopy:
          out.copy += ce;
          ++out.copy_n;
          break;
        case data::SyntheticCorpus::Mechanism::kUnigram:
          out.unigram += ce;
          ++out.unigram_n;
          break;
      }
    }
  }
  if (out.markov_n > 0) out.markov /= static_cast<double>(out.markov_n);
  if (out.copy_n > 0) out.copy /= static_cast<double>(out.copy_n);
  if (out.unigram_n > 0) out.unigram /= static_cast<double>(out.unigram_n);
  return out;
}

}  // namespace apollo::train
