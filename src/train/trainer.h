// Pre-training loop: batches from the synthetic corpus, forward/backward on
// a fresh tape per step, LR schedule pushed into the optimizer, optional
// INT8 weight store (Q- variants), periodic validation-perplexity
// checkpoints. Every experiment bench drives training through this one loop
// so methods differ *only* in the optimizer object passed in.
//
// With TrainConfig::resilience configured the loop additionally writes
// rotating crash-consistent checkpoints, auto-resumes from the newest good
// one, and runs the divergence watchdog (rollback + LR backoff on NaN/Inf
// or loss spikes) — see train/resilience.h and docs/RESILIENCE.md. With the
// default (disabled) resilience config the trajectory is bit-identical to
// the pre-resilience trainer.
#pragma once

#include <string>
#include <vector>

#include "core/quantized_weights.h"
#include "data/corpus.h"
#include "data/token_source.h"
#include "nn/llama.h"
#include "optim/optimizer.h"
#include "train/resilience.h"

namespace apollo::train {

struct TrainConfig {
  int steps = 200;
  int batch = 4;
  // Gradient accumulation: each optimizer step accumulates `grad_accum`
  // micro-batches of `batch` sequences (the paper's fixed-total-batch
  // protocol: methods with less memory use bigger micro-batches and fewer
  // accumulation steps for the same total batch).
  int grad_accum = 1;
  float lr = 0.01f;          // the paper's untuned APOLLO/GaLore default
  float warmup_frac = 0.1f;
  float final_lr_frac = 0.1f;
  int eval_every = 0;        // 0 ⇒ evaluate only after the final step
  int eval_batches = 8;
  uint64_t data_seed = 7;
  uint64_t val_seed = 7777;
  bool record_step_losses = false;  // per-step training loss (Fig. 3)
  // Fused backward+optimizer path: apply step_param() to each parameter the
  // moment backward() finalizes its gradient, then free that gradient — so
  // at most one parameter gradient is live at a time instead of all of
  // them. Bit-identical to the unfused step. Also enabled by
  // APOLLO_FUSED_UPDATE=1; silently falls back to the unfused step when
  // grad_accum > 1 (gradients must persist across micro-batches) or fault
  // injection is active (injectors poke at persisted gradients).
  bool fused_update = false;
  // Fault tolerance: rotating checkpoints, auto-resume, divergence
  // watchdog. Default-disabled (empty ckpt_dir, watchdog off).
  ResilienceConfig resilience;
};

struct EvalPoint {
  int step = 0;
  double val_loss = 0;
  double perplexity = 0;
};

struct TrainResult {
  std::vector<EvalPoint> curve;
  double final_perplexity = 0;
  std::vector<float> step_losses;
  int64_t optimizer_state_bytes = 0;
  int64_t peak_activation_bytes = 0;
  // High-water marks from the autograd tape (bytes): parameter gradients
  // alone, and activations + parameter gradients + interior gradients.
  // Under the fused path peak_grad_bytes collapses to roughly the largest
  // single parameter instead of the full parameter count.
  int64_t peak_grad_bytes = 0;
  int64_t peak_total_bytes = 0;
  // Recovery bookkeeping (all zero on a fault-free non-resilient run).
  int64_t resumed_from_step = 0;   // > 0 when auto-resume kicked in
  int rollbacks = 0;               // watchdog-triggered rollbacks
  int checkpoints_saved = 0;       // rotating checkpoint commits
  int corrupt_checkpoints_skipped = 0;  // during auto-resume
  bool diverged = false;  // aborted after the retry budget was exhausted
  std::string divergence_diagnostics;
};

// Mean cross-entropy over a validation set (forward only).
double validation_loss(nn::LlamaModel& model, const data::ValidationSet& vs);

class Trainer {
 public:
  Trainer(nn::LlamaModel& model, optim::Optimizer& opt,
          const data::TokenSource& corpus, const TrainConfig& cfg);

  // Enable Q- mode: weights persist INT8 between steps.
  void set_quantized_weights(core::QuantizedWeightStore* store) {
    qstore_ = store;
  }

  TrainResult run();

 private:
  nn::LlamaModel& model_;
  optim::Optimizer& opt_;
  const data::TokenSource& corpus_;
  TrainConfig cfg_;
  core::QuantizedWeightStore* qstore_ = nullptr;
};

}  // namespace apollo::train
