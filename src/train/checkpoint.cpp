#include "train/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <memory>
#include <unistd.h>
#include <vector>

#include "fault/crc32.h"
#include "fault/fault_injection.h"
#include "nn/parameter.h"
#include "obs/trace.h"
#include "tensor/serialize.h"

namespace apollo::train {

namespace {

constexpr char kMagic[4] = {'A', 'P', 'L', 'O'};
constexpr char kEndMagic[4] = {'O', 'L', 'P', 'A'};
constexpr uint32_t kVersion = 3;
constexpr int kSaveAttempts = 3;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

struct FreeDeleter {
  void operator()(void* p) const { std::free(p); }
};

CheckpointResult fail(const std::string& msg) {
  CheckpointResult r;
  r.error = msg;
  return r;
}

// Streams bytes to a FILE* while accumulating a CRC-32 over everything
// written since the last emit_crc(). All writes short-circuit after the
// first failure so call sites can batch writes and check `ok()` once.
class CrcWriter {
 public:
  explicit CrcWriter(std::FILE* f) : f_(f) {}

  void write(const void* p, size_t n) {
    if (!ok_ || n == 0) return;
    if (std::fwrite(p, 1, n, f_) != n) {
      ok_ = false;
      return;
    }
    crc_ = fault::crc32_update(crc_, p, n);
  }
  template <typename T>
  void write_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(&v, sizeof v);
  }
  // Writes the CRC of the section that just ended (the CRC bytes themselves
  // are not part of any section) and starts a new section.
  void emit_crc() {
    const uint32_t c = fault::crc32_final(crc_);
    if (ok_ && std::fwrite(&c, 1, sizeof c, f_) != sizeof c) ok_ = false;
    crc_ = fault::kCrc32Init;
  }
  // Raw write outside any section (magic bytes).
  void write_raw(const void* p, size_t n) {
    if (ok_ && std::fwrite(p, 1, n, f_) != n) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  uint32_t crc_ = fault::kCrc32Init;
  bool ok_ = true;
};

// Reads bytes while accumulating a CRC-32; check_crc() reads the stored
// section CRC and compares.
class CrcReader {
 public:
  explicit CrcReader(std::FILE* f) : f_(f) {}

  bool read(void* p, size_t n) {
    if (!ok_) return false;
    if (n == 0) return true;
    if (std::fread(p, 1, n, f_) != n) {
      ok_ = false;
      return false;
    }
    crc_ = fault::crc32_update(crc_, p, n);
    return true;
  }
  template <typename T>
  bool read_pod(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return read(&v, sizeof v);
  }
  // Returns true when the stored section CRC matches the accumulated one;
  // starts a new section either way. Truncation mid-CRC also returns false.
  bool check_crc() {
    const uint32_t computed = fault::crc32_final(crc_);
    crc_ = fault::kCrc32Init;
    uint32_t stored = 0;
    if (!ok_ || std::fread(&stored, 1, sizeof stored, f_) != sizeof stored) {
      ok_ = false;
      return false;
    }
    return stored == computed;
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  uint32_t crc_ = fault::kCrc32Init;
  bool ok_ = true;
};

// Serializes the optimizer state into memory so the section can be
// length-prefixed and checksummed. Returns false when the optimizer does
// not support serialization (the caller then writes a weights-only file).
bool capture_optimizer_blob(const optim::Optimizer& opt,
                            const nn::ParamList& params,
                            std::vector<char>* out) {
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* mf = open_memstream(&buf, &len);
  if (mf == nullptr) return false;
  const bool supported = opt.save_state(mf, params);
  std::fclose(mf);
  std::unique_ptr<char, FreeDeleter> owned(buf);
  if (!supported) return false;
  out->assign(owned.get(), owned.get() + len);
  return true;
}

// Writes the full v3 payload into an already-open temp file. `step` is
// forwarded to the fault-injection hooks. Sets *opt_section_off to the file
// offset where the optimizer section begins (for the bitflip_opt fault).
CheckpointResult write_payload(std::FILE* f, const std::string& path,
                               nn::LlamaModel& model, int64_t step,
                               const optim::Optimizer* opt,
                               long* opt_section_off) {
  CrcWriter w(f);
  auto params = model.parameters();
  const uint32_t count = static_cast<uint32_t>(params.size());

  w.write_raw(kMagic, 4);
  w.write_pod(kVersion);
  w.write_pod(step);
  w.write_pod(count);
  w.emit_crc();
  if (!w.ok()) return fail("write failed (header): " + path);

  size_t i = 0;
  for (const nn::Parameter* p : params) {
    // Simulated crash halfway through the parameter sections: the temp
    // file is flushed (so a torn prefix is actually on disk) and the
    // process dies without any cleanup, exactly like a mid-save SIGKILL.
    if (i++ == params.size() / 2 &&
        fault::take_at_or_after(fault::Kind::kCrashInSave, step)) {
      std::fflush(f);
      std::_Exit(fault::kCrashInSaveExitCode);
    }
    const uint32_t name_len = static_cast<uint32_t>(p->name.size());
    const int64_t rows = p->value.rows(), cols = p->value.cols();
    w.write_pod(name_len);
    w.write(p->name.data(), name_len);
    w.write_pod(rows);
    w.write_pod(cols);
    w.write(p->value.data(),
            static_cast<size_t>(p->value.size()) * sizeof(float));
    w.emit_crc();
    if (!w.ok()) return fail("write failed (param " + p->name + "): " + path);
  }

  *opt_section_off = std::ftell(f);
  CheckpointResult r;
  std::vector<char> blob;
  const bool has_state =
      opt != nullptr && capture_optimizer_blob(*opt, params, &blob);
  const uint8_t has_opt = has_state ? 1 : 0;
  w.write_pod(has_opt);
  if (has_state) {
    const std::string name = opt->name();
    const uint32_t name_len = static_cast<uint32_t>(name.size());
    const uint64_t blob_len = blob.size();
    w.write_pod(name_len);
    w.write(name.data(), name_len);
    w.write_pod(blob_len);
    w.write(blob.data(), blob.size());
    r.optimizer_state_restored = true;  // saved, symmetrically
  }
  w.emit_crc();
  w.write_raw(kEndMagic, 4);
  if (!w.ok()) return fail("write failed (optimizer section): " + path);

  r.ok = true;
  r.step = step;
  return r;
}

void backoff_sleep(int attempt) {
  // 10ms, 40ms, 160ms — bounded, long enough for transient EAGAIN/ENOSPC
  // blips to clear, short enough to never matter on the happy path.
  timespec ts{};
  ts.tv_nsec = 10L * 1000 * 1000 << (2 * attempt);
  nanosleep(&ts, nullptr);
}

// Flushes the renamed file's directory so the rename itself is durable.
void fsync_parent_dir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

// Post-commit fault hooks: corrupt the just-renamed checkpoint in the ways
// a less careful writer (or failing hardware) would, so auto-resume's CRC
// scan has something real to detect.
void apply_post_commit_faults(const std::string& path, int64_t step,
                              long opt_section_off) {
  if (fault::take_at_or_after(fault::Kind::kTruncCkpt, step)) {
    FilePtr f(std::fopen(path.c_str(), "rb"));
    long size = 0;
    if (f) {
      std::fseek(f.get(), 0, SEEK_END);
      size = std::ftell(f.get());
      f.reset();
    }
    if (size > 0) {
      if (::truncate(path.c_str(), size / 2) != 0)
        std::fprintf(stderr, "[fault] trunc_ckpt: truncate failed\n");
    }
  }
  if (fault::take_at_or_after(fault::Kind::kBitflipOpt, step)) {
    FilePtr f(std::fopen(path.c_str(), "r+b"));
    if (f) {
      std::fseek(f.get(), 0, SEEK_END);
      const long size = std::ftell(f.get());
      // Midpoint of the optimizer section payload (before its CRC and the
      // end magic): detectable only by the section checksum.
      const long payload_end = size - 8;
      if (payload_end > opt_section_off) {
        const long off = opt_section_off + (payload_end - opt_section_off) / 2;
        std::fseek(f.get(), off, SEEK_SET);
        const int c = std::fgetc(f.get());
        if (c != EOF) {
          std::fseek(f.get(), off, SEEK_SET);
          std::fputc(c ^ 0x10, f.get());
        }
      }
    }
  }
}

}  // namespace

CheckpointResult save_checkpoint(const std::string& path,
                                 nn::LlamaModel& model, int64_t step,
                                 const optim::Optimizer* opt) {
  APOLLO_TRACE_SCOPE("save_checkpoint", "io");
  const std::string tmp = path + ".tmp";
  CheckpointResult last;
  for (int attempt = 0; attempt < kSaveAttempts; ++attempt) {
    if (attempt > 0) backoff_sleep(attempt - 1);
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) {
      last = fail("cannot open for writing: " + tmp);
      continue;
    }
    long opt_section_off = 0;
    CheckpointResult r =
        write_payload(f.get(), tmp, model, step, opt, &opt_section_off);
    if (!r.ok) {
      f.reset();
      std::remove(tmp.c_str());
      last = std::move(r);
      continue;
    }
    // Durability: flush user-space buffers, then the kernel's, then commit
    // via rename, then make the rename itself durable.
    if (std::fflush(f.get()) != 0 || ::fsync(::fileno(f.get())) != 0) {
      f.reset();
      std::remove(tmp.c_str());
      last = fail("fsync failed: " + tmp);
      continue;
    }
    f.reset();
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      last = fail("rename failed: " + tmp + " -> " + path);
      continue;
    }
    fsync_parent_dir(path);
    apply_post_commit_faults(path, step, opt_section_off);
    return r;
  }
  last.error += " (after " + std::to_string(kSaveAttempts) + " attempts)";
  return last;
}

namespace {

// Legacy loader for v1 (weights only) and v2 (optimizer tail, no CRCs)
// files, kept byte-compatible with the original readers.
CheckpointResult load_legacy(std::FILE* f, const std::string& path,
                             uint32_t version, int64_t step,
                             const nn::ParamList& params,
                             optim::Optimizer* opt) {
  for (nn::Parameter* p : params) {
    uint32_t name_len = 0;
    if (!read_pod(f, name_len) || name_len > 4096)
      return fail("corrupt name length near param " + p->name);
    std::string name(name_len, '\0');
    int64_t rows = 0, cols = 0;
    if (!read_bytes(f, name.data(), name_len) || !read_pod(f, rows) ||
        !read_pod(f, cols))
      return fail("truncated param header near " + p->name);
    if (name != p->name)
      return fail("parameter name mismatch: file '" + name + "' vs model '" +
                  p->name + "'");
    if (rows != p->value.rows() || cols != p->value.cols())
      return fail("shape mismatch for " + name);
    if (!read_bytes(f, p->value.data(),
                    static_cast<size_t>(p->value.size()) * sizeof(float)))
      return fail("truncated data for " + name);
  }

  CheckpointResult r;
  r.ok = true;
  r.step = step;
  if (version < 2) return r;  // v1: weights only

  uint8_t has_opt = 0;
  if (!read_pod(f, has_opt)) return r;  // tolerate missing tail
  if (has_opt == 0 || opt == nullptr) return r;
  std::string opt_name;
  if (!read_string(f, opt_name))
    return fail("corrupt optimizer section: " + path);
  if (opt_name != opt->name()) {
    // Different optimizer: weights are loaded, state is skipped.
    return r;
  }
  if (!opt->load_state(f, params))
    return fail("failed to restore optimizer state (" + opt_name + ")");
  r.optimizer_state_restored = true;
  return r;
}

CheckpointResult load_v3(std::FILE* f, const std::string& path,
                         const nn::ParamList& params, optim::Optimizer* opt) {
  CrcReader rd(f);
  for (nn::Parameter* p : params) {
    uint32_t name_len = 0;
    if (!rd.read_pod(name_len) || name_len > 4096)
      return fail("truncated param header near " + p->name);
    std::string name(name_len, '\0');
    int64_t rows = 0, cols = 0;
    if (!rd.read(name.data(), name_len) || !rd.read_pod(rows) ||
        !rd.read_pod(cols))
      return fail("truncated param header near " + p->name);
    if (name != p->name)
      return fail("parameter name mismatch: file '" + name + "' vs model '" +
                  p->name + "'");
    if (rows != p->value.rows() || cols != p->value.cols())
      return fail("shape mismatch for " + name);
    if (!rd.read(p->value.data(),
                 static_cast<size_t>(p->value.size()) * sizeof(float)))
      return fail("truncated data for " + name);
    if (!rd.check_crc())
      return fail(rd.ok() ? "CRC mismatch in parameter section '" + name +
                                "': " + path
                          : "truncated parameter section '" + name +
                                "': " + path);
  }

  CheckpointResult r;
  uint8_t has_opt = 0;
  if (!rd.read_pod(has_opt))
    return fail("truncated optimizer section: " + path);
  std::string opt_name;
  std::vector<char> blob;
  if (has_opt != 0) {
    uint32_t name_len = 0;
    if (!rd.read_pod(name_len) || name_len > 4096)
      return fail("truncated optimizer section: " + path);
    opt_name.assign(name_len, '\0');
    uint64_t blob_len = 0;
    if (!rd.read(opt_name.data(), name_len) || !rd.read_pod(blob_len))
      return fail("truncated optimizer section: " + path);
    if (blob_len > (uint64_t{1} << 33))
      return fail("corrupt optimizer blob length: " + path);
    blob.resize(blob_len);
    if (!rd.read(blob.data(), blob.size()))
      return fail("truncated optimizer section: " + path);
  }
  if (!rd.check_crc())
    return fail(rd.ok() ? "CRC mismatch in optimizer section: " + path
                        : "truncated optimizer section: " + path);
  char end_magic[4];
  if (std::fread(end_magic, 1, 4, f) != 4 ||
      std::memcmp(end_magic, kEndMagic, 4) != 0)
    return fail("missing end marker (truncated tail): " + path);

  r.ok = true;
  if (has_opt != 0 && opt != nullptr && opt_name == opt->name()) {
    // The blob is already CRC-verified; hand the optimizer an in-memory
    // stream so a short blob surfaces as a load failure, not a file error.
    std::FILE* mf = fmemopen(blob.data(), blob.size(), "rb");
    if (mf == nullptr) return fail("cannot open optimizer blob: " + path);
    const bool loaded = opt->load_state(mf, params);
    std::fclose(mf);
    if (!loaded)
      return fail("failed to restore optimizer state (" + opt_name + ")");
    r.optimizer_state_restored = true;
  }
  return r;
}

}  // namespace

CheckpointResult load_checkpoint(const std::string& path,
                                 nn::LlamaModel& model,
                                 optim::Optimizer* opt) {
  APOLLO_TRACE_SCOPE("load_checkpoint", "io");
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return fail("cannot open for reading: " + path);

  // A zero-byte file is what a crashed non-atomic writer leaves behind the
  // moment after open(O_TRUNC); report it distinctly from garbage content.
  std::fseek(f.get(), 0, SEEK_END);
  if (std::ftell(f.get()) == 0)
    return fail("empty checkpoint file: " + path);
  std::fseek(f.get(), 0, SEEK_SET);

  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4)
    return fail("truncated header: " + path);
  if (std::memcmp(magic, kMagic, 4) != 0)
    return fail("bad magic (not an APOLLO checkpoint): " + path);

  uint32_t version = 0;
  if (std::fread(&version, 1, sizeof version, f.get()) != sizeof version)
    return fail("truncated header: " + path);
  if (version != 1 && version != 2 && version != kVersion)
    return fail("unsupported checkpoint version " + std::to_string(version));

  auto params = model.parameters();
  int64_t step = 0;
  uint32_t count = 0;
  if (version == kVersion) {
    // v3 header section: CRC covers version|step|count.
    uint32_t crc = fault::crc32_update(fault::kCrc32Init, &version,
                                       sizeof version);
    if (std::fread(&step, 1, sizeof step, f.get()) != sizeof step ||
        std::fread(&count, 1, sizeof count, f.get()) != sizeof count)
      return fail("truncated header: " + path);
    crc = fault::crc32_update(crc, &step, sizeof step);
    crc = fault::crc32_update(crc, &count, sizeof count);
    uint32_t stored = 0;
    if (std::fread(&stored, 1, sizeof stored, f.get()) != sizeof stored)
      return fail("truncated header: " + path);
    if (stored != fault::crc32_final(crc))
      return fail("CRC mismatch in header: " + path);
  } else {
    if (!read_pod(f.get(), step) || !read_pod(f.get(), count))
      return fail("truncated header: " + path);
  }
  if (count != params.size())
    return fail("parameter count mismatch: file has " +
                std::to_string(count) + ", model has " +
                std::to_string(params.size()));

  CheckpointResult r = version == kVersion
                           ? load_v3(f.get(), path, params, opt)
                           : load_legacy(f.get(), path, version, step,
                                         params, opt);
  if (r.ok) r.step = step;
  return r;
}

}  // namespace apollo::train
