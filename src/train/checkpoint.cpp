#include "train/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "obs/trace.h"
#include "tensor/serialize.h"

namespace apollo::train {

namespace {

constexpr char kMagic[4] = {'A', 'P', 'L', 'O'};
constexpr uint32_t kVersion = 2;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool write_all(std::FILE* f, const void* data, size_t bytes) {
  return std::fwrite(data, 1, bytes, f) == bytes;
}
bool read_all(std::FILE* f, void* data, size_t bytes) {
  return std::fread(data, 1, bytes, f) == bytes;
}

CheckpointResult fail(const std::string& msg) {
  CheckpointResult r;
  r.error = msg;
  return r;
}

}  // namespace

CheckpointResult save_checkpoint(const std::string& path,
                                 nn::LlamaModel& model, int64_t step,
                                 const optim::Optimizer* opt) {
  APOLLO_TRACE_SCOPE("save_checkpoint", "io");
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return fail("cannot open for writing: " + path);

  auto params = model.parameters();
  const uint32_t count = static_cast<uint32_t>(params.size());
  if (!write_all(f.get(), kMagic, 4) ||
      !write_all(f.get(), &kVersion, sizeof kVersion) ||
      !write_all(f.get(), &step, sizeof step) ||
      !write_all(f.get(), &count, sizeof count))
    return fail("write failed (header): " + path);

  for (const nn::Parameter* p : params) {
    const uint32_t name_len = static_cast<uint32_t>(p->name.size());
    const int64_t rows = p->value.rows(), cols = p->value.cols();
    if (!write_all(f.get(), &name_len, sizeof name_len) ||
        !write_all(f.get(), p->name.data(), name_len) ||
        !write_all(f.get(), &rows, sizeof rows) ||
        !write_all(f.get(), &cols, sizeof cols) ||
        !write_all(f.get(), p->value.data(),
                   static_cast<size_t>(p->value.size()) * sizeof(float)))
      return fail("write failed (param " + p->name + "): " + path);
  }

  // Optional optimizer section (v2).
  uint8_t has_opt = 0;
  CheckpointResult r;
  if (opt != nullptr) {
    // Probe support by attempting the save after the flag; unsupported
    // optimizers (save_state returns false immediately, writing nothing)
    // fall back to a weights-only file.
    const long flag_pos = std::ftell(f.get());
    has_opt = 1;
    if (!write_all(f.get(), &has_opt, 1) ||
        !write_string(f.get(), opt->name()))
      return fail("write failed (optimizer header): " + path);
    if (opt->save_state(f.get(), model.parameters())) {
      r.optimizer_state_restored = true;  // saved, symmetrically
    } else {
      // Rewind and mark as weights-only.
      if (std::fseek(f.get(), flag_pos, SEEK_SET) != 0)
        return fail("seek failed: " + path);
      has_opt = 0;
      if (!write_all(f.get(), &has_opt, 1)) return fail("write failed");
      // Note: ftruncate is unnecessary; readers stop at the flag.
    }
  } else {
    if (!write_all(f.get(), &has_opt, 1))
      return fail("write failed (optimizer flag): " + path);
  }
  r.ok = true;
  r.step = step;
  return r;
}

CheckpointResult load_checkpoint(const std::string& path,
                                 nn::LlamaModel& model,
                                 optim::Optimizer* opt) {
  APOLLO_TRACE_SCOPE("load_checkpoint", "io");
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return fail("cannot open for reading: " + path);

  char magic[4];
  uint32_t version = 0, count = 0;
  int64_t step = 0;
  if (!read_all(f.get(), magic, 4) ||
      !read_all(f.get(), &version, sizeof version) ||
      !read_all(f.get(), &step, sizeof step) ||
      !read_all(f.get(), &count, sizeof count))
    return fail("truncated header: " + path);
  if (std::memcmp(magic, kMagic, 4) != 0)
    return fail("bad magic (not an APOLLO checkpoint): " + path);
  if (version != 1 && version != kVersion)
    return fail("unsupported checkpoint version " + std::to_string(version));

  auto params = model.parameters();
  if (count != params.size())
    return fail("parameter count mismatch: file has " +
                std::to_string(count) + ", model has " +
                std::to_string(params.size()));

  for (nn::Parameter* p : params) {
    uint32_t name_len = 0;
    if (!read_all(f.get(), &name_len, sizeof name_len) || name_len > 4096)
      return fail("corrupt name length near param " + p->name);
    std::string name(name_len, '\0');
    int64_t rows = 0, cols = 0;
    if (!read_all(f.get(), name.data(), name_len) ||
        !read_all(f.get(), &rows, sizeof rows) ||
        !read_all(f.get(), &cols, sizeof cols))
      return fail("truncated param header near " + p->name);
    if (name != p->name)
      return fail("parameter name mismatch: file '" + name + "' vs model '" +
                  p->name + "'");
    if (rows != p->value.rows() || cols != p->value.cols())
      return fail("shape mismatch for " + name);
    if (!read_all(f.get(), p->value.data(),
                  static_cast<size_t>(p->value.size()) * sizeof(float)))
      return fail("truncated data for " + name);
  }

  CheckpointResult r;
  r.ok = true;
  r.step = step;
  if (version < 2) return r;  // v1: weights only

  uint8_t has_opt = 0;
  if (!read_all(f.get(), &has_opt, 1)) return r;  // tolerate missing tail
  if (has_opt == 0 || opt == nullptr) return r;
  std::string opt_name;
  if (!read_string(f.get(), opt_name))
    return fail("corrupt optimizer section: " + path);
  if (opt_name != opt->name()) {
    // Different optimizer: weights are loaded, state is skipped.
    return r;
  }
  if (!opt->load_state(f.get(), model.parameters()))
    return fail("failed to restore optimizer state (" + opt_name + ")");
  r.optimizer_state_restored = true;
  return r;
}

}  // namespace apollo::train
