// Deterministic fault-injection harness, armed by APOLLO_FAULTS.
//
// A fault spec is a semicolon-separated list of `kind@step` events, e.g.
//
//   APOLLO_FAULTS="nan_grad@40;trunc_ckpt@80;crash@120"
//
// Each event fires exactly once, at a deterministic point:
//
//   nan_grad@S     the trainer poisons one gradient entry with a quiet NaN
//                  after the backward pass of step index S (0-based);
//   crash@S        the trainer calls _Exit(kCrashExitCode) at the *start*
//                  of step index S — a simulated kill: no atexit flushing,
//                  no destructors, exactly like SIGKILL mid-training;
//   crash_save@S   save_checkpoint calls _Exit(kCrashInSaveExitCode)
//                  halfway through writing the temp file of the first save
//                  whose step is ≥ S — proves the temp+rename protocol
//                  never exposes a torn final file;
//   trunc_ckpt@S   after the first checkpoint save with step ≥ S commits,
//                  the on-disk file is truncated to half its size —
//                  the torn write a non-atomic writer would have left;
//   bitflip_opt@S  after the first checkpoint save with step ≥ S commits,
//                  one bit inside the optimizer-state section is flipped —
//                  undetectable without the v3 per-section CRCs.
//
// The injector is process-global and cached like the other APOLLO_* knobs:
// when APOLLO_FAULTS is unset, every query is one branch on a cached flag.
// Tests arm it programmatically with fault::set_spec(). Every fired event
// increments the `fault.injected` registry counter and logs one line to
// stderr, so recovery telemetry can prove which faults a run survived.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apollo::fault {

// Exit codes of the simulated-crash faults, asserted by subprocess tests.
inline constexpr int kCrashExitCode = 42;
inline constexpr int kCrashInSaveExitCode = 86;

enum class Kind : uint8_t {
  kNanGrad,
  kCrash,
  kCrashInSave,
  kTruncCkpt,
  kBitflipOpt,
};

const char* kind_name(Kind k);

struct Event {
  Kind kind = Kind::kNanGrad;
  int64_t step = 0;
  bool fired = false;
};

struct Plan {
  std::vector<Event> events;
};

// Parses a fault spec. Returns false and sets `*err` (when non-null) on a
// malformed spec: unknown kind, missing '@', non-numeric/negative step, or
// an empty event between separators.
bool parse_spec(const std::string& spec, Plan* plan, std::string* err);

// True when the injector is armed with at least one unfired event. One
// cached-env branch when APOLLO_FAULTS is unset.
bool enabled();

// Override the active plan: a spec string arms the injector, "" disarms,
// nullptr re-reads APOLLO_FAULTS. A malformed spec aborts with a
// diagnostic — a fault harness that silently mis-parses would make a
// failing resilience test look like a pass.
void set_spec(const char* spec);

// Consumes (at most once) the first unfired event of `kind` whose step is
// exactly `step`. Used for the trainer-loop faults (nan_grad, crash).
bool take_at(Kind kind, int64_t step);

// Consumes the first unfired event of `kind` whose step is ≤ `step` (the
// event "ripens" at its step and fires at the next opportunity). Used for
// the checkpoint faults, which can only fire when a save actually happens.
bool take_at_or_after(Kind kind, int64_t step);

}  // namespace apollo::fault
