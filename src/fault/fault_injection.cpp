#include "fault/fault_injection.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace apollo::fault {

namespace {

struct Injector {
  Plan plan;
  std::atomic<bool> armed{false};

  static Injector& instance() {
    // Immortal (never destroyed): queries may race atexit teardown when a
    // simulated crash fires late, mirroring the obs-layer lifetime rule.
    static Injector* inj = new Injector;  // lint:allow(raw-new-delete)
    return *inj;
  }

  void load(const char* spec) {
    plan.events.clear();
    if (spec != nullptr && spec[0] != '\0') {
      std::string err;
      if (!parse_spec(spec, &plan, &err)) {
        std::fprintf(stderr, "APOLLO_FAULTS: %s\n", err.c_str());
        std::abort();
      }
    }
    armed.store(!plan.events.empty(), std::memory_order_release);
  }

  void refresh_armed() {
    bool any = false;
    for (const Event& e : plan.events) any = any || !e.fired;
    armed.store(any, std::memory_order_release);
  }
};

void ensure_env_loaded() {
  static const bool once = [] {
    Injector::instance().load(std::getenv("APOLLO_FAULTS"));
    return true;
  }();
  (void)once;
}

void record_fired(const Event& e) {
  obs::Registry::instance().counter("fault.injected").add(1);
  std::fprintf(stderr, "[fault] injected %s at step %lld\n",
               kind_name(e.kind), static_cast<long long>(e.step));
}

bool take_matching(Kind kind, int64_t step, bool at_or_after) {
  ensure_env_loaded();
  Injector& inj = Injector::instance();
  if (!inj.armed.load(std::memory_order_acquire)) return false;
  for (Event& e : inj.plan.events) {
    if (e.fired || e.kind != kind) continue;
    if (at_or_after ? e.step <= step : e.step == step) {
      e.fired = true;
      inj.refresh_armed();
      record_fired(e);
      return true;
    }
  }
  return false;
}

}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kNanGrad: return "nan_grad";
    case Kind::kCrash: return "crash";
    case Kind::kCrashInSave: return "crash_save";
    case Kind::kTruncCkpt: return "trunc_ckpt";
    case Kind::kBitflipOpt: return "bitflip_opt";
  }
  return "?";
}

bool parse_spec(const std::string& spec, Plan* plan, std::string* err) {
  const auto fail = [err](const std::string& msg) {
    if (err != nullptr) *err = msg;
    return false;
  };
  Plan out;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    // Trim surrounding whitespace.
    size_t b = pos, e = end;
    while (b < e && (spec[b] == ' ' || spec[b] == '\t')) ++b;
    while (e > b && (spec[e - 1] == ' ' || spec[e - 1] == '\t')) --e;
    const std::string tok = spec.substr(b, e - b);
    pos = end + 1;
    if (tok.empty()) continue;  // tolerate empty segments / trailing ';'
    const size_t at = tok.find('@');
    if (at == std::string::npos)
      return fail("fault event '" + tok + "' is missing '@step'");
    const std::string name = tok.substr(0, at);
    const std::string step_s = tok.substr(at + 1);
    Event ev;
    bool known = false;
    for (Kind k : {Kind::kNanGrad, Kind::kCrash, Kind::kCrashInSave,
                   Kind::kTruncCkpt, Kind::kBitflipOpt}) {
      if (name == kind_name(k)) {
        ev.kind = k;
        known = true;
        break;
      }
    }
    if (!known) return fail("unknown fault kind '" + name + "'");
    if (step_s.empty()) return fail("fault event '" + tok + "' has no step");
    int64_t step = 0;
    for (char c : step_s) {
      if (c < '0' || c > '9')
        return fail("fault step '" + step_s + "' is not a non-negative integer");
      step = step * 10 + (c - '0');
      if (step > (int64_t{1} << 40))
        return fail("fault step '" + step_s + "' is out of range");
    }
    ev.step = step;
    out.events.push_back(ev);
  }
  if (plan != nullptr) *plan = std::move(out);
  return true;
}

bool enabled() {
  ensure_env_loaded();
  return Injector::instance().armed.load(std::memory_order_acquire);
}

void set_spec(const char* spec) {
  ensure_env_loaded();
  Injector::instance().load(spec != nullptr ? spec
                                            : std::getenv("APOLLO_FAULTS"));
}

bool take_at(Kind kind, int64_t step) {
  return take_matching(kind, step, /*at_or_after=*/false);
}

bool take_at_or_after(Kind kind, int64_t step) {
  return take_matching(kind, step, /*at_or_after=*/true);
}

}  // namespace apollo::fault
