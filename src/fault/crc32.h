// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used by checkpoint
// format v3 to make on-disk state self-validating: every section carries a
// checksum, so a torn write, a truncation or a flipped bit is detected at
// load time instead of silently corrupting a resumed run.
//
// Streaming interface: start from kCrc32Init, feed chunks through
// crc32_update, finish with crc32_final. The one-shot crc32() helper wraps
// the three for whole buffers. Table-driven, byte-at-a-time — checkpoint
// I/O is disk-bound, so this is never the bottleneck.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace apollo::fault {

inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;

namespace detail {
inline const std::array<uint32_t, 256>& crc32_table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

inline uint32_t crc32_update(uint32_t state, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = detail::crc32_table();
  for (size_t i = 0; i < n; ++i) state = table[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  return state;
}

inline uint32_t crc32_final(uint32_t state) { return state ^ 0xFFFFFFFFu; }

inline uint32_t crc32(const void* data, size_t n) {
  return crc32_final(crc32_update(kCrc32Init, data, n));
}

}  // namespace apollo::fault
