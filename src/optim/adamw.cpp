#include "optim/adamw.h"

#include "nn/parameter.h"
#include "tensor/serialize.h"

namespace apollo::optim {

// Pure serialization: `params` only fixes the slot count, shapes are
// validated by read_matrix/write_matrix.
// lint:allow(check-shape-preconditions)
bool AdamW::save_state(std::FILE* f, const nn::ParamList& params) const {
  return write_pod(f, t_) &&
         core_.save(f, static_cast<int64_t>(params.size()));
}

// lint:allow(check-shape-preconditions)
bool AdamW::load_state(std::FILE* f, const nn::ParamList& params) {
  return read_pod(f, t_) &&
         core_.load(f, static_cast<int64_t>(params.size()));
}

}  // namespace apollo::optim
