#include "optim/adamw.h"

#include "tensor/serialize.h"

namespace apollo::optim {

namespace {
std::vector<const void*> keys_of(const nn::ParamList& params) {
  std::vector<const void*> keys;
  keys.reserve(params.size());
  for (const nn::Parameter* p : params) keys.push_back(p);
  return keys;
}
}  // namespace

// Pure serialization: `params` only fixes key order, shapes are validated
// by read_matrix/write_matrix.
// lint:allow(check-shape-preconditions)
bool AdamW::save_state(std::FILE* f, const nn::ParamList& params) const {
  return write_pod(f, t_) && core_.save(f, keys_of(params));
}

// lint:allow(check-shape-preconditions)
bool AdamW::load_state(std::FILE* f, const nn::ParamList& params) {
  return read_pod(f, t_) && core_.load(f, keys_of(params));
}

}  // namespace apollo::optim
