// Optimizer interface shared by AdamW, SGD, Adam-mini, GaLore, Fira, Flora,
// the LoRA-family adapters, the 8-bit baselines and the APOLLO series.
//
// An optimizer consumes the gradients accumulated in nn::Parameter::grad and
// mutates Parameter::value in place. The learning rate is pushed in every
// step by the scheduler (train/schedule.h). `state_bytes()` reports the
// *actual* bytes held in optimizer state, which the tests cross-check
// against the closed-form Table-1 formulas in sysmodel/memory_model.h.
//
// The update API is streaming: a step is
//
//     begin_step(params);
//     step_param(*params[i], i);   // once per parameter, in ANY order
//     end_step(params);
//
// begin_step performs every whole-step decision that must happen in a fixed
// order — the shared step-counter increment, RNG draws for projection seeds,
// state-slot allocation — so the per-parameter updates are order-independent
// and mathematically independent. That independence is what lets the fused
// trainer path (train/trainer.cpp, APOLLO_FUSED_UPDATE=1) apply step_param
// inside Tape::backward the moment a layer's gradient is final, keeping peak
// gradient memory at O(largest layer) instead of O(all parameters) — the
// paper's layer-wise gradient update (§5.4, Lv et al. 2023).
//
// Per-parameter state is keyed by the parameter's *slot* — its index in the
// canonical ParamList — which also fixes the save_state/load_state record
// order (unchanged from the pointer-keyed era, so v3 checkpoints stay
// byte-compatible).
//
// step(params) remains as a thin compatibility loop over the streaming API.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "nn/parameter.h"

namespace apollo::optim {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // --- streaming per-parameter update API --------------------------------

  // Advances the shared step counter and performs all order-sensitive
  // whole-step work (seed draws, projector-refresh decisions, slot
  // allocation) by iterating `params` in slot order. Overrides must call the
  // base first.
  virtual void begin_step(const nn::ParamList& params);
  // Applies this step's update to one parameter. `slot` is the parameter's
  // index in the ParamList passed to begin_step. Calls between a
  // begin_step/end_step pair may arrive in any order; each parameter exactly
  // once.
  virtual void step_param(nn::Parameter& p, int slot) = 0;
  // Whole-step epilogue: deferred order-sensitive work (ReLoRA merges,
  // telemetry flush) and the post-step finite check. Overrides call the base
  // last.
  virtual void end_step(const nn::ParamList& params);

  // Two-phase compatibility path: begin → every param in slot order → end.
  void step(const nn::ParamList& params);

  virtual std::string name() const = 0;
  virtual int64_t state_bytes() const = 0;

  // Optional state serialization for exact training resume. `params` fixes
  // the key order (states are stored per-slot in list order). An
  // optimizer without support returns false; checkpoints then carry only
  // the weights. Implemented by AdamW and the APOLLO series.
  // Default no-ops never touch the arguments, so there is nothing to check.
  // lint:allow(check-shape-preconditions)
  virtual bool save_state(std::FILE* /*f*/,
                          const nn::ParamList& /*params*/) const {
    return false;
  }
  // lint:allow(check-shape-preconditions)
  virtual bool load_state(std::FILE* /*f*/, const nn::ParamList& /*params*/) {
    return false;
  }

  // Recovery hooks used by the divergence watchdog (train/resilience.h).
  // `reseed_projection` deterministically re-derives any internal
  // random-projection seeds from the old seed and `salt`, so a retry after
  // rollback explores a different subspace instead of replaying the diverged
  // one; returns the number of re-seeded states (0 = not applicable).
  virtual int64_t reseed_projection(uint64_t /*salt*/) { return 0; }
  // `tighten_norm_limiter` moves the norm-growth limiter's gamma toward 1:
  // gamma -> 1 + (gamma - 1) * factor, factor in (0, 1]. Returns false when
  // the optimizer has no limiter to tighten.
  virtual bool tighten_norm_limiter(float /*factor*/) { return false; }

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t steps_taken() const { return t_; }

 protected:
  // Label for the step() trace slice. Must return a string literal (the
  // tracer stores the pointer, obs/trace.h).
  virtual const char* step_trace_name() const { return "Optimizer::step"; }

  float lr_ = 1e-3f;
  int64_t t_ = 0;
};

// Hyper-parameters shared by every Adam-derived method (paper defaults).
struct AdamHyper {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.f;
};

// Adam bias-correction factors 1 − β₁ᵗ / 1 − β₂ᵗ — the per-step bookkeeping
// every Adam-derived method used to recompute inline.
struct BiasCorrection {
  float c1 = 1.f;
  float c2 = 1.f;
};

inline BiasCorrection bias_correction(const AdamHyper& hp, int64_t t) {
  return {1.f - std::pow(hp.beta1, static_cast<float>(t)),
          1.f - std::pow(hp.beta2, static_cast<float>(t))};
}

}  // namespace apollo::optim
