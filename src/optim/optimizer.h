// Optimizer interface shared by AdamW, SGD, Adam-mini, GaLore, Fira, Flora,
// the LoRA-family adapters, the 8-bit baselines and the APOLLO series.
//
// An optimizer consumes the gradients accumulated in nn::Parameter::grad and
// mutates Parameter::value in place. The learning rate is pushed in every
// step by the scheduler (train/schedule.h). `state_bytes()` reports the
// *actual* bytes held in optimizer state, which the tests cross-check
// against the closed-form Table-1 formulas in sysmodel/memory_model.h.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "nn/parameter.h"

namespace apollo::optim {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual void step(const nn::ParamList& params) = 0;
  virtual std::string name() const = 0;
  virtual int64_t state_bytes() const = 0;

  // Optional state serialization for exact training resume. `params` fixes
  // the key order (states are stored per-parameter in list order). An
  // optimizer without support returns false; checkpoints then carry only
  // the weights. Implemented by AdamW and the APOLLO series.
  // Default no-ops never touch the arguments, so there is nothing to check.
  // lint:allow(check-shape-preconditions)
  virtual bool save_state(std::FILE* /*f*/,
                          const nn::ParamList& /*params*/) const {
    return false;
  }
  // lint:allow(check-shape-preconditions)
  virtual bool load_state(std::FILE* /*f*/, const nn::ParamList& /*params*/) {
    return false;
  }

  // Recovery hooks used by the divergence watchdog (train/resilience.h).
  // `reseed_projection` deterministically re-derives any internal
  // random-projection seeds from the old seed and `salt`, so a retry after
  // rollback explores a different subspace instead of replaying the diverged
  // one; returns the number of re-seeded states (0 = not applicable).
  virtual int64_t reseed_projection(uint64_t /*salt*/) { return 0; }
  // `tighten_norm_limiter` moves the norm-growth limiter's gamma toward 1:
  // gamma -> 1 + (gamma - 1) * factor, factor in (0, 1]. Returns false when
  // the optimizer has no limiter to tighten.
  virtual bool tighten_norm_limiter(float /*factor*/) { return false; }

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t steps_taken() const { return t_; }

 protected:
  float lr_ = 1e-3f;
  int64_t t_ = 0;
};

// Hyper-parameters shared by every Adam-derived method (paper defaults).
struct AdamHyper {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.f;
};

}  // namespace apollo::optim
