// AdamW with BF16-stored moments: compute in fp32, persist M and V in
// bfloat16 — the storage convention behind the paper's memory estimates
// ("all experiments in BF16"). Together with Adam8bit this completes the
// state-precision ladder fp32 → bf16 → int8 exercised by
// bench_ablation_precision.
#pragma once

#include <cmath>
#include <memory>
#include <unordered_map>

#include "obs/trace.h"
#include "optim/finite_guard.h"
#include "optim/optimizer.h"
#include "quant/bf16.h"

namespace apollo::optim {

class AdamWBf16 : public Optimizer {
 public:
  explicit AdamWBf16(const AdamHyper& hp = {}) : hp_(hp) {}

  void step(const nn::ParamList& params) override {
    APOLLO_TRACE_SCOPE("AdamWBf16::step", "optim");
    ++t_;
    const float b1 = hp_.beta1, b2 = hp_.beta2;
    const float bc1 = 1.f - std::pow(b1, static_cast<float>(t_));
    const float bc2 = 1.f - std::pow(b2, static_cast<float>(t_));
    for (nn::Parameter* p : params) {
      APOLLO_CHECK_SAME_SHAPE(p->value, p->grad);
      State& s = states_[p];
      const Matrix& g = p->grad;
      if (!s.m) {
        s.m = std::make_unique<Bf16Buffer>(g.rows(), g.cols());
        s.v = std::make_unique<Bf16Buffer>(g.rows(), g.cols());
      }
      Matrix m = s.m->load();
      Matrix v = s.v->load();
      for (int64_t i = 0; i < g.size(); ++i) {
        m[i] = b1 * m[i] + (1.f - b1) * g[i];
        v[i] = b2 * v[i] + (1.f - b2) * g[i] * g[i];
        p->value[i] -= lr_ * ((m[i] / bc1) /
                                  (std::sqrt(v[i] / bc2) + hp_.eps) +
                              hp_.weight_decay * p->value[i]);
      }
      s.m->store(m);
      s.v->store(v);
    }
    check_step_finite(params, name());
  }

  std::string name() const override { return "AdamW (bf16 states)"; }
  int64_t state_bytes() const override {
    int64_t b = 0;
    for (const auto& [k, s] : states_)
      if (s.m) b += s.m->bytes() + s.v->bytes();
    return b;
  }

 private:
  struct State {
    std::unique_ptr<Bf16Buffer> m, v;
  };
  AdamHyper hp_;
  std::unordered_map<const nn::Parameter*, State> states_;
};

}  // namespace apollo::optim
