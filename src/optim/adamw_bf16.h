// AdamW with BF16-stored moments: compute in fp32, persist M and V in
// bfloat16 — the storage convention behind the paper's memory estimates
// ("all experiments in BF16"). Together with Adam8bit this completes the
// state-precision ladder fp32 → bf16 → int8 exercised by
// bench_ablation_precision.
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "nn/parameter.h"
#include "optim/optimizer.h"
#include "quant/bf16.h"
#include "tensor/check.h"
#include "tensor/matrix.h"

namespace apollo::optim {

class AdamWBf16 : public Optimizer {
 public:
  explicit AdamWBf16(const AdamHyper& hp = {}) : hp_(hp) {}

  void begin_step(const nn::ParamList& params) override {
    Optimizer::begin_step(params);
    bc_ = bias_correction(hp_, t_);
    if (states_.size() < params.size()) states_.resize(params.size());
  }

  void step_param(nn::Parameter& p, int slot) override {
    APOLLO_CHECK_SAME_SHAPE(p.value, p.grad);
    const float b1 = hp_.beta1, b2 = hp_.beta2;
    State& s = states_[static_cast<size_t>(slot)];
    const Matrix& g = p.grad;
    if (!s.m) {
      // Lazy first-step state init, sized to the parameter once.
      s.m = std::make_unique<Bf16Buffer>(  // lint:allow(hot-path-alloc)
          g.rows(), g.cols());
      s.v = std::make_unique<Bf16Buffer>(  // lint:allow(hot-path-alloc)
          g.rows(), g.cols());
    }
    Matrix m = s.m->load();
    Matrix v = s.v->load();
    for (int64_t i = 0; i < g.size(); ++i) {
      m[i] = b1 * m[i] + (1.f - b1) * g[i];
      v[i] = b2 * v[i] + (1.f - b2) * g[i] * g[i];
      p.value[i] -= lr_ * ((m[i] / bc_.c1) /
                               (std::sqrt(v[i] / bc_.c2) + hp_.eps) +
                           hp_.weight_decay * p.value[i]);
    }
    s.m->store(m);
    s.v->store(v);
  }

  std::string name() const override { return "AdamW (bf16 states)"; }
  int64_t state_bytes() const override {
    int64_t b = 0;
    for (const State& s : states_)
      if (s.m) b += s.m->bytes() + s.v->bytes();
    return b;
  }

 protected:
  const char* step_trace_name() const override { return "AdamWBf16::step"; }

 private:
  struct State {
    std::unique_ptr<Bf16Buffer> m, v;
  };
  AdamHyper hp_;
  BiasCorrection bc_;
  std::vector<State> states_;  // indexed by slot
};

}  // namespace apollo::optim
