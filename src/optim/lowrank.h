// Weight-side low-rank baselines: Low-Rank factorization (W = U·V), LoRA,
// ReLoRA and a DoRA-lite variant (Table 2 / Table 4 baselines).
//
// These methods restrict the *trainable parameterization* rather than the
// optimizer state. To keep one training loop for every method, they are
// implemented as gradient-transforming optimizers: the model still exposes a
// dense weight W (used by forward/backward), the adapter maintains the
// factors, derives the factor gradients from the dense gradient by the chain
// rule (dB = G·Aᵀ, dA = Bᵀ·G — exact, since W is an affine function of the
// factors), updates the factors with AdamW, and writes the recomposed dense
// weight back. This is mathematically identical to training the factors
// directly and reproduces the characteristic behaviour the paper reports
// (LoRA-family struggles at pre-training, is fine at fine-tuning).
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "nn/parameter.h"
#include "optim/dense_adam.h"
#include "optim/optimizer.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace apollo::optim {

enum class AdapterKind {
  kFactorized,  // W = U·V, both trained (the paper's "Low-Rank" baseline)
  kLora,        // W = W0 + B·A, W0 frozen
  kRelora,      // LoRA with periodic merge-and-restart
  kDora,        // LoRA + trained per-row magnitude (first-order DoRA)
};

struct AdapterConfig {
  AdapterKind kind = AdapterKind::kLora;
  int64_t rank = 4;
  int merge_freq = 200;  // ReLoRA merge period
  float lora_alpha = 2.f;  // adapter scale: W0 + (α/r)·B·A... kept =r-normalized
  AdamHyper hyper;
  uint64_t seed = 99;
};

class LowRankAdapter : public Optimizer {
 public:
  explicit LowRankAdapter(const AdapterConfig& cfg);

  // All rng_ draws (adapter inits, ReLoRA restarts) happen in begin_step /
  // end_step, in slot order, so step_param() is order-independent — the
  // fused backward path may deliver parameters in completion order.
  void begin_step(const nn::ParamList& params) override;
  void step_param(nn::Parameter& p, int slot) override;
  void end_step(const nn::ParamList& params) override;
  std::string name() const override;
  int64_t state_bytes() const override;

 protected:
  const char* step_trace_name() const override {
    return "LowRankAdapter::step";
  }

 private:
  struct State {
    Matrix w0;      // frozen base (LoRA family); empty for kFactorized
    Matrix a;       // r×in
    Matrix b;       // out×r
    Matrix mag;     // out×1 row magnitudes (kDora only)
    int64_t local_t = 0;
    bool initialized = false;
  };

  // Pure routing predicate — nothing shape-dependent to verify.
  // lint:allow(check-shape-preconditions)
  bool adapted(const nn::Parameter& p) const {
    return p.matrix_shaped &&
           std::min(p.value.rows(), p.value.cols()) > cfg_.rank;
  }
  void init_state(nn::Parameter* p, State& s);
  void recompose(nn::Parameter* p, State& s);

  AdapterConfig cfg_;
  // Moments for the factors live in factor_adam_ under fixed sub-slots per
  // parameter slot: mag = 3·slot, B = 3·slot+1, A = 3·slot+2.
  DenseAdamCore factor_adam_;
  DenseAdamCore dense_;        // 1-D fallback (keyed by the param slot)
  std::vector<State> states_;  // indexed by slot
  Rng rng_;
};

}  // namespace apollo::optim
