// Post-step numeric-safety hook shared by every optimizer.
//
// Called at the end of each Optimizer::step(); under APOLLO_CHECK_FINITE=1
// (see tensor/finite.h) it verifies that no parameter picked up a NaN/Inf
// from the update, reporting the parameter name and the step that corrupted
// it. Zero work when the mode is off beyond one branch per step.
#pragma once

#include <string>

#include "nn/parameter.h"
#include "tensor/finite.h"

namespace apollo::optim {

// This IS the check layer; nothing shape-dependent to verify up front.
// lint:allow(check-shape-preconditions)
inline void check_step_finite(const nn::ParamList& params,
                              const std::string& optimizer_name) {
  if (!finite_checks_enabled()) return;
  const std::string when = optimizer_name + " step";
  for (const nn::Parameter* p : params)
    check_finite_or_die(p->value, p->name.c_str(), when.c_str());
}

}  // namespace apollo::optim
