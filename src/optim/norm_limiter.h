// Norm-growth limiter (Eq. 4, adopted from Fira): if the scaled-gradient
// norm grows by more than a factor γ between consecutive steps, rescale it
// back to γ·previous-norm. This is what removes the early-training loss
// spike of structured learning-rate adaptation (Fig. 3, green vs. orange
// curve). The limiter's state is a single float per parameter — one of the
// two "+2" constants in the APOLLO column of Table 1 (the other is the
// projection seed).
#pragma once

#include "tensor/check.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace apollo::optim {

class NormGrowthLimiter {
 public:
  explicit NormGrowthLimiter(float gamma = 1.01f) : gamma_(gamma) {}

  // Rescales `g` in place if its norm grew faster than γ; updates the
  // tracked norm either way. Returns true when the update was clipped, so
  // callers can report a clip fraction without recomputing norms.
  bool apply(Matrix& g) {
    APOLLO_CHECK_GT(g.size(), 0);
    const double n = frobenius_norm(g);
    if (prev_ > 0.0 && n > gamma_ * prev_ && n > 0.0) {
      scale_inplace(g, static_cast<float>(gamma_ * prev_ / n));
      prev_ = gamma_ * prev_;
      return true;
    }
    prev_ = n;
    return false;
  }

  double tracked_norm() const { return prev_; }
  // Restore the tracked norm when resuming from a checkpoint.
  void set_tracked_norm(double n) { prev_ = n; }
  float gamma() const { return gamma_; }
  // Tightened by the divergence watchdog's last-resort escalation
  // (Optimizer::tighten_norm_limiter): a gamma closer to 1 clips harder.
  void set_gamma(float g) { gamma_ = g; }
  static constexpr int64_t state_floats() { return 1; }

 private:
  float gamma_;
  double prev_ = -1.0;
};

}  // namespace apollo::optim
