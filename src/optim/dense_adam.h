// A reusable full-rank AdamW core. Besides backing the AdamW baseline it is
// embedded by every projected optimizer (GaLore/Fira/APOLLO/…) to handle the
// parameters that are *not* low-rank-projected (1-D RMSNorm gains), matching
// how the reference implementations treat non-2D tensors.
#pragma once

#include <vector>

#include "optim/optimizer.h"
#include "tensor/matrix.h"

namespace apollo::optim {

class DenseAdamCore {
 public:
  explicit DenseAdamCore(const AdamHyper& hp) : hp_(hp) {}

  // One AdamW update of `value` from `grad`; `t` is the 1-based step index
  // used for bias correction. State is keyed by `slot` — the parameter's
  // index in the owning optimizer's ParamList (owners with several moment
  // sets per parameter map them to disjoint slot ranges). Slots are sparse:
  // untouched slots hold no state.
  void update(int64_t slot, Matrix& value, const Matrix& grad,
              float lr, int64_t t);

  int64_t state_bytes() const {
    int64_t b = 0;
    for (const State& s : states_)
      b += (s.m.size() + s.v.size()) * static_cast<int64_t>(sizeof(float));
    return b;
  }

  void reset() { states_.clear(); }
  // Drop the moments of one slot (ReLoRA's optimizer-state reset on merge).
  void reset_slot(int64_t slot) {
    if (slot < static_cast<int64_t>(states_.size()))
      states_[static_cast<size_t>(slot)] = State();
  }

  // Serialize the moments of slots [0, n_slots) in order; slots without
  // state are written as empty matrices. Used by the owning optimizer's
  // save_state; the record layout matches the old pointer-keyed format, so
  // existing checkpoints stay byte-compatible.
  bool save(std::FILE* f, int64_t n_slots) const;
  bool load(std::FILE* f, int64_t n_slots);

 private:
  struct State {
    Matrix m, v;
  };
  AdamHyper hp_;
  std::vector<State> states_;  // indexed by slot; empty m ⇒ no state
};

}  // namespace apollo::optim
