// A reusable full-rank AdamW core. Besides backing the AdamW baseline it is
// embedded by every projected optimizer (GaLore/Fira/APOLLO/…) to handle the
// parameters that are *not* low-rank-projected (1-D RMSNorm gains), matching
// how the reference implementations treat non-2D tensors.
#pragma once

#include <unordered_map>
#include <vector>

#include "optim/optimizer.h"
#include "tensor/matrix.h"

namespace apollo::optim {

class DenseAdamCore {
 public:
  explicit DenseAdamCore(const AdamHyper& hp) : hp_(hp) {}

  // One AdamW update of `value` from `grad`; `t` is the 1-based step index
  // used for bias correction. State is keyed by the parameter pointer.
  void update(const void* key, Matrix& value, const Matrix& grad,
              float lr, int64_t t);

  int64_t state_bytes() const {
    int64_t b = 0;
    for (const auto& [k, s] : states_)
      b += (s.m.size() + s.v.size()) * static_cast<int64_t>(sizeof(float));
    return b;
  }

  void reset() { states_.clear(); }
  // Drop the moments of one key (ReLoRA's optimizer-state reset on merge).
  void reset_key(const void* key) { states_.erase(key); }

  // Serialize the moments of `keys` (in order; absent keys are written as
  // empty matrices). Used by the owning optimizer's save_state.
  bool save(std::FILE* f, const std::vector<const void*>& keys) const;
  bool load(std::FILE* f, const std::vector<const void*>& keys);

 private:
  struct State {
    Matrix m, v;
  };
  AdamHyper hp_;
  std::unordered_map<const void*, State> states_;
};

}  // namespace apollo::optim
