// Adafactor (Shazeer & Stern, 2018) — the classic memory-efficient
// optimizer: the second moment of an m×n weight is stored *factored* as a
// row vector (m) and a column vector (n), reconstructed as a rank-1 outer
// product. Included as an extension baseline: it is the historical
// predecessor of the paper's "structured second moment" idea (Adam-mini,
// APOLLO's channel-wise V), with memory m + n per weight — between
// APOLLO-Mini's 2n and GaLore's 2nr.
//
// This implementation follows the original recipe: β₂ schedule
// 1 − t^(−0.8), factored V̂ = (R·C)/mean(R), RMS update clipping at
// threshold d = 1, optional first moment (off by default, as in the paper's
// memory-efficient configuration).
#pragma once

#include <cmath>
#include <vector>

#include "nn/parameter.h"
#include "optim/optimizer.h"
#include "tensor/matrix.h"

namespace apollo::optim {

struct AdafactorConfig {
  float eps1 = 1e-30f;     // added to squared gradients
  float eps2 = 1e-3f;      // lower bound on parameter scale (unused in
                           // absolute-LR mode, kept for completeness)
  float clip_threshold = 1.f;
  float beta2_exponent = 0.8f;  // β₂(t) = 1 − t^(−exponent)
  float beta1 = 0.f;            // 0 ⇒ no first moment (min memory)
  float weight_decay = 0.f;
};

class Adafactor : public Optimizer {
 public:
  explicit Adafactor(const AdafactorConfig& cfg = {}) : cfg_(cfg) {}

  void begin_step(const nn::ParamList& params) override;
  void step_param(nn::Parameter& p, int slot) override;
  std::string name() const override { return "Adafactor"; }
  int64_t state_bytes() const override;

 protected:
  const char* step_trace_name() const override { return "Adafactor::step"; }

 private:
  struct State {
    std::vector<float> vrow;  // m
    std::vector<float> vcol;  // n
    Matrix vfull;             // only for 1-D params
    Matrix m;                 // optional first moment
    int64_t local_t = 0;
  };

  void update_matrix(nn::Parameter* p, State& s, float beta2t);
  void update_vector(nn::Parameter* p, State& s, float beta2t);

  AdafactorConfig cfg_;
  std::vector<State> states_;  // indexed by slot
};

}  // namespace apollo::optim
