#include "optim/dense_adam.h"

#include <cmath>

#include "core/threadpool.h"
#include "tensor/check.h"
#include "tensor/serialize.h"

namespace apollo::optim {

void DenseAdamCore::update(int64_t slot, Matrix& value,
                           const Matrix& grad, float lr, int64_t t) {
  APOLLO_CHECK_SAME_SHAPE(value, grad);
  APOLLO_CHECK_GE(t, 1);
  APOLLO_CHECK_GE(slot, 0);
  if (slot >= static_cast<int64_t>(states_.size()))
    // Grows to the highest slot during the first pass over the parameters,
    // then stays put — steady-state steps never hit this branch.
    states_.resize(static_cast<size_t>(slot) + 1);  // lint:allow(hot-path-alloc)
  State& s = states_[static_cast<size_t>(slot)];
  if (s.m.size() == 0) {
    s.m.reshape_discard(grad.rows(), grad.cols());
    s.v.reshape_discard(grad.rows(), grad.cols());
  }
  const float b1 = hp_.beta1, b2 = hp_.beta2;
  const BiasCorrection bc = bias_correction(hp_, t);
  const float bc1 = bc.c1;
  const float bc2 = bc.c2;
  // Element-disjoint update: safe to fan out over the deterministic pool.
  core::parallel_for(
      grad.size(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const float g = grad[i];
          s.m[i] = b1 * s.m[i] + (1.f - b1) * g;
          s.v[i] = b2 * s.v[i] + (1.f - b2) * g * g;
          const float mhat = s.m[i] / bc1;
          const float vhat = s.v[i] / bc2;
          value[i] -= lr * (mhat / (std::sqrt(vhat) + hp_.eps) +
                            hp_.weight_decay * value[i]);
        }
      },
      /*grain=*/1 << 13);
}

bool DenseAdamCore::save(std::FILE* f, int64_t n_slots) const {
  static const Matrix kEmpty;
  for (int64_t i = 0; i < n_slots; ++i) {
    const bool have = i < static_cast<int64_t>(states_.size());
    const Matrix& m = have ? states_[static_cast<size_t>(i)].m : kEmpty;
    const Matrix& v = have ? states_[static_cast<size_t>(i)].v : kEmpty;
    if (!write_matrix(f, m) || !write_matrix(f, v)) return false;
  }
  return true;
}

bool DenseAdamCore::load(std::FILE* f, int64_t n_slots) {
  states_.clear();
  states_.resize(static_cast<size_t>(n_slots));
  for (int64_t i = 0; i < n_slots; ++i) {
    Matrix m, v;
    if (!read_matrix(f, m) || !read_matrix(f, v)) return false;
    if (m.size() == 0) continue;  // slot had no state when saved
    State& s = states_[static_cast<size_t>(i)];
    s.m = std::move(m);
    s.v = std::move(v);
  }
  return true;
}

}  // namespace apollo::optim
