#include "optim/dense_adam.h"

#include <cmath>

#include "core/threadpool.h"
#include "tensor/serialize.h"

namespace apollo::optim {

void DenseAdamCore::update(const void* key, Matrix& value,
                           const Matrix& grad, float lr, int64_t t) {
  APOLLO_CHECK_SAME_SHAPE(value, grad);
  APOLLO_CHECK_GE(t, 1);
  State& s = states_[key];
  if (s.m.size() == 0) {
    s.m.reshape_discard(grad.rows(), grad.cols());
    s.v.reshape_discard(grad.rows(), grad.cols());
  }
  const float b1 = hp_.beta1, b2 = hp_.beta2;
  const float bc1 = 1.f - std::pow(b1, static_cast<float>(t));
  const float bc2 = 1.f - std::pow(b2, static_cast<float>(t));
  // Element-disjoint update: safe to fan out over the deterministic pool.
  core::parallel_for(
      grad.size(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const float g = grad[i];
          s.m[i] = b1 * s.m[i] + (1.f - b1) * g;
          s.v[i] = b2 * s.v[i] + (1.f - b2) * g * g;
          const float mhat = s.m[i] / bc1;
          const float vhat = s.v[i] / bc2;
          value[i] -= lr * (mhat / (std::sqrt(vhat) + hp_.eps) +
                            hp_.weight_decay * value[i]);
        }
      },
      /*grain=*/1 << 13);
}

bool DenseAdamCore::save(std::FILE* f,
                         const std::vector<const void*>& keys) const {
  for (const void* key : keys) {
    auto it = states_.find(key);
    static const Matrix kEmpty;
    const Matrix& m = it == states_.end() ? kEmpty : it->second.m;
    const Matrix& v = it == states_.end() ? kEmpty : it->second.v;
    if (!write_matrix(f, m) || !write_matrix(f, v)) return false;
  }
  return true;
}

bool DenseAdamCore::load(std::FILE* f, const std::vector<const void*>& keys) {
  states_.clear();
  for (const void* key : keys) {
    Matrix m, v;
    if (!read_matrix(f, m) || !read_matrix(f, v)) return false;
    if (m.size() == 0) continue;  // key had no state when saved
    State& s = states_[key];
    s.m = std::move(m);
    s.v = std::move(v);
  }
  return true;
}

}  // namespace apollo::optim
