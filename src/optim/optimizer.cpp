#include "optim/optimizer.h"

#include <climits>

#include "obs/trace.h"
#include "optim/finite_guard.h"
#include "tensor/check.h"

namespace apollo::optim {

void Optimizer::begin_step(const nn::ParamList& params) {
  // Slot indices are ints; the model would have to be absurd to overflow,
  // but the contract is part of the API.
  APOLLO_CHECK_LT(params.size(), static_cast<size_t>(INT_MAX));
  ++t_;
}

void Optimizer::end_step(const nn::ParamList& params) {
  APOLLO_CHECK_GE(t_, 1);  // end_step without begin_step
  check_step_finite(params, name());
}

// Pure delegation — preconditions live in begin_step/step_param.
// lint:allow(check-shape-preconditions)
void Optimizer::step(const nn::ParamList& params) {
  APOLLO_TRACE_SCOPE(step_trace_name(), "optim");
  begin_step(params);
  for (size_t i = 0; i < params.size(); ++i)
    step_param(*params[i], static_cast<int>(i));
  end_step(params);
}

}  // namespace apollo::optim
