// GaLore-family low-rank-gradient optimizers (Zhao et al., 2024) and its
// descendants Fira (Chen et al., 2024) and Flora (Hao et al., 2024).
//
// All three share the same skeleton: project each 2-D gradient into a
// rank-r subspace, run AdamW *in that subspace*, and back-project the
// normalized update. They differ in:
//   - projector: GaLore/Fira use the top-r singular vectors (periodic SVD,
//     the cost APOLLO eliminates); Flora / "GaLore w. RP" use a seeded
//     Gaussian projection regenerated on demand (no stored projector);
//   - Fira adds the full-rank error residual (G − P⁺PG), rescaled by the
//     per-channel low-rank norm ratio and guarded by the norm-growth
//     limiter, to simulate full-rank updates;
//   - the 8-bit variant stores the subspace moments block-quantized
//     (Table 3's 8-bit GaLore baseline).
// 1-D parameters fall back to dense AdamW, as in the reference code.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "linalg/projection.h"
#include "nn/parameter.h"
#include "optim/dense_adam.h"
#include "optim/norm_limiter.h"
#include "optim/optimizer.h"
#include "quant/quant.h"
#include "tensor/matrix.h"

namespace apollo::optim {

enum class ProjKind { kSvd, kRandom };

struct GaloreConfig {
  int64_t rank = 4;
  int update_freq = 200;   // T: projector refresh period
  float scale = 0.25f;     // GaLore's α
  ProjKind proj = ProjKind::kSvd;
  // GoLore (He et al., 2024): SVD projectors early in training, cheap
  // random projections once gradients stabilize. <0 disables switching.
  int64_t switch_to_random_after = -1;
  bool fira_residual = false;   // add Fira's scaled error residual
  bool quantize_states = true;  // 8-bit subspace moments? (default off)
  float nl_gamma = 1.01f;       // limiter for the Fira residual
  AdamHyper hyper;
  uint64_t seed = 1234;

  GaloreConfig() { quantize_states = false; }
};

class GaLore : public Optimizer {
 public:
  GaLore(const GaloreConfig& cfg, std::string display_name = "GaLore");

  // All RNG draws (initial and refresh projection seeds) happen here, in
  // slot order, so step_param() is order-independent — the fused backward
  // path may deliver parameters in completion order.
  void begin_step(const nn::ParamList& params) override;
  void step_param(nn::Parameter& p, int slot) override;
  std::string name() const override { return display_name_; }
  int64_t state_bytes() const override;

  // Convenience constructors matching the paper's baseline names.
  static std::unique_ptr<GaLore> galore(GaloreConfig cfg) {
    cfg.proj = ProjKind::kSvd;
    cfg.fira_residual = false;
    return std::make_unique<GaLore>(cfg, "GaLore");
  }
  static std::unique_ptr<GaLore> galore_rp(GaloreConfig cfg) {
    cfg.proj = ProjKind::kRandom;
    cfg.fira_residual = false;
    return std::make_unique<GaLore>(cfg, "GaLore w. RP");
  }
  static std::unique_ptr<GaLore> flora(GaloreConfig cfg) {
    cfg.proj = ProjKind::kRandom;
    cfg.fira_residual = false;
    return std::make_unique<GaLore>(cfg, "Flora");
  }
  static std::unique_ptr<GaLore> fira(GaloreConfig cfg) {
    cfg.proj = ProjKind::kSvd;
    cfg.fira_residual = true;
    return std::make_unique<GaLore>(cfg, "Fira");
  }
  static std::unique_ptr<GaLore> galore_8bit(GaloreConfig cfg) {
    cfg.proj = ProjKind::kSvd;
    cfg.quantize_states = true;
    return std::make_unique<GaLore>(cfg, "8-bit GaLore");
  }
  // GoLore: SVD for the first `switch_after` steps, random projection after.
  static std::unique_ptr<GaLore> golore(GaloreConfig cfg,
                                        int64_t switch_after) {
    cfg.proj = ProjKind::kSvd;
    cfg.fira_residual = false;
    cfg.switch_to_random_after = switch_after;
    return std::make_unique<GaLore>(cfg, "GoLore");
  }

 protected:
  const char* step_trace_name() const override { return "GaLore::step"; }

 private:
  struct State {
    ProjectionSide side = ProjectionSide::kLeft;
    Matrix projector;       // stored only for SVD projectors
    uint64_t proj_seed = 0; // random projectors are regenerated from this
    Matrix m, v;            // subspace moments (fp32 path)
    std::unique_ptr<BlockQuantized> qm, qv;  // 8-bit path
    int64_t local_t = 0;
    NormGrowthLimiter limiter;
    // Decided in begin_step() for the current step:
    bool refresh = false;
    ProjKind kind = ProjKind::kSvd;
  };

  // Pure routing predicate — nothing shape-dependent to verify.
  // lint:allow(check-shape-preconditions)
  bool projected(const nn::Parameter& p) const {
    return p.matrix_shaped &&
           std::min(p.value.rows(), p.value.cols()) > cfg_.rank;
  }
  void update_matrix_param(nn::Parameter* p, State& s);

  GaloreConfig cfg_;
  std::string display_name_;
  DenseAdamCore dense_;  // 1-D fallback
  std::vector<State> states_;  // indexed by slot
  Rng seeder_;
};

}  // namespace apollo::optim
