#include "optim/galore.h"

#include <cmath>

#include "core/threadpool.h"
#include "linalg/svd.h"
#include "nn/parameter.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace apollo::optim {

GaLore::GaLore(const GaloreConfig& cfg, std::string display_name)
    : cfg_(cfg), display_name_(std::move(display_name)), dense_(cfg.hyper),
      seeder_(cfg.seed) {
  APOLLO_CHECK(cfg.rank >= 1);
}

void GaLore::begin_step(const nn::ParamList& params) {
  Optimizer::begin_step(params);
  if (states_.size() < params.size()) states_.resize(params.size());
  // Everything order-sensitive happens here, iterating params in slot
  // order: seeder_ draws, refresh decisions, local step counters. This
  // keeps the RNG stream identical whether step_param() is later called
  // in slot order (compat step()) or in backward-completion order (fused).
  for (size_t i = 0; i < params.size(); ++i) {
    nn::Parameter* p = params[i];
    if (!projected(*p)) continue;  // dense fallback: no per-slot decisions
    State& s = states_[i];
    if (s.local_t == 0) {
      s.side = natural_side(p->value.rows(), p->value.cols());
      s.proj_seed = seeder_.split();
    }
    s.refresh = s.local_t % cfg_.update_freq == 0;
    ++s.local_t;
    if (s.refresh) {
      if (obs::trace_enabled()) obs::trace_instant("proj_refresh", "optim");
      if (obs::telemetry_enabled())
        obs::Registry::instance()
            .counter("optim.galore.proj_refreshes")
            .add(1);
    }
    // GoLore mode: fall back to random projections once the switch point
    // is reached (gradient noise dominates late; random projections
    // provably suffice there — He et al., 2024).
    s.kind = (cfg_.switch_to_random_after >= 0 &&
              s.local_t > cfg_.switch_to_random_after)
                 ? ProjKind::kRandom
                 : cfg_.proj;
    // Random projector seeds are re-drawn every update_freq steps (new
    // subspace directions).
    if (s.kind == ProjKind::kRandom && s.refresh && s.local_t > 1)
      s.proj_seed = seeder_.split();
  }
}

void GaLore::step_param(nn::Parameter& p, int slot) {
  APOLLO_CHECK_SAME_SHAPE(p.value, p.grad);
  if (!projected(p)) {
    // 1-D gains and matrices already at/below the target rank get dense
    // AdamW (projection would not save anything).
    dense_.update(slot, p.value, p.grad, lr_, t_);
    return;
  }
  update_matrix_param(&p, states_[static_cast<size_t>(slot)]);
}

void GaLore::update_matrix_param(nn::Parameter* p, State& s) {
  APOLLO_CHECK_SAME_SHAPE(p->value, p->grad);
  const Matrix& g = p->grad;
  const int64_t r = cfg_.rank;

  // --- projector ----------------------------------------------------------
  // Refresh/seed/kind decisions were made in begin_step(); only the
  // (possibly expensive) projector materialization happens here.
  Matrix proj;  // the projector used this step
  if (s.kind == ProjKind::kSvd) {
    if (s.refresh) {
      s.projector = s.side == ProjectionSide::kLeft
                        ? svd_left_projector(g, r)
                        : svd_right_projector(g, r);
    }
    proj = s.projector;
  } else {
    // Random projector: never stored — regenerated from the seed.
    s.projector.reshape_discard(0, 0);  // drop any stored SVD projector
    const int64_t small_dim =
        s.side == ProjectionSide::kLeft ? g.rows() : g.cols();
    proj = gaussian_projection(r, small_dim, s.proj_seed);
  }

  // --- subspace AdamW ------------------------------------------------------
  Matrix rg = project(g, proj, s.side);
  if (s.m.size() == 0) {
    s.m.reshape_discard(rg.rows(), rg.cols());
    s.v.reshape_discard(rg.rows(), rg.cols());
    if (cfg_.quantize_states) {
      s.qm = std::make_unique<BlockQuantized>(rg.rows(), rg.cols(), true);
      s.qv = std::make_unique<BlockQuantized>(rg.rows(), rg.cols(), false);
    }
  }
  if (cfg_.quantize_states) {
    // Dequantize moments, update in fp32 below, requantize at the end.
    s.m = s.qm->load();
    s.v = s.qv->load();
  }

  const float b1 = cfg_.hyper.beta1, b2 = cfg_.hyper.beta2;
  const BiasCorrection bc = bias_correction(cfg_.hyper, s.local_t);
  const float bc1 = bc.c1, bc2 = bc.c2;
  Matrix norm_update(rg.rows(), rg.cols());
  core::parallel_for(
      rg.size(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          s.m[i] = b1 * s.m[i] + (1.f - b1) * rg[i];
          s.v[i] = b2 * s.v[i] + (1.f - b2) * rg[i] * rg[i];
          norm_update[i] = (s.m[i] / bc1) /
                           (std::sqrt(s.v[i] / bc2) + cfg_.hyper.eps);
        }
      },
      /*grain=*/1 << 13);
  if (cfg_.quantize_states) {
    s.qm->store(s.m);
    s.qv->store(s.v);
    s.m.reshape_discard(0, 0);
    s.v.reshape_discard(0, 0);
  }

  // --- back-projected update ----------------------------------------------
  Matrix update = project_back(norm_update, proj, s.side);
  scale_inplace(update, cfg_.scale);

  if (cfg_.fira_residual) {
    // Fira: add (G − P⁺PG) rescaled per channel by ||Ñ[:,j]||/||R[:,j]||,
    // guarded by the norm-growth limiter.
    Matrix residual = g;
    sub_inplace(residual, project_back(rg, proj, s.side));
    std::vector<float> nn_norm, rr_norm;
    if (s.side == ProjectionSide::kLeft) {
      nn_norm = col_norms(norm_update);
      rr_norm = col_norms(rg);
    } else {
      nn_norm = row_norms(norm_update);
      rr_norm = row_norms(rg);
    }
    std::vector<float> phi(nn_norm.size());
    for (size_t j = 0; j < phi.size(); ++j)
      phi[j] = rr_norm[j] > 1e-30f ? nn_norm[j] / rr_norm[j] : 0.f;
    if (s.side == ProjectionSide::kLeft)
      scale_cols_inplace(residual, phi);
    else
      scale_rows_inplace(residual, phi);
    const bool clipped = s.limiter.apply(residual);
    if (clipped && obs::telemetry_enabled())
      obs::Registry::instance().counter("optim.fira.limiter_clips").add(1);
    add_inplace(update, residual);
  }

  // --- apply ----------------------------------------------------------------
  const float wd = cfg_.hyper.weight_decay;
  core::parallel_for(
      p->value.size(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
          p->value[i] -= lr_ * (update[i] + wd * p->value[i]);
      },
      /*grain=*/1 << 13);
}

int64_t GaLore::state_bytes() const {
  int64_t b = dense_.state_bytes();
  for (const State& s : states_) {
    if (s.local_t == 0) continue;  // slot never projected (dense or unseen)
    b += s.projector.size() * static_cast<int64_t>(sizeof(float));
    b += (s.m.size() + s.v.size()) * static_cast<int64_t>(sizeof(float));
    if (s.qm) b += s.qm->bytes() + s.qv->bytes();
    b += 8;  // projection seed
    if (cfg_.fira_residual)
      b += NormGrowthLimiter::state_floats() *
           static_cast<int64_t>(sizeof(float));
  }
  return b;
}

}  // namespace apollo::optim
