#include "optim/galore.h"

#include <cmath>

#include "core/threadpool.h"
#include "linalg/svd.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "optim/finite_guard.h"
#include "tensor/ops.h"

namespace apollo::optim {

GaLore::GaLore(const GaloreConfig& cfg, std::string display_name)
    : cfg_(cfg), display_name_(std::move(display_name)), dense_(cfg.hyper),
      seeder_(cfg.seed) {
  APOLLO_CHECK(cfg.rank >= 1);
}

void GaLore::step(const nn::ParamList& params) {
  APOLLO_TRACE_SCOPE("GaLore::step", "optim");
  ++t_;
  for (nn::Parameter* p : params) {
    APOLLO_CHECK_SAME_SHAPE(p->value, p->grad);
    if (!p->matrix_shaped || std::min(p->value.rows(), p->value.cols()) <=
                                 cfg_.rank) {
      // 1-D gains and matrices already at/below the target rank get dense
      // AdamW (projection would not save anything).
      dense_.update(p, p->value, p->grad, lr_, t_);
      continue;
    }
    update_matrix_param(p);
  }
  check_step_finite(params, name());
}

void GaLore::update_matrix_param(nn::Parameter* p) {
  State& s = states_[p];
  const Matrix& g = p->grad;
  const int64_t r = cfg_.rank;

  if (s.local_t == 0) {
    s.side = natural_side(g.rows(), g.cols());
    s.proj_seed = seeder_.split();
  }
  const bool refresh = s.local_t % cfg_.update_freq == 0;
  ++s.local_t;
  if (refresh) {
    if (obs::trace_enabled()) obs::trace_instant("proj_refresh", "optim");
    if (obs::telemetry_enabled())
      obs::Registry::instance()
          .counter("optim.galore.proj_refreshes")
          .add(1);
  }

  // --- projector ----------------------------------------------------------
  // GoLore mode: fall back to random projections once the switch point is
  // reached (gradient noise dominates late; random projections provably
  // suffice there — He et al., 2024).
  const ProjKind kind = (cfg_.switch_to_random_after >= 0 &&
                         s.local_t > cfg_.switch_to_random_after)
                            ? ProjKind::kRandom
                            : cfg_.proj;
  Matrix proj;  // the projector used this step
  if (kind == ProjKind::kSvd) {
    if (refresh) {
      s.projector = s.side == ProjectionSide::kLeft
                        ? svd_left_projector(g, r)
                        : svd_right_projector(g, r);
    }
    proj = s.projector;
  } else {
    // Random projector: never stored — regenerated from the seed, which is
    // re-drawn every update_freq steps (new subspace directions).
    s.projector.reshape_discard(0, 0);  // drop any stored SVD projector
    if (refresh && s.local_t > 1) s.proj_seed = seeder_.split();
    const int64_t small_dim =
        s.side == ProjectionSide::kLeft ? g.rows() : g.cols();
    proj = gaussian_projection(r, small_dim, s.proj_seed);
  }

  // --- subspace AdamW ------------------------------------------------------
  Matrix rg = project(g, proj, s.side);
  if (s.m.size() == 0) {
    s.m.reshape_discard(rg.rows(), rg.cols());
    s.v.reshape_discard(rg.rows(), rg.cols());
    if (cfg_.quantize_states) {
      s.qm = std::make_unique<BlockQuantized>(rg.rows(), rg.cols(), true);
      s.qv = std::make_unique<BlockQuantized>(rg.rows(), rg.cols(), false);
    }
  }
  if (cfg_.quantize_states) {
    // Dequantize moments, update in fp32 below, requantize at the end.
    s.m = s.qm->load();
    s.v = s.qv->load();
  }

  const float b1 = cfg_.hyper.beta1, b2 = cfg_.hyper.beta2;
  const float bc1 = 1.f - std::pow(b1, static_cast<float>(s.local_t));
  const float bc2 = 1.f - std::pow(b2, static_cast<float>(s.local_t));
  Matrix norm_update(rg.rows(), rg.cols());
  core::parallel_for(
      rg.size(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          s.m[i] = b1 * s.m[i] + (1.f - b1) * rg[i];
          s.v[i] = b2 * s.v[i] + (1.f - b2) * rg[i] * rg[i];
          norm_update[i] = (s.m[i] / bc1) /
                           (std::sqrt(s.v[i] / bc2) + cfg_.hyper.eps);
        }
      },
      /*grain=*/1 << 13);
  if (cfg_.quantize_states) {
    s.qm->store(s.m);
    s.qv->store(s.v);
    s.m.reshape_discard(0, 0);
    s.v.reshape_discard(0, 0);
  }

  // --- back-projected update ----------------------------------------------
  Matrix update = project_back(norm_update, proj, s.side);
  scale_inplace(update, cfg_.scale);

  if (cfg_.fira_residual) {
    // Fira: add (G − P⁺PG) rescaled per channel by ||Ñ[:,j]||/||R[:,j]||,
    // guarded by the norm-growth limiter.
    Matrix residual = g;
    sub_inplace(residual, project_back(rg, proj, s.side));
    std::vector<float> nn_norm, rr_norm;
    if (s.side == ProjectionSide::kLeft) {
      nn_norm = col_norms(norm_update);
      rr_norm = col_norms(rg);
    } else {
      nn_norm = row_norms(norm_update);
      rr_norm = row_norms(rg);
    }
    std::vector<float> phi(nn_norm.size());
    for (size_t j = 0; j < phi.size(); ++j)
      phi[j] = rr_norm[j] > 1e-30f ? nn_norm[j] / rr_norm[j] : 0.f;
    if (s.side == ProjectionSide::kLeft)
      scale_cols_inplace(residual, phi);
    else
      scale_rows_inplace(residual, phi);
    const bool clipped = s.limiter.apply(residual);
    if (clipped && obs::telemetry_enabled())
      obs::Registry::instance().counter("optim.fira.limiter_clips").add(1);
    add_inplace(update, residual);
  }

  // --- apply ----------------------------------------------------------------
  const float wd = cfg_.hyper.weight_decay;
  core::parallel_for(
      p->value.size(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
          p->value[i] -= lr_ * (update[i] + wd * p->value[i]);
      },
      /*grain=*/1 << 13);
}

int64_t GaLore::state_bytes() const {
  int64_t b = dense_.state_bytes();
  for (const auto& [k, s] : states_) {
    b += s.projector.size() * static_cast<int64_t>(sizeof(float));
    b += (s.m.size() + s.v.size()) * static_cast<int64_t>(sizeof(float));
    if (s.qm) b += s.qm->bytes() + s.qv->bytes();
    b += 8;  // projection seed
    if (cfg_.fira_residual)
      b += NormGrowthLimiter::state_floats() *
           static_cast<int64_t>(sizeof(float));
  }
  return b;
}

}  // namespace apollo::optim
