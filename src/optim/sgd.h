// SGD with optional heavy-ball momentum. The paper's memory yardstick:
// APOLLO-Mini claims "SGD-level memory" — plain SGD holds zero optimizer
// state, momentum-SGD holds one buffer per weight. SGD is also the
// known-to-fail-on-transformers baseline (Zhang et al., 2024a) that the
// integration tests confirm under-performs the adaptive methods.
#pragma once

#include <vector>

#include "nn/parameter.h"
#include "optim/optimizer.h"
#include "tensor/check.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace apollo::optim {

class Sgd : public Optimizer {
 public:
  explicit Sgd(float momentum = 0.f, float weight_decay = 0.f)
      : momentum_(momentum), weight_decay_(weight_decay) {}

  void begin_step(const nn::ParamList& params) override {
    Optimizer::begin_step(params);
    if (momentum_ != 0.f && momentum_buf_.size() < params.size())
      momentum_buf_.resize(params.size());
  }

  void step_param(nn::Parameter& p, int slot) override {
    APOLLO_CHECK_SAME_SHAPE(p.value, p.grad);
    if (momentum_ == 0.f) {
      for (int64_t i = 0; i < p.value.size(); ++i)
        p.value[i] -= lr_ * (p.grad[i] + weight_decay_ * p.value[i]);
      return;
    }
    Matrix& buf = momentum_buf_[static_cast<size_t>(slot)];
    if (buf.size() == 0) buf.reshape_discard(p.grad.rows(), p.grad.cols());
    for (int64_t i = 0; i < p.value.size(); ++i) {
      buf[i] = momentum_ * buf[i] + p.grad[i];
      p.value[i] -= lr_ * (buf[i] + weight_decay_ * p.value[i]);
    }
  }

  std::string name() const override {
    return momentum_ == 0.f ? "SGD" : "SGD-momentum";
  }
  int64_t state_bytes() const override {
    int64_t b = 0;
    for (const Matrix& m : momentum_buf_)
      b += m.size() * static_cast<int64_t>(sizeof(float));
    return b;
  }

 protected:
  const char* step_trace_name() const override { return "Sgd::step"; }

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Matrix> momentum_buf_;  // indexed by slot (momentum only)
};

}  // namespace apollo::optim
