// 8-bit AdamW: full-rank moments stored block-quantized (bitsandbytes-style
// dynamic 8-bit with per-block absmax scales) — the "8-bit Adam" baseline of
// Table 3. Updates run in fp32 on dequantized blocks and are written back
// quantized, so persistent state is ~1 byte/element per moment.
#pragma once

#include <cmath>
#include <memory>
#include <unordered_map>

#include "obs/trace.h"
#include "optim/finite_guard.h"
#include "optim/optimizer.h"
#include "quant/quant.h"

namespace apollo::optim {

class Adam8bit : public Optimizer {
 public:
  explicit Adam8bit(const AdamHyper& hp = {}) : hp_(hp) {}

  void step(const nn::ParamList& params) override {
    APOLLO_TRACE_SCOPE("Adam8bit::step", "optim");
    ++t_;
    const float b1 = hp_.beta1, b2 = hp_.beta2;
    const float bc1 = 1.f - std::pow(b1, static_cast<float>(t_));
    const float bc2 = 1.f - std::pow(b2, static_cast<float>(t_));
    for (nn::Parameter* p : params) {
      APOLLO_CHECK_SAME_SHAPE(p->value, p->grad);
      State& s = states_[p];
      const Matrix& g = p->grad;
      if (!s.m) {
        s.m = std::make_unique<BlockQuantized>(g.rows(), g.cols(), true);
        s.v = std::make_unique<BlockQuantized>(g.rows(), g.cols(), false);
      }
      Matrix m = s.m->load();
      Matrix v = s.v->load();
      for (int64_t i = 0; i < g.size(); ++i) {
        m[i] = b1 * m[i] + (1.f - b1) * g[i];
        v[i] = b2 * v[i] + (1.f - b2) * g[i] * g[i];
        p->value[i] -= lr_ * ((m[i] / bc1) /
                                  (std::sqrt(v[i] / bc2) + hp_.eps) +
                              hp_.weight_decay * p->value[i]);
      }
      s.m->store(m);
      s.v->store(v);
    }
    check_step_finite(params, name());
  }

  std::string name() const override { return "8-bit Adam"; }
  int64_t state_bytes() const override {
    int64_t b = 0;
    for (const auto& [k, s] : states_)
      if (s.m) b += s.m->bytes() + s.v->bytes();
    return b;
  }

 private:
  struct State {
    std::unique_ptr<BlockQuantized> m, v;
  };
  AdamHyper hp_;
  std::unordered_map<const nn::Parameter*, State> states_;
};

}  // namespace apollo::optim
