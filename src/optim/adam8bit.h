// 8-bit AdamW: full-rank moments stored block-quantized (bitsandbytes-style
// dynamic 8-bit with per-block absmax scales) — the "8-bit Adam" baseline of
// Table 3. Updates run in fp32 on dequantized blocks and are written back
// quantized, so persistent state is ~1 byte/element per moment.
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "nn/parameter.h"
#include "optim/optimizer.h"
#include "quant/quant.h"
#include "tensor/check.h"
#include "tensor/matrix.h"

namespace apollo::optim {

class Adam8bit : public Optimizer {
 public:
  explicit Adam8bit(const AdamHyper& hp = {}) : hp_(hp) {}

  void begin_step(const nn::ParamList& params) override {
    Optimizer::begin_step(params);
    bc_ = bias_correction(hp_, t_);
    if (states_.size() < params.size()) states_.resize(params.size());
  }

  void step_param(nn::Parameter& p, int slot) override {
    APOLLO_CHECK_SAME_SHAPE(p.value, p.grad);
    const float b1 = hp_.beta1, b2 = hp_.beta2;
    State& s = states_[static_cast<size_t>(slot)];
    const Matrix& g = p.grad;
    if (!s.m) {
      // Lazy first-step state init, sized to the parameter once.
      s.m = std::make_unique<BlockQuantized>(  // lint:allow(hot-path-alloc)
          g.rows(), g.cols(), true);
      s.v = std::make_unique<BlockQuantized>(  // lint:allow(hot-path-alloc)
          g.rows(), g.cols(), false);
    }
    Matrix m = s.m->load();
    Matrix v = s.v->load();
    for (int64_t i = 0; i < g.size(); ++i) {
      m[i] = b1 * m[i] + (1.f - b1) * g[i];
      v[i] = b2 * v[i] + (1.f - b2) * g[i] * g[i];
      p.value[i] -= lr_ * ((m[i] / bc_.c1) /
                               (std::sqrt(v[i] / bc_.c2) + hp_.eps) +
                           hp_.weight_decay * p.value[i]);
    }
    s.m->store(m);
    s.v->store(v);
  }

  std::string name() const override { return "8-bit Adam"; }
  int64_t state_bytes() const override {
    int64_t b = 0;
    for (const State& s : states_)
      if (s.m) b += s.m->bytes() + s.v->bytes();
    return b;
  }

 protected:
  const char* step_trace_name() const override { return "Adam8bit::step"; }

 private:
  struct State {
    std::unique_ptr<BlockQuantized> m, v;
  };
  AdamHyper hp_;
  BiasCorrection bc_;
  std::vector<State> states_;  // indexed by slot
};

}  // namespace apollo::optim
