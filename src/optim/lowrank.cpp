#include "optim/lowrank.h"

#include <cmath>

#include "linalg/svd.h"
#include "nn/parameter.h"
#include "tensor/check.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace apollo::optim {

LowRankAdapter::LowRankAdapter(const AdapterConfig& cfg)
    : cfg_(cfg), factor_adam_(cfg.hyper), dense_(cfg.hyper), rng_(cfg.seed) {
  APOLLO_CHECK(cfg.rank >= 1);
}

std::string LowRankAdapter::name() const {
  switch (cfg_.kind) {
    case AdapterKind::kFactorized: return "Low-Rank";
    case AdapterKind::kLora: return "LoRA";
    case AdapterKind::kRelora: return "ReLoRA";
    case AdapterKind::kDora: return "DoRA";
  }
  return "?";
}

void LowRankAdapter::init_state(nn::Parameter* p, State& s) {
  const int64_t out = p->value.rows(), in = p->value.cols();
  const int64_t r = cfg_.rank;
  APOLLO_CHECK_GT(std::min(out, in), r);
  s.a.reshape_discard(r, in);
  s.b.reshape_discard(out, r);
  if (cfg_.kind == AdapterKind::kFactorized) {
    // Rank-r truncated SVD of the initial weight so training starts from a
    // sensible function; the rank constraint (not the init) is what makes
    // this baseline weak at pre-training.
    SvdResult d = svd(p->value);
    for (int64_t i = 0; i < out; ++i)
      for (int64_t j = 0; j < r; ++j)
        s.b.at(i, j) = d.u.at(i, j) *
                       std::sqrt(d.sigma[static_cast<size_t>(j)]);
    for (int64_t i = 0; i < r; ++i)
      for (int64_t j = 0; j < in; ++j)
        s.a.at(i, j) = std::sqrt(d.sigma[static_cast<size_t>(i)]) *
                       d.v.at(j, i);
  } else {
    s.w0 = p->value;
    // Kaiming-style A, zero B — the adapter starts as the identity map.
    s.a.fill_gaussian(rng_, 0.f,
                      1.f / std::sqrt(static_cast<float>(in)));
    s.b.zero();
    if (cfg_.kind == AdapterKind::kDora) {
      s.mag.reshape_discard(out, 1);
      auto norms = row_norms(p->value);
      for (int64_t i = 0; i < out; ++i)
        s.mag.at(i, 0) = norms[static_cast<size_t>(i)];
    }
  }
}

void LowRankAdapter::recompose(nn::Parameter* p, State& s) {
  APOLLO_CHECK_EQ(s.b.cols(), s.a.rows());
  Matrix w = matmul(s.b, s.a);
  if (cfg_.kind != AdapterKind::kFactorized) add_inplace(w, s.w0);
  if (cfg_.kind == AdapterKind::kDora) {
    // W = mag_i · row-normalized(W0 + B·A)
    auto norms = row_norms(w);
    for (int64_t i = 0; i < w.rows(); ++i) {
      const float n = norms[static_cast<size_t>(i)];
      const float scale = n > 1e-12f ? s.mag.at(i, 0) / n : 0.f;
      float* row = w.row(i);
      for (int64_t c = 0; c < w.cols(); ++c) row[c] *= scale;
    }
  }
  p->value = std::move(w);
}

void LowRankAdapter::begin_step(const nn::ParamList& params) {
  Optimizer::begin_step(params);
  if (states_.size() < params.size()) states_.resize(params.size());
  // Adapter initialization draws from rng_, so it runs here in slot order
  // (step_param may be called in backward-completion order under the fused
  // path). Values are untouched at this point, so the SVD/Kaiming inits see
  // exactly what the old in-loop init saw.
  for (size_t i = 0; i < params.size(); ++i) {
    nn::Parameter* p = params[i];
    if (!adapted(*p)) continue;
    State& s = states_[i];
    if (!s.initialized) {
      init_state(p, s);
      s.initialized = true;
    }
    ++s.local_t;
  }
}

void LowRankAdapter::step_param(nn::Parameter& p, int slot) {
  APOLLO_CHECK_SAME_SHAPE(p.value, p.grad);
  if (!adapted(p)) {
    dense_.update(slot, p.value, p.grad, lr_, t_);
    return;
  }
  State& s = states_[static_cast<size_t>(slot)];
  const int64_t sub = 3 * static_cast<int64_t>(slot);  // factor_adam_ base

  Matrix g = p.grad;  // dense dL/dW
  if (cfg_.kind == AdapterKind::kDora) {
    // First-order DoRA: train the row magnitudes on the direction-aligned
    // component, pass the rescaled gradient to the direction factors.
    Matrix dir = matmul(s.b, s.a);
    add_inplace(dir, s.w0);
    auto norms = row_norms(dir);
    Matrix dmag(s.mag.rows(), 1);
    for (int64_t i = 0; i < g.rows(); ++i) {
      const float n = std::max(norms[static_cast<size_t>(i)], 1e-12f);
      const float* gr = g.row(i);
      const float* dr = dir.row(i);
      double dot = 0;
      for (int64_t c = 0; c < g.cols(); ++c)
        dot += static_cast<double>(gr[c]) * dr[c] / n;
      dmag.at(i, 0) = static_cast<float>(dot);
      // Chain rule through the magnitude rescaling (normalization
      // coupling dropped — first-order approximation).
      const float rescale = s.mag.at(i, 0) / n;
      float* grow = g.row(i);
      for (int64_t c = 0; c < g.cols(); ++c) grow[c] *= rescale;
    }
    factor_adam_.update(sub, s.mag, dmag, lr_, s.local_t);
  }

  // Exact factor gradients for W(+W0) = B·A: dB = G·Aᵀ, dA = Bᵀ·G.
  Matrix db = matmul_bt(g, s.a);
  Matrix da = matmul_at(s.b, g);
  factor_adam_.update(sub + 1, s.b, db, lr_, s.local_t);
  factor_adam_.update(sub + 2, s.a, da, lr_, s.local_t);
  recompose(&p, s);
}

void LowRankAdapter::end_step(const nn::ParamList& params) {
  if (cfg_.kind == AdapterKind::kRelora) {
    // ReLoRA restarts draw from rng_, so they run here in slot order after
    // every parameter has been recomposed (the merge reads p->value, which
    // step_param already finalized for this step).
    for (size_t i = 0; i < params.size(); ++i) {
      nn::Parameter* p = params[i];
      if (!adapted(*p)) continue;
      State& s = states_[i];
      if (!s.initialized || s.local_t == 0 ||
          s.local_t % cfg_.merge_freq != 0)
        continue;
      // Merge the adapter into the base and restart from a fresh subspace —
      // this is what lets ReLoRA accumulate rank over time.
      s.w0 = p->value;
      s.a.fill_gaussian(rng_, 0.f,
                        1.f / std::sqrt(static_cast<float>(s.a.cols())));
      s.b.zero();
      s.local_t = 0;  // restart bias correction with the fresh subspace
      factor_adam_.reset_slot(3 * static_cast<int64_t>(i) + 2);  // A
      factor_adam_.reset_slot(3 * static_cast<int64_t>(i) + 1);  // B
    }
  }
  Optimizer::end_step(params);
}

int64_t LowRankAdapter::state_bytes() const {
  // Factors + their Adam moments + (DoRA) magnitudes.
  int64_t b = dense_.state_bytes() + factor_adam_.state_bytes();
  for (const State& s : states_)
    b += (s.a.size() + s.b.size() + s.mag.size()) *
         static_cast<int64_t>(sizeof(float));
  return b;
}

}  // namespace apollo::optim
