// Adam-mini (Zhang et al., 2024b): keep the full first moment but collapse
// the second moment to one scalar per parameter block. We use one block per
// output channel (row) for matrix weights — the paper's observation that a
// block-wise V suffices for learning-rate adaptation, and the "orthogonal
// idea stream" APOLLO builds on (APOLLO additionally compresses M and V into
// a low-rank auxiliary space). Memory: mn (M) + m (V) per m×n weight — i.e.
// it only halves optimizer state, which is exactly the limitation the paper
// calls out ("full-rank first momentum in Adam-mini").
#pragma once

#include <cmath>
#include <unordered_map>

#include "obs/trace.h"
#include "optim/finite_guard.h"
#include "optim/optimizer.h"
#include "tensor/matrix.h"

namespace apollo::optim {

class AdamMini : public Optimizer {
 public:
  explicit AdamMini(const AdamHyper& hp = {}) : hp_(hp) {}

  void step(const nn::ParamList& params) override {
    APOLLO_TRACE_SCOPE("AdamMini::step", "optim");
    ++t_;
    const float b1 = hp_.beta1, b2 = hp_.beta2;
    const float bc1 = 1.f - std::pow(b1, static_cast<float>(t_));
    const float bc2 = 1.f - std::pow(b2, static_cast<float>(t_));
    for (nn::Parameter* p : params) {
      APOLLO_CHECK_SAME_SHAPE(p->value, p->grad);
      State& s = states_[p];
      const Matrix& g = p->grad;
      const int64_t rows = g.rows(), cols = g.cols();
      if (s.m.size() == 0) {
        s.m.reshape_discard(rows, cols);
        s.v.assign(static_cast<size_t>(rows), 0.f);
      }
      for (int64_t r = 0; r < rows; ++r) {
        // Block mean of squared gradients for this row.
        const float* gr = g.row(r);
        double sq = 0;
        for (int64_t c = 0; c < cols; ++c)
          sq += static_cast<double>(gr[c]) * gr[c];
        float& v = s.v[static_cast<size_t>(r)];
        v = b2 * v + (1.f - b2) * static_cast<float>(sq / cols);
        const float denom = std::sqrt(v / bc2) + hp_.eps;

        float* mr = s.m.row(r);
        float* wr = p->value.row(r);
        for (int64_t c = 0; c < cols; ++c) {
          mr[c] = b1 * mr[c] + (1.f - b1) * gr[c];
          wr[c] -= lr_ * ((mr[c] / bc1) / denom +
                          hp_.weight_decay * wr[c]);
        }
      }
    }
    check_step_finite(params, name());
  }

  std::string name() const override { return "Adam-mini"; }
  int64_t state_bytes() const override {
    int64_t b = 0;
    for (const auto& [k, s] : states_)
      b += (s.m.size() + static_cast<int64_t>(s.v.size())) *
           static_cast<int64_t>(sizeof(float));
    return b;
  }

 private:
  struct State {
    Matrix m;
    std::vector<float> v;  // one scalar per row-block
  };
  AdamHyper hp_;
  std::unordered_map<const nn::Parameter*, State> states_;
};

}  // namespace apollo::optim
