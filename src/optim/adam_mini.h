// Adam-mini (Zhang et al., 2024b): keep the full first moment but collapse
// the second moment to one scalar per parameter block. We use one block per
// output channel (row) for matrix weights — the paper's observation that a
// block-wise V suffices for learning-rate adaptation, and the "orthogonal
// idea stream" APOLLO builds on (APOLLO additionally compresses M and V into
// a low-rank auxiliary space). Memory: mn (M) + m (V) per m×n weight — i.e.
// it only halves optimizer state, which is exactly the limitation the paper
// calls out ("full-rank first momentum in Adam-mini").
#pragma once

#include <cmath>
#include <vector>

#include "nn/parameter.h"
#include "optim/optimizer.h"
#include "tensor/check.h"
#include "tensor/matrix.h"

namespace apollo::optim {

class AdamMini : public Optimizer {
 public:
  explicit AdamMini(const AdamHyper& hp = {}) : hp_(hp) {}

  void begin_step(const nn::ParamList& params) override {
    Optimizer::begin_step(params);
    bc_ = bias_correction(hp_, t_);
    if (states_.size() < params.size()) states_.resize(params.size());
  }

  void step_param(nn::Parameter& p, int slot) override {
    APOLLO_CHECK_SAME_SHAPE(p.value, p.grad);
    const float b1 = hp_.beta1, b2 = hp_.beta2;
    State& s = states_[static_cast<size_t>(slot)];
    const Matrix& g = p.grad;
    const int64_t rows = g.rows(), cols = g.cols();
    if (s.m.size() == 0) {
      // Lazy first-step state init, sized to the parameter once.
      s.m.reshape_discard(rows, cols);
      s.v.assign(static_cast<size_t>(rows), 0.f);  // lint:allow(hot-path-alloc)
    }
    for (int64_t r = 0; r < rows; ++r) {
      // Block mean of squared gradients for this row.
      const float* gr = g.row(r);
      double sq = 0;
      for (int64_t c = 0; c < cols; ++c)
        sq += static_cast<double>(gr[c]) * gr[c];
      float& v = s.v[static_cast<size_t>(r)];
      v = b2 * v + (1.f - b2) * static_cast<float>(sq / cols);
      const float denom = std::sqrt(v / bc_.c2) + hp_.eps;

      float* mr = s.m.row(r);
      float* wr = p.value.row(r);
      for (int64_t c = 0; c < cols; ++c) {
        mr[c] = b1 * mr[c] + (1.f - b1) * gr[c];
        wr[c] -= lr_ * ((mr[c] / bc_.c1) / denom +
                        hp_.weight_decay * wr[c]);
      }
    }
  }

  std::string name() const override { return "Adam-mini"; }
  int64_t state_bytes() const override {
    int64_t b = 0;
    for (const State& s : states_)
      b += (s.m.size() + static_cast<int64_t>(s.v.size())) *
           static_cast<int64_t>(sizeof(float));
    return b;
  }

 protected:
  const char* step_trace_name() const override { return "AdamMini::step"; }

 private:
  struct State {
    Matrix m;
    std::vector<float> v;  // one scalar per row-block
  };
  AdamHyper hp_;
  BiasCorrection bc_;
  std::vector<State> states_;  // indexed by slot
};

}  // namespace apollo::optim
