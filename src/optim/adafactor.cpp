#include "optim/adafactor.h"

#include <algorithm>

#include "core/threadpool.h"
#include "nn/parameter.h"
#include "tensor/check.h"
#include "tensor/ops.h"

namespace apollo::optim {

namespace {

// Root-mean-square of a matrix — Adafactor's update-clipping statistic.
float rms(const Matrix& m) {
  double acc = 0;
  for (int64_t i = 0; i < m.size(); ++i)
    acc += static_cast<double>(m[i]) * m[i];
  return static_cast<float>(
      std::sqrt(acc / std::max<int64_t>(1, m.size())));
}

}  // namespace

void Adafactor::begin_step(const nn::ParamList& params) {
  Optimizer::begin_step(params);
  if (states_.size() < params.size()) states_.resize(params.size());
}

void Adafactor::step_param(nn::Parameter& p, int slot) {
  APOLLO_CHECK_SAME_SHAPE(p.value, p.grad);
  State& s = states_[static_cast<size_t>(slot)];
  ++s.local_t;
  const float beta2t =
      1.f - std::pow(static_cast<float>(s.local_t), -cfg_.beta2_exponent);
  if (p.matrix_shaped && p.value.rows() > 1 && p.value.cols() > 1) {
    update_matrix(&p, s, beta2t);
  } else {
    update_vector(&p, s, beta2t);
  }
}

void Adafactor::update_matrix(nn::Parameter* p, State& s, float beta2t) {
  const Matrix& g = p->grad;
  const int64_t m = g.rows(), n = g.cols();
  APOLLO_CHECK_GT(m, 1);
  APOLLO_CHECK_GT(n, 1);
  if (s.vrow.empty()) {
    // Lazy first-step state init: factored second moments are sized to the
    // parameter once and reused for the rest of training.
    s.vrow.assign(static_cast<size_t>(m), 0.f);  // lint:allow(hot-path-alloc)
    s.vcol.assign(static_cast<size_t>(n), 0.f);  // lint:allow(hot-path-alloc)
  }

  // Factored second-moment EMA: row/column means of G² + ε₁. Row statistics
  // partition over rows, column statistics over columns; each output's
  // reduction runs ascending inside one lane (bit-identical to sequential).
  core::parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* gr = g.row(i);
          double acc = 0;
          for (int64_t j = 0; j < n; ++j)
            acc += static_cast<double>(gr[j]) * gr[j] + cfg_.eps1;
          s.vrow[static_cast<size_t>(i)] =
              beta2t * s.vrow[static_cast<size_t>(i)] +
              (1.f - beta2t) * static_cast<float>(acc / n);
        }
      },
      /*grain=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(1, n)));
  std::vector<double> colacc(static_cast<size_t>(n), 0.0);
  core::parallel_for(
      n,
      [&](int64_t c0, int64_t c1) {
        for (int64_t i = 0; i < m; ++i) {
          const float* gr = g.row(i);
          for (int64_t j = c0; j < c1; ++j)
            colacc[static_cast<size_t>(j)] +=
                static_cast<double>(gr[j]) * gr[j] + cfg_.eps1;
        }
      },
      /*grain=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(1, m)));
  for (int64_t j = 0; j < n; ++j)
    s.vcol[static_cast<size_t>(j)] =
        beta2t * s.vcol[static_cast<size_t>(j)] +
        (1.f - beta2t) * static_cast<float>(colacc[static_cast<size_t>(j)] / m);

  // V̂_ij = vrow_i · vcol_j / mean(vrow): rank-1 reconstruction.
  double row_mean = 0;
  for (float v : s.vrow) row_mean += v;
  row_mean /= static_cast<double>(m);
  const float inv_row_mean =
      row_mean > 0 ? static_cast<float>(1.0 / row_mean) : 0.f;

  Matrix update(m, n);
  core::parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* gr = g.row(i);
          float* ur = update.row(i);
          const float vr = s.vrow[static_cast<size_t>(i)];
          for (int64_t j = 0; j < n; ++j) {
            const float vhat =
                vr * s.vcol[static_cast<size_t>(j)] * inv_row_mean;
            ur[j] = gr[j] / (std::sqrt(std::max(vhat, cfg_.eps1)) + 1e-12f);
          }
        }
      },
      /*grain=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(1, n)));
  // RMS clipping: scale down if RMS(U) exceeds the threshold.
  const float u_rms = rms(update);
  if (u_rms > cfg_.clip_threshold)
    scale_inplace(update, cfg_.clip_threshold / u_rms);

  if (cfg_.beta1 > 0.f) {
    if (s.m.size() == 0) s.m.reshape_discard(m, n);
    core::parallel_for(
        update.size(),
        [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            s.m[i] = cfg_.beta1 * s.m[i] + (1.f - cfg_.beta1) * update[i];
            update[i] = s.m[i];
          }
        },
        /*grain=*/1 << 13);
  }

  core::parallel_for(
      p->value.size(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
          p->value[i] -= lr_ * (update[i] + cfg_.weight_decay * p->value[i]);
      },
      /*grain=*/1 << 13);
}

void Adafactor::update_vector(nn::Parameter* p, State& s, float beta2t) {
  const Matrix& g = p->grad;
  APOLLO_CHECK_GT(g.size(), 0);
  if (s.vfull.size() == 0) s.vfull.reshape_discard(g.rows(), g.cols());
  Matrix update(g.rows(), g.cols());
  for (int64_t i = 0; i < g.size(); ++i) {
    s.vfull[i] = beta2t * s.vfull[i] + (1.f - beta2t) * (g[i] * g[i] + cfg_.eps1);
    update[i] = g[i] / (std::sqrt(std::max(s.vfull[i], cfg_.eps1)) + 1e-12f);
  }
  const float u_rms = rms(update);
  if (u_rms > cfg_.clip_threshold)
    scale_inplace(update, cfg_.clip_threshold / u_rms);
  for (int64_t i = 0; i < p->value.size(); ++i)
    p->value[i] -= lr_ * (update[i] + cfg_.weight_decay * p->value[i]);
}

int64_t Adafactor::state_bytes() const {
  int64_t b = 0;
  for (const State& s : states_) {
    b += static_cast<int64_t>(s.vrow.size() + s.vcol.size()) * 4;
    b += (s.vfull.size() + s.m.size()) * 4;
  }
  return b;
}

}  // namespace apollo::optim
