// Full-rank AdamW (Loshchilov & Hutter) — the paper's primary baseline.
#pragma once

#include "nn/parameter.h"
#include "optim/dense_adam.h"
#include "optim/optimizer.h"
#include "tensor/check.h"

namespace apollo::optim {

class AdamW : public Optimizer {
 public:
  explicit AdamW(const AdamHyper& hp = {}) : core_(hp) {}

  void step_param(nn::Parameter& p, int slot) override {
    APOLLO_CHECK_SAME_SHAPE(p.value, p.grad);
    core_.update(slot, p.value, p.grad, lr_, t_);
  }

  std::string name() const override { return "AdamW"; }
  int64_t state_bytes() const override { return core_.state_bytes(); }

  bool save_state(std::FILE* f, const nn::ParamList& params) const override;
  bool load_state(std::FILE* f, const nn::ParamList& params) override;

 protected:
  const char* step_trace_name() const override { return "AdamW::step"; }

 private:
  DenseAdamCore core_;
};

}  // namespace apollo::optim
