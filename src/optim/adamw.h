// Full-rank AdamW (Loshchilov & Hutter) — the paper's primary baseline.
#pragma once

#include "obs/trace.h"
#include "optim/dense_adam.h"
#include "optim/finite_guard.h"

namespace apollo::optim {

class AdamW : public Optimizer {
 public:
  explicit AdamW(const AdamHyper& hp = {}) : core_(hp) {}

  void step(const nn::ParamList& params) override {
    APOLLO_TRACE_SCOPE("AdamW::step", "optim");
    ++t_;
    for (nn::Parameter* p : params) {
      APOLLO_CHECK_SAME_SHAPE(p->value, p->grad);
      core_.update(p, p->value, p->grad, lr_, t_);
    }
    check_step_finite(params, name());
  }

  std::string name() const override { return "AdamW"; }
  int64_t state_bytes() const override { return core_.state_bytes(); }

  bool save_state(std::FILE* f, const nn::ParamList& params) const override;
  bool load_state(std::FILE* f, const nn::ParamList& params) override;

 private:
  DenseAdamCore core_;
};

}  // namespace apollo::optim
