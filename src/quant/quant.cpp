#include "quant/quant.h"
#include "tensor/check.h"

#include <algorithm>
#include <cmath>

namespace apollo {

GroupQuantized GroupQuantized::quantize(const Matrix& m, int64_t group) {
  return quantize_impl(m, group, Rounding::kNearest, nullptr);
}

GroupQuantized GroupQuantized::quantize_stochastic(const Matrix& m, Rng& rng,
                                                   int64_t group) {
  return quantize_impl(m, group, Rounding::kStochastic, &rng);
}

GroupQuantized GroupQuantized::quantize_impl(const Matrix& m, int64_t group,
                                             Rounding mode, Rng* rng) {
  APOLLO_CHECK(group >= 1);
  GroupQuantized out;
  out.rows_ = m.rows();
  out.cols_ = m.cols();
  out.group_ = group;
  const int64_t n = m.size();
  const int64_t ngroups = (n + group - 1) / group;
  out.q_.resize(static_cast<size_t>(n));
  out.scales_.resize(static_cast<size_t>(ngroups));

  for (int64_t g = 0; g < ngroups; ++g) {
    const int64_t lo = g * group, hi = std::min(n, lo + group);
    float absmax = 0.f;
    for (int64_t i = lo; i < hi; ++i)
      absmax = std::max(absmax, std::fabs(m[i]));
    const float scale = absmax > 0.f ? absmax / 127.f : 1.f;
    out.scales_[static_cast<size_t>(g)] = scale;
    const float inv = 1.f / scale;
    for (int64_t i = lo; i < hi; ++i) {
      const float x = m[i] * inv;
      float qf;
      if (mode == Rounding::kNearest) {
        qf = std::nearbyint(x);
      } else {
        // Stochastic rounding: round up with probability = fractional part,
        // so E[q] = x and repeated requantization stays unbiased.
        const float fl = std::floor(x);
        qf = fl + (rng->next_float() < (x - fl) ? 1.f : 0.f);
      }
      out.q_[static_cast<size_t>(i)] =
          static_cast<int8_t>(std::clamp(qf, -127.f, 127.f));
    }
  }
  return out;
}

Matrix GroupQuantized::dequantize() const {
  Matrix m(rows_, cols_);
  const int64_t n = m.size();
  for (int64_t i = 0; i < n; ++i)
    m[i] = static_cast<float>(q_[static_cast<size_t>(i)]) *
           scales_[static_cast<size_t>(i / group_)];
  return m;
}

BlockQuantized::BlockQuantized(int64_t rows, int64_t cols, bool signed_values,
                               int64_t block)
    : rows_(rows), cols_(cols), block_(block), signed_(signed_values) {
  const int64_t n = rows * cols;
  q_.assign(static_cast<size_t>(n), 0);
  scales_.assign(static_cast<size_t>((n + block - 1) / block), 0.f);
}

void BlockQuantized::store(const Matrix& m) {
  APOLLO_CHECK(m.rows() == rows_ && m.cols() == cols_);
  const int64_t n = m.size();
  const int64_t nblocks = static_cast<int64_t>(scales_.size());
  for (int64_t b = 0; b < nblocks; ++b) {
    const int64_t lo = b * block_, hi = std::min(n, lo + block_);
    if (signed_) {
      float mx = 0.f;
      for (int64_t i = lo; i < hi; ++i) mx = std::max(mx, std::fabs(m[i]));
      const float scale = mx > 0.f ? mx / 127.f : 1.f;
      scales_[static_cast<size_t>(b)] = scale;
      const float inv = 1.f / scale;
      for (int64_t i = lo; i < hi; ++i)
        q_[static_cast<size_t>(i)] = static_cast<int8_t>(
            std::clamp(std::nearbyint(m[i] * inv), -127.f, 127.f));
    } else {
      // Non-negative moments (Adam's V) use a square-root code: the stored
      // 8-bit value quantizes √x, so dequantized spacing is quadratic and
      // small second-moment entries keep far better relative precision —
      // the same motivation as bitsandbytes' dynamic 8-bit code.
      float mx = 0.f;
      for (int64_t i = lo; i < hi; ++i)
        mx = std::max(mx, std::sqrt(std::max(0.f, m[i])));
      const float scale = mx > 0.f ? mx / 255.f : 1.f;
      scales_[static_cast<size_t>(b)] = scale;
      const float inv = 1.f / scale;
      for (int64_t i = lo; i < hi; ++i) {
        const float root = std::sqrt(std::max(0.f, m[i]));
        const float qf =
            std::clamp(std::nearbyint(root * inv), 0.f, 255.f);
        // Stored with an offset of −128 to fit int8.
        q_[static_cast<size_t>(i)] =
            static_cast<int8_t>(static_cast<int>(qf) - 128);
      }
    }
  }
}

Matrix BlockQuantized::load() const {
  Matrix m(rows_, cols_);
  const int64_t n = m.size();
  for (int64_t i = 0; i < n; ++i) {
    const float scale = scales_[static_cast<size_t>(i / block_)];
    if (signed_) {
      m[i] = static_cast<float>(q_[static_cast<size_t>(i)]) * scale;
    } else {
      const float root =
          static_cast<float>(static_cast<int>(q_[static_cast<size_t>(i)]) +
                             128) *
          scale;
      m[i] = root * root;  // square-root code (see store())
    }
  }
  return m;
}

}  // namespace apollo
