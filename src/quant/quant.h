// INT8 quantization substrates.
//
// Two distinct users in the paper:
//   1. Q-GaLore-style *weight* quantization (group-wise INT8, group size 128,
//      stochastic rounding on re-quantization after an update) — used by the
//      Q-APOLLO / Q-APOLLO-Mini rows of Table 6 and the 12 GB claim of
//      Fig. 1 (middle).
//   2. bitsandbytes-style *optimizer state* quantization (block-wise dynamic
//      8-bit with per-block absmax scales) — used by the 8-bit Adam and
//      8-bit GaLore baselines of Table 3.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace apollo {

// Group-wise symmetric INT8 container. Groups are `group` consecutive
// elements in row-major order; each group carries one float scale
// (absmax/127).
class GroupQuantized {
 public:
  GroupQuantized() = default;

  // Round-to-nearest quantization.
  static GroupQuantized quantize(const Matrix& m, int64_t group = 128);
  // Stochastic-rounding quantization (Q-GaLore's trick to keep the expected
  // weight unbiased across repeated quantize→update→quantize cycles).
  static GroupQuantized quantize_stochastic(const Matrix& m, Rng& rng,
                                            int64_t group = 128);

  Matrix dequantize() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t group() const { return group_; }

  // Storage cost: 1 byte per element + 4 bytes per group scale.
  int64_t bytes() const {
    return static_cast<int64_t>(q_.size()) +
           static_cast<int64_t>(scales_.size()) * 4;
  }

 private:
  enum class Rounding { kNearest, kStochastic };
  static GroupQuantized quantize_impl(const Matrix& m, int64_t group,
                                      Rounding mode, Rng* rng);

  int64_t rows_ = 0, cols_ = 0, group_ = 128;
  std::vector<int8_t> q_;
  std::vector<float> scales_;
};

// Block-wise dynamic 8-bit tensor for optimizer moments. `signed_values`
// selects a symmetric [-absmax, absmax] code (first moment) vs. an
// asymmetric [0, max] code (second moment, which is non-negative).
class BlockQuantized {
 public:
  BlockQuantized() = default;
  BlockQuantized(int64_t rows, int64_t cols, bool signed_values,
                 int64_t block = 128);

  // Overwrite contents from a float matrix (round-to-nearest).
  void store(const Matrix& m);
  Matrix load() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t bytes() const {
    return static_cast<int64_t>(q_.size()) +
           static_cast<int64_t>(scales_.size()) * 4;
  }

 private:
  int64_t rows_ = 0, cols_ = 0, block_ = 128;
  bool signed_ = true;
  std::vector<int8_t> q_;     // signed code (or 0..255 stored offset-128)
  std::vector<float> scales_;
};

}  // namespace apollo
