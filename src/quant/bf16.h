// BF16 (bfloat16) storage emulation.
//
// The paper's memory numbers assume BF16 optimizer states and weights; our
// compute stays fp32 (exactly like mixed-precision training frameworks that
// compute in fp32 and *store* in bf16). Bf16Buffer gives any optimizer a
// 2-byte/element persistent store with round-to-nearest-even conversion —
// used by the bf16-state variants and the precision-sensitivity tests.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/check.h"
#include "tensor/matrix.h"

namespace apollo {

// Round-to-nearest-even fp32 → bf16 code (upper 16 bits of the float).
inline uint16_t float_to_bf16(float x) {
  uint32_t bits;
  std::memcpy(&bits, &x, sizeof bits);
  // NaN-safe RNE: add the rounding bias derived from bit 16.
  const uint32_t rounding = 0x7fffu + ((bits >> 16) & 1u);
  if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu) != 0)
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);  // quiet NaN
  return static_cast<uint16_t>((bits + rounding) >> 16);
}

inline float bf16_to_float(uint16_t code) {
  const uint32_t bits = static_cast<uint32_t>(code) << 16;
  float x;
  std::memcpy(&x, &bits, sizeof x);
  return x;
}

// A bf16-backed tensor store: load() widens to a Matrix, store() narrows.
class Bf16Buffer {
 public:
  Bf16Buffer() = default;
  Bf16Buffer(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0) {}

  void store(const Matrix& m) {
    APOLLO_CHECK(m.rows() == rows_ && m.cols() == cols_);
    for (int64_t i = 0; i < m.size(); ++i)
      data_[static_cast<size_t>(i)] = float_to_bf16(m[i]);
  }

  Matrix load() const {
    Matrix m(rows_, cols_);
    for (int64_t i = 0; i < m.size(); ++i)
      m[i] = bf16_to_float(data_[static_cast<size_t>(i)]);
    return m;
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t bytes() const { return static_cast<int64_t>(data_.size()) * 2; }

 private:
  int64_t rows_ = 0, cols_ = 0;
  std::vector<uint16_t> data_;
};

}  // namespace apollo
