#include "sysmodel/memory_model.h"

#include <algorithm>

#include "tensor/check.h"

namespace apollo::sysmodel {

namespace {
GpuModelSpec make(const char* name, int64_t h, int64_t inter, int64_t heads,
                  int64_t layers) {
  GpuModelSpec s;
  s.name = name;
  s.hidden = h;
  s.intermediate = inter;
  s.n_heads = heads;
  s.n_layers = layers;
  return s;
}
}  // namespace

GpuModelSpec spec_llama_60m() { return make("LLaMA-60M", 512, 1376, 8, 8); }
GpuModelSpec spec_llama_130m() { return make("LLaMA-130M", 768, 2048, 12, 12); }
GpuModelSpec spec_llama_350m() {
  return make("LLaMA-350M", 1024, 2736, 16, 24);
}
GpuModelSpec spec_llama_1b() { return make("LLaMA-1B", 2048, 5461, 24, 32); }
GpuModelSpec spec_llama_7b() { return make("LLaMA-7B", 4096, 11008, 32, 32); }
GpuModelSpec spec_llama_13b() {
  return make("LLaMA-13B", 5120, 13824, 40, 40);
}

std::vector<std::pair<int64_t, int64_t>> GpuModelSpec::weight_shapes() const {
  std::vector<std::pair<int64_t, int64_t>> shapes;
  shapes.emplace_back(vocab, hidden);  // token embedding
  for (int64_t l = 0; l < n_layers; ++l) {
    for (int i = 0; i < 4; ++i) shapes.emplace_back(hidden, hidden);
    shapes.emplace_back(intermediate, hidden);  // gate
    shapes.emplace_back(intermediate, hidden);  // up
    shapes.emplace_back(hidden, intermediate);  // down
  }
  shapes.emplace_back(vocab, hidden);  // lm head
  return shapes;
}

int64_t GpuModelSpec::param_count() const {
  int64_t p = 0;
  for (auto [r, c] : weight_shapes()) p += r * c;
  p += n_layers * 2 * hidden + hidden;  // RMSNorm gains
  return p;
}

int64_t GpuModelSpec::largest_layer_params() const {
  // The embedding / lm-head matrices are the largest single units.
  return std::max(vocab * hidden,
                  4 * hidden * hidden + 3 * hidden * intermediate);
}

const char* method_name(Method m) {
  switch (m) {
    case Method::kAdamW: return "AdamW";
    case Method::kSgd: return "SGD";
    case Method::kSgdMomentum: return "SGD-momentum";
    case Method::kAdamMini: return "Adam-mini";
    case Method::kGaLore: return "GaLore";
    case Method::kFira: return "Fira";
    case Method::kFlora: return "Flora";
    case Method::kApollo: return "APOLLO";
    case Method::kApolloMini: return "APOLLO-Mini";
    case Method::kLora: return "LoRA";
    case Method::kRelora: return "ReLoRA";
    case Method::kLowRank: return "Low-Rank";
  }
  return "?";
}

int64_t state_elements(Method method, int64_t rows, int64_t cols,
                       int64_t rank) {
  const int64_t m = std::min(rows, cols);
  const int64_t n = std::max(rows, cols);
  const int64_t r = rank > 0 ? std::min(rank, m) : 0;
  switch (method) {
    case Method::kAdamW: return 2 * m * n;
    case Method::kSgd: return 0;
    case Method::kSgdMomentum: return m * n;
    case Method::kAdamMini: return m * n + m;  // full M + block-wise V
    case Method::kGaLore: return m * r + 2 * n * r;
    case Method::kFira: return m * r + 2 * n * r + 1;
    case Method::kFlora: return 2 * n * r + 1;
    case Method::kApollo: return 2 * n * r + 2;
    case Method::kApolloMini: return 2 * n + 2;
    // Adapter methods: factors (m r + n r) + their AdamW moments.
    case Method::kLora:
    case Method::kRelora:
    case Method::kLowRank: return 3 * (m * r + n * r);
  }
  return 0;
}

MemoryBreakdown estimate_memory(const GpuModelSpec& model,
                                const MethodSpec& ms, int64_t micro_batch) {
  MemoryBreakdown b;
  const int64_t P = model.param_count();

  // Weights.
  if (ms.weight_bits == 8) {
    // INT8 payload + one fp32 scale per quantization group.
    b.weights = P + (P / ms.quant_group) * 4;
  } else {
    b.weights = P * ms.weight_bits / 8;
  }

  // Gradients: full set, or one layer's worth with layer-wise updates.
  const int64_t grad_params =
      ms.layerwise_grad_update ? model.largest_layer_params() : P;
  b.gradients = grad_params * ms.grad_bits / 8;

  // Optimizer states from the per-matrix Table 1 formulas; 1-D gains get
  // dense Adam moments for the Adam-family methods.
  int64_t elems = 0;
  for (auto [r, c] : model.weight_shapes())
    elems += state_elements(ms.method, r, c, ms.rank);
  const int64_t gain_params = model.n_layers * 2 * model.hidden + model.hidden;
  if (ms.method != Method::kSgd) elems += 2 * gain_params;
  if (ms.state_bits == 8) {
    b.optimizer_states = elems + (elems / ms.quant_group) * 4;
  } else {
    b.optimizer_states = elems * ms.state_bits / 8;
  }

  // Activations (no flash attention / no full checkpointing, matching the
  // paper's system runs): per-token cost covers block activations kept for
  // backward, fp32 softmax/logit buffers and allocator slack. The 68h + 8i
  // constant is calibrated so AdamW on LLaMA-7B measures ~79 GB at
  // micro-batch 4 per GPU — the paper's Fig. 1 anchor (see EXPERIMENTS.md).
  const int64_t tokens = micro_batch * model.seq_len;
  int64_t per_token =
      model.n_layers * (68 * model.hidden + 8 * model.intermediate) * 2
      + model.n_layers * model.n_heads * model.seq_len * 2  // attn probs
      + 4 * model.vocab;                                    // logits (+grad)
  b.activations = tokens * per_token;
  if (ms.layerwise_grad_update) {
    // Fused backward+update (Lv et al., 2023) releases each layer's
    // activations and gradient as soon as the layer is updated; empirically
    // (paper Fig. 1: 70 GB at micro-batch 16) this trims the live
    // activation set by ~40%.
    b.activations = b.activations * 6 / 10;
  }
  return b;
}

int64_t max_micro_batch(const GpuModelSpec& model, const MethodSpec& method,
                        int64_t cap_bytes) {
  int64_t lo = 0, hi = 4096;
  while (lo < hi) {
    const int64_t mid = (lo + hi + 1) / 2;
    if (estimate_memory(model, method, mid).total() <= cap_bytes)
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

}  // namespace apollo::sysmodel
