// Analytic GPU memory accounting.
//
// The paper reports optimizer-state memory analytically (Table 1 formulas,
// the "Memory" columns of Tables 2/3/6, and the Fig. 1 breakdown); this
// module implements that accounting over the *real* LLaMA shapes (Table 8)
// so the reproduced numbers land at paper scale even though training runs on
// nano proxies. Per m×n weight (m ≤ n), optimizer state element counts:
//
//     AdamW        2mn              Fira      mr + 2nr + 1
//     SGD          0                GaLore    mr + 2nr
//     Adam-mini    mn + m           Flora     2nr + 1
//     APOLLO       2nr + 2          APOLLO-Mini   2n + 2
//
// plus dtype sizing (BF16 states to match the paper's reported GB), INT8
// weight quantization for the Q- variants, and the layer-wise gradient
// update strategy (Lv et al., 2023) that keeps only one layer's gradient
// alive — the assumption behind the 12 GB LLaMA-7B claim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apollo::sysmodel {

// Full-scale LLaMA shapes from Table 8 (+13B for the DDP claim).
struct GpuModelSpec {
  std::string name;
  int64_t vocab = 32000;
  int64_t hidden = 0;
  int64_t intermediate = 0;
  int64_t n_heads = 0;
  int64_t n_layers = 0;
  int64_t seq_len = 256;

  int64_t param_count() const;
  // Every 2-D weight as (rows, cols); used by per-matrix state formulas.
  std::vector<std::pair<int64_t, int64_t>> weight_shapes() const;
  // Parameters of the largest single layer (for layer-wise grad updates).
  int64_t largest_layer_params() const;
};

GpuModelSpec spec_llama_60m();
GpuModelSpec spec_llama_130m();
GpuModelSpec spec_llama_350m();
GpuModelSpec spec_llama_1b();
GpuModelSpec spec_llama_7b();
GpuModelSpec spec_llama_13b();

enum class Method {
  kAdamW,
  kSgd,
  kSgdMomentum,
  kAdamMini,
  kGaLore,
  kFira,
  kFlora,
  kApollo,
  kApolloMini,
  kLora,
  kRelora,
  kLowRank,
};

const char* method_name(Method m);

struct MethodSpec {
  Method method = Method::kAdamW;
  int64_t rank = 0;          // per-matrix rank (capped at min-dim)
  int weight_bits = 16;      // 8 ⇒ Q- variant (INT8 + group scales)
  int state_bits = 16;       // 8 ⇒ 8-bit optimizer states
  int grad_bits = 16;
  bool layerwise_grad_update = false;  // Lv et al. (2023)
  int64_t quant_group = 128;
};

struct MemoryBreakdown {
  int64_t weights = 0;
  int64_t gradients = 0;
  int64_t optimizer_states = 0;
  int64_t activations = 0;
  int64_t total() const {
    return weights + gradients + optimizer_states + activations;
  }
};

// Optimizer-state element count for one m×n weight (the Table 1 formulas).
int64_t state_elements(Method method, int64_t rows, int64_t cols,
                       int64_t rank);

// Whole-model breakdown at a given micro-batch. Activation model assumes
// activation checkpointing (one transformer block of live activations +
// logits), the setting of the paper's system experiments.
MemoryBreakdown estimate_memory(const GpuModelSpec& model,
                                const MethodSpec& method, int64_t micro_batch);

// Largest micro-batch that fits a memory cap (0 if even batch 1 spills).
int64_t max_micro_batch(const GpuModelSpec& model, const MethodSpec& method,
                        int64_t cap_bytes);

}  // namespace apollo::sysmodel
