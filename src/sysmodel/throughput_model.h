// Step-time and end-to-end throughput model (Fig. 1 right, Fig. 2, Fig. 9).
//
// Training step time on a GPU cluster is modeled as
//     t_step = 6·P·tokens / (n_gpu · peak_flops · MFU)  +  t_proj / T
// where t_proj is the projector-refresh cost paid every T steps: a full SVD
// sweep for GaLore/Fira (the paper measures ~10 minutes for LLaMA-7B) vs.
// effectively zero for APOLLO's seed regeneration. The SVD cost scales as
// Σ m·n·min(m,n) over the weight matrices and is anchored to the paper's
// 7B measurement; bench_fig9 also *measures* our real SVD kernel on nano
// shapes to show the same spike structure.
//
// Throughput wins come from memory: each method's maximum micro-batch under
// the per-GPU cap (from memory_model) determines tokens in flight; larger
// micro-batches amortize fixed per-step overheads modeled by `fixed_overhead`
// (optimizer step, communication, kernel launch), reproducing the paper's
// "AdamW is memory-bound at micro-batch 4" story.
#pragma once

#include "sysmodel/memory_model.h"

namespace apollo::sysmodel {

struct GpuSpec {
  int n_gpus = 8;
  double peak_flops = 312e12;  // A100 BF16 tensor-core peak
  double mfu = 0.50;           // asymptotic model-FLOPs utilization
  // Utilization saturates with per-GPU micro-batch b as b/(b + half):
  // small micro-batches leave tensor cores starved — the mechanism behind
  // the paper's "AdamW is memory-bound" throughput gap.
  double mfu_half_batch = 12.0;
  int64_t mem_cap = 80ll << 30;
  // Per-micro-step fixed overhead (s): gradient all-reduce + optimizer +
  // kernel launches. Amortized by larger micro-batches.
  double fixed_overhead = 0.7;
};

struct StepCost {
  double compute_s = 0;
  double projector_s = 0;   // amortized per-step projector refresh cost
  double overhead_s = 0;
  double total() const { return compute_s + projector_s + overhead_s; }
};

// One-off cost of refreshing the projection for every weight (seconds).
// `svd` selects SVD (GaLore/Fira/APOLLO w. SVD) vs. random re-seed (≈0).
double projector_refresh_seconds(const GpuModelSpec& model, bool svd);

// Per-step cost for a given micro-batch, gradient-accumulated to
// `total_batch` sequences, with projector refresh every `update_freq`.
StepCost step_cost(const GpuModelSpec& model, const GpuSpec& gpu,
                   int64_t micro_batch, int64_t total_batch, bool svd_proj,
                   int update_freq);

// Tokens/second at the method's best micro-batch under the memory cap.
struct ThroughputResult {
  int64_t micro_batch = 0;
  double tokens_per_s = 0;
  StepCost cost;
};
ThroughputResult end_to_end_throughput(const GpuModelSpec& model,
                                       const MethodSpec& method,
                                       const GpuSpec& gpu,
                                       int64_t total_batch, bool svd_proj,
                                       int update_freq);

}  // namespace apollo::sysmodel
