#include "sysmodel/throughput_model.h"

#include <algorithm>
#include <cmath>

namespace apollo::sysmodel {

double projector_refresh_seconds(const GpuModelSpec& model, bool svd) {
  if (!svd) return 0.05;  // RNG re-seed + bookkeeping: negligible
  // SVD work ∝ Σ m·n·min(m,n); anchored to the paper's measurement of
  // ~10 minutes (600 s) for LLaMA-7B.
  auto work = [](const GpuModelSpec& m) {
    double w = 0;
    for (auto [r, c] : m.weight_shapes()) {
      const double mn = static_cast<double>(r) * static_cast<double>(c);
      w += mn * static_cast<double>(std::min(r, c));
    }
    return w;
  };
  static const double kAnchor = work(spec_llama_7b());
  return 600.0 * work(model) / kAnchor;
}

StepCost step_cost(const GpuModelSpec& model, const GpuSpec& gpu,
                   int64_t micro_batch, int64_t total_batch, bool svd_proj,
                   int update_freq) {
  StepCost c;
  const double P = static_cast<double>(model.param_count());
  const double tokens =
      static_cast<double>(total_batch) * static_cast<double>(model.seq_len);
  // Utilization saturates with the per-GPU micro-batch.
  const double per_gpu_batch = static_cast<double>(micro_batch) /
                               static_cast<double>(gpu.n_gpus);
  const double mfu =
      gpu.mfu * per_gpu_batch / (per_gpu_batch + gpu.mfu_half_batch);
  // Forward + backward ≈ 6 FLOPs per parameter per token.
  c.compute_s = 6.0 * P * tokens /
                (static_cast<double>(gpu.n_gpus) * gpu.peak_flops * mfu);
  // Gradient accumulation: each micro-step pays the fixed overhead.
  const int64_t accum_steps =
      std::max<int64_t>(1, (total_batch + micro_batch - 1) /
                               std::max<int64_t>(1, micro_batch));
  c.overhead_s = gpu.fixed_overhead * static_cast<double>(accum_steps);
  c.projector_s = projector_refresh_seconds(model, svd_proj) /
                  static_cast<double>(update_freq);
  return c;
}

ThroughputResult end_to_end_throughput(const GpuModelSpec& model,
                                       const MethodSpec& method,
                                       const GpuSpec& gpu,
                                       int64_t total_batch, bool svd_proj,
                                       int update_freq) {
  ThroughputResult r;
  // Per-GPU micro-batch under the cap, summed over the data-parallel group.
  const int64_t per_gpu = max_micro_batch(model, method, gpu.mem_cap);
  r.micro_batch = per_gpu * gpu.n_gpus;
  if (per_gpu == 0) return r;  // does not fit at all
  r.cost = step_cost(model, gpu, r.micro_batch, total_batch, svd_proj,
                     update_freq);
  const double tokens =
      static_cast<double>(total_batch) * static_cast<double>(model.seq_len);
  r.tokens_per_s = tokens / r.cost.total();
  return r;
}

}  // namespace apollo::sysmodel
