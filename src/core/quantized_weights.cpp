#include "core/quantized_weights.h"

namespace apollo::core {

QuantizedWeightStore::QuantizedWeightStore(const nn::ParamList& params,
                                           uint64_t seed, int64_t group)
    : group_(group), rng_(seed) {
  for (nn::Parameter* p : params) {
    if (p->matrix_shaped) {
      slots_.push_back({p, GroupQuantized::quantize(p->value, group_)});
    } else {
      fp32_params_.push_back(p);
    }
  }
  dequantize_into_params();
}

void QuantizedWeightStore::dequantize_into_params() {
  for (Slot& s : slots_) s.param->value = s.store.dequantize();
}

void QuantizedWeightStore::requantize_from_params() {
  for (Slot& s : slots_) {
    s.store = GroupQuantized::quantize_stochastic(s.param->value, rng_, group_);
    s.param->value = s.store.dequantize();
  }
}

int64_t QuantizedWeightStore::weight_bytes() const {
  int64_t b = 0;
  for (const Slot& s : slots_) b += s.store.bytes();
  for (const nn::Parameter* p : fp32_params_)
    b += p->value.size() * static_cast<int64_t>(sizeof(float));
  return b;
}

}  // namespace apollo::core
