#include "core/apollo.h"

#include "tensor/serialize.h"

#include "core/threadpool.h"
#include "linalg/svd.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "optim/finite_guard.h"
#include "tensor/ops.h"

namespace apollo::core {

Apollo::Apollo(const ApolloConfig& cfg, std::string display_name)
    : cfg_(cfg), display_name_(std::move(display_name)), dense_(cfg.hyper),
      seeder_(cfg.seed) {
  APOLLO_CHECK(cfg.rank >= 1);
  if (display_name_.empty()) {
    display_name_ = cfg.granularity == ScalingGranularity::kTensor &&
                            cfg.rank == 1
                        ? "APOLLO-Mini"
                        : "APOLLO";
  }
}

void Apollo::step(const nn::ParamList& params) {
  APOLLO_TRACE_SCOPE("Apollo::step", "optim");
  ++t_;
  const bool telemetry = obs::telemetry_enabled();
  StepStats stats;
  for (nn::Parameter* p : params) {
    APOLLO_CHECK_SAME_SHAPE(p->value, p->grad);
    // Rank-1 auxiliary space is meaningful for any matrix, so only 1-D
    // parameters take the dense fallback (plus degenerate tiny matrices for
    // ranks > smallest dim).
    if (!p->matrix_shaped ||
        std::min(p->value.rows(), p->value.cols()) < cfg_.rank) {
      dense_.update(p, p->value, p->grad, lr_, t_);
      continue;
    }
    update_matrix_param(p, telemetry ? &stats : nullptr);
  }
  if (telemetry) {
    obs::Telemetry& tel = obs::telemetry();
    tel.set("opt.clip_fraction",
            stats.sites > 0 ? static_cast<double>(stats.clipped) /
                                  static_cast<double>(stats.sites)
                            : 0.0);
    tel.set_int("opt.proj_refreshes", stats.refreshes);
    obs::Registry::instance()
        .counter("optim.apollo.proj_refreshes")
        .add(stats.refreshes);
  }
  optim::check_step_finite(params, display_name_);
}

void Apollo::update_matrix_param(nn::Parameter* p, StepStats* stats) {
  State& s = states_[p];
  const Matrix& g = p->grad;
  const int64_t r = cfg_.rank;

  if (s.local_t == 0) {
    s.side = natural_side(g.rows(), g.cols());
    s.proj_seed = seeder_.split();
  }
  const bool refresh = s.local_t % cfg_.update_freq == 0;
  ++s.local_t;
  if (refresh && obs::trace_enabled())
    obs::trace_instant("proj_refresh", "optim");

  // Step 1: project the gradient into the rank-r auxiliary space.
  Matrix rg;
  if (cfg_.proj == optim::ProjKind::kRandom) {
    if (refresh && s.local_t > 1) s.proj_seed = seeder_.split();
    const int64_t small_dim =
        s.side == ProjectionSide::kLeft ? g.rows() : g.cols();
    // Regenerated from the seed every step — never stored.
    Matrix proj = gaussian_projection(r, small_dim, s.proj_seed);
    rg = project(g, proj, s.side);
  } else {
    if (refresh) {
      s.svd_projector = s.side == ProjectionSide::kLeft
                            ? svd_left_projector(g, r)
                            : svd_right_projector(g, r);
    }
    rg = project(g, s.svd_projector, s.side);
  }

  // Step 2: AdamW moments in the auxiliary space only.
  if (s.m.size() == 0) {
    s.m.reshape_discard(rg.rows(), rg.cols());
    s.v.reshape_discard(rg.rows(), rg.cols());
  }
  const float b1 = cfg_.hyper.beta1, b2 = cfg_.hyper.beta2;
  const float bc1 = 1.f - std::pow(b1, static_cast<float>(s.local_t));
  const float bc2 = 1.f - std::pow(b2, static_cast<float>(s.local_t));
  Matrix rtilde(rg.rows(), rg.cols());
  core::parallel_for(
      rg.size(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          s.m[i] = b1 * s.m[i] + (1.f - b1) * rg[i];
          s.v[i] = b2 * s.v[i] + (1.f - b2) * rg[i] * rg[i];
          rtilde[i] =
              (s.m[i] / bc1) / (std::sqrt(s.v[i] / bc2) + cfg_.hyper.eps);
        }
      },
      /*grain=*/1 << 13);

  // Step 3: structured scaling factors from the compressed space.
  Matrix update = g;
  if (cfg_.granularity == ScalingGranularity::kChannel) {
    std::vector<float> num, den;
    if (s.side == ProjectionSide::kLeft) {
      num = col_norms(rtilde);
      den = col_norms(rg);
    } else {
      num = row_norms(rtilde);
      den = row_norms(rg);
    }
    std::vector<float>& sf = s.last_scaling;
    sf.resize(num.size());
    for (size_t j = 0; j < sf.size(); ++j)
      sf[j] = den[j] > 1e-30f ? num[j] / den[j] : 0.f;
    if (s.side == ProjectionSide::kLeft)
      scale_cols_inplace(update, sf);
    else
      scale_rows_inplace(update, sf);
  } else {
    const double num = frobenius_norm(rtilde);
    const double den = frobenius_norm(rg);
    const float sf = den > 1e-30 ? static_cast<float>(num / den) : 0.f;
    s.last_scaling.assign(1, sf);
    scale_inplace(update, sf);
  }

  const bool clipped = cfg_.use_norm_limiter ? s.limiter.apply(update) : false;
  if (stats != nullptr) {
    ++stats->sites;
    if (clipped) ++stats->clipped;
    if (refresh) ++stats->refreshes;
    // Distribution of the structured scaling factors s_j (Fig. 4 / Fig. 8):
    // committed per step as s_min / s_med / s_max / s_n.
    obs::telemetry().sample("opt.s", s.last_scaling.data(),
                            s.last_scaling.size());
  }

  // Step 4: update the weight in the original space (decoupled decay).
  const float wd = cfg_.hyper.weight_decay;
  const float eta = lr_ * cfg_.scale;
  core::parallel_for(
      p->value.size(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
          p->value[i] -= eta * update[i] + lr_ * wd * p->value[i];
      },
      /*grain=*/1 << 13);
}

int64_t Apollo::state_bytes() const {
  int64_t b = dense_.state_bytes();
  for (const auto& [k, s] : states_) {
    b += (s.m.size() + s.v.size()) * static_cast<int64_t>(sizeof(float));
    b += s.svd_projector.size() * static_cast<int64_t>(sizeof(float));
    b += 8;  // projection seed
    if (cfg_.use_norm_limiter)
      b += optim::NormGrowthLimiter::state_floats() *
           static_cast<int64_t>(sizeof(float));
  }
  return b;
}

// Pure serialization: `params` only fixes key order, shapes are validated
// by read_matrix/write_matrix and the cross-moment check in load_state.
// lint:allow(check-shape-preconditions)
bool Apollo::save_state(std::FILE* f, const nn::ParamList& params) const {
  const Rng::State rs = seeder_.state();
  if (!write_pod(f, t_) || !write_pod(f, rs)) return false;
  for (const nn::Parameter* p : params) {
    auto it = states_.find(p);
    const uint8_t present = it != states_.end() ? 1 : 0;
    if (!write_pod(f, present)) return false;
    if (!present) continue;
    const State& s = it->second;
    const uint8_t side = s.side == ProjectionSide::kLeft ? 0 : 1;
    const double nl = s.limiter.tracked_norm();
    if (!write_pod(f, side) || !write_pod(f, s.proj_seed) ||
        !write_pod(f, s.local_t) || !write_pod(f, nl) ||
        !write_matrix(f, s.svd_projector) || !write_matrix(f, s.m) ||
        !write_matrix(f, s.v))
      return false;
  }
  std::vector<const void*> keys;
  for (const nn::Parameter* p : params) keys.push_back(p);
  return dense_.save(f, keys);
}

bool Apollo::load_state(std::FILE* f, const nn::ParamList& params) {
  Rng::State rs;
  if (!read_pod(f, t_) || !read_pod(f, rs)) return false;
  seeder_.set_state(rs);
  states_.clear();
  for (const nn::Parameter* p : params) {
    uint8_t present = 0;
    if (!read_pod(f, present)) return false;
    if (!present) continue;
    State& s = states_[p];
    uint8_t side = 0;
    double nl = -1.0;
    if (!read_pod(f, side) || !read_pod(f, s.proj_seed) ||
        !read_pod(f, s.local_t) || !read_pod(f, nl) ||
        !read_matrix(f, s.svd_projector) || !read_matrix(f, s.m) ||
        !read_matrix(f, s.v))
      return false;
    s.side = side == 0 ? ProjectionSide::kLeft : ProjectionSide::kRight;
    // The auxiliary moments must agree with each other — a corrupt or
    // truncated checkpoint fails here rather than thousands of steps later.
    APOLLO_CHECK_SAME_SHAPE(s.m, s.v);
    s.limiter = optim::NormGrowthLimiter(cfg_.nl_gamma);
    s.limiter.set_tracked_norm(nl);
  }
  std::vector<const void*> keys;
  for (const nn::Parameter* p : params) keys.push_back(p);
  return dense_.load(f, keys);
}

int64_t Apollo::reseed_projection(uint64_t salt) {
  if (cfg_.proj != optim::ProjKind::kRandom) return 0;
  int64_t n = 0;
  // Each seed is remixed independently (SplitMix64 finalizer over the old
  // seed and the salt), so the result is deterministic regardless of the
  // unordered_map's iteration order.
  for (auto& [p, s] : states_) {
    uint64_t z = s.proj_seed + 0x9E3779B97F4A7C15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    s.proj_seed = z ^ (z >> 31);
    ++n;
  }
  return n;
}

bool Apollo::tighten_norm_limiter(float factor) {
  if (!cfg_.use_norm_limiter) return false;
  APOLLO_CHECK(factor > 0.f && factor <= 1.f);
  cfg_.nl_gamma = 1.f + (cfg_.nl_gamma - 1.f) * factor;
  for (auto& [p, s] : states_) s.limiter.set_gamma(cfg_.nl_gamma);
  return true;
}

const std::vector<float>* Apollo::last_scaling(
    const nn::Parameter* p) const {
  auto it = states_.find(p);
  if (it == states_.end() || it->second.last_scaling.empty()) return nullptr;
  return &it->second.last_scaling;
}

}  // namespace apollo::core
