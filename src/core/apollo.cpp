#include "core/apollo.h"

#include "nn/parameter.h"
#include "tensor/check.h"
#include "tensor/matrix.h"
#include "tensor/serialize.h"

#include "core/threadpool.h"
#include "linalg/svd.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace apollo::core {

Apollo::Apollo(const ApolloConfig& cfg, std::string display_name)
    : cfg_(cfg), display_name_(std::move(display_name)), dense_(cfg.hyper),
      seeder_(cfg.seed) {
  APOLLO_CHECK(cfg.rank >= 1);
  if (display_name_.empty()) {
    display_name_ = cfg.granularity == ScalingGranularity::kTensor &&
                            cfg.rank == 1
                        ? "APOLLO-Mini"
                        : "APOLLO";
  }
}

void Apollo::begin_step(const nn::ParamList& params) {
  Optimizer::begin_step(params);
  if (states_.size() < params.size()) states_.resize(params.size());
  telemetry_ = obs::telemetry_enabled();
  stats_ = StepStats{};
  // Everything order-sensitive happens here, iterating params in slot
  // order: seeder_ draws, refresh decisions, local step counters. This
  // keeps the RNG stream identical whether step_param() is later called in
  // slot order (compat step()) or in backward-completion order (fused).
  for (size_t i = 0; i < params.size(); ++i) {
    nn::Parameter* p = params[i];
    slot_of_[p] = i;
    if (!projected(*p)) continue;  // dense fallback: no per-slot decisions
    State& s = states_[i];
    if (s.local_t == 0) {
      s.side = natural_side(p->value.rows(), p->value.cols());
      s.proj_seed = seeder_.split();
    }
    s.refresh = s.local_t % cfg_.update_freq == 0;
    ++s.local_t;
    if (s.refresh && obs::trace_enabled())
      obs::trace_instant("proj_refresh", "optim");
    // Random projection seeds are re-drawn every update_freq steps.
    if (cfg_.proj == optim::ProjKind::kRandom && s.refresh && s.local_t > 1)
      s.proj_seed = seeder_.split();
  }
}

void Apollo::step_param(nn::Parameter& p, int slot) {
  APOLLO_CHECK_SAME_SHAPE(p.value, p.grad);
  if (!projected(p)) {
    dense_.update(slot, p.value, p.grad, lr_, t_);
    return;
  }
  update_matrix_param(&p, states_[static_cast<size_t>(slot)],
                      telemetry_ ? &stats_ : nullptr);
}

void Apollo::end_step(const nn::ParamList& params) {
  if (telemetry_) {
    obs::Telemetry& tel = obs::telemetry();
    tel.set("opt.clip_fraction",
            stats_.sites > 0 ? static_cast<double>(stats_.clipped) /
                                   static_cast<double>(stats_.sites)
                             : 0.0);
    tel.set_int("opt.proj_refreshes", stats_.refreshes);
    obs::Registry::instance()
        .counter("optim.apollo.proj_refreshes")
        .add(stats_.refreshes);
  }
  Optimizer::end_step(params);  // finite check under APOLLO_CHECK_FINITE
}

void Apollo::update_matrix_param(nn::Parameter* p, State& s,
                                 StepStats* stats) {
  APOLLO_CHECK_SAME_SHAPE(p->value, p->grad);
  const Matrix& g = p->grad;
  const int64_t r = cfg_.rank;

  // Step 1: project the gradient into the rank-r auxiliary space. The
  // refresh decision and any seed re-draw already happened in begin_step().
  Matrix rg;
  if (cfg_.proj == optim::ProjKind::kRandom) {
    const int64_t small_dim =
        s.side == ProjectionSide::kLeft ? g.rows() : g.cols();
    // Regenerated from the seed every step — never stored.
    Matrix proj = gaussian_projection(r, small_dim, s.proj_seed);
    rg = project(g, proj, s.side);
  } else {
    if (s.refresh) {
      s.svd_projector = s.side == ProjectionSide::kLeft
                            ? svd_left_projector(g, r)
                            : svd_right_projector(g, r);
    }
    rg = project(g, s.svd_projector, s.side);
  }

  // Step 2: AdamW moments in the auxiliary space only.
  if (s.m.size() == 0) {
    s.m.reshape_discard(rg.rows(), rg.cols());
    s.v.reshape_discard(rg.rows(), rg.cols());
  }
  const float b1 = cfg_.hyper.beta1, b2 = cfg_.hyper.beta2;
  const optim::BiasCorrection bc = optim::bias_correction(cfg_.hyper, s.local_t);
  const float bc1 = bc.c1, bc2 = bc.c2;
  Matrix rtilde(rg.rows(), rg.cols());
  core::parallel_for(
      rg.size(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          s.m[i] = b1 * s.m[i] + (1.f - b1) * rg[i];
          s.v[i] = b2 * s.v[i] + (1.f - b2) * rg[i] * rg[i];
          rtilde[i] =
              (s.m[i] / bc1) / (std::sqrt(s.v[i] / bc2) + cfg_.hyper.eps);
        }
      },
      /*grain=*/1 << 13);

  // Step 3: structured scaling factors from the compressed space.
  Matrix update = g;
  if (cfg_.granularity == ScalingGranularity::kChannel) {
    std::vector<float> num, den;
    if (s.side == ProjectionSide::kLeft) {
      num = col_norms(rtilde);
      den = col_norms(rg);
    } else {
      num = row_norms(rtilde);
      den = row_norms(rg);
    }
    std::vector<float>& sf = s.last_scaling;
    sf.resize(num.size());
    for (size_t j = 0; j < sf.size(); ++j)
      sf[j] = den[j] > 1e-30f ? num[j] / den[j] : 0.f;
    if (s.side == ProjectionSide::kLeft)
      scale_cols_inplace(update, sf);
    else
      scale_rows_inplace(update, sf);
  } else {
    const double num = frobenius_norm(rtilde);
    const double den = frobenius_norm(rg);
    const float sf = den > 1e-30 ? static_cast<float>(num / den) : 0.f;
    s.last_scaling.assign(1, sf);
    scale_inplace(update, sf);
  }

  const bool clipped = cfg_.use_norm_limiter ? s.limiter.apply(update) : false;
  if (stats != nullptr) {
    ++stats->sites;
    if (clipped) ++stats->clipped;
    if (s.refresh) ++stats->refreshes;
    // Distribution of the structured scaling factors s_j (Fig. 4 / Fig. 8):
    // committed per step as s_min / s_med / s_max / s_n.
    obs::telemetry().sample("opt.s", s.last_scaling.data(),
                            s.last_scaling.size());
  }

  // Step 4: update the weight in the original space (decoupled decay).
  const float wd = cfg_.hyper.weight_decay;
  const float eta = lr_ * cfg_.scale;
  core::parallel_for(
      p->value.size(),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
          p->value[i] -= eta * update[i] + lr_ * wd * p->value[i];
      },
      /*grain=*/1 << 13);
}

int64_t Apollo::state_bytes() const {
  int64_t b = dense_.state_bytes();
  for (const State& s : states_) {
    if (s.local_t == 0) continue;  // slot never projected (dense or unseen)
    b += (s.m.size() + s.v.size()) * static_cast<int64_t>(sizeof(float));
    b += s.svd_projector.size() * static_cast<int64_t>(sizeof(float));
    b += 8;  // projection seed
    if (cfg_.use_norm_limiter)
      b += optim::NormGrowthLimiter::state_floats() *
           static_cast<int64_t>(sizeof(float));
  }
  return b;
}

// Pure serialization: `params` only fixes key order, shapes are validated
// by read_matrix/write_matrix and the cross-moment check in load_state.
// lint:allow(check-shape-preconditions)
bool Apollo::save_state(std::FILE* f, const nn::ParamList& params) const {
  const Rng::State rs = seeder_.state();
  if (!write_pod(f, t_) || !write_pod(f, rs)) return false;
  for (size_t i = 0; i < params.size(); ++i) {
    // A slot is "present" once it has been projected at least once — the
    // byte layout matches the old pointer-keyed format exactly (v3
    // checkpoints stay readable).
    const State* s =
        i < states_.size() && states_[i].local_t > 0 ? &states_[i] : nullptr;
    const uint8_t present = s != nullptr ? 1 : 0;
    if (!write_pod(f, present)) return false;
    if (!present) continue;
    const uint8_t side = s->side == ProjectionSide::kLeft ? 0 : 1;
    const double nl = s->limiter.tracked_norm();
    if (!write_pod(f, side) || !write_pod(f, s->proj_seed) ||
        !write_pod(f, s->local_t) || !write_pod(f, nl) ||
        !write_matrix(f, s->svd_projector) || !write_matrix(f, s->m) ||
        !write_matrix(f, s->v))
      return false;
  }
  return dense_.save(f, static_cast<int64_t>(params.size()));
}

bool Apollo::load_state(std::FILE* f, const nn::ParamList& params) {
  Rng::State rs;
  if (!read_pod(f, t_) || !read_pod(f, rs)) return false;
  seeder_.set_state(rs);
  states_.assign(params.size(), State());
  for (size_t i = 0; i < params.size(); ++i) {
    uint8_t present = 0;
    if (!read_pod(f, present)) return false;
    if (!present) continue;
    State& s = states_[i];
    uint8_t side = 0;
    double nl = -1.0;
    if (!read_pod(f, side) || !read_pod(f, s.proj_seed) ||
        !read_pod(f, s.local_t) || !read_pod(f, nl) ||
        !read_matrix(f, s.svd_projector) || !read_matrix(f, s.m) ||
        !read_matrix(f, s.v))
      return false;
    s.side = side == 0 ? ProjectionSide::kLeft : ProjectionSide::kRight;
    // The auxiliary moments must agree with each other — a corrupt or
    // truncated checkpoint fails here rather than thousands of steps later.
    APOLLO_CHECK_SAME_SHAPE(s.m, s.v);
    s.limiter = optim::NormGrowthLimiter(cfg_.nl_gamma);
    s.limiter.set_tracked_norm(nl);
  }
  return dense_.load(f, static_cast<int64_t>(params.size()));
}

int64_t Apollo::reseed_projection(uint64_t salt) {
  if (cfg_.proj != optim::ProjKind::kRandom) return 0;
  int64_t n = 0;
  // Each seed is remixed independently (SplitMix64 finalizer over the old
  // seed and the salt), so the result is deterministic regardless of
  // iteration order.
  for (State& s : states_) {
    if (s.local_t == 0) continue;  // never projected: no seed to remix
    uint64_t z = s.proj_seed + 0x9E3779B97F4A7C15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    s.proj_seed = z ^ (z >> 31);
    ++n;
  }
  return n;
}

bool Apollo::tighten_norm_limiter(float factor) {
  if (!cfg_.use_norm_limiter) return false;
  APOLLO_CHECK(factor > 0.f && factor <= 1.f);
  cfg_.nl_gamma = 1.f + (cfg_.nl_gamma - 1.f) * factor;
  for (State& s : states_) s.limiter.set_gamma(cfg_.nl_gamma);
  return true;
}

// Read-only instrumentation lookup; unknown pointers return nullptr.
// lint:allow(check-shape-preconditions)
const std::vector<float>* Apollo::last_scaling(
    const nn::Parameter* p) const {
  auto it = slot_of_.find(p);
  if (it == slot_of_.end() || it->second >= states_.size()) return nullptr;
  const State& s = states_[it->second];
  return s.last_scaling.empty() ? nullptr : &s.last_scaling;
}

}  // namespace apollo::core
