// APOLLO — Approximated Gradient Scaling for Memory-Efficient LLM
// Optimization (Algorithm 1 of the paper). This is the repository's primary
// contribution.
//
// Per 2-D weight W (gradient G, shape m×n with channels along the larger
// dimension):
//   1. R = P·G with P ∈ R^{r×m}, entries N(0, 1/r), regenerated every step
//      from an 8-byte seed that is re-drawn every `update_freq` steps
//      (SVD-free; nothing but the seed is stored).
//   2. AdamW moments are maintained only for R:  Mᴿ, Vᴿ ∈ R^{r×n}.
//   3. The structured gradient-scaling factor is computed in the compressed
//      space — channel-wise  sⱼ = ‖R̃[:,j]‖/‖R[:,j]‖ (APOLLO) or tensor-wise
//      s = ‖R̃‖/‖R‖ (APOLLO-Mini), with R̃ = M̂ᴿ/(√V̂ᴿ+ε).
//   4. The *raw full-rank* gradient is scaled: update = α·G·diag(s) (or
//      α·s·G), passed through the norm-growth limiter, and applied with
//      decoupled weight decay.
//
// Optimizer state per weight: 2·n·r floats + seed + limiter norm — the
// "2nr + 2" entry of Table 1. APOLLO-Mini (r = 1, tensor granularity,
// α = √128) reduces this to 2n + 2: SGD-level memory.
//
// The `proj = kSvd` variant ("APOLLO w. SVD") stores a top-r singular-vector
// projector refreshed every T steps, used by the Fig. 5 projection ablation.
#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/projection.h"
#include "nn/parameter.h"
#include "optim/dense_adam.h"
#include "optim/galore.h"  // ProjKind
#include "optim/norm_limiter.h"
#include "optim/optimizer.h"
#include "tensor/matrix.h"

namespace apollo::core {

enum class ScalingGranularity { kChannel, kTensor };

struct ApolloConfig {
  int64_t rank = 4;
  ScalingGranularity granularity = ScalingGranularity::kChannel;
  optim::ProjKind proj = optim::ProjKind::kRandom;
  float scale = 1.f;       // α (√(n/r) folded into the LR by default)
  int update_freq = 200;   // T: projection re-seed / SVD refresh period
  bool use_norm_limiter = true;
  float nl_gamma = 1.01f;
  optim::AdamHyper hyper;
  uint64_t seed = 4242;

  // APOLLO-Mini: rank-1 auxiliary space, tensor-wise scaling, α = √128.
  static ApolloConfig mini() {
    ApolloConfig c;
    c.rank = 1;
    c.granularity = ScalingGranularity::kTensor;
    c.scale = std::sqrt(128.f);
    return c;
  }
};

class Apollo : public optim::Optimizer {
 public:
  explicit Apollo(const ApolloConfig& cfg, std::string display_name = "");

  // All RNG draws (initial and refresh projection seeds) happen in
  // begin_step(), in slot order, so step_param() is order-independent — the
  // fused backward path may deliver parameters in completion order. SVD
  // refreshes (data-dependent on the gradient) stay in step_param().
  void begin_step(const nn::ParamList& params) override;
  void step_param(nn::Parameter& p, int slot) override;
  void end_step(const nn::ParamList& params) override;
  std::string name() const override { return display_name_; }
  int64_t state_bytes() const override;

  // Exact-resume serialization: auxiliary moments, projection seeds, step
  // counters and limiter norms (plus the dense fallback's moments).
  bool save_state(std::FILE* f, const nn::ParamList& params) const override;
  bool load_state(std::FILE* f, const nn::ParamList& params) override;

  // Recovery hooks (divergence watchdog): re-derive every per-parameter
  // projection seed (random projections only — the SVD ablation's projector
  // is data-dependent and refreshes itself), and tighten the norm-growth
  // limiter toward gamma = 1 for the current and all future states.
  int64_t reseed_projection(uint64_t salt) override;
  bool tighten_norm_limiter(float factor) override;

  // Instrumentation for the Fig. 4 / Fig. 8 reproduction: the channel-wise
  // scaling factors computed at the most recent step for `p` (empty until
  // the first step, or if `p` took the dense fallback).
  const std::vector<float>* last_scaling(const nn::Parameter* p) const;

  static std::unique_ptr<Apollo> standard(ApolloConfig cfg) {
    return std::make_unique<Apollo>(cfg, "APOLLO");
  }
  static std::unique_ptr<Apollo> with_svd(ApolloConfig cfg) {
    cfg.proj = optim::ProjKind::kSvd;
    return std::make_unique<Apollo>(cfg, "APOLLO w. SVD");
  }
  static std::unique_ptr<Apollo> mini(uint64_t seed = 4242) {
    ApolloConfig c = ApolloConfig::mini();
    c.seed = seed;
    return std::make_unique<Apollo>(c, "APOLLO-Mini");
  }

 protected:
  const char* step_trace_name() const override { return "Apollo::step"; }

 private:
  struct State {
    ProjectionSide side = ProjectionSide::kLeft;
    uint64_t proj_seed = 0;
    Matrix svd_projector;  // only for the kSvd ablation
    Matrix m, v;           // auxiliary low-rank moments
    int64_t local_t = 0;
    optim::NormGrowthLimiter limiter;
    std::vector<float> last_scaling;  // instrumentation
    bool refresh = false;  // decided in begin_step() for the current step
  };

  // Per-step telemetry aggregated across matrix parameters (only filled
  // when APOLLO_METRICS is active). Reset in begin_step, committed in
  // end_step.
  struct StepStats {
    int64_t sites = 0;      // matrix params updated this step
    int64_t clipped = 0;    // norm-growth limiter activations
    int64_t refreshes = 0;  // projector re-seeds / SVD refreshes
  };

  // Pure routing predicate — nothing shape-dependent to verify.
  // lint:allow(check-shape-preconditions)
  bool projected(const nn::Parameter& p) const {
    // Rank-1 auxiliary space is meaningful for any matrix, so only 1-D
    // parameters take the dense fallback (plus degenerate tiny matrices for
    // ranks > smallest dim).
    return p.matrix_shaped &&
           std::min(p.value.rows(), p.value.cols()) >= cfg_.rank;
  }
  void update_matrix_param(nn::Parameter* p, State& s, StepStats* stats);

  ApolloConfig cfg_;
  std::string display_name_;
  optim::DenseAdamCore dense_;  // 1-D fallback (norm gains)
  std::vector<State> states_;   // indexed by slot
  // Pointer → slot translation for the last_scaling() instrumentation API
  // (rebuilt every begin_step; cheap for the param counts we run).
  std::unordered_map<const nn::Parameter*, size_t> slot_of_;
  Rng seeder_;
  StepStats stats_;         // current-step aggregation
  bool telemetry_ = false;  // snapshot of telemetry_enabled() for this step
};

}  // namespace apollo::core
