// Deterministic fixed-partition thread pool for the tensor/optimizer hot
// paths.
//
// Design contract: `parallel_for(n, fn, grain)` splits the index range
// [0, n) into at most `thread_count()` *contiguous* chunks (chunk i =
// [i·n/T, (i+1)·n/T)) and runs `fn(begin, end)` on each chunk. There is no
// work stealing and no dynamic scheduling: the partition is a pure function
// of (n, T), and every index is processed exactly once, in ascending order
// within its chunk.
//
// Determinism guarantee: every kernel routed through `parallel_for` writes a
// disjoint set of outputs per index and performs any per-output reduction
// serially, in the same ascending order the single-threaded code used.
// Results are therefore bit-identical for ANY thread count — including the
// sequential fallback — which tests/threadpool_test.cpp asserts end-to-end.
// Whole-tensor reductions (frobenius_norm, sum, RMS clipping statistics)
// intentionally stay single-threaded so their accumulation order never
// changes.
//
// Thread count resolution, highest priority first:
//   1. `set_thread_count(n)` override (used by tests and the scaling bench);
//   2. the APOLLO_THREADS environment variable;
//   3. std::thread::hardware_concurrency().
// Worker threads are started lazily on the first parallel region and reused
// for the life of the process.
#pragma once

#include <cstdint>
#include <functional>

namespace apollo::core {

// Current parallel width (≥ 1). See resolution order above.
int thread_count();

// Override the parallel width at runtime; n <= 0 restores the
// APOLLO_THREADS / hardware default. Values above kMaxThreads are clamped.
void set_thread_count(int n);
inline constexpr int kMaxThreads = 64;

// Run fn(begin, end) over a deterministic contiguous partition of [0, n).
// `grain` is the minimum number of indices per chunk: ranges smaller than
// 2·grain run inline on the calling thread, so tiny tensors never pay
// dispatch overhead. Nested calls from inside a parallel region degrade to
// sequential execution (no deadlock, same results).
//
// `align` rounds every chunk boundary (except the final end at n) down to a
// multiple of `align`: the SIMD GEMM passes its micro-kernel row-tile height
// so every lane starts on a fresh register tile. The partition stays a pure
// function of (n, lanes, align).
void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                  int64_t grain = 1, int64_t align = 1);

}  // namespace apollo::core
