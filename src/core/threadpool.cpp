#include "core/threadpool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace apollo::core {
namespace {

// True on any thread currently executing inside a parallel region (worker
// threads permanently; the caller thread while it runs its own chunk).
// Nested parallel_for calls see it and run sequentially.
thread_local bool tl_inside_parallel_region = false;

int env_thread_count() {
  if (const char* env = std::getenv("APOLLO_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n < kMaxThreads ? n : kMaxThreads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return hw < static_cast<unsigned>(kMaxThreads) ? static_cast<int>(hw)
                                                 : kMaxThreads;
}

std::atomic<int> g_thread_override{0};

// Chunk `lane` of [0, n) split into `lanes` contiguous pieces whose
// boundaries (except the final n) land on multiples of `align`. Pure in
// (n, lanes, lane, align): the partition — and therefore which indices land
// together — never depends on runtime timing. The align > 1 case partitions
// the ceil(n/align) blocks with the same formula, so align == 1 reproduces
// the historical split exactly.
std::pair<int64_t, int64_t> lane_range(int64_t n, int lanes, int lane,
                                       int64_t align) {
  if (align <= 1) return {n * lane / lanes, n * (lane + 1) / lanes};
  const int64_t blocks = (n + align - 1) / align;
  const int64_t b0 = blocks * lane / lanes;
  const int64_t b1 = blocks * (lane + 1) / lanes;
  return {b0 * align, std::min(b1 * align, n)};
}

// Lazily-started persistent worker pool. One generation counter per job;
// workers idle on a condition variable between jobs. A single run_mu_
// serializes parallel regions from different caller threads.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(int lanes, int64_t n, int64_t align,
           const std::function<void(int64_t, int64_t)>& fn) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ensure_workers_locked(lanes - 1);
      task_ = &fn;
      job_n_ = n;
      job_lanes_ = lanes;
      job_align_ = align;
      pending_ = lanes - 1;
      ++job_id_;
    }
    cv_job_.notify_all();

    // The caller is lane 0.
    const auto [begin, end] = lane_range(n, lanes, 0, align);
    tl_inside_parallel_region = true;
    fn(begin, end);
    tl_inside_parallel_region = false;

    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    task_ = nullptr;
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_job_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

 private:
  Pool() = default;

  // Lanes 1..wanted must have a backing thread; lane 0 is the caller.
  void ensure_workers_locked(int wanted) {
    while (static_cast<int>(workers_.size()) < wanted) {
      const int lane = static_cast<int>(workers_.size()) + 1;
      workers_.emplace_back([this, lane] { worker_main(lane); });
    }
  }

  void worker_main(int lane) {
    tl_inside_parallel_region = true;
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_job_.wait(lock, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
      if (lane < job_lanes_) {
        const std::function<void(int64_t, int64_t)>* fn = task_;
        const int64_t n = job_n_;
        const int lanes = job_lanes_;
        const int64_t align = job_align_;
        lock.unlock();
        const auto [begin, end] = lane_range(n, lanes, lane, align);
        if (begin < end) (*fn)(begin, end);
        lock.lock();
        if (--pending_ == 0) cv_done_.notify_all();
      }
    }
  }

  std::mutex run_mu_;  // serializes whole parallel regions
  std::mutex mu_;      // guards all fields below
  std::condition_variable cv_job_, cv_done_;
  std::vector<std::thread> workers_;
  const std::function<void(int64_t, int64_t)>* task_ = nullptr;
  int64_t job_n_ = 0;
  int64_t job_align_ = 1;
  int job_lanes_ = 0;
  int pending_ = 0;
  uint64_t job_id_ = 0;
  bool stop_ = false;
};

}  // namespace

int thread_count() {
  const int override_n = g_thread_override.load(std::memory_order_relaxed);
  if (override_n > 0) return override_n;
  static const int resolved = env_thread_count();
  return resolved;
}

void set_thread_count(int n) {
  if (n > kMaxThreads) n = kMaxThreads;
  g_thread_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                  int64_t grain, int64_t align) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (align < 1) align = 1;
  int lanes = thread_count();
  int64_t max_lanes = n / grain;  // every lane gets ≥ grain indices
  if (align > 1) {
    // No more lanes than aligned blocks, so no lane gets an empty chunk.
    const int64_t blocks = (n + align - 1) / align;
    if (blocks < max_lanes) max_lanes = blocks;
  }
  if (max_lanes < lanes) lanes = static_cast<int>(max_lanes);
  if (lanes <= 1 || tl_inside_parallel_region) {
    fn(0, n);
    return;
  }
  Pool::instance().run(lanes, n, align, fn);
}

}  // namespace apollo::core
