// INT8 weight store for Q-APOLLO / Q-APOLLO-Mini (and the Q-GaLore
// baseline): the persistent copy of every 2-D weight lives group-quantized
// (group size 128); the fp32 Parameter::value is just a working buffer.
//
// Training cycle per step:
//   dequantize_into_params() → forward/backward → optimizer.step() →
//   requantize_from_params()   (stochastic rounding keeps E[W_int8] = W).
// 1-D gains stay fp32 (they are negligible), exactly as in Q-GaLore.
#pragma once

#include <unordered_map>

#include "nn/parameter.h"
#include "quant/quant.h"

namespace apollo::core {

class QuantizedWeightStore {
 public:
  QuantizedWeightStore(const nn::ParamList& params, uint64_t seed,
                       int64_t group = 128);

  // Write dequantized weights into Parameter::value for forward/backward.
  void dequantize_into_params();

  // Absorb the optimizer's fp32 update back into the INT8 store with
  // stochastic rounding, then refresh Parameter::value from the store so
  // the visible weights always equal the quantized ones.
  void requantize_from_params();

  // Persistent weight memory (INT8 data + group scales + fp32 leftovers).
  int64_t weight_bytes() const;

 private:
  struct Slot {
    nn::Parameter* param;
    GroupQuantized store;
  };
  std::vector<Slot> slots_;
  std::vector<nn::Parameter*> fp32_params_;  // 1-D, kept in full precision
  int64_t group_;
  Rng rng_;
};

}  // namespace apollo::core
