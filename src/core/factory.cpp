#include "core/factory.h"

#include "core/apollo.h"
#include "core/structured_adamw.h"
#include "optim/adafactor.h"
#include "optim/adam8bit.h"
#include "optim/adam_mini.h"
#include "optim/adamw.h"
#include "optim/adamw_bf16.h"
#include "optim/galore.h"
#include "optim/lowrank.h"
#include "optim/sgd.h"

namespace apollo::core {

const std::vector<std::string>& known_optimizers() {
  static const std::vector<std::string> names = {
      "adamw",       "adamw-bf16",  "sgd",         "sgd-momentum", "adam-mini",
      "adam8bit",    "adafactor",   "galore",       "galore-rp",
      "galore8bit",  "golore",      "fira",        "flora",        "lora",
      "relora",      "dora",        "lowrank",      "apollo",
      "apollo-svd",  "apollo-mini", "structured-channel",
      "structured-tensor",
  };
  return names;
}

float default_lr(const std::string& name) {
  if (name.rfind("sgd", 0) == 0) return 5e-2f;
  if (name.rfind("galore", 0) == 0 || name == "golore" || name == "fira" ||
      name == "flora" || name.rfind("apollo", 0) == 0)
    return 1e-2f;
  return 3e-3f;  // AdamW family, adapters, structured variants
}

std::unique_ptr<optim::Optimizer> make_optimizer(const std::string& name,
                                                 const FactoryOptions& o) {
  optim::AdamHyper hyper;
  hyper.weight_decay = o.weight_decay;

  if (name == "adamw") return std::make_unique<optim::AdamW>(hyper);
  if (name == "adamw-bf16")
    return std::make_unique<optim::AdamWBf16>(hyper);
  if (name == "sgd") return std::make_unique<optim::Sgd>(0.f, o.weight_decay);
  if (name == "sgd-momentum")
    return std::make_unique<optim::Sgd>(o.momentum, o.weight_decay);
  if (name == "adam-mini") return std::make_unique<optim::AdamMini>(hyper);
  if (name == "adam8bit") return std::make_unique<optim::Adam8bit>(hyper);
  if (name == "adafactor") {
    optim::AdafactorConfig cfg;
    cfg.weight_decay = o.weight_decay;
    return std::make_unique<optim::Adafactor>(cfg);
  }

  if (name.rfind("galore", 0) == 0 || name == "golore" || name == "fira" ||
      name == "flora") {
    optim::GaloreConfig cfg;
    cfg.rank = o.rank;
    cfg.scale = o.scale >= 0.f ? o.scale : 0.25f;
    cfg.update_freq = o.update_freq;
    cfg.seed = o.seed;
    cfg.hyper = hyper;
    if (name == "galore") return optim::GaLore::galore(cfg);
    if (name == "galore-rp") return optim::GaLore::galore_rp(cfg);
    if (name == "galore8bit") return optim::GaLore::galore_8bit(cfg);
    if (name == "fira") return optim::GaLore::fira(cfg);
    if (name == "golore")
      // Switch to random projections after one SVD refresh period.
      return optim::GaLore::golore(cfg, o.update_freq);
    return optim::GaLore::flora(cfg);
  }

  if (name == "lora" || name == "relora" || name == "dora" ||
      name == "lowrank") {
    optim::AdapterConfig cfg;
    cfg.rank = o.rank;
    cfg.seed = o.seed;
    cfg.hyper = hyper;
    cfg.kind = name == "lora"     ? optim::AdapterKind::kLora
               : name == "relora" ? optim::AdapterKind::kRelora
               : name == "dora"   ? optim::AdapterKind::kDora
                                  : optim::AdapterKind::kFactorized;
    return std::make_unique<optim::LowRankAdapter>(cfg);
  }

  if (name.rfind("apollo", 0) == 0) {
    ApolloConfig cfg;
    cfg.rank = o.rank;
    cfg.update_freq = o.update_freq;
    cfg.seed = o.seed;
    cfg.hyper = hyper;
    if (o.scale >= 0.f) cfg.scale = o.scale;
    if (name == "apollo-mini") {
      ApolloConfig mini = ApolloConfig::mini();
      mini.update_freq = o.update_freq;
      mini.seed = o.seed;
      mini.hyper = hyper;
      if (o.scale >= 0.f) mini.scale = o.scale;
      return std::make_unique<Apollo>(mini, "APOLLO-Mini");
    }
    if (name == "apollo-svd") return Apollo::with_svd(cfg);
    return Apollo::standard(cfg);
  }

  if (name.rfind("structured-", 0) == 0) {
    StructuredAdamWConfig cfg;
    cfg.hyper = hyper;
    cfg.granularity = name == "structured-tensor" ? LrGranularity::kTensor
                                                  : LrGranularity::kChannel;
    return std::make_unique<StructuredAdamW>(cfg);
  }

  return nullptr;
}

}  // namespace apollo::core
