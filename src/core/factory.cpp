#include "core/factory.h"

#include "core/apollo.h"
#include "core/structured_adamw.h"
#include "optim/adafactor.h"
#include "optim/adam8bit.h"
#include "optim/adam_mini.h"
#include "optim/adamw.h"
#include "optim/adamw_bf16.h"
#include "optim/galore.h"
#include "optim/lowrank.h"
#include "optim/sgd.h"

namespace apollo::core {

const std::vector<std::string>& known_optimizers() {
  static const std::vector<std::string> names = {
      "adamw",       "adamw-bf16",  "sgd",         "sgd-momentum", "adam-mini",
      "adam8bit",    "adafactor",   "galore",       "galore-rp",
      "galore8bit",  "golore",      "fira",        "flora",        "lora",
      "relora",      "dora",        "lowrank",      "apollo",
      "apollo-svd",  "apollo-mini", "structured-channel",
      "structured-tensor",
  };
  return names;
}

// Defaults are tuned for the factory's consumers (the optimizer-contract
// tests and the CLI tools), where runs are a few hundred steps: a normalized
// Adam-style update moves ≈ lr per element per step, so lr·steps must cover
// unit-scale distances. The paper benches do NOT use these — exp_common.h
// pins the paper's own per-method learning rates (3e-3 AdamW at nano scale,
// the untuned 1e-2 the projected family inherits from GaLore).
float default_lr(const std::string& name) {
  if (name.rfind("sgd", 0) == 0) return 5e-2f;
  if (name.rfind("galore", 0) == 0 || name == "golore" || name == "fira" ||
      name == "flora")
    return 1e-2f;  // paired with the α = 4 fallback scale below
  if (name.rfind("apollo", 0) == 0) return 2e-2f;
  return 1e-2f;  // AdamW family, adapters, structured variants
}

std::unique_ptr<optim::Optimizer> make_optimizer(const std::string& name,
                                                 const FactoryOptions& o) {
  optim::AdamHyper hyper;
  hyper.weight_decay = o.weight_decay;

  if (name == "adamw") return std::make_unique<optim::AdamW>(hyper);
  if (name == "adamw-bf16")
    return std::make_unique<optim::AdamWBf16>(hyper);
  if (name == "sgd") return std::make_unique<optim::Sgd>(0.f, o.weight_decay);
  if (name == "sgd-momentum")
    return std::make_unique<optim::Sgd>(o.momentum, o.weight_decay);
  if (name == "adam-mini") return std::make_unique<optim::AdamMini>(hyper);
  if (name == "adam8bit") return std::make_unique<optim::Adam8bit>(hyper);
  if (name == "adafactor") {
    optim::AdafactorConfig cfg;
    cfg.weight_decay = o.weight_decay;
    return std::make_unique<optim::Adafactor>(cfg);
  }

  if (name.rfind("galore", 0) == 0 || name == "golore" || name == "fira" ||
      name == "flora") {
    optim::GaloreConfig cfg;
    cfg.rank = o.rank;
    // Fallback α = 4, GaLore's fine-tuning scale — right for the short
    // (~10²-step) runs the factory serves. The paper's pre-training α = 0.25
    // amortizes over 10⁴ steps and is passed explicitly by the benches.
    cfg.scale = o.scale >= 0.f ? o.scale : 4.f;
    cfg.update_freq = o.update_freq;
    cfg.seed = o.seed;
    cfg.hyper = hyper;
    if (name == "galore") return optim::GaLore::galore(cfg);
    if (name == "galore-rp") return optim::GaLore::galore_rp(cfg);
    if (name == "galore8bit") return optim::GaLore::galore_8bit(cfg);
    if (name == "fira") return optim::GaLore::fira(cfg);
    if (name == "golore")
      // Switch to random projections after one SVD refresh period.
      return optim::GaLore::golore(cfg, o.update_freq);
    return optim::GaLore::flora(cfg);
  }

  if (name == "lora" || name == "relora" || name == "dora" ||
      name == "lowrank") {
    optim::AdapterConfig cfg;
    cfg.rank = o.rank;
    cfg.seed = o.seed;
    cfg.hyper = hyper;
    cfg.kind = name == "lora"     ? optim::AdapterKind::kLora
               : name == "relora" ? optim::AdapterKind::kRelora
               : name == "dora"   ? optim::AdapterKind::kDora
                                  : optim::AdapterKind::kFactorized;
    return std::make_unique<optim::LowRankAdapter>(cfg);
  }

  if (name.rfind("apollo", 0) == 0) {
    ApolloConfig cfg;
    cfg.rank = o.rank;
    cfg.update_freq = o.update_freq;
    cfg.seed = o.seed;
    cfg.hyper = hyper;
    if (o.scale >= 0.f) cfg.scale = o.scale;
    if (name == "apollo-mini") {
      ApolloConfig mini = ApolloConfig::mini();
      mini.update_freq = o.update_freq;
      mini.seed = o.seed;
      mini.hyper = hyper;
      if (o.scale >= 0.f) mini.scale = o.scale;
      return std::make_unique<Apollo>(mini, "APOLLO-Mini");
    }
    if (name == "apollo-svd") return Apollo::with_svd(cfg);
    return Apollo::standard(cfg);
  }

  if (name.rfind("structured-", 0) == 0) {
    StructuredAdamWConfig cfg;
    cfg.hyper = hyper;
    cfg.granularity = name == "structured-tensor" ? LrGranularity::kTensor
                                                  : LrGranularity::kChannel;
    return std::make_unique<StructuredAdamW>(cfg);
  }

  return nullptr;
}

}  // namespace apollo::core
