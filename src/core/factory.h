// String-keyed optimizer factory — the single place that maps method names
// ("adamw", "galore", "apollo-mini", …) to configured optimizers. Used by
// the apollo_train CLI and anywhere a method is chosen at runtime. Lives in
// core (not optim) because it constructs the APOLLO optimizers too.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "optim/optimizer.h"

namespace apollo::core {

struct FactoryOptions {
  int64_t rank = 4;
  float scale = -1.f;      // <0 ⇒ method default (GaLore 0.25, APOLLO 1, …)
  int update_freq = 200;   // projector refresh period T
  uint64_t seed = 4242;
  float weight_decay = 0.f;
  float momentum = 0.9f;   // SGD only
};

// Known method names, in display order.
const std::vector<std::string>& known_optimizers();

// Returns nullptr for unknown names.
std::unique_ptr<optim::Optimizer> make_optimizer(const std::string& name,
                                                 const FactoryOptions& opts = {});

// A sensible default learning rate per method (the values used across the
// reproduction benches): AdamW-family 3e-3, projected methods 1e-2, SGD 5e-2.
float default_lr(const std::string& name);

}  // namespace apollo::core
