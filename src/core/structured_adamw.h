// Structured learning-rate AdamW (Section 3 of the paper).
//
// AdamW reformulated as "SGD with an adaptive per-element learning rate"
// (Eq. 2), then coarsened: the element-wise scaling S = G̃/G is replaced by
//   - channel-wise factors  sⱼ = ‖G̃[:,j]‖/‖G[:,j]‖ (Eq. 3), or
//   - a single tensor-wise factor s = ‖G̃‖/‖G‖,
// computed from the *full-rank* moments. This optimizer is the paper's
// empirical-validation vehicle (Fig. 3) and the full-rank golden reference
// against which APOLLO's low-rank approximation of the same factors is
// measured (Fig. 4 / Fig. 8). It saves no memory — that is APOLLO's job.
//
// kElement + no limiter is exactly AdamW (a property the tests assert).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "nn/parameter.h"
#include "optim/norm_limiter.h"
#include "optim/optimizer.h"
#include "tensor/matrix.h"

namespace apollo::core {

enum class LrGranularity { kElement, kChannel, kTensor };

struct StructuredAdamWConfig {
  LrGranularity granularity = LrGranularity::kChannel;
  bool use_norm_limiter = true;
  float nl_gamma = 1.01f;
  optim::AdamHyper hyper;
};

class StructuredAdamW : public optim::Optimizer {
 public:
  explicit StructuredAdamW(const StructuredAdamWConfig& cfg) : cfg_(cfg) {}

  void begin_step(const nn::ParamList& params) override;
  void step_param(nn::Parameter& p, int slot) override;
  std::string name() const override;
  int64_t state_bytes() const override;

  // Full-rank channel scaling factors from the latest step (Fig. 4 golden).
  const std::vector<float>* last_scaling(const nn::Parameter* p) const;

 protected:
  const char* step_trace_name() const override {
    return "StructuredAdamW::step";
  }

 private:
  struct State {
    Matrix m, v;
    int64_t local_t = 0;
    optim::NormGrowthLimiter limiter;
    std::vector<float> last_scaling;
  };

  StructuredAdamWConfig cfg_;
  std::vector<State> states_;  // indexed by slot
  // Pointer → slot translation for the last_scaling() instrumentation API.
  std::unordered_map<const nn::Parameter*, size_t> slot_of_;
};

}  // namespace apollo::core
