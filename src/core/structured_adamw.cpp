#include "core/structured_adamw.h"

#include <cmath>

#include "obs/trace.h"
#include "optim/finite_guard.h"
#include "tensor/ops.h"

namespace apollo::core {

std::string StructuredAdamW::name() const {
  switch (cfg_.granularity) {
    case LrGranularity::kElement: return "AdamW (element-wise)";
    case LrGranularity::kChannel: return "AdamW (channel-wise)";
    case LrGranularity::kTensor: return "AdamW (tensor-wise)";
  }
  return "?";
}

void StructuredAdamW::step(const nn::ParamList& params) {
  APOLLO_TRACE_SCOPE("StructuredAdamW::step", "optim");
  ++t_;
  const float b1 = cfg_.hyper.beta1, b2 = cfg_.hyper.beta2;
  for (nn::Parameter* p : params) {
    APOLLO_CHECK_SAME_SHAPE(p->value, p->grad);
    State& s = states_[p];
    const Matrix& g = p->grad;
    if (s.m.size() == 0) {
      s.m.reshape_discard(g.rows(), g.cols());
      s.v.reshape_discard(g.rows(), g.cols());
    }
    ++s.local_t;
    const float bc1 = 1.f - std::pow(b1, static_cast<float>(s.local_t));
    const float bc2 = 1.f - std::pow(b2, static_cast<float>(s.local_t));

    // Full-rank moments and the element-wise normalized gradient G̃.
    Matrix gtilde(g.rows(), g.cols());
    for (int64_t i = 0; i < g.size(); ++i) {
      s.m[i] = b1 * s.m[i] + (1.f - b1) * g[i];
      s.v[i] = b2 * s.v[i] + (1.f - b2) * g[i] * g[i];
      gtilde[i] =
          (s.m[i] / bc1) / (std::sqrt(s.v[i] / bc2) + cfg_.hyper.eps);
    }

    Matrix update;
    const bool coarsen =
        p->matrix_shaped && cfg_.granularity != LrGranularity::kElement;
    if (!coarsen) {
      update = std::move(gtilde);
    } else if (cfg_.granularity == LrGranularity::kChannel) {
      // Channels along the larger dimension (paper convention m ≤ n).
      const bool cols_are_channels = g.rows() <= g.cols();
      std::vector<float> num =
          cols_are_channels ? col_norms(gtilde) : row_norms(gtilde);
      std::vector<float> den =
          cols_are_channels ? col_norms(g) : row_norms(g);
      std::vector<float>& sf = s.last_scaling;
      sf.resize(num.size());
      for (size_t j = 0; j < sf.size(); ++j)
        sf[j] = den[j] > 1e-30f ? num[j] / den[j] : 0.f;
      update = g;
      if (cols_are_channels)
        scale_cols_inplace(update, sf);
      else
        scale_rows_inplace(update, sf);
    } else {
      const double num = frobenius_norm(gtilde);
      const double den = frobenius_norm(g);
      const float sf = den > 1e-30 ? static_cast<float>(num / den) : 0.f;
      s.last_scaling.assign(1, sf);
      update = g;
      scale_inplace(update, sf);
    }

    if (coarsen && cfg_.use_norm_limiter) s.limiter.apply(update);

    const float wd = cfg_.hyper.weight_decay;
    for (int64_t i = 0; i < p->value.size(); ++i)
      p->value[i] -= lr_ * (update[i] + wd * p->value[i]);
  }
  optim::check_step_finite(params, name());
}

int64_t StructuredAdamW::state_bytes() const {
  int64_t b = 0;
  for (const auto& [k, s] : states_)
    b += (s.m.size() + s.v.size()) * static_cast<int64_t>(sizeof(float));
  return b;
}

const std::vector<float>* StructuredAdamW::last_scaling(
    const nn::Parameter* p) const {
  auto it = states_.find(p);
  if (it == states_.end() || it->second.last_scaling.empty()) return nullptr;
  return &it->second.last_scaling;
}

}  // namespace apollo::core
