#include "core/structured_adamw.h"

#include <cmath>

#include "nn/parameter.h"
#include "tensor/check.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace apollo::core {

std::string StructuredAdamW::name() const {
  switch (cfg_.granularity) {
    case LrGranularity::kElement: return "AdamW (element-wise)";
    case LrGranularity::kChannel: return "AdamW (channel-wise)";
    case LrGranularity::kTensor: return "AdamW (tensor-wise)";
  }
  return "?";
}

void StructuredAdamW::begin_step(const nn::ParamList& params) {
  Optimizer::begin_step(params);
  if (states_.size() < params.size()) states_.resize(params.size());
  for (size_t i = 0; i < params.size(); ++i) slot_of_[params[i]] = i;
}

void StructuredAdamW::step_param(nn::Parameter& p, int slot) {
  APOLLO_CHECK_SAME_SHAPE(p.value, p.grad);
  const float b1 = cfg_.hyper.beta1, b2 = cfg_.hyper.beta2;
  State& s = states_[static_cast<size_t>(slot)];
  const Matrix& g = p.grad;
  if (s.m.size() == 0) {
    s.m.reshape_discard(g.rows(), g.cols());
    s.v.reshape_discard(g.rows(), g.cols());
  }
  ++s.local_t;
  const optim::BiasCorrection bc =
      optim::bias_correction(cfg_.hyper, s.local_t);
  const float bc1 = bc.c1, bc2 = bc.c2;

  // Full-rank moments and the element-wise normalized gradient G̃.
  Matrix gtilde(g.rows(), g.cols());
  for (int64_t i = 0; i < g.size(); ++i) {
    s.m[i] = b1 * s.m[i] + (1.f - b1) * g[i];
    s.v[i] = b2 * s.v[i] + (1.f - b2) * g[i] * g[i];
    gtilde[i] =
        (s.m[i] / bc1) / (std::sqrt(s.v[i] / bc2) + cfg_.hyper.eps);
  }

  Matrix update;
  const bool coarsen =
      p.matrix_shaped && cfg_.granularity != LrGranularity::kElement;
  if (!coarsen) {
    update = std::move(gtilde);
  } else if (cfg_.granularity == LrGranularity::kChannel) {
    // Channels along the larger dimension (paper convention m ≤ n).
    const bool cols_are_channels = g.rows() <= g.cols();
    std::vector<float> num =
        cols_are_channels ? col_norms(gtilde) : row_norms(gtilde);
    std::vector<float> den =
        cols_are_channels ? col_norms(g) : row_norms(g);
    std::vector<float>& sf = s.last_scaling;
    // Sized once per parameter (shape is fixed); no-op after the first step.
    sf.resize(num.size());  // lint:allow(hot-path-alloc)
    for (size_t j = 0; j < sf.size(); ++j)
      sf[j] = den[j] > 1e-30f ? num[j] / den[j] : 0.f;
    update = g;
    if (cols_are_channels)
      scale_cols_inplace(update, sf);
    else
      scale_rows_inplace(update, sf);
  } else {
    const double num = frobenius_norm(gtilde);
    const double den = frobenius_norm(g);
    const float sf = den > 1e-30 ? static_cast<float>(num / den) : 0.f;
    // One-element diagnostic record; capacity persists across steps.
    s.last_scaling.assign(1, sf);  // lint:allow(hot-path-alloc)
    update = g;
    scale_inplace(update, sf);
  }

  if (coarsen && cfg_.use_norm_limiter) s.limiter.apply(update);

  const float wd = cfg_.hyper.weight_decay;
  for (int64_t i = 0; i < p.value.size(); ++i)
    p.value[i] -= lr_ * (update[i] + wd * p.value[i]);
}

int64_t StructuredAdamW::state_bytes() const {
  int64_t b = 0;
  for (const State& s : states_)
    b += (s.m.size() + s.v.size()) * static_cast<int64_t>(sizeof(float));
  return b;
}

// Read-only instrumentation lookup; unknown pointers return nullptr.
// lint:allow(check-shape-preconditions)
const std::vector<float>* StructuredAdamW::last_scaling(
    const nn::Parameter* p) const {
  auto it = slot_of_.find(p);
  if (it == slot_of_.end() || it->second >= states_.size()) return nullptr;
  const State& s = states_[it->second];
  return s.last_scaling.empty() ? nullptr : &s.last_scaling;
}

}  // namespace apollo::core
