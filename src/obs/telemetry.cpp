#include "obs/telemetry.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace apollo::obs {

namespace {
std::atomic<bool> g_enabled{false};

struct Field {
  double d = 0;
  int64_t i = 0;
  bool is_int = false;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
}  // namespace

struct Telemetry::Impl {
  std::mutex mu;
  std::string path;
  std::unique_ptr<std::FILE, FileCloser> file;
  // Sorted: the field order in every line is the lexicographic key order,
  // independent of the order instrumentation sites ran in.
  std::map<std::string, Field> fields;
  std::map<std::string, std::vector<double>> samples;
  bool atexit_registered = false;

  void open_locked() {
    if (file != nullptr || path.empty()) return;
    file.reset(std::fopen(path.c_str(), "w"));
    if (file == nullptr) {
      std::fprintf(stderr, "APOLLO_METRICS: cannot open %s for writing\n",
                   path.c_str());
      path.clear();
      g_enabled.store(false, std::memory_order_release);
    }
  }

  void finalize_locked() {
    if (file == nullptr) return;
    const std::string registry = Registry::instance().export_jsonl();
    std::fputs(registry.c_str(), file.get());
    file.reset();
  }
};

Telemetry::Impl& Telemetry::impl() {
  // Immortal for the same reason as Registry::impl(): atexit callbacks and
  // static destructors interleave in LIFO order, and this state must outlive
  // every handler that might flush it.
  static Impl* im = new Impl;  // lint:allow(raw-new-delete)
  return *im;
}

Telemetry& Telemetry::instance() {
  static Telemetry t;
  return t;
}

namespace {
void finalize_at_exit() { Telemetry::instance().finalize(); }
}  // namespace

bool telemetry_enabled() {
  static const bool env_init = [] {
    const char* e = std::getenv("APOLLO_METRICS");
    if (e != nullptr && e[0] != '\0') telemetry_set_path(e);
    return true;
  }();
  (void)env_init;
  return g_enabled.load(std::memory_order_acquire);
}

void telemetry_set_path(const char* path) {
  std::string resolved;
  if (path == nullptr) {
    const char* e = std::getenv("APOLLO_METRICS");
    resolved = e != nullptr ? e : "";
  } else {
    resolved = path;
  }
  Telemetry& t = Telemetry::instance();
  t.finalize();
  Telemetry::Impl& im = t.impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.path = resolved;
  im.fields.clear();
  im.samples.clear();
  const bool on = !resolved.empty();
  if (on && !im.atexit_registered) {
    im.atexit_registered = true;
    std::atexit(finalize_at_exit);
  }
  g_enabled.store(on, std::memory_order_release);
}

void Telemetry::set(const char* key, double v) {
  if (!telemetry_enabled()) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  Field& f = im.fields[key];
  f.d = v;
  f.is_int = false;
}

void Telemetry::set_int(const char* key, int64_t v) {
  if (!telemetry_enabled()) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  Field& f = im.fields[key];
  f.i = v;
  f.is_int = true;
}

void Telemetry::count(const char* key, int64_t n) {
  if (!telemetry_enabled()) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  Field& f = im.fields[key];
  f.is_int = true;
  f.i += n;
}

void Telemetry::sample(const char* key, double v) {
  if (!telemetry_enabled()) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.samples[key].push_back(v);
}

void Telemetry::sample(const char* key, const float* v, size_t n) {
  if (!telemetry_enabled()) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<double>& dst = im.samples[key];
  dst.reserve(dst.size() + n);
  for (size_t i = 0; i < n; ++i) dst.push_back(static_cast<double>(v[i]));
}

void Telemetry::commit(int64_t step) {
  if (!telemetry_enabled()) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.open_locked();
  if (im.file == nullptr) return;

  // Expand sampled distributions into min/med/max/n fields. The median is
  // the exact lower median (element at index (n-1)/2 of the sorted values).
  for (auto& [key, vals] : im.samples) {
    if (vals.empty()) continue;
    std::vector<double> sorted = vals;
    std::sort(sorted.begin(), sorted.end());
    const size_t mid = (sorted.size() - 1) / 2;
    im.fields[key + "_min"] = Field{sorted.front(), 0, false};
    im.fields[key + "_med"] = Field{sorted[mid], 0, false};
    im.fields[key + "_max"] = Field{sorted.back(), 0, false};
    im.fields[key + "_n"] =
        Field{0, static_cast<int64_t>(sorted.size()), true};
  }

  JsonObject o;
  o.field_int("step", step);
  for (const auto& [key, f] : im.fields) {
    if (f.is_int)
      o.field_int(key.c_str(), f.i);
    else
      o.field(key.c_str(), f.d);
  }
  std::fputs(o.str().c_str(), im.file.get());
  std::fputc('\n', im.file.get());
  std::fflush(im.file.get());
  im.fields.clear();
  im.samples.clear();
}

void Telemetry::finalize() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.finalize_locked();
}

}  // namespace apollo::obs
