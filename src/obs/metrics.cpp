#include "obs/metrics.h"

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "obs/json_writer.h"

namespace apollo::obs {

namespace {

std::atomic<int> g_next_shard{0};

double bits_to_double(uint64_t b) {
  double d;
  std::memcpy(&d, &b, sizeof d);
  return d;
}
uint64_t double_to_bits(double d) {
  uint64_t b;
  std::memcpy(&b, &d, sizeof b);
  return b;
}

// v += x on an atomic double stored as bits (CAS loop — C++20's
// atomic<double>::fetch_add is not yet universal).
void atomic_add_double(std::atomic<uint64_t>& bits, double x) {
  uint64_t old_bits = bits.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t new_bits = double_to_bits(bits_to_double(old_bits) + x);
    if (bits.compare_exchange_weak(old_bits, new_bits,
                                   std::memory_order_relaxed))
      return;
  }
}

void atomic_min_double(std::atomic<uint64_t>& bits, double x) {
  uint64_t old_bits = bits.load(std::memory_order_relaxed);
  while (x < bits_to_double(old_bits)) {
    if (bits.compare_exchange_weak(old_bits, double_to_bits(x),
                                   std::memory_order_relaxed))
      return;
  }
}

void atomic_max_double(std::atomic<uint64_t>& bits, double x) {
  uint64_t old_bits = bits.load(std::memory_order_relaxed);
  while (x > bits_to_double(old_bits)) {
    if (bits.compare_exchange_weak(old_bits, double_to_bits(x),
                                   std::memory_order_relaxed))
      return;
  }
}

}  // namespace

int metric_shard_index() {
  thread_local const int slot =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

// --- Counter ---------------------------------------------------------------

int64_t Counter::value() const {
  int64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// --- Gauge -----------------------------------------------------------------

uint64_t Gauge::pack_(double v) { return double_to_bits(v); }
double Gauge::unpack_(uint64_t b) { return bits_to_double(b); }

double Gauge::value() const {
  return unpack_(bits_.load(std::memory_order_relaxed));
}

// --- Histogram -------------------------------------------------------------

namespace {
struct BucketEdges {
  double e[Histogram::kBuckets - 1];
  BucketEdges() {
    // e[i] = 1e-9 · 10^(i/4): four log-spaced buckets per decade.
    for (int i = 0; i < Histogram::kBuckets - 1; ++i)
      e[i] = Histogram::kMinEdge * std::pow(10.0, static_cast<double>(i) / 4.0);
    e[0] = Histogram::kMinEdge;                   // exact endpoints
    e[Histogram::kBuckets - 2] = Histogram::kMaxEdge;
  }
};
const BucketEdges& edges() {
  static const BucketEdges be;
  return be;
}
}  // namespace

double Histogram::bucket_upper(int i) { return edges().e[i]; }

int Histogram::bucket_index(double v) {
  const double* e = edges().e;
  if (std::isnan(v) || v <= e[0]) return 0;
  if (v > e[kBuckets - 2]) return kBuckets - 1;
  // Candidate from the closed form, then exact adjustment against the edge
  // array (log10 rounding can be off by one at bucket boundaries).
  int k = static_cast<int>(std::floor(std::log10(v / kMinEdge) * 4.0)) + 1;
  if (k < 1) k = 1;
  if (k > kBuckets - 2) k = kBuckets - 2;
  while (k > 1 && v <= e[k - 1]) --k;
  while (k < kBuckets - 2 && v > e[k]) ++k;
  return k;
}

void Histogram::observe(double v) {
  Shard& s = shards_[metric_shard_index()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(s.sum_bits, v);
  if (s.minmax_init.exchange(1, std::memory_order_relaxed) == 0) {
    s.min_bits.store(double_to_bits(v), std::memory_order_relaxed);
    s.max_bits.store(double_to_bits(v), std::memory_order_relaxed);
  } else {
    atomic_min_double(s.min_bits, v);
    atomic_max_double(s.max_bits, v);
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  bool have_minmax = false;
  for (const Shard& s : shards_) {
    const int64_t c = s.count.load(std::memory_order_relaxed);
    if (c == 0) continue;
    out.count += c;
    out.sum += bits_to_double(s.sum_bits.load(std::memory_order_relaxed));
    const double mn = bits_to_double(s.min_bits.load(std::memory_order_relaxed));
    const double mx = bits_to_double(s.max_bits.load(std::memory_order_relaxed));
    if (!have_minmax) {
      out.min = mn;
      out.max = mx;
      have_minmax = true;
    } else {
      if (mn < out.min) out.min = mn;
      if (mx > out.max) out.max = mx;
    }
    for (int b = 0; b < kBuckets; ++b)
      out.buckets[static_cast<size_t>(b)] +=
          s.buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum_bits.store(0, std::memory_order_relaxed);
    s.min_bits.store(0, std::memory_order_relaxed);
    s.max_bits.store(0, std::memory_order_relaxed);
    s.minmax_init.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

// --- Registry --------------------------------------------------------------

struct Registry::Impl {
  std::mutex mu;
  // Sorted maps: export order is the lexicographic metric name order, never
  // a function of registration order.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Impl& Registry::impl() const {
  // Intentionally immortal (never destroyed): the atexit-registered
  // telemetry finalizer exports the registry, and this Impl may be
  // constructed *after* that finalizer is registered — a plain function
  // static would then be destroyed first and export_jsonl would touch a
  // dead mutex.
  static Impl* im = new Impl;  // lint:allow(raw-new-delete)
  return *im;
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::export_jsonl() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::string out;
  for (const auto& [name, c] : im.counters) {
    JsonObject o;
    o.field_str("metric", name.c_str())
        .field_str("type", "counter")
        .field_int("value", c->value());
    out += o.str();
    out.push_back('\n');
  }
  for (const auto& [name, g] : im.gauges) {
    JsonObject o;
    o.field_str("metric", name.c_str())
        .field_str("type", "gauge")
        .field("value", g->value());
    out += o.str();
    out.push_back('\n');
  }
  for (const auto& [name, h] : im.histograms) {
    const Histogram::Snapshot s = h->snapshot();
    JsonObject o;
    o.field_str("metric", name.c_str())
        .field_str("type", "histogram")
        .field_int("count", s.count)
        .field("sum", s.sum);
    if (s.count > 0) {
      o.field("min", s.min).field("max", s.max);
    }
    // Non-empty buckets as [upper_edge, count] pairs; the last (overflow)
    // bucket has no finite edge and is emitted with null.
    std::string buckets = "[";
    bool first = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const int64_t n = s.buckets[static_cast<size_t>(b)];
      if (n == 0) continue;
      if (!first) buckets.push_back(',');
      first = false;
      buckets.push_back('[');
      if (b < Histogram::kBuckets - 1)
        json_append_double(buckets, Histogram::bucket_upper(b));
      else
        buckets += "null";
      buckets.push_back(',');
      json_append_int(buckets, n);
      buckets.push_back(']');
    }
    buckets.push_back(']');
    o.field_raw("buckets", buckets);
    out += o.str();
    out.push_back('\n');
  }
  return out;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

}  // namespace apollo::obs
