// Scoped timers emitting chrome://tracing-format JSON.
//
// Set APOLLO_TRACE=out.json (or call trace_set_path()) and every
// APOLLO_TRACE_SCOPE in the library records a begin/end ("B"/"E") event
// pair; trace_instant() records point events (projector refreshes,
// checkpoint boundaries). The file is written at process exit (and by any
// explicit trace_flush()) and loads directly in chrome://tracing or
// https://ui.perfetto.dev.
//
// Zero overhead when off: the macro's constructor is a single branch on a
// cached flag — no clock read, no allocation. When on, each event appends
// one small record to a mutex-guarded buffer; timestamps come from
// std::chrono::steady_clock, microseconds relative to trace start. Events
// are buffered for the whole process (tracing targets bounded runs — a few
// thousand steps — not servers).
//
// Scope/instant names must be string literals or otherwise outlive the
// process (they are stored as const char*); dynamic names go through
// trace_intern().
#pragma once

namespace apollo::obs {

// True when a trace destination is configured (APOLLO_TRACE env or
// trace_set_path). Cached; one relaxed load per query.
bool trace_enabled();

// Override the destination: a path enables tracing (clearing any buffered
// events), "" disables, nullptr re-reads the environment. For tests and
// tools; call only outside open scopes.
void trace_set_path(const char* path);

// Write all buffered events to the configured path (full rewrite — safe to
// call repeatedly; also registered atexit when tracing is enabled).
void trace_flush();

// Copy `s` into process-lifetime storage (for dynamic scope names).
const char* trace_intern(const char* s);

void trace_begin(const char* name, const char* cat);
void trace_end(const char* name, const char* cat);
void trace_instant(const char* name, const char* cat);

class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* cat = "apollo")
      : active_(trace_enabled()), name_(name), cat_(cat) {
    if (active_) trace_begin(name_, cat_);
  }
  ~TraceScope() {
    if (active_) trace_end(name_, cat_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool active_;
  const char* name_;
  const char* cat_;
};

}  // namespace apollo::obs

#define APOLLO_TRACE_CONCAT2_(a, b) a##b
#define APOLLO_TRACE_CONCAT_(a, b) APOLLO_TRACE_CONCAT2_(a, b)
// Time the enclosing scope as one chrome-trace slice.
#define APOLLO_TRACE_SCOPE(name, cat)                       \
  ::apollo::obs::TraceScope APOLLO_TRACE_CONCAT_(           \
      apollo_trace_scope_, __LINE__)(name, cat)
