// Minimal CSV sink: writes a header once, then one row per call.
//
// This is the CSV face of the observability layer (the JSONL face is
// obs/telemetry.h) — it subsumes the old train/csv_logger.h so the repo has
// exactly one logging path. Used by apollo-train's --csv flag and any
// example that wants a plot-ready curve file.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace apollo::obs {

class CsvSink {
 public:
  // Opens (truncates) `path` and writes the header row. An empty path
  // disables the sink (all calls become no-ops) so callers can thread an
  // optional sink without branching.
  CsvSink(const std::string& path, const std::vector<std::string>& columns)
      : n_cols_(columns.size()) {
    if (path.empty()) return;
    file_.reset(std::fopen(path.c_str(), "w"));
    if (file_ == nullptr) {
      std::fprintf(stderr, "CsvSink: cannot open %s for writing\n",
                   path.c_str());
      std::abort();
    }
    for (size_t i = 0; i < columns.size(); ++i)
      std::fprintf(file_.get(), "%s%s", columns[i].c_str(),
                   i + 1 < columns.size() ? "," : "\n");
  }

  bool enabled() const { return file_ != nullptr; }

  void row(const std::vector<double>& values) {
    if (!file_) return;
    if (values.size() != n_cols_) {
      std::fprintf(stderr, "CsvSink: row has %zu values, header has %zu\n",
                   values.size(), n_cols_);
      std::abort();
    }
    for (size_t i = 0; i < values.size(); ++i)
      std::fprintf(file_.get(), "%.6g%s", values[i],
                   i + 1 < values.size() ? "," : "\n");
    std::fflush(file_.get());
  }

 private:
  struct Closer {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, Closer> file_;
  size_t n_cols_;
};

}  // namespace apollo::obs
