#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace apollo::obs {

namespace {

using Clock = std::chrono::steady_clock;

struct Event {
  const char* name;
  const char* cat;
  char ph;  // 'B', 'E', 'i'
  double ts_us;
  int tid;
};

struct TraceState {
  std::mutex mu;
  std::vector<Event> events;
  std::deque<std::string> interned;  // deque: stable addresses
  std::string path;
  Clock::time_point t0 = Clock::now();
  bool atexit_registered = false;
};

TraceState& state() {
  // Immortal: trace_flush runs from an atexit handler that may be invoked
  // after a plain function-local static would already be destroyed.
  static TraceState* s = new TraceState;  // lint:allow(raw-new-delete)
  return *s;
}

std::atomic<bool> g_enabled{false};

int thread_id() {
  static std::atomic<int> next{1};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void flush_at_exit() { trace_flush(); }

// Enable tracing to `path` ("" disables). Caller holds no lock.
void configure(const std::string& path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.path = path;
  s.events.clear();
  s.t0 = Clock::now();
  const bool on = !path.empty();
  if (on && !s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit(flush_at_exit);
  }
  g_enabled.store(on, std::memory_order_release);
}

void record(const char* name, const char* cat, char ph) {
  TraceState& s = state();
  const int tid = thread_id();
  std::lock_guard<std::mutex> lock(s.mu);
  const double ts_us =
      std::chrono::duration<double, std::micro>(Clock::now() - s.t0).count();
  s.events.push_back(Event{name, cat, ph, ts_us, tid});
}

void append_escaped(std::string& out, const char* str) {
  for (; *str != '\0'; ++str) {
    const char c = *str;
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

bool trace_enabled() {
  static const bool env_init = [] {
    const char* e = std::getenv("APOLLO_TRACE");
    if (e != nullptr && e[0] != '\0') configure(e);
    return true;
  }();
  (void)env_init;
  return g_enabled.load(std::memory_order_acquire);
}

void trace_set_path(const char* path) {
  if (path == nullptr) {
    const char* e = std::getenv("APOLLO_TRACE");
    configure(e != nullptr ? e : "");
    return;
  }
  configure(path);
}

const char* trace_intern(const char* s) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.interned.emplace_back(s);
  return st.interned.back().c_str();
}

void trace_begin(const char* name, const char* cat) { record(name, cat, 'B'); }
void trace_end(const char* name, const char* cat) { record(name, cat, 'E'); }
void trace_instant(const char* name, const char* cat) {
  if (trace_enabled()) record(name, cat, 'i');
}

void trace_flush() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.path.empty()) return;
  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "APOLLO_TRACE: cannot open %s for writing\n",
                 s.path.c_str());
    return;
  }
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  std::string line;
  for (size_t i = 0; i < s.events.size(); ++i) {
    const Event& e = s.events[i];
    line.clear();
    line += "{\"name\":\"";
    append_escaped(line, e.name);
    line += "\",\"cat\":\"";
    append_escaped(line, e.cat);
    line += "\",\"ph\":\"";
    line.push_back(e.ph);
    line += "\"";
    if (e.ph == 'i') line += ",\"s\":\"t\"";  // thread-scoped instant
    char buf[96];
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"pid\":1,\"tid\":%d}",
                  e.ts_us, e.tid);
    line += buf;
    if (i + 1 < s.events.size()) line.push_back(',');
    line.push_back('\n');
    std::fputs(line.c_str(), f);
  }
  std::fputs("]}\n", f);
  std::fclose(f);
}

}  // namespace apollo::obs
