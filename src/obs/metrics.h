// Process-wide metrics registry: counters, gauges, and histograms with
// fixed log-spaced buckets.
//
// Hot-path contract: mutation is lock-free — every metric holds a small
// array of cache-line-padded shards and a thread picks its shard once
// (thread-local), so concurrent writers never contend on a lock or a shared
// cache line. Reads (export) merge the shards in ascending shard order,
// which makes the merge deterministic:
//   * counter values and histogram bucket counts are integers, so the merge
//     is exact and order-independent for ANY thread count;
//   * histogram `sum` is a double — exact whenever the observed values are
//     integer-valued (or observed by a single thread); instrumentation that
//     needs bit-exact sums across APOLLO_THREADS settings must observe from
//     outside parallel regions, mirroring the thread pool's rule that
//     whole-tensor reductions stay sequential.
//
// Registration (`Registry::counter("name")` etc.) takes a mutex but returns
// a stable reference — hot sites look a metric up once and cache it.
// Export is JSON-lines, one metric per line, sorted by name (see
// docs/OBSERVABILITY.md for the schema).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace apollo::obs {

// Shard slot for the calling thread, in [0, kMetricShards). Stable for the
// thread's lifetime; assigned round-robin on first use.
inline constexpr int kMetricShards = 16;
int metric_shard_index();

namespace detail {
struct alignas(64) PaddedI64 {
  std::atomic<int64_t> v{0};
};
}  // namespace detail

class Counter {
 public:
  void add(int64_t n = 1) {
    shards_[metric_shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const;
  void reset();

 private:
  std::array<detail::PaddedI64, kMetricShards> shards_;
};

// Last-writer-wins scalar (learning rate, live byte counts, …).
class Gauge {
 public:
  void set(double v) { bits_.store(pack_(v), std::memory_order_relaxed); }
  double value() const;
  void reset() { bits_.store(pack_(0.0), std::memory_order_relaxed); }

 private:
  static uint64_t pack_(double v);
  static double unpack_(uint64_t b);
  std::atomic<uint64_t> bits_{0};
};

// Histogram over (0, ∞) with fixed log-spaced buckets: bucket 0 is the
// underflow bucket (v ≤ 1e-9, including zero, negatives and NaN), buckets
// 1…60 have upper edges 1e-9·10^(i/4) — four buckets per decade from 1e-9
// to 1e6 — and bucket 61 catches overflow. The edges are compile-time
// constants of the schema, asserted by tests/obs_test.cpp.
class Histogram {
 public:
  static constexpr int kBuckets = 62;
  static constexpr double kMinEdge = 1e-9;
  static constexpr double kMaxEdge = 1e6;

  // Upper edge of bucket i (inclusive), for i in [0, kBuckets-2]; the last
  // bucket is unbounded.
  static double bucket_upper(int i);
  // Bucket that `v` lands in.
  static int bucket_index(double v);

  void observe(double v);

  struct Snapshot {
    int64_t count = 0;
    double sum = 0;
    double min = 0;  // meaningful only when count > 0
    double max = 0;
    std::array<int64_t, kBuckets> buckets{};
  };
  Snapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};     // double, CAS-accumulated
    std::atomic<uint64_t> min_bits{0};     // valid when count_for_minmax > 0
    std::atomic<uint64_t> max_bits{0};
    std::atomic<int64_t> minmax_init{0};
    std::array<std::atomic<int64_t>, kBuckets> buckets{};
  };
  std::array<Shard, kMetricShards> shards_;
};

// Name → metric registry. Lookup creates on first use; references stay
// valid for the life of the process (reset() zeroes values in place, it
// never removes metrics).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // JSON-lines snapshot of every registered metric, sorted by name.
  std::string export_jsonl() const;

  // Zero every metric (tests / per-run isolation). References stay valid.
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace apollo::obs
