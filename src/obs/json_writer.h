// Minimal JSON emission helpers shared by every observability sink (metrics
// registry export, chrome-trace writer, per-step telemetry, BENCH_*.json
// reports). Writing only — the repo has no JSON *parsing* dependency; the
// validation side lives in tests/obs_test.cpp and the CI checker.
//
// Numbers are formatted with pinned precision ("%.17g" round-trips every
// double bit-exactly), so two processes that observed the same values emit
// byte-identical files — the property the determinism tests assert.
// Non-finite doubles have no JSON representation and are emitted as null.
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace apollo::obs {

inline void json_append_escaped(std::string& out, const char* s) {
  out.push_back('"');
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

inline void json_append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  // Prefer the shortest representation that round-trips; fall back to the
  // always-exact 17 significant digits.
  std::snprintf(buf, sizeof buf, "%.15g", v);
  double back = 0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

inline void json_append_int(std::string& out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

// Incremental object/array builder for flat records:
//   JsonObject o; o.field("step", 3); o.field("loss", 1.5); o.str() == {...}
class JsonObject {
 public:
  JsonObject() { out_.push_back('{'); }

  JsonObject& field(const char* key, double v) {
    key_(key);
    json_append_double(out_, v);
    return *this;
  }
  JsonObject& field_int(const char* key, int64_t v) {
    key_(key);
    json_append_int(out_, v);
    return *this;
  }
  JsonObject& field_str(const char* key, const char* v) {
    key_(key);
    json_append_escaped(out_, v);
    return *this;
  }
  JsonObject& field_bool(const char* key, bool v) {
    key_(key);
    out_ += v ? "true" : "false";
    return *this;
  }
  // Verbatim JSON (caller guarantees validity) — nested arrays/objects.
  JsonObject& field_raw(const char* key, const std::string& json) {
    key_(key);
    out_ += json;
    return *this;
  }

  // Finalized text; the object is closed exactly once.
  const std::string& str() {
    if (!closed_) {
      out_.push_back('}');
      closed_ = true;
    }
    return out_;
  }

 private:
  void key_(const char* key) {
    if (!first_) out_.push_back(',');
    first_ = false;
    json_append_escaped(out_, key);
    out_.push_back(':');
  }

  std::string out_;
  bool first_ = true;
  bool closed_ = false;
};

}  // namespace apollo::obs
