// Machine-readable bench artifacts: every bench binary opens a BenchReport
// at the top of main() and a `BENCH_<name>.json` file is written at exit —
// the repo's perf trajectory is populated from these artifacts rather than
// scraped from stdout (see EXPERIMENTS.md "Regenerating the numbers").
//
// Shape of the artifact:
//   {
//     "bench": "table2_pretrain",
//     "schema_version": 1,
//     "quick_mode": false,
//     "scalars": { "<key>": <number>, ... },
//     "notes":   { "<key>": "<string>", ... },
//     "rows":    [ { "<col>": <number|string>, ... }, ... ]
//   }
//
// Rows are flat records (one per table line / measured configuration);
// scalars hold run-level headline numbers (spike ratios, speedups, …). The
// output directory defaults to the working directory and can be redirected
// with APOLLO_BENCH_DIR (see docs/ENVVARS.md).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace apollo::obs {

class BenchReport {
 public:
  // One flat record; columns keep insertion order.
  class Row {
   public:
    Row& col(const std::string& key, double v);
    Row& col_int(const std::string& key, int64_t v);
    Row& col_str(const std::string& key, const std::string& v);

   private:
    friend class BenchReport;
    struct Cell {
      std::string key;
      std::string json;  // pre-rendered value
    };
    std::vector<Cell> cells_;
  };

  // Install the process-wide report (writes BENCH_<name>.json at exit, or
  // on an explicit write()). `quick` flags APOLLO_BENCH_QUICK runs so
  // downstream tooling never mixes full and quick numbers.
  static BenchReport& open(const std::string& name, bool quick);
  // The installed report, or nullptr when no bench opened one (library code
  // must tolerate both).
  static BenchReport* current();

  void scalar(const std::string& key, double v);
  void scalar_int(const std::string& key, int64_t v);
  void note(const std::string& key, const std::string& v);
  Row& add_row();

  // Render and write the artifact now; returns false on I/O failure.
  // Idempotent — the at-exit hook rewrites with whatever accumulated.
  bool write() const;

  const std::string& path() const { return path_; }

  // Prefer open(); public so the registration slot can make_unique it.
  BenchReport(std::string name, bool quick);

 private:
  std::string name_;
  std::string path_;
  bool quick_;
  std::vector<std::pair<std::string, std::string>> scalars_;  // key → json
  std::vector<std::pair<std::string, std::string>> notes_;    // key → raw
  std::vector<Row> rows_;
};

}  // namespace apollo::obs
