#include "obs/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "obs/json_writer.h"

namespace apollo::obs {

namespace {
std::unique_ptr<BenchReport>& slot() {
  static std::unique_ptr<BenchReport> report;
  return report;
}

void write_at_exit() {
  if (slot() != nullptr) slot()->write();
}
}  // namespace

BenchReport::Row& BenchReport::Row::col(const std::string& key, double v) {
  std::string json;
  json_append_double(json, v);
  cells_.push_back(Cell{key, std::move(json)});
  return *this;
}

BenchReport::Row& BenchReport::Row::col_int(const std::string& key,
                                            int64_t v) {
  std::string json;
  json_append_int(json, v);
  cells_.push_back(Cell{key, std::move(json)});
  return *this;
}

BenchReport::Row& BenchReport::Row::col_str(const std::string& key,
                                            const std::string& v) {
  std::string json;
  json_append_escaped(json, v.c_str());
  cells_.push_back(Cell{key, std::move(json)});
  return *this;
}

BenchReport::BenchReport(std::string name, bool quick)
    : name_(std::move(name)), quick_(quick) {
  const char* dir = std::getenv("APOLLO_BENCH_DIR");
  path_ = dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : "";
  path_ += "BENCH_" + name_ + ".json";
}

BenchReport& BenchReport::open(const std::string& name, bool quick) {
  slot() = std::make_unique<BenchReport>(name, quick);
  static const bool registered = [] {
    std::atexit(write_at_exit);
    return true;
  }();
  (void)registered;
  return *slot();
}

BenchReport* BenchReport::current() { return slot().get(); }

void BenchReport::scalar(const std::string& key, double v) {
  std::string json;
  json_append_double(json, v);
  scalars_.emplace_back(key, std::move(json));
}

void BenchReport::scalar_int(const std::string& key, int64_t v) {
  std::string json;
  json_append_int(json, v);
  scalars_.emplace_back(key, std::move(json));
}

void BenchReport::note(const std::string& key, const std::string& v) {
  notes_.emplace_back(key, v);
}

BenchReport::Row& BenchReport::add_row() {
  rows_.emplace_back();
  return rows_.back();
}

bool BenchReport::write() const {
  std::string out = "{\n  \"bench\": ";
  json_append_escaped(out, name_.c_str());
  out += ",\n  \"schema_version\": 1,\n  \"quick_mode\": ";
  out += quick_ ? "true" : "false";

  out += ",\n  \"scalars\": {";
  for (size_t i = 0; i < scalars_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "\n    ";
    json_append_escaped(out, scalars_[i].first.c_str());
    out += ": ";
    out += scalars_[i].second;
  }
  out += scalars_.empty() ? "}" : "\n  }";

  out += ",\n  \"notes\": {";
  for (size_t i = 0; i < notes_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "\n    ";
    json_append_escaped(out, notes_[i].first.c_str());
    out += ": ";
    json_append_escaped(out, notes_[i].second.c_str());
  }
  out += notes_.empty() ? "}" : "\n  }";

  out += ",\n  \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out.push_back(',');
    out += "\n    {";
    const auto& cells = rows_[r].cells_;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += ", ";
      json_append_escaped(out, cells[c].key.c_str());
      out += ": ";
      out += cells[c].json;
    }
    out.push_back('}');
  }
  out += rows_.empty() ? "]" : "\n  ]";
  out += "\n}\n";

  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReport: cannot open %s for writing\n",
                 path_.c_str());
    return false;
  }
  const bool ok = std::fputs(out.c_str(), f) >= 0;
  std::fclose(f);
  return ok;
}

}  // namespace apollo::obs
