// Per-step training telemetry, gated by APOLLO_METRICS=metrics.jsonl.
//
// During a step, instrumented code contributes fields to the *current
// record* (the trainer sets loss/grad-norm/lr, the optimizer sets
// scaling-factor stats, clip fraction and refresh counts); the trainer then
// commits the record, which appends exactly one JSON object line to the
// metrics file. When the process exits (or the path changes), the metrics
// registry (obs/metrics.h) is appended as trailing `{"metric": ...}` lines,
// so one file carries both the per-step series and the whole-run counters.
//
// Zero overhead when off: every entry point starts with one branch on a
// cached flag (the APOLLO_CHECK_FINITE pattern); no field storage, file I/O
// or string formatting happens unless APOLLO_METRICS is set. Enabling
// telemetry never changes training results — every contribution is a pure
// observation (tests/obs_test.cpp asserts bit-identical losses on/off).
//
// The schema — every key, its type, unit and emission point — is documented
// in docs/OBSERVABILITY.md.
#pragma once

#include <cstddef>
#include <cstdint>

namespace apollo::obs {

// True when a metrics destination is configured (APOLLO_METRICS env or
// telemetry_set_path). Cached; one relaxed load per query.
bool telemetry_enabled();

// Override the destination: a path enables telemetry, "" disables, nullptr
// re-reads the environment. Finalizes (registry dump + close) any file that
// was open. For tests and tools.
void telemetry_set_path(const char* path);

class Telemetry {
 public:
  static Telemetry& instance();

  // Set a field of the current step record (last write wins).
  void set(const char* key, double v);
  void set_int(const char* key, int64_t v);
  // Add to an integer field (creates it at 0).
  void count(const char* key, int64_t n = 1);
  // Feed values into a distribution; commit() expands each sampled key K
  // into K_min / K_med / K_max / K_n fields.
  void sample(const char* key, double v);
  void sample(const char* key, const float* v, size_t n);

  // Append one JSON line for `step` with all accumulated fields (sorted by
  // key, "step" first) and clear the record.
  void commit(int64_t step);

  // Append the metrics-registry snapshot and close the file. Called
  // automatically at exit and on path changes.
  void finalize();

 private:
  friend void telemetry_set_path(const char* path);
  Telemetry() = default;
  struct Impl;
  Impl& impl();
};

inline Telemetry& telemetry() { return Telemetry::instance(); }

}  // namespace apollo::obs
