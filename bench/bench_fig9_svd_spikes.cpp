// Fig. 9 reproduction: per-step training throughput of a GaLore-type
// optimizer showing periodic collapses at every SVD projector refresh,
// vs. APOLLO's flat profile.
//
// Two parts: (1) *measured* on this machine — wall-clock per optimizer step
// on the 350M proxy with refresh every 25 steps, printed as a step series;
// (2) *modeled* at LLaMA-1B scale with the calibrated 600 s/7B SVD anchor,
// matching the figure's setting.
//
// Expected shape: deep periodic notches for GaLore/Fira (SVD), none for
// APOLLO/Flora (seeded random projection).
#include <chrono>

#include "exp_common.h"
#include "sysmodel/throughput_model.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport& report =
      obs::BenchReport::open("fig9_svd_spikes", quick_mode());
  report.note("figure", "Fig. 9");
  const auto cfg = nn::llama_350m_proxy();
  const int nsteps = steps(100);
  const int refresh = 25;
  std::printf("Fig. 9 — SVD-induced throughput spikes (measured, 350M "
              "proxy, refresh every %d steps)\n", refresh);
  print_rule(96);

  auto measure = [&](const Method& method, int update_freq) {
    nn::LlamaModel model(cfg, 42);
    data::SyntheticCorpus corpus({});
    auto opt = method.make(cfg.hidden / 4, 7);
    // Re-wire the refresh period via a dedicated construction.
    (void)update_freq;
    opt->set_lr(0.01f);
    data::BatchLoader loader(corpus, 4, cfg.seq_len, 7);
    std::vector<int32_t> ids, targets;
    std::vector<double> step_ms;
    for (int s = 0; s < nsteps; ++s) {
      loader.next(ids, targets);
      model.zero_grads();
      ag::Tape tape;
      tape.backward(model.loss(tape, ids, targets));
      const auto t0 = std::chrono::steady_clock::now();
      opt->step(model.parameters());
      const auto t1 = std::chrono::steady_clock::now();
      step_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return step_ms;
  };

  Method galore_fast = m_galore();
  galore_fast.make = [refresh](int64_t r, uint64_t s) {
    auto cfg = galore_cfg(r, s);
    cfg.update_freq = refresh;
    return optim::GaLore::galore(cfg);
  };
  Method apollo_fast = m_apollo();
  apollo_fast.make = [refresh](int64_t r, uint64_t s) {
    auto cfg = apollo_cfg(r, s);
    cfg.update_freq = refresh;
    return core::Apollo::standard(cfg);
  };

  const auto galore_ms = measure(galore_fast, refresh);
  const auto apollo_ms = measure(apollo_fast, refresh);

  std::printf("%6s %16s %16s\n", "step", "GaLore ms/step",
              "APOLLO ms/step");
  for (int s = 0; s < nsteps; s += 5)
    std::printf("%6d %16.2f %16.2f\n", s,
                galore_ms[static_cast<size_t>(s)],
                apollo_ms[static_cast<size_t>(s)]);

  // Spike statistics.
  auto stats = [](const std::vector<double>& v) {
    double mx = 0, sum = 0;
    for (double x : v) {
      mx = std::max(mx, x);
      sum += x;
    }
    return std::pair{mx, sum / static_cast<double>(v.size())};
  };
  const auto [gmax, gmean] = stats(galore_ms);
  const auto [amax, amean] = stats(apollo_ms);
  report.scalar("galore_mean_ms", gmean);
  report.scalar("galore_max_ms", gmax);
  report.scalar("galore_spike_ratio", gmax / gmean);
  report.scalar("apollo_mean_ms", amean);
  report.scalar("apollo_max_ms", amax);
  report.scalar("apollo_spike_ratio", amax / amean);
  for (int s = 0; s < nsteps; ++s)
    report.add_row()
        .col_int("step", s)
        .col("galore_ms", galore_ms[static_cast<size_t>(s)])
        .col("apollo_ms", apollo_ms[static_cast<size_t>(s)]);
  print_rule(96);
  std::printf("GaLore: mean %.2f ms, max %.2f ms (spike ratio %.1fx)\n",
              gmean, gmax, gmax / gmean);
  std::printf("APOLLO: mean %.2f ms, max %.2f ms (spike ratio %.1fx)\n",
              amean, amax, amax / amean);

  print_rule(96);
  std::printf("Modeled at LLaMA-1B scale (tokens/s per step, refresh every "
              "200 steps):\n");
  const auto model1b = sysmodel::spec_llama_1b();
  sysmodel::GpuSpec gpu;
  sysmodel::MethodSpec ms;
  ms.method = sysmodel::Method::kGaLore;
  ms.rank = 512;
  ms.layerwise_grad_update = true;
  const auto base = sysmodel::step_cost(model1b, gpu, 64, 512, false, 200);
  const double svd_s = sysmodel::projector_refresh_seconds(model1b, true);
  const double tokens = 512.0 * model1b.seq_len;
  std::printf("  steady-state step: %.0f tokens/s;  SVD-refresh step: %.0f "
              "tokens/s (%.0fx collapse)\n",
              tokens / base.total(), tokens / (base.total() + svd_s),
              (base.total() + svd_s) / base.total());
  std::printf("  APOLLO every step: %.0f tokens/s (no SVD, seed refresh "
              "only)\n", tokens / base.total());
  return 0;
}
