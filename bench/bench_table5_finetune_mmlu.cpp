// Table 5 reproduction: fine-tuning on the four MMLU-domain stand-ins at
// small rank (the paper uses rank 8 and sweeps the LR; we use hidden/8 and
// sweep two LRs, reporting the best — the paper's protocol).
//
// Expected shape (paper): all methods cluster within ~1 point; APOLLO w. SVD
// typically edges out; no catastrophic loser at small rank.
#include "exp_common.h"
#include "train/finetune.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("table5_finetune_mmlu", quick_mode());
  const auto cfg = nn::llama_130m_proxy();
  const int pretrain_steps = steps(600);
  const int ft_steps = steps(200);
  std::printf("Table 5 — fine-tuning on 4 MMLU-domain stand-ins "
              "(rank hidden/8, best over LR sweep; %d FT steps)\n", ft_steps);
  print_rule(100);

  nn::LlamaModel backbone(cfg, 42);
  data::SyntheticCorpus corpus({});
  {
    optim::AdamW opt;
    train::TrainConfig tc;
    tc.steps = pretrain_steps;
    tc.batch = 4;
    tc.lr = 3e-3f;
    train::Trainer t(backbone, opt, corpus, tc);
    t.run();
  }
  const auto snapshot = backbone.snapshot();

  Method mini_ft = m_apollo_mini();  // paper FT scale α = √4
  mini_ft.make = [](int64_t, uint64_t s) {
    core::ApolloConfig cfg = core::ApolloConfig::mini();
    cfg.seed = s;
    cfg.update_freq = 50;
    cfg.scale = 2.f;
    return std::make_unique<core::Apollo>(cfg, "APOLLO-Mini");
  };
  const std::vector<Method> methods = {
      m_adamw(), m_lora(), m_galore(), m_fira(), m_apollo_svd(), m_apollo(),
      mini_ft,
  };
  const data::MmluDomain domains[] = {
      data::MmluDomain::kStem, data::MmluDomain::kSocial,
      data::MmluDomain::kHumanities, data::MmluDomain::kOther};
  const float lr_sweep[] = {1e-3f, 3e-3f};

  std::printf("%-14s", "Method");
  for (auto d : domains) std::printf(" %16s", data::domain_name(d));
  std::printf(" %8s\n", "Average");
  print_rule(100);

  for (const auto& method : methods) {
    std::printf("%-14s", method.name.c_str());
    std::fflush(stdout);
    double total = 0;
    for (auto domain : domains) {
      double best = 0;
      for (float lr : lr_sweep) {
        backbone.restore(snapshot);
        auto opt = method.make(std::max(1, cfg.hidden / 8), 99);
        data::TaskGenerator gen(corpus, 3000 + static_cast<uint64_t>(domain));
        data::TaskGenerator eval_gen(corpus,
                                     4000 + static_cast<uint64_t>(domain));
        train::FinetuneConfig fc;
        fc.steps = ft_steps;
        fc.batch = 16;
        fc.lr = lr;
        auto train_fn = [&](int b) {
          return gen.make_mmlu_batch(domain, b, cfg.seq_len);
        };
        auto eval_fn = [&](int b) {
          return eval_gen.make_mmlu_batch(domain, b, cfg.seq_len);
        };
        best = std::max(
            best, train::finetune(backbone, *opt, train_fn, eval_fn, fc)
                      .accuracy);
      }
      std::printf(" %16.2f", best * 100);
      std::fflush(stdout);
      total += best;
    }
    std::printf(" %8.2f\n", total / 4 * 100);
  }
  print_rule(100);
  std::printf("(accuracy %% over 4-way multiple choice; chance = 25)\n");
  return 0;
}
