// State-precision ablation (extension experiment): identical training runs
// with the optimizer moments stored in fp32 / bf16 / int8, for AdamW and for
// the projected methods' auxiliary states (8-bit GaLore), plus INT8 weights
// (Q-APOLLO) — quantifying what each precision notch costs in perplexity
// and buys in bytes. The paper relies on bf16 states for its memory
// estimates and on 8-bit baselines in Table 3; this bench shows the full
// ladder on one controlled setup.
#include "core/quantized_weights.h"
#include "exp_common.h"
#include "optim/adamw_bf16.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("ablation_precision", quick_mode());
  const auto cfg = nn::llama_130m_proxy();
  const int nsteps = steps(350);
  std::printf("State-precision ablation — 130M proxy, %d steps\n", nsteps);
  print_rule(86);
  std::printf("%-26s %10s %16s\n", "Configuration", "final ppl",
              "state bytes");
  print_rule(86);

  Method adamw_bf16{"AdamW bf16", 3e-3f, [](int64_t, uint64_t) {
                      return std::make_unique<optim::AdamWBf16>();
                    }};
  struct Row {
    const char* label;
    Method method;
  };
  const Row rows[] = {
      {"AdamW fp32 states", m_adamw()},
      {"AdamW bf16 states", adamw_bf16},
      {"AdamW int8 states", m_adam8bit()},
      {"GaLore fp32 states", m_galore()},
      {"GaLore int8 states", m_galore_8bit()},
      {"APOLLO fp32 states", m_apollo()},
  };
  for (const auto& row : rows) {
    auto run = run_pretrain(row.method, cfg, nsteps);
    std::printf("%-26s %10.2f %16lld\n", row.label,
                run.result.final_perplexity,
                static_cast<long long>(run.state_bytes));
  }

  // INT8 *weights* on top of the most memory-frugal optimizer.
  {
    nn::LlamaModel model(cfg, 42);
    data::SyntheticCorpus corpus({});
    auto opt = m_apollo_mini().make(cfg.hidden / 4, 299);
    core::QuantizedWeightStore store(model.parameters(), 17);
    train::TrainConfig tc;
    tc.steps = nsteps;
    tc.batch = 4;
    tc.lr = 0.01f;
    train::Trainer t(model, *opt, corpus, tc);
    t.set_quantized_weights(&store);
    auto r = t.run();
    std::printf("%-26s %10.2f %16lld   (+ int8 weights: %lld B)\n",
                "Q-APOLLO-Mini", r.final_perplexity,
                static_cast<long long>(r.optimizer_state_bytes),
                static_cast<long long>(store.weight_bytes()));
  }
  print_rule(86);
  std::printf("(expected: bf16 ≈ fp32; int8 costs a small ppl premium at "
              "1/4 the bytes; APOLLO needs so little state that precision "
              "hardly matters)\n");
  return 0;
}
