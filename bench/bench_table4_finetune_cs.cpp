// Table 4 reproduction: fine-tuning comparison on the eight commonsense-
// reasoning stand-in tasks (see data/tasks.h for the task↔column mapping).
// A single backbone is pre-trained once on the synthetic corpus, then each
// method fine-tunes a fresh copy per task (rank 32 in the paper → hidden/4
// here; APOLLO-Mini rank 1) and reports answer accuracy.
//
// Expected shape (paper): APOLLO (± SVD) and Fira match or beat full AdamW
// on average; GaLore trails; APOLLO-Mini stays within ~1 point of AdamW.
#include "exp_common.h"
#include "train/finetune.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("table4_finetune_cs", quick_mode());
  const auto cfg = nn::llama_130m_proxy();
  const int pretrain_steps = steps(600);
  const int ft_steps = steps(240);
  std::printf("Table 4 — fine-tuning on 8 commonsense stand-in tasks "
              "(backbone: 130M proxy, %d pre-train steps; %d FT steps)\n",
              pretrain_steps, ft_steps);
  print_rule(118);

  // Pre-train the shared backbone once with AdamW.
  nn::LlamaModel backbone(cfg, 42);
  data::SyntheticCorpus corpus({});
  {
    optim::AdamW opt;
    train::TrainConfig tc;
    tc.steps = pretrain_steps;
    tc.batch = 4;
    tc.lr = 3e-3f;
    train::Trainer t(backbone, opt, corpus, tc);
    t.run();
  }
  const auto snapshot = backbone.snapshot();

  // APOLLO-Mini fine-tunes at the paper's α = √4 (Appendix A.5), not the
  // pre-training scale.
  Method mini_ft = m_apollo_mini();
  mini_ft.make = [](int64_t, uint64_t s) {
    core::ApolloConfig cfg = core::ApolloConfig::mini();
    cfg.seed = s;
    cfg.update_freq = 50;
    cfg.scale = 2.f;
    return std::make_unique<core::Apollo>(cfg, "APOLLO-Mini");
  };
  const std::vector<Method> methods = {
      m_adamw(), m_lora(),       m_dora(),   m_galore(),
      m_fira(),  m_apollo_svd(), m_apollo(), mini_ft,
  };
  const data::CommonsenseTask tasks[] = {
      data::CommonsenseTask::kCopyFirst,  data::CommonsenseTask::kCopyLast,
      data::CommonsenseTask::kMaxToken,   data::CommonsenseTask::kMajority,
      data::CommonsenseTask::kParity,     data::CommonsenseTask::kSuccessor,
      data::CommonsenseTask::kSecondToken,
      data::CommonsenseTask::kAlternation,
  };

  std::printf("%-14s", "Method");
  for (auto t : tasks) std::printf(" %7s", data::task_name(t));
  std::printf(" %8s\n", "Average");
  print_rule(118);

  for (const auto& method : methods) {
    std::printf("%-14s", method.name.c_str());
    std::fflush(stdout);
    double total = 0;
    for (auto task : tasks) {
      backbone.restore(snapshot);
      auto opt = method.make(std::max(1, cfg.hidden / 4), 77);
      data::TaskGenerator gen(corpus, 1000 + static_cast<uint64_t>(task));
      data::TaskGenerator eval_gen(corpus, 2000 + static_cast<uint64_t>(task));
      train::FinetuneConfig fc;
      fc.steps = ft_steps;
      fc.batch = 16;
      fc.lr = method.lr;
      auto train_fn = [&](int b) {
        return gen.make_commonsense_batch(task, b, cfg.seq_len);
      };
      auto eval_fn = [&](int b) {
        return eval_gen.make_commonsense_batch(task, b, cfg.seq_len);
      };
      const auto res = train::finetune(backbone, *opt, train_fn, eval_fn, fc);
      std::printf(" %7.2f", res.accuracy * 100);
      std::fflush(stdout);
      total += res.accuracy;
    }
    std::printf(" %8.2f\n", total / 8 * 100);
  }
  print_rule(118);
  std::printf("(accuracy %%; tasks are synthetic stand-ins — column names "
              "map to the paper's benchmarks, see data/tasks.h)\n");
  return 0;
}
