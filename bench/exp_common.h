// Shared infrastructure for the experiment benches (one binary per paper
// table/figure — see DESIGN.md §4).
//
// Every bench uses the same method registry so "APOLLO", "GaLore", "Fira"…
// mean exactly one configuration across all experiments. Per-method default
// learning rates follow the paper: AdamW-family tuned (3e-3 at nano scale),
// projected optimizers use the untuned lr = 0.01 the paper inherits from
// GaLore. Ranks are given as a fraction of the model's hidden size (the
// paper's default is 1/4).
//
// Honest-compute note: runs are scaled-down proxies (see DESIGN.md §2);
// set APOLLO_BENCH_QUICK=1 to divide step counts by 4 during development.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/apollo.h"
#include "core/structured_adamw.h"
#include "obs/bench_report.h"
#include "optim/adam8bit.h"
#include "optim/adam_mini.h"
#include "optim/adamw.h"
#include "optim/galore.h"
#include "optim/lowrank.h"
#include "optim/sgd.h"
#include "train/trainer.h"

namespace apollo::bench {

inline bool quick_mode() {
  const char* env = std::getenv("APOLLO_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

inline int steps(int full) { return quick_mode() ? std::max(20, full / 4) : full; }

// One registered optimization method: display name, learning rate, and a
// factory parameterized on the quarter-hidden rank of the target model.
struct Method {
  std::string name;
  float lr;
  std::function<std::unique_ptr<optim::Optimizer>(int64_t rank,
                                                  uint64_t seed)> make;
};

inline Method m_adamw() {
  return {"AdamW", 3e-3f, [](int64_t, uint64_t) {
            return std::make_unique<optim::AdamW>();
          }};
}
inline Method m_sgd() {
  return {"SGD-momentum", 0.05f, [](int64_t, uint64_t) {
            return std::make_unique<optim::Sgd>(0.9f);
          }};
}
inline Method m_adam_mini() {
  return {"Adam-mini", 3e-3f, [](int64_t, uint64_t) {
            return std::make_unique<optim::AdamMini>();
          }};
}
inline Method m_adam8bit() {
  return {"8-bit Adam", 3e-3f, [](int64_t, uint64_t) {
            return std::make_unique<optim::Adam8bit>();
          }};
}
inline optim::GaloreConfig galore_cfg(int64_t rank, uint64_t seed) {
  optim::GaloreConfig cfg;
  cfg.rank = rank;
  cfg.scale = 0.25f;
  // The paper refreshes every 200 of 10K+ steps; nano runs are a few
  // hundred steps, so keep a comparable steps/T ratio.
  cfg.update_freq = 50;
  cfg.seed = seed;
  return cfg;
}
inline Method m_galore() {
  return {"GaLore", 0.01f, [](int64_t r, uint64_t s) {
            return optim::GaLore::galore(galore_cfg(r, s));
          }};
}
inline Method m_galore_rp() {
  return {"GaLore w. RP", 0.01f, [](int64_t r, uint64_t s) {
            return optim::GaLore::galore_rp(galore_cfg(r, s));
          }};
}
inline Method m_galore_8bit() {
  return {"8-bit GaLore", 0.01f, [](int64_t r, uint64_t s) {
            return optim::GaLore::galore_8bit(galore_cfg(r, s));
          }};
}
inline Method m_fira() {
  return {"Fira", 0.01f, [](int64_t r, uint64_t s) {
            return optim::GaLore::fira(galore_cfg(r, s));
          }};
}
inline Method m_flora() {
  return {"Flora", 0.01f, [](int64_t r, uint64_t s) {
            return optim::GaLore::flora(galore_cfg(r, s));
          }};
}
inline core::ApolloConfig apollo_cfg(int64_t rank, uint64_t seed) {
  core::ApolloConfig cfg;
  cfg.rank = rank;
  cfg.seed = seed;
  cfg.update_freq = 50;  // scaled with nano step budgets, as for GaLore
  return cfg;
}
inline Method m_apollo() {
  return {"APOLLO", 0.01f, [](int64_t r, uint64_t s) {
            return core::Apollo::standard(apollo_cfg(r, s));
          }};
}
inline Method m_apollo_svd() {
  return {"APOLLO w. SVD", 0.01f, [](int64_t r, uint64_t s) {
            return core::Apollo::with_svd(apollo_cfg(r, s));
          }};
}
inline Method m_apollo_half() {
  // "APOLLO †": half the default rank (1/8 of hidden instead of 1/4).
  return {"APOLLO (half rank)", 0.01f, [](int64_t r, uint64_t s) {
            return core::Apollo::standard(
                apollo_cfg(std::max<int64_t>(1, r / 2), s));
          }};
}
inline Method m_apollo_mini() {
  // The paper's global α = √128 is tuned for real model widths (hidden
  // 512…4096, where √128 ≈ 0.25…0.5 of √hidden). At nano proxy widths the
  // width-faithful equivalent is α = √(hidden/4) = √rank_hint (verified by
  // the sweeps in EXPERIMENTS.md calibration note 3).
  return {"APOLLO-Mini", 0.01f, [](int64_t r, uint64_t s) {
            core::ApolloConfig cfg = core::ApolloConfig::mini();
            cfg.seed = s;
            cfg.update_freq = 50;
            cfg.scale = std::sqrt(static_cast<float>(r));
            return std::make_unique<core::Apollo>(cfg, "APOLLO-Mini");
          }};
}
inline Method m_lowrank() {
  return {"Low-Rank", 3e-3f, [](int64_t r, uint64_t s) {
            optim::AdapterConfig cfg;
            cfg.kind = optim::AdapterKind::kFactorized;
            cfg.rank = r;
            cfg.seed = s;
            return std::make_unique<optim::LowRankAdapter>(cfg);
          }};
}
inline Method m_lora() {
  return {"LoRA", 3e-3f, [](int64_t r, uint64_t s) {
            optim::AdapterConfig cfg;
            cfg.kind = optim::AdapterKind::kLora;
            cfg.rank = r;
            cfg.seed = s;
            return std::make_unique<optim::LowRankAdapter>(cfg);
          }};
}
inline Method m_relora() {
  return {"ReLoRA", 3e-3f, [](int64_t r, uint64_t s) {
            optim::AdapterConfig cfg;
            cfg.kind = optim::AdapterKind::kRelora;
            cfg.rank = r;
            cfg.merge_freq = 100;
            cfg.seed = s;
            return std::make_unique<optim::LowRankAdapter>(cfg);
          }};
}
inline Method m_dora() {
  return {"DoRA", 3e-3f, [](int64_t r, uint64_t s) {
            optim::AdapterConfig cfg;
            cfg.kind = optim::AdapterKind::kDora;
            cfg.rank = r;
            cfg.seed = s;
            return std::make_unique<optim::LowRankAdapter>(cfg);
          }};
}

// Model ladder entry for pre-training experiments.
struct SizePoint {
  const char* label;          // the paper-scale name this proxies
  nn::LlamaConfig config;
  int train_steps;            // full-mode step budget (ratio follows Tab. 8)
};

inline std::vector<SizePoint> table2_ladder() {
  return {
      {"60M", nn::llama_60m_proxy(), 250},
      {"130M", nn::llama_130m_proxy(), 350},
      {"350M", nn::llama_350m_proxy(), 500},
      {"1B", nn::llama_1b_proxy(), 700},
  };
}

// One pre-training run: fresh model, fixed seeds, per-method LR.
struct PretrainRun {
  train::TrainResult result;
  int64_t state_bytes = 0;
};

inline PretrainRun run_pretrain(const Method& method,
                                const nn::LlamaConfig& model_cfg,
                                int train_steps, int batch = 4,
                                int eval_every = 0, uint64_t seed = 42,
                                int64_t rank_override = -1) {
  nn::LlamaModel model(model_cfg, seed);
  data::SyntheticCorpus corpus({});
  const int64_t rank =
      rank_override > 0 ? rank_override : std::max(1, model_cfg.hidden / 4);
  auto opt = method.make(rank, seed * 7919 + 13);
  train::TrainConfig cfg;
  cfg.steps = train_steps;
  cfg.batch = batch;
  cfg.lr = method.lr;
  cfg.eval_every = eval_every;
  train::Trainer trainer(model, *opt, corpus, cfg);
  PretrainRun out;
  out.result = trainer.run();
  out.state_bytes = opt->state_bytes();
  // Every pre-training run lands as one row in the bench's JSON artifact
  // (when the bench opened one) — the machine-readable mirror of the text
  // tables, consumed by CI and the perf trajectory.
  if (obs::BenchReport* rep = obs::BenchReport::current()) {
    rep->add_row()
        .col_str("method", method.name)
        .col_int("steps", train_steps)
        .col_int("hidden", model_cfg.hidden)
        .col("lr", method.lr)
        .col("final_ppl", out.result.final_perplexity)
        .col_int("state_bytes", out.state_bytes)
        .col_int("peak_activation_bytes", out.result.peak_activation_bytes);
  }
  return out;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace apollo::bench
