// Supporting microbenchmarks (google-benchmark): the kernels whose cost
// asymmetry drives the paper's system story — SVD vs. seeded random
// projection, per-step cost of each optimizer, quantization round-trips,
// and the training-stack primitives.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/apollo.h"
#include "data/corpus.h"
#include "linalg/projection.h"
#include "linalg/svd.h"
#include "nn/llama.h"
#include "obs/bench_report.h"
#include "optim/adamw.h"
#include "optim/galore.h"
#include "quant/quant.h"
#include "tensor/ops.h"
#include "tensor/simd/simd.h"

namespace apollo {
namespace {

Matrix random_matrix(int64_t r, int64_t c, uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  m.fill_gaussian(rng, 0.f, 0.1f);
  return m;
}

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2), c(n, n);
  for (auto _ : state) {
    matmul(c, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// The paper's core cost asymmetry: SVD projector vs. seeded RP generation.
void BM_SvdProjector(benchmark::State& state) {
  const int64_t n = state.range(0);
  Matrix g = random_matrix(n, 4 * n, 3);
  for (auto _ : state) {
    Matrix p = svd_left_projector(g, n / 4);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_SvdProjector)->Arg(32)->Arg(64)->Arg(128);

void BM_RandomProjector(benchmark::State& state) {
  const int64_t n = state.range(0);
  uint64_t seed = 1;
  for (auto _ : state) {
    Matrix p = gaussian_projection(n / 4, n, seed++);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_RandomProjector)->Arg(32)->Arg(64)->Arg(128);

// Per-step optimizer cost on one 128×512 weight.
template <typename MakeOpt>
void optimizer_step_bench(benchmark::State& state, MakeOpt make) {
  nn::Parameter p("w", 128, 512);
  Rng rng(4);
  p.value.fill_gaussian(rng, 0.f, 0.1f);
  auto opt = make();
  opt->set_lr(1e-3f);
  for (auto _ : state) {
    p.grad.fill_gaussian(rng, 0.f, 0.1f);
    opt->step({&p});
  }
}

void BM_StepAdamW(benchmark::State& state) {
  optimizer_step_bench(state,
                       [] { return std::make_unique<optim::AdamW>(); });
}
BENCHMARK(BM_StepAdamW);

void BM_StepGaLoreSvd(benchmark::State& state) {
  optimizer_step_bench(state, [] {
    optim::GaloreConfig cfg;
    cfg.rank = 32;
    cfg.update_freq = 10;
    return optim::GaLore::galore(cfg);
  });
}
BENCHMARK(BM_StepGaLoreSvd);

void BM_StepApollo(benchmark::State& state) {
  optimizer_step_bench(state, [] {
    core::ApolloConfig cfg;
    cfg.rank = 32;
    cfg.update_freq = 10;
    return core::Apollo::standard(cfg);
  });
}
BENCHMARK(BM_StepApollo);

void BM_StepApolloMini(benchmark::State& state) {
  optimizer_step_bench(state, [] { return core::Apollo::mini(); });
}
BENCHMARK(BM_StepApolloMini);

void BM_QuantizeGroup128(benchmark::State& state) {
  Matrix m = random_matrix(256, 512, 5);
  for (auto _ : state) {
    auto q = GroupQuantized::quantize(m, 128);
    benchmark::DoNotOptimize(q.bytes());
  }
  state.SetBytesProcessed(state.iterations() * m.size() * 4);
}
BENCHMARK(BM_QuantizeGroup128);

void BM_TrainStep350MProxy(benchmark::State& state) {
  nn::LlamaModel model(nn::llama_350m_proxy(), 42);
  data::SyntheticCorpus corpus({});
  data::BatchLoader loader(corpus, 4, model.config().seq_len, 7);
  core::ApolloConfig cfg;
  cfg.rank = 16;
  auto opt = core::Apollo::standard(cfg);
  opt->set_lr(0.01f);
  std::vector<int32_t> ids, targets;
  for (auto _ : state) {
    loader.next(ids, targets);
    model.zero_grads();
    ag::Tape tape;
    tape.backward(model.loss(tape, ids, targets));
    opt->step(model.parameters());
  }
  state.SetItemsProcessed(state.iterations() * 4 * model.config().seq_len);
}
BENCHMARK(BM_TrainStep350MProxy);

// Seconds per call, doubling the batch until the sample is long enough to
// trust (single-threaded direct kernel calls; no pool involvement).
template <typename F>
double secs_per_call(F&& body) {
  using clock = std::chrono::steady_clock;
  body();  // warm up caches and the dispatch table
  for (int64_t iters = 1;; iters *= 2) {
    const auto t0 = clock::now();
    for (int64_t i = 0; i < iters; ++i) body();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s > 0.1 || iters > (int64_t{1} << 24)) return s / iters;
  }
}

}  // namespace

// Direct sweep of the dispatched SIMD kernels (tensor/simd/simd.h) at every
// level this CPU supports: one row per (kernel, level) with GFLOP/s and
// nominal GB/s, plus the headline `speedup_vs_scalar` scalar (vector GEMM
// over scalar GEMM at the large shape). Returns false — nonzero bench exit —
// when a vector level exists but fails to beat scalar GEMM.
bool run_simd_kernel_sweep(bool quick) {
  obs::BenchReport* rep = obs::BenchReport::current();
  const int64_t N = quick ? 192 : 512;        // GEMM m = n = k
  const int64_t kVec = quick ? (int64_t{1} << 20) : (int64_t{1} << 22);
  const int64_t kRow = 4096;                  // softmax / rmsnorm row width

  Matrix a = random_matrix(N, N, 11), b = random_matrix(N, N, 12), c(N, N);
  Matrix y = random_matrix(1, kVec, 13), x = random_matrix(1, kVec, 14);
  Matrix src = random_matrix(1, kRow, 15), w = random_matrix(1, kRow, 16);
  Matrix dst(1, kRow), sig(1, kRow);

  std::printf("\n%-10s %-8s %12s %10s\n", "kernel", "level", "GFLOP/s",
              "GB/s");
  double scalar_gemm = 0., best_vector_gemm = 0.;
  for (simd::Level lv : simd::available_levels()) {
    const simd::KernelTable& kt = simd::table(lv);
    struct Sample {
      const char* kernel;
      double secs, flops, bytes;
    };
    const Sample samples[] = {
        {"gemm", secs_per_call([&] {
           kt.gemm(c.data(), N, a.data(), N, false, b.data(), N, 0, N, N, N);
         }),
         2. * N * N * N, 16. * N * N},
        {"axpy",
         secs_per_call([&] { kt.axpy(y.data(), x.data(), 1e-4f, kVec); }),
         2. * kVec, 12. * kVec},
        {"sum", secs_per_call([&] {
           benchmark::DoNotOptimize(kt.sum(x.data(), kVec));
         }),
         1. * kVec, 4. * kVec},
        {"softmax",
         secs_per_call([&] { kt.softmax(dst.data(), src.data(), kRow); }),
         4. * kRow, 8. * kRow},
        {"rmsnorm", secs_per_call([&] {
           benchmark::DoNotOptimize(
               kt.rmsnorm_row(dst.data(), src.data(), w.data(), kRow, 1e-6f));
         }),
         4. * kRow, 12. * kRow},
        {"silu", secs_per_call([&] {
           kt.silu(dst.data(), sig.data(), src.data(), kRow);
         }),
         5. * kRow, 12. * kRow},
    };
    for (const Sample& s : samples) {
      const double gflops = s.flops / s.secs * 1e-9;
      const double gbps = s.bytes / s.secs * 1e-9;
      std::printf("%-10s %-8s %12.2f %10.2f\n", s.kernel,
                  simd::level_name(lv), gflops, gbps);
      if (rep != nullptr) {
        rep->add_row()
            .col_str("name", std::string("simd_") + s.kernel)
            .col_str("level", simd::level_name(lv))
            .col("gflops", gflops)
            .col("gbps", gbps);
      }
      if (std::string(s.kernel) == "gemm") {
        if (lv == simd::Level::kScalar)
          scalar_gemm = gflops;
        else if (gflops > best_vector_gemm)
          best_vector_gemm = gflops;
      }
    }
  }

  const bool has_vector = simd::available_levels().size() > 1;
  const double speedup =
      has_vector && scalar_gemm > 0. ? best_vector_gemm / scalar_gemm : 1.;
  std::printf("simd gemm speedup_vs_scalar: %.2fx (N=%lld)\n\n", speedup,
              static_cast<long long>(N));
  if (rep != nullptr) {
    rep->scalar("speedup_vs_scalar", speedup);
    rep->note("simd_max_level", simd::level_name(simd::max_supported_level()));
  }
  if (has_vector && speedup <= 1.) {
    std::fprintf(stderr,
                 "FAIL: vectorized GEMM (%.2f GFLOP/s) does not beat scalar "
                 "(%.2f GFLOP/s) at N=%lld\n",
                 best_vector_gemm, scalar_gemm, static_cast<long long>(N));
    return false;
  }
  return true;
}

}  // namespace apollo

namespace {

// Mirror every benchmark run into the shared BENCH_ artifact alongside the
// normal console table.
class ReportAdapter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    apollo::obs::BenchReport* rep = apollo::obs::BenchReport::current();
    if (rep == nullptr) return;
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      rep->add_row()
          .col_str("name", run.benchmark_name())
          .col("real_time_ns", run.GetAdjustedRealTime())
          .col("cpu_time_ns", run.GetAdjustedCPUTime())
          .col_int("iterations", run.iterations);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = std::getenv("APOLLO_BENCH_QUICK") != nullptr;
  apollo::obs::BenchReport::open("micro_kernels", quick);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ReportAdapter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  // Nonzero exit when a vector level fails to beat the scalar GEMM — keeps
  // the dispatch win an enforced property, not just a reported number.
  return apollo::run_simd_kernel_sweep(quick) ? 0 : 1;
}
