// Supporting microbenchmarks (google-benchmark): the kernels whose cost
// asymmetry drives the paper's system story — SVD vs. seeded random
// projection, per-step cost of each optimizer, quantization round-trips,
// and the training-stack primitives.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/apollo.h"
#include "data/corpus.h"
#include "linalg/projection.h"
#include "linalg/svd.h"
#include "nn/llama.h"
#include "obs/bench_report.h"
#include "optim/adamw.h"
#include "optim/galore.h"
#include "quant/quant.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

Matrix random_matrix(int64_t r, int64_t c, uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  m.fill_gaussian(rng, 0.f, 0.1f);
  return m;
}

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Matrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2), c(n, n);
  for (auto _ : state) {
    matmul(c, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// The paper's core cost asymmetry: SVD projector vs. seeded RP generation.
void BM_SvdProjector(benchmark::State& state) {
  const int64_t n = state.range(0);
  Matrix g = random_matrix(n, 4 * n, 3);
  for (auto _ : state) {
    Matrix p = svd_left_projector(g, n / 4);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_SvdProjector)->Arg(32)->Arg(64)->Arg(128);

void BM_RandomProjector(benchmark::State& state) {
  const int64_t n = state.range(0);
  uint64_t seed = 1;
  for (auto _ : state) {
    Matrix p = gaussian_projection(n / 4, n, seed++);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_RandomProjector)->Arg(32)->Arg(64)->Arg(128);

// Per-step optimizer cost on one 128×512 weight.
template <typename MakeOpt>
void optimizer_step_bench(benchmark::State& state, MakeOpt make) {
  nn::Parameter p("w", 128, 512);
  Rng rng(4);
  p.value.fill_gaussian(rng, 0.f, 0.1f);
  auto opt = make();
  opt->set_lr(1e-3f);
  for (auto _ : state) {
    p.grad.fill_gaussian(rng, 0.f, 0.1f);
    opt->step({&p});
  }
}

void BM_StepAdamW(benchmark::State& state) {
  optimizer_step_bench(state,
                       [] { return std::make_unique<optim::AdamW>(); });
}
BENCHMARK(BM_StepAdamW);

void BM_StepGaLoreSvd(benchmark::State& state) {
  optimizer_step_bench(state, [] {
    optim::GaloreConfig cfg;
    cfg.rank = 32;
    cfg.update_freq = 10;
    return optim::GaLore::galore(cfg);
  });
}
BENCHMARK(BM_StepGaLoreSvd);

void BM_StepApollo(benchmark::State& state) {
  optimizer_step_bench(state, [] {
    core::ApolloConfig cfg;
    cfg.rank = 32;
    cfg.update_freq = 10;
    return core::Apollo::standard(cfg);
  });
}
BENCHMARK(BM_StepApollo);

void BM_StepApolloMini(benchmark::State& state) {
  optimizer_step_bench(state, [] { return core::Apollo::mini(); });
}
BENCHMARK(BM_StepApolloMini);

void BM_QuantizeGroup128(benchmark::State& state) {
  Matrix m = random_matrix(256, 512, 5);
  for (auto _ : state) {
    auto q = GroupQuantized::quantize(m, 128);
    benchmark::DoNotOptimize(q.bytes());
  }
  state.SetBytesProcessed(state.iterations() * m.size() * 4);
}
BENCHMARK(BM_QuantizeGroup128);

void BM_TrainStep350MProxy(benchmark::State& state) {
  nn::LlamaModel model(nn::llama_350m_proxy(), 42);
  data::SyntheticCorpus corpus({});
  data::BatchLoader loader(corpus, 4, model.config().seq_len, 7);
  core::ApolloConfig cfg;
  cfg.rank = 16;
  auto opt = core::Apollo::standard(cfg);
  opt->set_lr(0.01f);
  std::vector<int32_t> ids, targets;
  for (auto _ : state) {
    loader.next(ids, targets);
    model.zero_grads();
    ag::Tape tape;
    tape.backward(model.loss(tape, ids, targets));
    opt->step(model.parameters());
  }
  state.SetItemsProcessed(state.iterations() * 4 * model.config().seq_len);
}
BENCHMARK(BM_TrainStep350MProxy);

}  // namespace
}  // namespace apollo

namespace {

// Mirror every benchmark run into the shared BENCH_ artifact alongside the
// normal console table.
class ReportAdapter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    apollo::obs::BenchReport* rep = apollo::obs::BenchReport::current();
    if (rep == nullptr) return;
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      rep->add_row()
          .col_str("name", run.benchmark_name())
          .col("real_time_ns", run.GetAdjustedRealTime())
          .col("cpu_time_ns", run.GetAdjustedCPUTime())
          .col_int("iterations", run.iterations);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  apollo::obs::BenchReport::open(
      "micro_kernels", std::getenv("APOLLO_BENCH_QUICK") != nullptr);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ReportAdapter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
