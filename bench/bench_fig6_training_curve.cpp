// Fig. 6 reproduction: validation-perplexity trajectory of Fira vs. APOLLO
// (and AdamW) on the 350M proxy, with early/middle/late stage read-outs.
//
// Expected shape (paper): Fira converges faster early (it keeps low-rank
// Adam states and full-rank residuals), APOLLO catches up and matches or
// passes it late — compressing optimizer states into scaling factors pays
// off as training lengthens.
#include "exp_common.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("fig6_training_curve", quick_mode());
  const auto cfg = nn::llama_350m_proxy();
  const int nsteps = steps(700);
  const int eval_every = std::max(1, nsteps / 14);
  std::printf("Fig. 6 — validation ppl across training, 350M proxy "
              "(%d steps, eval every %d)\n", nsteps, eval_every);
  print_rule(96);

  const Method methods[] = {m_adamw(), m_fira(), m_apollo()};
  std::vector<std::vector<train::EvalPoint>> curves;
  for (const auto& m : methods) {
    auto run = run_pretrain(m, cfg, nsteps, 4, eval_every);
    curves.push_back(run.result.curve);
  }

  std::printf("%6s", "step");
  for (const auto& m : methods) std::printf(" %12s", m.name.c_str());
  std::printf("\n");
  print_rule(96);
  for (size_t i = 0; i < curves[0].size(); ++i) {
    std::printf("%6d", curves[0][i].step);
    for (const auto& c : curves) std::printf(" %12.2f", c[i].perplexity);
    std::printf("\n");
  }
  print_rule(96);

  // Stage summary: early (first quarter), middle, late (final point).
  auto at_frac = [&](const std::vector<train::EvalPoint>& c, double f) {
    return c[std::min(c.size() - 1,
                      static_cast<size_t>(f * (c.size() - 1)))].perplexity;
  };
  std::printf("%-10s", "stage");
  for (const auto& m : methods) std::printf(" %12s", m.name.c_str());
  std::printf("\n");
  for (auto [label, frac] : {std::pair{"early", 0.25}, {"middle", 0.5},
                             {"late", 1.0}}) {
    std::printf("%-10s", label);
    for (const auto& c : curves) std::printf(" %12.2f", at_frac(c, frac));
    std::printf("\n");
  }
  std::printf("(expect: Fira ahead early; APOLLO closes the gap late)\n");
  return 0;
}
