// Fig. 1 (right) reproduction: end-to-end 7B pre-training throughput on the
// modeled 8×A100-80GB node. Each method trains at its own maximum
// micro-batch under the cap; AdamW is memory-bound at a single-digit
// micro-batch (starved tensor cores + un-amortized per-step overheads).
//
// Expected shape (paper): APOLLO(-Mini) ≈ 3× AdamW tokens/s, ≈ 2× GaLore
// (which additionally pays the periodic SVD).
#include "exp_common.h"
#include "sysmodel/throughput_model.h"
#include "tensor/simd/simd.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport& report =
      obs::BenchReport::open("fig1_throughput", quick_mode());
  report.note("figure", "Fig. 1 (right)");
  // Stamp the dispatch level so throughput artifacts from different
  // machines / APOLLO_SIMD settings are never compared blind.
  report.note("simd_level", simd::level_name(simd::active_level()));
  std::printf("Fig. 1 (right) — modeled end-to-end throughput, LLaMA-7B on "
              "8xA100-80GB, total batch 512 seq\n");
  print_rule(96);
  std::printf("%-14s %12s %12s %12s %12s %10s\n", "Method", "micro-batch",
              "compute s", "proj s", "tokens/s", "vs AdamW");
  print_rule(96);

  struct Row {
    const char* label;
    sysmodel::Method kind;
    int64_t rank;
    bool svd;
    bool layerwise;
  };
  const Row rows[] = {
      {"AdamW", sysmodel::Method::kAdamW, 0, false, false},
      {"GaLore", sysmodel::Method::kGaLore, 1024, true, true},
      {"APOLLO", sysmodel::Method::kApollo, 256, false, true},
      {"APOLLO-Mini", sysmodel::Method::kApolloMini, 1, false, true},
  };

  const auto model = sysmodel::spec_llama_7b();
  sysmodel::GpuSpec gpu;
  double adamw_tps = 0;
  for (const auto& row : rows) {
    sysmodel::MethodSpec ms;
    ms.method = row.kind;
    ms.rank = row.rank;
    ms.layerwise_grad_update = row.layerwise;
    const auto t = sysmodel::end_to_end_throughput(model, ms, gpu, 512,
                                                   row.svd, 200);
    if (adamw_tps == 0) adamw_tps = t.tokens_per_s;
    std::printf("%-14s %12lld %12.2f %12.2f %12.0f %9.2fx\n", row.label,
                static_cast<long long>(t.micro_batch), t.cost.compute_s,
                t.cost.projector_s, t.tokens_per_s,
                t.tokens_per_s / adamw_tps);
    report.add_row()
        .col_str("method", row.label)
        .col_int("micro_batch", t.micro_batch)
        .col("compute_s", t.cost.compute_s)
        .col("projector_s", t.cost.projector_s)
        .col("tokens_per_s", t.tokens_per_s)
        .col("speedup_vs_adamw", t.tokens_per_s / adamw_tps);
  }
  print_rule(96);
  std::printf("(micro-batch = sum over 8 GPUs; APOLLO's edge = 4x batch "
              "-> saturated tensor cores + amortized overheads, no SVD)\n");
  return 0;
}
