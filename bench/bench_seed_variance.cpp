// Seed-variance check (reproduction hygiene, not a paper figure): the
// headline comparison (AdamW vs. GaLore vs. APOLLO vs. APOLLO-Mini) repeated
// over three seeds — model init, data order and projection seeds all vary.
// Reports mean ± range so readers can judge whether the Table-2 orderings
// exceed run-to-run noise.
//
// Expected shape: the APOLLO-vs-AdamW gap is several times the seed spread.
#include <cmath>

#include "exp_common.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("seed_variance", quick_mode());
  const auto cfg = nn::llama_130m_proxy();
  const int nsteps = steps(350);
  const uint64_t seeds[] = {42, 1337, 271828};
  std::printf("Seed variance — 130M proxy, %d steps, %zu seeds\n", nsteps,
              std::size(seeds));
  print_rule(86);
  std::printf("%-14s %10s %10s %10s %12s\n", "Method", "mean ppl", "min",
              "max", "spread/mean");
  print_rule(86);

  const Method methods[] = {m_adamw(), m_galore(), m_fira(), m_apollo(),
                            m_apollo_mini()};
  double apollo_mean = 0, adamw_mean = 0, worst_spread = 0;
  for (const auto& method : methods) {
    double sum = 0, mn = 1e30, mx = 0;
    for (uint64_t seed : seeds) {
      const double ppl =
          run_pretrain(method, cfg, nsteps, 4, 0, seed)
              .result.final_perplexity;
      sum += ppl;
      mn = std::min(mn, ppl);
      mx = std::max(mx, ppl);
    }
    const double mean = sum / static_cast<double>(std::size(seeds));
    std::printf("%-14s %10.2f %10.2f %10.2f %11.1f%%\n",
                method.name.c_str(), mean, mn, mx, (mx - mn) / mean * 100);
    if (method.name == "APOLLO") apollo_mean = mean;
    if (method.name == "AdamW") adamw_mean = mean;
    worst_spread = std::max(worst_spread, mx - mn);
  }
  print_rule(86);
  std::printf("APOLLO-vs-AdamW gap: %.2f ppl; worst seed spread: %.2f ppl "
              "(%s)\n", adamw_mean - apollo_mean, worst_spread,
              adamw_mean - apollo_mean > worst_spread
                  ? "ordering exceeds noise"
                  : "ordering within noise — increase budgets");
  return 0;
}
