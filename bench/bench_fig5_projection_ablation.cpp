// Fig. 5 (a–c) reproduction: SVD vs. random projection for GaLore, APOLLO
// and APOLLO-Mini across three model sizes, against the full-rank AdamW
// reference line.
//
// Expected shape (paper): GaLore degrades badly under random projection
// (it *applies* the projected update, so subspace quality matters), while
// APOLLO and APOLLO-Mini are nearly projection-agnostic (they only *read
// scaling statistics* from the subspace) — the core SVD-free claim.
#include "exp_common.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("fig5_projection_ablation", quick_mode());
  std::printf("Fig. 5 (a-c) — SVD vs. random projection (rank = hidden/4; "
              "Mini rank 1)\n");
  print_rule(96);

  const SizePoint sizes[] = {
      {"60M", nn::llama_60m_proxy(), 250},
      {"130M", nn::llama_130m_proxy(), 350},
      {"350M", nn::llama_350m_proxy(), 500},
  };

  struct Row {
    const char* label;
    Method method;
  };
  Method mini_svd = m_apollo_mini();
  mini_svd.make = [](int64_t r, uint64_t s) {
    core::ApolloConfig cfg = core::ApolloConfig::mini();
    cfg.seed = s;
    cfg.update_freq = 50;
    cfg.scale = std::sqrt(static_cast<float>(r));
    cfg.proj = optim::ProjKind::kSvd;
    return std::make_unique<core::Apollo>(cfg, "APOLLO-Mini w. SVD");
  };
  Method golore = m_galore();
  golore.make = [](int64_t r, uint64_t s) {
    // SVD for the first refresh period, random projections after.
    return optim::GaLore::golore(galore_cfg(r, s), 60);
  };
  const Row rows[] = {
      {"AdamW (reference)", m_adamw()},
      {"GaLore w. SVD", m_galore()},
      {"GaLore w. RP", m_galore_rp()},
      {"GoLore (SVD->RP)", golore},
      {"APOLLO w. SVD", m_apollo_svd()},
      {"APOLLO w. RP", m_apollo()},
      {"APOLLO-Mini w. SVD", mini_svd},
      {"APOLLO-Mini w. RP", m_apollo_mini()},
  };

  std::printf("%-22s", "Method");
  for (const auto& s : sizes) std::printf(" %9s", s.label);
  std::printf("\n");
  print_rule(96);
  for (const auto& row : rows) {
    std::printf("%-22s", row.label);
    std::fflush(stdout);
    for (const auto& s : sizes) {
      auto run = run_pretrain(row.method, s.config, steps(s.train_steps));
      std::printf(" %9.2f", run.result.final_perplexity);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  print_rule(96);
  std::printf("(expect: GaLore RP-vs-SVD gap large, APOLLO series gap ~0 — "
              "SVD is unnecessary for APOLLO)\n");
  return 0;
}
