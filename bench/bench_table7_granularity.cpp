// Table 7 reproduction: ablation on the gradient-scaling-factor granularity
// (channel vs. tensor) for APOLLO and APOLLO w. SVD at rank hidden/4,
// against the AdamW / GaLore references.
//
// Expected shape (paper): at moderate rank the channel/tensor gap is small
// (≤ ~1 ppl) and both beat AdamW and GaLore — tensor-wise scaling is enough
// unless the rank is extreme (that case is Fig. 5d / APOLLO-Mini).
#include "exp_common.h"

using namespace apollo;
using namespace apollo::bench;

namespace {

Method apollo_with(core::ScalingGranularity g, optim::ProjKind proj) {
  Method m = m_apollo();
  m.make = [g, proj](int64_t r, uint64_t s) {
    core::ApolloConfig cfg;
    cfg.rank = r;
    cfg.seed = s;
    cfg.update_freq = 50;
    cfg.granularity = g;
    cfg.proj = proj;
    return std::make_unique<core::Apollo>(cfg, "APOLLO(custom)");
  };
  return m;
}

}  // namespace

int main() {
  obs::BenchReport::open("table7_granularity", quick_mode());
  std::printf("Table 7 — scaling-factor granularity ablation "
              "(rank = hidden/4)\n");
  print_rule(96);

  const SizePoint sizes[] = {
      {"60M", nn::llama_60m_proxy(), 250},
      {"130M", nn::llama_130m_proxy(), 350},
      {"350M", nn::llama_350m_proxy(), 500},
  };

  struct Row {
    std::string label;
    Method method;
  };
  const Row rows[] = {
      {"AdamW", m_adamw()},
      {"GaLore", m_galore()},
      {"APOLLO w. SVD / Channel",
       apollo_with(core::ScalingGranularity::kChannel, optim::ProjKind::kSvd)},
      {"APOLLO w. SVD / Tensor",
       apollo_with(core::ScalingGranularity::kTensor, optim::ProjKind::kSvd)},
      {"APOLLO / Channel",
       apollo_with(core::ScalingGranularity::kChannel,
                   optim::ProjKind::kRandom)},
      {"APOLLO / Tensor",
       apollo_with(core::ScalingGranularity::kTensor,
                   optim::ProjKind::kRandom)},
  };

  std::printf("%-26s", "Method / Granularity");
  for (const auto& s : sizes) std::printf(" %9s", s.label);
  std::printf("\n");
  print_rule(96);
  for (const auto& row : rows) {
    std::printf("%-26s", row.label.c_str());
    std::fflush(stdout);
    for (const auto& s : sizes) {
      auto run = run_pretrain(row.method, s.config, steps(s.train_steps));
      std::printf(" %9.2f", run.result.final_perplexity);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  print_rule(96);
  return 0;
}
