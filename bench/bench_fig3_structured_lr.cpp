// Fig. 3 reproduction: element-wise vs. channel-wise learning-rate
// adaptation, with and without the norm-growth limiter, on the 130M proxy.
//
// Expected shape (paper): channel-wise matches (slightly beats) element-wise
// AdamW; without the limiter the channel-wise curve shows an early loss
// spike that the limiter removes, and the limited variant ends best.
#include "core/structured_adamw.h"
#include "exp_common.h"

using namespace apollo;
using namespace apollo::bench;

namespace {

struct Variant {
  const char* label;
  core::LrGranularity granularity;
  bool limiter;
};

train::TrainResult run_variant(const Variant& v, int nsteps, float lr) {
  nn::LlamaModel model(nn::llama_130m_proxy(), 42);
  data::SyntheticCorpus corpus({});
  core::StructuredAdamWConfig cfg;
  cfg.granularity = v.granularity;
  cfg.use_norm_limiter = v.limiter;
  core::StructuredAdamW opt(cfg);
  train::TrainConfig tc;
  tc.steps = nsteps;
  tc.batch = 4;
  tc.lr = lr;
  tc.record_step_losses = true;
  train::Trainer trainer(model, opt, corpus, tc);
  return trainer.run();
}

// Coarser scaling shifts the effective step size, so each variant gets a
// tiny LR sweep (the paper likewise runs each method at its own setting).
train::TrainResult best_of_lrs(const Variant& v, int nsteps, float* best_lr) {
  train::TrainResult best;
  best.final_perplexity = 1e30;
  for (float lr : {3e-3f, 6e-3f}) {
    auto r = run_variant(v, nsteps, lr);
    if (r.final_perplexity < best.final_perplexity) {
      best = std::move(r);
      *best_lr = lr;
    }
  }
  return best;
}

float max_early_spike(const std::vector<float>& losses) {
  // Largest single-step loss *increase* within the first quarter of
  // training — the quantity the limiter is supposed to suppress.
  float spike = 0.f;
  for (size_t i = 1; i < losses.size() / 4; ++i)
    spike = std::max(spike, losses[i] - losses[i - 1]);
  return spike;
}

}  // namespace

int main() {
  obs::BenchReport::open("fig3_structured_lr", quick_mode());
  const int nsteps = steps(600);
  std::printf("Fig. 3 — structured learning-rate adaptation on the 130M "
              "proxy (%d steps)\n", nsteps);
  print_rule();

  const Variant variants[] = {
      {"Element-wise (AdamW)", core::LrGranularity::kElement, false},
      {"Channel-wise, no limiter", core::LrGranularity::kChannel, false},
      {"Channel-wise + norm limiter", core::LrGranularity::kChannel, true},
  };

  std::vector<train::TrainResult> results;
  std::printf("%-30s %8s %10s %14s %18s\n", "Variant", "best lr",
              "final ppl", "final loss", "max early spike");
  print_rule();
  for (const auto& v : variants) {
    float lr = 0;
    auto r = best_of_lrs(v, nsteps, &lr);
    std::printf("%-30s %8g %10.2f %14.4f %18.4f\n", v.label, lr,
                r.final_perplexity, r.step_losses.back(),
                max_early_spike(r.step_losses));
    results.push_back(std::move(r));
  }

  // Loss-curve series (paper plots loss vs. step), downsampled.
  print_rule();
  std::printf("Training-loss curves (every %d steps):\nstep", nsteps / 20);
  for (const auto& v : variants) std::printf(", %s", v.label);
  std::printf("\n");
  for (int i = 0; i < nsteps; i += std::max(1, nsteps / 20)) {
    std::printf("%4d", i);
    for (const auto& r : results)
      std::printf(", %.4f", r.step_losses[static_cast<size_t>(i)]);
    std::printf("\n");
  }
  return 0;
}
