// Fig. 7 reproduction: long-context pre-training (sequence length 4× the
// default) on the 350M proxy. AdamW gets an LR sweep (the paper's strong
// baseline protocol); APOLLO/APOLLO-Mini lazily tune only the scale factor
// α under a fixed LR — exactly the paper's setup, scaled down.
//
// Expected shape (paper): APOLLO series matches or beats the best swept
// AdamW, with the gap widening late in training, at 1/8 … 1/1024 of the
// optimizer memory.
#include "exp_common.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("fig7_long_context", quick_mode());
  nn::LlamaConfig cfg = nn::llama_350m_proxy();
  cfg.seq_len *= 4;  // 4× context, like the paper's 1024 vs. GaLore's 256
  const int nsteps = steps(300);
  const int eval_every = std::max(1, nsteps / 6);
  std::printf("Fig. 7 — long-context pre-training (seq %d, %d steps)\n",
              cfg.seq_len, nsteps);
  print_rule(96);

  // AdamW LR sweep.
  double best_adamw = 1e30;
  float best_lr = 0;
  for (float lr : {1e-3f, 3e-3f, 5e-3f}) {
    Method m = m_adamw();
    m.lr = lr;
    const double ppl =
        run_pretrain(m, cfg, nsteps, /*batch=*/2).result.final_perplexity;
    std::printf("AdamW lr=%-8g final ppl %8.2f\n", lr, ppl);
    if (ppl < best_adamw) {
      best_adamw = ppl;
      best_lr = lr;
    }
  }
  print_rule(96);

  // APOLLO α sweep at fixed LR (the paper's lazy tuning).
  auto apollo_scaled = [](float scale) {
    Method m = m_apollo();
    m.make = [scale](int64_t r, uint64_t s) {
      core::ApolloConfig cfg;
      cfg.rank = r;
      cfg.seed = s;
      cfg.scale = scale;
      return std::make_unique<core::Apollo>(cfg, "APOLLO");
    };
    return m;
  };
  auto mini_scaled = [](float scale) {
    Method m = m_apollo_mini();
    m.make = [scale](int64_t, uint64_t s) {
      core::ApolloConfig cfg = core::ApolloConfig::mini();
      cfg.seed = s;
      cfg.update_freq = 50;
      cfg.scale = scale;
      return std::make_unique<core::Apollo>(cfg, "APOLLO-Mini");
    };
    return m;
  };

  double best_apollo = 1e30, best_mini = 1e30;
  std::vector<train::EvalPoint> apollo_curve, mini_curve, adamw_curve;
  for (float scale : {1.f, std::sqrt(2.f), std::sqrt(3.f)}) {
    auto run = run_pretrain(apollo_scaled(scale), cfg, nsteps, 2, eval_every);
    std::printf("APOLLO alpha=%-6.2f final ppl %8.2f\n", scale,
                run.result.final_perplexity);
    if (run.result.final_perplexity < best_apollo) {
      best_apollo = run.result.final_perplexity;
      apollo_curve = run.result.curve;
    }
  }
  const float mini_base = std::sqrt(cfg.hidden / 4.f);
  for (float scale : {mini_base, mini_base * std::sqrt(2.f)}) {
    auto run = run_pretrain(mini_scaled(scale), cfg, nsteps, 2, eval_every);
    std::printf("APOLLO-Mini alpha=%-6.2f final ppl %8.2f\n", scale,
                run.result.final_perplexity);
    if (run.result.final_perplexity < best_mini) {
      best_mini = run.result.final_perplexity;
      mini_curve = run.result.curve;
    }
  }
  {
    Method m = m_adamw();
    m.lr = best_lr;
    adamw_curve = run_pretrain(m, cfg, nsteps, 2, eval_every).result.curve;
  }

  print_rule(96);
  std::printf("%6s %12s %12s %12s\n", "step", "AdamW(best)", "APOLLO",
              "APOLLO-Mini");
  for (size_t i = 0; i < adamw_curve.size(); ++i)
    std::printf("%6d %12.2f %12.2f %12.2f\n", adamw_curve[i].step,
                adamw_curve[i].perplexity,
                i < apollo_curve.size() ? apollo_curve[i].perplexity : 0.0,
                i < mini_curve.size() ? mini_curve[i].perplexity : 0.0);
  print_rule(96);
  std::printf("best: AdamW %.2f (lr %g) | APOLLO %.2f | APOLLO-Mini %.2f\n",
              best_adamw, best_lr, best_apollo, best_mini);
  return 0;
}
