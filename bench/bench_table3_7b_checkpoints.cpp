// Table 3 reproduction: "LLaMA-7B" (largest proxy) pre-training with
// validation perplexity reported at 4 evenly spaced checkpoints, comparing
// the 8-bit baselines (8-bit Adam, 8-bit GaLore) against APOLLO (r = h/4)
// and APOLLO-Mini (r = 1). Optimizer memory is reported at true 7B scale.
//
// Expected shape (paper): all methods converge, APOLLO series ends with the
// best perplexity while holding 8×/∞ less optimizer state than the 8-bit
// baselines; early checkpoints are close (8-bit Adam competitive at 40K),
// APOLLO pulls ahead with more tokens.
#include "exp_common.h"
#include "sysmodel/memory_model.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("table3_7b_checkpoints", quick_mode());
  const auto cfg = nn::llama_7b_proxy();
  const int nsteps = steps(600);
  const int eval_every = nsteps / 4;
  std::printf("Table 3 — 7B-proxy pre-training: ppl at 4 checkpoints "
              "(%d steps; optimizer memory at true 7B scale)\n", nsteps);
  print_rule(100);

  struct Row {
    Method method;
    sysmodel::Method kind;
    int64_t rank;      // at true 7B scale for the memory column
    int state_bits;
  };
  const Row rows[] = {
      {m_adam8bit(), sysmodel::Method::kAdamW, 0, 8},
      {m_galore_8bit(), sysmodel::Method::kGaLore, 1024, 8},
      {m_apollo(), sysmodel::Method::kApollo, 256, 16},
      {m_apollo_mini(), sysmodel::Method::kApolloMini, 1, 16},
  };

  std::printf("%-14s %10s", "Method", "OptMem(7B)");
  for (int c = 1; c <= 4; ++c)
    std::printf("  step%-5d", std::min(nsteps, c * eval_every));
  std::printf("\n");
  print_rule(100);

  for (const auto& row : rows) {
    sysmodel::MethodSpec ms;
    ms.method = row.kind;
    ms.rank = row.rank;
    ms.state_bits = row.state_bits;
    const auto mem = sysmodel::estimate_memory(sysmodel::spec_llama_7b(), ms, 1);
    std::printf("%-14s %9.1fG", row.method.name.c_str(),
                static_cast<double>(mem.optimizer_states) /
                    (1024.0 * 1024.0 * 1024.0));
    std::fflush(stdout);
    auto run = run_pretrain(row.method, cfg, nsteps, /*batch=*/4, eval_every);
    // The curve holds evals at k·eval_every plus the final step; report the
    // four paper checkpoints (the final point doubles as checkpoint 4).
    const auto& curve = run.result.curve;
    for (int c = 1; c <= 4; ++c) {
      const size_t idx = std::min(curve.size() - 1, static_cast<size_t>(c - 1));
      const auto& pt = c == 4 ? curve.back() : curve[idx];
      std::printf("  %9.2f", pt.perplexity);
    }
    std::printf("\n");
  }
  print_rule(100);
  std::printf("(checkpoints at steps %d/%d/%d/%d ~ the paper's "
              "40K/80K/120K/150K)\n", eval_every, 2 * eval_every,
              3 * eval_every, nsteps);
  return 0;
}
