// Thread-pool scaling: tokens/sec for APOLLO pre-training of the nano LLaMA
// at 1/2/4/8 threads, with the determinism contract checked along the way
// (every thread count must reproduce the 1-thread loss curve bit-exactly).
//
// Honest-measurement note: speedups only materialize up to the machine's
// physical core count — on a 1-core container every row measures the pool's
// oversubscription overhead, not parallel speedup. The BENCH_ artifact
// records hardware_threads so downstream plots can annotate the ceiling.
#include <chrono>
#include <cstdio>

#include "core/threadpool.h"
#include "exp_common.h"

using namespace apollo;
using namespace apollo::bench;

namespace {

struct RunResult {
  double seconds = 0;
  double tokens_per_s = 0;
  std::vector<float> losses;
};

RunResult timed_run(int threads, int train_steps) {
  core::set_thread_count(threads);
  nn::LlamaConfig mcfg = nn::llama_60m_proxy();
  nn::LlamaModel model(mcfg, 42);
  data::SyntheticCorpus corpus({});
  core::ApolloConfig acfg;
  acfg.rank = std::max(1, mcfg.hidden / 4);
  acfg.update_freq = 50;
  auto opt = core::Apollo::standard(acfg);
  train::TrainConfig tc;
  tc.steps = train_steps;
  tc.batch = 4;
  tc.lr = 0.01f;
  tc.record_step_losses = true;
  train::Trainer trainer(model, *opt, corpus, tc);
  const auto t0 = std::chrono::steady_clock::now();
  auto result = trainer.run();
  const auto t1 = std::chrono::steady_clock::now();
  RunResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  const double tokens =
      static_cast<double>(train_steps) * tc.batch * mcfg.seq_len;
  out.tokens_per_s = tokens / out.seconds;
  out.losses = std::move(result.step_losses);
  core::set_thread_count(0);
  return out;
}

}  // namespace

int main() {
  obs::BenchReport& report =
      obs::BenchReport::open("threads_scaling", quick_mode());
  const int train_steps = steps(120);
  const int hw = [] {
    core::set_thread_count(0);
    return core::thread_count();
  }();
  std::printf("Thread-pool scaling — APOLLO on nano LLaMA (60M proxy), "
              "%d steps, hardware threads: %d\n", train_steps, hw);
  print_rule(64);
  std::printf("%-10s %10s %12s %10s %12s\n", "threads", "seconds",
              "tokens/s", "speedup", "bit-exact");
  print_rule(64);

  const int counts[] = {1, 2, 4, 8};
  RunResult results[4];
  for (int i = 0; i < 4; ++i) results[i] = timed_run(counts[i], train_steps);

  const double base_tps = results[0].tokens_per_s;
  bool all_identical = true;
  for (int i = 0; i < 4; ++i) {
    const bool identical = results[i].losses == results[0].losses;
    all_identical = all_identical && identical;
    std::printf("%-10d %10.3f %12.0f %9.2fx %12s\n", counts[i],
                results[i].seconds, results[i].tokens_per_s,
                results[i].tokens_per_s / base_tps,
                identical ? "yes" : "NO");
    report.add_row()
        .col_int("threads", counts[i])
        .col("seconds", results[i].seconds)
        .col("tokens_per_s", results[i].tokens_per_s)
        .col("speedup", results[i].tokens_per_s / base_tps)
        .col_int("bit_exact", identical ? 1 : 0);
  }
  print_rule(64);
  report.note("model", "llama_60m_proxy");
  report.note("optimizer", "apollo");
  report.scalar_int("steps", train_steps);
  report.scalar_int("hardware_threads", hw);
  report.scalar_int("loss_curves_bit_identical", all_identical ? 1 : 0);
  if (!all_identical) {
    std::printf("DETERMINISM VIOLATION: loss curves diverged across thread "
                "counts\n");
    return 1;
  }
  std::printf("(loss curves bit-identical across all thread counts; speedup "
              "is capped by the %d hardware thread%s available here)\n", hw,
              hw == 1 ? "" : "s");
  std::printf("writing BENCH_threads_scaling.json\n");
  return 0;
}
