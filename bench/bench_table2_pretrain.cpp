// Table 2 reproduction: pre-training validation perplexity across the model
// ladder (60M…1B proxies) for every memory-efficient training approach, with
// the paper-scale memory column computed analytically over the real Table-8
// shapes (weights + optimizer states, BF16).
//
// Expected shape (paper): APOLLO ≲ Fira < AdamW < GaLore < LoRA-family ≪
// Low-Rank, with APOLLO robust to rank halving and APOLLO-Mini close behind
// at a fraction of the memory.
#include "exp_common.h"
#include "sysmodel/memory_model.h"

using namespace apollo;
using namespace apollo::bench;

namespace {

sysmodel::GpuModelSpec paper_spec(const std::string& label) {
  if (label == "60M") return sysmodel::spec_llama_60m();
  if (label == "130M") return sysmodel::spec_llama_130m();
  if (label == "350M") return sysmodel::spec_llama_350m();
  return sysmodel::spec_llama_1b();
}

sysmodel::MethodSpec method_spec(const std::string& name, int64_t hidden) {
  sysmodel::MethodSpec ms;
  ms.rank = hidden / 4;
  if (name == "AdamW") ms.method = sysmodel::Method::kAdamW;
  else if (name == "Low-Rank") ms.method = sysmodel::Method::kLowRank;
  else if (name == "LoRA") ms.method = sysmodel::Method::kLora;
  else if (name == "ReLoRA") ms.method = sysmodel::Method::kRelora;
  else if (name == "GaLore") ms.method = sysmodel::Method::kGaLore;
  else if (name == "Fira") ms.method = sysmodel::Method::kFira;
  else if (name == "APOLLO w. SVD" || name == "APOLLO")
    ms.method = sysmodel::Method::kApollo;
  else if (name == "APOLLO (half rank)") {
    ms.method = sysmodel::Method::kApollo;
    ms.rank = hidden / 8;
  } else {
    ms.method = sysmodel::Method::kApolloMini;
    ms.rank = 1;
  }
  return ms;
}

}  // namespace

int main() {
  obs::BenchReport& report =
      obs::BenchReport::open("table2_pretrain", quick_mode());
  report.note("figure", "Table 2");
  std::printf("Table 2 — pre-training perplexity vs. memory "
              "(nano proxies on synthetic C4; memory at paper scale)\n");
  print_rule();

  const auto ladder = table2_ladder();
  const std::vector<Method> methods = {
      m_adamw(),       m_lowrank(), m_lora(),        m_relora(),
      m_galore(),      m_fira(),    m_apollo_svd(),  m_apollo(),
      m_apollo_half(), m_apollo_mini(),
  };

  std::printf("%-20s", "Method");
  for (const auto& size : ladder)
    std::printf("  %8s ppl  %7s mem", size.label, size.label);
  std::printf("\n");
  print_rule(118);

  for (const auto& method : methods) {
    std::printf("%-20s", method.name.c_str());
    std::fflush(stdout);
    for (const auto& size : ladder) {
      auto run = run_pretrain(method, size.config, steps(size.train_steps));
      const auto spec = paper_spec(size.label);
      const auto ms = method_spec(method.name, spec.hidden);
      const auto mem = sysmodel::estimate_memory(spec, ms, 1);
      const double gib =
          static_cast<double>(mem.weights + mem.optimizer_states) /
          (1024.0 * 1024.0 * 1024.0);
      std::printf("  %12.2f  %10.2fG", run.result.final_perplexity, gib);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  print_rule(118);
  std::printf("Per-method LR: AdamW-family tuned 3e-3; projected optimizers "
              "use the paper's untuned 1e-2.\nRanks: hidden/4 "
              "(half-rank row: hidden/8, APOLLO-Mini: 1).\n");
  return 0;
}
