// Fig. 1 (middle) reproduction: single-batch memory breakdown for LLaMA-7B
// across methods, including the Q- (INT8 weight) variants, under the
// layer-wise gradient update strategy for the GaLore/APOLLO rows (as in the
// paper's figure).
//
// Expected shape (paper): AdamW ≈ 58+ GB dominated by optimizer states;
// GaLore cuts states; APOLLO(-Mini) nearly eliminates them; Q-APOLLO-Mini
// lands under 12 GB — the single-GPU pre-training claim.
#include "exp_common.h"
#include "sysmodel/memory_model.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("fig1_memory_breakdown", quick_mode());
  std::printf("Fig. 1 (middle) — LLaMA-7B memory breakdown at micro-batch 1 "
              "(GiB)\n");
  print_rule(96);
  std::printf("%-16s %9s %9s %9s %9s %9s\n", "Method", "weights", "grads",
              "states", "activ.", "total");
  print_rule(96);

  struct Row {
    const char* label;
    sysmodel::MethodSpec ms;
  };
  auto make = [](sysmodel::Method m, int64_t rank, int wbits,
                 bool layerwise) {
    sysmodel::MethodSpec ms;
    ms.method = m;
    ms.rank = rank;
    ms.weight_bits = wbits;
    ms.layerwise_grad_update = layerwise;
    return ms;
  };
  const Row rows[] = {
      {"AdamW", make(sysmodel::Method::kAdamW, 0, 16, false)},
      {"Adam-mini", make(sysmodel::Method::kAdamMini, 0, 16, false)},
      {"GaLore", make(sysmodel::Method::kGaLore, 1024, 16, true)},
      {"Q-GaLore", make(sysmodel::Method::kGaLore, 1024, 8, true)},
      {"APOLLO", make(sysmodel::Method::kApollo, 256, 16, true)},
      {"Q-APOLLO", make(sysmodel::Method::kApollo, 256, 8, true)},
      {"APOLLO-Mini", make(sysmodel::Method::kApolloMini, 1, 16, true)},
      {"Q-APOLLO-Mini", make(sysmodel::Method::kApolloMini, 1, 8, true)},
  };

  const auto model = sysmodel::spec_llama_7b();
  constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
  for (const auto& row : rows) {
    const auto b = sysmodel::estimate_memory(model, row.ms, 1);
    std::printf("%-16s %9.2f %9.2f %9.2f %9.2f %9.2f\n", row.label,
                b.weights / kGiB, b.gradients / kGiB,
                b.optimizer_states / kGiB, b.activations / kGiB,
                b.total() / kGiB);
  }
  print_rule(96);
  const auto q_mini = sysmodel::estimate_memory(
      model, make(sysmodel::Method::kApolloMini, 1, 8, true), 1);
  std::printf("Q-APOLLO-Mini total: %.2f GiB %s the 12 GB single-GPU "
              "pre-training claim\n", q_mini.total() / kGiB,
              q_mini.total() / kGiB < 12.0 ? "— REPRODUCES" : "— MISSES");

  // The 13B naive-DDP claim.
  const auto m13 = sysmodel::spec_llama_13b();
  sysmodel::MethodSpec mini13 = make(sysmodel::Method::kApolloMini, 1, 16, false);
  const int64_t bs13 =
      sysmodel::max_micro_batch(m13, mini13, 80ll << 30);
  std::printf("LLaMA-13B on one A100-80G with APOLLO-Mini (naive DDP): "
              "max micro-batch = %lld %s\n", static_cast<long long>(bs13),
              bs13 >= 1 ? "— REPRODUCES the 13B claim" : "— does not fit");
  return 0;
}
