// Fig. 5 (d) reproduction: validation perplexity vs. rank on the 60M proxy
// for GaLore, Fira, APOLLO (channel-wise) and APOLLO-Mini-style tensor-wise
// scaling, against full-rank AdamW.
//
// Expected shape (paper): GaLore needs rank ≈ hidden/4 to match AdamW and
// collapses at low rank; Fira helps; APOLLO stays flat down to very low
// rank; tensor-wise (Mini) works even at rank 1.
#include "exp_common.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("fig5d_rank_sweep", quick_mode());
  const auto cfg = nn::llama_60m_proxy();  // hidden 32 → full rank ladder 1…8
  const int nsteps = steps(250);
  std::printf("Fig. 5 (d) — rank sweep on the 60M proxy (hidden %d, "
              "%d steps)\n", cfg.hidden, nsteps);
  print_rule(96);

  const int64_t ranks[] = {1, 2, 4, 8};  // 8 = hidden/4, the paper default

  // Tensor-granularity APOLLO at arbitrary rank (rank 1 = APOLLO-Mini).
  Method apollo_tensor = m_apollo_mini();
  apollo_tensor.make = [&cfg](int64_t r, uint64_t s) {
    core::ApolloConfig acfg = core::ApolloConfig::mini();
    acfg.rank = r;
    acfg.seed = s;
    acfg.update_freq = 50;
    // Tensor-wise α tracks √(hidden/(4r)) — the width-scaled version of
    // the paper's rule (α shrinks as the auxiliary rank grows).
    acfg.scale = std::sqrt(std::max(1.f, cfg.hidden / (4.f * r)));
    return std::make_unique<core::Apollo>(acfg, "APOLLO-tensor");
  };

  struct Row {
    const char* label;
    Method method;
  };
  const Row rows[] = {
      {"GaLore", m_galore()},
      {"Fira", m_fira()},
      {"APOLLO (channel)", m_apollo()},
      {"APOLLO-Mini (tensor)", apollo_tensor},
  };

  const double adamw_ppl =
      run_pretrain(m_adamw(), cfg, nsteps).result.final_perplexity;
  std::printf("AdamW full-rank reference: %.2f\n", adamw_ppl);
  print_rule(96);
  std::printf("%-22s", "Method \\ rank");
  for (int64_t r : ranks) std::printf(" %9lld", static_cast<long long>(r));
  std::printf("\n");
  print_rule(96);
  for (const auto& row : rows) {
    std::printf("%-22s", row.label);
    std::fflush(stdout);
    for (int64_t r : ranks) {
      auto run = run_pretrain(row.method, cfg, nsteps, 4, 0, 42, r);
      std::printf(" %9.2f", run.result.final_perplexity);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  print_rule(96);
  std::printf("(expect: GaLore worsens sharply as rank drops; APOLLO flat; "
              "tensor-wise effective even at rank 1)\n");
  return 0;
}
