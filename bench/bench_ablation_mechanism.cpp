// Mechanism-resolved learning ablation (extension experiment): after
// identical training budgets, split each optimizer's validation loss by the
// corpus mechanism that generated the target token —
//   markov : short-range topic transitions (learnable from local stats),
//   copy   : the token from 8 positions back (requires attention),
//   unigram: irreducible Zipf noise (floor ≈ its entropy for everyone).
//
// Expected shape: APOLLO(-Mini) tracks AdamW on *every* mechanism — i.e.
// the structured learning-rate compression does not selectively sacrifice
// the attention-dependent structure; rank-starved GaLore degrades the
// learnable mechanisms first while the unigram floor stays common.
#include "exp_common.h"
#include "train/mechanism_eval.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("ablation_mechanism", quick_mode());
  const auto cfg = nn::llama_130m_proxy();
  const int nsteps = steps(400);
  std::printf("Mechanism-resolved loss — 130M proxy, %d steps "
              "(CE in nats; lower is better)\n", nsteps);
  print_rule(86);
  std::printf("%-16s %10s %10s %10s %12s\n", "Method", "markov", "copy",
              "unigram", "overall ppl");
  print_rule(86);

  const Method methods[] = {m_adamw(), m_galore(), m_fira(), m_apollo(),
                            m_apollo_mini()};
  data::SyntheticCorpus corpus({});
  for (const auto& method : methods) {
    nn::LlamaModel model(cfg, 42);
    auto opt = method.make(std::max(1, cfg.hidden / 4), 77);
    train::TrainConfig tc;
    tc.steps = nsteps;
    tc.batch = 4;
    tc.lr = method.lr;
    train::Trainer trainer(model, *opt, corpus, tc);
    const auto result = trainer.run();
    const auto ml = train::mechanism_loss(model, corpus, /*batches=*/12,
                                          /*batch=*/4, /*seed=*/5151);
    std::printf("%-16s %10.3f %10.3f %10.3f %12.2f\n", method.name.c_str(),
                ml.markov, ml.copy, ml.unigram, result.final_perplexity);
  }
  print_rule(86);
  std::printf("(copy-mechanism loss is the attention probe: it falls only "
              "if induction-style heads formed)\n");
  return 0;
}
