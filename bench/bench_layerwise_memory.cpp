// Layer-wise (fused) update memory: peak gradient and total tape footprint
// of the streaming backward+optimizer path versus the classic
// accumulate-then-step loop, on the 60M nano proxy.
//
// The fused path (TrainConfig::fused_update, DESIGN.md §11) applies each
// parameter's optimizer update the moment backward() finalizes its gradient
// and frees the gradient immediately, so at most one parameter gradient is
// live at a time. Expected shape: fused peak_grad_bytes collapses from the
// full parameter count to roughly the largest single parameter (the vocab
// embedding), while the loss trajectory stays bit-identical — both are
// asserted here and mirrored into BENCH_layerwise_memory.json.
#include "exp_common.h"

using namespace apollo;
using namespace apollo::bench;

namespace {

struct ModeRun {
  train::TrainResult result;
  int64_t state_bytes = 0;
};

ModeRun run_mode(const Method& method, const nn::LlamaConfig& model_cfg,
                 int train_steps, bool fused) {
  const uint64_t seed = 42;
  nn::LlamaModel model(model_cfg, seed);
  data::SyntheticCorpus corpus({});
  const int64_t rank = std::max(1, model_cfg.hidden / 4);
  auto opt = method.make(rank, seed * 7919 + 13);
  train::TrainConfig cfg;
  cfg.steps = train_steps;
  cfg.batch = 4;
  cfg.lr = method.lr;
  cfg.eval_every = 0;
  cfg.record_step_losses = true;
  cfg.fused_update = fused;
  train::Trainer trainer(model, *opt, corpus, cfg);
  ModeRun out;
  out.result = trainer.run();
  out.state_bytes = opt->state_bytes();
  return out;
}

int64_t largest_param_bytes(const nn::LlamaConfig& model_cfg) {
  nn::LlamaModel model(model_cfg, 42);
  int64_t mx = 0;
  for (const nn::Parameter* p : model.parameters())
    mx = std::max(mx, p->value.size() * static_cast<int64_t>(sizeof(float)));
  return mx;
}

}  // namespace

int main() {
  obs::BenchReport& rep =
      obs::BenchReport::open("layerwise_memory", quick_mode());
  const nn::LlamaConfig cfg = nn::llama_60m_proxy();
  const int nsteps = steps(40);
  const int64_t largest = largest_param_bytes(cfg);

  std::printf("Layer-wise (fused) update memory — 60M proxy, %d steps\n",
              nsteps);
  std::printf("largest parameter: %lld bytes\n",
              static_cast<long long>(largest));
  rep.scalar_int("largest_param_bytes", largest);
  print_rule(86);
  std::printf("%-14s %-8s %16s %16s %10s\n", "method", "mode",
              "peak_grad_bytes", "peak_total_bytes", "final ppl");
  print_rule(86);

  bool all_identical = true;
  bool all_shrunk = true;
  for (const Method& m : {m_adamw(), m_apollo(), m_apollo_mini()}) {
    const ModeRun unfused = run_mode(m, cfg, nsteps, /*fused=*/false);
    const ModeRun fused = run_mode(m, cfg, nsteps, /*fused=*/true);
    const bool identical =
        unfused.result.step_losses == fused.result.step_losses;
    all_identical = all_identical && identical;
    all_shrunk = all_shrunk &&
                 fused.result.peak_grad_bytes < unfused.result.peak_grad_bytes;
    for (const ModeRun* r : {&unfused, &fused}) {
      const bool is_fused = r == &fused;
      std::printf("%-14s %-8s %16lld %16lld %10.2f\n", m.name.c_str(),
                  is_fused ? "fused" : "unfused",
                  static_cast<long long>(r->result.peak_grad_bytes),
                  static_cast<long long>(r->result.peak_total_bytes),
                  r->result.final_perplexity);
      rep.add_row()
          .col_str("method", m.name)
          .col_str("mode", is_fused ? "fused" : "unfused")
          .col_int("peak_grad_bytes", r->result.peak_grad_bytes)
          .col_int("peak_total_bytes", r->result.peak_total_bytes)
          .col_int("largest_param_bytes", largest)
          .col_int("state_bytes", r->state_bytes)
          .col("final_ppl", r->result.final_perplexity);
    }
    std::printf("%-14s          grad peak ratio %.3f, trajectories %s\n",
                "", static_cast<double>(fused.result.peak_grad_bytes) /
                        static_cast<double>(unfused.result.peak_grad_bytes),
                identical ? "bit-identical" : "DIVERGED");
  }
  print_rule(86);
  rep.scalar_int("trajectories_bit_identical", all_identical ? 1 : 0);
  rep.scalar_int("fused_peak_below_unfused", all_shrunk ? 1 : 0);
  if (!all_identical || !all_shrunk) {
    std::printf("FAILED: %s\n", !all_identical
                                    ? "fused trajectory diverged"
                                    : "fused peak not below unfused");
    return 1;
  }
  std::printf("fused peak gradient memory stays below the unfused peak for "
              "every method,\nwith bit-identical loss trajectories\n");
  return 0;
}
