// Design-choice ablations beyond the paper's printed tables — the knobs
// Algorithm 1 fixes by fiat, swept on the 130M proxy:
//   (a) norm-growth limiter: off / γ ∈ {1.001, 1.01, 1.1} (paper: 1.01),
//   (b) projection re-seed period T ∈ {1, 10, 50, never} (paper: 200 at
//       10K+ steps; 50 is the scaled default here),
//   (c) APOLLO gradient scale α ∈ {0.5, 1, 2} (paper: 1, folded into LR).
//
// Expected shape: a broad plateau around the paper's choices — the limiter
// matters (off is worse/less stable), re-seeding matters at both extremes
// (never = stale subspace, every step = no moment coherence), α trades off
// against the LR.
#include "exp_common.h"

using namespace apollo;
using namespace apollo::bench;

namespace {

Method apollo_variant(bool nl, float gamma, int freq, float scale) {
  Method m = m_apollo();
  m.make = [nl, gamma, freq, scale](int64_t r, uint64_t s) {
    core::ApolloConfig cfg;
    cfg.rank = r;
    cfg.seed = s;
    cfg.use_norm_limiter = nl;
    cfg.nl_gamma = gamma;
    cfg.update_freq = freq;
    cfg.scale = scale;
    return std::make_unique<core::Apollo>(cfg, "APOLLO(ablate)");
  };
  return m;
}

}  // namespace

int main() {
  obs::BenchReport::open("ablation_design", quick_mode());
  const auto cfg = nn::llama_130m_proxy();
  const int nsteps = steps(350);
  std::printf("Design ablations — APOLLO on the 130M proxy (%d steps, "
              "rank hidden/4)\n", nsteps);
  print_rule(86);

  std::printf("(a) norm-growth limiter\n");
  {
    auto off = run_pretrain(apollo_variant(false, 0.f, 50, 1.f), cfg, nsteps);
    std::printf("    %-22s ppl %8.2f\n", "limiter off", off.result.final_perplexity);
    for (float gamma : {1.001f, 1.01f, 1.1f}) {
      auto r = run_pretrain(apollo_variant(true, gamma, 50, 1.f), cfg, nsteps);
      std::printf("    gamma = %-14.3f ppl %8.2f%s\n", gamma,
                  r.result.final_perplexity,
                  gamma == 1.01f ? "   <- paper default" : "");
    }
  }

  print_rule(86);
  std::printf("(b) projection re-seed period T\n");
  for (int freq : {1, 10, 50, 1 << 28}) {
    auto r = run_pretrain(apollo_variant(true, 1.01f, freq, 1.f), cfg, nsteps);
    if (freq == 1 << 28)
      std::printf("    %-22s ppl %8.2f\n", "never (fixed P)",
                  r.result.final_perplexity);
    else
      std::printf("    T = %-18d ppl %8.2f%s\n", freq,
                  r.result.final_perplexity,
                  freq == 50 ? "   <- scaled default" : "");
  }

  print_rule(86);
  std::printf("(c) gradient scale alpha (at fixed lr %.3g)\n",
              m_apollo().lr);
  for (float scale : {0.5f, 1.f, 2.f}) {
    auto r = run_pretrain(apollo_variant(true, 1.01f, 50, scale), cfg, nsteps);
    std::printf("    alpha = %-16.2f ppl %8.2f%s\n", scale,
                r.result.final_perplexity,
                scale == 1.f ? "   <- paper default" : "");
  }
  print_rule(86);
  return 0;
}
