// Table 1 reproduction: the closed-form optimizer-state/feature comparison
// across APOLLO-Mini / APOLLO / Fira / GaLore / Flora, instantiated per
// weight matrix (m×n, rank r) and summed over a real LLaMA-7B, then
// cross-checked against the byte counters of the actual C++ optimizers on a
// nano model.
#include "exp_common.h"
#include "sysmodel/memory_model.h"

using namespace apollo;
using namespace apollo::bench;

namespace {

void cross_check(const char* label, const Method& method,
                 sysmodel::Method kind) {
  // Run one step on a single 32×128 weight and compare the optimizer's own
  // byte counter with the Table-1 element formula.
  nn::Parameter p("w", 32, 128);
  Rng rng(1);
  p.value.fill_gaussian(rng, 0.f, 0.1f);
  p.grad.fill_gaussian(rng, 0.f, 0.1f);
  auto opt = method.make(/*rank=*/8, /*seed=*/3);
  opt->set_lr(1e-3f);
  opt->step({&p});
  const int64_t formula_elems = sysmodel::state_elements(kind, 32, 128, 8);
  std::printf("  %-14s actual %7lld B   formula %7lld floats (= %lld B "
              "fp32 + bookkeeping)\n",
              label, static_cast<long long>(opt->state_bytes()),
              static_cast<long long>(formula_elems),
              static_cast<long long>(formula_elems * 4));
}

}  // namespace

int main() {
  obs::BenchReport::open("table1_memory_formulas", quick_mode());
  std::printf("Table 1 — optimizer-state memory formulas (per m x n weight, "
              "m <= n, rank r)\n");
  print_rule(96);
  std::printf("%-14s %-22s %-12s %-12s %-8s\n", "Method", "Optimizer states",
              "Full-rank G", "Pre-train", "w/o SVD");
  print_rule(96);
  struct Row {
    const char* name;
    const char* states;
    const char* fullg;
    const char* pre;
    const char* nosvd;
  };
  const Row rows[] = {
      {"APOLLO-Mini", "2n + 2", "yes", "yes", "yes"},
      {"APOLLO", "2nr + 2", "yes", "yes", "yes"},
      {"Fira", "mr + 2nr + 1", "yes", "yes", "no"},
      {"GaLore", "mr + 2nr", "no", "yes", "no"},
      {"Flora", "2nr + 1", "no", "limited", "yes"},
  };
  for (const auto& r : rows)
    std::printf("%-14s %-22s %-12s %-12s %-8s\n", r.name, r.states, r.fullg,
                r.pre, r.nosvd);

  print_rule(96);
  std::printf("Summed over LLaMA-7B (Table 8 shapes, rank 256, BF16 "
              "states):\n");
  const auto spec = sysmodel::spec_llama_7b();
  for (auto kind :
       {sysmodel::Method::kAdamW, sysmodel::Method::kAdamMini,
        sysmodel::Method::kGaLore, sysmodel::Method::kFira,
        sysmodel::Method::kFlora, sysmodel::Method::kApollo,
        sysmodel::Method::kApolloMini, sysmodel::Method::kSgd}) {
    sysmodel::MethodSpec ms;
    ms.method = kind;
    ms.rank = 256;
    const auto mem = sysmodel::estimate_memory(spec, ms, 1);
    std::printf("  %-14s %8.2f GiB optimizer states\n",
                sysmodel::method_name(kind),
                static_cast<double>(mem.optimizer_states) /
                    (1024.0 * 1024.0 * 1024.0));
  }

  print_rule(96);
  std::printf("Cross-check: C++ optimizer byte counters vs. formulas on one "
              "32x128 weight, r = 8:\n");
  cross_check("GaLore", m_galore(), sysmodel::Method::kGaLore);
  cross_check("Fira", m_fira(), sysmodel::Method::kFira);
  cross_check("Flora", m_flora(), sysmodel::Method::kFlora);
  cross_check("APOLLO", m_apollo(), sysmodel::Method::kApollo);
  cross_check("APOLLO-Mini", m_apollo_mini(), sysmodel::Method::kApolloMini);
  std::printf("(actual counters store fp32 states, +8 B projection seed; "
              "APOLLO series adds the +2 constant — seed + limiter norm.)\n");
  return 0;
}
