// Fig. 4 / Fig. 8 reproduction: the channel-wise gradient-scaling factors of
// APOLLO at rank n/8 and n/4, measured against the full-rank structured
// AdamW golden on the *same* gradient stream (one live 350M-proxy training
// run; the APOLLO instances consume shadow copies of each gradient). The
// paper pins trajectories the same way (footnote 1 of Appendix A.2).
//
// Expected shape (paper/Theorem A.4): raw compressed factors are √(r/n)-fold
// smaller than full-rank — s(full) : s(n/4) : s(n/8) ≈ 2√2 : √2 : 1 in the
// paper's normalization — so the normalized ratios √(n/r)·s^R/s reported
// here sit near 1.0 across layer types and depths.
#include <cmath>
#include <map>

#include "core/structured_adamw.h"
#include "exp_common.h"

using namespace apollo;
using namespace apollo::bench;

namespace {

double median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  obs::BenchReport::open("fig4_scaling_ratio", quick_mode());
  const auto cfg = nn::llama_350m_proxy();
  const int nsteps = steps(240);
  std::printf("Fig. 4 / Fig. 8 — channel scaling-factor ratio vs. theory on "
              "the 350M proxy (%d steps)\n", nsteps);
  std::printf("theory: sqrt(n/r)*s^R/s = 1;  raw ratios 1 : sqrt2 : 2sqrt2 "
              "for r = n/4 : n/8 : full\n");
  print_rule(100);

  // One live training run drives the gradient stream.
  nn::LlamaModel model(cfg, 42);
  core::StructuredAdamWConfig gcfg;
  gcfg.use_norm_limiter = false;
  core::StructuredAdamW golden(gcfg);

  // Shadow parameters consuming identical gradients for the APOLLO ranks.
  auto params = model.parameters();
  std::vector<std::unique_ptr<nn::Parameter>> shadow4, shadow8;
  nn::ParamList s4list, s8list;
  for (auto* p : params) {
    shadow4.push_back(std::make_unique<nn::Parameter>(
        p->name, p->value.rows(), p->value.cols(), p->matrix_shaped));
    shadow4.back()->value = p->value;
    s4list.push_back(shadow4.back().get());
    shadow8.push_back(std::make_unique<nn::Parameter>(
        p->name, p->value.rows(), p->value.cols(), p->matrix_shaped));
    shadow8.back()->value = p->value;
    s8list.push_back(shadow8.back().get());
  }
  core::ApolloConfig a4;
  a4.rank = cfg.hidden / 4;
  a4.use_norm_limiter = false;
  auto apollo4 = core::Apollo::standard(a4);
  core::ApolloConfig a8;
  a8.rank = cfg.hidden / 8;
  a8.use_norm_limiter = false;
  auto apollo8 = core::Apollo::standard(a8);

  data::SyntheticCorpus corpus({});
  data::BatchLoader loader(corpus, 4, cfg.seq_len, 7);
  std::vector<int32_t> ids, targets;
  const float lr = 1e-3f;
  golden.set_lr(lr);
  apollo4->set_lr(lr);
  apollo8->set_lr(lr);

  for (int step = 0; step < nsteps; ++step) {
    loader.next(ids, targets);
    model.zero_grads();
    ag::Tape tape;
    tape.backward(model.loss(tape, ids, targets));
    for (size_t i = 0; i < params.size(); ++i) {
      shadow4[i]->grad = params[i]->grad;
      shadow8[i]->grad = params[i]->grad;
    }
    golden.step(params);
    apollo4->step(s4list);
    apollo8->step(s8list);
  }

  // Group normalized ratios by layer bucket (early/middle/late) × module.
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      groups;
  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i]->matrix_shaped) continue;
    const auto* sg = golden.last_scaling(params[i]);
    const auto* s4 = apollo4->last_scaling(s4list[i]);
    const auto* s8 = apollo8->last_scaling(s8list[i]);
    if (sg == nullptr || s4 == nullptr || s8 == nullptr) continue;

    std::string bucket = "embed/head";
    const std::string& name = params[i]->name;
    if (name.rfind("layer", 0) == 0) {
      const int layer = std::atoi(name.c_str() + 5);
      const char* depth = layer < cfg.n_layers / 3 ? "early"
                          : layer < 2 * cfg.n_layers / 3 ? "middle"
                                                         : "late";
      const bool attn = name.find(".w_") == std::string::npos;
      bucket = std::string(depth) + (attn ? " attention" : " mlp");
    }
    const double dim = static_cast<double>(
        std::min(params[i]->value.rows(), params[i]->value.cols()));
    auto& [r4vec, r8vec] = groups[bucket];
    for (size_t j = 0; j < sg->size(); ++j) {
      if ((*sg)[j] < 1e-8f) continue;
      r4vec.push_back(std::sqrt(4.0) * (*s4)[j] / (*sg)[j]);
      r8vec.push_back(std::sqrt(8.0) * (*s8)[j] / (*sg)[j]);
    }
    (void)dim;
  }

  std::printf("%-18s %26s %26s\n", "layer group",
              "median sqrt(n/r)*s/s  r=n/4", "median sqrt(n/r)*s/s  r=n/8");
  print_rule(100);
  for (const auto& [bucket, vecs] : groups)
    std::printf("%-18s %26.3f %26.3f\n", bucket.c_str(), median(vecs.first),
                median(vecs.second));
  print_rule(100);
  std::printf("(values near 1.0 validate Theorem A.4: the same gradient "
              "stream feeds full-rank and compressed moments)\n");
  return 0;
}
