// Table 6 reproduction: pre-training with INT8 weight quantization (group
// size 128, stochastic-rounding requantization — the Q-GaLore recipe).
// Compares each method against its Q- variant across three model sizes.
//
// Expected shape (paper): Q- variants cost a modest perplexity premium over
// their fp counterparts; Q-APOLLO(-Mini) stays at-or-better than fp AdamW
// while halving weight memory again.
#include "core/quantized_weights.h"
#include "exp_common.h"
#include "sysmodel/memory_model.h"

using namespace apollo;
using namespace apollo::bench;

namespace {

double run_quantized(const Method& method, const nn::LlamaConfig& cfg,
                     int nsteps) {
  nn::LlamaModel model(cfg, 42);
  data::SyntheticCorpus corpus({});
  auto opt = method.make(std::max(1, cfg.hidden / 4), 299);
  core::QuantizedWeightStore store(model.parameters(), 17);
  train::TrainConfig tc;
  tc.steps = nsteps;
  tc.batch = 4;
  tc.lr = method.lr;
  train::Trainer t(model, *opt, corpus, tc);
  t.set_quantized_weights(&store);
  return t.run().final_perplexity;
}

}  // namespace

int main() {
  obs::BenchReport::open("table6_quantized", quick_mode());
  std::printf("Table 6 — INT8 weight-quantized pre-training (group 128, "
              "stochastic rounding)\n");
  print_rule(110);

  const SizePoint sizes[] = {
      {"60M", nn::llama_60m_proxy(), 250},
      {"130M", nn::llama_130m_proxy(), 350},
      {"350M", nn::llama_350m_proxy(), 500},
  };

  struct Row {
    Method method;
    bool quantized;
    sysmodel::Method kind;
    int wbits;
  };
  const Row rows[] = {
      {m_adamw(), false, sysmodel::Method::kAdamW, 16},
      {m_galore(), false, sysmodel::Method::kGaLore, 16},
      {m_galore(), true, sysmodel::Method::kGaLore, 8},
      {m_apollo(), false, sysmodel::Method::kApollo, 16},
      {m_apollo(), true, sysmodel::Method::kApollo, 8},
      {m_apollo_mini(), false, sysmodel::Method::kApolloMini, 16},
      {m_apollo_mini(), true, sysmodel::Method::kApolloMini, 8},
  };

  std::printf("%-18s", "Method");
  for (const auto& s : sizes) std::printf("  %8s ppl %7s mem", s.label, s.label);
  std::printf("\n");
  print_rule(110);

  for (const auto& row : rows) {
    std::string label = (row.quantized ? "Q-" : "") + row.method.name;
    std::printf("%-18s", label.c_str());
    std::fflush(stdout);
    for (const auto& s : sizes) {
      const int nsteps = steps(s.train_steps);
      const double ppl = row.quantized
                             ? run_quantized(row.method, s.config, nsteps)
                             : run_pretrain(row.method, s.config, nsteps)
                                   .result.final_perplexity;
      // Paper-scale memory (weights + states) for this method/bits.
      sysmodel::GpuModelSpec spec =
          std::string(s.label) == "60M" ? sysmodel::spec_llama_60m()
          : std::string(s.label) == "130M" ? sysmodel::spec_llama_130m()
                                           : sysmodel::spec_llama_350m();
      sysmodel::MethodSpec ms;
      ms.method = row.kind;
      ms.rank = row.kind == sysmodel::Method::kApolloMini ? 1 : spec.hidden / 4;
      ms.weight_bits = row.wbits;
      const auto mem = sysmodel::estimate_memory(spec, ms, 1);
      std::printf("  %12.2f %8.2fG", ppl,
                  static_cast<double>(mem.weights + mem.optimizer_states) /
                      (1024.0 * 1024.0 * 1024.0));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  print_rule(110);
  return 0;
}
