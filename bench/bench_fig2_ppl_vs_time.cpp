// Fig. 2 reproduction: validation perplexity vs. *wall-clock* for 7B
// pre-training under a fixed time budget. Perplexity trajectories come from
// live proxy training; the wall-clock axis comes from the calibrated
// step-time model at true 7B scale, where each method runs at its own
// maximum micro-batch under the 80 GB cap (AdamW: small micro-batch + no
// projector cost; GaLore: bigger batch but a 600 s SVD every 200 steps;
// APOLLO/Mini: biggest batch, no SVD).
//
// Expected shape (paper): within the fixed budget APOLLO completes ~3× more
// steps than AdamW and ends at the best perplexity; GaLore sits between;
// midway through, APOLLO's curve crosses below GaLore's.
#include "exp_common.h"
#include "sysmodel/throughput_model.h"

using namespace apollo;
using namespace apollo::bench;

int main() {
  obs::BenchReport::open("fig2_ppl_vs_time", quick_mode());
  const auto cfg = nn::llama_7b_proxy();
  const int nsteps = steps(600);
  const int eval_every = std::max(1, nsteps / 12);
  std::printf("Fig. 2 — validation ppl vs. simulated wall-clock (7B scale "
              "timing, %d proxy steps)\n", nsteps);
  print_rule(100);

  struct Series {
    Method method;
    sysmodel::Method kind;
    int64_t rank7b;
    bool svd;
    bool layerwise;
  };
  const Series series[] = {
      {m_adamw(), sysmodel::Method::kAdamW, 0, false, false},
      {m_galore(), sysmodel::Method::kGaLore, 1024, true, true},
      {m_apollo(), sysmodel::Method::kApollo, 256, false, true},
      {m_apollo_mini(), sysmodel::Method::kApolloMini, 1, false, true},
  };

  const auto model7b = sysmodel::spec_llama_7b();
  sysmodel::GpuSpec gpu;

  std::printf("%-14s %12s %14s %16s\n", "Method", "micro-batch",
              "sec/step (7B)", "steps in 15 days");
  print_rule(100);
  struct Curve {
    std::string name;
    double sec_per_step;
    std::vector<train::EvalPoint> points;
  };
  std::vector<Curve> curves;
  for (const auto& s : series) {
    sysmodel::MethodSpec ms;
    ms.method = s.kind;
    ms.rank = s.rank7b;
    ms.layerwise_grad_update = s.layerwise;
    const auto thr = sysmodel::end_to_end_throughput(model7b, ms, gpu,
                                                     /*total_batch=*/512,
                                                     s.svd, 200);
    const double sec_per_step =
        512.0 * model7b.seq_len / thr.tokens_per_s;
    const double budget_s = 15.0 * 24 * 3600;
    std::printf("%-14s %12lld %14.2f %16.0f\n", s.method.name.c_str(),
                static_cast<long long>(thr.micro_batch), sec_per_step,
                budget_s / sec_per_step);

    auto run = run_pretrain(s.method, cfg, nsteps, 4, eval_every);
    curves.push_back({s.method.name, sec_per_step, run.result.curve});
  }

  print_rule(100);
  std::printf("Series (simulated hours → ppl); each method advances at its "
              "own step rate:\n");
  for (const auto& c : curves) {
    std::printf("%s:\n ", c.name.c_str());
    for (const auto& pt : c.points)
      std::printf(" (%.1fh, %.2f)",
                  pt.step * c.sec_per_step *
                      // Scale proxy steps onto the paper's 150K-step run so
                      // the time axis spans the 15-day budget.
                      (150000.0 / steps(600)) / 3600.0,
                  pt.perplexity);
    std::printf("\n");
  }
  print_rule(100);
  std::printf("(AdamW's series stretches over the longest wall-clock per "
              "step; APOLLO finishes the same step count ~3x sooner)\n");
  return 0;
}
