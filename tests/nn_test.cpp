// LlamaModel tests: parameter bookkeeping, forward shape/determinism,
// overfitting a fixed batch, snapshot/restore.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/llama.h"
#include "optim/adamw.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

nn::LlamaConfig tiny_config() {
  nn::LlamaConfig c;
  c.vocab = 32;
  c.hidden = 16;
  c.intermediate = 40;
  c.n_heads = 2;
  c.n_layers = 2;
  c.seq_len = 8;
  return c;
}

TEST(LlamaModel, ParamCountMatchesFormula) {
  nn::LlamaConfig c = tiny_config();
  nn::LlamaModel model(c, 1);
  EXPECT_EQ(model.param_count(), c.param_count());
  // Manual: 2·V·h + h + L·(2h + 4h² + 3·h·i)
  const int64_t expected = 2 * 32 * 16 + 16 + 2 * (2 * 16 + 4 * 256 + 3 * 16 * 40);
  EXPECT_EQ(model.param_count(), expected);
}

TEST(LlamaModel, ParameterListShapes) {
  nn::LlamaModel model(tiny_config(), 1);
  auto params = model.parameters();
  // embed + 2 layers × 9 + final norm + head
  EXPECT_EQ(params.size(), 2u + 2u * 9u + 1u);
  for (auto* p : params) {
    EXPECT_TRUE(p->value.same_shape(p->grad));
    EXPECT_FALSE(p->name.empty());
    if (!p->matrix_shaped) {
      EXPECT_EQ(p->value.rows(), 1);
    }
  }
  EXPECT_EQ(nn::total_params(params), model.param_count());
}

TEST(LlamaModel, ForwardShape) {
  nn::LlamaModel model(tiny_config(), 2);
  ag::Tape tape;
  std::vector<int32_t> ids(16, 3);  // 2 sequences of 8
  ag::Var logits = model.forward(tape, ids);
  EXPECT_EQ(tape.value(logits).rows(), 16);
  EXPECT_EQ(tape.value(logits).cols(), 32);
}

TEST(LlamaModel, DeterministicInitAndForward) {
  nn::LlamaModel m1(tiny_config(), 7), m2(tiny_config(), 7);
  std::vector<int32_t> ids(8);
  for (int i = 0; i < 8; ++i) ids[static_cast<size_t>(i)] = i % 5;
  ag::Tape t1, t2;
  const Matrix& l1 = t1.value(m1.forward(t1, ids));
  const Matrix& l2 = t2.value(m2.forward(t2, ids));
  EXPECT_TRUE(l1 == l2);
}

TEST(LlamaModel, DifferentSeedsDifferentInit) {
  nn::LlamaModel m1(tiny_config(), 7), m2(tiny_config(), 8);
  EXPECT_GT(max_abs_diff(m1.parameters()[0]->value,
                         m2.parameters()[0]->value),
            0.f);
}

TEST(LlamaModel, InitialLossNearUniform) {
  nn::LlamaModel model(tiny_config(), 3);
  ag::Tape tape;
  std::vector<int32_t> ids(8, 1), targets(8, 2);
  ag::Var loss = model.loss(tape, ids, targets);
  // Small-init transformer ⇒ near-uniform logits ⇒ loss ≈ log(vocab).
  EXPECT_NEAR(tape.value(loss)[0], std::log(32.f), 0.3f);
}

TEST(LlamaModel, OverfitsAFixedBatch) {
  nn::LlamaModel model(tiny_config(), 4);
  optim::AdamW opt;
  opt.set_lr(5e-3f);
  std::vector<int32_t> ids = {1, 5, 2, 9, 30, 7, 7, 0};
  std::vector<int32_t> targets = {5, 2, 9, 30, 7, 7, 0, 11};
  float first = 0, last = 0;
  for (int step = 0; step < 150; ++step) {
    model.zero_grads();
    ag::Tape tape;
    ag::Var loss = model.loss(tape, ids, targets);
    tape.backward(loss);
    opt.step(model.parameters());
    if (step == 0) first = tape.value(loss)[0];
    last = tape.value(loss)[0];
  }
  EXPECT_LT(last, 0.25f) << "failed to memorize a single batch";
  EXPECT_LT(last, first * 0.2f);
}

TEST(LlamaModel, ZeroGradsClears) {
  nn::LlamaModel model(tiny_config(), 5);
  std::vector<int32_t> ids(8, 1), targets(8, 2);
  model.zero_grads();
  ag::Tape tape;
  tape.backward(model.loss(tape, ids, targets));
  auto params = model.parameters();
  EXPECT_GT(frobenius_norm(params[0]->grad), 0.0);
  model.zero_grads();
  for (auto* p : params) EXPECT_DOUBLE_EQ(frobenius_norm(p->grad), 0.0);
}

TEST(LlamaModel, SnapshotRestoreRoundTrip) {
  nn::LlamaModel model(tiny_config(), 6);
  auto snap = model.snapshot();
  // Perturb.
  model.parameters()[1]->value.fill(0.5f);
  model.restore(snap);
  ag::Tape tape;
  std::vector<int32_t> ids(8, 4);
  const Matrix& l = tape.value(model.forward(tape, ids));
  nn::LlamaModel fresh(tiny_config(), 6);
  ag::Tape tape2;
  EXPECT_TRUE(l == tape2.value(fresh.forward(tape2, ids)));
}

TEST(LlamaModel, ProxyConfigsValid) {
  for (auto cfg : {nn::llama_60m_proxy(), nn::llama_130m_proxy(),
                   nn::llama_350m_proxy(), nn::llama_1b_proxy(),
                   nn::llama_7b_proxy()}) {
    EXPECT_EQ(cfg.hidden % cfg.n_heads, 0);
    EXPECT_EQ((cfg.hidden / cfg.n_heads) % 2, 0);
    EXPECT_GT(cfg.param_count(), 0);
  }
  // The ladder is strictly increasing in parameter count.
  EXPECT_LT(nn::llama_60m_proxy().param_count(),
            nn::llama_130m_proxy().param_count());
  EXPECT_LT(nn::llama_130m_proxy().param_count(),
            nn::llama_350m_proxy().param_count());
  EXPECT_LT(nn::llama_350m_proxy().param_count(),
            nn::llama_1b_proxy().param_count());
}

}  // namespace
}  // namespace apollo
