// Determinism contract of the SIMD dispatch layer (tensor/simd/simd.h):
// for a FIXED dispatch level, every kernel — and every training trajectory
// built on them — is bit-identical across thread counts and across repeated
// runs. The thread sweep uses core::set_thread_count, the programmatic
// equivalent of APOLLO_THREADS=1/2/4.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/threadpool.h"
#include "data/corpus.h"
#include "nn/llama.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/simd/simd.h"
#include "train/checkpoint.h"
#include "train/trainer.h"

namespace apollo {
namespace {

namespace simd = apollo::simd;

struct LevelGuard {
  explicit LevelGuard(simd::Level lv) { EXPECT_TRUE(simd::set_level(lv)); }
  ~LevelGuard() { simd::clear_level_override(); }
};

struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) { core::set_thread_count(n); }
  ~ThreadCountGuard() { core::set_thread_count(0); }
};

Matrix random_matrix(int64_t r, int64_t c, uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  m.fill_gaussian(rng, 0.f, 1.f);
  return m;
}

// Fingerprint of one pass over the kernel-facing ops: matmuls in all three
// transpose modes, elementwise updates, and reductions. Bit-for-bit
// comparable via Matrix::operator== and exact double equality.
struct OpsFingerprint {
  Matrix mm, mat, mbt;
  Matrix elem;
  double fro = 0, total = 0;
  std::vector<float> rnorms;

  bool operator==(const OpsFingerprint& o) const {
    return mm == o.mm && mat == o.mat && mbt == o.mbt && elem == o.elem &&
           fro == o.fro && total == o.total && rnorms == o.rnorms;
  }
};

OpsFingerprint run_ops() {
  // Odd sizes: force tail lanes and partial register tiles.
  const Matrix a = random_matrix(37, 29, 1);
  const Matrix b = random_matrix(29, 53, 2);
  const Matrix at = random_matrix(29, 37, 3);  // for Aᵀ·B
  const Matrix bt = random_matrix(53, 29, 4);  // for A·Bᵀ
  OpsFingerprint fp;
  fp.mm = matmul(a, b);
  fp.mat = matmul_at(at, b);
  fp.mbt = matmul_bt(a, bt);
  fp.elem = random_matrix(41, 17, 5);
  const Matrix x = random_matrix(41, 17, 6);
  axpy(fp.elem, 0.37f, x);
  hadamard_inplace(fp.elem, x);
  scale_inplace(fp.elem, 1.01f);
  fp.fro = frobenius_norm(fp.mm);
  fp.total = sum(fp.mat);
  fp.rnorms = row_norms(fp.mbt);
  return fp;
}

TEST(SimdDeterminism, KernelsBitIdenticalAcrossThreadsAndRuns) {
  for (simd::Level lv : simd::available_levels()) {
    LevelGuard level(lv);
    OpsFingerprint base;
    {
      ThreadCountGuard threads(1);
      base = run_ops();
      // Repeated run, same thread count: identical.
      EXPECT_TRUE(base == run_ops())
          << "rerun mismatch at level " << simd::level_name(lv);
    }
    for (int t : {2, 4}) {
      ThreadCountGuard threads(t);
      EXPECT_TRUE(base == run_ops())
          << "thread mismatch at level " << simd::level_name(lv)
          << " threads=" << t;
    }
  }
}

nn::LlamaConfig tiny_config() {
  nn::LlamaConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.intermediate = 40;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.seq_len = 8;
  return cfg;
}

// Manual short training loop that records the loss AND grad-norm streams
// (the Trainer only exposes losses); grad norm uses the same
// slot-ordered fma reduction as the fused path.
std::pair<std::vector<float>, std::vector<double>> short_run(int steps) {
  nn::LlamaModel model(tiny_config(), 11);
  data::CorpusConfig ccfg;
  ccfg.vocab = 64;
  data::SyntheticCorpus corpus(ccfg);
  data::BatchLoader loader(corpus, 2, 8, 99);
  core::FactoryOptions fo;
  fo.rank = 4;
  fo.seed = 77;
  auto opt = core::make_optimizer("apollo", fo);
  opt->set_lr(0.01f);

  std::vector<float> losses;
  std::vector<double> gnorms;
  std::vector<int32_t> ids, targets;
  for (int s = 0; s < steps; ++s) {
    loader.next(ids, targets);
    model.zero_grads();
    ag::Tape tape;
    ag::Var loss = model.loss(tape, ids, targets);
    tape.backward(loss);
    losses.push_back(tape.value(loss)[0]);
    double acc = 0;
    for (nn::Parameter* p : model.parameters()) {
      const double n = frobenius_norm(p->grad);
      acc = std::fma(n, n, acc);
    }
    gnorms.push_back(std::sqrt(acc));
    nn::ParamList params = model.parameters();
    opt->begin_step(params);
    for (size_t i = 0; i < params.size(); ++i)
      opt->step_param(*params[i], static_cast<int>(i));
    opt->end_step(params);
  }
  return {losses, gnorms};
}

TEST(SimdDeterminism, LossAndGradNormStreamsBitIdenticalPerLevel) {
  for (simd::Level lv : simd::available_levels()) {
    LevelGuard level(lv);
    const auto run1 = short_run(30);
    const auto run2 = short_run(30);
    EXPECT_EQ(run1.first, run2.first)
        << "loss stream diverged at level " << simd::level_name(lv);
    EXPECT_EQ(run1.second, run2.second)
        << "grad-norm stream diverged at level " << simd::level_name(lv);
    for (float l : run1.first) ASSERT_TRUE(std::isfinite(l));
  }
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// The ISSUE-6 contract test: a 150-step trajectory at a fixed dispatch
// level reproduces bit-for-bit — per-step losses, final weights, and the
// exact checkpoint bytes (weights + optimizer state).
TEST(SimdDeterminism, TrainingTrajectory150StepsBitIdentical) {
  const std::string dir = ::testing::TempDir();
  auto run = [&](const std::string& tag) {
    nn::LlamaModel model(tiny_config(), 11);
    data::CorpusConfig ccfg;
    ccfg.vocab = 64;
    data::SyntheticCorpus corpus(ccfg);
    core::FactoryOptions fo;
    fo.rank = 4;
    fo.update_freq = 10;
    fo.seed = 77;
    auto opt = core::make_optimizer("apollo", fo);
    train::TrainConfig tc;
    tc.steps = 150;
    tc.batch = 2;
    tc.lr = core::default_lr("apollo");
    tc.record_step_losses = true;
    train::Trainer t(model, *opt, corpus, tc);
    auto result = t.run();
    const std::string ckpt = dir + "/simd_det_" + tag + ".ckpt";
    EXPECT_TRUE(train::save_checkpoint(ckpt, model, tc.steps, opt.get()).ok);
    return std::tuple(result.step_losses, result.final_perplexity,
                      model.parameters()[1]->value, file_bytes(ckpt));
  };
  const auto r1 = run("a");
  const auto r2 = run("b");
  EXPECT_EQ(std::get<0>(r1), std::get<0>(r2)) << "step-loss stream diverged";
  EXPECT_EQ(std::get<1>(r1), std::get<1>(r2));
  EXPECT_TRUE(std::get<2>(r1) == std::get<2>(r2)) << "final weights diverged";
  ASSERT_FALSE(std::get<3>(r1).empty());
  EXPECT_EQ(std::get<3>(r1), std::get<3>(r2)) << "checkpoint bytes diverged";
}

}  // namespace
}  // namespace apollo
