// QuantizedWeightStore (Q-APOLLO weight path) tests.
#include <gtest/gtest.h>

#include "core/quantized_weights.h"
#include "linalg/svd.h"
#include "optim/galore.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

std::unique_ptr<nn::Parameter> make_param(int64_t rows, int64_t cols,
                                          uint64_t seed,
                                          bool matrix = true) {
  auto p = std::make_unique<nn::Parameter>("w", rows, cols, matrix);
  Rng rng(seed);
  p->value.fill_gaussian(rng, 0.f, 0.1f);
  return p;
}

TEST(QuantizedWeightStore, ConstructionQuantizesImmediately) {
  auto p = make_param(8, 128, 1);
  Matrix original = p->value;
  core::QuantizedWeightStore store({p.get()}, 5);
  // Visible weights now equal the dequantized INT8 values: close to, but
  // generally not identical to, the fp originals.
  EXPECT_LT(max_abs_diff(p->value, original), abs_max(original) / 100.f);
}

TEST(QuantizedWeightStore, RoundTripIsStable) {
  auto p = make_param(8, 128, 2);
  core::QuantizedWeightStore store({p.get()}, 6);
  Matrix after_init = p->value;
  // Without any update, requantize→dequantize must be a fixed point up to
  // stochastic-rounding jitter of at most one code unit.
  store.requantize_from_params();
  EXPECT_LT(max_abs_diff(p->value, after_init),
            abs_max(after_init) / 60.f);
}

TEST(QuantizedWeightStore, AbsorbsUpdates) {
  auto p = make_param(8, 128, 3);
  core::QuantizedWeightStore store({p.get()}, 7);
  Matrix before = p->value;
  // Apply a large fp update, requantize: the store must follow.
  for (int64_t i = 0; i < p->value.size(); ++i) p->value[i] += 0.5f;
  store.requantize_from_params();
  const double moved = mean(sub(p->value, before));
  EXPECT_NEAR(moved, 0.5, 0.02);
}

TEST(QuantizedWeightStore, StochasticRoundingUnbiasedOverSteps) {
  // A sub-code-unit update must survive *in expectation* across repeated
  // quantize cycles (the reason Q-GaLore uses stochastic rounding).
  auto p = make_param(1, 256, 4);
  p->value.fill(0.5f);
  p->value[0] = 1.27f;  // pins scale so one code ≈ 0.01
  core::QuantizedWeightStore store({p.get()}, 8);
  const double start = mean(p->value);
  double drift = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    store.dequantize_into_params();
    for (int64_t i = 1; i < p->value.size(); ++i)
      p->value[i] += 0.002f;  // 1/5 of a code unit per step
    store.requantize_from_params();
  }
  drift = mean(p->value) - start;
  // 200 steps × 0.002 ≈ 0.4 expected movement (minus the pinned element).
  EXPECT_NEAR(drift, 0.4, 0.08);
}

TEST(QuantizedWeightStore, OneDimParamsStayFp32) {
  auto gain = make_param(1, 64, 5, /*matrix=*/false);
  Matrix original = gain->value;
  core::QuantizedWeightStore store({gain.get()}, 9);
  EXPECT_TRUE(gain->value == original);  // untouched, bit-exact
  store.requantize_from_params();
  EXPECT_TRUE(gain->value == original);
}

TEST(QuantizedWeightStore, WeightBytesAccounting) {
  auto w = make_param(8, 128, 6);           // 1024 elems → 8 groups
  auto gain = make_param(1, 16, 7, false);  // fp32
  core::QuantizedWeightStore store({w.get(), gain.get()}, 10);
  EXPECT_EQ(store.weight_bytes(), 1024 + 8 * 4 + 16 * 4);
}

TEST(Fira, SvdResidualOrthogonalToSubspace) {
  // With the orthonormal SVD projector, Fira's residual G − PᵀPG must be
  // orthogonal to the back-projected low-rank component.
  Matrix g(8, 24);
  Rng rng(11);
  g.fill_gaussian(rng);
  Matrix p = svd_left_projector(g, 3);
  Matrix low = project_back(project(g, p, ProjectionSide::kLeft), p,
                            ProjectionSide::kLeft);
  Matrix residual = sub(g, low);
  double dot = 0;
  for (int64_t i = 0; i < g.size(); ++i)
    dot += static_cast<double>(residual[i]) * low[i];
  EXPECT_NEAR(dot / (frobenius_norm(residual) * frobenius_norm(low)), 0.0,
              1e-3);
}

TEST(GaLore8bit, StateBytesBelowFp32GaLore) {
  auto p1 = make_param(32, 128, 12);
  auto p2 = make_param(32, 128, 12);
  Rng rng(13);
  p1->grad.fill_gaussian(rng, 0.f, 0.1f);
  p2->grad = p1->grad;
  optim::GaloreConfig cfg;
  cfg.rank = 8;
  auto fp = optim::GaLore::galore(cfg);
  auto q8 = optim::GaLore::galore_8bit(cfg);
  fp->set_lr(1e-3f);
  q8->set_lr(1e-3f);
  fp->step({p1.get()});
  q8->step({p2.get()});
  EXPECT_LT(q8->state_bytes(), fp->state_bytes());
  // And the 8-bit step still tracks the fp32 one at coarse resolution.
  EXPECT_LT(max_abs_diff(p1->value, p2->value), 5e-3f);
}

TEST(GaLore8bit, TrainsOnRepeatedSteps) {
  auto p = make_param(32, 128, 14);
  optim::GaloreConfig cfg;
  cfg.rank = 8;
  auto opt = optim::GaLore::galore_8bit(cfg);
  opt->set_lr(1e-2f);
  Rng rng(15);
  Matrix start = p->value;
  for (int s = 0; s < 10; ++s) {
    p->grad.fill_gaussian(rng, 0.f, 0.1f);
    opt->step({p.get()});
  }
  EXPECT_GT(max_abs_diff(p->value, start), 1e-3f);
}

}  // namespace
}  // namespace apollo
