// InferenceSession tests — most importantly, token-by-token decode must
// reproduce the tape forward's logits, pinning the two implementations of
// the architecture to each other.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/tape.h"
#include "nn/inference.h"

namespace apollo {
namespace {

nn::LlamaConfig tiny() {
  nn::LlamaConfig c;
  c.vocab = 48;
  c.hidden = 16;
  c.intermediate = 40;
  c.n_heads = 2;
  c.n_layers = 2;
  c.seq_len = 8;
  return c;
}

TEST(Inference, MatchesTapeForwardExactly) {
  nn::LlamaModel model(tiny(), 3);
  const std::vector<int32_t> window = {5, 1, 44, 2, 2, 30, 7, 19};

  // Tape path: full-window forward.
  ag::Tape tape;
  const Matrix& tape_logits = tape.value(model.forward(tape, window));

  // Incremental path: one token at a time.
  nn::InferenceSession session(model);
  for (size_t t = 0; t < window.size(); ++t) {
    const auto& logits = session.step(window[t]);
    for (int64_t v = 0; v < tape_logits.cols(); ++v)
      EXPECT_NEAR(logits[static_cast<size_t>(v)],
                  tape_logits.at(static_cast<int64_t>(t), v), 5e-4f)
          << "position " << t << " vocab " << v;
  }
}

TEST(Inference, PromptReturnsLastPositionLogits) {
  nn::LlamaModel model(tiny(), 4);
  const std::vector<int32_t> window = {1, 2, 3, 4};
  nn::InferenceSession a(model), b(model);
  const auto& via_prompt = a.prompt(window);
  std::vector<float> expected;
  for (int32_t t : window) expected = b.step(t);
  EXPECT_EQ(via_prompt, expected);
}

TEST(Inference, ResetRestartsCleanly) {
  nn::LlamaModel model(tiny(), 5);
  nn::InferenceSession s(model);
  s.step(1);
  s.step(2);
  const auto after_two = s.step(3);
  s.reset();
  EXPECT_EQ(s.position(), 0);
  s.step(1);
  s.step(2);
  EXPECT_EQ(s.step(3), after_two);
}

TEST(Inference, ReflectsWeightUpdates) {
  // The session reads live weights: mutating the model changes logits.
  nn::LlamaModel model(tiny(), 6);
  nn::InferenceSession s(model);
  const auto before = s.step(7);
  model.parameters().back()->value.fill(0.1f);  // clobber lm_head
  s.reset();
  const auto after = s.step(7);
  EXPECT_NE(before, after);
}

TEST(Inference, LongDecodeStaysFinite) {
  // Slide far past the trained window; outputs must remain finite.
  nn::LlamaModel model(tiny(), 7);
  nn::InferenceSession s(model);
  for (int t = 0; t < 40; ++t) {  // 5× the window
    const auto& logits = s.step(t % 48);
    for (float v : logits) ASSERT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(s.position(), 40);
}

TEST(Inference, FirstTokenDependsOnlyOnItself) {
  // With an empty cache, the first step equals the tape forward of a
  // window whose later tokens are arbitrary (causality).
  nn::LlamaModel model(tiny(), 8);
  nn::InferenceSession s(model);
  const auto logits = s.step(9);
  ag::Tape tape;
  const Matrix& ref =
      tape.value(model.forward(tape, {9, 0, 0, 0, 0, 0, 0, 0}));
  for (int64_t v = 0; v < ref.cols(); ++v)
    EXPECT_NEAR(logits[static_cast<size_t>(v)], ref.at(0, v), 5e-4f);
}

}  // namespace
}  // namespace apollo
