// Synthetic corpus and downstream-task generator tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "data/corpus.h"
#include "data/tasks.h"

namespace apollo {
namespace {

TEST(Corpus, DeterministicGivenSeeds) {
  data::CorpusConfig cfg;
  data::SyntheticCorpus c1(cfg), c2(cfg);
  Rng r1(5), r2(5);
  std::vector<int32_t> s1, s2;
  c1.sample_sequence(r1, 64, s1);
  c2.sample_sequence(r2, 64, s2);
  EXPECT_EQ(s1, s2);
}

TEST(Corpus, TokensInRange) {
  data::SyntheticCorpus c({});
  Rng rng(1);
  std::vector<int32_t> s;
  for (int i = 0; i < 20; ++i) {
    c.sample_sequence(rng, 100, s);
    for (int32_t t : s) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, c.config().vocab);
    }
  }
}

TEST(Corpus, UnigramIsZipfSkewed) {
  data::SyntheticCorpus c({});
  Rng rng(2);
  std::vector<int32_t> s;
  std::map<int32_t, int> freq;
  for (int i = 0; i < 200; ++i) {
    c.sample_sequence(rng, 128, s);
    for (int32_t t : s) ++freq[t];
  }
  // Head tokens must be far more frequent than tail tokens.
  int head = 0, tail = 0;
  for (auto [tok, n] : freq) (tok < 16 ? head : tail) += n;
  EXPECT_GT(head, tail / 4) << "distribution not skewed";
  // And the stream must not be degenerate: many distinct tokens appear.
  EXPECT_GT(freq.size(), 50u);
}

TEST(Corpus, MarkovStructureIsLearnableSignal) {
  // The empirical bigram distribution must be far from independent:
  // P(next = top_successor(prev)) should beat the unigram base rate.
  data::SyntheticCorpus c({});
  Rng rng(3);
  std::vector<int32_t> s;
  int hits = 0, total = 0;
  for (int i = 0; i < 300; ++i) {
    c.sample_sequence(rng, 64, s);
    for (size_t j = 1; j < s.size(); ++j) {
      ++total;
      // Count a hit when next matches the top successor under any topic.
      for (int topic = 0; topic < c.config().n_topics; ++topic)
        if (s[j] == c.top_successor(topic, s[j - 1])) {
          ++hits;
          break;
        }
    }
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.15);
}

TEST(Corpus, TopSuccessorStable) {
  data::SyntheticCorpus c({});
  EXPECT_EQ(c.top_successor(0, 5), c.top_successor(0, 5));
  EXPECT_LT(c.top_successor(3, 100), c.config().vocab);
}

TEST(BatchLoader, ShiftedTargets) {
  data::SyntheticCorpus c({});
  data::BatchLoader loader(c, 2, 16, 9);
  std::vector<int32_t> ids, targets;
  loader.next(ids, targets);
  ASSERT_EQ(ids.size(), 32u);
  ASSERT_EQ(targets.size(), 32u);
  // Within each sequence, target[i] == id[i+1].
  for (int b = 0; b < 2; ++b)
    for (int i = 0; i < 15; ++i)
      EXPECT_EQ(targets[static_cast<size_t>(b * 16 + i)],
                ids[static_cast<size_t>(b * 16 + i + 1)]);
}

TEST(BatchLoader, StreamAdvances) {
  data::SyntheticCorpus c({});
  data::BatchLoader loader(c, 1, 16, 10);
  std::vector<int32_t> a, b, t;
  loader.next(a, t);
  loader.next(b, t);
  EXPECT_NE(a, b);
}

TEST(ValidationSet, DeterministicAndSized) {
  data::SyntheticCorpus c({});
  auto v1 = data::make_validation_set(c, 3, 2, 8, 42);
  auto v2 = data::make_validation_set(c, 3, 2, 8, 42);
  ASSERT_EQ(v1.ids.size(), 3u);
  EXPECT_EQ(v1.ids[0], v2.ids[0]);
  EXPECT_EQ(v1.targets[2], v2.targets[2]);
  EXPECT_EQ(v1.ids[0].size(), 16u);
}

class CommonsenseTaskTest
    : public ::testing::TestWithParam<data::CommonsenseTask> {};

TEST_P(CommonsenseTaskTest, ExamplesWellFormed) {
  data::SyntheticCorpus c({});
  data::TaskGenerator gen(c, 11);
  for (int i = 0; i < 50; ++i) {
    auto ex = gen.sample_commonsense(GetParam(), 12);
    ASSERT_GT(ex.tokens.size(), 2u);
    EXPECT_EQ(ex.answer_pos, static_cast<int>(ex.tokens.size()) - 1);
    EXPECT_EQ(ex.tokens.back(), ex.answer);
    // QUERY marker sits just before the answer.
    EXPECT_EQ(ex.tokens[static_cast<size_t>(ex.answer_pos - 1)],
              c.config().vocab - 1);
    if (!ex.choices.empty()) {
      EXPECT_NE(std::find(ex.choices.begin(), ex.choices.end(), ex.answer),
                ex.choices.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTasks, CommonsenseTaskTest,
    ::testing::Values(data::CommonsenseTask::kCopyFirst,
                      data::CommonsenseTask::kCopyLast,
                      data::CommonsenseTask::kMaxToken,
                      data::CommonsenseTask::kMajority,
                      data::CommonsenseTask::kParity,
                      data::CommonsenseTask::kSuccessor,
                      data::CommonsenseTask::kSecondToken,
                      data::CommonsenseTask::kAlternation));

TEST(Tasks, CopyFirstRuleHolds) {
  data::SyntheticCorpus c({});
  data::TaskGenerator gen(c, 12);
  for (int i = 0; i < 20; ++i) {
    auto ex = gen.sample_commonsense(data::CommonsenseTask::kCopyFirst, 10);
    EXPECT_EQ(ex.answer, ex.tokens.front());
  }
}

TEST(Tasks, MaxTokenRuleHolds) {
  data::SyntheticCorpus c({});
  data::TaskGenerator gen(c, 13);
  for (int i = 0; i < 20; ++i) {
    auto ex = gen.sample_commonsense(data::CommonsenseTask::kMaxToken, 10);
    const auto prompt_end = ex.tokens.begin() + ex.answer_pos - 1;
    EXPECT_EQ(ex.answer, *std::max_element(ex.tokens.begin(), prompt_end));
  }
}

TEST(Tasks, MajorityRuleHolds) {
  data::SyntheticCorpus c({});
  data::TaskGenerator gen(c, 14);
  for (int i = 0; i < 20; ++i) {
    auto ex = gen.sample_commonsense(data::CommonsenseTask::kMajority, 11);
    std::map<int32_t, int> freq;
    for (int j = 0; j < ex.answer_pos - 1; ++j)
      ++freq[ex.tokens[static_cast<size_t>(j)]];
    const auto best = std::max_element(
        freq.begin(), freq.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    EXPECT_EQ(ex.answer, best->first);
  }
}

TEST(Tasks, MmluExamplesWellFormed) {
  data::SyntheticCorpus c({});
  data::TaskGenerator gen(c, 15);
  for (auto d : {data::MmluDomain::kStem, data::MmluDomain::kSocial,
                 data::MmluDomain::kHumanities, data::MmluDomain::kOther}) {
    for (int i = 0; i < 30; ++i) {
      auto ex = gen.sample_mmlu(d, 8);
      ASSERT_EQ(ex.choices.size(), 4u);
      EXPECT_NE(std::find(ex.choices.begin(), ex.choices.end(), ex.answer),
                ex.choices.end())
          << "correct answer missing from options";
      EXPECT_EQ(ex.tokens.back(), ex.answer);
    }
  }
}

TEST(Tasks, BatchPackingTargetsOnlyAtAnswer) {
  data::SyntheticCorpus c({});
  data::TaskGenerator gen(c, 16);
  auto b = gen.make_commonsense_batch(data::CommonsenseTask::kCopyLast, 4, 32);
  ASSERT_EQ(b.ids.size(), 4u * 32u);
  ASSERT_EQ(b.answer_rows.size(), 4u);
  int non_ignored = 0;
  for (int32_t t : b.targets) non_ignored += (t >= 0);
  EXPECT_EQ(non_ignored, 4);
  for (int row : b.answer_rows)
    EXPECT_GE(b.targets[static_cast<size_t>(row)], 0);
}

TEST(Tasks, TaskNamesMapToPaperTables) {
  EXPECT_STREQ(data::task_name(data::CommonsenseTask::kCopyFirst), "WG");
  EXPECT_STREQ(data::task_name(data::CommonsenseTask::kAlternation), "Arc-C");
  EXPECT_STREQ(data::domain_name(data::MmluDomain::kStem), "STEM");
}

}  // namespace
}  // namespace apollo
