// SVD and random-projection tests, including parameterized property tests of
// the Johnson–Lindenstrauss norm-preservation bound (Theorem A.1) that
// underpins APOLLO's theory.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/projection.h"
#include "linalg/svd.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

Matrix random_matrix(int64_t r, int64_t c, uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  m.fill_gaussian(rng);
  return m;
}

Matrix reconstruct(const SvdResult& d) {
  // U · diag(σ) · Vᵀ
  Matrix us = d.u;
  for (int64_t i = 0; i < us.rows(); ++i)
    for (int64_t j = 0; j < us.cols(); ++j)
      us.at(i, j) *= d.sigma[static_cast<size_t>(j)];
  return matmul_bt(us, d.v);
}

TEST(Svd, ReconstructsTall) {
  Matrix a = random_matrix(12, 8, 1);
  SvdResult d = svd(a);
  EXPECT_LT(max_abs_diff(reconstruct(d), a), 1e-3f);
}

TEST(Svd, ReconstructsWide) {
  Matrix a = random_matrix(6, 15, 2);
  SvdResult d = svd(a);
  EXPECT_LT(max_abs_diff(reconstruct(d), a), 1e-3f);
}

TEST(Svd, SingularValuesDescendingNonNegative) {
  Matrix a = random_matrix(10, 10, 3);
  SvdResult d = svd(a);
  for (size_t i = 0; i + 1 < d.sigma.size(); ++i) {
    EXPECT_GE(d.sigma[i], d.sigma[i + 1]);
    EXPECT_GE(d.sigma[i], 0.f);
  }
}

TEST(Svd, ColumnsOrthonormal) {
  Matrix a = random_matrix(9, 5, 4);
  SvdResult d = svd(a);
  Matrix utu = matmul_at(d.u, d.u);
  Matrix vtv = matmul_at(d.v, d.v);
  for (int64_t i = 0; i < utu.rows(); ++i)
    for (int64_t j = 0; j < utu.cols(); ++j) {
      const float expect = i == j ? 1.f : 0.f;
      EXPECT_NEAR(utu.at(i, j), expect, 1e-3f);
      EXPECT_NEAR(vtv.at(i, j), expect, 1e-3f);
    }
}

TEST(Svd, MatchesKnownDiagonal) {
  Matrix a(3, 3);
  a.at(0, 0) = 3.f;
  a.at(1, 1) = 1.f;
  a.at(2, 2) = 2.f;
  SvdResult d = svd(a);
  EXPECT_NEAR(d.sigma[0], 3.f, 1e-4f);
  EXPECT_NEAR(d.sigma[1], 2.f, 1e-4f);
  EXPECT_NEAR(d.sigma[2], 1.f, 1e-4f);
}

TEST(Svd, LeftProjectorShapeAndOrthonormalRows) {
  Matrix a = random_matrix(8, 20, 5);
  Matrix p = svd_left_projector(a, 3);
  ASSERT_EQ(p.rows(), 3);
  ASSERT_EQ(p.cols(), 8);
  Matrix ppt = matmul_bt(p, p);
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 3; ++j)
      EXPECT_NEAR(ppt.at(i, j), i == j ? 1.f : 0.f, 1e-3f);
}

TEST(Svd, ProjectorCapturesDominantSubspace) {
  // Rank-1 matrix: the rank-1 SVD projector should capture ~all energy.
  Matrix u = random_matrix(10, 1, 6);
  Matrix v = random_matrix(1, 24, 7);
  Matrix a = matmul(u, v);
  Matrix p = svd_left_projector(a, 1);
  Matrix r = project(a, p, ProjectionSide::kLeft);
  EXPECT_NEAR(frobenius_norm(r) / frobenius_norm(a), 1.0, 1e-3);
}

TEST(Projection, SeedDeterminism) {
  Matrix p1 = gaussian_projection(4, 16, 99);
  Matrix p2 = gaussian_projection(4, 16, 99);
  EXPECT_TRUE(p1 == p2);
  Matrix p3 = gaussian_projection(4, 16, 100);
  EXPECT_FALSE(p1 == p3);
}

TEST(Projection, VarianceIsOneOverR) {
  const int64_t r = 8, m = 64;
  Matrix p = gaussian_projection(r, m, 5);
  double s2 = 0;
  for (int64_t i = 0; i < p.size(); ++i)
    s2 += static_cast<double>(p[i]) * p[i];
  EXPECT_NEAR(s2 / static_cast<double>(p.size()), 1.0 / r, 0.02);
}

TEST(Projection, NaturalSidePicksSmallerDim) {
  EXPECT_EQ(natural_side(4, 10), ProjectionSide::kLeft);
  EXPECT_EQ(natural_side(10, 4), ProjectionSide::kRight);
  EXPECT_EQ(natural_side(5, 5), ProjectionSide::kLeft);
}

TEST(Projection, ProjectShapes) {
  Matrix g = random_matrix(6, 20, 8);
  Matrix p = gaussian_projection(2, 6, 9);
  Matrix r = project(g, p, ProjectionSide::kLeft);
  EXPECT_EQ(r.rows(), 2);
  EXPECT_EQ(r.cols(), 20);
  Matrix back = project_back(r, p, ProjectionSide::kLeft);
  EXPECT_EQ(back.rows(), 6);
  EXPECT_EQ(back.cols(), 20);

  Matrix g2 = random_matrix(20, 6, 10);
  Matrix p2 = gaussian_projection(2, 6, 11);
  Matrix r2 = project(g2, p2, ProjectionSide::kRight);
  EXPECT_EQ(r2.rows(), 20);
  EXPECT_EQ(r2.cols(), 2);
  Matrix back2 = project_back(r2, p2, ProjectionSide::kRight);
  EXPECT_EQ(back2.rows(), 20);
  EXPECT_EQ(back2.cols(), 6);
}

TEST(Projection, ChannelCount) {
  EXPECT_EQ(channel_count(4, 10, ProjectionSide::kLeft), 10);
  EXPECT_EQ(channel_count(10, 4, ProjectionSide::kRight), 10);
}

// --- Theorem A.1 property test -------------------------------------------
// With P ∈ R^{r×m}, P_ij ~ N(0, 1/r):  Pr[|‖Px‖²/‖x‖² − 1| ≥ ε] ≤
// 2·exp(−rε²/8). We check the empirical failure rate against the bound for
// several ranks.
class JlBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(JlBoundTest, NormPreservationFailureRateWithinBound) {
  const int r = GetParam();
  const int m = 64;
  const double eps = 0.5;
  const int trials = 400;
  Rng rng(2024 + static_cast<uint64_t>(r));
  int failures = 0;
  for (int tcase = 0; tcase < trials; ++tcase) {
    Matrix x(m, 1);
    x.fill_gaussian(rng);
    Matrix p = gaussian_projection(r, m, rng.next_u64());
    const double orig = frobenius_norm(x);
    const double proj = frobenius_norm(matmul(p, x));
    const double ratio2 = (proj * proj) / (orig * orig);
    if (std::fabs(ratio2 - 1.0) >= eps) ++failures;
  }
  const double bound = 2.0 * std::exp(-r * eps * eps / 8.0);
  const double rate = static_cast<double>(failures) / trials;
  // Allow generous sampling slack above the theoretical bound.
  EXPECT_LE(rate, std::min(1.0, bound * 1.5 + 0.03))
      << "rank " << r << ": empirical " << rate << " vs bound " << bound;
}

INSTANTIATE_TEST_SUITE_P(Ranks, JlBoundTest,
                         ::testing::Values(4, 8, 16, 32, 64));

// E[‖Px‖²] = ‖x‖² regardless of rank (unbiasedness, the mean version of
// Theorem A.1).
class JlUnbiasedTest : public ::testing::TestWithParam<int> {};

TEST_P(JlUnbiasedTest, ProjectedNormUnbiased) {
  const int r = GetParam();
  const int m = 48;
  Rng rng(77);
  Matrix x(m, 1);
  x.fill_gaussian(rng);
  const double orig2 = std::pow(frobenius_norm(x), 2);
  double acc = 0;
  const int trials = 600;
  for (int tcase = 0; tcase < trials; ++tcase) {
    Matrix p = gaussian_projection(r, m, rng.next_u64());
    acc += std::pow(frobenius_norm(matmul(p, x)), 2);
  }
  EXPECT_NEAR(acc / trials / orig2, 1.0, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Ranks, JlUnbiasedTest, ::testing::Values(1, 2, 8, 32));

}  // namespace
}  // namespace apollo
