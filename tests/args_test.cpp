// CLI argument-parser tests.
#include <gtest/gtest.h>

#include "../tools/args.h"

namespace apollo::tools {
namespace {

Args parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()),
              const_cast<char**>(argv.data()));
}

TEST(Args, ValuesAndDefaults) {
  auto a = parse({"--steps", "100", "--lr", "0.01", "--name", "apollo"});
  EXPECT_EQ(a.get_int("steps", 5), 100);
  EXPECT_DOUBLE_EQ(a.get_double("lr", 1.0), 0.01);
  EXPECT_EQ(a.get("name", "x"), "apollo");
  EXPECT_EQ(a.get_int("missing", 7), 7);
  EXPECT_EQ(a.get("missing2", "dflt"), "dflt");
}

TEST(Args, BareFlags) {
  auto a = parse({"--verbose", "--steps", "3"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("quiet"));
  EXPECT_EQ(a.get_int("steps", 0), 3);
}

TEST(Args, FlagFollowedByFlagIsBare) {
  auto a = parse({"--quantize", "--steps", "3"});
  EXPECT_TRUE(a.has("quantize"));
  EXPECT_EQ(a.get("quantize", "x"), "");
}

TEST(Args, UnknownDetection) {
  auto a = parse({"--known", "1", "--typo", "2"});
  (void)a.get_int("known", 0);
  auto unknown = a.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "--typo");
}

TEST(Args, Positional) {
  auto a = parse({"file1.txt", "--x", "1", "file2.txt"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "file1.txt");
  EXPECT_EQ(a.positional()[1], "file2.txt");
}

TEST(Args, NegativeNumbersAsValues) {
  // "-1" does not start with "--", so it parses as a value.
  auto a = parse({"--rank", "-1"});
  EXPECT_EQ(a.get_int("rank", 0), -1);
}

}  // namespace
}  // namespace apollo::tools
