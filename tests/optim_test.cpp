// Baseline-optimizer tests: single-step algebra against hand calculations,
// state accounting, and the structural properties each method promises.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/svd.h"
#include "optim/adam8bit.h"
#include "optim/adam_mini.h"
#include "optim/adamw.h"
#include "optim/galore.h"
#include "optim/lowrank.h"
#include "optim/norm_limiter.h"
#include "optim/sgd.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

// A free-standing parameter with a fixed gradient.
std::unique_ptr<nn::Parameter> make_param(int64_t rows, int64_t cols,
                                          uint64_t seed, float gscale = 0.1f,
                                          bool matrix = true) {
  auto p = std::make_unique<nn::Parameter>("w", rows, cols, matrix);
  Rng rng(seed);
  p->value.fill_gaussian(rng, 0.f, 1.f);
  p->grad.fill_gaussian(rng, 0.f, gscale);
  return p;
}

TEST(AdamW, FirstStepIsSignedLr) {
  // With bias correction, step 1 moves each weight by ≈ lr·sign(g).
  auto p = make_param(3, 4, 1);
  Matrix before = p->value;
  optim::AdamW opt;
  opt.set_lr(0.01f);
  opt.step({p.get()});
  for (int64_t i = 0; i < p->value.size(); ++i) {
    const float delta = p->value[i] - before[i];
    EXPECT_NEAR(delta, -0.01f * (p->grad[i] > 0 ? 1.f : -1.f), 1e-4f);
  }
}

TEST(AdamW, HandComputedTwoSteps) {
  // Scalar hand check over two steps with constant gradient g = 0.5.
  auto p = std::make_unique<nn::Parameter>("w", 1, 1);
  p->value[0] = 1.f;
  p->grad[0] = 0.5f;
  optim::AdamHyper hp;
  optim::AdamW opt(hp);
  opt.set_lr(0.1f);
  opt.step({p.get()});
  // m=0.05, v=0.00025; mhat=0.5, vhat=0.25 → step = 0.1·0.5/0.5 = 0.1
  EXPECT_NEAR(p->value[0], 0.9f, 1e-4f);
  opt.step({p.get()});
  EXPECT_NEAR(p->value[0], 0.8f, 1e-3f);  // constant gradient keeps ratio 1
}

TEST(AdamW, WeightDecayDecoupled) {
  auto p = std::make_unique<nn::Parameter>("w", 1, 1);
  p->value[0] = 2.f;
  p->grad[0] = 0.f;
  optim::AdamHyper hp;
  hp.weight_decay = 0.1f;
  optim::AdamW opt(hp);
  opt.set_lr(0.5f);
  opt.step({p.get()});
  // Zero gradient ⇒ pure decay: w ← w − lr·wd·w = 2 − 0.5·0.1·2 = 1.9
  EXPECT_NEAR(p->value[0], 1.9f, 1e-5f);
}

TEST(AdamW, StateBytesIsTwoFloatsPerParam) {
  auto p = make_param(8, 16, 2);
  optim::AdamW opt;
  opt.step({p.get()});
  EXPECT_EQ(opt.state_bytes(), 2 * 8 * 16 * 4);
}

TEST(Sgd, PlainStep) {
  auto p = std::make_unique<nn::Parameter>("w", 1, 2);
  p->value[0] = 1.f; p->value[1] = -1.f;
  p->grad[0] = 0.5f; p->grad[1] = -0.25f;
  optim::Sgd opt;
  opt.set_lr(0.1f);
  opt.step({p.get()});
  EXPECT_NEAR(p->value[0], 0.95f, 1e-6f);
  EXPECT_NEAR(p->value[1], -0.975f, 1e-6f);
  EXPECT_EQ(opt.state_bytes(), 0);  // SGD truly holds no state
}

TEST(Sgd, MomentumAccumulates) {
  auto p = std::make_unique<nn::Parameter>("w", 1, 1);
  p->value[0] = 0.f;
  p->grad[0] = 1.f;
  optim::Sgd opt(0.9f);
  opt.set_lr(0.1f);
  opt.step({p.get()});
  EXPECT_NEAR(p->value[0], -0.1f, 1e-6f);   // buf = 1
  opt.step({p.get()});
  EXPECT_NEAR(p->value[0], -0.29f, 1e-6f);  // buf = 1.9
  EXPECT_EQ(opt.state_bytes(), 4);
}

TEST(AdamMini, MatchesAdamWhenRowIsUniform) {
  // If all |g| in a row are equal, the row-mean V equals element-wise V and
  // Adam-mini reproduces AdamW exactly.
  auto p = std::make_unique<nn::Parameter>("w", 2, 4);
  auto q = std::make_unique<nn::Parameter>("w", 2, 4);
  for (int64_t i = 0; i < 8; ++i) {
    p->value[i] = q->value[i] = 1.f;
    const float g = (i < 4 ? 0.5f : -0.25f) * ((i % 2) ? 1.f : -1.f);
    p->grad[i] = q->grad[i] = g;
  }
  optim::AdamMini mini;
  optim::AdamW adam;
  mini.set_lr(0.01f);
  adam.set_lr(0.01f);
  mini.step({p.get()});
  adam.step({q.get()});
  EXPECT_LT(max_abs_diff(p->value, q->value), 1e-5f);
}

TEST(AdamMini, StateIsHalfOfAdam) {
  auto p = make_param(8, 32, 3);
  optim::AdamMini opt;
  opt.step({p.get()});
  // M: 8·32 floats, V: 8 floats.
  EXPECT_EQ(opt.state_bytes(), (8 * 32 + 8) * 4);
}

TEST(Adam8bit, TracksAdamW) {
  auto p = make_param(4, 64, 4);
  auto q = std::make_unique<nn::Parameter>("w", 4, 64);
  q->value = p->value;
  q->grad = p->grad;
  optim::Adam8bit a8;
  optim::AdamW a32;
  a8.set_lr(0.01f);
  a32.set_lr(0.01f);
  for (int s = 0; s < 10; ++s) {
    a8.step({p.get()});
    a32.step({q.get()});
  }
  // Per-element trajectories can diverge where m ≈ 0 (a sign flip under
  // quantization is genuine 8-bit Adam behaviour), but the bulk must track:
  // mean deviation small relative to the ~0.1 total weight movement.
  double mean_dev = 0;
  for (int64_t i = 0; i < p->value.size(); ++i)
    mean_dev += std::fabs(p->value[i] - q->value[i]);
  mean_dev /= static_cast<double>(p->value.size());
  EXPECT_LT(mean_dev, 0.02);
  EXPECT_LT(max_abs_diff(p->value, q->value), 0.15f);
}

TEST(Adam8bit, StateIsOneQuarterOfAdamW) {
  auto p = make_param(4, 128, 5);
  optim::Adam8bit opt;
  opt.step({p.get()});
  const int64_t elems = 2 * 4 * 128;
  EXPECT_EQ(opt.state_bytes(), elems + (elems / 128) * 4);
  EXPECT_LT(opt.state_bytes(), elems * 4 / 3);  // ≪ fp32 moments
}

TEST(NormLimiter, CapsGrowth) {
  optim::NormGrowthLimiter nl(1.01f);
  Matrix g(1, 4);
  g.fill(1.f);  // norm 2
  nl.apply(g);
  EXPECT_NEAR(frobenius_norm(g), 2.0, 1e-6);
  g.fill(10.f);  // norm 20 — growth 10× > γ
  nl.apply(g);
  EXPECT_NEAR(frobenius_norm(g), 2.0 * 1.01, 1e-4);
  // Shrinking is always allowed.
  g.fill(0.01f);
  nl.apply(g);
  EXPECT_NEAR(frobenius_norm(g), 0.02, 1e-6);
}

TEST(GaLore, SvdStepReducesLossDirection) {
  // The back-projected update must be positively aligned with the gradient.
  auto p = make_param(8, 24, 6);
  Matrix before = p->value;
  optim::GaloreConfig cfg;
  cfg.rank = 4;
  cfg.scale = 1.f;
  auto opt = optim::GaLore::galore(cfg);
  opt->set_lr(0.01f);
  opt->step({p.get()});
  Matrix delta = sub(p->value, before);
  double dot = 0;
  for (int64_t i = 0; i < delta.size(); ++i)
    dot += static_cast<double>(delta[i]) * p->grad[i];
  EXPECT_LT(dot, 0.0) << "update not a descent direction";
}

TEST(GaLore, StateMatchesTable1Formula) {
  const int64_t m = 8, n = 24, r = 4;
  auto p = make_param(m, n, 7);
  auto opt = optim::GaLore::galore({});
  optim::GaloreConfig cfg;
  cfg.rank = r;
  opt = optim::GaLore::galore(cfg);
  opt->step({p.get()});
  // SVD GaLore: projector m·r + moments 2·(r·n); +8 bytes seed bookkeeping.
  EXPECT_EQ(opt->state_bytes(), (m * r + 2 * r * n) * 4 + 8);
}

TEST(GaLore, RandomProjectorStoresNoMatrix) {
  const int64_t m = 8, n = 24, r = 4;
  auto p = make_param(m, n, 8);
  optim::GaloreConfig cfg;
  cfg.rank = r;
  auto opt = optim::GaLore::flora(cfg);
  opt->step({p.get()});
  // Flora: moments only (2·r·n) + the 8-byte seed. No m·r projector.
  EXPECT_EQ(opt->state_bytes(), 2 * r * n * 4 + 8);
}

TEST(GaLore, WideMatricesProjectTheOtherSide) {
  // rows > cols: the projector compresses columns; state follows max-dim.
  const int64_t m = 24, n = 8, r = 4;
  auto p = make_param(m, n, 9);
  optim::GaloreConfig cfg;
  cfg.rank = r;
  auto opt = optim::GaLore::flora(cfg);
  opt->step({p.get()});
  EXPECT_EQ(opt->state_bytes(), 2 * r * m * 4 + 8);
}

TEST(GaLore, OneDimFallsBackToDenseAdam) {
  auto p = make_param(1, 16, 10, 0.1f, /*matrix=*/false);
  auto opt = optim::GaLore::galore({});
  opt->step({p.get()});
  EXPECT_EQ(opt->state_bytes(), 2 * 16 * 4);
}

TEST(GaLore, DeterministicAcrossRuns) {
  auto run = [] {
    auto p = make_param(8, 24, 11);
    optim::GaloreConfig cfg;
    cfg.rank = 4;
    cfg.seed = 77;
    auto opt = optim::GaLore::flora(cfg);
    opt->set_lr(0.01f);
    for (int i = 0; i < 5; ++i) opt->step({p.get()});
    return p->value;
  };
  EXPECT_TRUE(run() == run());
}

TEST(Fira, ResidualMakesUpdateFullRank) {
  // GaLore's update lives in a rank-r subspace; Fira's must not.
  auto p = make_param(8, 24, 12);
  auto q = std::make_unique<nn::Parameter>("w", 8, 24);
  q->value = p->value;
  q->grad = p->grad;
  optim::GaloreConfig cfg;
  cfg.rank = 2;
  cfg.scale = 1.f;
  auto galore = optim::GaLore::galore(cfg);
  auto fira = optim::GaLore::fira(cfg);
  galore->set_lr(0.01f);
  fira->set_lr(0.01f);
  galore->step({p.get()});
  fira->step({q.get()});
  // Different updates (the residual is non-zero for a random gradient).
  EXPECT_GT(max_abs_diff(p->value, q->value), 1e-6f);
  EXPECT_EQ(fira->name(), "Fira");
}

TEST(Lora, BackboneStaysFrozen) {
  // With zero-init B, the first recompose must reproduce W0 exactly, and
  // the trained weight must always equal W0 + B·A (rank-r delta).
  auto p = make_param(8, 16, 13);
  Matrix w0 = p->value;
  optim::AdapterConfig cfg;
  cfg.kind = optim::AdapterKind::kLora;
  cfg.rank = 2;
  optim::LowRankAdapter opt(cfg);
  opt.set_lr(0.f);  // no movement: W must equal W0 exactly
  opt.step({p.get()});
  EXPECT_LT(max_abs_diff(p->value, w0), 1e-6f);
}

TEST(Lora, DeltaHasRankAtMostR) {
  auto p = make_param(8, 16, 14);
  Matrix w0 = p->value;
  optim::AdapterConfig cfg;
  cfg.kind = optim::AdapterKind::kLora;
  cfg.rank = 2;
  optim::LowRankAdapter opt(cfg);
  opt.set_lr(0.05f);
  Rng rng(15);
  for (int s = 0; s < 5; ++s) {
    p->grad.fill_gaussian(rng, 0.f, 0.1f);
    opt.step({p.get()});
  }
  Matrix delta = sub(p->value, w0);
  // Rank ≤ 2 ⇔ singular values beyond the 2nd are ~0.
  auto d = svd(delta);
  for (size_t i = 2; i < d.sigma.size(); ++i)
    EXPECT_LT(d.sigma[i], 1e-4f * d.sigma[0] + 1e-6f);
}

TEST(Factorized, WeightIsExactlyRankR) {
  auto p = make_param(8, 16, 16);
  optim::AdapterConfig cfg;
  cfg.kind = optim::AdapterKind::kFactorized;
  cfg.rank = 3;
  optim::LowRankAdapter opt(cfg);
  opt.set_lr(0.01f);
  opt.step({p.get()});
  auto d = svd(p->value);
  for (size_t i = 3; i < d.sigma.size(); ++i)
    EXPECT_LT(d.sigma[i], 1e-4f * d.sigma[0] + 1e-6f);
}

TEST(Relora, MergeRaisesDeltaRank) {
  auto p = make_param(8, 16, 17);
  Matrix w0 = p->value;
  optim::AdapterConfig cfg;
  cfg.kind = optim::AdapterKind::kRelora;
  cfg.rank = 2;
  cfg.merge_freq = 3;
  optim::LowRankAdapter opt(cfg);
  opt.set_lr(0.05f);
  Rng rng(18);
  for (int s = 0; s < 9; ++s) {  // 3 merge cycles
    p->grad.fill_gaussian(rng, 0.f, 0.1f);
    opt.step({p.get()});
  }
  // After merges, the cumulative delta exceeds rank 2.
  auto d = svd(sub(p->value, w0));
  EXPECT_GT(d.sigma[2], 1e-5f * d.sigma[0]);
  EXPECT_EQ(opt.name(), "ReLoRA");
}

TEST(Dora, TrainsMagnitudesAndDirections) {
  auto p = make_param(8, 16, 19);
  optim::AdapterConfig cfg;
  cfg.kind = optim::AdapterKind::kDora;
  cfg.rank = 2;
  optim::LowRankAdapter opt(cfg);
  opt.set_lr(0.01f);
  Matrix before = p->value;
  opt.step({p.get()});
  EXPECT_GT(max_abs_diff(p->value, before), 0.f);
  EXPECT_EQ(opt.name(), "DoRA");
}

TEST(Optimizers, NamesAreStable) {
  EXPECT_EQ(optim::AdamW().name(), "AdamW");
  EXPECT_EQ(optim::Sgd().name(), "SGD");
  EXPECT_EQ(optim::Sgd(0.9f).name(), "SGD-momentum");
  EXPECT_EQ(optim::AdamMini().name(), "Adam-mini");
  EXPECT_EQ(optim::Adam8bit().name(), "8-bit Adam");
  EXPECT_EQ(optim::GaLore::galore({})->name(), "GaLore");
  EXPECT_EQ(optim::GaLore::galore_8bit({})->name(), "8-bit GaLore");
}

}  // namespace
}  // namespace apollo
