// Sampler tests: determinism, shape, greedy-vs-stochastic behaviour, and a
// trained-model likelihood check.
#include <gtest/gtest.h>

#include <cmath>

#include "data/corpus.h"
#include "nn/sampler.h"
#include "optim/adamw.h"
#include "train/trainer.h"

namespace apollo {
namespace {

nn::LlamaConfig tiny() {
  nn::LlamaConfig c;
  c.vocab = 64;
  c.hidden = 16;
  c.intermediate = 40;
  c.n_heads = 2;
  c.n_layers = 1;
  c.seq_len = 16;
  return c;
}

TEST(Sampler, ReturnsRequestedCount) {
  nn::LlamaModel model(tiny(), 1);
  auto out = nn::generate(model, {1, 2, 3}, 10);
  ASSERT_EQ(out.size(), 10u);
  for (int32_t t : out) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 64);
  }
}

TEST(Sampler, GreedyIsDeterministic) {
  nn::LlamaModel model(tiny(), 2);
  nn::SamplerConfig cfg;
  cfg.temperature = 0.f;
  auto a = nn::generate(model, {5}, 8, cfg);
  auto b = nn::generate(model, {5}, 8, cfg);
  EXPECT_EQ(a, b);
}

TEST(Sampler, SeededSamplingDeterministic) {
  nn::LlamaModel model(tiny(), 3);
  nn::SamplerConfig cfg;
  cfg.temperature = 1.f;
  cfg.seed = 7;
  auto a = nn::generate(model, {5}, 8, cfg);
  auto b = nn::generate(model, {5}, 8, cfg);
  EXPECT_EQ(a, b);
  cfg.seed = 8;
  auto c = nn::generate(model, {5}, 8, cfg);
  EXPECT_NE(a, c);
}

TEST(Sampler, TopKRestrictsSupport) {
  // With top_k = 1, sampling degenerates to greedy regardless of seed.
  nn::LlamaModel model(tiny(), 4);
  nn::SamplerConfig greedy;
  greedy.temperature = 0.f;
  nn::SamplerConfig k1;
  k1.temperature = 2.f;
  k1.top_k = 1;
  k1.seed = 99;
  EXPECT_EQ(nn::generate(model, {3, 1}, 6, greedy),
            nn::generate(model, {3, 1}, 6, k1));
}

TEST(Sampler, PromptsLongerThanWindowWork) {
  nn::LlamaModel model(tiny(), 5);
  std::vector<int32_t> prompt(50, 2);  // > seq_len 16
  auto out = nn::generate(model, prompt, 4);
  EXPECT_EQ(out.size(), 4u);
}

TEST(Sampler, TrainedModelLikesItsCorpus) {
  // After training, the model's mean log-likelihood on corpus text must
  // beat the untrained model's by a clear margin.
  data::CorpusConfig ccfg;
  ccfg.vocab = 64;
  data::SyntheticCorpus corpus(ccfg);
  nn::LlamaModel model(tiny(), 6);

  Rng rng(1);
  std::vector<int32_t> sample;
  corpus.sample_sequence(rng, 64, sample);
  const double before = nn::sequence_log_likelihood(model, sample);

  optim::AdamW opt;
  train::TrainConfig tc;
  tc.steps = 120;
  tc.batch = 4;
  tc.lr = 3e-3f;
  train::Trainer t(model, opt, corpus, tc);
  t.run();
  const double after = nn::sequence_log_likelihood(model, sample);
  EXPECT_GT(after, before + 0.3);
}

TEST(Sampler, LikelihoodIsProperLogProb) {
  nn::LlamaModel model(tiny(), 7);
  std::vector<int32_t> tokens(20, 1);
  const double ll = nn::sequence_log_likelihood(model, tokens);
  EXPECT_LT(ll, 0.0);               // log-probabilities are negative
  EXPECT_GT(ll, -std::log(64.0) * 3);  // and not absurdly below uniform
}

TEST(Sampler, TopPOneKeepsFullDistribution) {
  nn::LlamaModel model(tiny(), 9);
  nn::SamplerConfig a;
  a.seed = 5;
  nn::SamplerConfig b = a;
  b.top_p = 1.f;  // explicit no-op
  EXPECT_EQ(nn::generate(model, {2}, 8, a), nn::generate(model, {2}, 8, b));
}

TEST(Sampler, TinyTopPIsGreedy) {
  // top_p → 0 keeps only the argmax token.
  nn::LlamaModel model(tiny(), 10);
  nn::SamplerConfig greedy;
  greedy.temperature = 0.f;
  nn::SamplerConfig p0;
  p0.temperature = 2.f;
  p0.top_p = 1e-6f;
  p0.seed = 77;
  EXPECT_EQ(nn::generate(model, {4, 4}, 6, greedy),
            nn::generate(model, {4, 4}, 6, p0));
}

}  // namespace
}  // namespace apollo
