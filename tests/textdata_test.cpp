// TextCorpus (byte-level real-text ingestion) and bf16 emulation tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "data/text_corpus.h"
#include "quant/bf16.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

std::string sample_text() {
  std::string s;
  for (int i = 0; i < 400; ++i)
    s += "the quick brown fox jumps over the lazy dog. ";
  return s;
}

TEST(TextCorpus, FromStringAndSampling) {
  auto c = data::TextCorpus::from_string(sample_text());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->vocab_size(), 256);
  Rng rng(1);
  std::vector<int32_t> seq;
  c->sample_sequence(rng, 64, seq);
  ASSERT_EQ(seq.size(), 64u);
  for (int32_t t : seq) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 256);
  }
  // The sampled window is actual text: decode and check it contains a word.
  std::string decoded;
  for (int32_t t : seq) decoded += static_cast<char>(t);
  EXPECT_NE(decoded.find("o"), std::string::npos);
}

TEST(TextCorpus, RejectsTooShort) {
  std::string err;
  auto c = data::TextCorpus::from_string("tiny", &err);
  EXPECT_FALSE(c.has_value());
  EXPECT_FALSE(err.empty());
}

TEST(TextCorpus, MissingFileRejected) {
  std::string err;
  auto c = data::TextCorpus::from_file("/no/such/file.txt", &err);
  EXPECT_FALSE(c.has_value());
  EXPECT_EQ(err, "cannot open file");
}

TEST(TextCorpus, FromFileRoundTrip) {
  const std::string path = std::string(::testing::TempDir()) + "text.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  const std::string text = sample_text();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  auto c = data::TextCorpus::from_file(path);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size_bytes(), text.size());
}

TEST(TextCorpus, HoldoutDisjointFromTrain) {
  // Train windows come from the first 95%, holdout from the last 5%; with
  // a marker planted only in the tail, train samples must never see it.
  std::string text = sample_text();
  const size_t tail_start = text.size() * 96 / 100;
  for (size_t i = tail_start; i < text.size(); ++i) text[i] = '#';
  auto c = data::TextCorpus::from_string(std::move(text));
  ASSERT_TRUE(c.has_value());
  Rng rng(2);
  std::vector<int32_t> seq;
  for (int trial = 0; trial < 200; ++trial) {
    c->sample_sequence(rng, 32, seq);
    for (int32_t t : seq) EXPECT_NE(t, static_cast<int32_t>('#'));
  }
  // And the holdout actually contains the marker.
  auto holdout = c->holdout();
  int marker = 0;
  for (int trial = 0; trial < 50; ++trial) {
    holdout.sample_sequence(rng, 32, seq);
    for (int32_t t : seq) marker += (t == static_cast<int32_t>('#'));
  }
  EXPECT_GT(marker, 0);
}

TEST(Bf16, RoundTripExactForRepresentable) {
  for (float x : {0.f, 1.f, -2.f, 0.5f, 256.f, -0.09375f})
    EXPECT_FLOAT_EQ(bf16_to_float(float_to_bf16(x)), x);
}

TEST(Bf16, RelativeErrorBounded) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.next_gaussian()) * 100.f;
    const float y = bf16_to_float(float_to_bf16(x));
    EXPECT_LE(std::fabs(y - x), std::fabs(x) * (1.f / 128.f) + 1e-30f);
  }
}

TEST(Bf16, RoundToNearestMeanError) {
  // Mean of round-tripped values tracks the mean of the inputs to within a
  // fraction of one bf16 code step (~0.008 at magnitude 1).
  Rng rng(4);
  double sx = 0, sy = 0;
  for (int i = 0; i < 20000; ++i) {
    const float x = 1.f + rng.next_float() * 0.01f;
    sx += x;
    sy += bf16_to_float(float_to_bf16(x));
  }
  EXPECT_NEAR(sy / sx, 1.0, 2e-3);
}

TEST(Bf16, BufferStoreLoad) {
  Matrix m(4, 8);
  Rng rng(5);
  m.fill_gaussian(rng);
  Bf16Buffer buf(4, 8);
  buf.store(m);
  Matrix back = buf.load();
  EXPECT_LT(max_abs_diff(back, m), abs_max(m) / 100.f);
  EXPECT_EQ(buf.bytes(), 4 * 8 * 2);
}

TEST(Bf16, NanSurvives) {
  const float nan = std::nanf("");
  EXPECT_TRUE(std::isnan(bf16_to_float(float_to_bf16(nan))));
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_to_float(float_to_bf16(inf)), inf);
}

}  // namespace
}  // namespace apollo
