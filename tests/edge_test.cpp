// Edge cases and failure injection: degenerate shapes, zero/huge gradients,
// rank boundaries — the inputs that break optimizers in production.
#include <gtest/gtest.h>

#include <cmath>

#include "core/apollo.h"
#include "linalg/svd.h"
#include "optim/adamw.h"
#include "optim/galore.h"
#include "optim/norm_limiter.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

bool all_finite(const Matrix& m) {
  for (int64_t i = 0; i < m.size(); ++i)
    if (!std::isfinite(m[i])) return false;
  return true;
}

std::unique_ptr<nn::Parameter> make_param(int64_t rows, int64_t cols,
                                          float gval) {
  auto p = std::make_unique<nn::Parameter>("w", rows, cols);
  p->value.fill(1.f);
  p->grad.fill(gval);
  return p;
}

TEST(Edge, ZeroGradientProducesNoNaNs) {
  using MakeFn = std::function<std::unique_ptr<optim::Optimizer>()>;
  const std::vector<MakeFn> makes = {
      [] { return std::make_unique<optim::AdamW>(); },
      [] { return core::Apollo::standard({}); },
      [] { return core::Apollo::mini(); },
      [] {
        optim::GaloreConfig c;
        c.rank = 2;
        return optim::GaLore::fira(c);
      }};
  for (const auto& make : makes) {
    auto p = make_param(4, 16, 0.f);
    auto opt = make();
    opt->set_lr(0.01f);
    for (int s = 0; s < 3; ++s) opt->step({p.get()});
    EXPECT_TRUE(all_finite(p->value)) << opt->name();
    // Zero gradient + zero weight decay ⇒ weights unchanged.
    for (int64_t i = 0; i < p->value.size(); ++i)
      EXPECT_FLOAT_EQ(p->value[i], 1.f) << opt->name();
  }
}

TEST(Edge, HugeGradientStaysFinite) {
  auto p = make_param(4, 16, 1e18f);
  auto opt = core::Apollo::standard({});
  opt->set_lr(0.01f);
  opt->step({p.get()});
  EXPECT_TRUE(all_finite(p->value));
}

TEST(Edge, TinyGradientStaysFinite) {
  auto p = make_param(4, 16, 1e-30f);
  auto opt = core::Apollo::mini();
  opt->set_lr(0.01f);
  for (int s = 0; s < 3; ++s) opt->step({p.get()});
  EXPECT_TRUE(all_finite(p->value));
}

TEST(Edge, OneByOneWeight) {
  auto p = make_param(1, 1, 0.5f);
  // rank 1 == min dim: APOLLO still runs (rank-1 space of a scalar).
  core::ApolloConfig cfg;
  cfg.rank = 1;
  auto opt = core::Apollo::standard(cfg);
  opt->set_lr(0.1f);
  opt->step({p.get()});
  EXPECT_TRUE(all_finite(p->value));
  EXPECT_LT(p->value[0], 1.f);  // moved downhill
}

TEST(Edge, RankAboveMinDimFallsBackToDense) {
  auto p = make_param(2, 64, 0.1f);
  core::ApolloConfig cfg;
  cfg.rank = 8;  // > min dim 2
  auto opt = core::Apollo::standard(cfg);
  opt->set_lr(0.01f);
  opt->step({p.get()});
  // Dense fallback: AdamW state = 2 · 2 · 64 floats.
  EXPECT_EQ(opt->state_bytes(), 2 * 2 * 64 * 4);
}

TEST(Edge, SquareMatrixProjectsLeft) {
  auto p = make_param(16, 16, 0.1f);
  core::ApolloConfig cfg;
  cfg.rank = 4;
  auto opt = core::Apollo::standard(cfg);
  opt->set_lr(0.01f);
  opt->step({p.get()});
  // Channels along columns for square weights (m ≤ n tie → left).
  EXPECT_EQ(opt->last_scaling(p.get())->size(), 16u);
}

TEST(Edge, SvdOfRankDeficientMatrix) {
  // Rank-1 matrix: trailing singular values must come out ≈ 0, factors
  // finite and orthonormal for the leading component.
  Matrix u(6, 1), v(1, 9);
  Rng rng(1);
  u.fill_gaussian(rng);
  v.fill_gaussian(rng);
  Matrix a = matmul(u, v);
  SvdResult d = svd(a);
  EXPECT_GT(d.sigma[0], 0.f);
  for (size_t i = 1; i < d.sigma.size(); ++i)
    EXPECT_LT(d.sigma[i], 1e-4f * d.sigma[0] + 1e-6f);
  EXPECT_TRUE(all_finite(d.u));
  EXPECT_TRUE(all_finite(d.v));
}

TEST(Edge, SvdOfZeroMatrix) {
  Matrix a(5, 7);
  SvdResult d = svd(a);
  for (float s : d.sigma) EXPECT_FLOAT_EQ(s, 0.f);
  EXPECT_TRUE(all_finite(d.u));
}

TEST(Edge, NormLimiterFirstStepPassesThrough) {
  optim::NormGrowthLimiter nl(1.01f);
  Matrix g(1, 4);
  g.fill(100.f);  // huge first step: nothing to compare against
  nl.apply(g);
  EXPECT_FLOAT_EQ(g[0], 100.f);
}

TEST(Edge, NormLimiterZeroThenNonzero) {
  optim::NormGrowthLimiter nl(1.01f);
  Matrix g(1, 4);
  nl.apply(g);  // zero norm recorded
  g.fill(1.f);
  nl.apply(g);  // growth from 0: must not divide by zero or clamp to 0
  EXPECT_TRUE(all_finite(g));
}

TEST(Edge, ApolloManyParamsIndependentStates) {
  // Two parameters of different shapes must keep independent moments and
  // independent projection seeds.
  auto p1 = make_param(4, 32, 0.1f);
  auto p2 = make_param(8, 8, -0.2f);
  core::ApolloConfig cfg;
  cfg.rank = 2;
  auto opt = core::Apollo::standard(cfg);
  opt->set_lr(0.01f);
  for (int s = 0; s < 4; ++s) opt->step({p1.get(), p2.get()});
  EXPECT_TRUE(all_finite(p1->value));
  EXPECT_TRUE(all_finite(p2->value));
  // 2·n·r floats each + 12 B bookkeeping each.
  EXPECT_EQ(opt->state_bytes(), (2 * 32 * 2 + 2 * 8 * 2) * 4 + 2 * 12);
}

TEST(Edge, GaloreRefreshOnExactBoundary) {
  auto p = make_param(8, 24, 0.1f);
  optim::GaloreConfig cfg;
  cfg.rank = 2;
  cfg.update_freq = 3;
  auto opt = optim::GaLore::galore(cfg);
  opt->set_lr(0.01f);
  Rng rng(2);
  for (int s = 0; s < 7; ++s) {  // refreshes at local steps 0, 3, 6
    p->grad.fill_gaussian(rng, 0.f, 0.1f);
    opt->step({p.get()});
  }
  EXPECT_TRUE(all_finite(p->value));
}

TEST(Edge, LrZeroFreezesApollo) {
  auto p = make_param(4, 16, 0.3f);
  auto opt = core::Apollo::standard({});
  opt->set_lr(0.f);
  opt->step({p.get()});
  for (int64_t i = 0; i < p->value.size(); ++i)
    EXPECT_FLOAT_EQ(p->value[i], 1.f);
}

TEST(Edge, NegativeAndPositiveGradientsSymmetric) {
  // APOLLO's scaling is norm-based: flipping the gradient sign must flip
  // the update sign exactly.
  auto p1 = make_param(4, 16, 0.25f);
  auto p2 = make_param(4, 16, -0.25f);
  core::ApolloConfig cfg;
  cfg.rank = 2;
  cfg.seed = 5;
  auto o1 = core::Apollo::standard(cfg);
  auto o2 = core::Apollo::standard(cfg);
  o1->set_lr(0.01f);
  o2->set_lr(0.01f);
  o1->step({p1.get()});
  o2->step({p2.get()});
  for (int64_t i = 0; i < p1->value.size(); ++i)
    EXPECT_NEAR(p1->value[i] - 1.f, -(p2->value[i] - 1.f), 1e-6f);
}

}  // namespace
}  // namespace apollo
