// Exact-training-resume tests: save at step k, reload into fresh objects,
// continue — the trajectory must be bit-identical to an uninterrupted run.
// Plus the crash-mid-write contract: a process killed inside a checkpoint
// save must never corrupt a committed checkpoint (temp + atomic rename).
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/apollo.h"
#include "data/corpus.h"
#include "fault/fault_injection.h"
#include "optim/adamw.h"
#include "optim/sgd.h"
#include "train/checkpoint.h"
#include "train/resilience.h"
#include "train/trainer.h"

namespace apollo {
namespace {

nn::LlamaConfig tiny() {
  nn::LlamaConfig c;
  c.vocab = 48;
  c.hidden = 16;
  c.intermediate = 40;
  c.n_heads = 2;
  c.n_layers = 1;
  c.seq_len = 8;
  return c;
}

// Pre-generates a fixed batch stream so both runs consume identical data.
struct FixedBatches {
  std::vector<std::vector<int32_t>> ids, targets;
  explicit FixedBatches(int n) {
    data::CorpusConfig ccfg;
    ccfg.vocab = 48;
    data::SyntheticCorpus corpus(ccfg);
    data::BatchLoader loader(corpus, 2, 8, 5);
    ids.resize(static_cast<size_t>(n));
    targets.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
      loader.next(ids[static_cast<size_t>(i)], targets[static_cast<size_t>(i)]);
  }
};

void train_steps(nn::LlamaModel& model, optim::Optimizer& opt,
                 const FixedBatches& data, int from, int to) {
  for (int s = from; s < to; ++s) {
    model.zero_grads();
    ag::Tape tape;
    tape.backward(model.loss(tape, data.ids[static_cast<size_t>(s)],
                             data.targets[static_cast<size_t>(s)]));
    opt.set_lr(1e-3f);
    opt.step(model.parameters());
  }
}

template <typename MakeOpt>
void check_exact_resume(MakeOpt make_opt, bool expect_state) {
  const FixedBatches data(24);
  const std::string path =
      std::string(::testing::TempDir()) + "resume_test.ckpt";

  // Uninterrupted run: 24 steps.
  nn::LlamaModel ref(tiny(), 1);
  auto ref_opt = make_opt();
  train_steps(ref, *ref_opt, data, 0, 24);

  // Interrupted run: 10 steps, save, reload into fresh objects, 14 more.
  nn::LlamaModel first(tiny(), 1);
  auto first_opt = make_opt();
  train_steps(first, *first_opt, data, 0, 10);
  // The projector refresh period (update_freq) deliberately divides 24 but
  // not 10, so resumed runs cross a re-seed boundary.
  auto saved = train::save_checkpoint(path, first, 10, first_opt.get());
  ASSERT_TRUE(saved.ok) << saved.error;
  EXPECT_EQ(saved.optimizer_state_restored, expect_state);

  nn::LlamaModel resumed(tiny(), 2);  // different init — must be overwritten
  auto resumed_opt = make_opt();
  auto loaded = train::load_checkpoint(path, resumed, resumed_opt.get());
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.step, 10);
  EXPECT_EQ(loaded.optimizer_state_restored, expect_state);
  train_steps(resumed, *resumed_opt, data, 10, 24);

  auto pr = ref.parameters();
  auto ps = resumed.parameters();
  for (size_t i = 0; i < pr.size(); ++i) {
    if (expect_state) {
      EXPECT_TRUE(pr[i]->value == ps[i]->value)
          << "exact-resume mismatch at " << pr[i]->name;
    } else {
      // Weights-only resume: trajectories diverge (fresh moments).
      // Nothing to assert beyond successful load.
    }
  }
}

TEST(Resume, AdamWExact) {
  check_exact_resume([] { return std::make_unique<optim::AdamW>(); }, true);
}

TEST(Resume, ApolloExact) {
  check_exact_resume(
      [] {
        core::ApolloConfig cfg;
        cfg.rank = 4;
        cfg.update_freq = 12;  // re-seed boundary crossed after resume
        cfg.seed = 9;
        return core::Apollo::standard(cfg);
      },
      true);
}

TEST(Resume, ApolloMiniExact) {
  check_exact_resume([] { return core::Apollo::mini(31); }, true);
}

TEST(Resume, UnsupportedOptimizerFallsBackToWeightsOnly) {
  check_exact_resume([] { return std::make_unique<optim::Sgd>(0.9f); },
                     false);
}

TEST(Resume, FusedSaveUnfusedLoadRoundTrip) {
  // A checkpoint written while training with the fused backward+optimizer
  // path must resume bit-exactly under the classic unfused step (and match
  // an uninterrupted unfused run): the streaming refactor may not leak into
  // the checkpoint byte format or the optimizer-state semantics.
  namespace fs = std::filesystem;
  const std::string dir =
      std::string(::testing::TempDir()) + "resume_fused_roundtrip";
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto make_opt = [] {
    core::ApolloConfig cfg;
    cfg.rank = 4;
    cfg.update_freq = 12;  // projector re-seed boundary crossed after resume
    cfg.seed = 9;
    return core::Apollo::standard(cfg);
  };
  data::CorpusConfig ccfg;
  ccfg.vocab = 48;
  data::SyntheticCorpus corpus(ccfg);
  train::TrainConfig base;
  base.steps = 24;
  base.batch = 2;
  base.lr = 1e-3f;
  base.eval_every = 0;

  // Uninterrupted unfused reference.
  nn::LlamaModel ref(tiny(), 1);
  auto ref_opt = make_opt();
  train::Trainer(ref, *ref_opt, corpus, base).run();

  // Phase 1: the same 24-step run under the fused path (identical cosine
  // schedule), committing rotating checkpoints at steps 10 and 20.
  nn::LlamaModel first(tiny(), 1);
  auto first_opt = make_opt();
  train::TrainConfig fused = base;
  fused.fused_update = true;
  fused.resilience.ckpt_dir = dir;
  fused.resilience.ckpt_every = 10;
  train::Trainer(first, *first_opt, corpus, fused).run();
  // Drop the step-20 commit so auto-resume picks the step-10 one and the
  // resumed run crosses the update_freq=12 re-seed boundary.
  fs::remove(train::CheckpointRotator::path_for(dir, 20));

  // Phase 2: fresh objects auto-resume from the fused step-10 checkpoint
  // and finish the remaining 14 steps with the classic unfused step.
  nn::LlamaModel resumed(tiny(), 2);  // different init — must be overwritten
  auto resumed_opt = make_opt();
  train::TrainConfig rest = base;
  rest.resilience.ckpt_dir = dir;
  auto result = train::Trainer(resumed, *resumed_opt, corpus, rest).run();
  EXPECT_EQ(result.resumed_from_step, 10);

  auto pr = ref.parameters();
  auto ps = resumed.parameters();
  for (size_t i = 0; i < pr.size(); ++i)
    EXPECT_TRUE(pr[i]->value == ps[i]->value)
        << "fused-save/unfused-load mismatch at " << pr[i]->name;
  fs::remove_all(dir);
}

#ifdef APOLLO_TRAIN_BIN

// Kills apollo-train halfway through writing a checkpoint's temp file, then
// verifies the committed checkpoints are untouched, the `.tmp` never shadows
// a real checkpoint, and a plain relaunch resumes from the last commit.
TEST(Resume, CrashMidWriteNeverCorruptsCommittedCheckpoints) {
  namespace fs = std::filesystem;
  const std::string dir =
      std::string(::testing::TempDir()) + "resume_crash_save";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string cmd_tail =
      " --hidden 32 --layers 1 --heads 2 --inter 88 --vocab 64 --seq 16"
      " --optimizer apollo --rank 4 --batch 2 --eval-every 0 --steps 40"
      " --seed 11 --ckpt-dir ckpts --ckpt-every 10";
  const std::string cd = "cd " + dir + " && ";
  const std::string base = std::string(APOLLO_TRAIN_BIN) + cmd_tail;

  int rc = std::system((cd + "APOLLO_FAULTS='crash_save@25' " + base +
                        " > crash.log 2>&1")
                           .c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  ASSERT_EQ(WEXITSTATUS(rc), fault::kCrashInSaveExitCode);

  // The kill hit the step-30 save: its temp file is on disk, no committed
  // ckpt_30 exists, and every earlier commit still passes full validation.
  const std::string ckpts = dir + "/ckpts";
  EXPECT_TRUE(fs::exists(ckpts + "/ckpt_30.aplo.tmp"));
  EXPECT_FALSE(fs::exists(ckpts + "/ckpt_30.aplo"));
  EXPECT_EQ(train::CheckpointRotator::list_steps(ckpts),
            (std::vector<int64_t>{10, 20}));
  nn::LlamaConfig shape;
  shape.vocab = 64;
  shape.hidden = 32;
  shape.intermediate = 88;
  shape.n_heads = 2;
  shape.n_layers = 1;
  shape.seq_len = 16;
  for (int64_t s : {10, 20}) {
    nn::LlamaModel probe(shape, 99);
    auto l = train::load_checkpoint(
        train::CheckpointRotator::path_for(ckpts, s), probe);
    EXPECT_TRUE(l.ok) << "step " << s << ": " << l.error;
  }

  // Relaunch without faults: auto-resume from step 20 and finish cleanly,
  // sweeping the stale temp file.
  rc = std::system((cd + base + " > resume.log 2>&1").c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 0);
  EXPECT_FALSE(fs::exists(ckpts + "/ckpt_30.aplo.tmp"));
  std::ifstream log(dir + "/resume.log");
  std::stringstream ss;
  ss << log.rdbuf();
  EXPECT_NE(ss.str().find("resumed from step 20"), std::string::npos)
      << ss.str();
  fs::remove_all(dir);
}

#endif  // APOLLO_TRAIN_BIN

TEST(Resume, MismatchedOptimizerSkipsState) {
  const FixedBatches data(4);
  const std::string path =
      std::string(::testing::TempDir()) + "resume_mismatch.ckpt";
  nn::LlamaModel model(tiny(), 1);
  optim::AdamW adamw;
  train_steps(model, adamw, data, 0, 4);
  ASSERT_TRUE(train::save_checkpoint(path, model, 4, &adamw).ok);

  nn::LlamaModel other(tiny(), 2);
  auto apollo_opt = core::Apollo::standard({});
  auto r = train::load_checkpoint(path, other, apollo_opt.get());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.optimizer_state_restored);  // name mismatch → weights only
  // Weights still restored correctly.
  EXPECT_TRUE(other.parameters()[0]->value == model.parameters()[0]->value);
}

}  // namespace
}  // namespace apollo
