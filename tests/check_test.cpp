// Tests for the check layer itself: the APOLLO_CHECK* macros must abort
// with a diagnosable file:line message, and the APOLLO_CHECK_FINITE mode
// must catch injected NaN/Inf in optimizer steps and autograd backward.
//
// Death tests run in a forked child (gtest "fast" style); the thread pool
// is pinned to one lane so the fork never races live worker threads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "autograd/tape.h"
#include "core/apollo.h"
#include "core/threadpool.h"
#include "nn/parameter.h"
#include "optim/adamw.h"
#include "tensor/check.h"
#include "tensor/finite.h"
#include "tensor/matrix.h"

namespace apollo {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// --- APOLLO_CHECK* abort diagnostics ---------------------------------------

TEST(CheckDeathTest, AbortsWithExpressionFileAndLine) {
  EXPECT_DEATH(APOLLO_CHECK(2 + 2 == 5),
               "CHECK failed: 2 \\+ 2 == 5 at .*check_test\\.cpp:[0-9]+");
}

TEST(CheckDeathTest, CheckMsgAppendsMessage) {
  EXPECT_DEATH(APOLLO_CHECK_MSG(false, "grad must be pre-sized"),
               "check_test\\.cpp:[0-9]+.*grad must be pre-sized");
}

TEST(CheckDeathTest, CheckEqPrintsBothValues) {
  const int rows = 3, cols = 4;
  EXPECT_DEATH(APOLLO_CHECK_EQ(rows, cols),
               "rows == cols at .*check_test\\.cpp:[0-9]+.*values: 3 vs 4");
}

TEST(CheckDeathTest, CheckNePrintsBothValues) {
  EXPECT_DEATH(APOLLO_CHECK_NE(7, 7), "values: 7 vs 7");
}

TEST(CheckDeathTest, CheckLePrintsBothValues) {
  const int64_t rank = 64, small_dim = 8;
  EXPECT_DEATH(APOLLO_CHECK_LE(rank, small_dim), "values: 64 vs 8");
}

TEST(CheckDeathTest, SameShapePrintsBothShapes) {
  const Matrix a(2, 3), b(3, 2);
  EXPECT_DEATH(APOLLO_CHECK_SAME_SHAPE(a, b),
               "a same shape as b at .*check_test\\.cpp:[0-9]+.*"
               "shapes: 2x3 vs 3x2");
}

TEST(CheckDeathTest, CheckShapePinsBothDims) {
  const Matrix m(4, 8);
  EXPECT_DEATH(APOLLO_CHECK_SHAPE(m, 4, 9), "values: 8 vs 9");
}

TEST(CheckTest, PassingChecksAreSilent) {
  APOLLO_CHECK(true);
  APOLLO_CHECK_EQ(1, 1);
  APOLLO_CHECK_NE(1, 2);
  APOLLO_CHECK_LT(1, 2);
  APOLLO_CHECK_LE(2, 2);
  APOLLO_CHECK_GT(2, 1);
  APOLLO_CHECK_GE(2, 2);
  const Matrix a(2, 3), b(2, 3);
  APOLLO_CHECK_SAME_SHAPE(a, b);
  APOLLO_CHECK_SHAPE(a, 2, 3);
}

TEST(CheckTest, CheckOpEvaluatesOperandsOnce) {
  int calls = 0;
  const auto f = [&calls] { return ++calls; };
  APOLLO_CHECK_GE(f(), 1);
  EXPECT_EQ(calls, 1);
}

// --- APOLLO_CHECK_FINITE: environment-gated numeric-safety mode ------------

// Runs first among the finite tests (death-test suites execute before the
// plain suites and nothing earlier in this binary queries the env cache),
// exercising the real APOLLO_CHECK_FINITE=1 environment path end to end.
TEST(FiniteCheckDeathTest, EnvVarCatchesInjectedNaNInOptimizerStep) {
  ::setenv("APOLLO_CHECK_FINITE", "1", /*overwrite=*/1);
  core::set_thread_count(1);
  nn::Parameter p("layers.0.attn.wq", 4, 8);
  p.value.fill(0.5f);
  p.grad.fill(0.1f);
  p.grad[11] = kNan;
  optim::AdamW opt;
  opt.set_lr(0.01f);
  const nn::ParamList params{&p};
  EXPECT_DEATH(opt.step(params),
               "non-finite value nan in tensor \"layers\\.0\\.attn\\.wq\" "
               "\\(4x8\\) at index 11 \\(row 1, col 3\\) after AdamW step");
}

TEST(FiniteCheckDeathTest, CatchesInfInApolloStep) {
  finite_checks_override(1);
  core::set_thread_count(1);
  nn::Parameter p("mlp.w_gate", 8, 16);
  p.value.fill(0.5f);
  p.grad.fill(0.1f);
  p.grad[3] = kInf;
  core::ApolloConfig cfg;
  cfg.rank = 2;
  core::Apollo opt(cfg);
  opt.set_lr(0.01f);
  const nn::ParamList params{&p};
  EXPECT_DEATH(opt.step(params), "non-finite value .* \"mlp\\.w_gate\"");
  finite_checks_override(-1);
}

TEST(FiniteCheckDeathTest, CatchesNaNDuringAutogradBackward) {
  finite_checks_override(1);
  core::set_thread_count(1);
  nn::Parameter p("w", 2, 2);
  p.value.fill(1.f);
  ag::Tape tape;
  const ag::Var leaf = tape.leaf(&p.value, &p.grad);
  // Scaling by inf poisons the gradient flowing back into the leaf.
  const ag::Var scaled = tape.scale(leaf, kInf);
  Matrix w(2, 2);
  w.fill(1.f);
  const ag::Var loss = tape.dot(scaled, w);
  EXPECT_DEATH(tape.backward(loss),
               "non-finite value .* after autograd backward");
  finite_checks_override(-1);
}

TEST(FiniteCheckTest, ModeOffIsNonIntrusive) {
  finite_checks_override(0);
  core::set_thread_count(1);
  nn::Parameter p("w", 2, 2);
  p.value.fill(0.5f);
  p.grad.fill(0.1f);
  p.grad[0] = kNan;
  optim::AdamW opt;
  opt.set_lr(0.01f);
  const nn::ParamList params{&p};
  opt.step(params);  // must not abort: the check is off
  EXPECT_TRUE(std::isnan(p.value[0]));
  EXPECT_FALSE(std::isnan(p.value[1]));
  finite_checks_override(-1);
}

TEST(FiniteCheckTest, FirstNonfiniteFindsTheFirstBadIndex) {
  Matrix m(2, 3);
  m.fill(1.f);
  EXPECT_EQ(first_nonfinite(m), -1);
  m[4] = kInf;
  m[5] = kNan;
  EXPECT_EQ(first_nonfinite(m), 4);
  m[1] = kNan;
  EXPECT_EQ(first_nonfinite(m), 1);
}

}  // namespace
}  // namespace apollo
