// Optimizer factory + gradient-accumulation + CSV logger tests.
#include <gtest/gtest.h>

#include <fstream>

#include <cmath>

#include "core/factory.h"
#include "data/corpus.h"
#include "optim/adamw.h"
#include "nn/llama.h"
#include "tensor/ops.h"
#include "obs/csv_sink.h"
#include "train/trainer.h"

namespace apollo {
namespace {

TEST(Factory, EveryKnownNameConstructs) {
  for (const auto& name : core::known_optimizers()) {
    auto opt = core::make_optimizer(name);
    ASSERT_NE(opt, nullptr) << name;
    EXPECT_FALSE(opt->name().empty());
    EXPECT_GT(core::default_lr(name), 0.f);
  }
}

TEST(Factory, UnknownNameReturnsNull) {
  EXPECT_EQ(core::make_optimizer("adamw2"), nullptr);
  EXPECT_EQ(core::make_optimizer(""), nullptr);
}

TEST(Factory, EveryOptimizerTakesAStep) {
  nn::Parameter p("w", 8, 32);
  Rng rng(1);
  p.value.fill_gaussian(rng, 0.f, 0.5f);
  for (const auto& name : core::known_optimizers()) {
    core::FactoryOptions fo;
    fo.rank = 4;
    auto opt = core::make_optimizer(name, fo);
    ASSERT_NE(opt, nullptr);
    opt->set_lr(1e-3f);
    p.grad.fill_gaussian(rng, 0.f, 0.1f);
    Matrix before = p.value;
    opt->step({&p});
    // SGD-family and friends must all move the weight.
    EXPECT_GT(max_abs_diff(before, p.value), 0.f) << name;
    for (int64_t i = 0; i < p.value.size(); ++i)
      EXPECT_TRUE(std::isfinite(p.value[i])) << name;
  }
}

TEST(Factory, OptionsAreHonored) {
  core::FactoryOptions fo;
  fo.rank = 2;
  auto apollo_opt = core::make_optimizer("apollo", fo);
  nn::Parameter p("w", 8, 32);
  Rng rng(2);
  p.value.fill_gaussian(rng, 0.f, 0.5f);
  p.grad.fill_gaussian(rng, 0.f, 0.1f);
  apollo_opt->set_lr(1e-3f);
  apollo_opt->step({&p});
  // APOLLO rank 2 → 2·32·2 floats + seed + limiter.
  EXPECT_EQ(apollo_opt->state_bytes(), 2 * 32 * 2 * 4 + 8 + 4);
}

TEST(GradAccum, MatchesBiggerBatchInExpectation) {
  // 2 micro-batches of 2 with mean-seeded backward ≈ one batch of 4 drawn
  // from the same stream: exact equality holds because the loader is shared
  // and the loss is a mean over micro-batches.
  auto run = [](int batch, int accum) {
    nn::LlamaConfig cfg;
    cfg.vocab = 64; cfg.hidden = 16; cfg.intermediate = 40;
    cfg.n_heads = 2; cfg.n_layers = 1; cfg.seq_len = 8;
    nn::LlamaModel model(cfg, 3);
    data::CorpusConfig ccfg;
    ccfg.vocab = 64;
    data::SyntheticCorpus corpus(ccfg);
    optim::AdamW opt;
    train::TrainConfig tc;
    tc.steps = 20;
    tc.batch = batch;
    tc.grad_accum = accum;
    tc.lr = 1e-3f;
    tc.record_step_losses = true;
    train::Trainer t(model, opt, corpus, tc);
    return t.run();
  };
  auto accum_run = run(2, 2);
  auto batch_run = run(4, 1);
  // Same total tokens per step, same stream order → same losses (up to
  // attention-batch boundary effects, which don't exist for independent
  // sequences) and near-identical training trajectory.
  ASSERT_EQ(accum_run.step_losses.size(), batch_run.step_losses.size());
  for (size_t i = 0; i < accum_run.step_losses.size(); ++i)
    EXPECT_NEAR(accum_run.step_losses[i], batch_run.step_losses[i], 2e-3f);
}

TEST(GradAccum, AccumReducesPeakActivations) {
  auto run = [](int batch, int accum) {
    nn::LlamaConfig cfg;
    cfg.vocab = 64; cfg.hidden = 16; cfg.intermediate = 40;
    cfg.n_heads = 2; cfg.n_layers = 1; cfg.seq_len = 8;
    nn::LlamaModel model(cfg, 3);
    data::CorpusConfig ccfg;
    ccfg.vocab = 64;
    data::SyntheticCorpus corpus(ccfg);
    optim::AdamW opt;
    train::TrainConfig tc;
    tc.steps = 2;
    tc.batch = batch;
    tc.grad_accum = accum;
    train::Trainer t(model, opt, corpus, tc);
    return t.run().peak_activation_bytes;
  };
  EXPECT_LT(run(1, 8), run(8, 1));
}

TEST(CsvSink, WritesHeaderAndRows) {
  const std::string path = std::string(::testing::TempDir()) + "log.csv";
  {
    obs::CsvSink log(path, {"step", "loss"});
    EXPECT_TRUE(log.enabled());
    log.row({1, 0.5});
    log.row({2, 0.25});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "step,loss");
  std::getline(in, line);
  EXPECT_EQ(line, "1,0.5");
  std::getline(in, line);
  EXPECT_EQ(line, "2,0.25");
}

TEST(CsvSink, EmptyPathDisables) {
  obs::CsvSink log("", {"a"});
  EXPECT_FALSE(log.enabled());
  log.row({1});  // must be a safe no-op
}

}  // namespace
}  // namespace apollo
