// Finite-difference gradient checker (caffe2 GradientChecker style): every
// autograd op used by the nano LLaMA model is validated against central
// differences of the scalar probe loss ⟨f(x), W⟩ at two step sizes — and
// under both single- and multi-threaded execution, since the backward
// closures run on top of the parallel tensor kernels.
//
// Step-size economics in fp32: at h = 1e-3 truncation error (O(h²·f'''))
// dominates; at h = 1e-5 the fp32 rounding noise of the forward pass
// (≈ eps·|f| / 2h with eps ≈ 1.2e-7) dominates, so the threshold must be
// looser there. Both regimes agreeing with the analytic gradient rules out
// a sign/transpose bug masked by one particular step size.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "autograd/tape.h"
#include "core/threadpool.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

Matrix random_matrix(int64_t r, int64_t c, uint64_t seed, float scale = 1.f) {
  Matrix m(r, c);
  Rng rng(seed);
  m.fill_gaussian(rng, 0.f, scale);
  return m;
}

using GraphFn = std::function<ag::Var(ag::Tape&, const std::vector<ag::Var>&)>;

// One (stepsize, threshold) probe configuration, caffe2-checker style:
// `threshold` is relative to max(1, |fd|), so unit-scale gradients are
// compared absolutely and large ones relatively.
struct CheckConfig {
  float stepsize;
  float threshold;
};

// The sweep every op runs: coarse step (truncation-limited) and fine step
// (fp32-noise-limited), each under sequential and 4-lane execution.
const CheckConfig kConfigs[] = {{1e-3f, 2e-2f}, {1e-5f, 2e-1f}};
const int kThreadCounts[] = {1, 4};

class GradientChecker {
 public:
  GradientChecker(std::vector<Matrix> inputs, GraphFn fn, uint64_t probe_seed)
      : inputs_(std::move(inputs)), fn_(std::move(fn)),
        probe_seed_(probe_seed) {}

  void run_all() {
    for (int threads : kThreadCounts) {
      core::set_thread_count(threads);
      for (const CheckConfig& cfg : kConfigs) {
        SCOPED_TRACE(testing::Message() << "threads=" << threads
                                        << " h=" << cfg.stepsize);
        check(cfg);
      }
    }
    core::set_thread_count(0);
  }

 private:
  void check(const CheckConfig& cfg) {
    std::vector<Matrix> grads;
    for (const auto& in : inputs_) grads.emplace_back(in.rows(), in.cols());

    Matrix probe;
    {
      ag::Tape tape;
      std::vector<ag::Var> leaves;
      for (size_t i = 0; i < inputs_.size(); ++i)
        leaves.push_back(tape.leaf(&inputs_[i], &grads[i]));
      ag::Var y = fn_(tape, leaves);
      probe = random_matrix(tape.value(y).rows(), tape.value(y).cols(),
                            probe_seed_);
      tape.backward(tape.dot(y, probe));
    }

    auto eval = [&]() {
      ag::Tape tape;
      std::vector<ag::Var> leaves;
      for (auto& in : inputs_) leaves.push_back(tape.leaf(&in, nullptr));
      ag::Var y = fn_(tape, leaves);
      double acc = 0;
      const Matrix& v = tape.value(y);
      for (int64_t i = 0; i < v.size(); ++i)
        acc += static_cast<double>(v[i]) * probe[i];
      return acc;
    };

    const float h = cfg.stepsize;
    for (size_t k = 0; k < inputs_.size(); ++k) {
      for (int64_t i = 0; i < inputs_[k].size(); ++i) {
        const float orig = inputs_[k][i];
        inputs_[k][i] = orig + h;
        const double up = eval();
        inputs_[k][i] = orig - h;
        const double down = eval();
        inputs_[k][i] = orig;
        const double fd = (up - down) / (2.0 * h);
        EXPECT_NEAR(grads[k][i], fd,
                    cfg.threshold * std::max(1.0, std::fabs(fd)))
            << "input " << k << " element " << i;
      }
    }
  }

  std::vector<Matrix> inputs_;
  GraphFn fn_;
  uint64_t probe_seed_;
};

TEST(GradCheck, Matmul) {
  GradientChecker({random_matrix(4, 6, 1), random_matrix(6, 5, 2)},
                  [](ag::Tape& t, const std::vector<ag::Var>& v) {
                    return t.matmul(v[0], v[1]);
                  },
                  100)
      .run_all();
}

TEST(GradCheck, MatmulBt) {
  GradientChecker({random_matrix(4, 6, 3), random_matrix(5, 6, 4)},
                  [](ag::Tape& t, const std::vector<ag::Var>& v) {
                    return t.matmul_bt(v[0], v[1]);
                  },
                  101)
      .run_all();
}

TEST(GradCheck, Add) {
  GradientChecker({random_matrix(5, 5, 5), random_matrix(5, 5, 6)},
                  [](ag::Tape& t, const std::vector<ag::Var>& v) {
                    return t.add(v[0], v[1]);
                  },
                  102)
      .run_all();
}

TEST(GradCheck, Mul) {
  GradientChecker({random_matrix(5, 5, 7), random_matrix(5, 5, 8)},
                  [](ag::Tape& t, const std::vector<ag::Var>& v) {
                    return t.mul(v[0], v[1]);
                  },
                  103)
      .run_all();
}

TEST(GradCheck, Scale) {
  GradientChecker({random_matrix(5, 5, 9)},
                  [](ag::Tape& t, const std::vector<ag::Var>& v) {
                    return t.scale(v[0], 0.37f);
                  },
                  104)
      .run_all();
}

TEST(GradCheck, Silu) {
  GradientChecker({random_matrix(5, 6, 10)},
                  [](ag::Tape& t, const std::vector<ag::Var>& v) {
                    return t.silu(v[0]);
                  },
                  105)
      .run_all();
}

TEST(GradCheck, RmsNorm) {
  GradientChecker(
      {random_matrix(4, 8, 11), random_matrix(1, 8, 12, 0.5f)},
      [](ag::Tape& t, const std::vector<ag::Var>& v) {
        return t.rmsnorm(v[0], v[1]);
      },
      106)
      .run_all();
}

TEST(GradCheck, Embedding) {
  GradientChecker({random_matrix(10, 6, 13)},
                  [](ag::Tape& t, const std::vector<ag::Var>& v) {
                    return t.embedding(v[0], {0, 3, 9, 3, 7});
                  },
                  107)
      .run_all();
}

TEST(GradCheck, Rope) {
  // 2 sequences of 4 positions, 2 heads of dim 4 (inputs 8×8).
  GradientChecker({random_matrix(8, 8, 14)},
                  [](ag::Tape& t, const std::vector<ag::Var>& v) {
                    return t.rope(v[0], /*n_heads=*/2, /*seq_len=*/4);
                  },
                  108)
      .run_all();
}

TEST(GradCheck, CausalAttention) {
  GradientChecker(
      {random_matrix(8, 8, 15, 0.5f), random_matrix(8, 8, 16, 0.5f),
       random_matrix(8, 8, 17, 0.5f)},
      [](ag::Tape& t, const std::vector<ag::Var>& v) {
        return t.causal_attention(v[0], v[1], v[2], /*n_heads=*/2,
                                  /*seq_len=*/4);
      },
      109)
      .run_all();
}

TEST(GradCheck, CrossEntropy) {
  // Includes an ignored (-1) target to exercise the masking path.
  GradientChecker({random_matrix(5, 7, 18)},
                  [](ag::Tape& t, const std::vector<ag::Var>& v) {
                    return t.cross_entropy(v[0], {1, 4, -1, 0, 6});
                  },
                  110)
      .run_all();
}

// The composition the nano model actually runs per layer: rmsnorm → linear
// (matmul_bt) → silu ⊙ linear → residual add. A chained check catches
// gradient-accumulation bugs single-op checks miss.
TEST(GradCheck, MlpBlockComposition) {
  GradientChecker(
      {random_matrix(4, 8, 19, 0.5f), random_matrix(1, 8, 20, 0.3f),
       random_matrix(12, 8, 21, 0.4f), random_matrix(12, 8, 22, 0.4f),
       random_matrix(8, 12, 23, 0.4f)},
      [](ag::Tape& t, const std::vector<ag::Var>& v) {
        ag::Var x = t.rmsnorm(v[0], v[1]);
        ag::Var gate = t.silu(t.matmul_bt(x, v[2]));
        ag::Var up = t.matmul_bt(x, v[3]);
        ag::Var out = t.matmul_bt(t.mul(gate, up), v[4]);
        return t.add(v[0], out);
      },
      111)
      .run_all();
}

}  // namespace
}  // namespace apollo
