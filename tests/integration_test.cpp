// End-to-end integration tests: short pre-training runs comparing optimizer
// families on identical data/model/schedule — the miniature version of the
// paper's headline claims. Kept short enough for CI; the bench/ binaries run
// the full-length versions.
#include <gtest/gtest.h>

#include "core/apollo.h"
#include "optim/adamw.h"
#include "optim/galore.h"
#include "optim/lowrank.h"
#include "optim/sgd.h"
#include "train/trainer.h"

namespace apollo {
namespace {

double pretrain_ppl(optim::Optimizer& opt, int steps = 250,
                    float lr = 0.01f) {
  nn::LlamaModel model(nn::llama_60m_proxy(), /*seed=*/42);
  data::SyntheticCorpus corpus({});
  train::TrainConfig cfg;
  cfg.steps = steps;
  cfg.batch = 4;
  cfg.lr = lr;
  train::Trainer t(model, opt, corpus, cfg);
  return t.run().final_perplexity;
}

TEST(Integration, ApolloWithinToleranceOfAdamW) {
  optim::AdamW adamw;
  const double adamw_ppl = pretrain_ppl(adamw, 250, 3e-3f);

  core::ApolloConfig cfg;
  cfg.rank = 8;  // 1/4 of hidden 32
  auto apollo_opt = core::Apollo::standard(cfg);
  const double apollo_ppl = pretrain_ppl(*apollo_opt, 250, 0.01f);

  // The paper's claim is parity-or-better; at this miniature scale allow a
  // 15% band in log-perplexity.
  EXPECT_LT(std::log(apollo_ppl), std::log(adamw_ppl) * 1.15)
      << "APOLLO " << apollo_ppl << " vs AdamW " << adamw_ppl;
}

TEST(Integration, ApolloMiniTrainsAtRankOne) {
  optim::AdamW adamw;
  const double adamw_ppl = pretrain_ppl(adamw, 250, 3e-3f);
  auto mini = core::Apollo::mini();
  const double mini_ppl = pretrain_ppl(*mini, 250, 0.01f);
  EXPECT_LT(std::log(mini_ppl), std::log(adamw_ppl) * 1.2)
      << "APOLLO-Mini " << mini_ppl << " vs AdamW " << adamw_ppl;
}

TEST(Integration, SgdUnderperformsAdaptiveMethods) {
  // Zhang et al. (2024a): plain SGD struggles on transformers. Give SGD a
  // generous LR and it should still trail AdamW clearly.
  optim::Sgd sgd(0.9f);
  const double sgd_ppl = pretrain_ppl(sgd, 250, 0.05f);
  optim::AdamW adamw;
  const double adamw_ppl = pretrain_ppl(adamw, 250, 3e-3f);
  EXPECT_GT(sgd_ppl, adamw_ppl * 1.1);
}

TEST(Integration, GaloreTrainsReasonably) {
  optim::GaloreConfig gcfg;
  gcfg.rank = 8;
  gcfg.scale = 0.25f;
  auto galore = optim::GaLore::galore(gcfg);
  const double ppl = pretrain_ppl(*galore, 250, 0.01f);
  EXPECT_LT(ppl, 150.0);  // clearly better than the 256-vocab uniform
}

TEST(Integration, LoraWeakAtPretraining) {
  // Table 2: LoRA-family trails full-parameter training from scratch.
  optim::AdapterConfig acfg;
  acfg.kind = optim::AdapterKind::kLora;
  acfg.rank = 8;
  optim::LowRankAdapter lora(acfg);
  const double lora_ppl = pretrain_ppl(lora, 250, 3e-3f);
  core::ApolloConfig cfg;
  cfg.rank = 8;
  auto apollo_opt = core::Apollo::standard(cfg);
  const double apollo_ppl = pretrain_ppl(*apollo_opt, 250, 0.01f);
  EXPECT_GT(lora_ppl, apollo_ppl);
}

TEST(Integration, HalvedRankBarelyHurtsApollo) {
  core::ApolloConfig full;
  full.rank = 8;
  auto a1 = core::Apollo::standard(full);
  const double p1 = pretrain_ppl(*a1, 250, 0.01f);
  core::ApolloConfig half;
  half.rank = 4;
  auto a2 = core::Apollo::standard(half);
  const double p2 = pretrain_ppl(*a2, 250, 0.01f);
  // Robustness-to-rank claim: halving the rank costs <10% in log-ppl.
  EXPECT_LT(std::log(p2), std::log(p1) * 1.10);
}

TEST(Integration, IdenticalSeedsGiveIdenticalRuns) {
  core::ApolloConfig cfg;
  cfg.rank = 4;
  auto a1 = core::Apollo::standard(cfg);
  auto a2 = core::Apollo::standard(cfg);
  EXPECT_EQ(pretrain_ppl(*a1, 60), pretrain_ppl(*a2, 60));
}

}  // namespace
}  // namespace apollo
