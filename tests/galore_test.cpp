// GoLore (SVD-early → random-late projection switching) tests.
#include <gtest/gtest.h>

#include "core/factory.h"
#include "optim/galore.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

std::unique_ptr<nn::Parameter> make_param(uint64_t seed) {
  auto p = std::make_unique<nn::Parameter>("w", 8, 32);
  Rng rng(seed);
  p->value.fill_gaussian(rng, 0.f, 0.5f);
  p->grad.fill_gaussian(rng, 0.f, 0.1f);
  return p;
}

TEST(GoLore, MatchesSvdGaloreBeforeSwitch) {
  auto p1 = make_param(1);
  auto p2 = make_param(1);
  optim::GaloreConfig cfg;
  cfg.rank = 4;
  cfg.seed = 9;
  auto golore = optim::GaLore::golore(cfg, /*switch_after=*/100);
  auto galore = optim::GaLore::galore(cfg);
  golore->set_lr(0.01f);
  galore->set_lr(0.01f);
  Rng rng(2);
  for (int s = 0; s < 5; ++s) {
    golore->step({p1.get()});
    galore->step({p2.get()});
    Matrix g(8, 32);
    g.fill_gaussian(rng, 0.f, 0.1f);
    p1->grad = g;
    p2->grad = g;
  }
  // Identical trajectories while still in the SVD phase.
  EXPECT_LT(max_abs_diff(p1->value, p2->value), 1e-7f);
}

TEST(GoLore, DivergesFromSvdAfterSwitch) {
  auto p1 = make_param(3);
  auto p2 = make_param(3);
  optim::GaloreConfig cfg;
  cfg.rank = 4;
  cfg.seed = 9;
  cfg.update_freq = 2;
  auto golore = optim::GaLore::golore(cfg, /*switch_after=*/3);
  auto galore = optim::GaLore::galore(cfg);
  golore->set_lr(0.01f);
  galore->set_lr(0.01f);
  Rng rng(4);
  for (int s = 0; s < 8; ++s) {
    golore->step({p1.get()});
    galore->step({p2.get()});
    Matrix g(8, 32);
    g.fill_gaussian(rng, 0.f, 0.1f);
    p1->grad = g;
    p2->grad = g;
  }
  EXPECT_GT(max_abs_diff(p1->value, p2->value), 1e-6f);
}

TEST(GoLore, DropsStoredProjectorAfterSwitch) {
  // After switching to random projections, the m·r SVD projector is freed:
  // state drops to the Flora footprint.
  auto p = make_param(5);
  optim::GaloreConfig cfg;
  cfg.rank = 4;
  cfg.update_freq = 2;
  auto opt = optim::GaLore::golore(cfg, /*switch_after=*/2);
  opt->set_lr(0.01f);
  Rng rng(6);
  opt->step({p.get()});
  const int64_t with_svd = opt->state_bytes();
  for (int s = 0; s < 4; ++s) {
    p->grad.fill_gaussian(rng, 0.f, 0.1f);
    opt->step({p.get()});
  }
  const int64_t with_rp = opt->state_bytes();
  EXPECT_LT(with_rp, with_svd);
  EXPECT_EQ(with_rp, 2 * 4 * 32 * 4 + 8);  // Flora footprint: 2nr + seed
}

TEST(GoLore, InFactoryRegistry) {
  core::FactoryOptions fo;
  fo.rank = 4;
  auto opt = core::make_optimizer("golore", fo);
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->name(), "GoLore");
  EXPECT_FLOAT_EQ(core::default_lr("golore"), 1e-2f);
}

}  // namespace
}  // namespace apollo
