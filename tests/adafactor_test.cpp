// Adafactor tests: factored-V reconstruction, memory accounting, clipping.
#include <gtest/gtest.h>

#include <cmath>

#include "optim/adafactor.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

std::unique_ptr<nn::Parameter> make_param(int64_t rows, int64_t cols,
                                          uint64_t seed,
                                          bool matrix = true) {
  auto p = std::make_unique<nn::Parameter>("w", rows, cols, matrix);
  Rng rng(seed);
  p->value.fill_gaussian(rng, 0.f, 1.f);
  p->grad.fill_gaussian(rng, 0.f, 0.1f);
  return p;
}

TEST(Adafactor, StateIsRowPlusCol) {
  auto p = make_param(16, 64, 1);
  optim::Adafactor opt;
  opt.set_lr(1e-3f);
  opt.step({p.get()});
  EXPECT_EQ(opt.state_bytes(), (16 + 64) * 4);
}

TEST(Adafactor, VectorParamsKeepFullV) {
  auto p = make_param(1, 32, 2, /*matrix=*/false);
  optim::Adafactor opt;
  opt.set_lr(1e-3f);
  opt.step({p.get()});
  EXPECT_EQ(opt.state_bytes(), 32 * 4);
}

TEST(Adafactor, DescentDirection) {
  auto p = make_param(8, 24, 3);
  Matrix before = p->value;
  optim::Adafactor opt;
  opt.set_lr(1e-2f);
  opt.step({p.get()});
  Matrix delta = sub(p->value, before);
  double dot = 0;
  for (int64_t i = 0; i < delta.size(); ++i)
    dot += static_cast<double>(delta[i]) * p->grad[i];
  EXPECT_LT(dot, 0.0);
}

TEST(Adafactor, RankOneVMatchesUniformColumns) {
  // If G's squared entries are rank-1 separable (|g_ij| = a_i · b_j), the
  // factored V̂ is exact, so the update matches element-wise normalization
  // (up to shared clipping).
  auto p = std::make_unique<nn::Parameter>("w", 4, 6);
  p->value.fill(0.f);
  const float a[4] = {1.f, 2.f, 0.5f, 1.5f};
  const float b[6] = {1.f, 3.f, 0.25f, 2.f, 1.f, 0.5f};
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 6; ++j) p->grad.at(i, j) = a[i] * b[j];
  optim::Adafactor opt;
  opt.set_lr(1.f);
  opt.step({p.get()});
  // All elements of |update| equal (G/√G² = sign), scaled by clipping.
  float mag = std::fabs(p->value[0]);
  EXPECT_GT(mag, 0.f);
  for (int64_t i = 0; i < p->value.size(); ++i)
    EXPECT_NEAR(std::fabs(p->value[i]), mag, mag * 0.02f);
}

TEST(Adafactor, ClippingBoundsUpdateRms) {
  auto p = make_param(8, 24, 4);
  p->value.fill(0.f);
  optim::Adafactor opt;
  opt.set_lr(1.f);
  opt.step({p.get()});
  // RMS of the (lr=1) update ≤ clip threshold 1.
  double acc = 0;
  for (int64_t i = 0; i < p->value.size(); ++i)
    acc += static_cast<double>(p->value[i]) * p->value[i];
  EXPECT_LE(std::sqrt(acc / static_cast<double>(p->value.size())), 1.0001);
}

TEST(Adafactor, MemoryBelowAdamMiniAboveApolloMini) {
  const int64_t m = 32, n = 128;
  auto p = make_param(m, n, 5);
  optim::Adafactor opt;
  opt.set_lr(1e-3f);
  opt.step({p.get()});
  const int64_t adam_mini = (m * n + m) * 4;
  const int64_t apollo_mini = (2 * n + 2) * 4;
  EXPECT_LT(opt.state_bytes(), adam_mini);
  EXPECT_GT(opt.state_bytes(), apollo_mini / 2);
}

TEST(Adafactor, OptionalFirstMoment) {
  optim::AdafactorConfig cfg;
  cfg.beta1 = 0.9f;
  auto p = make_param(8, 16, 6);
  optim::Adafactor opt(cfg);
  opt.set_lr(1e-3f);
  opt.step({p.get()});
  // With momentum on, state grows by a full mn buffer.
  EXPECT_EQ(opt.state_bytes(), (8 + 16 + 8 * 16) * 4);
}

TEST(Adafactor, TrainsAQuadratic) {
  // Minimize ‖W‖² via gradient 2W: Adafactor should shrink the weights.
  auto p = make_param(6, 10, 7);
  optim::Adafactor opt;
  opt.set_lr(0.05f);
  const double start = frobenius_norm(p->value);
  for (int s = 0; s < 50; ++s) {
    for (int64_t i = 0; i < p->value.size(); ++i)
      p->grad[i] = 2.f * p->value[i];
    opt.step({p.get()});
  }
  EXPECT_LT(frobenius_norm(p->value), start * 0.3);
}

}  // namespace
}  // namespace apollo
