// Memory/throughput model tests: the Table-1 formulas, the paper's reported
// memory anchor points, and the ordering relations that the Fig. 1/2/9
// system results rest on.
#include <gtest/gtest.h>

#include "sysmodel/memory_model.h"
#include "sysmodel/throughput_model.h"

namespace apollo::sysmodel {
namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

TEST(MemoryModel, ParamCountsMatchPaperScale) {
  // Table 8 models; counts should land near the nominal sizes.
  EXPECT_NEAR(spec_llama_60m().param_count() / 1e6, 58, 10);
  EXPECT_NEAR(spec_llama_130m().param_count() / 1e6, 134, 15);
  EXPECT_NEAR(spec_llama_350m().param_count() / 1e6, 368, 30);
  // Table 8's "1B" config is nominal; actual count is ~1.74B.
  EXPECT_NEAR(spec_llama_1b().param_count() / 1e9, 1.74, 0.2);
  EXPECT_NEAR(spec_llama_7b().param_count() / 1e9, 6.74, 0.5);
  EXPECT_NEAR(spec_llama_13b().param_count() / 1e9, 13.0, 1.0);
}

TEST(MemoryModel, Table1FormulasPerMatrix) {
  const int64_t m = 512, n = 2048, r = 128;
  EXPECT_EQ(state_elements(Method::kAdamW, m, n, r), 2 * m * n);
  EXPECT_EQ(state_elements(Method::kSgd, m, n, r), 0);
  EXPECT_EQ(state_elements(Method::kSgdMomentum, m, n, r), m * n);
  EXPECT_EQ(state_elements(Method::kAdamMini, m, n, r), m * n + m);
  EXPECT_EQ(state_elements(Method::kGaLore, m, n, r), m * r + 2 * n * r);
  EXPECT_EQ(state_elements(Method::kFira, m, n, r), m * r + 2 * n * r + 1);
  EXPECT_EQ(state_elements(Method::kFlora, m, n, r), 2 * n * r + 1);
  EXPECT_EQ(state_elements(Method::kApollo, m, n, r), 2 * n * r + 2);
  EXPECT_EQ(state_elements(Method::kApolloMini, m, n, r), 2 * n + 2);
}

TEST(MemoryModel, ShapeOrientationIrrelevant) {
  // The formulas normalize to m ≤ n internally.
  EXPECT_EQ(state_elements(Method::kApollo, 2048, 512, 128),
            state_elements(Method::kApollo, 512, 2048, 128));
}

TEST(MemoryModel, RankCappedAtMinDim) {
  EXPECT_EQ(state_elements(Method::kGaLore, 16, 64, 9999),
            16 * 16 + 2 * 64 * 16);
}

TEST(MemoryModel, PaperTable2MemoryAnchors) {
  // Table 2 reports weights+states (BF16). AdamW on 60M: 0.36G;
  // GaLore r=128: 0.24G; APOLLO-Mini: 0.12G.
  auto model = spec_llama_60m();
  auto total = [&](Method m, int64_t rank) {
    MethodSpec ms;
    ms.method = m;
    ms.rank = rank;
    auto b = estimate_memory(model, ms, 1);
    return (b.weights + b.optimizer_states) / kGiB;
  };
  EXPECT_NEAR(total(Method::kAdamW, 0), 0.36, 0.06);
  // The paper quotes GaLore's published 0.24G estimate, which keeps dense
  // Adam states on the embeddings; our accounting projects every 2-D weight
  // (as the APOLLO-Mini row requires), landing slightly lower. Assert the
  // band and the orderings rather than the quoted point value.
  EXPECT_GT(total(Method::kGaLore, 128), 0.14);
  EXPECT_LT(total(Method::kGaLore, 128), 0.30);
  EXPECT_LE(total(Method::kApollo, 128), total(Method::kGaLore, 128));
  EXPECT_LT(total(Method::kApollo, 64), total(Method::kApollo, 128));
  EXPECT_NEAR(total(Method::kApolloMini, 1), 0.12, 0.03);
}

TEST(MemoryModel, PaperTable3OptimizerStateAnchors) {
  // Table 3 (7B): 8-bit Adam 13G, 8-bit GaLore 4.9G, APOLLO r=256 1.6G,
  // APOLLO-Mini ~0G.
  auto model = spec_llama_7b();
  auto states = [&](Method m, int64_t rank, int bits) {
    MethodSpec ms;
    ms.method = m;
    ms.rank = rank;
    ms.state_bits = bits;
    return estimate_memory(model, ms, 1).optimizer_states / kGiB;
  };
  EXPECT_NEAR(states(Method::kAdamW, 0, 8), 13.0, 1.5);
  EXPECT_NEAR(states(Method::kGaLore, 1024, 8), 4.9, 1.2);
  EXPECT_NEAR(states(Method::kApollo, 256, 16), 1.6, 0.5);
  EXPECT_LT(states(Method::kApolloMini, 1, 16), 0.1);
}

TEST(MemoryModel, OrderingAcrossMethods) {
  auto model = spec_llama_350m();
  auto states = [&](Method m, int64_t rank) {
    MethodSpec ms;
    ms.method = m;
    ms.rank = rank;
    return estimate_memory(model, ms, 1).optimizer_states;
  };
  const int64_t r = 256;  // 1/4 of hidden
  EXPECT_GT(states(Method::kAdamW, 0), states(Method::kAdamMini, 0));
  EXPECT_GT(states(Method::kAdamMini, 0), states(Method::kGaLore, r));
  EXPECT_GT(states(Method::kGaLore, r), states(Method::kApollo, r));
  EXPECT_GT(states(Method::kApollo, r), states(Method::kApollo, r / 2));
  EXPECT_GT(states(Method::kApollo, r / 2), states(Method::kApolloMini, 1));
  EXPECT_GT(states(Method::kApolloMini, 1), states(Method::kSgd, 0));
}

TEST(MemoryModel, QuantizedWeightsShrink) {
  auto model = spec_llama_7b();
  MethodSpec fp;
  fp.method = Method::kApolloMini;
  fp.rank = 1;
  MethodSpec q = fp;
  q.weight_bits = 8;
  const auto bfp = estimate_memory(model, fp, 1);
  const auto bq = estimate_memory(model, q, 1);
  EXPECT_LT(bq.weights, bfp.weights * 0.55);
}

TEST(MemoryModel, TwelveGigLlama7bClaim) {
  // Fig. 1 (middle): Q-APOLLO-Mini + layer-wise gradient updates pre-trains
  // LLaMA-7B under 12 GB at micro-batch 1 (seq 256).
  MethodSpec ms;
  ms.method = Method::kApolloMini;
  ms.rank = 1;
  ms.weight_bits = 8;
  ms.layerwise_grad_update = true;
  const auto b = estimate_memory(spec_llama_7b(), ms, 1);
  EXPECT_LT(b.total() / kGiB, 12.0);
  // While AdamW at the same batch needs far more.
  MethodSpec adamw;
  const auto ba = estimate_memory(spec_llama_7b(), adamw, 1);
  EXPECT_GT(ba.total() / kGiB, 50.0);
}

TEST(MemoryModel, Llama13bFitsA100WithApolloMini) {
  // The naive-DDP 13B claim: APOLLO-Mini under 80 GB at a usable batch.
  MethodSpec ms;
  ms.method = Method::kApolloMini;
  ms.rank = 1;
  const int64_t cap = 80ll << 30;
  EXPECT_GE(max_micro_batch(spec_llama_13b(), ms, cap), 1);
  MethodSpec adamw;
  EXPECT_EQ(max_micro_batch(spec_llama_13b(), adamw, cap), 0);
}

TEST(MemoryModel, MaxMicroBatchMonotonicInMemory) {
  auto model = spec_llama_7b();
  MethodSpec adamw;
  MethodSpec apollo;
  apollo.method = Method::kApollo;
  apollo.rank = 256;
  apollo.layerwise_grad_update = true;  // the paper's APOLLO system setting
  MethodSpec mini;
  mini.method = Method::kApolloMini;
  mini.rank = 1;
  mini.layerwise_grad_update = true;
  const int64_t cap = 80ll << 30;
  const int64_t ba = max_micro_batch(model, adamw, cap);
  const int64_t bp = max_micro_batch(model, apollo, cap);
  const int64_t bm = max_micro_batch(model, mini, cap);
  // Fig. 1 anchors: AdamW is stuck at a single-digit micro-batch while
  // APOLLO reaches ~4× that.
  EXPECT_GE(ba, 2);
  EXPECT_LE(ba, 8);
  EXPECT_LT(ba, bp);
  EXPECT_LE(bp, bm);
  EXPECT_GE(bp, 3 * ba);
}

TEST(ThroughputModel, SvdRefreshCostScalesWithModel) {
  const double s7b = projector_refresh_seconds(spec_llama_7b(), true);
  EXPECT_NEAR(s7b, 600.0, 1.0);  // anchored to the paper's 10 minutes
  EXPECT_LT(projector_refresh_seconds(spec_llama_350m(), true), s7b / 20);
  EXPECT_LT(projector_refresh_seconds(spec_llama_7b(), false), 1.0);
}

TEST(ThroughputModel, ApolloBeatsAdamWByAboutThreeTimes) {
  // Fig. 1 (right): ~3× throughput on 8×A100 from 4× batch.
  auto model = spec_llama_7b();
  GpuSpec gpu;
  MethodSpec adamw;
  MethodSpec apollo;
  apollo.method = Method::kApollo;
  apollo.rank = 256;
  apollo.layerwise_grad_update = true;
  const auto ta =
      end_to_end_throughput(model, adamw, gpu, 512, false, 200);
  const auto tp =
      end_to_end_throughput(model, apollo, gpu, 512, false, 200);
  ASSERT_GT(ta.tokens_per_s, 0);
  const double speedup = tp.tokens_per_s / ta.tokens_per_s;
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 5.0);
}

TEST(ThroughputModel, GaloreSvdTaxVisible) {
  // Same memory as APOLLO but paying SVD every 200 steps: measurably slower.
  auto model = spec_llama_7b();
  GpuSpec gpu;
  MethodSpec galore;
  galore.method = Method::kGaLore;
  galore.rank = 1024;
  galore.layerwise_grad_update = true;
  MethodSpec apollo;
  apollo.method = Method::kApollo;
  apollo.rank = 256;
  apollo.layerwise_grad_update = true;
  const auto tg = end_to_end_throughput(model, galore, gpu, 512, true, 200);
  const auto tp = end_to_end_throughput(model, apollo, gpu, 512, false, 200);
  EXPECT_GT(tp.tokens_per_s, tg.tokens_per_s * 1.2);
}

TEST(ThroughputModel, StepCostComponentsPositive) {
  auto c = step_cost(spec_llama_7b(), GpuSpec{}, 32, 512, true, 200);
  EXPECT_GT(c.compute_s, 0);
  EXPECT_GT(c.projector_s, 0);
  EXPECT_GT(c.overhead_s, 0);
  EXPECT_NEAR(c.total(), c.compute_s + c.projector_s + c.overhead_s, 1e-12);
}

TEST(MemoryModel, MethodNamesComplete) {
  EXPECT_STREQ(method_name(Method::kApollo), "APOLLO");
  EXPECT_STREQ(method_name(Method::kApolloMini), "APOLLO-Mini");
  EXPECT_STREQ(method_name(Method::kGaLore), "GaLore");
}

}  // namespace
}  // namespace apollo::sysmodel
