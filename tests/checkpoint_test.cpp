// Checkpoint serialization tests, including corruption/mismatch rejection.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "train/checkpoint.h"

namespace apollo {
namespace {

nn::LlamaConfig tiny() {
  nn::LlamaConfig c;
  c.vocab = 32;
  c.hidden = 16;
  c.intermediate = 40;
  c.n_heads = 2;
  c.n_layers = 1;
  c.seq_len = 8;
  return c;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = temp_path("ckpt_roundtrip.bin");
  nn::LlamaModel a(tiny(), 1);
  auto r = train::save_checkpoint(path, a, 123);
  ASSERT_TRUE(r.ok) << r.error;

  nn::LlamaModel b(tiny(), 2);  // different init
  auto l = train::load_checkpoint(path, b);
  ASSERT_TRUE(l.ok) << l.error;
  EXPECT_EQ(l.step, 123);
  auto pa = a.parameters();
  auto pb = b.parameters();
  for (size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(pa[i]->value == pb[i]->value) << pa[i]->name;
}

TEST(Checkpoint, MissingFileFails) {
  nn::LlamaModel m(tiny(), 1);
  auto l = train::load_checkpoint(temp_path("does_not_exist.bin"), m);
  EXPECT_FALSE(l.ok);
  EXPECT_NE(l.error.find("cannot open"), std::string::npos);
}

TEST(Checkpoint, WrongArchitectureRejected) {
  const std::string path = temp_path("ckpt_arch.bin");
  nn::LlamaModel a(tiny(), 1);
  ASSERT_TRUE(train::save_checkpoint(path, a, 0).ok);

  nn::LlamaConfig other = tiny();
  other.hidden = 32;
  other.intermediate = 88;
  nn::LlamaModel b(other, 1);
  auto l = train::load_checkpoint(path, b);
  EXPECT_FALSE(l.ok);
}

TEST(Checkpoint, TruncatedFileRejected) {
  const std::string path = temp_path("ckpt_trunc.bin");
  nn::LlamaModel a(tiny(), 1);
  ASSERT_TRUE(train::save_checkpoint(path, a, 0).ok);
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  nn::LlamaModel b(tiny(), 2);
  EXPECT_FALSE(train::load_checkpoint(path, b).ok);
}

TEST(Checkpoint, GarbageFileRejected) {
  const std::string path = temp_path("ckpt_garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a checkpoint at all, not even close......", f);
  std::fclose(f);
  nn::LlamaModel m(tiny(), 1);
  auto l = train::load_checkpoint(path, m);
  EXPECT_FALSE(l.ok);
  EXPECT_NE(l.error.find("magic"), std::string::npos);
}

TEST(Checkpoint, ZeroByteFileGetsDistinctError) {
  // What a crashed non-atomic writer leaves behind right after O_TRUNC —
  // must be reported as empty, not as a magic/truncation failure.
  const std::string path = temp_path("ckpt_empty.bin");
  std::ofstream(path, std::ios::binary | std::ios::trunc).flush();
  nn::LlamaModel m(tiny(), 1);
  auto l = train::load_checkpoint(path, m);
  EXPECT_FALSE(l.ok);
  EXPECT_NE(l.error.find("empty checkpoint file"), std::string::npos)
      << l.error;
  EXPECT_EQ(l.error.find("magic"), std::string::npos) << l.error;
}

TEST(Checkpoint, SingleBitFlipDetectedByCrc) {
  const std::string path = temp_path("ckpt_bitflip.bin");
  nn::LlamaModel a(tiny(), 1);
  ASSERT_TRUE(train::save_checkpoint(path, a, 0).ok);
  // Flip one bit inside the first parameter's float data. The flipped value
  // is still a perfectly plausible float — only the section CRC can tell.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 100, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, 100, SEEK_SET);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);
  nn::LlamaModel b(tiny(), 2);
  auto l = train::load_checkpoint(path, b);
  EXPECT_FALSE(l.ok);
  EXPECT_NE(l.error.find("CRC mismatch in parameter section"),
            std::string::npos)
      << l.error;
}

TEST(Checkpoint, SuccessfulSaveLeavesNoTempFile) {
  const std::string path = temp_path("ckpt_notmp.bin");
  nn::LlamaModel a(tiny(), 1);
  ASSERT_TRUE(train::save_checkpoint(path, a, 0).ok);
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST(Checkpoint, UnwritablePathReportsRetryExhaustion) {
  nn::LlamaModel a(tiny(), 1);
  auto r = train::save_checkpoint(
      temp_path("no_such_dir/ckpt.bin"), a, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("after 3 attempts"), std::string::npos) << r.error;
}

TEST(Checkpoint, LegacyV1FileStillLoads) {
  // Hand-crafted v1 layout (no CRCs, weights only): readers must stay
  // byte-compatible with checkpoints written before format v3.
  const std::string path = temp_path("ckpt_v1.bin");
  nn::LlamaModel a(tiny(), 1);
  auto params = a.parameters();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("APLO", 1, 4, f);
  const uint32_t version = 1;
  const int64_t step = 77;
  const uint32_t count = static_cast<uint32_t>(params.size());
  std::fwrite(&version, sizeof version, 1, f);
  std::fwrite(&step, sizeof step, 1, f);
  std::fwrite(&count, sizeof count, 1, f);
  for (const nn::Parameter* p : params) {
    const uint32_t name_len = static_cast<uint32_t>(p->name.size());
    const int64_t rows = p->value.rows(), cols = p->value.cols();
    std::fwrite(&name_len, sizeof name_len, 1, f);
    std::fwrite(p->name.data(), 1, name_len, f);
    std::fwrite(&rows, sizeof rows, 1, f);
    std::fwrite(&cols, sizeof cols, 1, f);
    std::fwrite(p->value.data(), sizeof(float),
                static_cast<size_t>(p->value.size()), f);
  }
  std::fclose(f);

  nn::LlamaModel b(tiny(), 2);
  auto l = train::load_checkpoint(path, b);
  ASSERT_TRUE(l.ok) << l.error;
  EXPECT_EQ(l.step, 77);
  EXPECT_FALSE(l.optimizer_state_restored);
  for (size_t i = 0; i < params.size(); ++i)
    EXPECT_TRUE(params[i]->value == b.parameters()[i]->value);
}

}  // namespace
}  // namespace apollo
