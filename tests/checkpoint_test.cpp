// Checkpoint serialization tests, including corruption/mismatch rejection.
#include <gtest/gtest.h>

#include <cstdio>

#include "train/checkpoint.h"

namespace apollo {
namespace {

nn::LlamaConfig tiny() {
  nn::LlamaConfig c;
  c.vocab = 32;
  c.hidden = 16;
  c.intermediate = 40;
  c.n_heads = 2;
  c.n_layers = 1;
  c.seq_len = 8;
  return c;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = temp_path("ckpt_roundtrip.bin");
  nn::LlamaModel a(tiny(), 1);
  auto r = train::save_checkpoint(path, a, 123);
  ASSERT_TRUE(r.ok) << r.error;

  nn::LlamaModel b(tiny(), 2);  // different init
  auto l = train::load_checkpoint(path, b);
  ASSERT_TRUE(l.ok) << l.error;
  EXPECT_EQ(l.step, 123);
  auto pa = a.parameters();
  auto pb = b.parameters();
  for (size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(pa[i]->value == pb[i]->value) << pa[i]->name;
}

TEST(Checkpoint, MissingFileFails) {
  nn::LlamaModel m(tiny(), 1);
  auto l = train::load_checkpoint(temp_path("does_not_exist.bin"), m);
  EXPECT_FALSE(l.ok);
  EXPECT_NE(l.error.find("cannot open"), std::string::npos);
}

TEST(Checkpoint, WrongArchitectureRejected) {
  const std::string path = temp_path("ckpt_arch.bin");
  nn::LlamaModel a(tiny(), 1);
  ASSERT_TRUE(train::save_checkpoint(path, a, 0).ok);

  nn::LlamaConfig other = tiny();
  other.hidden = 32;
  other.intermediate = 88;
  nn::LlamaModel b(other, 1);
  auto l = train::load_checkpoint(path, b);
  EXPECT_FALSE(l.ok);
}

TEST(Checkpoint, TruncatedFileRejected) {
  const std::string path = temp_path("ckpt_trunc.bin");
  nn::LlamaModel a(tiny(), 1);
  ASSERT_TRUE(train::save_checkpoint(path, a, 0).ok);
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  nn::LlamaModel b(tiny(), 2);
  EXPECT_FALSE(train::load_checkpoint(path, b).ok);
}

TEST(Checkpoint, GarbageFileRejected) {
  const std::string path = temp_path("ckpt_garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a checkpoint at all, not even close......", f);
  std::fclose(f);
  nn::LlamaModel m(tiny(), 1);
  auto l = train::load_checkpoint(path, m);
  EXPECT_FALSE(l.ok);
  EXPECT_NE(l.error.find("magic"), std::string::npos);
}

}  // namespace
}  // namespace apollo
