// AdamW-bf16 tests: tracks fp32 AdamW closely at half the state bytes.
#include <gtest/gtest.h>

#include "optim/adamw.h"
#include "optim/adamw_bf16.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

TEST(AdamWBf16, TracksFp32Closely) {
  nn::Parameter p("w", 8, 64), q("w", 8, 64);
  Rng rng(1);
  p.value.fill_gaussian(rng, 0.f, 1.f);
  q.value = p.value;
  optim::AdamWBf16 a16;
  optim::AdamW a32;
  a16.set_lr(0.01f);
  a32.set_lr(0.01f);
  Rng grad_rng(2);
  for (int s = 0; s < 20; ++s) {
    p.grad.fill_gaussian(grad_rng, 0.f, 0.1f);
    q.grad = p.grad;
    a16.step({&p});
    a32.step({&q});
  }
  // bf16 keeps ~3 decimal digits; 20 steps of drift stay tiny relative to
  // the ~0.2 total weight movement.
  EXPECT_LT(max_abs_diff(p.value, q.value), 0.02f);
}

TEST(AdamWBf16, StateIsHalfOfFp32) {
  nn::Parameter p("w", 8, 64);
  Rng rng(3);
  p.grad.fill_gaussian(rng, 0.f, 0.1f);
  optim::AdamWBf16 opt;
  opt.set_lr(0.01f);
  opt.step({&p});
  EXPECT_EQ(opt.state_bytes(), 2 * 8 * 64 * 2);  // two bf16 moments
}

TEST(AdamWBf16, Name) {
  EXPECT_EQ(optim::AdamWBf16().name(), "AdamW (bf16 states)");
}

}  // namespace
}  // namespace apollo
