// INT8 quantization tests: round-trip error bounds, stochastic-rounding
// unbiasedness, block-quantized state semantics and byte accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/quant.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

Matrix random_matrix(int64_t r, int64_t c, uint64_t seed, float scale = 1.f) {
  Matrix m(r, c);
  Rng rng(seed);
  m.fill_gaussian(rng, 0.f, scale);
  return m;
}

TEST(GroupQuantized, RoundTripErrorWithinHalfStep) {
  Matrix m = random_matrix(16, 32, 1);
  GroupQuantized q = GroupQuantized::quantize(m, 128);
  Matrix back = q.dequantize();
  // Per group, error ≤ scale/2 = absmax/254.
  const int64_t group = 128;
  for (int64_t g = 0; g * group < m.size(); ++g) {
    float absmax = 0.f;
    const int64_t lo = g * group, hi = std::min(m.size(), lo + group);
    for (int64_t i = lo; i < hi; ++i)
      absmax = std::max(absmax, std::fabs(m[i]));
    for (int64_t i = lo; i < hi; ++i)
      EXPECT_LE(std::fabs(m[i] - back[i]), absmax / 254.f + 1e-7f);
  }
}

TEST(GroupQuantized, ExactForQuantizedValues) {
  Matrix m(1, 4);
  m[0] = -127.f; m[1] = 0.f; m[2] = 64.f; m[3] = 127.f;
  GroupQuantized q = GroupQuantized::quantize(m, 4);
  Matrix back = q.dequantize();
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(back[i], m[i]);
}

TEST(GroupQuantized, StochasticRoundingUnbiased) {
  // A value exactly halfway between codes must round up ~50% of the time.
  Matrix m(1, 2);
  m[0] = 127.f;  // pins the scale to 1 code unit
  m[1] = 64.5f;
  Rng rng(7);
  int ups = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    GroupQuantized q = GroupQuantized::quantize_stochastic(m, rng, 2);
    ups += (q.dequantize()[1] > 64.4f);
  }
  const double frac = static_cast<double>(ups) / trials;
  EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(GroupQuantized, BytesAccounting) {
  Matrix m = random_matrix(16, 16, 2);  // 256 elements, 2 groups of 128
  GroupQuantized q = GroupQuantized::quantize(m, 128);
  EXPECT_EQ(q.bytes(), 256 + 2 * 4);
}

TEST(GroupQuantized, PartialLastGroup) {
  Matrix m = random_matrix(1, 200, 3);  // 1 full group + 72 leftover
  GroupQuantized q = GroupQuantized::quantize(m, 128);
  EXPECT_EQ(q.bytes(), 200 + 2 * 4);
  EXPECT_LT(max_abs_diff(q.dequantize(), m), abs_max(m) / 100.f);
}

TEST(BlockQuantized, SignedRoundTrip) {
  Matrix m = random_matrix(8, 32, 4);
  BlockQuantized b(8, 32, /*signed=*/true);
  b.store(m);
  Matrix back = b.load();
  EXPECT_LT(max_abs_diff(back, m), abs_max(m) / 100.f);
}

TEST(BlockQuantized, UnsignedRoundTrip) {
  Matrix m = random_matrix(8, 32, 5);
  for (int64_t i = 0; i < m.size(); ++i) m[i] = m[i] * m[i];  // non-negative
  BlockQuantized b(8, 32, /*signed=*/false);
  b.store(m);
  Matrix back = b.load();
  // 255 codes over [0, max]: finer than the signed code for non-negatives.
  EXPECT_LT(max_abs_diff(back, m), abs_max(m) / 200.f);
  for (int64_t i = 0; i < back.size(); ++i) EXPECT_GE(back[i], 0.f);
}

TEST(BlockQuantized, FreshStateLoadsZero) {
  BlockQuantized b(4, 4, true);
  Matrix z = b.load();
  // Unquantized fresh state must decode to exactly zero (scale init 0).
  for (int64_t i = 0; i < z.size(); ++i) EXPECT_FLOAT_EQ(z[i], 0.f);
}

TEST(BlockQuantized, BytesAccounting) {
  BlockQuantized b(2, 128, true, 128);  // 256 elems → 2 blocks
  EXPECT_EQ(b.bytes(), 256 + 2 * 4);
}

TEST(BlockQuantized, RepeatedStoreLoadStable) {
  // store(load()) must be a fixed point (codes already representable).
  Matrix m = random_matrix(4, 64, 6);
  BlockQuantized b(4, 64, true);
  b.store(m);
  Matrix once = b.load();
  b.store(once);
  Matrix twice = b.load();
  EXPECT_LT(max_abs_diff(once, twice), 1e-6f);
}

}  // namespace
}  // namespace apollo
