// Gradient checks: every tape op's backward is validated against central
// finite differences of a scalar probe loss ⟨f(x), W⟩.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/tape.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

Matrix random_matrix(int64_t r, int64_t c, uint64_t seed, float scale = 1.f) {
  Matrix m(r, c);
  Rng rng(seed);
  m.fill_gaussian(rng, 0.f, scale);
  return m;
}

// Builds the graph via `fn` (which sees the leaf vars), returns scalar loss.
using GraphFn = std::function<ag::Var(ag::Tape&, const std::vector<ag::Var>&)>;

// Checks d⟨fn(inputs), W⟩/d(inputs) against central differences.
void grad_check(std::vector<Matrix> inputs, const GraphFn& fn,
                uint64_t probe_seed, float h = 1e-3f, float tol = 2e-2f) {
  // Analytic gradients.
  std::vector<Matrix> grads;
  for (const auto& in : inputs) grads.emplace_back(in.rows(), in.cols());

  Matrix probe;
  {
    ag::Tape tape;
    std::vector<ag::Var> leaves;
    for (size_t i = 0; i < inputs.size(); ++i)
      leaves.push_back(tape.leaf(&inputs[i], &grads[i]));
    ag::Var y = fn(tape, leaves);
    probe = random_matrix(tape.value(y).rows(), tape.value(y).cols(),
                          probe_seed);
    ag::Var loss = tape.dot(y, probe);
    tape.backward(loss);
  }

  auto eval = [&]() {
    ag::Tape tape;
    std::vector<ag::Var> leaves;
    for (auto& in : inputs) leaves.push_back(tape.leaf(&in, nullptr));
    ag::Var y = fn(tape, leaves);
    double acc = 0;
    const Matrix& v = tape.value(y);
    for (int64_t i = 0; i < v.size(); ++i)
      acc += static_cast<double>(v[i]) * probe[i];
    return acc;
  };

  for (size_t k = 0; k < inputs.size(); ++k) {
    for (int64_t i = 0; i < inputs[k].size(); ++i) {
      const float orig = inputs[k][i];
      inputs[k][i] = orig + h;
      const double up = eval();
      inputs[k][i] = orig - h;
      const double down = eval();
      inputs[k][i] = orig;
      const double fd = (up - down) / (2.0 * h);
      EXPECT_NEAR(grads[k][i], fd, tol * std::max(1.0, std::fabs(fd)))
          << "input " << k << " element " << i;
    }
  }
}

TEST(Autograd, MatmulGrad) {
  grad_check({random_matrix(3, 4, 1), random_matrix(4, 5, 2)},
             [](ag::Tape& t, const std::vector<ag::Var>& v) {
               return t.matmul(v[0], v[1]);
             },
             10);
}

TEST(Autograd, MatmulBtGrad) {
  grad_check({random_matrix(3, 4, 3), random_matrix(5, 4, 4)},
             [](ag::Tape& t, const std::vector<ag::Var>& v) {
               return t.matmul_bt(v[0], v[1]);
             },
             11);
}

TEST(Autograd, AddGrad) {
  grad_check({random_matrix(3, 3, 5), random_matrix(3, 3, 6)},
             [](ag::Tape& t, const std::vector<ag::Var>& v) {
               return t.add(v[0], v[1]);
             },
             12);
}

TEST(Autograd, MulGrad) {
  grad_check({random_matrix(3, 3, 7), random_matrix(3, 3, 8)},
             [](ag::Tape& t, const std::vector<ag::Var>& v) {
               return t.mul(v[0], v[1]);
             },
             13);
}

TEST(Autograd, ScaleGrad) {
  grad_check({random_matrix(4, 2, 9)},
             [](ag::Tape& t, const std::vector<ag::Var>& v) {
               return t.scale(v[0], -1.7f);
             },
             14);
}

TEST(Autograd, SiluGrad) {
  grad_check({random_matrix(4, 6, 15)},
             [](ag::Tape& t, const std::vector<ag::Var>& v) {
               return t.silu(v[0]);
             },
             16);
}

TEST(Autograd, RmsNormGrad) {
  Matrix w = random_matrix(1, 6, 17, 0.3f);
  for (int64_t i = 0; i < w.size(); ++i) w[i] += 1.f;  // near-identity gain
  grad_check({random_matrix(5, 6, 18), w},
             [](ag::Tape& t, const std::vector<ag::Var>& v) {
               return t.rmsnorm(v[0], v[1]);
             },
             19);
}

TEST(Autograd, EmbeddingGrad) {
  grad_check({random_matrix(7, 4, 20)},
             [](ag::Tape& t, const std::vector<ag::Var>& v) {
               return t.embedding(v[0], {0, 3, 3, 6, 1});
             },
             21);
}

TEST(Autograd, RopeGrad) {
  grad_check({random_matrix(8, 8, 22)},  // 2 sequences of 4, 2 heads of dim 4
             [](ag::Tape& t, const std::vector<ag::Var>& v) {
               return t.rope(v[0], /*n_heads=*/2, /*seq_len=*/4);
             },
             23);
}

TEST(Autograd, RopeIsNormPreserving) {
  Matrix x = random_matrix(8, 8, 24);
  ag::Tape tape;
  ag::Var v = tape.leaf(&x, nullptr);
  ag::Var y = tape.rope(v, 2, 4);
  EXPECT_NEAR(frobenius_norm(tape.value(y)), frobenius_norm(x), 1e-4);
}

TEST(Autograd, CausalAttentionGrad) {
  // 2 sequences of length 3, 2 heads of dim 2 → 6×4 inputs.
  grad_check({random_matrix(6, 4, 25), random_matrix(6, 4, 26),
              random_matrix(6, 4, 27)},
             [](ag::Tape& t, const std::vector<ag::Var>& v) {
               return t.causal_attention(v[0], v[1], v[2], 2, 3);
             },
             28, 1e-3f, 4e-2f);
}

TEST(Autograd, AttentionIsCausal) {
  // Changing a *future* token's K/V must not change earlier outputs.
  Matrix q = random_matrix(4, 4, 29), k = random_matrix(4, 4, 30),
         v = random_matrix(4, 4, 31);
  Matrix out1, out2;
  {
    ag::Tape t;
    out1 = t.value(t.causal_attention(t.leaf(&q, nullptr), t.leaf(&k, nullptr),
                                      t.leaf(&v, nullptr), 2, 4));
  }
  k.at(3, 0) += 5.f;
  v.at(3, 2) -= 3.f;
  {
    ag::Tape t;
    out2 = t.value(t.causal_attention(t.leaf(&q, nullptr), t.leaf(&k, nullptr),
                                      t.leaf(&v, nullptr), 2, 4));
  }
  for (int64_t r = 0; r < 3; ++r)
    for (int64_t c = 0; c < 4; ++c)
      EXPECT_FLOAT_EQ(out1.at(r, c), out2.at(r, c)) << r << "," << c;
}

TEST(Autograd, AttentionRowsAreConvexCombinations) {
  // First position attends only to itself: out[0] == v[0] per head.
  Matrix q = random_matrix(3, 4, 32), k = random_matrix(3, 4, 33),
         v = random_matrix(3, 4, 34);
  ag::Tape t;
  const Matrix& out = t.value(t.causal_attention(
      t.leaf(&q, nullptr), t.leaf(&k, nullptr), t.leaf(&v, nullptr), 2, 3));
  for (int64_t c = 0; c < 4; ++c) EXPECT_NEAR(out.at(0, c), v.at(0, c), 1e-5);
}

TEST(Autograd, CrossEntropyGradAndValue) {
  // Analytic spot-check: uniform logits give loss log(V); dlogits =
  // (softmax − onehot)/T.
  const int T = 3, V = 5;
  Matrix logits(T, V);
  Matrix grad(T, V);
  ag::Tape tape;
  ag::Var lv = tape.leaf(&logits, &grad);
  ag::Var loss = tape.cross_entropy(lv, {1, 4, 0});
  EXPECT_NEAR(tape.value(loss)[0], std::log(5.f), 1e-5);
  tape.backward(loss);
  for (int64_t r = 0; r < T; ++r)
    for (int64_t c = 0; c < V; ++c) {
      const float expect =
          (0.2f - ((r == 0 && c == 1) || (r == 1 && c == 4) ||
                   (r == 2 && c == 0)
                       ? 1.f
                       : 0.f)) /
          T;
      EXPECT_NEAR(grad.at(r, c), expect, 1e-6);
    }
}

TEST(Autograd, CrossEntropyIgnoresMaskedTargets) {
  const int T = 4, V = 6;
  Matrix logits = random_matrix(T, V, 35);
  Matrix grad(T, V);
  ag::Tape tape;
  ag::Var lv = tape.leaf(&logits, &grad);
  ag::Var loss = tape.cross_entropy(lv, {-1, 2, -1, 3});
  tape.backward(loss);
  for (int64_t c = 0; c < V; ++c) {
    EXPECT_FLOAT_EQ(grad.at(0, c), 0.f);
    EXPECT_FLOAT_EQ(grad.at(2, c), 0.f);
  }
}

TEST(Autograd, CrossEntropyFiniteDifference) {
  const int T = 2, V = 4;
  Matrix logits = random_matrix(T, V, 36);
  Matrix grad(T, V);
  const std::vector<int32_t> tgt{2, 0};
  {
    ag::Tape tape;
    ag::Var loss = tape.cross_entropy(tape.leaf(&logits, &grad), tgt);
    tape.backward(loss);
  }
  const float h = 1e-3f;
  for (int64_t i = 0; i < logits.size(); ++i) {
    auto eval = [&]() {
      ag::Tape tape;
      return tape.value(
          tape.cross_entropy(tape.leaf(&logits, nullptr), tgt))[0];
    };
    const float orig = logits[i];
    logits[i] = orig + h;
    const double up = eval();
    logits[i] = orig - h;
    const double down = eval();
    logits[i] = orig;
    EXPECT_NEAR(grad[i], (up - down) / (2 * h), 2e-3);
  }
}

TEST(Autograd, GradAccumulatesAcrossBackwards) {
  // Two tapes writing into the same leaf grad accumulate (grad-accum path).
  Matrix x = random_matrix(2, 2, 37);
  Matrix g(2, 2);
  for (int pass = 0; pass < 2; ++pass) {
    ag::Tape tape;
    ag::Var v = tape.leaf(&x, &g);
    ag::Var y = tape.scale(v, 3.f);
    Matrix w(2, 2);
    w.fill(1.f);
    tape.backward(tape.dot(y, w));
  }
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], 6.f);
}

TEST(Autograd, ConstantHasNoGrad) {
  ag::Tape tape;
  Matrix c = random_matrix(2, 2, 38);
  ag::Var v = tape.constant(c);
  EXPECT_FALSE(tape.requires_grad(v));
}

TEST(Autograd, ActivationBytesPositive) {
  Matrix x = random_matrix(4, 4, 39);
  ag::Tape tape;
  ag::Var v = tape.leaf(&x, nullptr);
  tape.silu(v);
  EXPECT_GT(tape.activation_bytes(), 0);
}

}  // namespace
}  // namespace apollo
