// Unit tests for the tensor substrate: Matrix, kernels, RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace apollo {
namespace {

Matrix random_matrix(int64_t r, int64_t c, uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  m.fill_gaussian(rng);
  return m;
}

// Naive reference matmul.
Matrix ref_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i)
    for (int64_t j = 0; j < b.cols(); ++j) {
      double acc = 0;
      for (int64_t k = 0; k < a.cols(); ++k)
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      c.at(i, j) = static_cast<float>(acc);
    }
  return c;
}

TEST(Matrix, BasicAccessors) {
  Matrix m(3, 5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 5);
  EXPECT_EQ(m.size(), 15);
  m.at(2, 4) = 7.f;
  EXPECT_FLOAT_EQ(m.at(2, 4), 7.f);
  EXPECT_FLOAT_EQ(m[2 * 5 + 4], 7.f);
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(4, 4);
  for (int64_t i = 0; i < m.size(); ++i) EXPECT_FLOAT_EQ(m[i], 0.f);
}

TEST(Matrix, Transposed) {
  Matrix m = random_matrix(3, 7, 1);
  Matrix t = m.transposed();
  ASSERT_EQ(t.rows(), 7);
  ASSERT_EQ(t.cols(), 3);
  for (int64_t r = 0; r < 3; ++r)
    for (int64_t c = 0; c < 7; ++c) EXPECT_FLOAT_EQ(t.at(c, r), m.at(r, c));
}

TEST(Matrix, EqualityIsExact) {
  Matrix a = random_matrix(4, 4, 2);
  Matrix b = a;
  EXPECT_TRUE(a == b);
  b[0] += 1e-7f;
  EXPECT_FALSE(a == b);
}

TEST(Ops, MatmulMatchesReference) {
  Matrix a = random_matrix(13, 9, 3);
  Matrix b = random_matrix(9, 17, 4);
  EXPECT_LT(max_abs_diff(matmul(a, b), ref_matmul(a, b)), 1e-4f);
}

TEST(Ops, MatmulAtMatchesReference) {
  Matrix a = random_matrix(9, 13, 5);
  Matrix b = random_matrix(9, 17, 6);
  EXPECT_LT(max_abs_diff(matmul_at(a, b), ref_matmul(a.transposed(), b)),
            1e-4f);
}

TEST(Ops, MatmulBtMatchesReference) {
  Matrix a = random_matrix(13, 9, 7);
  Matrix b = random_matrix(17, 9, 8);
  EXPECT_LT(max_abs_diff(matmul_bt(a, b), ref_matmul(a, b.transposed())),
            1e-4f);
}

TEST(Ops, MatmulAccumulate) {
  Matrix a = random_matrix(5, 6, 9);
  Matrix b = random_matrix(6, 4, 10);
  Matrix c = random_matrix(5, 4, 11);
  Matrix expected = c;
  add_inplace(expected, ref_matmul(a, b));
  matmul(c, a, b, /*accumulate=*/true);
  EXPECT_LT(max_abs_diff(c, expected), 1e-4f);
}

TEST(Ops, AxpyAndScale) {
  Matrix y = random_matrix(4, 4, 12);
  Matrix x = random_matrix(4, 4, 13);
  Matrix expected(4, 4);
  for (int64_t i = 0; i < 16; ++i) expected[i] = y[i] + 2.5f * x[i];
  axpy(y, 2.5f, x);
  EXPECT_LT(max_abs_diff(y, expected), 1e-6f);
  scale_inplace(y, 0.5f);
  for (int64_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(y[i], expected[i] * 0.5f);
}

TEST(Ops, HadamardAndSub) {
  Matrix a = random_matrix(3, 3, 14);
  Matrix b = random_matrix(3, 3, 15);
  Matrix h = a;
  hadamard_inplace(h, b);
  Matrix d = sub(a, b);
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(h[i], a[i] * b[i]);
    EXPECT_FLOAT_EQ(d[i], a[i] - b[i]);
  }
}

TEST(Ops, NormsAndReductions) {
  Matrix m(2, 2);
  m[0] = 3.f; m[1] = 4.f; m[2] = 0.f; m[3] = 0.f;
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
  EXPECT_DOUBLE_EQ(sum(m), 7.0);
  EXPECT_DOUBLE_EQ(mean(m), 1.75);
  EXPECT_FLOAT_EQ(abs_max(m), 4.f);
}

TEST(Ops, ColAndRowNorms) {
  Matrix m(2, 3);
  // col 0: (1,2), col 1: (2,0), col 2: (0,3)
  m.at(0, 0) = 1; m.at(1, 0) = 2;
  m.at(0, 1) = 2; m.at(1, 1) = 0;
  m.at(0, 2) = 0; m.at(1, 2) = 3;
  auto cn = col_norms(m);
  EXPECT_NEAR(cn[0], std::sqrt(5.f), 1e-6);
  EXPECT_NEAR(cn[1], 2.f, 1e-6);
  EXPECT_NEAR(cn[2], 3.f, 1e-6);
  auto rn = row_norms(m);
  EXPECT_NEAR(rn[0], std::sqrt(5.f), 1e-6);
  EXPECT_NEAR(rn[1], std::sqrt(13.f), 1e-6);
}

TEST(Ops, ScaleColsAndRows) {
  Matrix m = random_matrix(3, 2, 16);
  Matrix orig = m;
  scale_cols_inplace(m, {2.f, 3.f});
  for (int64_t r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(m.at(r, 0), orig.at(r, 0) * 2.f);
    EXPECT_FLOAT_EQ(m.at(r, 1), orig.at(r, 1) * 3.f);
  }
  m = orig;
  scale_rows_inplace(m, {1.f, 0.f, -1.f});
  for (int64_t c = 0; c < 2; ++c) {
    EXPECT_FLOAT_EQ(m.at(0, c), orig.at(0, c));
    EXPECT_FLOAT_EQ(m.at(1, c), 0.f);
    EXPECT_FLOAT_EQ(m.at(2, c), -orig.at(2, c));
  }
}

// The matmul_bt kernel switches between a transpose-and-stream fast path
// (m ≥ 4, k ≥ 16) and a direct dot-product path; sweep shapes across the
// boundary so both paths (and the accumulate variant) stay correct.
class MatmulBtShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulBtShapeTest, MatchesReferenceBothPaths) {
  const auto [m, k, n] = GetParam();
  Matrix a = random_matrix(m, k, 100 + m);
  Matrix b = random_matrix(n, k, 200 + n);
  Matrix ref = ref_matmul(a, b.transposed());
  EXPECT_LT(max_abs_diff(matmul_bt(a, b), ref), 1e-4f);
  // Accumulate variant.
  Matrix c = random_matrix(m, n, 300 + k);
  Matrix expected = c;
  add_inplace(expected, ref);
  matmul_bt(c, a, b, /*accumulate=*/true);
  EXPECT_LT(max_abs_diff(c, expected), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    PathBoundary, MatmulBtShapeTest,
    ::testing::Values(std::tuple{3, 15, 5},   // slow path (both below)
                      std::tuple{3, 64, 5},   // slow path (m below)
                      std::tuple{4, 16, 5},   // fast path boundary
                      std::tuple{8, 15, 7},   // slow path (k below)
                      std::tuple{8, 16, 7},   // fast path boundary
                      std::tuple{16, 64, 32},  // fast path typical
                      std::tuple{1, 8, 1}));   // degenerate

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  const int n = 200000;
  double s1 = 0, s2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    s1 += g;
    s2 += g * g;
  }
  EXPECT_NEAR(s1 / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, SplitStreamsIndependentish) {
  Rng rng(10);
  const uint64_t s1 = rng.split(), s2 = rng.split();
  EXPECT_NE(s1, s2);
}

}  // namespace
}  // namespace apollo
