// Subprocess tests for tools/apollo_analyze.cpp: plant violations for each
// of the four passes in a throwaway tree, run the real binary against it,
// and assert rule ids, baseline-diff semantics, suppressions, and the
// JSON/SARIF sinks. APOLLO_ANALYZE_BIN is injected by tests/CMakeLists.txt.
//
// Planted violations live inside C++ string literals, which the analyzer's
// tokenizer blanks — so this file itself stays clean under the repo-wide
// apollo_analyze ctest.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_analyze(const std::string& args) {
  const std::string cmd =
      std::string(APOLLO_ANALYZE_BIN) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  RunResult r;
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

class AnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl =
        (fs::temp_directory_path() / "apollo_analyze_test.XXXXXX").string();
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    root_ = tmpl;
    fs::create_directories(root_ / "src");
    // Permissive default policy; layering tests override it.
    put("tools/analyze/layers.toml",
        "[layers]\n"
        "src = [\"*\"]\n"
        "optim = [\"*\"]\n"
        "tensor = [\"*\"]\n"
        "autograd = [\"*\"]\n"
        "core = [\"*\"]\n"
        "nn = [\"*\"]\n"
        "quant = [\"*\"]\n"
        "tools = [\"*\"]\n"
        "tests = [\"*\"]\n"
        "bench = [\"*\"]\n");
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void put(const std::string& rel, const std::string& text) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good());
  }

  RunResult analyze(const std::string& extra = "") {
    return run_analyze("--root " + root_.string() + " " + extra);
  }

  fs::path root_;
};

// ---------------------------------------------------------------------------
// Basics
// ---------------------------------------------------------------------------

TEST_F(AnalyzeTest, CleanTreePassesWithExitZero) {
  put("src/clean.h",
      "#pragma once\n"
      "namespace demo { int two(); }\n");
  put("src/clean.cpp",
      "#include \"clean.h\"\n"
      "namespace demo { int two() { return 2; } }\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("files clean"), std::string::npos) << r.output;
}

// ---------------------------------------------------------------------------
// Pass 1: layering
// ---------------------------------------------------------------------------

TEST_F(AnalyzeTest, ForbiddenLayerEdgeIsReported) {
  put("tools/analyze/layers.toml",
      "[layers]\n"
      "optim = []\n"
      "nn = []\n");
  put("src/nn/thing.h",
      "#pragma once\n"
      "namespace demo { class Thing {}; }\n");
  put("src/optim/user.cpp",
      "#include \"nn/thing.h\"\n"
      "int opt_use() { return 1; }\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("src/optim/user.cpp:1: layer-violation:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("optim -> nn"), std::string::npos) << r.output;
}

TEST_F(AnalyzeTest, UndeclaredModuleIsReportedOnce) {
  put("tools/analyze/layers.toml",
      "[layers]\n"
      "src = [\"*\"]\n");
  put("src/quant/a.cpp", "int qa() { return 1; }\n");
  put("src/quant/b.cpp", "int qb() { return 2; }\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("layer-undeclared:"), std::string::npos)
      << r.output;
  // One finding per module, not one per file.
  const size_t first = r.output.find("layer-undeclared");
  EXPECT_EQ(r.output.find("layer-undeclared", first + 1), std::string::npos)
      << r.output;
}

TEST_F(AnalyzeTest, IncludeCycleIsReported) {
  put("src/a.h",
      "#pragma once\n"
      "#include \"b.h\"\n"
      "namespace demo { struct Anchor4 {}; }\n");
  put("src/b.h",
      "#pragma once\n"
      "#include \"a.h\"\n"
      "namespace demo { struct Brace4 {}; }\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("include-cycle:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("src/a.h"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("src/b.h"), std::string::npos) << r.output;
}

TEST_F(AnalyzeTest, TransitiveIncludeUseIsReported) {
  put("src/base.h",
      "#pragma once\n"
      "namespace demo { class Widget { public: int n = 0; }; }\n");
  put("src/middle.h",
      "#pragma once\n"
      "#include \"base.h\"\n"
      "namespace demo { inline int mid() { return 1; } }\n");
  put("src/user.cpp",
      "#include \"middle.h\"\n"
      "int use() { demo::Widget w; return w.n; }\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("src/user.cpp:2: transitive-include:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("Widget"), std::string::npos) << r.output;
}

TEST_F(AnalyzeTest, DirectIncludeOfUsedHeaderIsClean) {
  put("src/base.h",
      "#pragma once\n"
      "namespace demo { class Widget { public: int n = 0; }; }\n");
  put("src/user.cpp",
      "#include \"base.h\"\n"
      "int use() { demo::Widget w; return w.n; }\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------------------
// Pass 2: concurrency discipline
// ---------------------------------------------------------------------------

TEST_F(AnalyzeTest, ParallelForBodyViolationsAreCaught) {
  put("src/par.cpp",
      "#include <cstdio>\n"
      "#include <cstdlib>\n"
      "#include <mutex>\n"
      "void work(float* v, long n, float& total) {\n"
      "  core::parallel_for(n, [&](long b, long e) {\n"
      "    std::mutex m;\n"
      "    std::printf(\"lane\\n\");\n"
      "    const char* h = std::getenv(\"HOME\");\n"
      "    total += 1.0f;\n"
      "    core::parallel_for(4, [&](long b2, long e2) { v[b2] = 0; });\n"
      "    (void)h; (void)m;\n"
      "  });\n"
      "}\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("src/par.cpp:6: parallel-mutex:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/par.cpp:7: parallel-io:"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/par.cpp:8: parallel-getenv:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/par.cpp:9: parallel-unordered-accum:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/par.cpp:10: parallel-nested:"),
            std::string::npos)
      << r.output;
}

TEST_F(AnalyzeTest, DisciplinedParallelForBodyIsClean) {
  put("src/par_ok.cpp",
      "void work(float* v, long n) {\n"
      "  core::parallel_for(n, [&](long b, long e) {\n"
      "    double acc = 0;\n"
      "    for (long i = b; i < e; ++i) acc += v[i];\n"
      "    v[b] = static_cast<float>(acc);\n"
      "  });\n"
      "}\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------------------
// Pass 3: hot-path allocation
// ---------------------------------------------------------------------------

TEST_F(AnalyzeTest, AllocationInStepParamAndItsCalleesIsCaught) {
  put("src/optim/hot.cpp",
      "#include <cstdlib>\n"
      "#include <vector>\n"
      "namespace demo {\n"
      "void helper_fill(std::vector<float>& v) {\n"
      "  float* p = static_cast<float*>(std::malloc(16));\n"
      "  v[0] = *p;\n"
      "}\n"
      "void step_param(std::vector<float>& v) {\n"
      "  v.push_back(1.0f);\n"
      "  helper_fill(v);\n"
      "}\n"
      "}\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Direct growth in the root...
  EXPECT_NE(r.output.find("src/optim/hot.cpp:9: hot-path-alloc:"),
            std::string::npos)
      << r.output;
  // ...and malloc one call-graph edge away, with the chain in the message.
  EXPECT_NE(r.output.find("src/optim/hot.cpp:5: hot-path-alloc:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("step_param -> helper_fill"), std::string::npos)
      << r.output;
}

TEST_F(AnalyzeTest, SimdKernelsAndBackwardClosuresAreHotRoots) {
  put("src/tensor/simd/fastk.cpp",
      "void kernel_fill(float* p, long n) {\n"
      "  int* scratch = new int[8];\n"
      "  p[0] = static_cast<float>(scratch[0]);\n"
      "  delete[] scratch;\n"
      "}\n");
  put("src/autograd/myop.cpp",
      "#include <vector>\n"
      "namespace demo {\n"
      "void attach(Node& n) {\n"
      "  n.backward = [](Tape& t) {\n"
      "    std::vector<float> tmp;\n"
      "    tmp.resize(64);\n"
      "  };\n"
      "}\n"
      "}\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("src/tensor/simd/fastk.cpp:2: hot-path-alloc:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/autograd/myop.cpp:6: hot-path-alloc:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("backward closure"), std::string::npos) << r.output;
}

TEST_F(AnalyzeTest, ColdFunctionsMayAllocate) {
  put("src/setup.cpp",
      "#include <vector>\n"
      "void build_tables(std::vector<float>& v) {\n"
      "  v.resize(1024);\n"
      "  v.push_back(1.0f);\n"
      "}\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(AnalyzeTest, SuppressionSilencesHotPathAlloc) {
  put("src/optim/lazy.cpp",
      "#include <vector>\n"
      "void step_param(std::vector<float>& v) {\n"
      "  // sized once on the first step  lint:allow(hot-path-alloc)\n"
      "  v.resize(8);\n"
      "}\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------------------
// Pass 4: doc drift
// ---------------------------------------------------------------------------

TEST_F(AnalyzeTest, EnvVarDriftIsReportedBothDirections) {
  put("docs/ENVVARS.md",
      "# Environment variables\n"
      "\n"
      "| Variable | Effect |\n"
      "| --- | --- |\n"
      "| `APOLLO_OK` | documented and used |\n"
      "| `APOLLO_GHOST` | documented but no longer read |\n");
  put("src/config.cpp",
      "#include <cstdlib>\n"
      "bool ok() { return std::getenv(\"APOLLO_OK\") != nullptr; }\n"
      "bool planted() { return std::getenv(\"APOLLO_PLANTED\") != nullptr; }\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("src/config.cpp:3: env-undocumented:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("docs/ENVVARS.md:6: env-stale-doc:"),
            std::string::npos)
      << r.output;
  // The documented-and-used variable is not a finding.
  EXPECT_EQ(r.output.find("APOLLO_OK`"), std::string::npos) << r.output;
}

TEST_F(AnalyzeTest, TestOnlyEnvVarsAreExemptFromDocs) {
  put("tests/harness.cpp",
      "#include <cstdlib>\n"
      "const char* bin() { return std::getenv(\"APOLLO_FAKE_BIN\"); }\n");
  const RunResult r = analyze();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------------------
// Baseline-diff semantics
// ---------------------------------------------------------------------------

TEST_F(AnalyzeTest, BaselineGatesOnlyNewFindings) {
  put("src/config.cpp",
      "#include <cstdlib>\n"
      "bool a() { return std::getenv(\"APOLLO_OLD\") != nullptr; }\n");
  const std::string base = (root_ / "baseline.json").string();

  // 1. Pre-existing finding fails with no baseline...
  EXPECT_EQ(analyze("--baseline " + base).exit_code, 1);
  // 2. ...write it into the baseline...
  EXPECT_EQ(analyze("--baseline " + base + " --write-baseline").exit_code, 0);
  // 3. ...now the same tree is green, and says what was baselined.
  const RunResult r3 = analyze("--baseline " + base);
  EXPECT_EQ(r3.exit_code, 0) << r3.output;
  EXPECT_NE(r3.output.find("1 baselined"), std::string::npos) << r3.output;

  // 4. A NEW violation still fails, and only the new one is reported —
  //    even though the old finding's line number moved.
  put("src/config.cpp",
      "#include <cstdlib>\n"
      "// an unrelated edit that shifts every line below it\n"
      "bool a() { return std::getenv(\"APOLLO_OLD\") != nullptr; }\n"
      "bool b() { return std::getenv(\"APOLLO_NEW\") != nullptr; }\n");
  const RunResult r4 = analyze("--baseline " + base);
  EXPECT_EQ(r4.exit_code, 1) << r4.output;
  EXPECT_NE(r4.output.find("APOLLO_NEW"), std::string::npos) << r4.output;
  EXPECT_EQ(r4.output.find("APOLLO_OLD"), std::string::npos) << r4.output;
}

// ---------------------------------------------------------------------------
// Sinks and CLI
// ---------------------------------------------------------------------------

TEST_F(AnalyzeTest, JsonAndSarifSinksCarryRuleAndFingerprint) {
  put("src/config.cpp",
      "#include <cstdlib>\n"
      "bool p() { return std::getenv(\"APOLLO_PLANTED\") != nullptr; }\n");
  const std::string sarif = (root_ / "out.sarif").string();
  const RunResult r = analyze("--json --sarif " + sarif);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("\"rule\": \"env-undocumented\""),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"fingerprint\""), std::string::npos) << r.output;

  std::ifstream in(sarif);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string s = buf.str();
  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"ruleId\": \"env-undocumented\""), std::string::npos)
      << s;
  EXPECT_NE(s.find("apolloAnalyze/v1"), std::string::npos) << s;
}

TEST_F(AnalyzeTest, SinglePassSelectionSkipsOtherPasses) {
  // A doc-drift violation AND a concurrency violation...
  put("src/config.cpp",
      "#include <cstdlib>\n"
      "bool p() { return std::getenv(\"APOLLO_PLANTED\") != nullptr; }\n");
  put("src/par.cpp",
      "#include <mutex>\n"
      "void work(float* v, long n) {\n"
      "  core::parallel_for(n, [&](long b, long e) { std::mutex m; });\n"
      "}\n");
  // ...but only the concurrency pass runs.
  const RunResult r = analyze("--pass concurrency");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("parallel-mutex"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("env-undocumented"), std::string::npos) << r.output;
}

TEST(AnalyzeCliTest, ListPassesNamesAllFour) {
  const RunResult r = run_analyze("--list-passes");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* pass : {"layering", "concurrency", "hotpath", "docdrift"})
    EXPECT_NE(r.output.find(pass), std::string::npos) << pass;
}

TEST(AnalyzeCliTest, UnknownOptionIsAUsageError) {
  const RunResult r = run_analyze("--no-such-flag");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(AnalyzeCliTest, UnknownPassIsAUsageError) {
  const RunResult r = run_analyze("--pass nonesuch");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// The merge gate: the real tree analyzes clean against the checked-in
// (empty) baseline.
TEST(AnalyzeCliTest, RealTreeIsClean) {
  const RunResult r = run_analyze("--root " APOLLO_REPO_ROOT);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("files clean"), std::string::npos) << r.output;
}

}  // namespace
