// Registry-wide optimizer contracts: every optimizer must (a) minimize a
// convex quadratic, (b) freeze at lr = 0, (c) report zero state before its
// first step, (d) keep finite state under an adversarial gradient schedule.
// Parameterized over the whole factory so new optimizers are covered
// automatically.
#include <gtest/gtest.h>

#include <cmath>

#include "core/factory.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

class OptimizerContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<optim::Optimizer> make() {
    core::FactoryOptions fo;
    fo.rank = 4;
    fo.update_freq = 10;
    fo.seed = 7;
    return core::make_optimizer(GetParam(), fo);
  }
};

TEST_P(OptimizerContractTest, MinimizesConvexQuadratic) {
  // loss = ½‖W − T‖², ∇ = W − T. Every reasonable optimizer should close
  // most of the distance in 150 steps at its default LR.
  SCOPED_TRACE(testing::Message()
               << GetParam() << " @ lr=" << core::default_lr(GetParam()));
  nn::Parameter p("w", 8, 32);
  Matrix target(8, 32);
  Rng rng(1);
  target.fill_gaussian(rng, 0.f, 1.f);
  p.value.fill_gaussian(rng, 0.f, 1.f);
  const double initial = frobenius_norm(sub(p.value, target));

  auto opt = make();
  ASSERT_NE(opt, nullptr);
  opt->set_lr(core::default_lr(GetParam()));
  for (int s = 0; s < 150; ++s) {
    p.grad = sub(p.value, target);
    opt->step({&p});
  }
  const double final_dist = frobenius_norm(sub(p.value, target));
  // The low-rank adapters can only move within a rank-4 subspace of the
  // full 8×32 target, so they get a looser bar.
  const bool rank_limited = GetParam() == "lora" || GetParam() == "dora" ||
                            GetParam() == "lowrank" ||
                            GetParam() == "relora";
  EXPECT_LT(final_dist, rank_limited ? initial : initial * 0.5)
      << GetParam() << ": " << initial << " -> " << final_dist;
  for (int64_t i = 0; i < p.value.size(); ++i)
    ASSERT_TRUE(std::isfinite(p.value[i])) << GetParam();
}

TEST_P(OptimizerContractTest, LrZeroFreezesWeights) {
  SCOPED_TRACE(GetParam());
  nn::Parameter p("w", 8, 32);
  Rng rng(2);
  p.value.fill_gaussian(rng, 0.f, 1.f);
  p.grad.fill_gaussian(rng, 0.f, 0.1f);
  Matrix before = p.value;
  auto opt = make();
  opt->set_lr(0.f);
  opt->step({&p});
  // The factorized adapter recomposes W = U·V from the truncated SVD even
  // at lr 0, which legitimately perturbs the weight once; all others must
  // hold exactly.
  if (GetParam() != "lowrank" && GetParam() != "dora") {
    EXPECT_LT(max_abs_diff(before, p.value), 1e-7f);
  }
}

TEST_P(OptimizerContractTest, NoStateBeforeFirstStep) {
  SCOPED_TRACE(GetParam());
  auto opt = make();
  EXPECT_EQ(opt->state_bytes(), 0);
}

TEST_P(OptimizerContractTest, SurvivesAdversarialGradientSchedule) {
  // Alternating huge/tiny/zero gradients with sign flips — the schedule
  // that breaks ill-guarded EMA divisions.
  SCOPED_TRACE(GetParam());
  nn::Parameter p("w", 8, 32);
  p.value.fill(1.f);
  auto opt = make();
  opt->set_lr(1e-3f);
  for (int s = 0; s < 12; ++s) {
    float g;
    switch (s % 4) {
      case 0: g = 1e12f; break;
      case 1: g = -1e-12f; break;
      case 2: g = 0.f; break;
      default: g = (s % 8 < 4) ? 1.f : -1.f;
    }
    p.grad.fill(g);
    opt->step({&p});
    for (int64_t i = 0; i < p.value.size(); ++i)
      ASSERT_TRUE(std::isfinite(p.value[i]))
          << GetParam() << " diverged at step " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOptimizers, OptimizerContractTest,
    ::testing::ValuesIn(core::known_optimizers()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace apollo
