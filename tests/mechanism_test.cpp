// Annotated corpus + mechanism-resolved evaluation tests.
#include <gtest/gtest.h>

#include "data/corpus.h"
#include "optim/adamw.h"
#include "train/mechanism_eval.h"
#include "train/trainer.h"

namespace apollo {
namespace {

TEST(AnnotatedCorpus, SameStreamAsUnannotated) {
  data::SyntheticCorpus c({});
  Rng r1(9), r2(9);
  std::vector<int32_t> plain, annotated;
  std::vector<data::SyntheticCorpus::Mechanism> mech;
  c.sample_sequence(r1, 100, plain);
  c.sample_sequence_annotated(r2, 100, annotated, mech);
  EXPECT_EQ(plain, annotated);
  ASSERT_EQ(mech.size(), 100u);
}

TEST(AnnotatedCorpus, MechanismFrequenciesMatchConfig) {
  data::CorpusConfig cfg;
  data::SyntheticCorpus c(cfg);
  Rng rng(10);
  std::vector<int32_t> seq;
  std::vector<data::SyntheticCorpus::Mechanism> mech;
  int64_t counts[3] = {0, 0, 0};
  int64_t total = 0;
  for (int i = 0; i < 300; ++i) {
    c.sample_sequence_annotated(rng, 64, seq, mech);
    // Only positions past copy_distance can be copies; count them all.
    for (size_t j = static_cast<size_t>(cfg.copy_distance); j < mech.size();
         ++j) {
      ++counts[static_cast<int>(mech[j])];
      ++total;
    }
  }
  const double p_markov =
      static_cast<double>(counts[0]) / static_cast<double>(total);
  const double p_copy =
      static_cast<double>(counts[1]) / static_cast<double>(total);
  EXPECT_NEAR(p_markov, cfg.p_markov, 0.02);
  EXPECT_NEAR(p_copy, cfg.p_copy, 0.01);
}

TEST(AnnotatedCorpus, CopiesActuallyCopy) {
  data::CorpusConfig cfg;
  data::SyntheticCorpus c(cfg);
  Rng rng(11);
  std::vector<int32_t> seq;
  std::vector<data::SyntheticCorpus::Mechanism> mech;
  for (int i = 0; i < 50; ++i) {
    c.sample_sequence_annotated(rng, 64, seq, mech);
    for (size_t j = 0; j < mech.size(); ++j) {
      if (mech[j] == data::SyntheticCorpus::Mechanism::kCopy) {
        EXPECT_EQ(seq[j], seq[j - static_cast<size_t>(cfg.copy_distance)]);
      }
    }
  }
}

TEST(MechanismEval, TrainingImprovesLearnableMechanismsMost) {
  nn::LlamaConfig mcfg;
  mcfg.vocab = 256;
  mcfg.hidden = 32;
  mcfg.intermediate = 88;
  mcfg.n_heads = 4;
  mcfg.n_layers = 2;
  mcfg.seq_len = 32;
  nn::LlamaModel model(mcfg, 12);
  data::SyntheticCorpus corpus({});

  const auto before =
      train::mechanism_loss(model, corpus, 6, 4, 999);
  optim::AdamW opt;
  train::TrainConfig tc;
  tc.steps = 250;
  tc.batch = 4;
  tc.lr = 3e-3f;
  train::Trainer t(model, opt, corpus, tc);
  t.run();
  const auto after = train::mechanism_loss(model, corpus, 6, 4, 999);

  EXPECT_GT(before.markov_n, 0);
  EXPECT_GT(before.copy_n, 0);
  EXPECT_GT(before.unigram_n, 0);
  // Markov structure is the most learnable: its loss drops the most.
  EXPECT_LT(after.markov, before.markov - 0.5);
  // Copies improve too (attention), from a near-uniform start.
  EXPECT_LT(after.copy, before.copy);
  // The unigram mechanism improves only to its entropy floor: the drop is
  // smaller than the markov drop.
  EXPECT_GT(after.unigram, after.markov);
}

}  // namespace
}  // namespace apollo
