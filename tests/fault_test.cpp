// Fault-injection harness: spec grammar, fire-once semantics, in-process
// NaN-gradient recovery, and the end-to-end kill-and-resume contract — a
// subprocess run with planted nan_grad + crash faults must auto-recover and
// land within 5% of the fault-free final perplexity.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/apollo.h"
#include "data/corpus.h"
#include "fault/fault_injection.h"
#include "obs/metrics.h"
#include "train/trainer.h"

namespace apollo {
namespace {

// Disarms the global injector when a test exits, pass or fail.
struct FaultGuard {
  explicit FaultGuard(const char* spec) { fault::set_spec(spec); }
  ~FaultGuard() { fault::set_spec(""); }
};

TEST(FaultSpec, ParsesEveryKind) {
  fault::Plan plan;
  std::string err;
  ASSERT_TRUE(fault::parse_spec(
      "nan_grad@40; crash@120 ;crash_save@7;trunc_ckpt@80;bitflip_opt@0;",
      &plan, &err))
      << err;
  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events[0].kind, fault::Kind::kNanGrad);
  EXPECT_EQ(plan.events[0].step, 40);
  EXPECT_EQ(plan.events[1].kind, fault::Kind::kCrash);
  EXPECT_EQ(plan.events[1].step, 120);
  EXPECT_EQ(plan.events[2].kind, fault::Kind::kCrashInSave);
  EXPECT_EQ(plan.events[3].kind, fault::Kind::kTruncCkpt);
  EXPECT_EQ(plan.events[4].kind, fault::Kind::kBitflipOpt);
  EXPECT_EQ(plan.events[4].step, 0);
}

TEST(FaultSpec, EmptySpecDisarms) {
  fault::Plan plan;
  ASSERT_TRUE(fault::parse_spec("", &plan, nullptr));
  EXPECT_TRUE(plan.events.empty());
  ASSERT_TRUE(fault::parse_spec(" ; ; ", &plan, nullptr));
  EXPECT_TRUE(plan.events.empty());
}

TEST(FaultSpec, RejectsMalformedEvents) {
  fault::Plan plan;
  std::string err;
  EXPECT_FALSE(fault::parse_spec("explode@40", &plan, &err));
  EXPECT_NE(err.find("unknown fault kind"), std::string::npos) << err;
  EXPECT_FALSE(fault::parse_spec("nan_grad", &plan, &err));
  EXPECT_NE(err.find("missing '@step'"), std::string::npos) << err;
  EXPECT_FALSE(fault::parse_spec("nan_grad@", &plan, &err));
  EXPECT_NE(err.find("no step"), std::string::npos) << err;
  EXPECT_FALSE(fault::parse_spec("nan_grad@-3", &plan, &err));
  EXPECT_NE(err.find("not a non-negative integer"), std::string::npos) << err;
  EXPECT_FALSE(fault::parse_spec("nan_grad@12x", &plan, &err));
  EXPECT_FALSE(fault::parse_spec("crash@99999999999999999999", &plan, &err));
}

TEST(FaultInjector, ExactStepEventsFireOnce) {
  FaultGuard guard("nan_grad@5;nan_grad@9");
  ASSERT_TRUE(fault::enabled());
  EXPECT_FALSE(fault::take_at(fault::Kind::kNanGrad, 4));
  EXPECT_TRUE(fault::take_at(fault::Kind::kNanGrad, 5));
  EXPECT_FALSE(fault::take_at(fault::Kind::kNanGrad, 5));  // consumed
  EXPECT_FALSE(fault::take_at(fault::Kind::kCrash, 9));    // wrong kind
  EXPECT_TRUE(fault::take_at(fault::Kind::kNanGrad, 9));
  EXPECT_FALSE(fault::enabled());  // all events consumed
}

TEST(FaultInjector, CheckpointEventsRipen) {
  FaultGuard guard("trunc_ckpt@25");
  // The checkpoint cadence may skip the exact step; the event fires at the
  // first save at-or-after it.
  EXPECT_FALSE(fault::take_at_or_after(fault::Kind::kTruncCkpt, 20));
  EXPECT_TRUE(fault::take_at_or_after(fault::Kind::kTruncCkpt, 30));
  EXPECT_FALSE(fault::take_at_or_after(fault::Kind::kTruncCkpt, 40));
}

// --- in-process recovery ----------------------------------------------------

train::TrainResult run_tiny(const std::string& ckpt_dir, int steps) {
  nn::LlamaConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 16;
  cfg.intermediate = 40;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.seq_len = 8;
  nn::LlamaModel model(cfg, 3);
  data::CorpusConfig ccfg;
  ccfg.vocab = 64;
  data::SyntheticCorpus corpus(ccfg);
  core::ApolloConfig acfg;
  acfg.rank = 2;
  acfg.update_freq = 4;
  core::Apollo opt(acfg);
  train::TrainConfig tc;
  tc.steps = steps;
  tc.batch = 2;
  tc.lr = 0.01f;
  if (!ckpt_dir.empty()) {
    tc.resilience.ckpt_dir = ckpt_dir;
    tc.resilience.ckpt_every = 4;
    tc.resilience.ckpt_keep = 3;
    tc.resilience.watchdog = true;
  }
  train::Trainer t(model, opt, corpus, tc);
  return t.run();
}

TEST(FaultInjector, NanGradRecoversViaRollback) {
  const std::string dir =
      std::string(::testing::TempDir()) + "fault_nan_ckpts";
  std::filesystem::remove_all(dir);
  obs::Registry::instance().reset();
  FaultGuard guard("nan_grad@6");
  const auto res = run_tiny(dir, 12);
  EXPECT_FALSE(res.diverged) << res.divergence_diagnostics;
  EXPECT_GE(res.rollbacks, 1);
  EXPECT_TRUE(std::isfinite(res.final_perplexity));
  EXPECT_EQ(obs::Registry::instance().counter("fault.injected").value(), 1);
  EXPECT_GE(obs::Registry::instance().counter("watchdog.rollbacks").value(),
            1);
  obs::Registry::instance().reset();
  std::filesystem::remove_all(dir);
}

// --- subprocess kill-and-resume --------------------------------------------

#ifdef APOLLO_TRAIN_BIN

constexpr const char* kShape =
    " --hidden 32 --layers 1 --heads 2 --inter 88 --vocab 64 --seq 16"
    " --optimizer apollo --rank 4 --batch 2 --eval-every 0 --steps 60";

int run_cmd(const std::string& cmd) {
  const int rc = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(rc)) << cmd;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

double final_ppl_from_csv(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::string line, last;
  while (std::getline(in, line))
    if (!line.empty()) last = line;
  // "step,val_loss,ppl" rows; the perplexity is the third field.
  const size_t c1 = last.find(','), c2 = last.find(',', c1 + 1);
  EXPECT_NE(c2, std::string::npos) << "bad csv row: " << last;
  return std::strtod(last.c_str() + c2 + 1, nullptr);
}

TEST(FaultInjector, KillAndResumeMatchesCleanPerplexity) {
  const std::string dir = std::string(::testing::TempDir()) + "fault_e2e";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string bin = APOLLO_TRAIN_BIN;
  const std::string cd = "cd " + dir + " && ";
  const std::string args = std::string(kShape) + " --seed 11";
  const std::string resilient =
      " --ckpt-dir ckpts --ckpt-every 10 --watchdog";

  // Fault-free baseline.
  ASSERT_EQ(run_cmd(cd + bin + args + " --csv clean.csv > clean.log 2>&1"),
            0);

  // Faulted run: a NaN gradient at step 20 (rollback + LR backoff), then a
  // simulated kill at step 40.
  ASSERT_EQ(run_cmd(cd + "APOLLO_FAULTS='nan_grad@20;crash@40' " + bin +
                    args + resilient +
                    " --csv faulted.csv > faulted.log 2>&1"),
            fault::kCrashExitCode);

  // Relaunch: auto-resume from the newest good checkpoint and finish.
  ASSERT_EQ(run_cmd(cd + bin + args + resilient +
                    " --csv resumed.csv > resumed.log 2>&1"),
            0);
  std::ifstream log(dir + "/resumed.log");
  std::stringstream ss;
  ss << log.rdbuf();
  EXPECT_NE(ss.str().find("resumed from step 40"), std::string::npos)
      << ss.str();

  const double clean = final_ppl_from_csv(dir + "/clean.csv");
  const double recovered = final_ppl_from_csv(dir + "/resumed.csv");
  ASSERT_GT(clean, 1.0);
  ASSERT_TRUE(std::isfinite(recovered));
  // Acceptance contract: recovery lands within 5% of the clean run.
  EXPECT_NEAR(recovered, clean, 0.05 * clean)
      << "clean " << clean << " vs recovered " << recovered;
  std::filesystem::remove_all(dir);
}

#endif  // APOLLO_TRAIN_BIN

}  // namespace
}  // namespace apollo
