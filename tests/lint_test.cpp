// Subprocess tests for tools/apollo_lint.cpp: plant violations of distinct
// rules in a throwaway tree, run the real binary against it, and assert the
// diagnostics (rule id, file:line prefix, exit status) and the suppression
// escape hatches. APOLLO_LINT_BIN is injected by tests/CMakeLists.txt.
//
// Every planted violation below lives inside a C++ string literal, which the
// linter's comment/string stripper blanks — so this file itself stays clean
// under the repo-wide apollo_lint ctest.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_lint(const std::string& args) {
  const std::string cmd = std::string(APOLLO_LINT_BIN) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  RunResult r;
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl =
        (fs::temp_directory_path() / "apollo_lint_test.XXXXXX").string();
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    root_ = tmpl;
    fs::create_directories(root_ / "src" / "optim");
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void put(const std::string& rel, const std::string& text) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good());
  }

  RunResult lint() { return run_lint("--root " + root_.string()); }

  fs::path root_;
};

TEST_F(LintTest, CleanTreePassesWithExitZero) {
  put("src/clean.h",
      "#pragma once\n"
      "namespace demo { int two(); }\n");
  put("src/clean.cpp",
      "#include \"clean.h\"\n"
      "namespace demo { int two() { return 2; } }\n");
  const RunResult r = lint();
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("files clean"), std::string::npos) << r.output;
}

TEST_F(LintTest, PlantedViolationsOfDistinctRulesAreCaught) {
  put("src/bad_thread.cpp",
      "#include <thread>\n"
      "void spawn() { std::thread t([] {}); t.join(); }\n");
  put("src/bad_rng.cpp",
      "#include <cstdlib>\n"
      "int roll() { return rand(); }\n");
  put("src/bad_header.h",
      "using namespace std;\n"
      "inline int three() { return 3; }\n");
  put("src/bad_new.cpp",
      "int* make() { return new int(3); }\n");
  put("src/bad_printf.cpp",
      "#include <cstdio>\n"
      "void show(double x) { std::printf(\"%f\\n\", x); }\n");
  put("src/bad_simd.cpp",
      "#include <immintrin.h>\n"
      "float hsum8(const float* p) {\n"
      "  __m256 v = _mm256_loadu_ps(p);\n"
      "  __m128 lo = _mm256_castps256_ps128(v);\n"
      "  return _mm_cvtss_f32(lo);\n"
      "}\n");
  put("src/bad_accum.cpp",
      "#include <unordered_map>\n"
      "float total(const std::unordered_map<int, float>& m) {\n"
      "  float s = 0.f;\n"
      "  for (const auto& kv : m) s += kv.second;\n"
      "  return s;\n"
      "}\n");
  const RunResult r = lint();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("src/bad_thread.cpp:2: raw-thread:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/bad_rng.cpp:2: raw-rng:"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/bad_header.h:1: pragma-once:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/bad_header.h:1: using-namespace-header:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/bad_new.cpp:1: raw-new-delete:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/bad_printf.cpp:2: printf-float-precision:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/bad_accum.cpp:4: unordered-float-accum:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/bad_simd.cpp:1: raw-simd-intrinsic:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/bad_simd.cpp:3: raw-simd-intrinsic:"),
            std::string::npos)
      << r.output;
}

TEST_F(LintTest, SimdIntrinsicsAllowedInsideTensorSimd) {
  put("src/tensor/simd/kernels_demo.cpp",
      "#include <immintrin.h>\n"
      "float first(const float* p) {\n"
      "  __m256 v = _mm256_loadu_ps(p);\n"
      "  return _mm256_cvtss_f32(v);\n"
      "}\n");
  const RunResult r = lint();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, ShapePreconditionRuleFiresInOptimEntryPoints) {
  put("src/optim/bad_entry.cpp",
      "#include \"tensor/matrix.h\"\n"
      "namespace apollo::optim {\n"
      "void apply_scale(Matrix& g, float s) {\n"
      "  for (long i = 0; i < g.size(); ++i) g[i] *= s;\n"
      "}\n"
      "}\n");
  const RunResult r = lint();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(
      r.output.find("src/optim/bad_entry.cpp:3: check-shape-preconditions:"),
      std::string::npos)
      << r.output;
}

TEST_F(LintTest, LineSuppressionSilencesTheRule) {
  put("src/suppressed.cpp",
      "#include <thread>\n"
      "// lint:allow(raw-thread)\n"
      "void spawn() { std::thread t([] {}); t.join(); }\n");
  const RunResult r = lint();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, FileSuppressionSilencesTheWholeFile) {
  put("src/suppressed_file.cpp",
      "// lint:allow-file(raw-new-delete)\n"
      "int* a() { return new int(1); }\n"
      "int* b() { return new int(2); }\n");
  const RunResult r = lint();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, SuppressionOfOneRuleDoesNotHideAnother) {
  put("src/partial.cpp",
      "#include <thread>\n"
      "// lint:allow(raw-rng)\n"
      "void spawn() { std::thread t([] {}); t.join(); }\n");
  const RunResult r = lint();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("raw-thread"), std::string::npos) << r.output;
}

TEST_F(LintTest, ViolationsInsideCommentsAndStringsAreIgnored) {
  put("src/innocuous.cpp",
      "// std::thread in a comment is fine; so is rand().\n"
      "const char* kDoc = \"uses std::thread and new int[4]\";\n"
      "int use() { return kDoc[0]; }\n");
  const RunResult r = lint();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintCliTest, ListRulesNamesEveryRule) {
  const RunResult r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"raw-thread", "raw-rng", "raw-simd-intrinsic",
        "unordered-float-accum", "pragma-once", "using-namespace-header",
        "raw-new-delete", "printf-float-precision",
        "check-shape-preconditions"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
  }
}

TEST(LintCliTest, UnknownOptionIsAUsageError) {
  const RunResult r = run_lint("--no-such-flag");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(LintCliTest, RealTreeIsClean) {
  const RunResult r = run_lint("--root " APOLLO_REPO_ROOT);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("files clean"), std::string::npos) << r.output;
}

}  // namespace
