// Trainer / schedule / fine-tune harness tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/apollo.h"
#include "optim/adamw.h"
#include "train/finetune.h"
#include "train/schedule.h"
#include "train/trainer.h"

namespace apollo {
namespace {

TEST(CosineSchedule, WarmupRampsLinearly) {
  train::CosineSchedule s(1.f, 100, 0.1f, 0.1f);
  EXPECT_NEAR(s.lr_at(0), 0.1f, 1e-6f);
  EXPECT_NEAR(s.lr_at(4), 0.5f, 1e-6f);
  EXPECT_NEAR(s.lr_at(9), 1.0f, 1e-6f);
}

TEST(CosineSchedule, DecaysToFinalFraction) {
  train::CosineSchedule s(1.f, 100, 0.1f, 0.1f);
  EXPECT_NEAR(s.lr_at(99), 0.1f, 0.01f);
  // Monotone decay after warm-up.
  for (int t = 10; t < 99; ++t) EXPECT_GE(s.lr_at(t), s.lr_at(t + 1) - 1e-7f);
}

TEST(CosineSchedule, MidpointIsMeanOfPeakAndFloor) {
  train::CosineSchedule s(2.f, 100, 0.f, 0.5f);
  // Halfway through decay: cosine = 0.5 → lr = floor + (peak−floor)/2.
  EXPECT_NEAR(s.lr_at(50), 1.5f, 0.05f);
}

TEST(Trainer, LossDecreasesAndDeterministic) {
  auto run = [] {
    nn::LlamaConfig cfg;
    cfg.vocab = 64; cfg.hidden = 16; cfg.intermediate = 40;
    cfg.n_heads = 2; cfg.n_layers = 2; cfg.seq_len = 16;
    nn::LlamaModel model(cfg, 3);
    data::CorpusConfig ccfg;
    ccfg.vocab = 64;
    data::SyntheticCorpus corpus(ccfg);
    optim::AdamW opt;
    train::TrainConfig tc;
    tc.steps = 60;
    tc.batch = 4;
    tc.lr = 3e-3f;
    tc.record_step_losses = true;
    train::Trainer t(model, opt, corpus, tc);
    return t.run();
  };
  auto r1 = run();
  // Training reduces loss vs. the near-uniform start.
  ASSERT_EQ(r1.step_losses.size(), 60u);
  EXPECT_LT(r1.step_losses.back(), r1.step_losses.front() * 0.95f);
  EXPECT_LT(r1.final_perplexity, 64.0);  // beats the uniform baseline
  // Bit-level reproducibility.
  auto r2 = run();
  EXPECT_EQ(r1.final_perplexity, r2.final_perplexity);
  EXPECT_EQ(r1.step_losses, r2.step_losses);
  EXPECT_GT(r1.peak_activation_bytes, 0);
  EXPECT_GT(r1.optimizer_state_bytes, 0);
}

TEST(Trainer, EvalCurveRecordsRequestedPoints) {
  nn::LlamaConfig cfg;
  cfg.vocab = 64; cfg.hidden = 16; cfg.intermediate = 40;
  cfg.n_heads = 2; cfg.n_layers = 1; cfg.seq_len = 16;
  nn::LlamaModel model(cfg, 4);
  data::CorpusConfig ccfg;
  ccfg.vocab = 64;
  data::SyntheticCorpus corpus(ccfg);
  optim::AdamW opt;
  train::TrainConfig tc;
  tc.steps = 30;
  tc.batch = 2;
  tc.eval_every = 10;
  train::Trainer t(model, opt, corpus, tc);
  auto r = t.run();
  ASSERT_EQ(r.curve.size(), 3u);  // steps 10, 20, 30
  EXPECT_EQ(r.curve[0].step, 10);
  EXPECT_EQ(r.curve.back().step, 30);
  for (const auto& pt : r.curve)
    EXPECT_NEAR(pt.perplexity, std::exp(pt.val_loss), 1e-6);
}

TEST(Trainer, QuantizedWeightTrainingRuns) {
  nn::LlamaConfig cfg;
  cfg.vocab = 64; cfg.hidden = 16; cfg.intermediate = 40;
  cfg.n_heads = 2; cfg.n_layers = 1; cfg.seq_len = 16;
  nn::LlamaModel model(cfg, 5);
  data::CorpusConfig ccfg;
  ccfg.vocab = 64;
  data::SyntheticCorpus corpus(ccfg);
  auto opt = core::Apollo::mini();
  core::QuantizedWeightStore store(model.parameters(), 11);
  train::TrainConfig tc;
  tc.steps = 40;
  tc.batch = 2;
  tc.lr = 0.01f;
  tc.record_step_losses = true;
  train::Trainer t(model, *opt, corpus, tc);
  t.set_quantized_weights(&store);
  auto r = t.run();
  EXPECT_LT(r.step_losses.back(), r.step_losses.front());
  EXPECT_LT(r.final_perplexity, 64.0);
  // Weight payload is INT8 (≈¼ the fp32 bytes + gains and scales).
  EXPECT_LT(store.weight_bytes(), model.param_count() * 2);
}

TEST(Finetune, ImprovesTaskAccuracy) {
  nn::LlamaConfig cfg;
  cfg.vocab = 256; cfg.hidden = 32; cfg.intermediate = 88;
  cfg.n_heads = 4; cfg.n_layers = 2; cfg.seq_len = 32;
  nn::LlamaModel model(cfg, 6);
  data::SyntheticCorpus corpus({});
  data::TaskGenerator gen(corpus, 13);
  optim::AdamW opt;
  train::FinetuneConfig fc;
  fc.steps = 400;
  fc.batch = 16;
  fc.lr = 1e-3f;
  auto train_fn = [&](int b) {
    return gen.make_commonsense_batch(data::CommonsenseTask::kCopyLast, b, 32);
  };
  data::TaskGenerator eval_gen(corpus, 14);
  auto eval_fn = [&](int b) {
    return eval_gen.make_commonsense_batch(data::CommonsenseTask::kCopyLast, b,
                                           32);
  };
  auto res = train::finetune(model, opt, train_fn, eval_fn, fc);
  // Copy-last is trivially learnable: accuracy should climb well above the
  // untrained baseline.
  EXPECT_GT(res.accuracy, res.zero_shot + 0.2);
  EXPECT_GT(res.accuracy, 0.5);
}

TEST(Finetune, TaskAccuracyRestrictedToChoices) {
  // With a 2-way choice set, a random model scores ≈ 0.5, never ≈ 1/vocab.
  nn::LlamaConfig cfg;
  cfg.vocab = 256; cfg.hidden = 16; cfg.intermediate = 40;
  cfg.n_heads = 2; cfg.n_layers = 1; cfg.seq_len = 32;
  nn::LlamaModel model(cfg, 7);
  data::SyntheticCorpus corpus({});
  data::TaskGenerator gen(corpus, 15);
  auto batch =
      gen.make_commonsense_batch(data::CommonsenseTask::kParity, 64, 32);
  const double acc = train::task_accuracy(model, batch);
  EXPECT_GT(acc, 0.2);
  EXPECT_LT(acc, 0.85);
}

}  // namespace
}  // namespace apollo
