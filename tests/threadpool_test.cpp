// Determinism contract of core/threadpool.h: every kernel routed through
// parallel_for must produce bit-identical results for ANY thread count —
// matmul family, projections, and a full APOLLO training step — plus the
// partition edge cases (empty ranges, fewer rows than threads, nesting).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/apollo.h"
#include "core/threadpool.h"
#include "data/corpus.h"
#include "linalg/projection.h"
#include "nn/llama.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace apollo {
namespace {

// Restores the default thread count even when an assertion bails out early.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) { core::set_thread_count(n); }
  ~ThreadCountGuard() { core::set_thread_count(0); }
};

Matrix random_matrix(int64_t r, int64_t c, uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  m.fill_gaussian(rng, 0.f, 1.f);
  return m;
}

// The thread counts every determinism assertion sweeps: sequential,
// small-parallel, and whatever this machine's hardware default resolves to.
std::vector<int> sweep_counts() {
  core::set_thread_count(0);
  return {1, 4, core::thread_count()};
}

TEST(ThreadPool, ThreadCountResolvesToAtLeastOne) {
  core::set_thread_count(0);
  EXPECT_GE(core::thread_count(), 1);
}

TEST(ThreadPool, SetThreadCountOverridesAndRestores) {
  ThreadCountGuard guard(3);
  EXPECT_EQ(core::thread_count(), 3);
  core::set_thread_count(7);
  EXPECT_EQ(core::thread_count(), 7);
  core::set_thread_count(0);
  EXPECT_GE(core::thread_count(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadCountGuard guard(threads);
    const int64_t n = 1001;  // deliberately not divisible by the lane count
    std::vector<int> hits(static_cast<size_t>(n), 0);
    core::parallel_for(n, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
    });
    for (int64_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[static_cast<size_t>(i)], 1)
          << "index " << i << " at " << threads << " threads";
  }
}

TEST(ThreadPool, ZeroAndNegativeRangesAreNoOps) {
  ThreadCountGuard guard(4);
  std::atomic<int> calls{0};
  core::parallel_for(0, [&](int64_t, int64_t) { ++calls; });
  core::parallel_for(-5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, FewerIndicesThanThreads) {
  ThreadCountGuard guard(8);
  const int64_t n = 3;  // rows < threads: lanes must collapse, not starve
  std::vector<int> hits(static_cast<size_t>(n), 0);
  core::parallel_for(n, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ThreadPool, GrainKeepsSmallRangesInline) {
  ThreadCountGuard guard(8);
  std::atomic<int> chunks{0};
  core::parallel_for(
      100, [&](int64_t, int64_t) { ++chunks; }, /*grain=*/1000);
  EXPECT_EQ(chunks.load(), 1);  // below 1 grain per lane ⇒ single inline call
}

TEST(ThreadPool, NestedParallelForDegradesToSequential) {
  ThreadCountGuard guard(4);
  const int64_t n = 64;
  std::vector<int> hits(static_cast<size_t>(n * n), 0);
  core::parallel_for(n, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Nesting is the point of this test: it must degrade to sequential.
      core::parallel_for(n, [&](int64_t b2, int64_t e2) {  // lint:allow(parallel-nested)
        for (int64_t j = b2; j < e2; ++j)
          ++hits[static_cast<size_t>(i * n + j)];
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, MatmulBitIdenticalAcrossThreadCounts) {
  const Matrix a = random_matrix(96, 80, 1);
  const Matrix b = random_matrix(80, 72, 2);
  const Matrix at_b = random_matrix(96, 72, 3);  // matmul_at: aᵀ·at_b
  const Matrix bt = random_matrix(72, 80, 4);    // matmul_bt: a·btᵀ
  core::set_thread_count(1);
  const Matrix ref = matmul(a, b);
  const Matrix ref_at = matmul_at(a, at_b);
  const Matrix ref_bt = matmul_bt(a, bt);
  for (int threads : sweep_counts()) {
    ThreadCountGuard guard(threads);
    EXPECT_TRUE(matmul(a, b) == ref) << threads << " threads";
    EXPECT_TRUE(matmul_at(a, at_b) == ref_at) << threads << " threads";
    EXPECT_TRUE(matmul_bt(a, bt) == ref_bt) << threads << " threads";
  }
}

TEST(ThreadPool, MatmulEdgeShapesBitIdentical) {
  // Degenerate shapes: zero rows, one row (rows < threads), tall-thin.
  const Matrix zero_rows(0, 8);
  const Matrix one_row = random_matrix(1, 8, 4);
  const Matrix tall = random_matrix(64, 2, 5);
  const Matrix b = random_matrix(8, 16, 6);
  const Matrix b2 = random_matrix(2, 16, 7);
  core::set_thread_count(1);
  const Matrix ref0 = matmul(zero_rows, b);
  const Matrix ref1 = matmul(one_row, b);
  const Matrix ref2 = matmul(tall, b2);
  for (int threads : sweep_counts()) {
    ThreadCountGuard guard(threads);
    const Matrix c0 = matmul(zero_rows, b);
    EXPECT_EQ(c0.rows(), 0);
    EXPECT_EQ(c0.cols(), 16);
    EXPECT_TRUE(c0 == ref0);
    EXPECT_TRUE(matmul(one_row, b) == ref1);
    EXPECT_TRUE(matmul(tall, b2) == ref2);
  }
}

TEST(ThreadPool, ProjectionBitIdenticalAcrossThreadCounts) {
  const Matrix g = random_matrix(48, 128, 8);
  const Matrix p = gaussian_projection(12, 48, 99);
  core::set_thread_count(1);
  const Matrix ref_rg = project(g, p, ProjectionSide::kLeft);
  const Matrix ref_back = project_back(ref_rg, p, ProjectionSide::kLeft);
  const std::vector<float> ref_cn = col_norms(g);
  const std::vector<float> ref_rn = row_norms(g);
  for (int threads : sweep_counts()) {
    ThreadCountGuard guard(threads);
    // The projector itself is regenerated from the seed — must never vary.
    EXPECT_TRUE(gaussian_projection(12, 48, 99) == p);
    const Matrix rg = project(g, p, ProjectionSide::kLeft);
    EXPECT_TRUE(rg == ref_rg) << threads << " threads";
    EXPECT_TRUE(project_back(rg, p, ProjectionSide::kLeft) == ref_back);
    EXPECT_EQ(col_norms(g), ref_cn);
    EXPECT_EQ(row_norms(g), ref_rn);
  }
}

// One full APOLLO optimizer step on a real gradient shape: moments,
// channel-wise scaling factors, limiter and weight update all bit-identical.
TEST(ThreadPool, ApolloStepBitIdenticalAcrossThreadCounts) {
  auto run_step = [](int threads) {
    ThreadCountGuard guard(threads);
    nn::Parameter p("w", 48, 128);
    Rng rng(11);
    p.value.fill_gaussian(rng, 0.f, 0.5f);
    core::ApolloConfig cfg;
    cfg.rank = 8;
    cfg.seed = 21;
    core::Apollo opt(cfg);
    opt.set_lr(1e-2f);
    for (int s = 0; s < 5; ++s) {
      p.grad.fill_gaussian(rng, 0.f, 0.1f);
      opt.step({&p});
    }
    return p.value;
  };
  const Matrix ref = run_step(1);
  for (int threads : sweep_counts())
    EXPECT_TRUE(run_step(threads) == ref) << threads << " threads";
}

// End-to-end: a short APOLLO training run of the nano LLaMA — forward,
// backward, projection, scaling and update — must produce bit-identical
// loss curves and final weights for every thread count.
TEST(ThreadPool, ApolloTrainingRunBitIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    ThreadCountGuard guard(threads);
    nn::LlamaConfig mcfg;
    mcfg.vocab = 64;
    mcfg.hidden = 16;
    mcfg.intermediate = 40;
    mcfg.n_heads = 2;
    mcfg.n_layers = 1;
    mcfg.seq_len = 8;
    nn::LlamaModel model(mcfg, 3);
    data::CorpusConfig ccfg;
    ccfg.vocab = 64;
    data::SyntheticCorpus corpus(ccfg);
    core::ApolloConfig acfg;
    acfg.rank = 4;
    acfg.update_freq = 2;
    core::Apollo opt(acfg);
    train::TrainConfig tc;
    tc.steps = 4;
    tc.batch = 2;
    tc.lr = 1e-2f;
    tc.record_step_losses = true;
    train::Trainer trainer(model, opt, corpus, tc);
    auto result = trainer.run();
    return std::make_pair(result.step_losses, model.snapshot());
  };
  const auto [ref_losses, ref_weights] = run(1);
  ASSERT_EQ(ref_losses.size(), 4u);
  for (int threads : sweep_counts()) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    const auto [losses, weights] = run(threads);
    EXPECT_EQ(losses, ref_losses);  // float == float: bit-identity
    ASSERT_EQ(weights.size(), ref_weights.size());
    for (size_t i = 0; i < weights.size(); ++i)
      EXPECT_TRUE(weights[i] == ref_weights[i]) << "weight " << i;
  }
}

}  // namespace
}  // namespace apollo
