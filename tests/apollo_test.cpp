// Tests for the APOLLO optimizer family and the structured-LR AdamW
// reference: update algebra, Table-1 state accounting, determinism, and the
// structural invariants the paper's design rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/apollo.h"
#include "core/structured_adamw.h"
#include "optim/adamw.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

std::unique_ptr<nn::Parameter> make_param(int64_t rows, int64_t cols,
                                          uint64_t seed, float gscale = 0.1f,
                                          bool matrix = true) {
  auto p = std::make_unique<nn::Parameter>("w", rows, cols, matrix);
  Rng rng(seed);
  p->value.fill_gaussian(rng, 0.f, 1.f);
  p->grad.fill_gaussian(rng, 0.f, gscale);
  return p;
}

TEST(StructuredAdamW, ElementWiseEqualsAdamW) {
  // kElement granularity with no limiter must be bit-for-bit AdamW.
  auto p = make_param(6, 10, 1);
  auto q = std::make_unique<nn::Parameter>("w", 6, 10);
  q->value = p->value;
  q->grad = p->grad;
  core::StructuredAdamWConfig cfg;
  cfg.granularity = core::LrGranularity::kElement;
  cfg.use_norm_limiter = false;
  core::StructuredAdamW structured(cfg);
  optim::AdamW adam;
  structured.set_lr(0.01f);
  adam.set_lr(0.01f);
  Rng rng(2);
  for (int s = 0; s < 5; ++s) {
    structured.step({p.get()});
    adam.step({q.get()});
    Matrix g(6, 10);
    g.fill_gaussian(rng, 0.f, 0.1f);
    p->grad = g;
    q->grad = g;
  }
  EXPECT_LT(max_abs_diff(p->value, q->value), 1e-6f);
}

TEST(StructuredAdamW, ChannelUpdateIsScaledRawGradient) {
  // One step: the update direction per channel must be parallel to the raw
  // gradient column (that is the whole point of structured scaling).
  auto p = make_param(6, 10, 3);
  Matrix before = p->value;
  core::StructuredAdamWConfig cfg;
  cfg.granularity = core::LrGranularity::kChannel;
  cfg.use_norm_limiter = false;
  core::StructuredAdamW opt(cfg);
  opt.set_lr(0.01f);
  opt.step({p.get()});
  Matrix delta = sub(before, p->value);  // = lr · G·diag(s)
  for (int64_t j = 0; j < 10; ++j) {
    // delta[:,j] / g[:,j] constant across the column.
    float ratio = 0.f;
    bool first = true;
    for (int64_t i = 0; i < 6; ++i) {
      if (std::fabs(p->grad.at(i, j)) < 1e-3f) continue;
      const float r = delta.at(i, j) / p->grad.at(i, j);
      if (first) {
        ratio = r;
        first = false;
      } else {
        EXPECT_NEAR(r, ratio, 1e-4f) << "column " << j;
      }
    }
    EXPECT_GT(ratio, 0.f);  // descent direction
  }
}

TEST(StructuredAdamW, FirstStepChannelFactorIsOne) {
  // At t=1 with bias correction, G̃ = G/(|G|+ε) ⇒ ‖G̃[:,j]‖/‖G[:,j]‖ —
  // not 1 in general; but for a one-hot gradient it is exactly 1.
  auto p = std::make_unique<nn::Parameter>("w", 4, 8);
  p->value.fill(1.f);
  p->grad.at(2, 5) = 0.25f;
  core::StructuredAdamWConfig cfg;
  cfg.use_norm_limiter = false;
  core::StructuredAdamW opt(cfg);
  opt.set_lr(0.1f);
  opt.step({p.get()});
  const auto* s = opt.last_scaling(p.get());
  ASSERT_NE(s, nullptr);
  EXPECT_NEAR((*s)[5], 1.f / (0.25f), 0.01f);  // ‖G̃‖=1, ‖G‖=0.25
}

TEST(StructuredAdamW, TensorGranularityUniformScale) {
  auto p = make_param(6, 10, 4);
  Matrix before = p->value;
  core::StructuredAdamWConfig cfg;
  cfg.granularity = core::LrGranularity::kTensor;
  cfg.use_norm_limiter = false;
  core::StructuredAdamW opt(cfg);
  opt.set_lr(0.01f);
  opt.step({p.get()});
  Matrix delta = sub(before, p->value);
  // Whole-tensor: delta must be a single scalar multiple of G.
  float ratio = 0.f;
  bool first = true;
  for (int64_t i = 0; i < delta.size(); ++i) {
    if (std::fabs(p->grad[i]) < 1e-3f) continue;
    const float r = delta[i] / p->grad[i];
    if (first) {
      ratio = r;
      first = false;
    } else {
      EXPECT_NEAR(r, ratio, 1e-4f);
    }
  }
}

TEST(Apollo, UpdateIsChannelScaledRawGradient) {
  auto p = make_param(8, 24, 5);
  Matrix before = p->value;
  core::ApolloConfig cfg;
  cfg.rank = 4;
  cfg.use_norm_limiter = false;
  auto opt = core::Apollo::standard(cfg);
  opt->set_lr(0.01f);
  opt->step({p.get()});
  Matrix delta = sub(before, p->value);
  for (int64_t j = 0; j < 24; ++j) {
    float ratio = 0.f;
    bool first = true;
    for (int64_t i = 0; i < 8; ++i) {
      if (std::fabs(p->grad.at(i, j)) < 1e-3f) continue;
      const float r = delta.at(i, j) / p->grad.at(i, j);
      if (first) {
        ratio = r;
        first = false;
      } else {
        EXPECT_NEAR(r, ratio, 1e-4f) << "column " << j;
      }
    }
  }
}

TEST(Apollo, StateMatchesTable1Formula) {
  const int64_t m = 8, n = 24, r = 4;
  auto p = make_param(m, n, 6);
  core::ApolloConfig cfg;
  cfg.rank = r;
  auto opt = core::Apollo::standard(cfg);
  opt->step({p.get()});
  // 2nr floats + seed (8 B) + limiter norm (4 B): the "2nr + 2" of Table 1.
  EXPECT_EQ(opt->state_bytes(), 2 * n * r * 4 + 8 + 4);
}

TEST(ApolloMini, StateIsSgdLevel) {
  const int64_t m = 64, n = 256;
  auto p = make_param(m, n, 7);
  auto opt = core::Apollo::mini();
  opt->step({p.get()});
  // 2n + 2 per Table 1 — m/1-fold (~60×) below AdamW's 2mn at this shape.
  EXPECT_EQ(opt->state_bytes(), 2 * n * 4 + 8 + 4);
  EXPECT_LT(opt->state_bytes() * 50, 2 * m * n * 4);
}

TEST(ApolloMini, TensorScalingUniform) {
  auto p = make_param(8, 24, 8);
  Matrix before = p->value;
  auto opt = core::Apollo::mini();
  opt->set_lr(0.01f);
  opt->step({p.get()});
  Matrix delta = sub(before, p->value);
  float ratio = 0.f;
  bool first = true;
  for (int64_t i = 0; i < delta.size(); ++i) {
    if (std::fabs(p->grad[i]) < 1e-3f) continue;
    const float r = delta[i] / p->grad[i];
    if (first) {
      ratio = r;
      first = false;
    } else {
      EXPECT_NEAR(r, ratio, 1e-4f);
    }
  }
  EXPECT_GT(ratio, 0.f);
}

TEST(ApolloMini, InvariantToChannelPermutation) {
  // Tensor-wise scaling depends only on whole-matrix norms, so permuting
  // the channels of W and G must permute the update identically.
  auto p = make_param(4, 12, 9);
  auto q = std::make_unique<nn::Parameter>("w", 4, 12);
  // q = p with columns reversed.
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 12; ++j) {
      q->value.at(i, j) = p->value.at(i, 11 - j);
      q->grad.at(i, j) = p->grad.at(i, 11 - j);
    }
  auto o1 = core::Apollo::mini(1);
  auto o2 = core::Apollo::mini(1);
  o1->set_lr(0.01f);
  o2->set_lr(0.01f);
  o1->step({p.get()});
  o2->step({q.get()});
  // The tensor-wise scale uses the projected norms; with rank 1 and the
  // same seed, the projected row is a linear functional — permutation of
  // columns permutes R's entries, leaving its norm unchanged.
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 12; ++j)
      EXPECT_NEAR(q->value.at(i, j), p->value.at(i, 11 - j), 1e-6f);
}

TEST(Apollo, DeterministicAcrossRuns) {
  auto run = [] {
    auto p = make_param(8, 24, 10);
    core::ApolloConfig cfg;
    cfg.rank = 4;
    cfg.seed = 33;
    auto opt = core::Apollo::standard(cfg);
    opt->set_lr(0.01f);
    for (int s = 0; s < 6; ++s) opt->step({p.get()});
    return p->value;
  };
  EXPECT_TRUE(run() == run());
}

TEST(Apollo, SeedChangesTrajectory) {
  auto run = [](uint64_t seed) {
    auto p = make_param(8, 24, 11);
    core::ApolloConfig cfg;
    cfg.rank = 2;
    cfg.seed = seed;
    auto opt = core::Apollo::standard(cfg);
    opt->set_lr(0.01f);
    opt->step({p.get()});
    return p->value;
  };
  EXPECT_GT(max_abs_diff(run(1), run(2)), 0.f);
}

TEST(Apollo, ReseedsEveryUpdateFreq) {
  // With update_freq = 2, steps 1–2 share a projection; step 3 re-seeds.
  // Feeding the same gradient, the scaling factors at steps 1 and 3 must
  // generally differ (new random subspace), while a run with update_freq
  // large keeps them closer. We assert the mechanical part: trajectories
  // with different update_freq diverge after the refresh point.
  auto run = [](int freq) {
    auto p = make_param(8, 24, 12);
    core::ApolloConfig cfg;
    cfg.rank = 2;
    cfg.update_freq = freq;
    cfg.seed = 5;
    auto opt = core::Apollo::standard(cfg);
    opt->set_lr(0.01f);
    for (int s = 0; s < 4; ++s) opt->step({p.get()});
    return p->value;
  };
  EXPECT_GT(max_abs_diff(run(2), run(100)), 0.f);
}

TEST(Apollo, OneDimFallsBackToDenseAdam) {
  auto p = make_param(1, 16, 13, 0.1f, /*matrix=*/false);
  auto opt = core::Apollo::standard({});
  opt->step({p.get()});
  EXPECT_EQ(opt->state_bytes(), 2 * 16 * 4);
}

TEST(Apollo, WideMatrixScalesRows) {
  // rows > cols: channels are rows; update rows must be scalar multiples of
  // gradient rows.
  auto p = make_param(24, 8, 14);
  Matrix before = p->value;
  core::ApolloConfig cfg;
  cfg.rank = 4;
  cfg.use_norm_limiter = false;
  auto opt = core::Apollo::standard(cfg);
  opt->set_lr(0.01f);
  opt->step({p.get()});
  Matrix delta = sub(before, p->value);
  for (int64_t i = 0; i < 24; ++i) {
    float ratio = 0.f;
    bool first = true;
    for (int64_t j = 0; j < 8; ++j) {
      if (std::fabs(p->grad.at(i, j)) < 1e-3f) continue;
      const float r = delta.at(i, j) / p->grad.at(i, j);
      if (first) {
        ratio = r;
        first = false;
      } else {
        EXPECT_NEAR(r, ratio, 1e-4f) << "row " << i;
      }
    }
  }
}

TEST(Apollo, NormLimiterCapsSpikes) {
  // Feed a tiny gradient then a huge one: the applied update's norm may
  // grow by at most γ.
  auto p = std::make_unique<nn::Parameter>("w", 4, 8);
  p->value.fill(0.f);
  Rng rng(15);
  p->grad.fill_gaussian(rng, 0.f, 1e-3f);
  core::ApolloConfig cfg;
  cfg.rank = 2;
  cfg.nl_gamma = 1.01f;
  auto opt = core::Apollo::standard(cfg);
  opt->set_lr(1.f);
  opt->step({p.get()});
  const double norm1 = frobenius_norm(p->value);
  Matrix w1 = p->value;
  p->grad.fill_gaussian(rng, 0.f, 10.f);  // 10 000× larger gradient
  opt->step({p.get()});
  const double step2 = frobenius_norm(sub(p->value, w1));
  EXPECT_LE(step2, norm1 * 1.02 + 1e-9);
}

TEST(Apollo, SvdVariantRuns) {
  auto p = make_param(8, 24, 16);
  core::ApolloConfig cfg;
  cfg.rank = 4;
  auto opt = core::Apollo::with_svd(cfg);
  opt->set_lr(0.01f);
  Matrix before = p->value;
  opt->step({p.get()});
  EXPECT_GT(max_abs_diff(before, p->value), 0.f);
  EXPECT_EQ(opt->name(), "APOLLO w. SVD");
  // SVD variant stores its projector (m·r) on top of the moments.
  EXPECT_EQ(opt->state_bytes(), (8 * 4 + 2 * 24 * 4) * 4 + 8 + 4);
}

TEST(Apollo, MiniConfigMatchesPaper) {
  core::ApolloConfig c = core::ApolloConfig::mini();
  EXPECT_EQ(c.rank, 1);
  EXPECT_EQ(c.granularity, core::ScalingGranularity::kTensor);
  EXPECT_NEAR(c.scale, std::sqrt(128.f), 1e-5f);
}

TEST(Apollo, LastScalingExposed) {
  auto p = make_param(8, 24, 17);
  core::ApolloConfig cfg;
  cfg.rank = 4;
  auto opt = core::Apollo::standard(cfg);
  EXPECT_EQ(opt->last_scaling(p.get()), nullptr);
  opt->set_lr(0.01f);
  opt->step({p.get()});
  const auto* s = opt->last_scaling(p.get());
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->size(), 24u);  // one factor per channel (larger dim)
  for (float v : *s) EXPECT_GT(v, 0.f);
}

}  // namespace
}  // namespace apollo
