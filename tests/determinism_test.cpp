// Determinism sweep: every optimizer in the registry must produce
// bit-identical training runs from identical seeds — the property all
// experiment comparisons in bench/ rest on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/factory.h"
#include "data/corpus.h"
#include "nn/llama.h"
#include "train/trainer.h"

namespace apollo {
namespace {

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  auto run = [&] {
    nn::LlamaConfig cfg;
    cfg.vocab = 64;
    cfg.hidden = 16;
    cfg.intermediate = 40;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    cfg.seq_len = 8;
    nn::LlamaModel model(cfg, 11);
    data::CorpusConfig ccfg;
    ccfg.vocab = 64;
    data::SyntheticCorpus corpus(ccfg);
    core::FactoryOptions fo;
    fo.rank = 4;
    fo.update_freq = 10;
    fo.seed = 77;
    auto opt = core::make_optimizer(GetParam(), fo);
    train::TrainConfig tc;
    tc.steps = 25;
    tc.batch = 2;
    tc.lr = core::default_lr(GetParam());
    train::Trainer t(model, *opt, corpus, tc);
    auto result = t.run();
    // Return both the metric and a raw weight as the fingerprint.
    return std::pair(result.final_perplexity,
                     model.parameters()[1]->value);
  };
  auto [ppl1, w1] = run();
  auto [ppl2, w2] = run();
  EXPECT_EQ(ppl1, ppl2);
  EXPECT_TRUE(w1 == w2);
  EXPECT_TRUE(std::isfinite(ppl1));
}

INSTANTIATE_TEST_SUITE_P(
    AllOptimizers, DeterminismTest,
    ::testing::ValuesIn(core::known_optimizers()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace apollo
