// Resilience subsystem unit tests: divergence watchdog thresholds, LR
// backoff sequence + probation restore, checkpoint rotation, bit-identical
// rollback, and newest-first auto-resume that skips corrupt checkpoints.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/apollo.h"
#include "data/corpus.h"
#include "obs/metrics.h"
#include "train/resilience.h"

namespace apollo {
namespace {

namespace fs = std::filesystem;

// --- watchdog ----------------------------------------------------------------

TEST(Watchdog, NonFiniteLossOrGradFlagsImmediately) {
  train::DivergenceWatchdog wd(train::WatchdogConfig{});
  EXPECT_NE(wd.check(std::nan(""), 1.0), "");
  EXPECT_NE(wd.check(HUGE_VAL, 1.0), "");
  EXPECT_NE(wd.check(2.0, std::nan("")), "");
  EXPECT_NE(wd.check(2.0, HUGE_VAL), "");
  EXPECT_EQ(wd.check(2.0, 1.0), "");  // finite, no history → healthy
}

TEST(Watchdog, SpikeArmsOnlyAfterMinHistory) {
  train::WatchdogConfig cfg;
  cfg.spike_factor = 10.0;
  cfg.min_history = 5;
  train::DivergenceWatchdog wd(cfg);
  // Before min_history healthy losses, even a huge step is tolerated.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(wd.check(1e9, 1.0), "") << "step " << i;
    wd.observe(4.0);
  }
  wd.observe(4.0);  // fifth healthy loss arms spike detection
  EXPECT_DOUBLE_EQ(wd.running_median(), 4.0);
  EXPECT_EQ(wd.check(39.9, 1.0), "");       // just under 10x median
  EXPECT_NE(wd.check(40.1, 1.0), "");       // just over
  const std::string why = wd.check(1e9, 1.0);
  EXPECT_NE(why.find("spike"), std::string::npos) << why;
}

TEST(Watchdog, MedianTracksWindowAndResets) {
  train::WatchdogConfig cfg;
  cfg.median_window = 3;
  train::DivergenceWatchdog wd(cfg);
  wd.observe(1.0);
  wd.observe(100.0);
  wd.observe(2.0);
  EXPECT_DOUBLE_EQ(wd.running_median(), 2.0);  // {1, 100, 2}
  wd.observe(3.0);                             // evicts 1.0 → {100, 2, 3}
  EXPECT_DOUBLE_EQ(wd.running_median(), 3.0);
  EXPECT_EQ(wd.history_size(), 3);
  wd.reset_history();
  EXPECT_EQ(wd.history_size(), 0);
  EXPECT_DOUBLE_EQ(wd.running_median(), 0.0);
}

TEST(LrBackoff, HalvesPerRollbackAndRestoresAfterProbation) {
  train::LrBackoff b(0.5f, /*probation=*/3);
  EXPECT_FLOAT_EQ(b.scale(), 1.0f);
  EXPECT_FALSE(b.in_probation());
  b.on_rollback();
  EXPECT_FLOAT_EQ(b.scale(), 0.5f);
  b.on_rollback();
  EXPECT_FLOAT_EQ(b.scale(), 0.25f);
  EXPECT_TRUE(b.in_probation());
  b.on_good_step();
  b.on_good_step();
  EXPECT_FLOAT_EQ(b.scale(), 0.25f);  // probation not yet served
  b.on_good_step();
  EXPECT_FLOAT_EQ(b.scale(), 1.0f);  // restored at full schedule strength
  EXPECT_FALSE(b.in_probation());
  // A rollback resets the good-step streak.
  b.on_rollback();
  b.on_good_step();
  b.on_rollback();
  b.on_good_step();
  b.on_good_step();
  EXPECT_FLOAT_EQ(b.scale(), 0.25f);
}

// --- rotation + auto-resume --------------------------------------------------

nn::LlamaConfig tiny() {
  nn::LlamaConfig c;
  c.vocab = 48;
  c.hidden = 16;
  c.intermediate = 40;
  c.n_heads = 2;
  c.n_layers = 1;
  c.seq_len = 8;
  return c;
}

struct FixedBatches {
  std::vector<std::vector<int32_t>> ids, targets;
  explicit FixedBatches(int n) {
    data::CorpusConfig ccfg;
    ccfg.vocab = 48;
    data::SyntheticCorpus corpus(ccfg);
    data::BatchLoader loader(corpus, 2, 8, 5);
    ids.resize(static_cast<size_t>(n));
    targets.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
      loader.next(ids[static_cast<size_t>(i)],
                  targets[static_cast<size_t>(i)]);
  }
};

void train_steps(nn::LlamaModel& model, optim::Optimizer& opt,
                 const FixedBatches& data, int from, int to) {
  for (int s = from; s < to; ++s) {
    model.zero_grads();
    ag::Tape tape;
    tape.backward(model.loss(tape, data.ids[static_cast<size_t>(s)],
                             data.targets[static_cast<size_t>(s)]));
    opt.set_lr(1e-3f);
    opt.step(model.parameters());
  }
}

std::string fresh_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  fs::remove_all(dir);
  return dir;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void corrupt_middle_byte(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  const long mid = std::ftell(f) / 2;
  std::fseek(f, mid, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, mid, SEEK_SET);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

TEST(Rotator, KeepsNewestKAndSweepsTmpLeftovers) {
  const std::string dir = fresh_dir("rot_keep");
  nn::LlamaModel m(tiny(), 1);
  {
    train::CheckpointRotator rot(dir, /*keep=*/2);
    for (int64_t s : {10, 20, 30}) ASSERT_TRUE(rot.save(m, s, nullptr).ok);
  }
  EXPECT_EQ(train::CheckpointRotator::list_steps(dir),
            (std::vector<int64_t>{20, 30}));
  EXPECT_FALSE(fs::exists(train::CheckpointRotator::path_for(dir, 10)));

  // A stale temp file (crashed save) is swept by the next construction.
  const std::string stale =
      train::CheckpointRotator::path_for(dir, 40) + ".tmp";
  std::ofstream(stale, std::ios::binary) << "partial";
  ASSERT_TRUE(fs::exists(stale));
  train::CheckpointRotator rot2(dir, 2);
  EXPECT_FALSE(fs::exists(stale));
  // Committed checkpoints are untouched by the sweep.
  EXPECT_EQ(train::CheckpointRotator::list_steps(dir),
            (std::vector<int64_t>{20, 30}));
  fs::remove_all(dir);
}

TEST(Rotator, RollbackRestoresBitIdenticalWeightsAndOptimizerState) {
  const std::string dir = fresh_dir("rot_bitident");
  const FixedBatches data(13);
  nn::LlamaModel model(tiny(), 1);
  core::ApolloConfig acfg;
  acfg.rank = 4;
  acfg.update_freq = 6;
  acfg.seed = 9;
  auto opt = core::Apollo::standard(acfg);
  train_steps(model, *opt, data, 0, 10);

  train::CheckpointRotator rot(dir, 4);
  ASSERT_TRUE(rot.save(model, 10, opt.get()).ok);
  const std::string before =
      read_bytes(train::CheckpointRotator::path_for(dir, 10));
  ASSERT_FALSE(before.empty());

  // Diverge, then roll back and re-save at the same step: the file must be
  // byte-identical, i.e. weights AND optimizer state round-trip exactly.
  train_steps(model, *opt, data, 10, 13);
  auto rolled = train::load_checkpoint(
      train::CheckpointRotator::path_for(dir, 10), model, opt.get());
  ASSERT_TRUE(rolled.ok) << rolled.error;
  ASSERT_TRUE(rolled.optimizer_state_restored);
  ASSERT_TRUE(rot.save(model, 10, opt.get()).ok);
  const std::string after =
      read_bytes(train::CheckpointRotator::path_for(dir, 10));
  EXPECT_EQ(before, after);
  fs::remove_all(dir);
}

TEST(AutoResume, EmptyOrMissingDirIsNotAnError) {
  const std::string dir = fresh_dir("resume_empty");
  nn::LlamaModel m(tiny(), 1);
  auto rr = train::auto_resume(dir, m, nullptr);
  EXPECT_FALSE(rr.resumed);
  EXPECT_TRUE(rr.error.empty());
  EXPECT_TRUE(rr.skipped.empty());
}

TEST(AutoResume, SkipsCorruptNewestWithReadableReasons) {
  const std::string dir = fresh_dir("resume_skip");
  obs::Registry::instance().reset();
  nn::LlamaModel m(tiny(), 1);
  train::CheckpointRotator rot(dir, 8);
  ASSERT_TRUE(rot.save(m, 10, nullptr).ok);
  ASSERT_TRUE(rot.save(m, 20, nullptr).ok);
  ASSERT_TRUE(rot.save(m, 30, nullptr).ok);
  // Newest truncated, middle bit-flipped — both must be skipped with
  // distinct reasons and the scan must land on step 10.
  const std::string p30 = train::CheckpointRotator::path_for(dir, 30);
  ASSERT_EQ(truncate(p30.c_str(),
                     static_cast<off_t>(fs::file_size(p30) / 2)),
            0);
  corrupt_middle_byte(train::CheckpointRotator::path_for(dir, 20));

  nn::LlamaModel fresh(tiny(), 2);
  auto rr = train::auto_resume(dir, fresh, nullptr);
  EXPECT_TRUE(rr.resumed) << rr.error;
  EXPECT_EQ(rr.step, 10);
  ASSERT_EQ(rr.skipped.size(), 2u);
  EXPECT_NE(rr.skipped[0].find("ckpt_30"), std::string::npos)
      << rr.skipped[0];
  EXPECT_NE(rr.skipped[1].find("ckpt_20"), std::string::npos)
      << rr.skipped[1];
  EXPECT_NE(rr.skipped[1].find("CRC mismatch"), std::string::npos)
      << rr.skipped[1];
  EXPECT_EQ(
      obs::Registry::instance().counter("ckpt.corrupt_skipped").value(), 2);
  // The loaded weights match the saved model.
  EXPECT_TRUE(fresh.parameters()[0]->value == m.parameters()[0]->value);
  obs::Registry::instance().reset();
  fs::remove_all(dir);
}

TEST(AutoResume, AllCorruptRestoresOriginalWeightsAndReportsError) {
  const std::string dir = fresh_dir("resume_allbad");
  nn::LlamaModel saved(tiny(), 1);
  train::CheckpointRotator rot(dir, 8);
  ASSERT_TRUE(rot.save(saved, 10, nullptr).ok);
  ASSERT_TRUE(rot.save(saved, 20, nullptr).ok);
  corrupt_middle_byte(train::CheckpointRotator::path_for(dir, 10));
  corrupt_middle_byte(train::CheckpointRotator::path_for(dir, 20));

  nn::LlamaModel fresh(tiny(), 2);
  const auto want = fresh.parameters()[0]->value;  // pre-scan init
  auto rr = train::auto_resume(dir, fresh, nullptr);
  EXPECT_FALSE(rr.resumed);
  EXPECT_EQ(rr.skipped.size(), 2u);
  EXPECT_NE(rr.error.find("no loadable checkpoint"), std::string::npos)
      << rr.error;
  // A half-applied corrupt load must not leak into the model: the scan
  // restores the pre-scan weights on total failure.
  EXPECT_TRUE(fresh.parameters()[0]->value == want);
  obs::Registry::instance().reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace apollo
