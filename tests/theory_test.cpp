// Property tests of the paper's theory (Appendix A): moment-norm
// preservation under random projection (Theorems A.2/A.3) and the scaled
// gradient-scaling-factor ratio bound √(n/r)·s^R/s ≈ 1 (Theorem A.4), which
// Fig. 4 / Fig. 8 validate empirically. These run the *actual* optimizer
// code paths (StructuredAdamW as the full-rank golden, Apollo as the
// compressed estimate) on a synthetic gradient stream.
#include <gtest/gtest.h>

#include <cmath>

#include "core/apollo.h"
#include "core/structured_adamw.h"
#include "linalg/projection.h"
#include "tensor/ops.h"

namespace apollo {
namespace {

// EMA moments of a fixed gradient stream, projected vs. original.
TEST(Theory, FirstMomentNormPreserved) {
  // M_t^R = P·M_t exactly (linearity, Theorem A.2 step 2), so the norm
  // ratio obeys the JL bound of Theorem A.1.
  const int64_t m = 96, n = 4, r = 24;
  Rng rng(1);
  Matrix mom(m, n);
  Matrix p = gaussian_projection(r, m, 7);
  Matrix mom_r(r, n);
  const float b1 = 0.9f;
  for (int t = 0; t < 30; ++t) {
    Matrix g(m, n);
    g.fill_gaussian(rng);
    Matrix gr = matmul(p, g);
    for (int64_t i = 0; i < mom.size(); ++i)
      mom[i] = b1 * mom[i] + (1 - b1) * g[i];
    for (int64_t i = 0; i < mom_r.size(); ++i)
      mom_r[i] = b1 * mom_r[i] + (1 - b1) * gr[i];
  }
  // Verify M^R == P·M (exact linearity).
  EXPECT_LT(max_abs_diff(mom_r, matmul(p, mom)), 1e-4f);
  // And norm preservation per channel within a loose (1±ε) band.
  auto orig = col_norms(mom);
  auto proj = col_norms(mom_r);
  for (int64_t j = 0; j < n; ++j) {
    const float ratio2 = (proj[j] * proj[j]) / (orig[j] * orig[j]);
    EXPECT_GT(ratio2, 0.3f);
    EXPECT_LT(ratio2, 2.2f);
  }
}

TEST(Theory, SecondMomentL1Preserved) {
  // ‖V_t^R[:,j]‖₁ = (1−β₂)Σβ₂ᵏ‖R[:,j]‖² ∈ (1±ε)‖V_t[:,j]‖₁ (Thm A.3).
  const int64_t m = 96, n = 4, r = 32;
  Rng rng(2);
  Matrix v(m, n), vr(r, n);
  Matrix p = gaussian_projection(r, m, 8);
  const float b2 = 0.99f;
  for (int t = 0; t < 50; ++t) {
    Matrix g(m, n);
    g.fill_gaussian(rng);
    Matrix gr = matmul(p, g);
    for (int64_t i = 0; i < v.size(); ++i)
      v[i] = b2 * v[i] + (1 - b2) * g[i] * g[i];
    for (int64_t i = 0; i < vr.size(); ++i)
      vr[i] = b2 * vr[i] + (1 - b2) * gr[i] * gr[i];
  }
  for (int64_t j = 0; j < n; ++j) {
    double l1 = 0, l1r = 0;
    for (int64_t i = 0; i < m; ++i) l1 += v.at(i, j);
    for (int64_t i = 0; i < r; ++i) l1r += vr.at(i, j);
    EXPECT_GT(l1r / l1, 0.5);
    EXPECT_LT(l1r / l1, 1.8);
  }
}

// --- Theorem A.4: √(n/r)·s^R/s concentrates around 1 ----------------------
// (n here is the projected dimension m in our convention; the paper's
// statement uses n for the compressed axis length of the full-rank space.)
class ScalingRatioTest : public ::testing::TestWithParam<int> {};

TEST_P(ScalingRatioTest, CompressedFactorsMatchTheoreticalRatio) {
  const int64_t r = GetParam();
  const int64_t m = 64, n = 128;  // m ≤ n: project rows, channels = columns

  // Identical parameter + gradient stream for golden and compressed runs.
  auto golden_param = std::make_unique<nn::Parameter>("w", m, n);
  auto apollo_param = std::make_unique<nn::Parameter>("w", m, n);
  Rng rng(3);
  golden_param->value.fill_gaussian(rng, 0.f, 0.02f);
  apollo_param->value = golden_param->value;

  core::StructuredAdamWConfig gcfg;
  gcfg.use_norm_limiter = false;
  core::StructuredAdamW golden(gcfg);
  core::ApolloConfig acfg;
  acfg.rank = r;
  acfg.use_norm_limiter = false;
  acfg.update_freq = 1000000;  // fixed projection (the theorem's setting)
  auto apollo_opt = core::Apollo::standard(acfg);
  golden.set_lr(1e-4f);
  apollo_opt->set_lr(1e-4f);

  Rng gstream(4);
  for (int t = 0; t < 40; ++t) {
    Matrix g(m, n);
    g.fill_gaussian(gstream, 0.f, 0.1f);
    golden_param->grad = g;
    apollo_param->grad = g;
    golden.step({golden_param.get()});
    apollo_opt->step({apollo_param.get()});
  }

  const auto* s_full = golden.last_scaling(golden_param.get());
  const auto* s_comp = apollo_opt->last_scaling(apollo_param.get());
  ASSERT_NE(s_full, nullptr);
  ASSERT_NE(s_comp, nullptr);
  ASSERT_EQ(s_full->size(), s_comp->size());

  // Median of √(m/r)·s^R/s over channels should sit near 1 (Thm A.4).
  std::vector<double> ratios;
  for (size_t j = 0; j < s_full->size(); ++j)
    if ((*s_full)[j] > 1e-6f)
      ratios.push_back(std::sqrt(static_cast<double>(m) / r) *
                       (*s_comp)[j] / (*s_full)[j]);
  ASSERT_GT(ratios.size(), 100u);
  std::sort(ratios.begin(), ratios.end());
  const double median = ratios[ratios.size() / 2];
  EXPECT_GT(median, 0.7) << "rank " << r;
  EXPECT_LT(median, 1.4) << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(Ranks, ScalingRatioTest,
                         ::testing::Values(8, 16, 32));

TEST(Theory, MiniTensorFactorSmallerThanChannelFactors) {
  // The paper justifies APOLLO-Mini's α = √128 by the rank-1 factor being
  // √(n/r)-fold smaller; check the rank-1 tensor factor is much smaller
  // than the full-rank golden's typical channel factor.
  const int64_t m = 64, n = 128;
  auto golden_param = std::make_unique<nn::Parameter>("w", m, n);
  auto mini_param = std::make_unique<nn::Parameter>("w", m, n);
  Rng rng(5);
  golden_param->value.fill_gaussian(rng, 0.f, 0.02f);
  mini_param->value = golden_param->value;

  core::StructuredAdamWConfig gcfg;
  gcfg.granularity = core::LrGranularity::kTensor;
  gcfg.use_norm_limiter = false;
  core::StructuredAdamW golden(gcfg);
  core::ApolloConfig mcfg = core::ApolloConfig::mini();
  mcfg.scale = 1.f;  // observe the raw factor without α
  mcfg.use_norm_limiter = false;
  core::Apollo mini(mcfg);
  golden.set_lr(1e-4f);
  mini.set_lr(1e-4f);

  Rng gstream(6);
  for (int t = 0; t < 30; ++t) {
    Matrix g(m, n);
    g.fill_gaussian(gstream, 0.f, 0.1f);
    golden_param->grad = g;
    mini_param->grad = g;
    golden.step({golden_param.get()});
    mini.step({mini_param.get()});
  }
  const double full = (*golden.last_scaling(golden_param.get()))[0];
  const double compressed = (*mini.last_scaling(mini_param.get()))[0];
  const double expected = std::sqrt(1.0 / m);  // √(r/n) with r=1, dim m
  const double observed = compressed / full;
  EXPECT_GT(observed, expected / 3);
  EXPECT_LT(observed, expected * 3);
}

}  // namespace
}  // namespace apollo
