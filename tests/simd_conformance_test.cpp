// Conformance harness for the SIMD kernel layer (tensor/simd/simd.h).
//
// Every vector dispatch level available on this machine is pinned against
// the scalar reference table over randomized shapes — odd sizes (1×1, 1×N,
// prime dims), non-lane-multiple tails, transposed operands, padded row
// strides, and unaligned base pointers. Elementwise kernels must match the
// reference bit-for-bit (both sides pin the accumulate to one fma
// rounding); contractions (GEMM, reductions, softmax, RMSNorm, SiLU)
// reorder per level and are held to bounded-ULP / forward-error bounds.
//
// On a GEMM failure the harness greedily shrinks (m, n, k) while the case
// still fails and reports the minimized shape in the assertion message, so
// a conformance break lands as a small reproducer, not a 512³ diff.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/simd/simd.h"

namespace {

namespace simd = apollo::simd;
using apollo::Rng;

// Monotonic integer mapping of float order: ulp distance is the difference.
int64_t ordered(float f) {
  int32_t i;
  std::memcpy(&i, &f, sizeof(i));
  return i >= 0 ? static_cast<int64_t>(i)
                : static_cast<int64_t>(0x80000000LL) - i;
}

int64_t ulp_diff(float a, float b) {
  if (a == b) return 0;  // treats +0 and −0 as equal
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<int64_t>::max();
  const int64_t d = ordered(a) - ordered(b);
  return d < 0 ? -d : d;
}

std::vector<float> rand_vec(Rng& rng, int64_t n, float scale = 1.f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = scale * static_cast<float>(rng.next_gaussian());
  return v;
}

std::vector<simd::Level> vector_levels() {
  std::vector<simd::Level> out;
  for (simd::Level lv : simd::available_levels())
    if (lv != simd::Level::kScalar) out.push_back(lv);
  return out;
}

// Sizes chosen to hit every tail class of both lane widths (8 and 16):
// sub-width, exact width, width±1, multiple+tail, primes, and a large run.
const int64_t kLens[] = {1, 2, 3, 5, 7, 8, 9, 15, 16, 17,
                         24, 31, 32, 33, 47, 64, 97, 1000, 1031};

// ---------- elementwise: bit-exact across levels ---------------------------

TEST(SimdConformance, ElementwiseBitExact) {
  const simd::KernelTable& ref = simd::table(simd::Level::kScalar);
  Rng rng(0xe1e1u);
  for (simd::Level lv : vector_levels()) {
    const simd::KernelTable& kt = simd::table(lv);
    for (int64_t n : kLens) {
      // +1 offset: exercise unaligned base pointers at every width.
      for (int64_t off : {int64_t{0}, int64_t{1}}) {
        const std::vector<float> x = rand_vec(rng, n + off);
        const std::vector<float> y0 = rand_vec(rng, n + off);
        const float alpha = static_cast<float>(rng.next_gaussian());

        std::vector<float> ya = y0, yb = y0;
        ref.axpy(ya.data() + off, x.data() + off, alpha, n);
        kt.axpy(yb.data() + off, x.data() + off, alpha, n);
        ASSERT_EQ(std::memcmp(ya.data(), yb.data(), ya.size() * 4), 0)
            << "axpy level=" << simd::level_name(lv) << " n=" << n
            << " off=" << off;

        ya = y0; yb = y0;
        ref.scale(ya.data() + off, alpha, n);
        kt.scale(yb.data() + off, alpha, n);
        ASSERT_EQ(std::memcmp(ya.data(), yb.data(), ya.size() * 4), 0)
            << "scale level=" << simd::level_name(lv) << " n=" << n;

        ya = y0; yb = y0;
        ref.hadamard(ya.data() + off, x.data() + off, n);
        kt.hadamard(yb.data() + off, x.data() + off, n);
        ASSERT_EQ(std::memcmp(ya.data(), yb.data(), ya.size() * 4), 0)
            << "hadamard level=" << simd::level_name(lv) << " n=" << n;

        const float ma = ref.abs_max(x.data() + off, n);
        const float mb = kt.abs_max(x.data() + off, n);
        ASSERT_EQ(ma, mb) << "abs_max level=" << simd::level_name(lv)
                          << " n=" << n;
      }
    }
  }
}

// ---------- reductions: double accumulators, tiny relative slack ----------

TEST(SimdConformance, ReductionsBoundedError) {
  const simd::KernelTable& ref = simd::table(simd::Level::kScalar);
  Rng rng(0x5ed5u);
  for (simd::Level lv : vector_levels()) {
    const simd::KernelTable& kt = simd::table(lv);
    for (int64_t n : kLens) {
      const std::vector<float> x = rand_vec(rng, n);
      const std::vector<float> y = rand_vec(rng, n);

      // Double-accumulated sums: reassociation error is ~n·eps_double
      // relative to the magnitude sum.
      double mag = 0;
      for (float v : x) mag += std::fabs(v);
      const double stol = 1e-12 * (mag + 1.0);
      EXPECT_NEAR(ref.sum(x.data(), n), kt.sum(x.data(), n), stol)
          << "sum level=" << simd::level_name(lv) << " n=" << n;
      EXPECT_NEAR(ref.sumsq(x.data(), n), kt.sumsq(x.data(), n),
                  1e-12 * (ref.sumsq(x.data(), n) + 1.0))
          << "sumsq level=" << simd::level_name(lv) << " n=" << n;

      // Float dot: both sides obey |err| ≤ γ_n·Σ|a||b|; allow the sum of
      // both bounds.
      double magd = 0;
      for (int64_t i = 0; i < n; ++i)
        magd += std::fabs(static_cast<double>(x[static_cast<size_t>(i)]) *
                          y[static_cast<size_t>(i)]);
      const double eps = std::numeric_limits<float>::epsilon();
      const double dtol = 2.0 * static_cast<double>(n + 2) * eps * magd +
                          std::numeric_limits<float>::min();
      EXPECT_NEAR(ref.dot(x.data(), y.data(), n),
                  kt.dot(x.data(), y.data(), n), dtol)
          << "dot level=" << simd::level_name(lv) << " n=" << n;
    }
  }
}

// ---------- transcendental rows -------------------------------------------

TEST(SimdConformance, ExpSoftmaxRmsnormSiluUlps) {
  const simd::KernelTable& ref = simd::table(simd::Level::kScalar);
  Rng rng(0x0f0fu);
  for (simd::Level lv : vector_levels()) {
    const simd::KernelTable& kt = simd::table(lv);
    for (int64_t n : kLens) {
      // Mix moderate logits with extremes. exp's ULP contract holds inside
      // the vector clamp range [-87.34, 88.38] (see simd.h), so the exp
      // probes sit at its edges; softmax gets a wider spread below and
      // hybrid (ulp-or-absolute) tolerance covers its underflowed tail.
      std::vector<float> x = rand_vec(rng, n, 4.f);
      if (n > 2) {
        x[0] = 88.f;
        x[static_cast<size_t>(n - 1)] = -87.f;
      }
      std::vector<float> ea(static_cast<size_t>(n)),
          eb(static_cast<size_t>(n));
      ref.exp(ea.data(), x.data(), n);
      kt.exp(eb.data(), x.data(), n);
      for (int64_t i = 0; i < n; ++i)
        ASSERT_LE(ulp_diff(ea[static_cast<size_t>(i)],
                           eb[static_cast<size_t>(i)]),
                  16)
            << "exp level=" << simd::level_name(lv) << " n=" << n
            << " i=" << i << " x=" << x[static_cast<size_t>(i)];

      std::vector<float> xs = x;
      if (n > 2) {
        xs[0] = 60.f;
        xs[static_cast<size_t>(n - 1)] = -120.f;  // prob underflows to ~0
      }
      std::vector<float> sa(static_cast<size_t>(n)),
          sb(static_cast<size_t>(n));
      ref.softmax(sa.data(), xs.data(), n);
      kt.softmax(sb.data(), xs.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        const float pa = sa[static_cast<size_t>(i)];
        const float pb = sb[static_cast<size_t>(i)];
        ASSERT_TRUE(ulp_diff(pa, pb) <= 256 ||
                    std::fabs(static_cast<double>(pa) - pb) <= 1e-30)
            << "softmax level=" << simd::level_name(lv) << " n=" << n
            << " i=" << i << " " << pa << " vs " << pb;
      }

      const std::vector<float> w = rand_vec(rng, n);
      std::vector<float> ra(static_cast<size_t>(n)),
          rb(static_cast<size_t>(n));
      const float ia = ref.rmsnorm_row(ra.data(), x.data(), w.data(), n,
                                       1e-6f);
      const float ib = kt.rmsnorm_row(rb.data(), x.data(), w.data(), n,
                                      1e-6f);
      ASSERT_LE(ulp_diff(ia, ib), 4)
          << "rmsnorm ir level=" << simd::level_name(lv) << " n=" << n;
      for (int64_t i = 0; i < n; ++i)
        ASSERT_LE(ulp_diff(ra[static_cast<size_t>(i)],
                           rb[static_cast<size_t>(i)]),
                  64)
            << "rmsnorm level=" << simd::level_name(lv) << " n=" << n
            << " i=" << i;

      std::vector<float> ya(static_cast<size_t>(n)),
          yb(static_cast<size_t>(n)), ga(static_cast<size_t>(n)),
          gb(static_cast<size_t>(n));
      ref.silu(ya.data(), ga.data(), x.data(), n);
      kt.silu(yb.data(), gb.data(), x.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_LE(ulp_diff(ga[static_cast<size_t>(i)],
                           gb[static_cast<size_t>(i)]),
                  32)
            << "silu sigma level=" << simd::level_name(lv) << " n=" << n
            << " i=" << i;
        ASSERT_LE(ulp_diff(ya[static_cast<size_t>(i)],
                           yb[static_cast<size_t>(i)]),
                  64)
            << "silu level=" << simd::level_name(lv) << " n=" << n
            << " i=" << i;
      }
    }
  }
}

// ---------- GEMM -----------------------------------------------------------

struct GemmCase {
  int64_t m, n, k;
  bool a_trans;
  bool accumulate;
  int64_t pad;     // extra row-stride padding on every operand
  uint64_t seed;
};

// Runs one case at `lv` vs the scalar reference; returns a description of
// the first failing element, or nullopt on success.
std::optional<std::string> run_gemm_case(simd::Level lv, const GemmCase& gc) {
  const simd::KernelTable& ref = simd::table(simd::Level::kScalar);
  const simd::KernelTable& kt = simd::table(lv);
  const int64_t m = gc.m, n = gc.n, k = gc.k;
  const int64_t lda = (gc.a_trans ? m : k) + gc.pad;
  const int64_t ldb = n + gc.pad;
  const int64_t ldc = n + gc.pad;
  Rng rng(gc.seed);
  const std::vector<float> a =
      rand_vec(rng, (gc.a_trans ? k : m) * lda);
  const std::vector<float> b = rand_vec(rng, k * ldb);
  std::vector<float> c0(static_cast<size_t>(m * ldc), 0.f);
  if (gc.accumulate) c0 = rand_vec(rng, m * ldc);

  std::vector<float> ca = c0, cb = c0;
  ref.gemm(ca.data(), ldc, a.data(), lda, gc.a_trans, b.data(), ldb, 0, m,
           n, k);
  kt.gemm(cb.data(), ldc, a.data(), lda, gc.a_trans, b.data(), ldb, 0, m,
          n, k);

  const double eps = std::numeric_limits<float>::epsilon();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      // Forward-error bound: each side's |err| ≤ γ_{k+2}·Σ_p|a_ip·b_pj|
      // (+1 rounding for the accumulate preload).
      double mag = 0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = gc.a_trans ? a[static_cast<size_t>(p * lda + i)]
                                    : a[static_cast<size_t>(i * lda + p)];
        const float bv = b[static_cast<size_t>(p * ldb + j)];
        mag += std::fabs(static_cast<double>(av) * bv);
      }
      if (gc.accumulate)
        mag += std::fabs(c0[static_cast<size_t>(i * ldc + j)]);
      const double tol = 2.0 * static_cast<double>(k + 4) * eps * mag +
                         std::numeric_limits<float>::min();
      const float va = ca[static_cast<size_t>(i * ldc + j)];
      const float vb = cb[static_cast<size_t>(i * ldc + j)];
      if (!(std::fabs(static_cast<double>(va) - vb) <= tol)) {
        std::ostringstream os;
        os << "c[" << i << "][" << j << "] scalar=" << va << " vs " << vb
           << " (tol " << tol << ")";
        return os.str();
      }
    }
  }
  // Row-stride padding and rows outside [0, m) must be untouched.
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = n; j < ldc; ++j)
      if (cb[static_cast<size_t>(i * ldc + j)] !=
          c0[static_cast<size_t>(i * ldc + j)]) {
        std::ostringstream os;
        os << "pad clobbered at c[" << i << "][" << j << "]";
        return os.str();
      }
  return std::nullopt;
}

// Greedy shrink: halve each dim while the failure reproduces.
GemmCase minimize(simd::Level lv, GemmCase gc) {
  bool improved = true;
  while (improved) {
    improved = false;
    for (int dim = 0; dim < 3; ++dim) {
      GemmCase cand = gc;
      int64_t& d = dim == 0 ? cand.m : dim == 1 ? cand.n : cand.k;
      if (d <= 1) continue;
      d = d / 2;
      if (run_gemm_case(lv, cand).has_value()) {
        gc = cand;
        improved = true;
      }
    }
  }
  return gc;
}

TEST(SimdConformance, GemmBoundedError) {
  // Odd shapes, primes, tails of both tile widths, 1×N / N×1 degeneracies.
  const GemmCase shapes[] = {
      {1, 1, 1, false, false, 0, 11},
      {1, 17, 3, false, false, 0, 12},
      {5, 1, 7, false, false, 0, 13},
      {3, 3, 3, false, true, 0, 14},
      {7, 13, 5, false, false, 3, 15},
      {8, 16, 16, false, true, 0, 16},
      {6, 100, 10, false, false, 1, 17},
      {17, 33, 9, false, false, 0, 18},
      {37, 41, 43, false, true, 2, 19},
      {33, 31, 29, false, false, 5, 20},
      {64, 64, 64, false, false, 0, 21},
      {13, 48, 7, true, false, 0, 22},
      {9, 17, 31, true, true, 3, 23},
      {41, 37, 43, true, false, 1, 24},
      {1, 1, 97, true, false, 0, 25},
      {65, 129, 33, true, false, 0, 26},
  };
  for (simd::Level lv : vector_levels()) {
    for (const GemmCase& gc : shapes) {
      auto fail = run_gemm_case(lv, gc);
      if (fail) {
        const GemmCase mc = minimize(lv, gc);
        auto mfail = run_gemm_case(lv, mc);
        FAIL() << "gemm mismatch at level " << simd::level_name(lv)
               << ": minimized shape m=" << mc.m << " n=" << mc.n
               << " k=" << mc.k << " a_trans=" << mc.a_trans
               << " accumulate=" << mc.accumulate << " pad=" << mc.pad
               << " seed=" << mc.seed << ": "
               << (mfail ? *mfail : *fail);
      }
    }
  }
}

// Partial bands must compose: running the row range in two chunks must give
// the same bits as one call (this is what the threadpool partition does).
TEST(SimdConformance, GemmBandComposition) {
  Rng rng(0xbadd5eedu);
  const int64_t m = 23, n = 37, k = 19;
  const std::vector<float> a = rand_vec(rng, m * k);
  const std::vector<float> b = rand_vec(rng, k * n);
  for (simd::Level lv : simd::available_levels()) {
    const simd::KernelTable& kt = simd::table(lv);
    std::vector<float> whole(static_cast<size_t>(m * n), 0.f);
    kt.gemm(whole.data(), n, a.data(), k, false, b.data(), n, 0, m, n, k);
    for (int64_t split : {int64_t{1}, int64_t{6}, int64_t{8}, int64_t{22}}) {
      std::vector<float> parts(static_cast<size_t>(m * n), 0.f);
      kt.gemm(parts.data(), n, a.data(), k, false, b.data(), n, 0, split, n,
              k);
      kt.gemm(parts.data(), n, a.data(), k, false, b.data(), n, split, m, n,
              k);
      ASSERT_EQ(std::memcmp(whole.data(), parts.data(), whole.size() * 4), 0)
          << "band split at " << split << " level " << simd::level_name(lv);
    }
  }
}

}  // namespace
