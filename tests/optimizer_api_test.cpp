// Streaming optimizer API tests: for every registered method, the
// decomposed begin_step / step_param / end_step path must produce exactly
// the weights and state accounting of the monolithic step() — even when
// step_param is called in reverse slot order, as the fused backward path
// delivers gradients in backward-completion rather than slot order.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "nn/parameter.h"
#include "sysmodel/memory_model.h"
#include "tensor/matrix.h"

namespace apollo {
namespace {

// Mixed parameter shapes: projected 2-D weights on both sides, a small
// matrix that falls back to dense treatment at rank 4, and a 1-D gain.
struct ParamSet {
  std::vector<std::unique_ptr<nn::Parameter>> owned;
  nn::ParamList list;

  explicit ParamSet(uint64_t seed) {
    Rng rng(seed);
    auto add = [&](int64_t rows, int64_t cols, bool matrix) {
      owned.push_back(std::make_unique<nn::Parameter>(
          "p" + std::to_string(owned.size()), rows, cols, matrix));
      owned.back()->value.fill_gaussian(rng, 0.f, 1.f);
      list.push_back(owned.back().get());
    };
    add(12, 8, true);   // tall: projected at rank 4
    add(8, 12, true);   // wide: projected on the other side
    add(3, 3, true);    // min-dim ≤ rank: dense fallback
    add(1, 8, false);   // 1-D gain: dense fallback for projected methods
    add(16, 6, true);
  }

  void fill_grads(uint64_t seed) {
    Rng rng(seed);
    for (auto& p : owned) p->grad.fill_gaussian(rng, 0.f, 0.1f);
  }
};

core::FactoryOptions options() {
  core::FactoryOptions fo;
  fo.rank = 4;
  fo.update_freq = 3;  // several projector refresh boundaries in 8 steps
  fo.weight_decay = 0.01f;
  return fo;
}

}  // namespace

TEST(StreamingApi, ReversedStepParamMatchesStepBitForBit) {
  for (const std::string& name : core::known_optimizers()) {
    SCOPED_TRACE(name);
    auto mono = core::make_optimizer(name, options());
    auto strm = core::make_optimizer(name, options());
    ASSERT_NE(mono, nullptr);
    ASSERT_NE(strm, nullptr);
    ParamSet pa(7), pb(7);
    mono->set_lr(1e-3f);
    strm->set_lr(1e-3f);
    for (int step = 0; step < 8; ++step) {
      pa.fill_grads(100 + static_cast<uint64_t>(step));
      pb.fill_grads(100 + static_cast<uint64_t>(step));
      mono->step(pa.list);
      strm->begin_step(pb.list);
      for (int i = static_cast<int>(pb.list.size()) - 1; i >= 0; --i)
        strm->step_param(*pb.list[static_cast<size_t>(i)], i);
      strm->end_step(pb.list);
      for (size_t i = 0; i < pa.list.size(); ++i)
        EXPECT_TRUE(pa.list[i]->value == pb.list[i]->value)
            << "step " << step << ", param " << pa.list[i]->name;
    }
    EXPECT_EQ(mono->state_bytes(), strm->state_bytes());
  }
}

TEST(StreamingApi, StatePersistsAcrossInterleavedOrders) {
  // Alternate slot order between steps: per-slot state must stay keyed to
  // the parameter's position, not to call order.
  for (const std::string& name : core::known_optimizers()) {
    SCOPED_TRACE(name);
    auto mono = core::make_optimizer(name, options());
    auto strm = core::make_optimizer(name, options());
    ParamSet pa(11), pb(11);
    mono->set_lr(2e-3f);
    strm->set_lr(2e-3f);
    for (int step = 0; step < 6; ++step) {
      pa.fill_grads(900 + static_cast<uint64_t>(step));
      pb.fill_grads(900 + static_cast<uint64_t>(step));
      mono->step(pa.list);
      strm->begin_step(pb.list);
      const int n = static_cast<int>(pb.list.size());
      if (step % 2 == 0) {
        for (int i = 0; i < n; ++i)
          strm->step_param(*pb.list[static_cast<size_t>(i)], i);
      } else {
        for (int i = n - 1; i >= 0; --i)
          strm->step_param(*pb.list[static_cast<size_t>(i)], i);
      }
      strm->end_step(pb.list);
    }
    for (size_t i = 0; i < pa.list.size(); ++i)
      EXPECT_TRUE(pa.list[i]->value == pb.list[i]->value)
          << "param " << pa.list[i]->name;
  }
}

TEST(StreamingApi, AdamWStateBytesMatchSysmodel) {
  // The slot-keyed state accounting must still land on the Table-1 formula
  // (2mn fp32 elements per weight) when driven through the streaming API.
  auto opt = core::make_optimizer("adamw", options());
  ParamSet ps(3);
  ps.fill_grads(5);
  opt->set_lr(1e-3f);
  opt->begin_step(ps.list);
  for (int i = 0; i < static_cast<int>(ps.list.size()); ++i)
    opt->step_param(*ps.list[static_cast<size_t>(i)], i);
  opt->end_step(ps.list);
  int64_t expect = 0;
  for (const nn::Parameter* p : ps.list)
    expect += sysmodel::state_elements(sysmodel::Method::kAdamW,
                                       p->value.rows(), p->value.cols(),
                                       /*rank=*/4) *
              static_cast<int64_t>(sizeof(float));
  EXPECT_EQ(opt->state_bytes(), expect);
}

}  // namespace apollo
