// Observability layer: registry determinism across thread counts, histogram
// bucket schema, chrome-trace well-formedness, and the telemetry-off
// zero-impact contract (no file, bit-identical training).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/apollo.h"
#include "core/threadpool.h"
#include "data/corpus.h"
#include "nn/llama.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "train/trainer.h"

namespace apollo {
namespace {

// --- minimal JSON validator -------------------------------------------------
// Recursive-descent syntax check — enough to guarantee the artifacts load in
// any real JSON parser (CI additionally runs them through python3).

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (; *lit != '\0'; ++lit, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *lit) return false;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

// --- histogram schema -------------------------------------------------------

TEST(Histogram, BucketEdgesAreTheDocumentedSchema) {
  // Exact endpoints and count: 62 buckets, edges 1e-9 … 1e6, 4 per decade.
  EXPECT_EQ(obs::Histogram::kBuckets, 62);
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_upper(0), 1e-9);
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_upper(obs::Histogram::kBuckets - 2),
                   1e6);
  // Monotone, log-spaced: each full decade spans exactly 4 buckets.
  for (int i = 1; i <= obs::Histogram::kBuckets - 2; ++i)
    EXPECT_GT(obs::Histogram::bucket_upper(i),
              obs::Histogram::bucket_upper(i - 1));
  for (int i = 0; i + 4 <= obs::Histogram::kBuckets - 2; i += 4)
    EXPECT_NEAR(obs::Histogram::bucket_upper(i + 4) /
                    obs::Histogram::bucket_upper(i),
                10.0, 1e-9);
}

TEST(Histogram, BucketIndexClassification) {
  using H = obs::Histogram;
  // Underflow bucket: zero, negatives, NaN, and anything ≤ the min edge.
  EXPECT_EQ(H::bucket_index(0.0), 0);
  EXPECT_EQ(H::bucket_index(-3.5), 0);
  EXPECT_EQ(H::bucket_index(std::nan("")), 0);
  EXPECT_EQ(H::bucket_index(1e-9), 0);
  // Overflow bucket: strictly above the max edge.
  EXPECT_EQ(H::bucket_index(1e6 + 1), H::kBuckets - 1);
  EXPECT_EQ(H::bucket_index(1e300), H::kBuckets - 1);
  // Upper edges are inclusive: an exact edge lands in its own bucket, a
  // nudge above lands in the next.
  for (int i = 1; i <= H::kBuckets - 2; ++i) {
    const double edge = H::bucket_upper(i);
    EXPECT_EQ(H::bucket_index(edge), i) << "edge " << edge;
    if (i < H::kBuckets - 2) {
      EXPECT_EQ(H::bucket_index(edge * 1.0001), i + 1) << "edge " << edge;
    }
  }
  // Interior values.
  EXPECT_EQ(H::bucket_index(1.0), H::bucket_index(1.0));
  EXPECT_EQ(H::bucket_index(0.5), H::bucket_index(0.5));
}

TEST(Histogram, SnapshotAggregates) {
  obs::Histogram h;
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.sum, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  int64_t total = 0;
  for (int64_t b : s.buckets) total += b;
  EXPECT_EQ(total, 3);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0);
}

// --- registry determinism across thread counts ------------------------------

// Drive counters and an integer-valued histogram from inside the thread
// pool, then compare the exported snapshot for 1 vs. 4 threads. Integer
// merges are order-independent, so the export must be byte-identical.
std::string run_instrumented_workload(int threads) {
  core::set_thread_count(threads);
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();
  obs::Counter& items = reg.counter("test.items");
  obs::Counter& evens = reg.counter("test.evens");
  obs::Histogram& sizes = reg.histogram("test.sizes");
  reg.gauge("test.last_n").set(4096.0);
  // Only per-index quantities here: the lane partition (and so the number
  // of callback invocations) legitimately varies with the thread count,
  // but the multiset of indices — and therefore every merged total — does
  // not.
  core::parallel_for(
      4096,
      [&](int64_t i0, int64_t i1) {
        items.add(i1 - i0);
        for (int64_t i = i0; i < i1; ++i) {
          if (i % 2 == 0) evens.add(1);
          // Integer-valued observations: double sums stay exact for any
          // thread count (see metrics.h header contract).
          sizes.observe(static_cast<double>(i % 97));
        }
      },
      /*grain=*/64);
  core::set_thread_count(0);
  return reg.export_jsonl();
}

TEST(Registry, ExportDeterministicAcrossThreadCounts) {
  const std::string one = run_instrumented_workload(1);
  const std::string four = run_instrumented_workload(4);
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("\"metric\":\"test.items\""), std::string::npos);
  EXPECT_NE(one.find("\"value\":4096"), std::string::npos);
  // Every exported line is valid JSON.
  std::istringstream lines(one);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    JsonValidator v(line);
    EXPECT_TRUE(v.valid()) << line;
    ++n;
  }
  EXPECT_GE(n, 4);  // two counters, one gauge, one histogram
  obs::Registry::instance().reset();
}

TEST(Registry, ReferencesAreStableAcrossReset) {
  obs::Counter& c = obs::Registry::instance().counter("test.stable");
  c.add(7);
  EXPECT_EQ(c.value(), 7);
  obs::Registry::instance().reset();
  EXPECT_EQ(c.value(), 0);  // zeroed in place, reference still valid
  c.add(1);
  EXPECT_EQ(obs::Registry::instance().counter("test.stable").value(), 1);
  obs::Registry::instance().reset();
}

// --- chrome trace -----------------------------------------------------------

TEST(Trace, EmitsParseableWellNestedJson) {
  const std::string path = std::string(::testing::TempDir()) + "trace.json";
  std::remove(path.c_str());
  obs::trace_set_path(path.c_str());
  ASSERT_TRUE(obs::trace_enabled());
  {
    APOLLO_TRACE_SCOPE("outer", "test");
    {
      APOLLO_TRACE_SCOPE("inner", "test");
      obs::trace_instant("tick", "test");
    }
    APOLLO_TRACE_SCOPE("sibling", "test");
  }
  obs::trace_flush();
  obs::trace_set_path("");  // disable before other tests run

  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty());
  JsonValidator v(text);
  EXPECT_TRUE(v.valid());

  // One event per line by construction: check B/E balance and LIFO nesting.
  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> stack;
  int begins = 0, ends = 0, instants = 0;
  auto field = [](const std::string& l, const std::string& key) {
    const size_t k = l.find("\"" + key + "\":\"");
    if (k == std::string::npos) return std::string();
    const size_t start = k + key.size() + 4;
    return l.substr(start, l.find('"', start) - start);
  };
  while (std::getline(lines, line)) {
    const std::string ph = field(line, "ph");
    if (ph == "B") {
      ++begins;
      stack.push_back(field(line, "name"));
    } else if (ph == "E") {
      ++ends;
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(stack.back(), field(line, "name"));
      stack.pop_back();
    } else if (ph == "i") {
      ++instants;
    }
  }
  EXPECT_EQ(begins, 3);
  EXPECT_EQ(ends, 3);
  EXPECT_EQ(instants, 1);
  EXPECT_TRUE(stack.empty());
  std::remove(path.c_str());
}

TEST(Trace, DisabledScopesRecordNothing) {
  obs::trace_set_path("");
  EXPECT_FALSE(obs::trace_enabled());
  { APOLLO_TRACE_SCOPE("ghost", "test"); }
  obs::trace_instant("ghost", "test");  // all no-ops — nothing to assert
}

// --- telemetry: off means off ----------------------------------------------

train::TrainResult tiny_train() {
  nn::LlamaConfig cfg;
  cfg.vocab = 64; cfg.hidden = 16; cfg.intermediate = 40;
  cfg.n_heads = 2; cfg.n_layers = 2; cfg.seq_len = 16;
  nn::LlamaModel model(cfg, 3);
  data::CorpusConfig ccfg;
  ccfg.vocab = 64;
  data::SyntheticCorpus corpus(ccfg);
  core::ApolloConfig acfg;
  acfg.rank = 2;
  acfg.update_freq = 3;
  core::Apollo opt(acfg);
  train::TrainConfig tc;
  tc.steps = 6;
  tc.batch = 2;
  tc.lr = 0.01f;
  tc.record_step_losses = true;
  train::Trainer t(model, opt, corpus, tc);
  return t.run();
}

TEST(Telemetry, OffProducesNoFileAndOnIsBitIdentical) {
  const std::string path =
      std::string(::testing::TempDir()) + "metrics.jsonl";
  std::remove(path.c_str());

  obs::telemetry_set_path("");  // off
  ASSERT_FALSE(obs::telemetry_enabled());
  const auto off = tiny_train();
  EXPECT_FALSE(file_exists(path));

  obs::telemetry_set_path(path.c_str());  // on
  ASSERT_TRUE(obs::telemetry_enabled());
  const auto on = tiny_train();
  obs::telemetry_set_path("");  // finalizes + closes the file

  // Observation is pure: the training trajectory is bit-identical.
  ASSERT_EQ(off.step_losses.size(), on.step_losses.size());
  EXPECT_EQ(off.step_losses, on.step_losses);
  EXPECT_EQ(off.final_perplexity, on.final_perplexity);

  // The file exists, has one valid JSON line per step (plus the registry
  // tail), and carries the telemetry schema's core fields.
  ASSERT_TRUE(file_exists(path));
  std::istringstream lines(read_file(path));
  std::string line;
  int step_lines = 0, metric_lines = 0;
  while (std::getline(lines, line)) {
    JsonValidator v(line);
    EXPECT_TRUE(v.valid()) << line;
    if (line.find("\"step\":") != std::string::npos) ++step_lines;
    if (line.find("\"metric\":") != std::string::npos) ++metric_lines;
  }
  EXPECT_EQ(step_lines, 6);
  EXPECT_GE(metric_lines, 1);  // registry dump appended at finalize
  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"loss\":"), std::string::npos);
  EXPECT_NE(text.find("\"grad_norm\":"), std::string::npos);
  EXPECT_NE(text.find("\"opt.clip_fraction\":"), std::string::npos);
  EXPECT_NE(text.find("\"opt.s_med\":"), std::string::npos);
  std::remove(path.c_str());
  obs::Registry::instance().reset();
}

// --- recovery counters: silent when nothing goes wrong ----------------------

TEST(Registry, RecoveryCountersStayZeroOnFaultFreeRun) {
  const std::string dir =
      std::string(::testing::TempDir()) + "obs_resilient_ckpts";
  std::filesystem::remove_all(dir);
  obs::Registry::instance().reset();
  obs::Registry& reg = obs::Registry::instance();
  // Touch the counters first so the assertion can't pass vacuously.
  obs::Counter& injected = reg.counter("fault.injected");
  obs::Counter& rollbacks = reg.counter("watchdog.rollbacks");
  obs::Counter& skipped = reg.counter("ckpt.corrupt_skipped");

  nn::LlamaConfig cfg;
  cfg.vocab = 64; cfg.hidden = 16; cfg.intermediate = 40;
  cfg.n_heads = 2; cfg.n_layers = 1; cfg.seq_len = 8;
  nn::LlamaModel model(cfg, 3);
  data::CorpusConfig ccfg;
  ccfg.vocab = 64;
  data::SyntheticCorpus corpus(ccfg);
  core::ApolloConfig acfg;
  acfg.rank = 2;
  acfg.update_freq = 3;
  core::Apollo opt(acfg);
  train::TrainConfig tc;
  tc.steps = 8;
  tc.batch = 2;
  tc.lr = 0.01f;
  tc.resilience.ckpt_dir = dir;
  tc.resilience.ckpt_every = 4;
  tc.resilience.watchdog = true;
  train::Trainer t(model, opt, corpus, tc);
  const auto res = t.run();

  EXPECT_FALSE(res.diverged) << res.divergence_diagnostics;
  EXPECT_EQ(res.rollbacks, 0);
  EXPECT_EQ(res.corrupt_checkpoints_skipped, 0);
  EXPECT_GE(res.checkpoints_saved, 2);
  EXPECT_EQ(injected.value(), 0);
  EXPECT_EQ(rollbacks.value(), 0);
  EXPECT_EQ(skipped.value(), 0);
  obs::Registry::instance().reset();
  std::filesystem::remove_all(dir);
}

TEST(Telemetry, ContributionsAreDroppedWhenOff) {
  obs::telemetry_set_path("");
  ASSERT_FALSE(obs::telemetry_enabled());
  // All no-ops; nothing may crash or allocate a file.
  obs::telemetry().set("x", 1.0);
  obs::telemetry().set_int("y", 2);
  obs::telemetry().count("z");
  obs::telemetry().sample("s", 3.0);
  obs::telemetry().commit(1);
}

}  // namespace
}  // namespace apollo
