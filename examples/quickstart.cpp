// Quickstart: pre-train a nano LLaMA on the synthetic corpus with APOLLO and
// compare against AdamW — the paper's headline claim in ~60 lines.
//
//   $ ./examples/quickstart
//
// Expected outcome: APOLLO reaches AdamW-level (or better) validation
// perplexity while holding a small fraction of AdamW's optimizer state.
#include <cmath>
#include <cstdio>

#include "core/apollo.h"
#include "data/corpus.h"
#include "nn/llama.h"
#include "optim/adamw.h"
#include "train/trainer.h"

using namespace apollo;

namespace {

train::TrainResult run(optim::Optimizer& opt, const char* label) {
  // Identical model init, data order and schedule for every optimizer.
  nn::LlamaModel model(nn::llama_130m_proxy(), /*seed=*/1);
  data::SyntheticCorpus corpus({});
  train::TrainConfig cfg;
  cfg.steps = 300;
  cfg.batch = 4;
  cfg.lr = 0.01f;
  train::Trainer trainer(model, opt, corpus, cfg);
  train::TrainResult res = trainer.run();
  std::printf("%-12s  val ppl %7.2f   optimizer state %8.1f KiB\n", label,
              res.final_perplexity,
              static_cast<double>(res.optimizer_state_bytes) / 1024.0);
  return res;
}

}  // namespace

int main() {
  std::printf("== APOLLO quickstart: nano-LLaMA pre-training ==\n");

  optim::AdamW adamw;
  run(adamw, "AdamW");

  core::ApolloConfig cfg;
  cfg.rank = 12;  // 1/4 of the 48-dim hidden size, the paper's default ratio
  auto apollo_opt = core::Apollo::standard(cfg);
  run(*apollo_opt, "APOLLO");

  // APOLLO-Mini: rank-1, tensor-wise. The paper's α = √128 targets real
  // model widths (hidden ≥ 512); at nano width use the width-scaled
  // equivalent α = √(hidden/2) (see EXPERIMENTS.md, calibration note 3).
  core::ApolloConfig mini_cfg = core::ApolloConfig::mini();
  mini_cfg.scale = std::sqrt(48.f / 4.f);
  core::Apollo mini(mini_cfg, "APOLLO-Mini");
  run(mini, "APOLLO-Mini");
  return 0;
}
