// Example: head-to-head pre-training comparison across optimizer families on
// one model size, with live perplexity checkpoints — a miniature Table 2.
//
//   $ ./examples/pretrain_comparison [steps]
//
// Shows how to drive the Trainer with any optim::Optimizer and read the
// evaluation curve and optimizer-state accounting.
#include <cstdio>
#include <cstdlib>

#include "core/apollo.h"
#include "optim/adam_mini.h"
#include "optim/adamw.h"
#include "optim/galore.h"
#include "optim/sgd.h"
#include "train/trainer.h"

using namespace apollo;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 400;
  const auto cfg = nn::llama_130m_proxy();
  data::SyntheticCorpus corpus({});

  struct Entry {
    const char* label;
    std::unique_ptr<optim::Optimizer> opt;
    float lr;
  };
  std::vector<Entry> entries;
  entries.push_back({"AdamW", std::make_unique<optim::AdamW>(), 3e-3f});
  entries.push_back({"SGD-momentum", std::make_unique<optim::Sgd>(0.9f),
                     0.05f});
  entries.push_back({"Adam-mini", std::make_unique<optim::AdamMini>(),
                     3e-3f});
  optim::GaloreConfig gcfg;
  gcfg.rank = cfg.hidden / 4;
  gcfg.scale = 0.25f;
  entries.push_back({"GaLore", optim::GaLore::galore(gcfg), 0.01f});
  entries.push_back({"Fira", optim::GaLore::fira(gcfg), 0.01f});
  core::ApolloConfig acfg;
  acfg.rank = cfg.hidden / 4;
  entries.push_back({"APOLLO", core::Apollo::standard(acfg), 0.01f});
  entries.push_back({"APOLLO-Mini", core::Apollo::mini(), 0.01f});

  std::printf("Pre-training the 130M proxy for %d steps with %zu "
              "optimizers\n\n", steps, entries.size());
  std::printf("%-14s %10s %12s %16s\n", "Optimizer", "final ppl",
              "ppl @ 50%", "state bytes");
  for (auto& e : entries) {
    nn::LlamaModel model(cfg, /*seed=*/1);  // identical init for all
    train::TrainConfig tc;
    tc.steps = steps;
    tc.batch = 4;
    tc.lr = e.lr;
    tc.eval_every = steps / 2;
    train::Trainer trainer(model, *e.opt, corpus, tc);
    auto r = trainer.run();
    std::printf("%-14s %10.2f %12.2f %16lld\n", e.label,
                r.final_perplexity, r.curve.front().perplexity,
                static_cast<long long>(r.optimizer_state_bytes));
  }
  std::printf("\nExpected ordering: APOLLO ~ Fira <= AdamW < GaLore << "
              "SGD, with APOLLO(-Mini) holding a fraction of the state.\n");
  return 0;
}
