// Example: a planning tool built on the sysmodel library — given a GPU
// memory budget and a model size, report which optimizers fit, at what
// micro-batch, and the modeled training throughput. The kind of utility a
// downstream adopter would actually run before renting hardware.
//
//   $ ./examples/memory_planner [gpu_gib] [model]
//     model ∈ {60m, 130m, 350m, 1b, 7b, 13b}; defaults: 24 GiB, 7b
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sysmodel/throughput_model.h"

using namespace apollo::sysmodel;

int main(int argc, char** argv) {
  const double gib = argc > 1 ? std::atof(argv[1]) : 24.0;
  const char* name = argc > 2 ? argv[2] : "7b";
  GpuModelSpec model = spec_llama_7b();
  if (!std::strcmp(name, "60m")) model = spec_llama_60m();
  else if (!std::strcmp(name, "130m")) model = spec_llama_130m();
  else if (!std::strcmp(name, "350m")) model = spec_llama_350m();
  else if (!std::strcmp(name, "1b")) model = spec_llama_1b();
  else if (!std::strcmp(name, "13b")) model = spec_llama_13b();

  const int64_t cap = static_cast<int64_t>(gib * 1024 * 1024 * 1024);
  std::printf("Planning %s (%.2fB params) on a %.0f GiB GPU (micro-batch "
              "at seq %lld)\n\n", model.name.c_str(),
              model.param_count() / 1e9, gib,
              static_cast<long long>(model.seq_len));

  struct Option {
    const char* label;
    MethodSpec ms;
  };
  auto make = [&](Method m, int64_t rank, int wbits, bool layerwise) {
    MethodSpec ms;
    ms.method = m;
    ms.rank = rank;
    ms.weight_bits = wbits;
    ms.layerwise_grad_update = layerwise;
    return ms;
  };
  const int64_t r4 = model.hidden / 4;
  const Option options[] = {
      {"AdamW", make(Method::kAdamW, 0, 16, false)},
      {"Adam-mini", make(Method::kAdamMini, 0, 16, false)},
      {"GaLore r=h/4", make(Method::kGaLore, r4, 16, true)},
      {"APOLLO r=h/4", make(Method::kApollo, r4, 16, true)},
      {"APOLLO-Mini", make(Method::kApolloMini, 1, 16, true)},
      {"Q-APOLLO-Mini", make(Method::kApolloMini, 1, 8, true)},
  };

  GpuSpec gpu;
  gpu.n_gpus = 1;
  gpu.mem_cap = cap;
  std::printf("%-16s %12s %12s %14s\n", "Method", "fixed GiB",
              "max batch", "tokens/s (1 GPU)");
  for (const auto& o : options) {
    const auto fixed = estimate_memory(model, o.ms, 0);
    const int64_t batch = max_micro_batch(model, o.ms, cap);
    double tps = 0;
    if (batch > 0) {
      const bool svd = o.ms.method == Method::kGaLore;
      const auto t = end_to_end_throughput(model, o.ms, gpu, batch, svd, 200);
      tps = t.tokens_per_s;
    }
    std::printf("%-16s %12.2f %12lld %14.0f%s\n", o.label,
                static_cast<double>(fixed.total()) / (1024.0 * 1024 * 1024),
                static_cast<long long>(batch), tps,
                batch == 0 ? "   <- does not fit" : "");
  }
  std::printf("\n(fixed = weights + grads + optimizer states at batch 0; "
              "APOLLO rows assume layer-wise gradient updates)\n");
  return 0;
}
