// Example: fine-tune a pre-trained backbone on downstream tasks with
// memory-efficient optimizers — the Table 4 workflow on two tasks.
//
//   $ ./examples/finetune_tasks
//
// Demonstrates: pre-training a backbone, snapshot/restore between runs,
// the TaskGenerator API, and accuracy evaluation restricted to choice sets.
#include <cmath>
#include <cstdio>

#include "core/apollo.h"
#include "optim/adamw.h"
#include "optim/lowrank.h"
#include "train/finetune.h"
#include "train/trainer.h"

using namespace apollo;

int main() {
  const auto cfg = nn::llama_130m_proxy();
  data::SyntheticCorpus corpus({});

  std::printf("Pre-training a 130M-proxy backbone (AdamW, 500 steps)...\n");
  nn::LlamaModel backbone(cfg, 42);
  {
    optim::AdamW opt;
    train::TrainConfig tc;
    tc.steps = 500;
    tc.batch = 4;
    tc.lr = 3e-3f;
    train::Trainer t(backbone, opt, corpus, tc);
    auto r = t.run();
    std::printf("  backbone validation ppl: %.2f\n\n", r.final_perplexity);
  }
  const auto snapshot = backbone.snapshot();

  const data::CommonsenseTask tasks[] = {data::CommonsenseTask::kCopyLast,
                                         data::CommonsenseTask::kAlternation};
  struct Entry {
    const char* label;
    float lr;  // AdamW-family fine-tunes at 3e-3, projected methods at 1e-2
    std::function<std::unique_ptr<optim::Optimizer>()> make;
  };
  const Entry entries[] = {
      {"AdamW (full FT)", 3e-3f,
       [] { return std::make_unique<optim::AdamW>(); }},
      {"LoRA r=12", 3e-3f,
       [&] {
         optim::AdapterConfig c;
         c.kind = optim::AdapterKind::kLora;
         c.rank = cfg.hidden / 4;
         return std::make_unique<optim::LowRankAdapter>(c);
       }},
      {"APOLLO r=12", 1e-2f,
       [&] {
         core::ApolloConfig c;
         c.rank = cfg.hidden / 4;
         return core::Apollo::standard(c);
       }},
      {"APOLLO-Mini r=1", 1e-2f,
       [&] {
         core::ApolloConfig c = core::ApolloConfig::mini();
         c.scale = 2.f;  // the paper's fine-tuning alpha = sqrt(4)
         return std::make_unique<core::Apollo>(c, "APOLLO-Mini");
       }},
  };

  std::printf("%-18s", "Method");
  for (auto t : tasks) std::printf(" %14s", data::task_name(t));
  std::printf("\n");
  for (const auto& e : entries) {
    std::printf("%-18s", e.label);
    for (auto task : tasks) {
      backbone.restore(snapshot);
      auto opt = e.make();
      data::TaskGenerator gen(corpus, 100 + static_cast<uint64_t>(task));
      data::TaskGenerator egen(corpus, 200 + static_cast<uint64_t>(task));
      train::FinetuneConfig fc;
      fc.steps = 400;
      fc.batch = 16;
      fc.lr = e.lr;
      auto res = train::finetune(
          backbone, *opt,
          [&](int b) { return gen.make_commonsense_batch(task, b, cfg.seq_len); },
          [&](int b) { return egen.make_commonsense_batch(task, b, cfg.seq_len); },
          fc);
      std::printf(" %13.1f%%", res.accuracy * 100);
    }
    std::printf("\n");
  }
  std::printf("\n(zero-shot accuracy on these tasks is near zero; pattern "
              "tasks reach ~100%%, while pure-recall tasks like PIQA need "
              "longer budgets for rank-1 APOLLO-Mini)\n");
  return 0;
}
