// Example: the extreme-memory recipe — Q-APOLLO-Mini (rank-1 tensor-wise
// scaling + INT8 weight store with stochastic-rounding requantization),
// i.e. the configuration behind the paper's "LLaMA-7B under 12 GB" claim,
// exercised end-to-end at nano scale with real byte accounting.
//
//   $ ./examples/low_memory_pretrain
#include <cstdio>

#include "core/apollo.h"
#include "core/quantized_weights.h"
#include "optim/adamw.h"
#include "sysmodel/memory_model.h"
#include "train/trainer.h"

using namespace apollo;

int main() {
  const auto cfg = nn::llama_350m_proxy();
  data::SyntheticCorpus corpus({});

  std::printf("== Q-APOLLO-Mini: rank-1 optimizer + INT8 weights ==\n\n");

  // Full-precision AdamW reference.
  double adamw_ppl;
  int64_t adamw_state;
  {
    nn::LlamaModel model(cfg, 42);
    optim::AdamW opt;
    train::TrainConfig tc;
    tc.steps = 400;
    tc.batch = 4;
    tc.lr = 3e-3f;
    train::Trainer t(model, opt, corpus, tc);
    auto r = t.run();
    adamw_ppl = r.final_perplexity;
    adamw_state = r.optimizer_state_bytes;
  }

  // Q-APOLLO-Mini.
  nn::LlamaModel model(cfg, 42);
  auto opt = core::Apollo::mini();
  core::QuantizedWeightStore store(model.parameters(), /*seed=*/9);
  train::TrainConfig tc;
  tc.steps = 400;
  tc.batch = 4;
  tc.lr = 0.01f;
  train::Trainer t(model, *opt, corpus, tc);
  t.set_quantized_weights(&store);
  auto r = t.run();

  const int64_t fp_weight_bytes = model.param_count() * 4;
  std::printf("%-22s %14s %14s\n", "", "AdamW fp32", "Q-APOLLO-Mini");
  std::printf("%-22s %14.2f %14.2f\n", "validation ppl", adamw_ppl,
              r.final_perplexity);
  std::printf("%-22s %14lld %14lld\n", "weight bytes",
              static_cast<long long>(fp_weight_bytes),
              static_cast<long long>(store.weight_bytes()));
  std::printf("%-22s %14lld %14lld\n", "optimizer state bytes",
              static_cast<long long>(adamw_state),
              static_cast<long long>(r.optimizer_state_bytes));

  // What the same recipe means at true 7B scale.
  sysmodel::MethodSpec ms;
  ms.method = sysmodel::Method::kApolloMini;
  ms.rank = 1;
  ms.weight_bits = 8;
  ms.layerwise_grad_update = true;
  const auto b = sysmodel::estimate_memory(sysmodel::spec_llama_7b(), ms, 1);
  std::printf("\nProjected to LLaMA-7B (micro-batch 1, layer-wise updates): "
              "%.1f GiB total → fits a 12 GB consumer GPU.\n",
              static_cast<double>(b.total()) / (1024.0 * 1024.0 * 1024.0));
  return 0;
}
