# Empty compiler generated dependencies file for sysmodel_test.
# This may be replaced when dependencies are built.
