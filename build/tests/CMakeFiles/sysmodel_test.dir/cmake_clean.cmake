file(REMOVE_RECURSE
  "CMakeFiles/sysmodel_test.dir/sysmodel_test.cpp.o"
  "CMakeFiles/sysmodel_test.dir/sysmodel_test.cpp.o.d"
  "sysmodel_test"
  "sysmodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
