file(REMOVE_RECURSE
  "CMakeFiles/adafactor_test.dir/adafactor_test.cpp.o"
  "CMakeFiles/adafactor_test.dir/adafactor_test.cpp.o.d"
  "adafactor_test"
  "adafactor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adafactor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
