# Empty compiler generated dependencies file for adafactor_test.
# This may be replaced when dependencies are built.
