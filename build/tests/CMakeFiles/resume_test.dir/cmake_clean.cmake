file(REMOVE_RECURSE
  "CMakeFiles/resume_test.dir/resume_test.cpp.o"
  "CMakeFiles/resume_test.dir/resume_test.cpp.o.d"
  "resume_test"
  "resume_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
