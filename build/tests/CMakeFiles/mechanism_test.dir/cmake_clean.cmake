file(REMOVE_RECURSE
  "CMakeFiles/mechanism_test.dir/mechanism_test.cpp.o"
  "CMakeFiles/mechanism_test.dir/mechanism_test.cpp.o.d"
  "mechanism_test"
  "mechanism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mechanism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
