# Empty dependencies file for bf16_adam_test.
# This may be replaced when dependencies are built.
