file(REMOVE_RECURSE
  "CMakeFiles/bf16_adam_test.dir/bf16_adam_test.cpp.o"
  "CMakeFiles/bf16_adam_test.dir/bf16_adam_test.cpp.o.d"
  "bf16_adam_test"
  "bf16_adam_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf16_adam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
