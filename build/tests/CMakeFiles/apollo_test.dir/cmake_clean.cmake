file(REMOVE_RECURSE
  "CMakeFiles/apollo_test.dir/apollo_test.cpp.o"
  "CMakeFiles/apollo_test.dir/apollo_test.cpp.o.d"
  "apollo_test"
  "apollo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
