# Empty dependencies file for apollo_test.
# This may be replaced when dependencies are built.
