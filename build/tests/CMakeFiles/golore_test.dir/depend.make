# Empty dependencies file for golore_test.
# This may be replaced when dependencies are built.
