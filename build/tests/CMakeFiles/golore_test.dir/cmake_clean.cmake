file(REMOVE_RECURSE
  "CMakeFiles/golore_test.dir/golore_test.cpp.o"
  "CMakeFiles/golore_test.dir/golore_test.cpp.o.d"
  "golore_test"
  "golore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
