# Empty dependencies file for textdata_test.
# This may be replaced when dependencies are built.
