file(REMOVE_RECURSE
  "CMakeFiles/textdata_test.dir/textdata_test.cpp.o"
  "CMakeFiles/textdata_test.dir/textdata_test.cpp.o.d"
  "textdata_test"
  "textdata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textdata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
