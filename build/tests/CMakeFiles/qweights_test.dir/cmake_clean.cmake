file(REMOVE_RECURSE
  "CMakeFiles/qweights_test.dir/qweights_test.cpp.o"
  "CMakeFiles/qweights_test.dir/qweights_test.cpp.o.d"
  "qweights_test"
  "qweights_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qweights_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
