# Empty compiler generated dependencies file for qweights_test.
# This may be replaced when dependencies are built.
