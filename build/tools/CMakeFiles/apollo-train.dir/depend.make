# Empty dependencies file for apollo-train.
# This may be replaced when dependencies are built.
