file(REMOVE_RECURSE
  "CMakeFiles/apollo-train.dir/apollo_train.cpp.o"
  "CMakeFiles/apollo-train.dir/apollo_train.cpp.o.d"
  "apollo-train"
  "apollo-train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo-train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
