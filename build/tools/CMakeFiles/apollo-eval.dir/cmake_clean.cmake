file(REMOVE_RECURSE
  "CMakeFiles/apollo-eval.dir/apollo_eval.cpp.o"
  "CMakeFiles/apollo-eval.dir/apollo_eval.cpp.o.d"
  "apollo-eval"
  "apollo-eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo-eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
