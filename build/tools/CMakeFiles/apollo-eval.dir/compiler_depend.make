# Empty compiler generated dependencies file for apollo-eval.
# This may be replaced when dependencies are built.
