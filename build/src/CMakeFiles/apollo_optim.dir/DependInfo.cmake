
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/adafactor.cpp" "src/CMakeFiles/apollo_optim.dir/optim/adafactor.cpp.o" "gcc" "src/CMakeFiles/apollo_optim.dir/optim/adafactor.cpp.o.d"
  "/root/repo/src/optim/adamw.cpp" "src/CMakeFiles/apollo_optim.dir/optim/adamw.cpp.o" "gcc" "src/CMakeFiles/apollo_optim.dir/optim/adamw.cpp.o.d"
  "/root/repo/src/optim/dense_adam.cpp" "src/CMakeFiles/apollo_optim.dir/optim/dense_adam.cpp.o" "gcc" "src/CMakeFiles/apollo_optim.dir/optim/dense_adam.cpp.o.d"
  "/root/repo/src/optim/galore.cpp" "src/CMakeFiles/apollo_optim.dir/optim/galore.cpp.o" "gcc" "src/CMakeFiles/apollo_optim.dir/optim/galore.cpp.o.d"
  "/root/repo/src/optim/lowrank.cpp" "src/CMakeFiles/apollo_optim.dir/optim/lowrank.cpp.o" "gcc" "src/CMakeFiles/apollo_optim.dir/optim/lowrank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/apollo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apollo_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apollo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
