# Empty compiler generated dependencies file for apollo_optim.
# This may be replaced when dependencies are built.
