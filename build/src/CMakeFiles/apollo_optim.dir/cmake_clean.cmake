file(REMOVE_RECURSE
  "CMakeFiles/apollo_optim.dir/optim/adafactor.cpp.o"
  "CMakeFiles/apollo_optim.dir/optim/adafactor.cpp.o.d"
  "CMakeFiles/apollo_optim.dir/optim/adamw.cpp.o"
  "CMakeFiles/apollo_optim.dir/optim/adamw.cpp.o.d"
  "CMakeFiles/apollo_optim.dir/optim/dense_adam.cpp.o"
  "CMakeFiles/apollo_optim.dir/optim/dense_adam.cpp.o.d"
  "CMakeFiles/apollo_optim.dir/optim/galore.cpp.o"
  "CMakeFiles/apollo_optim.dir/optim/galore.cpp.o.d"
  "CMakeFiles/apollo_optim.dir/optim/lowrank.cpp.o"
  "CMakeFiles/apollo_optim.dir/optim/lowrank.cpp.o.d"
  "libapollo_optim.a"
  "libapollo_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
