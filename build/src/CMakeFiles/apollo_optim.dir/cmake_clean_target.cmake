file(REMOVE_RECURSE
  "libapollo_optim.a"
)
