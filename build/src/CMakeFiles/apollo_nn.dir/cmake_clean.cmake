file(REMOVE_RECURSE
  "CMakeFiles/apollo_nn.dir/nn/inference.cpp.o"
  "CMakeFiles/apollo_nn.dir/nn/inference.cpp.o.d"
  "CMakeFiles/apollo_nn.dir/nn/llama.cpp.o"
  "CMakeFiles/apollo_nn.dir/nn/llama.cpp.o.d"
  "CMakeFiles/apollo_nn.dir/nn/sampler.cpp.o"
  "CMakeFiles/apollo_nn.dir/nn/sampler.cpp.o.d"
  "libapollo_nn.a"
  "libapollo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
