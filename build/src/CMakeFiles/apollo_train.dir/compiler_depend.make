# Empty compiler generated dependencies file for apollo_train.
# This may be replaced when dependencies are built.
