file(REMOVE_RECURSE
  "CMakeFiles/apollo_train.dir/train/checkpoint.cpp.o"
  "CMakeFiles/apollo_train.dir/train/checkpoint.cpp.o.d"
  "CMakeFiles/apollo_train.dir/train/finetune.cpp.o"
  "CMakeFiles/apollo_train.dir/train/finetune.cpp.o.d"
  "CMakeFiles/apollo_train.dir/train/mechanism_eval.cpp.o"
  "CMakeFiles/apollo_train.dir/train/mechanism_eval.cpp.o.d"
  "CMakeFiles/apollo_train.dir/train/trainer.cpp.o"
  "CMakeFiles/apollo_train.dir/train/trainer.cpp.o.d"
  "libapollo_train.a"
  "libapollo_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
