file(REMOVE_RECURSE
  "libapollo_train.a"
)
