file(REMOVE_RECURSE
  "libapollo_tensor.a"
)
