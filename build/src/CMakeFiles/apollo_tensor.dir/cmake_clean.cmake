file(REMOVE_RECURSE
  "CMakeFiles/apollo_tensor.dir/tensor/matrix.cpp.o"
  "CMakeFiles/apollo_tensor.dir/tensor/matrix.cpp.o.d"
  "CMakeFiles/apollo_tensor.dir/tensor/ops.cpp.o"
  "CMakeFiles/apollo_tensor.dir/tensor/ops.cpp.o.d"
  "CMakeFiles/apollo_tensor.dir/tensor/rng.cpp.o"
  "CMakeFiles/apollo_tensor.dir/tensor/rng.cpp.o.d"
  "libapollo_tensor.a"
  "libapollo_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
