# Empty compiler generated dependencies file for apollo_tensor.
# This may be replaced when dependencies are built.
