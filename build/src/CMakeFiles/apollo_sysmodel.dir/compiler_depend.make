# Empty compiler generated dependencies file for apollo_sysmodel.
# This may be replaced when dependencies are built.
