file(REMOVE_RECURSE
  "libapollo_sysmodel.a"
)
