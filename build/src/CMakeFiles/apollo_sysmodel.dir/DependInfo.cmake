
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysmodel/memory_model.cpp" "src/CMakeFiles/apollo_sysmodel.dir/sysmodel/memory_model.cpp.o" "gcc" "src/CMakeFiles/apollo_sysmodel.dir/sysmodel/memory_model.cpp.o.d"
  "/root/repo/src/sysmodel/throughput_model.cpp" "src/CMakeFiles/apollo_sysmodel.dir/sysmodel/throughput_model.cpp.o" "gcc" "src/CMakeFiles/apollo_sysmodel.dir/sysmodel/throughput_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/apollo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apollo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
