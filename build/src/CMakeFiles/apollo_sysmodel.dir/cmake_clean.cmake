file(REMOVE_RECURSE
  "CMakeFiles/apollo_sysmodel.dir/sysmodel/memory_model.cpp.o"
  "CMakeFiles/apollo_sysmodel.dir/sysmodel/memory_model.cpp.o.d"
  "CMakeFiles/apollo_sysmodel.dir/sysmodel/throughput_model.cpp.o"
  "CMakeFiles/apollo_sysmodel.dir/sysmodel/throughput_model.cpp.o.d"
  "libapollo_sysmodel.a"
  "libapollo_sysmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_sysmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
