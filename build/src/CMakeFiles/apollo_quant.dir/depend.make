# Empty dependencies file for apollo_quant.
# This may be replaced when dependencies are built.
