file(REMOVE_RECURSE
  "CMakeFiles/apollo_quant.dir/quant/quant.cpp.o"
  "CMakeFiles/apollo_quant.dir/quant/quant.cpp.o.d"
  "libapollo_quant.a"
  "libapollo_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
