file(REMOVE_RECURSE
  "libapollo_quant.a"
)
