# Empty compiler generated dependencies file for apollo_autograd.
# This may be replaced when dependencies are built.
