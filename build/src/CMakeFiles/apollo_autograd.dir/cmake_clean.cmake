file(REMOVE_RECURSE
  "CMakeFiles/apollo_autograd.dir/autograd/ops_attention.cpp.o"
  "CMakeFiles/apollo_autograd.dir/autograd/ops_attention.cpp.o.d"
  "CMakeFiles/apollo_autograd.dir/autograd/ops_nn.cpp.o"
  "CMakeFiles/apollo_autograd.dir/autograd/ops_nn.cpp.o.d"
  "CMakeFiles/apollo_autograd.dir/autograd/tape.cpp.o"
  "CMakeFiles/apollo_autograd.dir/autograd/tape.cpp.o.d"
  "libapollo_autograd.a"
  "libapollo_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
