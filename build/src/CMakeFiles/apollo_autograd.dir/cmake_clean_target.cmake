file(REMOVE_RECURSE
  "libapollo_autograd.a"
)
