file(REMOVE_RECURSE
  "libapollo_core.a"
)
