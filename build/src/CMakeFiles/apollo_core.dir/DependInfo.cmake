
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apollo.cpp" "src/CMakeFiles/apollo_core.dir/core/apollo.cpp.o" "gcc" "src/CMakeFiles/apollo_core.dir/core/apollo.cpp.o.d"
  "/root/repo/src/core/factory.cpp" "src/CMakeFiles/apollo_core.dir/core/factory.cpp.o" "gcc" "src/CMakeFiles/apollo_core.dir/core/factory.cpp.o.d"
  "/root/repo/src/core/quantized_weights.cpp" "src/CMakeFiles/apollo_core.dir/core/quantized_weights.cpp.o" "gcc" "src/CMakeFiles/apollo_core.dir/core/quantized_weights.cpp.o.d"
  "/root/repo/src/core/structured_adamw.cpp" "src/CMakeFiles/apollo_core.dir/core/structured_adamw.cpp.o" "gcc" "src/CMakeFiles/apollo_core.dir/core/structured_adamw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/apollo_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apollo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apollo_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/apollo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
