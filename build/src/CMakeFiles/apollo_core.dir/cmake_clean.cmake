file(REMOVE_RECURSE
  "CMakeFiles/apollo_core.dir/core/apollo.cpp.o"
  "CMakeFiles/apollo_core.dir/core/apollo.cpp.o.d"
  "CMakeFiles/apollo_core.dir/core/factory.cpp.o"
  "CMakeFiles/apollo_core.dir/core/factory.cpp.o.d"
  "CMakeFiles/apollo_core.dir/core/quantized_weights.cpp.o"
  "CMakeFiles/apollo_core.dir/core/quantized_weights.cpp.o.d"
  "CMakeFiles/apollo_core.dir/core/structured_adamw.cpp.o"
  "CMakeFiles/apollo_core.dir/core/structured_adamw.cpp.o.d"
  "libapollo_core.a"
  "libapollo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
