# Empty dependencies file for apollo_linalg.
# This may be replaced when dependencies are built.
