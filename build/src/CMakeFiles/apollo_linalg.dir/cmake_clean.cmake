file(REMOVE_RECURSE
  "CMakeFiles/apollo_linalg.dir/linalg/projection.cpp.o"
  "CMakeFiles/apollo_linalg.dir/linalg/projection.cpp.o.d"
  "CMakeFiles/apollo_linalg.dir/linalg/svd.cpp.o"
  "CMakeFiles/apollo_linalg.dir/linalg/svd.cpp.o.d"
  "libapollo_linalg.a"
  "libapollo_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
