
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/projection.cpp" "src/CMakeFiles/apollo_linalg.dir/linalg/projection.cpp.o" "gcc" "src/CMakeFiles/apollo_linalg.dir/linalg/projection.cpp.o.d"
  "/root/repo/src/linalg/svd.cpp" "src/CMakeFiles/apollo_linalg.dir/linalg/svd.cpp.o" "gcc" "src/CMakeFiles/apollo_linalg.dir/linalg/svd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/apollo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
