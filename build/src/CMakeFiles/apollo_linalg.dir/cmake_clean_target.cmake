file(REMOVE_RECURSE
  "libapollo_linalg.a"
)
