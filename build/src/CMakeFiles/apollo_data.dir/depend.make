# Empty dependencies file for apollo_data.
# This may be replaced when dependencies are built.
