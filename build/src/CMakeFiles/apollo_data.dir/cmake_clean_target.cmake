file(REMOVE_RECURSE
  "libapollo_data.a"
)
