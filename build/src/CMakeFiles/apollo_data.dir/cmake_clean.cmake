file(REMOVE_RECURSE
  "CMakeFiles/apollo_data.dir/data/corpus.cpp.o"
  "CMakeFiles/apollo_data.dir/data/corpus.cpp.o.d"
  "CMakeFiles/apollo_data.dir/data/tasks.cpp.o"
  "CMakeFiles/apollo_data.dir/data/tasks.cpp.o.d"
  "CMakeFiles/apollo_data.dir/data/text_corpus.cpp.o"
  "CMakeFiles/apollo_data.dir/data/text_corpus.cpp.o.d"
  "libapollo_data.a"
  "libapollo_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
