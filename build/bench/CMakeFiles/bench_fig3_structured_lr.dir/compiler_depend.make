# Empty compiler generated dependencies file for bench_fig3_structured_lr.
# This may be replaced when dependencies are built.
