# Empty dependencies file for bench_table3_7b_checkpoints.
# This may be replaced when dependencies are built.
