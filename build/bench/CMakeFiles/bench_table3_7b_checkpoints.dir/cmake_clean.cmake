file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_7b_checkpoints.dir/bench_table3_7b_checkpoints.cpp.o"
  "CMakeFiles/bench_table3_7b_checkpoints.dir/bench_table3_7b_checkpoints.cpp.o.d"
  "bench_table3_7b_checkpoints"
  "bench_table3_7b_checkpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_7b_checkpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
