# Empty dependencies file for bench_table5_finetune_mmlu.
# This may be replaced when dependencies are built.
