file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_finetune_mmlu.dir/bench_table5_finetune_mmlu.cpp.o"
  "CMakeFiles/bench_table5_finetune_mmlu.dir/bench_table5_finetune_mmlu.cpp.o.d"
  "bench_table5_finetune_mmlu"
  "bench_table5_finetune_mmlu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_finetune_mmlu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
