file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_granularity.dir/bench_table7_granularity.cpp.o"
  "CMakeFiles/bench_table7_granularity.dir/bench_table7_granularity.cpp.o.d"
  "bench_table7_granularity"
  "bench_table7_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
