# Empty dependencies file for bench_fig1_throughput.
# This may be replaced when dependencies are built.
