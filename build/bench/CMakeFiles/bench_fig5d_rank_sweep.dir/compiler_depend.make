# Empty compiler generated dependencies file for bench_fig5d_rank_sweep.
# This may be replaced when dependencies are built.
