file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_training_curve.dir/bench_fig6_training_curve.cpp.o"
  "CMakeFiles/bench_fig6_training_curve.dir/bench_fig6_training_curve.cpp.o.d"
  "bench_fig6_training_curve"
  "bench_fig6_training_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_training_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
