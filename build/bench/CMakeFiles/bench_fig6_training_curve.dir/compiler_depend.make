# Empty compiler generated dependencies file for bench_fig6_training_curve.
# This may be replaced when dependencies are built.
